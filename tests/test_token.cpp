#include <gtest/gtest.h>

#include "base/logging.hpp"
#include "kl0/token.hpp"

using namespace psi::kl0;
using psi::FatalError;

TEST(Token, Integers)
{
    auto ts = tokenize("42 007");
    ASSERT_GE(ts.size(), 3u);
    EXPECT_EQ(ts[0].kind, TokKind::Int);
    EXPECT_EQ(ts[0].value, 42);
    EXPECT_EQ(ts[1].value, 7);
}

TEST(Token, CharCodeLiteral)
{
    auto ts = tokenize("0'a");
    EXPECT_EQ(ts[0].kind, TokKind::Int);
    EXPECT_EQ(ts[0].value, 'a');
}

TEST(Token, AtomsLowercase)
{
    auto ts = tokenize("foo barBaz_1");
    EXPECT_EQ(ts[0].kind, TokKind::Atom);
    EXPECT_EQ(ts[0].text, "foo");
    EXPECT_EQ(ts[1].text, "barBaz_1");
}

TEST(Token, Variables)
{
    auto ts = tokenize("X _foo Abc");
    EXPECT_EQ(ts[0].kind, TokKind::Var);
    EXPECT_EQ(ts[1].kind, TokKind::Var);
    EXPECT_EQ(ts[2].kind, TokKind::Var);
}

TEST(Token, QuotedAtoms)
{
    auto ts = tokenize("'hello world' 'it''s'");
    EXPECT_EQ(ts[0].kind, TokKind::Atom);
    EXPECT_EQ(ts[0].text, "hello world");
    EXPECT_EQ(ts[1].text, "it's");
}

TEST(Token, QuotedEscapes)
{
    auto ts = tokenize("'a\\nb'");
    EXPECT_EQ(ts[0].text, "a\nb");
}

TEST(Token, SymbolicAtoms)
{
    auto ts = tokenize(":- =.. \\+ @< ->");
    EXPECT_EQ(ts[0].text, ":-");
    EXPECT_EQ(ts[1].text, "=..");
    EXPECT_EQ(ts[2].text, "\\+");
    EXPECT_EQ(ts[3].text, "@<");
    EXPECT_EQ(ts[4].text, "->");
}

TEST(Token, ClauseEnd)
{
    auto ts = tokenize("foo.");
    EXPECT_EQ(ts[0].kind, TokKind::Atom);
    EXPECT_EQ(ts[1].kind, TokKind::End);
}

TEST(Token, Punctuation)
{
    auto ts = tokenize("( ) [ ] { } , |");
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(ts[i].kind, TokKind::Punct) << i;
}

TEST(Token, CutAndSemicolonAreAtoms)
{
    auto ts = tokenize("! ;");
    EXPECT_TRUE(ts[0].isAtom("!"));
    EXPECT_TRUE(ts[1].isAtom(";"));
}

TEST(Token, LineComments)
{
    auto ts = tokenize("a % comment\nb");
    EXPECT_EQ(ts[0].text, "a");
    EXPECT_EQ(ts[1].text, "b");
    EXPECT_EQ(ts[2].kind, TokKind::Eof);
}

TEST(Token, BlockComments)
{
    auto ts = tokenize("a /* x\ny */ b");
    EXPECT_EQ(ts[0].text, "a");
    EXPECT_EQ(ts[1].text, "b");
}

TEST(Token, LineNumbersTracked)
{
    auto ts = tokenize("a\nb\n\nc");
    EXPECT_EQ(ts[0].line, 1);
    EXPECT_EQ(ts[1].line, 2);
    EXPECT_EQ(ts[2].line, 4);
}

TEST(Token, UnterminatedQuoteThrows)
{
    EXPECT_THROW(tokenize("'abc"), FatalError);
}

TEST(Token, UnterminatedBlockCommentThrows)
{
    EXPECT_THROW(tokenize("/* abc"), FatalError);
}

TEST(Token, EofAlwaysAppended)
{
    auto ts = tokenize("");
    ASSERT_EQ(ts.size(), 1u);
    EXPECT_EQ(ts[0].kind, TokKind::Eof);
}
