/**
 * @file
 * Language-level semantics of the PSI firmware interpreter: facts,
 * unification, arithmetic, type tests, term inspection, output and
 * heap vectors.
 */

#include <gtest/gtest.h>

#include "interp/engine.hpp"

using namespace psi;
using namespace psi::interp;

namespace {

/** Solve @p query against @p program; return all binding strings. */
std::vector<std::string>
solutions(const std::string &program, const std::string &query,
          int max = 50)
{
    Engine eng;
    eng.consult(program);
    RunLimits lim;
    lim.maxSolutions = max;
    auto r = eng.solve(query, lim);
    std::vector<std::string> out;
    for (const auto &s : r.solutions) {
        std::string line;
        for (const auto &kv : s.bindings) {
            if (!line.empty())
                line += " ";
            line += kv.first + "=" + kv.second->canonicalStr();
        }
        out.push_back(line.empty() ? "yes" : line);
    }
    return out;
}

bool
succeeds(const std::string &program, const std::string &query)
{
    return !solutions(program, query, 1).empty();
}

std::string
first(const std::string &program, const std::string &query)
{
    auto v = solutions(program, query, 1);
    return v.empty() ? "<fail>" : v[0];
}

} // namespace

TEST(EngineBasic, FactSucceeds)
{
    EXPECT_TRUE(succeeds("a.", "a"));
    EXPECT_FALSE(succeeds("a.", "b_undefined"));
}

TEST(EngineBasic, FactWithArgs)
{
    EXPECT_EQ(first("color(sky, blue).", "color(sky, X)"), "X=blue");
    EXPECT_FALSE(succeeds("color(sky, blue).", "color(sea, blue)"));
}

TEST(EngineBasic, ConjunctionBindsAcrossGoals)
{
    EXPECT_EQ(first("p(1). q(1).", "p(X), q(X)"), "X=1");
    EXPECT_FALSE(succeeds("p(1). q(2).", "p(X), q(X)"));
}

TEST(EngineBasic, UnifyBuiltin)
{
    EXPECT_EQ(first("", "X = foo"), "X=foo");
    EXPECT_EQ(first("", "f(X, b) = f(a, Y)"), "X=a Y=b");
    EXPECT_FALSE(succeeds("", "a = b"));
    EXPECT_FALSE(succeeds("", "f(X) = g(X)"));
    EXPECT_FALSE(succeeds("", "f(a) = f(a, b)"));
}

TEST(EngineBasic, UnifyListsDeep)
{
    EXPECT_EQ(first("", "[1, X, [a|T]] = [1, 2, [a, b]]"),
              "T=[b] X=2");
}

TEST(EngineBasic, UnifySharedVariables)
{
    EXPECT_EQ(first("", "X = Y, Y = 3"), "X=3 Y=3");
    EXPECT_EQ(first("", "f(X, X) = f(a, Z)"), "X=a Z=a");
}

TEST(EngineBasic, NotUnify)
{
    EXPECT_TRUE(succeeds("", "a \\= b"));
    EXPECT_FALSE(succeeds("", "a \\= a"));
    // \= must not leave bindings behind.
    EXPECT_EQ(first("", "(X \\= 1 ; X = 2)"), "X=2");
}

TEST(EngineBasic, StructuralEquality)
{
    EXPECT_TRUE(succeeds("", "f(a) == f(a)"));
    EXPECT_FALSE(succeeds("", "f(a) == f(b)"));
    EXPECT_FALSE(succeeds("", "X == Y"));
    EXPECT_TRUE(succeeds("", "X == X"));
    EXPECT_TRUE(succeeds("", "f(a) \\== f(b)"));
}

TEST(EngineBasic, StandardOrder)
{
    EXPECT_TRUE(succeeds("", "1 @< a"));
    EXPECT_TRUE(succeeds("", "a @< b"));
    EXPECT_TRUE(succeeds("", "a @< f(a)"));
    EXPECT_TRUE(succeeds("", "f(a) @< f(b)"));
    EXPECT_TRUE(succeeds("", "f(a) @< g(a)"));
    EXPECT_TRUE(succeeds("", "f(a) @=< f(a)"));
    EXPECT_TRUE(succeeds("", "g(z) @> f(a, b)") == false);
    EXPECT_TRUE(succeeds("", "f(a, b) @> g(z)"));
}

TEST(EngineBasic, IsArithmetic)
{
    EXPECT_EQ(first("", "X is 2 + 3 * 4"), "X=14");
    EXPECT_EQ(first("", "X is (2 + 3) * 4"), "X=20");
    EXPECT_EQ(first("", "X is 7 // 2"), "X=3");
    EXPECT_EQ(first("", "X is -7 mod 3"), "X=2");
    EXPECT_EQ(first("", "X is abs(-5)"), "X=5");
    EXPECT_EQ(first("", "X is min(3, 9) + max(3, 9)"), "X=12");
    EXPECT_EQ(first("", "X is 5 /\\ 3"), "X=1");
    EXPECT_EQ(first("", "X is 1 << 4"), "X=16");
}

TEST(EngineBasic, IsWithVariables)
{
    EXPECT_EQ(first("", "Y = 4, X is Y * Y"), "X=16 Y=4");
    // Unbound operand fails.
    EXPECT_FALSE(succeeds("", "X is Y + 1"));
}

TEST(EngineBasic, IsChecksResult)
{
    EXPECT_TRUE(succeeds("", "5 is 2 + 3"));
    EXPECT_FALSE(succeeds("", "6 is 2 + 3"));
}

TEST(EngineBasic, DivisionByZeroFails)
{
    EXPECT_FALSE(succeeds("", "X is 1 // 0"));
    EXPECT_FALSE(succeeds("", "X is 1 mod 0"));
}

TEST(EngineBasic, ArithmeticComparisons)
{
    EXPECT_TRUE(succeeds("", "1 < 2"));
    EXPECT_FALSE(succeeds("", "2 < 1"));
    EXPECT_TRUE(succeeds("", "2 >= 2"));
    EXPECT_TRUE(succeeds("", "1 + 1 =:= 2"));
    EXPECT_TRUE(succeeds("", "1 + 1 =\\= 3"));
    EXPECT_TRUE(succeeds("", "3 * 3 > 2 * 4"));
}

TEST(EngineBasic, TypeTests)
{
    EXPECT_TRUE(succeeds("", "var(X)"));
    EXPECT_FALSE(succeeds("", "X = 1, var(X)"));
    EXPECT_TRUE(succeeds("", "X = 1, nonvar(X)"));
    EXPECT_TRUE(succeeds("", "atom(foo)"));
    EXPECT_TRUE(succeeds("", "atom([])"));
    EXPECT_FALSE(succeeds("", "atom(1)"));
    EXPECT_TRUE(succeeds("", "integer(42)"));
    EXPECT_TRUE(succeeds("", "atomic(42)"));
    EXPECT_TRUE(succeeds("", "atomic(foo)"));
    EXPECT_FALSE(succeeds("", "atomic(f(x))"));
    EXPECT_TRUE(succeeds("", "compound(f(x))"));
    EXPECT_TRUE(succeeds("", "compound([1])"));
    EXPECT_FALSE(succeeds("", "compound([])"));
}

TEST(EngineBasic, FunctorDecompose)
{
    EXPECT_EQ(first("", "functor(foo(a, b), F, A)"), "A=2 F=foo");
    EXPECT_EQ(first("", "functor(atom_only, F, A)"), "A=0 F=atom_only");
    EXPECT_EQ(first("", "functor(7, F, A)"), "A=0 F=7");
    EXPECT_EQ(first("", "functor([1], F, A)"), "A=2 F=.");
}

TEST(EngineBasic, FunctorConstruct)
{
    EXPECT_EQ(first("", "functor(T, foo, 2)"), "T=foo(_A,_B)");
    EXPECT_EQ(first("", "functor(T, bar, 0)"), "T=bar");
}

TEST(EngineBasic, ArgExtract)
{
    EXPECT_EQ(first("", "arg(2, foo(a, b, c), X)"), "X=b");
    EXPECT_FALSE(succeeds("", "arg(4, foo(a, b, c), X)"));
    EXPECT_EQ(first("", "arg(1, [h|t], X)"), "X=h");
}

TEST(EngineBasic, UnivBothDirections)
{
    EXPECT_EQ(first("", "foo(1, 2) =.. L"), "L=[foo,1,2]");
    EXPECT_EQ(first("", "T =.. [bar, x]"), "T=bar(x)");
    EXPECT_EQ(first("", "T =.. [baz]"), "T=baz");
    EXPECT_EQ(first("", "[a] =.. L"), "L=[.,a,[]]");
}

TEST(EngineBasic, WriteProducesOutput)
{
    Engine eng;
    eng.consult("greet :- write(hello), nl, write([1,2|X]), "
                "write(f(a, 'B c')), tab(3), write(-7).");
    auto r = eng.solve("greet");
    ASSERT_TRUE(r.succeeded());
    EXPECT_EQ(r.output.substr(0, 6), "hello\n");
    EXPECT_NE(r.output.find("[1,2|_G"), std::string::npos);
    EXPECT_NE(r.output.find("f(a,B c)"), std::string::npos);
    EXPECT_NE(r.output.find("   -7"), std::string::npos);
}

TEST(EngineBasic, VectorsAreDestructive)
{
    Engine eng;
    eng.consult(R"(
        demo(A, B) :-
            vector_new(4, V),
            vector_set(V, 2, 7),
            vector_get(V, 2, A),
            vector_set(V, 2, 9),
            vector_get(V, 2, B).
    )");
    auto r = eng.solve("demo(A, B)");
    ASSERT_TRUE(r.succeeded());
    EXPECT_EQ(r.solutions[0].bindings.at("A")->value(), 7);
    EXPECT_EQ(r.solutions[0].bindings.at("B")->value(), 9);
}

TEST(EngineBasic, VectorBoundsAndSize)
{
    EXPECT_FALSE(succeeds("", "vector_new(2, V), vector_get(V, 2, X)"));
    EXPECT_FALSE(succeeds("", "vector_new(2, V), vector_set(V, -1, 0)"));
    EXPECT_EQ(first("", "vector_new(5, V), vector_size(V, N), N = N"),
              first("", "N = 5, vector_new(5, V), vector_size(V, N)"));
}

TEST(EngineBasic, TrueAndFail)
{
    EXPECT_TRUE(succeeds("", "true"));
    EXPECT_FALSE(succeeds("", "fail"));
    EXPECT_FALSE(succeeds("", "false"));
}

TEST(EngineBasic, GroundStructuresUnifyAgainstBuilt)
{
    // A shared ground argument must unify with a dynamically built
    // equivalent term.
    EXPECT_TRUE(succeeds("k(point(1, [2, 3])).",
                         "X = 1, k(point(X, [2, 3]))"));
    EXPECT_FALSE(succeeds("k(point(1, [2, 3])).",
                          "k(point(1, [2, 4]))"));
}

TEST(EngineBasic, SolutionExtractionOfStructures)
{
    EXPECT_EQ(first("mk(tree(leaf(1), leaf(2))).", "mk(T)"),
              "T=tree(leaf(1),leaf(2))");
}

TEST(EngineBasic, QueryVariableLeftUnbound)
{
    EXPECT_EQ(first("p(_).", "p(X)"), "X=_A");
}
