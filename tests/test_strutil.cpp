#include <gtest/gtest.h>

#include "base/strutil.hpp"

using namespace psi::strutil;

TEST(Strutil, SplitBasic)
{
    auto v = split("a,b,c", ',');
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "b");
    EXPECT_EQ(v[2], "c");
}

TEST(Strutil, SplitKeepsEmptyFields)
{
    auto v = split(",a,,", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "");
    EXPECT_EQ(v[2], "");
    EXPECT_EQ(v[3], "");
}

TEST(Strutil, SplitSingle)
{
    auto v = split("abc", ',');
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], "abc");
}

TEST(Strutil, TrimBothSides)
{
    EXPECT_EQ(trim("  x y  "), "x y");
}

TEST(Strutil, TrimEmpty)
{
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Strutil, TrimNoWhitespace)
{
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strutil, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Strutil, StartsWith)
{
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_TRUE(startsWith("hello", ""));
    EXPECT_FALSE(startsWith("he", "hello"));
    EXPECT_FALSE(startsWith("hello", "lo"));
}

TEST(Strutil, PadLeft)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(Strutil, PadRight)
{
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padRight("abcd", 4), "abcd");
}

TEST(Strutil, AtomQuoting)
{
    EXPECT_FALSE(atomNeedsQuotes("foo"));
    EXPECT_FALSE(atomNeedsQuotes("fooBar_1"));
    EXPECT_FALSE(atomNeedsQuotes("[]"));
    EXPECT_FALSE(atomNeedsQuotes("!"));
    EXPECT_FALSE(atomNeedsQuotes("=.."));
    EXPECT_FALSE(atomNeedsQuotes("+"));
    EXPECT_TRUE(atomNeedsQuotes("Foo"));
    EXPECT_TRUE(atomNeedsQuotes("_x"));
    EXPECT_TRUE(atomNeedsQuotes("hello world"));
    EXPECT_TRUE(atomNeedsQuotes(""));
    EXPECT_TRUE(atomNeedsQuotes("1abc"));
}
