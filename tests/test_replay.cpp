/**
 * @file
 * psireplay suite: the trace-replay harness is only as trustworthy
 * as its log format and its determinism, so both are pinned here.
 *
 *  - reqlog format: write/parse round-trips losslessly, synthesis is
 *    a pure function of the seed, and the strict parser rejects a
 *    corpus of malformed logs with actionable "line N:" errors (a
 *    harness that silently skips bad lines replays different traffic
 *    than was recorded).
 *
 *  - adversarial workloads: the three worst-case programs the replay
 *    mix leans on compute their pinned answers (a silent change to
 *    one would quietly re-shape every replay built on the default
 *    mix).
 *
 *  - replay determinism: the same log submitted twice through an
 *    EnginePool produces byte-identical result payloads per entry
 *    and identical per-tenant dispatch counts.
 *
 *  - scheduler under replay: a bursty, Zipf-skewed two-tenant log
 *    pushed through the AffinityScheduler in log order keeps the
 *    PR-7 properties - WFQ interleave of the minority tenant and
 *    affinity batches that never extend past maxBatch - on
 *    non-uniform arrivals, not just on hand-built queues.
 *
 * Own binary labeled `replay`:
 *
 *     ctest --test-dir build -L replay --output-on-failure
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "base/reqlog.hpp"
#include "psi.hpp"

namespace {

using namespace psi;
using sched::AffinityScheduler;
using sched::DispatchClass;
using sched::PushResult;
using sched::SchedConfig;
using sched::TaskInfo;
using service::EnginePool;
using service::JobOutcome;
using service::QueryJob;

std::string
serialized(const reqlog::Log &log)
{
    std::ostringstream out;
    reqlog::write(out, log);
    return out.str();
}

/** A small mixed-shape config the format tests share. */
reqlog::GenConfig
smallConfig()
{
    reqlog::GenConfig config;
    config.seed = 7;
    config.requests = 60;
    config.rate = 2000.0;
    config.burst = 6.0;
    config.burstDwellS = 0.005;
    config.tenants = 3;
    config.skew = 1.2;
    config.fastShare = 0.5;
    config.deadlineShare = 0.25;
    config.workloads = {{"nreverse30", 3}, {"trail40", 1}};
    return config;
}

// ---------------------------------------------------------------------
// reqlog format
// ---------------------------------------------------------------------

TEST(ReqlogFormat, WriteParseRoundTripIsLossless)
{
    reqlog::Log log = reqlog::synthesize(smallConfig());
    const std::string text = serialized(log);

    std::istringstream in(text);
    std::string error;
    auto parsed = reqlog::parse(in, &error);
    ASSERT_TRUE(parsed.has_value()) << error;

    EXPECT_EQ(parsed->header.version, reqlog::kVersion);
    EXPECT_EQ(parsed->header.seed, 7u);
    EXPECT_EQ(parsed->header.source, "psi_mklog");
    ASSERT_EQ(parsed->entries.size(), log.entries.size());
    for (std::size_t i = 0; i < log.entries.size(); ++i) {
        SCOPED_TRACE("entry " + std::to_string(i));
        const reqlog::Entry &a = log.entries[i];
        const reqlog::Entry &b = parsed->entries[i];
        EXPECT_EQ(a.atNs, b.atNs);
        EXPECT_EQ(a.workload, b.workload);
        EXPECT_EQ(a.tenant, b.tenant);
        EXPECT_EQ(a.mode, b.mode);
        EXPECT_EQ(a.deadlineNs, b.deadlineNs);
        // Diagnostics carry the 1-based source line (header is 1).
        EXPECT_EQ(b.line, i + 2);
    }
    // Serialize the parse result: byte-identical to the original,
    // so record -> replay -> re-record cannot drift.
    EXPECT_EQ(serialized(*parsed), text);
    EXPECT_EQ(parsed->spanNs(), log.spanNs());
}

TEST(ReqlogFormat, SynthesisIsAPureFunctionOfTheSeed)
{
    const std::string once = serialized(reqlog::synthesize(smallConfig()));
    const std::string twice =
        serialized(reqlog::synthesize(smallConfig()));
    EXPECT_EQ(once, twice);

    reqlog::GenConfig other = smallConfig();
    other.seed = 8;
    EXPECT_NE(serialized(reqlog::synthesize(other)), once);
}

TEST(ReqlogFormat, SynthesizedLogHasProductionShape)
{
    reqlog::GenConfig config = smallConfig();
    reqlog::Log log = reqlog::synthesize(config);
    ASSERT_EQ(log.entries.size(), config.requests);

    const std::set<std::string> workloads = {"nreverse30", "trail40"};
    std::map<std::string, unsigned> perTenant;
    std::set<interp::ExecMode> modes;
    std::uint64_t prev = 0;
    for (const reqlog::Entry &e : log.entries) {
        EXPECT_GE(e.atNs, prev); // arrival offsets never go backwards
        prev = e.atNs;
        EXPECT_TRUE(workloads.count(e.workload)) << e.workload;
        ++perTenant[e.tenant];
        modes.insert(e.mode);
        if (e.deadlineNs != 0) {
            EXPECT_GE(e.deadlineNs, config.deadlineLoMs * 1'000'000);
            EXPECT_LE(e.deadlineNs, config.deadlineHiMs * 1'000'000);
        }
    }
    // fastShare = 0.5: both execution modes appear.
    EXPECT_EQ(modes.size(), 2u);
    // Tenants come from the fixed "t0".."tN-1" population and skew
    // heavy-tail: the head tenant out-sends the tail one.
    for (const auto &t : perTenant)
        EXPECT_TRUE(t.first == "t0" || t.first == "t1" ||
                    t.first == "t2")
            << t.first;
    EXPECT_GT(perTenant["t0"], perTenant["t2"]);
}

TEST(ReqlogFormat, BlankLinesAndCarriageReturnsAreTolerated)
{
    std::istringstream in("{\"psi_reqlog\": 1}\r\n"
                          "\n"
                          "{\"at_ns\": 5, \"workload\": \"x\"}\r\n");
    std::string error;
    auto log = reqlog::parse(in, &error);
    ASSERT_TRUE(log.has_value()) << error;
    ASSERT_EQ(log->entries.size(), 1u);
    EXPECT_EQ(log->entries[0].atNs, 5u);
    EXPECT_EQ(log->entries[0].line, 3u);
}

TEST(ReqlogFormat, MalformedLogsFailWithActionableLineErrors)
{
    // The parser is all-or-nothing: every corpus entry must fail,
    // name the offending 1-based line and say what is wrong with it.
    const std::string h = "{\"psi_reqlog\": 1}\n";
    struct Case
    {
        const char *name;
        std::string text;
        const char *wantLine;
        const char *wantWhy;
    };
    const Case corpus[] = {
        {"empty input", "", "line 1:", "empty log"},
        {"missing header",
         "{\"at_ns\": 0, \"workload\": \"x\"}\n", "line 1:",
         "psi_reqlog"},
        {"future version", "{\"psi_reqlog\": 3}\n", "line 1:",
         "unsupported reqlog version 3"},
        {"unknown header field",
         "{\"psi_reqlog\": 1, \"zone\": \"us\"}\n", "line 1:",
         "unknown header field 'zone'"},
        {"missing at_ns", h + "{\"workload\": \"x\"}\n", "line 2:",
         "missing required field \"at_ns\""},
        {"missing workload", h + "{\"at_ns\": 5}\n", "line 2:",
         "missing required field \"workload\""},
        {"empty workload",
         h + "{\"at_ns\": 5, \"workload\": \"\"}\n", "line 2:",
         "non-empty"},
        {"negative offset",
         h + "{\"at_ns\": -5, \"workload\": \"x\"}\n", "line 2:",
         "negative value for 'at_ns'"},
        {"fractional offset",
         h + "{\"at_ns\": 1.5, \"workload\": \"x\"}\n", "line 2:",
         "non-integer value for 'at_ns'"},
        {"overflowing offset",
         h + "{\"at_ns\": 99999999999999999999999, "
             "\"workload\": \"x\"}\n",
         "line 2:", "value of 'at_ns'"},
        {"time going backwards",
         h + "{\"at_ns\": 100, \"workload\": \"x\"}\n" +
             "{\"at_ns\": 50, \"workload\": \"x\"}\n",
         "line 3:", "goes backwards"},
        {"unknown mode",
         h + "{\"at_ns\": 0, \"workload\": \"x\", "
             "\"mode\": \"warp\"}\n",
         "line 2:", "unknown mode 'warp'"},
        {"unknown entry field",
         h + "{\"at_ns\": 0, \"workload\": \"x\", "
             "\"color\": \"red\"}\n",
         "line 2:", "unknown field 'color'"},
        {"junk after close",
         h + "{\"at_ns\": 0, \"workload\": \"x\"} trailing\n",
         "line 2:", "junk after closing '}'"},
        {"duplicate key",
         h + "{\"at_ns\": 0, \"at_ns\": 1, \"workload\": \"x\"}\n",
         "line 2:", "duplicate key 'at_ns'"},
        {"unterminated string",
         h + "{\"at_ns\": 0, \"workload\": \"x\n", "line 2:",
         "unterminated string"},
        {"not an object", h + "garbage\n", "line 2:",
         "expected '{'"},
    };

    for (const Case &c : corpus) {
        SCOPED_TRACE(c.name);
        std::istringstream in(c.text);
        std::string error;
        auto log = reqlog::parse(in, &error);
        EXPECT_FALSE(log.has_value());
        EXPECT_EQ(error.rfind(c.wantLine, 0), 0u) << error;
        EXPECT_NE(error.find(c.wantWhy), std::string::npos)
            << error;
    }
}

TEST(ReqlogFormat, ValidateWorkloadsNamesTheOffendingLine)
{
    std::istringstream in(
        "{\"psi_reqlog\": 1}\n"
        "{\"at_ns\": 0, \"workload\": \"nreverse30\"}\n"
        "{\"at_ns\": 10, \"workload\": \"nope\"}\n");
    std::string error;
    auto log = reqlog::parse(in, &error);
    ASSERT_TRUE(log.has_value()) << error;

    auto known = [](const std::string &id) {
        return programs::findProgramById(id) != nullptr;
    };
    EXPECT_FALSE(reqlog::validateWorkloads(*log, known, &error));
    EXPECT_NE(error.find("line 3"), std::string::npos) << error;
    EXPECT_NE(error.find("nope"), std::string::npos) << error;

    log->entries.pop_back();
    EXPECT_TRUE(reqlog::validateWorkloads(*log, known, &error));
}

TEST(ReqlogFormat, ParseFileNamesTheMissingPath)
{
    std::string error;
    auto log =
        reqlog::parseFile("/nonexistent/psi_replay_test.reqlog",
                          &error);
    EXPECT_FALSE(log.has_value());
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

// ---------------------------------------------------------------------
// Adversarial workloads
// ---------------------------------------------------------------------

/**
 * The replay default mix leans on the adversarial family; pin each
 * program's answer so a source edit cannot silently reshape every
 * log replayed against it.  setclash sums 6 same-set probes over 200
 * passes (200 * 21), permjoin joins perms of [1..5] x [1..4] on an
 * equal head (4 heads * 24 outer * 6 inner = 576), polyop adds a
 * 2000-call bound-key scan (27000) to the 26-way enumeration (351).
 */
TEST(AdversarialWorkloads, WorstCasesComputeTheirPinnedAnswers)
{
    const std::pair<const char *, const char *> expect[] = {
        {"setclash", "4200"},
        {"permjoin", "576"},
        {"polyop", "27351"},
    };
    for (const auto &[id, answer] : expect) {
        SCOPED_TRACE(id);
        PsiRun run = runOnPsi(programs::programById(id));
        EXPECT_TRUE(run.result.succeeded());
        ASSERT_EQ(run.result.solutions.size(), 1u);
        EXPECT_NE(run.result.solutions[0].str().find(answer),
                  std::string::npos)
            << run.result.solutions[0].str();
    }
}

// ---------------------------------------------------------------------
// Replay determinism through the pool
// ---------------------------------------------------------------------

/** Everything a replay client can observe about one outcome. */
std::string
payloadOf(const JobOutcome &out)
{
    std::string s = out.error;
    s += '|';
    s += std::to_string(static_cast<int>(out.run.result.status));
    s += '|';
    s += out.run.result.output;
    s += '|';
    s += std::to_string(out.run.result.inferences);
    for (const auto &sol : out.run.result.solutions) {
        s += '|';
        s += sol.str();
    }
    return s;
}

struct ReplayRun
{
    std::vector<std::string> payloads; ///< per entry, in log order
    std::map<std::string, std::uint64_t> dispatched; ///< per tenant
};

/** Submit every entry in log order; gather payloads + tenant counts. */
ReplayRun
runLogThroughPool(const reqlog::Log &log)
{
    EnginePool::Config config;
    config.workers = 3;
    config.queueCapacity = log.entries.size();
    EnginePool pool(config);

    std::vector<std::future<JobOutcome>> futures;
    for (const reqlog::Entry &e : log.entries) {
        QueryJob job;
        job.program = programs::programById(e.workload);
        job.tenant = e.tenant;
        job.mode = e.mode;
        // Deadline budgets stay off on purpose: a wall-clock budget
        // would make the payload timing-dependent, and this test is
        // about dispatch-order independence of the results.
        auto f = pool.submit(std::move(job));
        EXPECT_TRUE(f.has_value());
        if (f)
            futures.push_back(std::move(*f));
    }

    ReplayRun run;
    for (auto &f : futures) {
        JobOutcome out = f.get();
        EXPECT_TRUE(out.ok()) << out.error;
        run.payloads.push_back(payloadOf(out));
    }
    for (const auto &t : pool.metrics().sched.tenants)
        run.dispatched[t.name] = t.dispatched;
    return run;
}

TEST(ReplayDeterminism, SameLogTwiceThroughThePoolIsByteIdentical)
{
    reqlog::GenConfig config;
    config.seed = 2026;
    config.requests = 24;
    config.rate = 4000.0;
    config.tenants = 3;
    config.fastShare = 0.5;
    config.workloads = {
        {"nreverse30", 3}, {"qsort50", 2}, {"trail40", 1}};
    reqlog::Log log = reqlog::synthesize(config);

    ReplayRun first = runLogThroughPool(log);
    ReplayRun second = runLogThroughPool(log);

    ASSERT_EQ(first.payloads.size(), log.entries.size());
    ASSERT_EQ(second.payloads.size(), log.entries.size());
    for (std::size_t i = 0; i < log.entries.size(); ++i) {
        SCOPED_TRACE("entry " + std::to_string(i) + " (" +
                     log.entries[i].workload + ")");
        EXPECT_EQ(first.payloads[i], second.payloads[i]);
    }

    // Dispatch accounting is a pure function of the log too.
    EXPECT_EQ(first.dispatched, second.dispatched);
    std::uint64_t total = 0;
    for (const auto &t : first.dispatched)
        total += t.second;
    EXPECT_EQ(total, log.entries.size());
}

// ---------------------------------------------------------------------
// Scheduler under replay
// ---------------------------------------------------------------------

/** Two tenants, Zipf-skewed, bursty arrivals - the PR-7 policy must
 *  hold on a production-shaped arrival sequence, not just on the
 *  hand-built queues of test_sched.cpp. */
reqlog::GenConfig
burstyTwoTenantConfig()
{
    reqlog::GenConfig config;
    config.seed = 11;
    config.requests = 40;
    config.rate = 5000.0;
    config.burst = 10.0;
    config.burstDwellS = 0.002;
    config.tenants = 2;
    config.skew = 1.5;
    config.workloads = {{"nreverse30", 2}, {"trail40", 1}};
    return config;
}

TEST(SchedulerUnderReplay, BurstyTwoTenantLogInterleavesFairly)
{
    reqlog::Log log = reqlog::synthesize(burstyTwoTenantConfig());

    SchedConfig config;
    config.capacity = log.entries.size();
    config.ageCapNs = 0; // isolate the WFQ order
    AffinityScheduler<int> s(config);

    // Arrivals keep the log's non-uniform spacing (all in the past
    // so pops never block); affinity keys stay 0 to isolate
    // fairness.
    auto base = sched::SchedClock::now() - std::chrono::seconds(5);
    std::map<std::string, int> pushed;
    for (std::size_t i = 0; i < log.entries.size(); ++i) {
        const reqlog::Entry &e = log.entries[i];
        TaskInfo info;
        info.tenant = e.tenant;
        info.submitted =
            base + std::chrono::nanoseconds(e.atNs);
        int v = static_cast<int>(i);
        ASSERT_EQ(s.tryPush(info, v), PushResult::Ok);
        ++pushed[e.tenant];
    }
    ASSERT_EQ(pushed.size(), 2u); // the skewed log still has both
    const int minority = std::min(pushed["t0"], pushed["t1"]);
    ASSERT_GT(minority, 0);

    // Equal-weight WFQ pairs the i-th job of each tenant; while both
    // tenants are backlogged no prefix may drift more than one job
    // from a perfect interleave, however bursty the arrival order.
    std::map<std::string, int> popped;
    for (std::size_t i = 0; i < log.entries.size(); ++i) {
        auto d = s.pop(0, 0);
        ASSERT_TRUE(d.has_value());
        ++popped[log.entries[static_cast<std::size_t>(d->item)]
                     .tenant];
        if (static_cast<int>(i) < 2 * minority)
            EXPECT_LE(std::abs(popped["t0"] - popped["t1"]), 1)
                << "after " << i + 1 << " dispatches";
    }
    EXPECT_EQ(popped, pushed);

    auto snap = s.snapshot();
    EXPECT_EQ(snap.fairDispatches, log.entries.size());
    ASSERT_EQ(snap.tenants.size(), 2u);
    for (const auto &t : snap.tenants)
        EXPECT_EQ(t.dispatched,
                  static_cast<std::uint64_t>(pushed[t.name]))
            << t.name;
}

TEST(SchedulerUnderReplay, AffinityBatchesStayBoundedOnReplayOrder)
{
    reqlog::Log log = reqlog::synthesize(burstyTwoTenantConfig());

    SchedConfig config;
    config.capacity = log.entries.size();
    config.ageCapNs = 0;
    config.maxBatch = 4;
    AffinityScheduler<int> s(config);

    // Key each entry by its workload, the way the pool keys jobs by
    // compiled-image hash ('| 1' keeps the key nonzero).
    auto keyOf = [](const std::string &workload) {
        return static_cast<std::uint64_t>(
                   std::hash<std::string>{}(workload)) |
            1u;
    };
    auto now = sched::SchedClock::now();
    std::map<std::string, int> pushed;
    for (std::size_t i = 0; i < log.entries.size(); ++i) {
        const reqlog::Entry &e = log.entries[i];
        TaskInfo info;
        info.tenant = e.tenant;
        info.affinityKey = keyOf(e.workload);
        info.submitted = now;
        int v = static_cast<int>(i);
        ASSERT_EQ(s.tryPush(info, v), PushResult::Ok);
        ++pushed[e.tenant];
    }

    // One worker whose "loaded image" follows its dispatches, like a
    // warm engine: affinity may pull same-key jobs forward, but an
    // affinity dispatch must never extend a same-key run past
    // maxBatch.
    std::uint64_t loaded = 0;
    std::uint64_t runLength = 0;
    std::uint64_t affinityDispatches = 0;
    std::map<std::string, int> popped;
    for (std::size_t i = 0; i < log.entries.size(); ++i) {
        auto d = s.pop(0, loaded);
        ASSERT_TRUE(d.has_value());
        const reqlog::Entry &e =
            log.entries[static_cast<std::size_t>(d->item)];
        ++popped[e.tenant];
        if (d->cls == DispatchClass::Affinity) {
            ++affinityDispatches;
            EXPECT_EQ(keyOf(e.workload), loaded);
            EXPECT_LT(runLength, config.maxBatch)
                << "affinity dispatch " << i
                << " extended a full batch";
        }
        runLength =
            keyOf(e.workload) == loaded ? runLength + 1 : 1;
        loaded = keyOf(e.workload);
    }

    EXPECT_EQ(popped, pushed);
    auto snap = s.snapshot();
    EXPECT_EQ(snap.affinityDispatches, affinityDispatches);
    // Batching actually engaged on this log (it has two workloads
    // with long same-image stretches), and hits were counted.
    EXPECT_GE(snap.batches, 1u);
    EXPECT_GT(snap.affinityHits, 0u);
    EXPECT_EQ(snap.affinityHits + snap.affinityMisses,
              log.entries.size());
}

} // namespace
