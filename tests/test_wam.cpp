/**
 * @file
 * Baseline (compiled-code) engine tests: compilation shape, clause
 * indexing behaviour, control, and the cost model.
 */

#include <gtest/gtest.h>

#include "baseline/wam_machine.hpp"

using namespace psi;
using namespace psi::baseline;

namespace {

std::vector<std::string>
solutions(const std::string &program, const std::string &query,
          int max = 50)
{
    WamEngine eng;
    eng.consult(program);
    interp::RunLimits lim;
    lim.maxSolutions = max;
    auto r = eng.solve(query, lim);
    std::vector<std::string> out;
    for (const auto &s : r.solutions) {
        std::string line;
        for (const auto &kv : s.bindings) {
            if (!line.empty())
                line += " ";
            line += kv.first + "=" + kv.second->canonicalStr();
        }
        out.push_back(line.empty() ? "yes" : line);
    }
    return out;
}

/** Count occurrences of @p op in the clause code of name/arity. */
int
countOps(WamEngine &eng, const std::string &name,
         std::uint32_t arity, WOp op)
{
    const CompiledPred *pred =
        eng.compiler().predicate(eng.symbols().functor(name, arity));
    EXPECT_NE(pred, nullptr);
    int n = 0;
    for (const auto &cl : pred->clauses) {
        // Scan forward to the clause-terminating control transfer.
        for (std::size_t i = cl.entry;
             i < eng.compiler().code().size(); ++i) {
            const WInstr &w = eng.compiler().code()[i];
            if (w.op == op)
                ++n;
            if (w.op == WOp::Proceed || w.op == WOp::Execute ||
                w.op == WOp::Halt) {
                break;
            }
        }
    }
    return n;
}

} // namespace

TEST(WamCompile, FactIsGetProceed)
{
    WamEngine eng;
    eng.consult("color(red).");
    EXPECT_EQ(countOps(eng, "color", 1, WOp::GetConstant), 1);
    EXPECT_EQ(countOps(eng, "color", 1, WOp::Proceed), 1);
    EXPECT_EQ(countOps(eng, "color", 1, WOp::Allocate), 0);
}

TEST(WamCompile, LastCallOptimized)
{
    WamEngine eng;
    eng.consult("p :- q. q.");
    EXPECT_EQ(countOps(eng, "p", 0, WOp::Execute), 1);
    EXPECT_EQ(countOps(eng, "p", 0, WOp::Call), 0);
    EXPECT_EQ(countOps(eng, "p", 0, WOp::Allocate), 0);
}

TEST(WamCompile, EnvironmentOnlyWhenNeeded)
{
    WamEngine eng;
    eng.consult("two :- a, b. a. b.");
    EXPECT_EQ(countOps(eng, "two", 0, WOp::Allocate), 1);
    EXPECT_EQ(countOps(eng, "two", 0, WOp::Deallocate), 1);
    EXPECT_EQ(countOps(eng, "two", 0, WOp::Call), 1);
    EXPECT_EQ(countOps(eng, "two", 0, WOp::Execute), 1);
}

TEST(WamCompile, PermanentVariablesUseY)
{
    WamEngine eng;
    eng.consult("p(X, Y) :- q(X), r(Y). q(_). r(_).");
    // Y survives the first call: it must be a permanent variable.
    EXPECT_GE(countOps(eng, "p", 2, WOp::GetVariableY), 1);
}

TEST(WamCompile, TemporariesStayInX)
{
    WamEngine eng;
    eng.consult("p(X) :- q(X). q(_).");
    EXPECT_EQ(countOps(eng, "p", 1, WOp::GetVariableY), 0);
}

TEST(WamCompile, ListHeadUsesGetListStream)
{
    WamEngine eng;
    eng.consult("first([H|_], H).");
    EXPECT_EQ(countOps(eng, "first", 2, WOp::GetList), 1);
    EXPECT_GE(countOps(eng, "first", 2, WOp::UnifyVariableX), 1);
    EXPECT_EQ(countOps(eng, "first", 2, WOp::UnifyVoid), 1);
}

TEST(WamCompile, NestedStructureBreadthFirst)
{
    WamEngine eng;
    eng.consult("deep(f(g(1))).");
    EXPECT_EQ(countOps(eng, "deep", 1, WOp::GetStruct), 2);
}

TEST(WamCompile, CutCompilation)
{
    WamEngine eng;
    eng.consult("neck(X) :- !, q(X). late(X) :- q(X), !, r(X). "
                "q(_). r(_).");
    EXPECT_EQ(countOps(eng, "neck", 1, WOp::NeckCut), 1);
    EXPECT_EQ(countOps(eng, "late", 1, WOp::GetLevel), 1);
    EXPECT_EQ(countOps(eng, "late", 1, WOp::CutY), 1);
}

TEST(WamIndex, FirstArgumentIndexingSkipsChoicePoints)
{
    WamEngine eng;
    eng.consult("t(a, 1). t(b, 2). t(c, 3).");
    auto r = eng.solve("t(b, X)");
    ASSERT_TRUE(r.succeeded());
    // A bound, discriminating first argument: no choice point.
    EXPECT_EQ(eng.counters().tries, 0u);
    EXPECT_EQ(eng.counters().indexes, 1u);
}

TEST(WamIndex, UnboundFirstArgTriesAll)
{
    WamEngine eng;
    eng.consult("t(a, 1). t(b, 2). t(c, 3).");
    interp::RunLimits lim;
    lim.maxSolutions = 10;
    auto r = eng.solve("t(K, V)", lim);
    EXPECT_EQ(r.solutions.size(), 3u);
    EXPECT_GE(eng.counters().tries, 1u);
}

TEST(WamIndex, StructKeyDiscriminates)
{
    WamEngine eng;
    eng.consult("s(f(1), yes). s(g(W), no(W)).");
    auto r = eng.solve("s(g(9), X)");
    ASSERT_TRUE(r.succeeded());
    EXPECT_EQ(r.solutions[0].bindings.at("X")->str(), "no(9)");
    EXPECT_EQ(eng.counters().tries, 0u);
}

TEST(WamIndex, ConstKeyMismatchFailsFast)
{
    WamEngine eng;
    eng.consult("u(a). u(b).");
    auto r = eng.solve("u(zzz)");
    EXPECT_FALSE(r.succeeded());
    EXPECT_EQ(eng.counters().tries, 0u);
}

TEST(WamControl, EnumerationMatchesSourceOrder)
{
    auto v = solutions("w(b). w(a). w(c).", "w(X)");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "X=b");
}

TEST(WamControl, CutSemantics)
{
    auto v = solutions("m(1) :- !. m(2).", "m(X)");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], "X=1");
}

TEST(WamControl, NegationAndIfThenElse)
{
    EXPECT_EQ(solutions("", "\\+ 1 > 2").size(), 1u);
    EXPECT_TRUE(solutions("", "\\+ 1 < 2").empty());
    auto v = solutions("", "(2 > 1 -> X = a ; X = b)");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], "X=a");
}

TEST(WamControl, IncrementalConsultAppends)
{
    WamEngine eng;
    eng.consult("pick(1).");
    eng.consult("pick(2).");
    interp::RunLimits lim;
    lim.maxSolutions = 10;
    auto r = eng.solve("pick(X)", lim);
    EXPECT_EQ(r.solutions.size(), 2u);
}

TEST(WamControl, DeepRecursion)
{
    auto v = solutions(
        "count(0). count(N) :- N > 0, N1 is N - 1, count(N1).",
        "count(30000)", 1);
    EXPECT_EQ(v.size(), 1u);
}

TEST(WamControl, StepLimit)
{
    WamEngine eng;
    eng.consult("spin :- spin.");
    interp::RunLimits lim;
    lim.maxSteps = 5000;
    auto r = eng.solve("spin", lim);
    EXPECT_TRUE(r.stepLimitHit);
}

TEST(WamBuiltins, ArithmeticAndComparison)
{
    EXPECT_EQ(solutions("", "X is 3 * 4 - 2")[0], "X=10");
    EXPECT_EQ(solutions("", "X is -9 mod 4")[0], "X=3");
    EXPECT_TRUE(solutions("", "2 + 2 =:= 4").size() == 1);
    EXPECT_TRUE(solutions("", "1 > 2").empty());
}

TEST(WamBuiltins, TermInspection)
{
    EXPECT_EQ(solutions("", "functor(f(a,b), F, A)")[0], "A=2 F=f");
    EXPECT_EQ(solutions("", "arg(1, f(x,y), V)")[0], "V=x");
    EXPECT_EQ(solutions("", "g(7) =.. L")[0], "L=[g,7]");
    EXPECT_EQ(solutions("", "T =.. [h, 1, 2]")[0], "T=h(1,2)");
}

TEST(WamBuiltins, Vectors)
{
    auto v = solutions(
        "", "vector_new(3, V), vector_set(V, 1, 5), "
            "vector_get(V, 1, X), vector_size(V, N), X = X, N = N");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].find("X=5"), std::string::npos);
    EXPECT_NE(v[0].find("N=3"), std::string::npos);
}

TEST(WamBuiltins, WriteOutput)
{
    WamEngine eng;
    eng.consult("go :- write(f([1, 2], x)), nl.");
    auto r = eng.solve("go");
    ASSERT_TRUE(r.succeeded());
    EXPECT_EQ(r.output, "f([1,2],x)\n");
}

TEST(WamCost, TimeGrowsWithWork)
{
    WamEngine eng;
    eng.consult("len([], 0). len([_|T], N) :- len(T, N0), N is N0 + 1.");
    auto r1 = eng.solve("len([1,2,3], N)");
    auto t1 = r1.timeNs;
    auto r2 = eng.solve("len([1,2,3,4,5,6,7,8,9,10], N)");
    EXPECT_GT(r2.timeNs, t1);
    EXPECT_GT(r1.timeNs, 0u);
}

TEST(WamCost, CountersFeedModel)
{
    WamEngine eng;
    eng.consult("p(X) :- X is 1 + 1.");
    auto r = eng.solve("p(X)");
    ASSERT_TRUE(r.succeeded());
    const CostCounters &c = eng.counters();
    EXPECT_GT(c.totalInstr(), 0u);
    EXPECT_GE(c.arithNodes, 3u);  // the +, and both leaves
    EXPECT_EQ(r.timeNs, c.timeNs(CostModel::dec2060()));
}
