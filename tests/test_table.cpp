#include <gtest/gtest.h>

#include "base/table.hpp"

using psi::Table;

TEST(Table, RendersHeaderAndRows)
{
    Table t("My Table");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::string s = t.str();
    EXPECT_NE(s.find("My Table"), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, FirstColumnLeftAlignedRestRight)
{
    Table t("t");
    t.setHeader({"aa", "bb"});
    t.addRow({"x", "y"});
    std::string s = t.str();
    // Label column padded on the right, value column on the left.
    EXPECT_NE(s.find("x "), std::string::npos);
    EXPECT_NE(s.find(" y"), std::string::npos);
}

TEST(Table, SeparatorLine)
{
    Table t("t");
    t.setHeader({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 3u);
    // A separator renders as a dashed line.
    EXPECT_NE(t.str().find("---"), std::string::npos);
}

TEST(Table, RowCountExcludesNothing)
{
    Table t("t");
    t.setHeader({"a", "b", "c"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.rowCount(), 1u);
}

TEST(TableDeathTest, MismatchedRowWidthPanics)
{
    Table t("t");
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}
