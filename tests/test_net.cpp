/**
 * @file
 * psinet tests: wire-protocol framing and the TCP loopback path.
 *
 *  - property-style encode/decode round-trips for every message kind
 *  - truncated-frame and oversized-frame rejection
 *  - loopback integration: answers and engine statistics over TCP
 *    are byte-identical to sequential runOnPsi() for the full
 *    workload registry, deadlines propagate as RunStatus::Timeout,
 *    and fail-fast queue saturation surfaces as OVERLOADED replies
 *  - graceful drain: DRAIN ack, event-loop exit, refused reconnect
 *
 * The binary carries the `net` ctest label so the group runs under
 * ThreadSanitizer alongside `service`:
 *
 *     cmake -B build-tsan -S . -DPSI_SANITIZE=thread
 *     cmake --build build-tsan -j
 *     ctest --test-dir build-tsan -L "service|net"
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "psi.hpp"

namespace {

using namespace psi;
using net::DrainAckMsg;
using net::DrainMsg;
using net::FrameResult;
using net::Message;
using net::ResultMsg;
using net::StatsMsg;
using net::StatsReplyMsg;
using net::SubmitMsg;
using net::WireStatus;

// ---------------------------------------------------------------------
// Wire protocol: round trips
// ---------------------------------------------------------------------

std::string
randomString(std::mt19937_64 &rng, std::size_t maxLen)
{
    std::uniform_int_distribution<std::size_t> len(0, maxLen);
    std::uniform_int_distribution<int> byte(0, 255);
    std::string s(len(rng), '\0');
    for (char &c : s)
        c = static_cast<char>(byte(rng));
    return s;
}

SubmitMsg
randomSubmit(std::mt19937_64 &rng)
{
    SubmitMsg m;
    m.tag = rng();
    m.workload = randomString(rng, 64);
    m.deadlineNs = rng();
    return m;
}

ResultMsg
randomResult(std::mt19937_64 &rng)
{
    ResultMsg m;
    m.tag = rng();
    m.status = static_cast<WireStatus>(rng() % 20);
    m.error = randomString(rng, 128);
    std::uniform_int_distribution<std::size_t> nsol(0, 5);
    m.solutions.resize(nsol(rng));
    for (auto &s : m.solutions)
        s = randomString(rng, 200);
    m.output = randomString(rng, 300);
    m.inferences = rng();
    m.steps = rng();
    m.modelNs = rng();
    m.stallNs = rng();
    for (auto &v : m.seq.moduleSteps)
        v = rng();
    for (auto &v : m.seq.branchOps)
        v = rng();
    for (auto &row : m.seq.wfModes)
        for (auto &v : row)
            v = rng();
    for (auto &v : m.seq.cacheSteps)
        v = rng();
    for (auto &row : m.cache.accesses)
        for (auto &v : row)
            v = rng();
    for (auto &row : m.cache.hits)
        for (auto &v : row)
            v = rng();
    m.cache.readIns = rng();
    m.cache.writeBacks = rng();
    m.cache.stackAllocs = rng();
    m.cache.throughWrites = rng();
    m.queueNs = rng();
    m.execNs = rng();
    m.latencyNs = rng();
    m.traceTag = rng();
    return m;
}

void
expectEq(const SubmitMsg &a, const SubmitMsg &b)
{
    EXPECT_EQ(a.tag, b.tag);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.deadlineNs, b.deadlineNs);
}

void
expectEq(const ResultMsg &a, const ResultMsg &b)
{
    EXPECT_EQ(a.tag, b.tag);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.solutions, b.solutions);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.inferences, b.inferences);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.modelNs, b.modelNs);
    EXPECT_EQ(a.stallNs, b.stallNs);
    EXPECT_EQ(a.seq.moduleSteps, b.seq.moduleSteps);
    EXPECT_EQ(a.seq.branchOps, b.seq.branchOps);
    EXPECT_EQ(a.seq.wfModes, b.seq.wfModes);
    EXPECT_EQ(a.seq.cacheSteps, b.seq.cacheSteps);
    EXPECT_EQ(a.cache.accesses, b.cache.accesses);
    EXPECT_EQ(a.cache.hits, b.cache.hits);
    EXPECT_EQ(a.cache.readIns, b.cache.readIns);
    EXPECT_EQ(a.cache.writeBacks, b.cache.writeBacks);
    EXPECT_EQ(a.cache.stackAllocs, b.cache.stackAllocs);
    EXPECT_EQ(a.cache.throughWrites, b.cache.throughWrites);
    EXPECT_EQ(a.queueNs, b.queueNs);
    EXPECT_EQ(a.execNs, b.execNs);
    EXPECT_EQ(a.latencyNs, b.latencyNs);
    EXPECT_EQ(a.traceTag, b.traceTag);
}

/** encode -> frame extraction -> decode, returning the message. */
Message
roundTrip(const Message &msg)
{
    std::string buffer = net::encode(msg);
    std::string payload;
    EXPECT_EQ(net::extractFrame(buffer, payload),
              FrameResult::Frame);
    EXPECT_TRUE(buffer.empty());
    std::string error;
    std::optional<Message> out = net::decode(payload, &error);
    EXPECT_TRUE(out.has_value()) << error;
    return out.value_or(Message(StatsMsg{}));
}

TEST(Wire, SubmitRoundTripsProperty)
{
    std::mt19937_64 rng(20260805);
    for (int i = 0; i < 100; ++i) {
        SubmitMsg msg = randomSubmit(rng);
        Message out = roundTrip(Message(msg));
        ASSERT_TRUE(std::holds_alternative<SubmitMsg>(out));
        expectEq(msg, std::get<SubmitMsg>(out));
    }
}

TEST(Wire, ResultRoundTripsProperty)
{
    std::mt19937_64 rng(42);
    for (int i = 0; i < 50; ++i) {
        ResultMsg msg = randomResult(rng);
        Message out = roundTrip(Message(msg));
        ASSERT_TRUE(std::holds_alternative<ResultMsg>(out));
        expectEq(msg, std::get<ResultMsg>(out));
    }
}

TEST(Wire, ControlMessagesRoundTrip)
{
    EXPECT_TRUE(std::holds_alternative<StatsMsg>(
        roundTrip(Message(StatsMsg{}))));
    EXPECT_TRUE(std::holds_alternative<DrainMsg>(
        roundTrip(Message(DrainMsg{}))));
    EXPECT_TRUE(std::holds_alternative<DrainAckMsg>(
        roundTrip(Message(DrainAckMsg{}))));

    StatsReplyMsg stats;
    stats.json = "{\"completed\": 7}";
    Message out = roundTrip(Message(stats));
    ASSERT_TRUE(std::holds_alternative<StatsReplyMsg>(out));
    EXPECT_EQ(std::get<StatsReplyMsg>(out).json, stats.json);
}

// ---------------------------------------------------------------------
// Wire protocol: framing rejection
// ---------------------------------------------------------------------

TEST(Wire, PartialFrameNeedsMoreAndLeavesBufferIntact)
{
    std::mt19937_64 rng(7);
    std::string frame = net::encode(Message(randomResult(rng)));

    // Every proper prefix is an incomplete frame, never an error.
    for (std::size_t cut : {std::size_t(0), std::size_t(1),
                            std::size_t(3), frame.size() / 2,
                            frame.size() - 1}) {
        std::string buffer = frame.substr(0, cut);
        std::string payload;
        EXPECT_EQ(net::extractFrame(buffer, payload),
                  FrameResult::NeedMore)
            << "cut=" << cut;
        EXPECT_EQ(buffer, frame.substr(0, cut));
    }
}

TEST(Wire, ChunkedDeliveryReassembles)
{
    std::mt19937_64 rng(11);
    ResultMsg msg = randomResult(rng);
    std::string frame = net::encode(Message(msg));

    // Deliver 3 bytes at a time, as a slow TCP peer would.
    std::string buffer, payload;
    for (std::size_t off = 0; off < frame.size(); off += 3) {
        buffer.append(frame.substr(off, 3));
        FrameResult r = net::extractFrame(buffer, payload);
        if (off + 3 < frame.size())
            ASSERT_EQ(r, FrameResult::NeedMore);
        else
            ASSERT_EQ(r, FrameResult::Frame);
    }
    std::optional<Message> out = net::decode(payload);
    ASSERT_TRUE(out.has_value());
    expectEq(msg, std::get<ResultMsg>(*out));
}

TEST(Wire, TruncatedPayloadRejectedAtEveryCut)
{
    std::mt19937_64 rng(13);
    std::string frame = net::encode(Message(randomResult(rng)));
    std::string payload = frame.substr(net::kFrameHeaderBytes);

    for (std::size_t cut = 1; cut < payload.size(); ++cut) {
        std::string error;
        EXPECT_FALSE(
            net::decode(payload.substr(0, cut), &error).has_value())
            << "cut=" << cut;
        EXPECT_FALSE(error.empty());
    }
    // The untruncated payload still decodes (sanity).
    EXPECT_TRUE(net::decode(payload).has_value());
}

TEST(Wire, TrailingGarbageRejected)
{
    std::string frame = net::encode(Message(StatsMsg{}));
    std::string payload = frame.substr(net::kFrameHeaderBytes);
    payload.push_back('x');
    std::string error;
    EXPECT_FALSE(net::decode(payload, &error).has_value());
    EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(Wire, OversizedFrameRejected)
{
    std::uint32_t huge = net::kMaxFramePayload + 1;
    std::string buffer;
    for (int shift = 24; shift >= 0; shift -= 8)
        buffer.push_back(static_cast<char>((huge >> shift) & 0xff));
    buffer.append("payload bytes that must never be buffered");
    std::string payload;
    EXPECT_EQ(net::extractFrame(buffer, payload), FrameResult::Bad);
}

TEST(Wire, EmptyFrameRejected)
{
    std::string buffer(net::kFrameHeaderBytes, '\0'); // length 0
    std::string payload;
    EXPECT_EQ(net::extractFrame(buffer, payload), FrameResult::Bad);
}

TEST(Wire, UnknownMessageTypeRejected)
{
    std::string payload(1, static_cast<char>(0x63));
    std::string error;
    EXPECT_FALSE(net::decode(payload, &error).has_value());
    EXPECT_NE(error.find("unknown message type"), std::string::npos);
}

TEST(Wire, MaliciousSolutionCountRejectedWithoutAllocation)
{
    // A ~18-byte RESULT payload claiming 2^32-1 solutions: decode()
    // must reject it from the count/remaining-bytes check instead of
    // attempting a multi-GB vector resize.
    std::string payload;
    payload.push_back(
        static_cast<char>(net::MsgType::Result)); // type
    payload.append(8, '\0');                      // tag u64
    payload.push_back('\0');                      // status u8
    payload.append(4, '\0');                      // error len = 0
    payload.append(4, '\xff');                    // nsolutions = 2^32-1

    std::string error;
    EXPECT_FALSE(net::decode(payload, &error).has_value());
    EXPECT_NE(error.find("truncated"), std::string::npos);

    // Same with a count that fits a u32 but not the payload.
    payload.resize(payload.size() - 4);
    payload.append({'\0', '\0', '\x01', '\0'}); // nsolutions = 256
    payload.append(16, '\0');                   // only 4 fit
    EXPECT_FALSE(net::decode(payload, &error).has_value());
}

// ---------------------------------------------------------------------
// Loopback integration
// ---------------------------------------------------------------------

/** A PsiServer running its event loop on a background thread. */
struct ServerHarness
{
    net::PsiServer server;
    std::thread loop;

    explicit ServerHarness(const net::PsiServer::Config &config)
        : server(config)
    {
        std::string error;
        if (!server.start(&error))
            throw std::runtime_error("server start: " + error);
        loop = std::thread([this] { server.run(); });
    }

    ~ServerHarness()
    {
        server.requestDrain();
        if (loop.joinable())
            loop.join();
    }

    std::uint16_t port() const { return server.port(); }
};

net::PsiServer::Config
serverConfig(unsigned workers, std::size_t capacity,
             std::uint16_t port = 0)
{
    net::PsiServer::Config config;
    config.port = port; // 0 = ephemeral
    config.workers = workers;
    config.queueCapacity = capacity;
    config.submitMode = service::Submit::FailFast;
    return config;
}

/** A fast-paced retry policy for loopback chaos (real defaults would
 *  make the suite sleep for seconds on every injected fault). */
net::RetryPolicy
testRetryPolicy(unsigned maxAttempts, unsigned connectAttempts)
{
    net::RetryPolicy policy;
    policy.maxAttempts = maxAttempts;
    policy.connectAttempts = connectAttempts;
    policy.backoffBaseNs = 1'000'000;  // 1 ms
    policy.backoffMaxNs = 50'000'000;  // 50 ms
    policy.overloadedFloorNs = 10'000'000;
    policy.seed = 20260805;
    return policy;
}

/** Opt-in SO_REUSEPORT: two servers bind the same port concurrently
 *  (the kernel balances accepts between them), while the default
 *  config still refuses the second bind. */
TEST(Loopback, ReusePortAllowsTwoConcurrentListeners)
{
    net::PsiServer::Config first = serverConfig(1, 8);
    first.reusePort = true;
    ServerHarness one(first);

    net::PsiServer::Config second =
        serverConfig(1, 8, one.port());
    second.reusePort = true;
    ServerHarness two(second); // same port: must NOT throw
    EXPECT_EQ(two.port(), one.port());

    // Both listeners are live: a connection reaches one of them and
    // serves a real request.
    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", one.port(), &error))
        << error;
    auto result =
        client.submit(net::Request{"nreverse30"}, nullptr, &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_EQ(result->status, net::WireStatus::Ok);

    // Without the opt-in, the same double bind still fails.
    net::PsiServer third(serverConfig(1, 8, one.port()));
    EXPECT_FALSE(third.start(&error));
    EXPECT_NE(error.find("bind"), std::string::npos);
}

/** Full registry over TCP == sequential execution, bit for bit. */
TEST(Loopback, RegistryMatchesSequentialByteForByte)
{
    ServerHarness harness(serverConfig(4, 32));
    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", harness.port(), &error))
        << error;

    for (const auto &program : programs::allPrograms()) {
        SCOPED_TRACE(program.id);
        PsiRun want = runOnPsi(program);
        auto got =
            client.submit(net::Request{program.id}, nullptr, &error);
        ASSERT_TRUE(got.has_value()) << error;

        EXPECT_EQ(got->status, net::wireStatus(want.result.status));
        ASSERT_EQ(got->solutions.size(),
                  want.result.solutions.size());
        for (std::size_t i = 0; i < got->solutions.size(); ++i)
            EXPECT_EQ(got->solutions[i],
                      want.result.solutions[i].str());
        EXPECT_EQ(got->output, want.result.output);

        EXPECT_EQ(got->inferences, want.result.inferences);
        EXPECT_EQ(got->steps, want.result.steps);
        EXPECT_EQ(got->modelNs, want.result.timeNs);
        EXPECT_EQ(got->stallNs, want.stallNs);
        EXPECT_EQ(got->seq.moduleSteps, want.seq.moduleSteps);
        EXPECT_EQ(got->seq.branchOps, want.seq.branchOps);
        EXPECT_EQ(got->seq.wfModes, want.seq.wfModes);
        EXPECT_EQ(got->seq.cacheSteps, want.seq.cacheSteps);
        EXPECT_EQ(got->cache.accesses, want.cache.accesses);
        EXPECT_EQ(got->cache.hits, want.cache.hits);
        EXPECT_EQ(got->cache.readIns, want.cache.readIns);
        EXPECT_EQ(got->cache.writeBacks, want.cache.writeBacks);
        EXPECT_EQ(got->cache.stackAllocs, want.cache.stackAllocs);
        EXPECT_EQ(got->cache.throughWrites,
                  want.cache.throughWrites);
        EXPECT_GT(got->latencyNs, 0u);
    }
}

/**
 * Fast mode over TCP: the v2.2 mode flag reaches the pool, answers
 * stay byte-identical to fidelity, the skipped accounting reads
 * zero, and the per-mode counter surfaces in STATS.
 */
TEST(Loopback, FastModeMatchesFidelityAnswersOverWire)
{
    ServerHarness harness(serverConfig(2, 16));
    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", harness.port(), &error))
        << error;

    for (const char *id : {"nreverse30", "trail40", "permall6"}) {
        SCOPED_TRACE(id);
        PsiRun want = runOnPsi(programs::programById(id));

        net::Request request{id};
        request.mode = interp::ExecMode::Fast;
        auto got = client.submit(request, nullptr, &error);
        ASSERT_TRUE(got.has_value()) << error;

        EXPECT_EQ(got->status, net::wireStatus(want.result.status));
        ASSERT_EQ(got->solutions.size(),
                  want.result.solutions.size());
        for (std::size_t i = 0; i < got->solutions.size(); ++i)
            EXPECT_EQ(got->solutions[i],
                      want.result.solutions[i].str());
        EXPECT_EQ(got->output, want.result.output);
        EXPECT_EQ(got->inferences, want.result.inferences);
        // Fast mode reports no model clock or hardware stats.
        EXPECT_EQ(got->steps, 0u);
        EXPECT_EQ(got->modelNs, 0u);
        EXPECT_EQ(got->cache.readIns, 0u);
    }

    auto statsJson = client.stats(-1, &error);
    ASSERT_TRUE(statsJson.has_value()) << error;
    EXPECT_NE(statsJson->find("\"completed_fast\": 3"),
              std::string::npos)
        << *statsJson;
}

/** An expired per-request deadline comes back as Timeout. */
TEST(Loopback, DeadlinePropagatesAsTimeout)
{
    ServerHarness harness(serverConfig(1, 8));
    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", harness.port(), &error))
        << error;

    // 1 ns: the budget starts at submit, so it is already spent by
    // the time a worker picks the job up - the RESULT carries
    // Timeout with zero statistics (the engine never ran).
    auto result =
        client.submit(net::Request{"bup3", 1}, nullptr, &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_EQ(result->status, WireStatus::Timeout);
    EXPECT_EQ(result->steps, 0u);
    EXPECT_EQ(result->inferences, 0u);

    // 50 ms against a ~900 ms workload: the job starts (queue wait
    // is microseconds here) and expires mid-run, so the RESULT
    // carries Timeout plus the partial statistics.
    result = client.submit(net::Request{"lisp_tarai", 50'000'000},
                           nullptr, &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_EQ(result->status, WireStatus::Timeout);
    EXPECT_GT(result->steps, 0u);
    EXPECT_GT(result->inferences, 0u);
}

TEST(Loopback, SaturatedQueueRepliesOverloaded)
{
    // One worker, one queue slot, fail-fast: a burst of pipelined
    // submits must overflow and the overflow must be surfaced as
    // OVERLOADED replies, not an accept stall.
    ServerHarness harness(serverConfig(1, 1));
    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", harness.port(), &error))
        << error;

    constexpr int kBurst = 8;
    constexpr std::uint64_t kDeadlineNs = 200'000'000; // bound runtime
    for (int i = 0; i < kBurst; ++i)
        ASSERT_TRUE(client.sendSubmit("bup3", kDeadlineNs, nullptr,
                                      &error))
            << error;

    int overloaded = 0, ran = 0;
    for (int i = 0; i < kBurst; ++i) {
        auto result = client.recvResult(-1, &error);
        ASSERT_TRUE(result.has_value()) << error;
        if (result->status == WireStatus::Overloaded) {
            ++overloaded;
            EXPECT_NE(result->error.find("queue full"),
                      std::string::npos);
        } else {
            ++ran;
            EXPECT_TRUE(result->ran());
        }
    }
    // The worker can hold one job and the queue one more; the rest
    // of the burst (sent faster than any consult can finish) must
    // have been refused.
    EXPECT_GE(overloaded, kBurst - 2);
    EXPECT_GE(ran, 1);

    auto snap = harness.server.metrics();
    EXPECT_EQ(snap.rejected,
              static_cast<std::uint64_t>(overloaded));
}

TEST(Loopback, UnknownWorkloadIsActionable)
{
    ServerHarness harness(serverConfig(1, 4));
    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", harness.port(), &error))
        << error;

    auto result = client.submit(net::Request{"no_such_workload"},
                                nullptr, &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_EQ(result->status, WireStatus::UnknownWorkload);
    EXPECT_NE(result->error.find("no_such_workload"),
              std::string::npos);
    EXPECT_NE(result->error.find("available"), std::string::npos);
    EXPECT_NE(result->error.find("nreverse30"), std::string::npos);
}

TEST(Loopback, StatsReplyCarriesServiceMetricsJson)
{
    ServerHarness harness(serverConfig(2, 8));
    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", harness.port(), &error))
        << error;

    auto result =
        client.submit(net::Request{"nreverse30"}, nullptr, &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_EQ(result->status, WireStatus::Ok);

    auto json = client.stats(-1, &error);
    ASSERT_TRUE(json.has_value()) << error;
    EXPECT_NE(json->find("\"completed\": 1"), std::string::npos);
    EXPECT_NE(json->find("\"workers\": 2"), std::string::npos);
    EXPECT_NE(json->find("\"aggregate_lips\""), std::string::npos);
}

TEST(Loopback, DrainFinishesInFlightAndStopsAccepting)
{
    auto harness = std::make_unique<ServerHarness>(serverConfig(2, 8));
    std::uint16_t port = harness->port();

    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", port, &error)) << error;

    // Pipeline work, then ask for drain before collecting it: the
    // drain must still deliver every in-flight RESULT.
    ASSERT_TRUE(client.sendSubmit("nreverse30", 0, nullptr, &error))
        << error;
    ASSERT_TRUE(client.sendSubmit("queens1", 0, nullptr, &error))
        << error;
    ASSERT_TRUE(client.drain(-1, &error)) << error;
    EXPECT_TRUE(harness->server.draining());

    int completed = 0;
    for (int i = 0; i < 2; ++i) {
        auto result = client.recvResult(-1, &error);
        ASSERT_TRUE(result.has_value()) << error;
        EXPECT_TRUE(result->ran());
        ++completed;
    }
    EXPECT_EQ(completed, 2);

    // The event loop exits once everything is flushed...
    harness.reset();

    // ... and the listener is gone: reconnecting is refused.
    net::PsiClient after;
    EXPECT_FALSE(after.connect("127.0.0.1", port, &error));
}

// ---------------------------------------------------------------------
// Connect retry
// ---------------------------------------------------------------------

/** Grab a loopback port nothing is listening on right now. */
std::uint16_t
freeLoopbackPort()
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    ::close(fd);
    return ntohs(addr.sin_port);
}

TEST(ConnectRetry, FailureReportsAttemptCount)
{
    net::PsiClient client;
    client.setRetryPolicy(testRetryPolicy(4, 3));
    std::string error;
    EXPECT_FALSE(
        client.connect("127.0.0.1", freeLoopbackPort(), &error));
    EXPECT_NE(error.find("(after 3 attempts)"), std::string::npos)
        << error;
    EXPECT_EQ(client.retryStats().connectDials, 3u);
    EXPECT_EQ(client.retryStats().connectRetries, 2u);
}

TEST(ConnectRetry, LateStartingServerEventuallyAccepts)
{
    // The server comes up ~200 ms after the client starts dialing:
    // the early ECONNREFUSED dials must be retried, not fatal.
    std::uint16_t port = freeLoopbackPort();
    std::unique_ptr<ServerHarness> harness;
    std::thread starter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        harness = std::make_unique<ServerHarness>(
            serverConfig(1, 4, port));
    });

    net::PsiClient client;
    client.setRetryPolicy(testRetryPolicy(4, 50));
    std::string error;
    bool ok = client.connect("127.0.0.1", port, &error);
    starter.join();
    ASSERT_TRUE(ok) << error;
    EXPECT_GT(client.retryStats().connectRetries, 0u);

    auto result =
        client.submit(net::Request{"nreverse30"}, nullptr, &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_EQ(result->status, WireStatus::Ok);
}

// ---------------------------------------------------------------------
// Retrying submits
// ---------------------------------------------------------------------

TEST(Retry, OverloadedBackpressureRetriesUntilCapacityFrees)
{
    // One worker, one queue slot: park two bounded jobs so the pool
    // is saturated, then submitRetry() a third from a second client.
    // Its early attempts are refused OVERLOADED; the retry loop must
    // back off and land the job once the deadline reaps the parked
    // work.
    ServerHarness harness(serverConfig(1, 1));
    std::string error;

    net::PsiClient pipeline;
    ASSERT_TRUE(
        pipeline.connect("127.0.0.1", harness.port(), &error))
        << error;
    for (int i = 0; i < 2; ++i)
        ASSERT_TRUE(pipeline.sendSubmit("bup3", 300'000'000ull,
                                        nullptr, &error))
            << error;

    net::PsiClient client;
    client.setRetryPolicy(testRetryPolicy(100, 3));
    ASSERT_TRUE(client.connect("127.0.0.1", harness.port(), &error))
        << error;
    auto result = client.submit(net::Request{"nreverse30", 0, 10'000},
                                &client.retryPolicy(), &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_EQ(result->status, WireStatus::Ok);
    EXPECT_GT(client.retryStats().overloadedRetries, 0u);
    EXPECT_EQ(client.retryStats().exhausted, 0u);

    for (int i = 0; i < 2; ++i)
        ASSERT_TRUE(pipeline.recvResult(-1, &error)) << error;
}

TEST(Retry, DeadlineBudgetBoundsTheWholeCall)
{
    // No server at all: every attempt fails to dial.  The call must
    // give up within the deadline budget instead of burning through
    // maxAttempts worth of backoff.
    net::PsiClient client;
    net::RetryPolicy policy = testRetryPolicy(1000, 1);
    policy.backoffBaseNs = 20'000'000; // 20 ms per retry
    client.setRetryPolicy(policy);
    std::string error;
    EXPECT_FALSE(
        client.connect("127.0.0.1", freeLoopbackPort(), &error));

    auto start = std::chrono::steady_clock::now();
    auto result =
        client.submit(net::Request{"nreverse30", 200'000'000ull},
                      &client.retryPolicy(), &error);
    auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_FALSE(result.has_value());
    EXPECT_EQ(client.retryStats().exhausted, 1u);
    // Bounded by the 200 ms budget, not the 1000-attempt policy
    // (generous margin: one in-flight backoff may finish late).
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                  elapsed)
                  .count(),
              2000);
}

// ---------------------------------------------------------------------
// Chaos: the full registry through a hostile network
// ---------------------------------------------------------------------

/**
 * The tentpole chaos run: every registry workload is submitted
 * through a fault proxy that splits, coalesces, delays, truncates
 * and hard-resets the byte stream on a fixed seed, and the server is
 * killed and restarted in the middle of the batch.  The retrying
 * client must complete the whole batch with zero hangs and zero
 * duplicated solutions, and every delivered RESULT must be
 * byte-identical to a fault-free sequential run.
 */
TEST(Chaos, FullRegistryThroughFaultsMatchesByteForByte)
{
    auto harness =
        std::make_unique<ServerHarness>(serverConfig(2, 16));

    // reset_after must exceed the largest RESULT frame (~17 KB for
    // window3) or that frame could never be delivered; 20 KB still
    // fires several resets across the ~50 KB registry run.
    std::string spec = "seed=20260805,split=0.35,coalesce=0.2,"
                       "delay_us=0..200,reset_after=20000";
    std::string error;
    auto schedule = net::FaultSchedule::parse(spec, &error);
    ASSERT_TRUE(schedule.has_value()) << error;
    EXPECT_EQ(schedule->str(), spec);

    net::FaultProxy proxy("127.0.0.1", harness->port(), *schedule);
    ASSERT_TRUE(proxy.start(&error)) << error;

    net::PsiClient client;
    client.setRetryPolicy(testRetryPolicy(25, 10));
    ASSERT_TRUE(client.connect("127.0.0.1", proxy.port(), &error))
        << error;

    const auto &all = programs::allPrograms();
    const std::size_t killAt = all.size() / 2;
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (i == killAt) {
            // Mid-batch kill-and-restart: drain the old server,
            // bring up a fresh one on a new port, re-point the
            // proxy.  The client only ever sees its proxy address.
            harness.reset();
            harness = std::make_unique<ServerHarness>(
                serverConfig(2, 16));
            proxy.setUpstream(harness->port());
        }

        const auto &program = all[i];
        SCOPED_TRACE(program.id);
        PsiRun want = runOnPsi(program);
        // Generous per-request receive timeout: a live-connection
        // timeout is deliberately not retried (duplicate risk), and
        // the slow registry programs can take tens of seconds under
        // TSan with the rest of the suite running alongside.
        auto got =
            client.submit(net::Request{program.id, 0, 180'000},
                          &client.retryPolicy(), &error);
        ASSERT_TRUE(got.has_value()) << error;

        EXPECT_EQ(got->status, net::wireStatus(want.result.status));
        ASSERT_EQ(got->solutions.size(),
                  want.result.solutions.size());
        for (std::size_t s = 0; s < got->solutions.size(); ++s)
            EXPECT_EQ(got->solutions[s],
                      want.result.solutions[s].str());
        EXPECT_EQ(got->output, want.result.output);
        EXPECT_EQ(got->inferences, want.result.inferences);
        EXPECT_EQ(got->steps, want.result.steps);
        EXPECT_EQ(got->modelNs, want.result.timeNs);
        EXPECT_EQ(got->stallNs, want.stallNs);
        EXPECT_EQ(got->seq.moduleSteps, want.seq.moduleSteps);
        EXPECT_EQ(got->seq.branchOps, want.seq.branchOps);
        EXPECT_EQ(got->seq.wfModes, want.seq.wfModes);
        EXPECT_EQ(got->seq.cacheSteps, want.seq.cacheSteps);
        EXPECT_EQ(got->cache.accesses, want.cache.accesses);
        EXPECT_EQ(got->cache.hits, want.cache.hits);
        EXPECT_EQ(got->cache.readIns, want.cache.readIns);
        EXPECT_EQ(got->cache.writeBacks, want.cache.writeBacks);
        EXPECT_EQ(got->cache.stackAllocs, want.cache.stackAllocs);
        EXPECT_EQ(got->cache.throughWrites,
                  want.cache.throughWrites);
    }

    // The run was actually chaotic: faults fired, the client had to
    // recover, and it never ran out of retries.
    net::FaultStats faults = proxy.stats();
    EXPECT_GT(faults.resets, 0u);
    EXPECT_GT(faults.splits, 0u);
    EXPECT_GT(faults.truncatedBytes, 0u);
    const net::RetryStats &retries = client.retryStats();
    EXPECT_GT(retries.reconnects + retries.resubmits, 0u);
    EXPECT_EQ(retries.exhausted, 0u);

    proxy.stop();
}

/**
 * DRAIN racing a pipelined batch: every request ends in exactly one
 * RESULT or one clean connection-level error - never a hang, never a
 * duplicate.  (Submits the server read before the drain finished get
 * a RESULT - completed or a DRAINING refusal; submits still in the
 * socket buffer when the loop exits are reset with the connection,
 * which the client observes as a retryable dead link.)
 */
TEST(Chaos, DrainUnderPipelinedLoadGivesEachRequestOneOutcome)
{
    ServerHarness harness(serverConfig(2, 8));
    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", harness.port(), &error))
        << error;

    constexpr int kBatch = 12;
    std::vector<std::uint64_t> tags;
    for (int i = 0; i < kBatch; ++i) {
        std::uint64_t tag = 0;
        ASSERT_TRUE(client.sendSubmit("nreverse30", 0, &tag, &error))
            << error;
        tags.push_back(tag);
    }

    std::map<std::uint64_t, int> outcomes;
    // The first RESULT proves the batch is genuinely in flight; the
    // drain then races the remaining eleven.
    auto first = client.recvResult(20'000, &error);
    ASSERT_TRUE(first.has_value()) << error;
    ++outcomes[first->tag];
    harness.server.requestDrain();

    bool died = false;
    for (int i = 1; i < kBatch && !died; ++i) {
        auto result = client.recvResult(20'000, &error);
        if (!result.has_value()) {
            // Must be a clean connection death (unread submits are
            // reset when the drained loop exits), never a timeout
            // with the link still up - that would be a hang.
            EXPECT_FALSE(client.connected()) << error;
            died = true;
            break;
        }
        ++outcomes[result->tag];
        EXPECT_TRUE(result->ran() ||
                    result->status == WireStatus::Draining ||
                    result->status == WireStatus::Overloaded)
            << net::wireStatusName(result->status);
    }

    // At most one outcome per request, and only requests we sent.
    int delivered = 0;
    for (std::uint64_t tag : tags) {
        auto it = outcomes.find(tag);
        if (it == outcomes.end())
            continue;
        EXPECT_EQ(it->second, 1) << "tag " << tag;
        delivered += it->second;
        outcomes.erase(it);
    }
    EXPECT_TRUE(outcomes.empty()) << "unsolicited RESULT tags";
    if (!died)
        EXPECT_EQ(delivered, kBatch);
}

TEST(Loopback, DrainingServerRefusesNewSubmits)
{
    ServerHarness harness(serverConfig(1, 4));
    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", harness.port(), &error))
        << error;

    // Park a long job so the drain has something in flight, then
    // drain and immediately submit again on the same connection.
    ASSERT_TRUE(
        client.sendSubmit("bup3", 500'000'000ull, nullptr, &error))
        << error;
    ASSERT_TRUE(client.drain(-1, &error)) << error;
    ASSERT_TRUE(client.sendSubmit("queens1", 0, nullptr, &error))
        << error;

    bool sawDraining = false, sawFirstJob = false;
    for (int i = 0; i < 2; ++i) {
        auto result = client.recvResult(-1, &error);
        ASSERT_TRUE(result.has_value()) << error;
        if (result->status == WireStatus::Draining)
            sawDraining = true;
        else if (result->ran())
            sawFirstJob = true;
    }
    EXPECT_TRUE(sawDraining);
    EXPECT_TRUE(sawFirstJob);
}

} // namespace
