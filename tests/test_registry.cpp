/**
 * @file
 * Registry audit: the workload registry is the ground truth every
 * bench, service and replay path resolves against, so its shape is
 * pinned here against the paper instead of being re-derived by eye.
 *
 * Table 1 lists exactly 19 programs in a fixed order: contest rows
 * (1)-(3), the Lisp interpreter rows (4)-(6), contest rows (7)-(10),
 * then the application programs BUP (11)-(13), HARMONIZER (14)-(16)
 * and LCP (17)-(19).  Tables 3-5 evaluate seven programs.  If a
 * registry edit reorders, drops or duplicates a row, these tests
 * fail before any benchmark quietly reports numbers for the wrong
 * program set.
 */

#include <gtest/gtest.h>

#include <set>

#include "programs/registry.hpp"

using namespace psi;

namespace {

TEST(RegistryAudit, Table1HasExactly19RowsInPaperOrder)
{
    const char *kPaperOrder[] = {
        // (1)-(3): contest programs
        "nreverse30", "qsort50", "tree",
        // (4)-(6): Lisp interpreter benchmarks
        "lisp_tarai", "lisp_fib", "lisp_nrev",
        // (7)-(10): contest programs
        "queens1", "queensall", "revfunc", "slowrev6",
        // (11)-(13): BUP
        "bup1", "bup2", "bup3",
        // (14)-(16): HARMONIZER
        "harmonizer1", "harmonizer2", "harmonizer3",
        // (17)-(19): LCP
        "lcp1", "lcp2", "lcp3"};

    auto rows = programs::table1Programs();
    ASSERT_EQ(rows.size(), 19u);
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(rows[i].id, kPaperOrder[i]) << "row " << i + 1;
}

TEST(RegistryAudit, Table1RowsCarryPaperReferenceTimes)
{
    for (const auto &p : programs::table1Programs()) {
        EXPECT_GT(p.paperPsiMs, 0.0) << p.id;
        EXPECT_GT(p.paperDecMs, 0.0) << p.id;
    }
}

TEST(RegistryAudit, NonTable1RowsCarryNoPaperTimes)
{
    // paperPsiMs > 0 is the membership predicate table1Programs()
    // selects on, so a stray reference time on an extra workload
    // would silently grow Table 1.
    std::set<std::string> table1;
    for (const auto &p : programs::table1Programs())
        table1.insert(p.id);
    for (const auto &p : programs::allPrograms()) {
        if (table1.count(p.id))
            continue;
        EXPECT_EQ(p.paperPsiMs, 0.0) << p.id;
        EXPECT_EQ(p.paperDecMs, 0.0) << p.id;
    }
}

TEST(RegistryAudit, CacheProgramsAreTheSevenOfTables3To5)
{
    const char *kPaperOrder[] = {"window1", "window2",    "window3",
                                 "puzzle8", "bup3",
                                 "harmonizer2", "lcp3"};
    auto rows = programs::cachePrograms();
    ASSERT_EQ(rows.size(), 7u);
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(rows[i].id, kPaperOrder[i]) << "row " << i + 1;
}

TEST(RegistryAudit, EveryIdIsUniqueAndResolvable)
{
    std::set<std::string> seen;
    for (const auto &p : programs::allPrograms()) {
        EXPECT_FALSE(p.id.empty());
        EXPECT_TRUE(seen.insert(p.id).second)
            << "duplicate id " << p.id;
        const programs::BenchProgram *found =
            programs::findProgramById(p.id);
        ASSERT_NE(found, nullptr) << p.id;
        EXPECT_EQ(found->id, p.id);
        // programById is the fatal()ing variant every CLI resolves
        // through; it must agree with the lookup.
        EXPECT_EQ(programs::programById(p.id).source, p.source);
    }
    EXPECT_EQ(programs::findProgramById("no_such_workload"),
              nullptr);
}

TEST(RegistryAudit, AdversarialFamilyIsRegistered)
{
    // The replay harness's default mix and the fast-vs-fidelity
    // suites lean on these ids existing; pin them.
    for (const char *id :
         {"trail40", "deeprec", "permall6", "setclash", "permjoin",
          "polyop"}) {
        const programs::BenchProgram *p =
            programs::findProgramById(id);
        ASSERT_NE(p, nullptr) << id;
        EXPECT_EQ(p->paperPsiMs, 0.0) << id;
    }
}

TEST(RegistryAudit, EveryProgramHasSourceAndQuery)
{
    for (const auto &p : programs::allPrograms()) {
        EXPECT_FALSE(p.source.empty()) << p.id;
        EXPECT_FALSE(p.query.empty()) << p.id;
        EXPECT_GE(p.maxSolutions, 1) << p.id;
    }
}

} // namespace
