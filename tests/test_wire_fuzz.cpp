/**
 * @file
 * Seeded wire-protocol fuzzing: every mutated byte stream must be
 * either rejected cleanly (non-empty error, connection-drop verdict)
 * or decoded into a message that re-encodes byte-identically - the
 * codec accepts only its own canonical encoding, so nothing a
 * hostile peer sends can round-trip into different bytes, hang the
 * framer, or make it buffer unbounded garbage.
 *
 * Iteration count comes from PSI_FUZZ_ITERS (default 2000; CI runs
 * 10000).  Failures print (seed, iteration) - rerunning with the
 * same env reproduces them exactly.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "fuzz_util.hpp"
#include "net/wire.hpp"

using namespace psi;
using namespace psi::net;
using psi::tests::FrameMutator;

namespace {

int
fuzzIters()
{
    const char *env = std::getenv("PSI_FUZZ_ITERS");
    if (env == nullptr)
        return 2000;
    int n = std::atoi(env);
    return n > 0 ? n : 2000;
}

/** A corpus hitting every message type and the interesting shapes. */
std::vector<std::string>
buildCorpus()
{
    std::vector<std::string> corpus;

    SubmitMsg submit;
    submit.tag = 42;
    submit.workload = "queens1";
    submit.deadlineNs = 5'000'000'000ull;
    corpus.push_back(encode(Message(submit)));

    SubmitMsg emptyWorkload;
    emptyWorkload.tag = 0xffffffffffffffffull;
    corpus.push_back(encode(Message(emptyWorkload)));

    // All three self-canonical SUBMIT forms: the tenant-less v1/v2.0
    // body, the v2.1 body carrying a tenant id (no mode byte), and
    // the v2.2 body carrying tenant + execution mode.
    SubmitMsg v1Submit;
    v1Submit.tag = 43;
    v1Submit.workload = "nreverse30";
    v1Submit.hasTenant = false;
    v1Submit.hasMode = false;
    corpus.push_back(encode(Message(v1Submit)));

    SubmitMsg tenantSubmit;
    tenantSubmit.tag = 44;
    tenantSubmit.workload = "qsort50";
    tenantSubmit.deadlineNs = 1'000'000ull;
    tenantSubmit.tenant = "team-a/batch!";
    tenantSubmit.hasMode = false;
    corpus.push_back(encode(Message(tenantSubmit)));

    SubmitMsg fastSubmit;
    fastSubmit.tag = 45;
    fastSubmit.workload = "nreverse30";
    fastSubmit.tenant = "team-b";
    fastSubmit.mode = interp::ExecMode::Fast;
    corpus.push_back(encode(Message(fastSubmit)));

    SubmitMsg fidelityModeSubmit; // explicit mode byte, fidelity
    fidelityModeSubmit.tag = 46;
    fidelityModeSubmit.workload = "queens1";
    corpus.push_back(encode(Message(fidelityModeSubmit)));

    ResultMsg ok;
    ok.tag = 7;
    ok.status = WireStatus::Ok;
    ok.solutions = {"X = 1", "X = 2", "Y = [a,b,c]"};
    ok.output = "hello\nworld";
    ok.inferences = 123456;
    ok.steps = 9999999;
    ok.modelNs = 77;
    ok.stallNs = 33;
    ok.queueNs = 1;
    ok.execNs = 2;
    ok.latencyNs = 3;
    ok.traceTag = 4;
    corpus.push_back(encode(Message(ok)));

    ResultMsg refusal;
    refusal.tag = 8;
    refusal.status = WireStatus::Overloaded;
    refusal.error = "queue full (64 jobs); retry later";
    corpus.push_back(encode(Message(refusal)));

    corpus.push_back(encode(Message(StatsMsg{})));

    StatsReplyMsg stats;
    stats.json = "{\"completed\": 3, \"succeeded\": 3}";
    corpus.push_back(encode(Message(stats)));

    corpus.push_back(encode(Message(DrainMsg{})));
    corpus.push_back(encode(Message(DrainAckMsg{})));

    corpus.push_back(encode(Message(HelloMsg{})));

    HelloMsg futureHello;
    futureHello.versionMajor = 0xffffffffu;
    futureHello.features = 0xffffffffffffffffull;
    corpus.push_back(encode(Message(futureHello)));

    HelloAckMsg ack;
    ack.features = kSupportedFeatures;
    corpus.push_back(encode(Message(ack)));

    ErrorMsg err;
    err.code = kErrUnsupportedVersion;
    err.message = "unsupported protocol major 99";
    corpus.push_back(encode(Message(err)));

    corpus.push_back(encode(Message(TraceMsg{})));

    TraceReplyMsg traceReply;
    traceReply.json =
        "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n]}\n";
    corpus.push_back(encode(Message(traceReply)));

    corpus.push_back(encode(Message(MetricsMsg{})));

    MetricsReplyMsg metricsReply;
    metricsReply.text =
        "# TYPE psi_jobs_completed_total counter\n"
        "psi_jobs_completed_total 3\n";
    corpus.push_back(encode(Message(metricsReply)));
    return corpus;
}

std::uint64_t
fuzzSeed()
{
    const char *env = std::getenv("PSI_FUZZ_SEED");
    return env != nullptr ? std::strtoull(env, nullptr, 10)
                          : 0xc0ffee;
}

/**
 * The core property: a payload either decodes and re-encodes to the
 * exact same frame, or is rejected with a non-empty error.
 */
void
checkPayload(const std::string &payload, std::uint64_t seed, int iter)
{
    std::string error;
    std::optional<Message> msg = decode(payload, &error);
    if (!msg) {
        EXPECT_FALSE(error.empty())
            << "rejection without a reason (seed " << seed
            << ", iter " << iter << ")";
        return;
    }
    std::string reencoded = encode(*msg);
    ASSERT_GE(reencoded.size(), kFrameHeaderBytes);
    EXPECT_EQ(reencoded.substr(kFrameHeaderBytes), payload)
        << "decode() accepted a non-canonical payload (seed " << seed
        << ", iter " << iter << ")";
}

} // namespace

TEST(WireFuzz, CorpusRoundTripsByteExactly)
{
    for (const std::string &frame : buildCorpus()) {
        std::string buffer = frame;
        std::string payload;
        ASSERT_EQ(extractFrame(buffer, payload), FrameResult::Frame);
        EXPECT_TRUE(buffer.empty());
        std::string error;
        std::optional<Message> msg = decode(payload, &error);
        ASSERT_TRUE(msg) << error;
        EXPECT_EQ(encode(*msg), frame);
    }
}

/**
 * v2.2 pins: the three SUBMIT forms stay distinguishable by length
 * alone, and an out-of-range mode byte is a decode error - a server
 * must never run a job in a mode it didn't understand.
 */
TEST(WireFuzz, SubmitModeByteRoundTripsAndRejectsUnknown)
{
    SubmitMsg fastSubmit;
    fastSubmit.workload = "nreverse30";
    fastSubmit.tenant = "t";
    fastSubmit.mode = interp::ExecMode::Fast;
    std::string frame = encode(Message(fastSubmit));
    std::string buffer = frame;
    std::string payload;
    ASSERT_EQ(extractFrame(buffer, payload), FrameResult::Frame);

    std::string error;
    std::optional<Message> msg = decode(payload, &error);
    ASSERT_TRUE(msg) << error;
    const auto *decoded = std::get_if<SubmitMsg>(&*msg);
    ASSERT_NE(decoded, nullptr);
    EXPECT_TRUE(decoded->hasMode);
    EXPECT_EQ(decoded->mode, interp::ExecMode::Fast);

    // The mode byte is the final payload byte: patch it to 2 (one
    // past Fast) and the payload must be rejected, not defaulted.
    std::string bad = payload;
    bad.back() = 0x02;
    error.clear();
    EXPECT_FALSE(decode(bad, &error).has_value());
    EXPECT_FALSE(error.empty());

    // A v2.1 encoder talking to this decoder: same message minus the
    // mode byte still decodes, as fidelity, with hasMode unset.
    std::string v21 = payload.substr(0, payload.size() - 1);
    error.clear();
    std::optional<Message> old = decode(v21, &error);
    ASSERT_TRUE(old) << error;
    const auto *oldSubmit = std::get_if<SubmitMsg>(&*old);
    ASSERT_NE(oldSubmit, nullptr);
    EXPECT_FALSE(oldSubmit->hasMode);
    EXPECT_EQ(oldSubmit->mode, interp::ExecMode::Fidelity);
}

TEST(WireFuzz, MutatedFramesRejectCleanlyOrRoundTrip)
{
    const std::uint64_t seed = fuzzSeed();
    FrameMutator mutator(seed, buildCorpus());
    const int iters = fuzzIters();

    for (int i = 0; i < iters; ++i) {
        std::string buffer = mutator.mutate();
        std::string payload;
        // The buffer only shrinks on Frame, so this terminates.
        for (;;) {
            FrameResult r = extractFrame(buffer, payload);
            if (r == FrameResult::NeedMore ||
                r == FrameResult::Bad)
                break;
            ASSERT_LE(payload.size(), kMaxFramePayload)
                << "oversized payload extracted (seed " << seed
                << ", iter " << i << ")";
            checkPayload(payload, seed, i);
        }
    }
}

TEST(WireFuzz, MutatedPayloadsRejectCleanlyOrRoundTrip)
{
    const std::uint64_t seed = fuzzSeed() ^ 0x9e3779b97f4a7c15ull;
    FrameMutator mutator(seed, buildCorpus());
    const int iters = fuzzIters();

    for (int i = 0; i < iters; ++i) {
        // Mutate below the framing layer: strip the header and feed
        // the mangled payload straight into decode().
        std::string frame = mutator.mutate();
        if (frame.size() <= kFrameHeaderBytes)
            continue;
        checkPayload(frame.substr(kFrameHeaderBytes), seed, i);
    }
}

TEST(WireFuzz, ChunkedStreamNeverBuffersUnbounded)
{
    const std::uint64_t seed = fuzzSeed() ^ 0xbf58476d1ce4e5b9ull;
    FrameMutator mutator(seed, buildCorpus());
    const int iters = fuzzIters();

    // A long stream of valid and mutated frames delivered in random
    // chunk sizes: the framer must keep cutting frames off the front
    // (bounded buffer) until it declares the stream Bad, and must
    // never extract an oversized payload along the way.
    std::string stream;
    for (int i = 0; i < iters; ++i)
        stream += mutator.rng().below(4) == 0 ? mutator.mutate()
                                              : mutator.pick();

    std::string buffer;
    std::string payload;
    std::size_t consumed = 0;
    bool bad = false;
    while (consumed < stream.size() && !bad) {
        std::size_t chunk = static_cast<std::size_t>(
            mutator.rng().range(1, 8192));
        if (chunk > stream.size() - consumed)
            chunk = stream.size() - consumed;
        buffer.append(stream, consumed, chunk);
        consumed += chunk;

        for (;;) {
            FrameResult r = extractFrame(buffer, payload);
            if (r == FrameResult::NeedMore)
                break;
            if (r == FrameResult::Bad) {
                bad = true; // a real server drops the peer here
                break;
            }
            ASSERT_LE(payload.size(), kMaxFramePayload);
            checkPayload(payload, seed, static_cast<int>(consumed));
        }
        // NeedMore keeps at most one announced frame buffered.
        ASSERT_LE(buffer.size(),
                  kFrameHeaderBytes + kMaxFramePayload + 8192u)
            << "framer buffered unbounded garbage (seed " << seed
            << ")";
    }
}
