#include <gtest/gtest.h>

#include "micro/sequencer.hpp"

using namespace psi;
using namespace psi::micro;

TEST(Sequencer, StepCountsModuleAndBranch)
{
    MemorySystem mem;
    Sequencer seq(mem);
    seq.step(Module::Unify, BranchOp::T1CaseTag, WfMode::Direct10_3F,
             WfMode::Direct00_0F, WfMode::None);
    seq.step(Module::Control, BranchOp::T2Goto);

    const SeqStats &s = seq.stats();
    EXPECT_EQ(s.totalSteps(), 2u);
    EXPECT_EQ(s.moduleSteps[static_cast<int>(Module::Unify)], 1u);
    EXPECT_EQ(s.moduleSteps[static_cast<int>(Module::Control)], 1u);
    EXPECT_EQ(s.branchOps[static_cast<int>(BranchOp::T1CaseTag)], 1u);
    EXPECT_EQ(s.branchOps[static_cast<int>(BranchOp::T2Goto)], 1u);
}

TEST(Sequencer, WfFieldModesTracked)
{
    MemorySystem mem;
    Sequencer seq(mem);
    seq.step(Module::Built, BranchOp::T1Nop, WfMode::Constant,
             WfMode::Direct00_0F, WfMode::Direct10_3F);
    const SeqStats &s = seq.stats();
    EXPECT_EQ(s.wfModes[0][static_cast<int>(WfMode::Constant)], 1u);
    EXPECT_EQ(s.wfModes[1][static_cast<int>(WfMode::Direct00_0F)], 1u);
    EXPECT_EQ(s.wfModes[2][static_cast<int>(WfMode::Direct10_3F)], 1u);
    EXPECT_EQ(s.wfFieldAccesses(WfField::Source1), 1u);
    // 'None' does not count as a WF access.
    seq.step(Module::Built, BranchOp::T1Nop);
    EXPECT_EQ(s.wfFieldAccesses(WfField::Source1), 1u);
}

TEST(Sequencer, MemoryStepsCarryCacheCommands)
{
    MemorySystem mem;
    Sequencer seq(mem);
    mem.poke({Area::Heap, 0}, {Tag::Int, 3});
    TaggedWord w = seq.readMem(Module::Control, {Area::Heap, 0},
                               BranchOp::T1CaseIrOpcode);
    EXPECT_EQ(w.data, 3u);
    seq.writeMem(Module::Unify, {Area::Global, 0}, {Tag::Int, 1},
                 BranchOp::T2Nop);
    seq.pushMem(Module::Trail, {Area::Trail, 0}, {Tag::Int, 2},
                BranchOp::T3Nop);
    const SeqStats &s = seq.stats();
    EXPECT_EQ(s.cacheSteps[static_cast<int>(CacheCmd::Read)], 1u);
    EXPECT_EQ(s.cacheSteps[static_cast<int>(CacheCmd::Write)], 1u);
    EXPECT_EQ(s.cacheSteps[static_cast<int>(CacheCmd::WriteStack)],
              1u);
    EXPECT_EQ(s.totalSteps(), 3u);
}

TEST(Sequencer, TimeIsStepsPlusStalls)
{
    MemorySystem mem;
    Sequencer seq(mem);
    seq.step(Module::Control, BranchOp::T1Nop);
    seq.step(Module::Control, BranchOp::T1Nop);
    EXPECT_EQ(seq.timeNs(), 2 * kStepNs);
    seq.readMem(Module::Control, {Area::Heap, 0},
                BranchOp::T1CaseTag);  // miss
    EXPECT_EQ(seq.timeNs(), 3 * kStepNs + mem.stallNs());
    EXPECT_GT(mem.stallNs(), 0u);
}

TEST(Sequencer, TextureEmitsExactlyN)
{
    MemorySystem mem;
    Sequencer seq(mem);
    seq.texture(Module::Unify, 25);
    EXPECT_EQ(seq.stats().totalSteps(), 25u);
    EXPECT_EQ(seq.stats().moduleSteps[static_cast<int>(Module::Unify)],
              25u);
    // Texture steps never carry cache commands.
    for (auto v : seq.stats().cacheSteps)
        EXPECT_EQ(v, 0u);
}

TEST(Sequencer, TextureMixIsMostlyNonNop)
{
    MemorySystem mem;
    Sequencer seq(mem);
    seq.texture(Module::Control, 160);
    const SeqStats &s = seq.stats();
    std::uint64_t nops =
        s.branchOps[static_cast<int>(BranchOp::T1Nop)] +
        s.branchOps[static_cast<int>(BranchOp::T2Nop)] +
        s.branchOps[static_cast<int>(BranchOp::T3Nop)];
    EXPECT_LT(nops * 5, s.totalSteps());  // < 20% no-ops
}

TEST(Sequencer, TraceSinkMirrorsSteps)
{
    MemorySystem mem;
    Sequencer seq(mem);
    std::vector<StepEvent> trace;
    seq.setTraceSink(&trace);
    seq.step(Module::Cut, BranchOp::T1CondTrue, WfMode::Direct00_0F);
    seq.readMem(Module::GetArg, {Area::Heap, 0}, BranchOp::T1CaseTag);
    seq.setTraceSink(nullptr);
    seq.step(Module::Cut, BranchOp::T1Nop);

    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].module, static_cast<std::uint8_t>(Module::Cut));
    EXPECT_EQ(trace[0].hasCacheCmd, 0);
    EXPECT_EQ(trace[1].hasCacheCmd,
              1 + static_cast<int>(CacheCmd::Read));
}

TEST(Sequencer, ResetStatsZeroesCounters)
{
    MemorySystem mem;
    Sequencer seq(mem);
    seq.texture(Module::Built, 7);
    seq.resetStats();
    EXPECT_EQ(seq.stats().totalSteps(), 0u);
}
