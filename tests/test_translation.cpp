#include <gtest/gtest.h>

#include "mem/translation.hpp"

using namespace psi;

TEST(Translation, SameAddressTranslatesStably)
{
    MainMemory mem;
    TranslationTable t(mem);
    auto p1 = t.translate({Area::Heap, 100});
    auto p2 = t.translate({Area::Heap, 100});
    EXPECT_EQ(p1, p2);
}

TEST(Translation, AreasAreIndependentSpaces)
{
    MainMemory mem;
    TranslationTable t(mem);
    auto ph = t.translate({Area::Heap, 5});
    auto pl = t.translate({Area::Local, 5});
    EXPECT_NE(ph, pl);
}

TEST(Translation, ContiguityWithinPage)
{
    MainMemory mem;
    TranslationTable t(mem);
    auto p0 = t.translate({Area::Global, 0});
    auto p1 = t.translate({Area::Global, 1});
    EXPECT_EQ(p1, p0 + 1);
}

TEST(Translation, SparsePagesAllocatedLazily)
{
    MainMemory mem;
    TranslationTable t(mem);
    // Touch a far page; only one frame should be backed.
    t.translate({Area::Heap, 100 * kPageWords});
    EXPECT_EQ(t.pageCount(Area::Heap), 1u);
    EXPECT_EQ(mem.size(), kPageWords);
    // Touching a nearer page maps a second frame.
    t.translate({Area::Heap, 0});
    EXPECT_EQ(t.pageCount(Area::Heap), 2u);
}

TEST(Translation, DistinctPagesDistinctFrames)
{
    MainMemory mem;
    TranslationTable t(mem);
    auto a = t.translate({Area::Trail, 0});
    auto b = t.translate({Area::Trail, kPageWords});
    EXPECT_NE(a / kPageWords, b / kPageWords);
}

TEST(MainMemoryTest, ReadBackWrites)
{
    MainMemory mem;
    auto base = mem.allocFrame();
    mem.write(base + 3, {Tag::Int, 77});
    EXPECT_EQ(mem.read(base + 3).data, 77u);
    EXPECT_EQ(mem.read(base + 4).tag, Tag::Undef);
}
