/**
 * @file
 * The KL0 library predicates, tested on both engines (parameterized
 * by engine kind so every predicate is exercised under the PSI
 * interpreter and the compiled baseline alike).
 */

#include <gtest/gtest.h>

#include "psi.hpp"

using namespace psi;

namespace {

enum class Kind { Psi, Wam };

std::vector<std::string>
solutions(Kind k, const std::string &query, int max = 50)
{
    interp::RunLimits lim;
    lim.maxSolutions = max;
    interp::RunResult r;
    if (k == Kind::Psi) {
        interp::Engine eng;
        eng.consult(programs::librarySource());
        r = eng.solve(query, lim);
    } else {
        baseline::WamEngine eng;
        eng.consult(programs::librarySource());
        r = eng.solve(query, lim);
    }
    std::vector<std::string> out;
    for (const auto &s : r.solutions) {
        std::string line;
        for (const auto &kv : s.bindings) {
            if (!line.empty())
                line += " ";
            line += kv.first + "=" + kv.second->canonicalStr();
        }
        out.push_back(line.empty() ? "yes" : line);
    }
    return out;
}

class Library : public ::testing::TestWithParam<Kind>
{
  protected:
    std::vector<std::string>
    sols(const std::string &q, int max = 50)
    {
        return solutions(GetParam(), q, max);
    }

    std::string
    first(const std::string &q)
    {
        auto v = sols(q, 1);
        return v.empty() ? "<fail>" : v[0];
    }
};

} // namespace

TEST_P(Library, Append)
{
    EXPECT_EQ(first("append([1,2], [3], L)"), "L=[1,2,3]");
    EXPECT_EQ(sols("append(X, Y, [a,b])").size(), 3u);
}

TEST_P(Library, MemberAndMemberchk)
{
    EXPECT_EQ(sols("member(X, [p,q,r])").size(), 3u);
    EXPECT_EQ(sols("memberchk(q, [p,q,r,q])").size(), 1u);
    EXPECT_TRUE(sols("member(z, [p,q])").empty());
}

TEST_P(Library, Length)
{
    EXPECT_EQ(first("length([a,b,c,d], N)"), "N=4");
    EXPECT_EQ(first("length([], N)"), "N=0");
}

TEST_P(Library, Reverse)
{
    EXPECT_EQ(first("reverse([1,2,3], R)"), "R=[3,2,1]");
}

TEST_P(Library, Nth)
{
    EXPECT_EQ(first("nth0(1, [a,b,c], X)"), "X=b");
    EXPECT_EQ(first("nth1(1, [a,b,c], X)"), "X=a");
    EXPECT_EQ(first("last([a,b,c], X)"), "X=c");
}

TEST_P(Library, SelectAndPermutation)
{
    EXPECT_EQ(sols("select(X, [1,2,3], R)").size(), 3u);
    EXPECT_EQ(sols("permutation([1,2,3], P)").size(), 6u);
}

TEST_P(Library, Between)
{
    auto v = sols("between(2, 5, X)");
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "X=2");
    EXPECT_EQ(v[3], "X=5");
    EXPECT_TRUE(sols("between(5, 2, _)").empty());
}

TEST_P(Library, Aggregates)
{
    EXPECT_EQ(first("sum_list([1,2,3,4], S)"), "S=10");
    EXPECT_EQ(first("max_list([3,9,2], M)"), "M=9");
    EXPECT_EQ(first("min_list([3,9,2], M)"), "M=2");
}

TEST_P(Library, Sorting)
{
    EXPECT_EQ(first("msort_list([3,1,2,1], S)"), "S=[1,1,2,3]");
    EXPECT_EQ(first("msort_list([b,a], S)"), "S=[a,b]");
}

TEST_P(Library, DeleteAndNumlist)
{
    EXPECT_EQ(first("delete([1,2,1,3], 1, R)"), "R=[2,3]");
    EXPECT_EQ(first("numlist(1, 4, L)"), "L=[1,2,3,4]");
    EXPECT_EQ(first("positives([-1,2,0,3], P)"), "P=[2,3]");
}

INSTANTIATE_TEST_SUITE_P(BothEngines, Library,
                         ::testing::Values(Kind::Psi, Kind::Wam),
                         [](const auto &info) {
                             return info.param == Kind::Psi
                                        ? "psi"
                                        : "baseline";
                         });

TEST(MicroInstTest, StrAndExec)
{
    micro::MicroInst mi;
    mi.module = micro::Module::Unify;
    mi.branch = micro::BranchOp::T1CaseTag;
    mi.src1 = micro::WfMode::Direct10_3F;
    EXPECT_NE(mi.str().find("unify"), std::string::npos);
    EXPECT_NE(mi.str().find("case"), std::string::npos);
    EXPECT_FALSE(mi.hasMemory());
    EXPECT_FALSE(mi.branchIsNop());

    MemorySystem mem;
    micro::Sequencer seq(mem);
    seq.exec(mi);
    mi.cacheCmd = static_cast<int>(CacheCmd::Read);
    EXPECT_TRUE(mi.hasMemory());
    seq.exec(mi);
    EXPECT_EQ(seq.stats().totalSteps(), 2u);
    EXPECT_EQ(seq.stats().cacheSteps[static_cast<int>(CacheCmd::Read)],
              1u);
}
