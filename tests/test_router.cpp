/**
 * @file
 * psirouter tests: the consistent-hash ring and the cluster tier.
 *
 *  - hash-ring properties: distribution balance across 2/4/8
 *    backends (registry program hashes and a synthetic key sweep),
 *    minimal remap (≤ ~1/N keys move) on leave/join, and
 *    preference-list shape
 *  - loopback cluster integration: full-registry results through a
 *    2-backend router are byte-identical to sequential runOnPsi(),
 *    HELLO negotiation carries the routing feature bit (and a plain
 *    server's does not), STATS/METRICS expose per-backend counters
 *  - shard affinity: across 4 backends every distinct program source
 *    compiles on exactly one backend (cluster-wide program-cache
 *    misses == distinct sources), verified via the backends' own
 *    STATS counters
 *  - chaos: a backend killed mid-pipelined-batch loses zero requests
 *    and duplicates none (exactly-once failover to the ring
 *    successor); an ejected backend is re-admitted after restart
 *
 * The binary carries the `router` ctest label so the group runs
 * under ThreadSanitizer alongside `service` and `net`:
 *
 *     cmake -B build-tsan -S . -DPSI_SANITIZE=thread
 *     cmake --build build-tsan -j
 *     ctest --test-dir build-tsan -L "service|net|router"
 */

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "psi.hpp"

namespace {

using namespace psi;
using router::BackendAddr;
using router::HashRing;
using router::PsiRouter;

// ---------------------------------------------------------------------
// Consistent-hash ring properties
// ---------------------------------------------------------------------

std::vector<std::uint64_t>
syntheticKeys(std::size_t n)
{
    std::vector<std::uint64_t> keys;
    keys.reserve(n);
    SplitMix64 rng(20260807);
    for (std::size_t i = 0; i < n; ++i)
        keys.push_back(rng.next());
    return keys;
}

std::vector<std::uint64_t>
registryKeys()
{
    // The actual routing keys: every distinct program-source hash in
    // the workload registry.
    std::set<std::uint64_t> distinct;
    for (const auto &p : programs::allPrograms())
        distinct.insert(kl0::CompiledProgram::hashSource(p.source));
    return {distinct.begin(), distinct.end()};
}

TEST(HashRing, BalanceAcrossMemberships)
{
    const auto keys = syntheticKeys(10'000);
    for (unsigned nodes : {2u, 4u, 8u}) {
        HashRing ring;
        for (unsigned n = 0; n < nodes; ++n)
            ring.add(n);

        std::map<std::uint32_t, std::size_t> share;
        for (std::uint64_t key : keys) {
            auto owner = ring.owner(key);
            ASSERT_TRUE(owner.has_value());
            ++share[*owner];
        }
        ASSERT_EQ(share.size(), nodes)
            << "some node owns no keys at all";
        const double mean =
            static_cast<double>(keys.size()) / nodes;
        for (const auto &entry : share) {
            EXPECT_GT(entry.second, 0.5 * mean)
                << "node " << entry.first << " of " << nodes
                << " is starved";
            EXPECT_LT(entry.second, 1.5 * mean)
                << "node " << entry.first << " of " << nodes
                << " is overloaded";
        }
    }
}

TEST(HashRing, RegistryHashesSpreadOverFourBackends)
{
    // The real keyset is small (a dozen distinct sources), so only
    // sanity-level balance holds: with 4 backends no single backend
    // owns everything, and ownership is deterministic.
    const auto keys = registryKeys();
    ASSERT_GE(keys.size(), 8u);

    HashRing ring;
    for (unsigned n = 0; n < 4; ++n)
        ring.add(n);

    std::map<std::uint32_t, std::size_t> share;
    for (std::uint64_t key : keys)
        ++share[*ring.owner(key)];
    EXPECT_GE(share.size(), 2u)
        << "all program sources landed on one backend";
    for (const auto &entry : share)
        EXPECT_LT(entry.second, keys.size())
            << "backend " << entry.first << " owns every source";

    HashRing again;
    for (unsigned n = 0; n < 4; ++n)
        again.add(n);
    for (std::uint64_t key : keys)
        EXPECT_EQ(*ring.owner(key), *again.owner(key))
            << "ownership must be a pure function of membership";
}

TEST(HashRing, MinimalRemapOnLeave)
{
    const auto keys = syntheticKeys(10'000);
    for (unsigned nodes : {2u, 4u, 8u}) {
        HashRing ring;
        for (unsigned n = 0; n < nodes; ++n)
            ring.add(n);

        std::map<std::uint64_t, std::uint32_t> before;
        for (std::uint64_t key : keys)
            before[key] = *ring.owner(key);

        const std::uint32_t leaver = nodes / 2;
        ring.remove(leaver);

        std::size_t moved = 0;
        for (std::uint64_t key : keys) {
            std::uint32_t now = *ring.owner(key);
            if (before[key] == leaver) {
                ++moved;
                EXPECT_NE(now, leaver);
            } else {
                // THE consistent-hashing property: keys not owned by
                // the leaver must not move at all.
                EXPECT_EQ(now, before[key])
                    << "a surviving backend's key moved on leave";
            }
        }
        // The leaver owned ~1/N of the keys; allow balance slack.
        EXPECT_LT(static_cast<double>(moved),
                  1.5 * keys.size() / nodes)
            << "leave of one of " << nodes
            << " nodes moved too many keys";
    }
}

TEST(HashRing, JoinMovesKeysOnlyToTheJoiner)
{
    const auto keys = syntheticKeys(10'000);
    HashRing ring;
    for (unsigned n = 0; n < 4; ++n)
        ring.add(n);

    std::map<std::uint64_t, std::uint32_t> before;
    for (std::uint64_t key : keys)
        before[key] = *ring.owner(key);

    ring.add(4);
    std::size_t moved = 0;
    for (std::uint64_t key : keys) {
        std::uint32_t now = *ring.owner(key);
        if (now != before[key]) {
            ++moved;
            EXPECT_EQ(now, 4u)
                << "a key moved between pre-existing backends";
        }
    }
    EXPECT_GT(moved, 0u) << "the joiner took no load";
    EXPECT_LT(static_cast<double>(moved), 1.5 * keys.size() / 5);

    // Leave + rejoin restores the original layout exactly: the ring
    // is a pure function of the membership set.
    ring.remove(4);
    for (std::uint64_t key : keys)
        EXPECT_EQ(*ring.owner(key), before[key]);
}

TEST(HashRing, PreferenceStartsAtOwnerAndCoversAll)
{
    HashRing ring;
    for (unsigned n = 0; n < 5; ++n)
        ring.add(n);

    SplitMix64 rng(7);
    for (int i = 0; i < 200; ++i) {
        std::uint64_t key = rng.next();
        auto pref = ring.preference(key, 5);
        ASSERT_EQ(pref.size(), 5u);
        EXPECT_EQ(pref.front(), *ring.owner(key));
        std::set<std::uint32_t> distinct(pref.begin(), pref.end());
        EXPECT_EQ(distinct.size(), 5u)
            << "preference list repeated a node";

        // Asking for more than the membership clamps.
        EXPECT_EQ(ring.preference(key, 99).size(), 5u);
        // A shorter list is a prefix of the longer one.
        auto two = ring.preference(key, 2);
        ASSERT_EQ(two.size(), 2u);
        EXPECT_EQ(two[0], pref[0]);
        EXPECT_EQ(two[1], pref[1]);
    }

    HashRing empty;
    EXPECT_FALSE(empty.owner(42).has_value());
    EXPECT_TRUE(empty.preference(42, 3).empty());
}

TEST(BackendAddrParse, AcceptsHostPortFormsRejectsGarbage)
{
    auto full = BackendAddr::parse("10.1.2.3:9734");
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(full->host, "10.1.2.3");
    EXPECT_EQ(full->port, 9734);

    auto bare = BackendAddr::parse("9735");
    ASSERT_TRUE(bare.has_value());
    EXPECT_EQ(bare->host, "127.0.0.1");
    EXPECT_EQ(bare->port, 9735);

    auto colon = BackendAddr::parse(":9736");
    ASSERT_TRUE(colon.has_value());
    EXPECT_EQ(colon->host, "127.0.0.1");
    EXPECT_EQ(colon->port, 9736);

    std::string error;
    EXPECT_FALSE(BackendAddr::parse("host:", &error).has_value());
    EXPECT_FALSE(BackendAddr::parse("host:0", &error).has_value());
    EXPECT_FALSE(
        BackendAddr::parse("host:66000", &error).has_value());
    EXPECT_FALSE(BackendAddr::parse("host:12x", &error).has_value());
    EXPECT_NE(error.find("bad backend"), std::string::npos);
}

// ---------------------------------------------------------------------
// Loopback cluster harness
// ---------------------------------------------------------------------

/** One PsiServer backend running its loop on a background thread. */
struct BackendHarness
{
    net::PsiServer server;
    std::thread loop;

    explicit BackendHarness(std::uint16_t port = 0,
                            unsigned workers = 2)
        : server([&] {
              net::PsiServer::Config config;
              config.port = port;
              config.workers = workers;
              config.queueCapacity = 64;
              config.submitMode = service::Submit::FailFast;
              return config;
          }())
    {
        std::string error;
        if (!server.start(&error))
            throw std::runtime_error("backend start: " + error);
        loop = std::thread([this] { server.run(); });
    }

    ~BackendHarness()
    {
        server.requestDrain();
        if (loop.joinable())
            loop.join();
    }

    std::uint16_t port() const { return server.port(); }
};

/** Fast-paced router timings so ejection/readmission tests run in
 *  milliseconds, not the production-default seconds. */
PsiRouter::Config
routerConfig(const std::vector<std::uint16_t> &backendPorts)
{
    PsiRouter::Config config;
    for (std::uint16_t port : backendPorts)
        config.backends.push_back(BackendAddr{"127.0.0.1", port});
    config.probeIntervalNs = 20'000'000;   // 20 ms
    config.probeTimeoutNs = 200'000'000;   // 200 ms
    config.ejectAfterFailures = 2;
    config.connectTimeoutNs = 200'000'000; // 200 ms
    config.readmission = {5'000'000, 50'000'000, 2.0, 20260807};
    return config;
}

/** A PsiRouter running its loop on a background thread. */
struct RouterHarness
{
    PsiRouter router;
    std::thread loop;

    explicit RouterHarness(const PsiRouter::Config &config)
        : router(config)
    {
        std::string error;
        if (!router.start(&error))
            throw std::runtime_error("router start: " + error);
        loop = std::thread([this] { router.run(); });
    }

    ~RouterHarness()
    {
        router.requestDrain();
        if (loop.joinable())
            loop.join();
    }

    std::uint16_t port() const { return router.port(); }

    /** Block until @p n backends are admitted to the ring. */
    void
    waitForAdmission(std::size_t n)
    {
        for (int spins = 0; spins < 5000; ++spins) {
            std::size_t admitted = 0;
            for (const auto &b : router.metrics().backends)
                admitted += b.admitted ? 1 : 0;
            if (admitted >= n)
                return;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        FAIL() << "backends were not admitted within 5 s";
    }
};

/** Pull one flat-JSON u64 counter out of a STATS reply. */
std::uint64_t
jsonU64(const std::string &json, const std::string &key)
{
    std::string needle = "\"" + key + "\": ";
    std::size_t at = json.find(needle);
    if (at == std::string::npos)
        return 0;
    return std::strtoull(json.c_str() + at + needle.size(), nullptr,
                         10);
}

/** Byte-for-byte comparison of a wire RESULT vs a sequential run. */
void
expectMatchesSequential(const net::ResultMsg &got,
                        const programs::BenchProgram &program)
{
    PsiRun want = runOnPsi(program);
    EXPECT_EQ(got.status, net::wireStatus(want.result.status));
    ASSERT_EQ(got.solutions.size(), want.result.solutions.size());
    for (std::size_t i = 0; i < got.solutions.size(); ++i)
        EXPECT_EQ(got.solutions[i], want.result.solutions[i].str());
    EXPECT_EQ(got.output, want.result.output);
    EXPECT_EQ(got.inferences, want.result.inferences);
    EXPECT_EQ(got.steps, want.result.steps);
    EXPECT_EQ(got.modelNs, want.result.timeNs);
    EXPECT_EQ(got.stallNs, want.stallNs);
    EXPECT_EQ(got.seq.moduleSteps, want.seq.moduleSteps);
    EXPECT_EQ(got.seq.branchOps, want.seq.branchOps);
    EXPECT_EQ(got.seq.wfModes, want.seq.wfModes);
    EXPECT_EQ(got.seq.cacheSteps, want.seq.cacheSteps);
    EXPECT_EQ(got.cache.accesses, want.cache.accesses);
    EXPECT_EQ(got.cache.hits, want.cache.hits);
    EXPECT_EQ(got.cache.readIns, want.cache.readIns);
    EXPECT_EQ(got.cache.writeBacks, want.cache.writeBacks);
    EXPECT_EQ(got.cache.stackAllocs, want.cache.stackAllocs);
    EXPECT_EQ(got.cache.throughWrites, want.cache.throughWrites);
}

// ---------------------------------------------------------------------
// Cluster integration
// ---------------------------------------------------------------------

TEST(Router, HelloAckCarriesRoutingBitOnlyFromTheRouter)
{
    BackendHarness backend;
    RouterHarness router(routerConfig({backend.port()}));
    router.waitForAdmission(1);
    std::string error;

    net::PsiClient viaRouter;
    ASSERT_TRUE(
        viaRouter.connect("127.0.0.1", router.port(), &error))
        << error;
    auto routerAck = viaRouter.hello(
        net::kSupportedFeatures | net::kFeatureRouting, -1, &error);
    ASSERT_TRUE(routerAck.has_value()) << error;
    EXPECT_EQ(routerAck->versionMajor, net::kProtocolMajor);
    EXPECT_TRUE(routerAck->features & net::kFeatureRouting)
        << "router must advertise the routing feature bit";
    EXPECT_TRUE(routerAck->features & net::kFeatureMetrics);

    net::PsiClient direct;
    ASSERT_TRUE(
        direct.connect("127.0.0.1", backend.port(), &error))
        << error;
    auto serverAck = direct.hello(
        net::kSupportedFeatures | net::kFeatureRouting, -1, &error);
    ASSERT_TRUE(serverAck.has_value()) << error;
    EXPECT_FALSE(serverAck->features & net::kFeatureRouting)
        << "a plain server must NOT advertise routing";
}

TEST(Router, RegistryThroughTwoBackendsMatchesSequential)
{
    BackendHarness backend0, backend1;
    RouterHarness router(
        routerConfig({backend0.port(), backend1.port()}));
    router.waitForAdmission(2);

    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", router.port(), &error))
        << error;

    for (const auto &program : programs::allPrograms()) {
        SCOPED_TRACE(program.id);
        auto got =
            client.submit(net::Request{program.id}, nullptr, &error);
        ASSERT_TRUE(got.has_value()) << error;
        expectMatchesSequential(*got, program);
        EXPECT_GT(got->latencyNs, 0u);
    }

    // Both backends actually served a share of the registry.
    router::RouterMetrics metrics = router.router.metrics();
    for (const auto &b : metrics.backends) {
        EXPECT_GT(b.routed, 0u) << b.addr << " was never routed to";
        EXPECT_EQ(b.routed, b.completed);
    }
    EXPECT_EQ(metrics.affinityMisses, 0u);
    EXPECT_EQ(metrics.staleDropped, 0u);
}

/**
 * The v2.2 mode flag rides through the router to the backend: a
 * fast-mode request comes back with fidelity-identical answers and
 * the zeroed accounting that marks it as fast-served.
 */
TEST(Router, FastModeForwardsThroughToBackends)
{
    BackendHarness backend;
    RouterHarness router(routerConfig({backend.port()}));
    router.waitForAdmission(1);

    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", router.port(), &error))
        << error;

    const auto &program = programs::programById("nreverse30");
    PsiRun want = runOnPsi(program);

    net::Request request{program.id};
    request.mode = interp::ExecMode::Fast;
    auto got = client.submit(request, nullptr, &error);
    ASSERT_TRUE(got.has_value()) << error;
    EXPECT_EQ(got->status, net::WireStatus::Ok);
    ASSERT_EQ(got->solutions.size(), want.result.solutions.size());
    for (std::size_t i = 0; i < got->solutions.size(); ++i)
        EXPECT_EQ(got->solutions[i], want.result.solutions[i].str());
    EXPECT_EQ(got->inferences, want.result.inferences);
    // steps == 0 on a completed solve proves the backend really ran
    // the fast engine - fidelity would have counted every step.
    EXPECT_EQ(got->steps, 0u);
    EXPECT_EQ(got->modelNs, 0u);
}

TEST(Router, UnknownWorkloadRefusedAtTheRouter)
{
    BackendHarness backend;
    RouterHarness router(routerConfig({backend.port()}));
    router.waitForAdmission(1);

    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", router.port(), &error))
        << error;
    auto result = client.submit(net::Request{"no-such-workload"},
                                nullptr, &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_EQ(result->status, net::WireStatus::UnknownWorkload);
    EXPECT_NE(result->error.find("available"), std::string::npos);
    // Refused locally: nothing was forwarded to the backend.
    EXPECT_EQ(router.router.metrics().backends[0].routed, 0u);
}

TEST(Router, StatsAndMetricsExposePerBackendCounters)
{
    BackendHarness backend0, backend1;
    RouterHarness router(
        routerConfig({backend0.port(), backend1.port()}));
    router.waitForAdmission(2);

    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", router.port(), &error))
        << error;
    ASSERT_TRUE(
        client.submit(net::Request{"nreverse30"}, nullptr, &error))
        << error;

    auto json = client.stats(-1, &error);
    ASSERT_TRUE(json.has_value()) << error;
    EXPECT_NE(json->find("\"role\": \"router\""),
              std::string::npos);
    EXPECT_EQ(jsonU64(*json, "backends"), 2u);
    EXPECT_EQ(jsonU64(*json, "backends_admitted"), 2u);
    EXPECT_EQ(jsonU64(*json, "submits"), 1u);
    EXPECT_EQ(jsonU64(*json, "backend_0_routed") +
                  jsonU64(*json, "backend_1_routed"),
              1u);
    EXPECT_NE(json->find("affinity_ratio"), std::string::npos);

    auto text = client.metricsText(-1, &error);
    ASSERT_TRUE(text.has_value()) << error;
    EXPECT_NE(text->find("# TYPE psi_router_routed_total counter"),
              std::string::npos);
    EXPECT_NE(text->find("psi_router_routed_total{backend=\""),
              std::string::npos);
    EXPECT_NE(text->find("psi_router_affinity_ratio"),
              std::string::npos);
    EXPECT_NE(text->find("psi_router_ejections_total"),
              std::string::npos);
}

/** The shard-affinity acceptance criterion: across 4 backends every
 *  distinct program source compiles on exactly one backend, so the
 *  cluster-wide program-cache miss count equals the number of
 *  distinct sources (verified via the backends' own STATS). */
TEST(Router, ShardAffinityCompilesEachSourceOnExactlyOneBackend)
{
    std::vector<std::unique_ptr<BackendHarness>> backends;
    std::vector<std::uint16_t> ports;
    for (int i = 0; i < 4; ++i) {
        backends.push_back(std::make_unique<BackendHarness>());
        ports.push_back(backends.back()->port());
    }
    RouterHarness router(routerConfig(ports));
    router.waitForAdmission(4);

    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", router.port(), &error))
        << error;
    for (int round = 0; round < 2; ++round)
        for (const auto &program : programs::allPrograms()) {
            auto result = client.submit(net::Request{program.id},
                                        nullptr, &error);
            ASSERT_TRUE(result.has_value())
                << program.id << ": " << error;
            ASSERT_TRUE(result->ran())
                << program.id << ": " << result->error;
        }

    // With every backend admitted the whole run, no request was
    // diverted off its home shard...
    router::RouterMetrics metrics = router.router.metrics();
    EXPECT_EQ(metrics.affinityMisses, 0u);
    EXPECT_EQ(metrics.affinityHits,
              2 * programs::allPrograms().size());

    // ...so each distinct source compiled on exactly one backend:
    // cluster-wide misses == distinct sources, and every backend's
    // second-round submits all hit its compile cache.
    std::uint64_t clusterMisses = 0;
    for (const auto &backend : backends) {
        net::PsiClient direct;
        ASSERT_TRUE(direct.connect("127.0.0.1", backend->port(),
                                   &error))
            << error;
        auto json = direct.stats(-1, &error);
        ASSERT_TRUE(json.has_value()) << error;
        clusterMisses += jsonU64(*json, "program_cache_misses");
    }
    EXPECT_EQ(clusterMisses, programs::distinctSourceCount());
}

TEST(Router, DrainAnswersAckAndExitsTheLoop)
{
    BackendHarness backend;
    auto router = std::make_unique<RouterHarness>(
        routerConfig({backend.port()}));
    router->waitForAdmission(1);
    std::uint16_t port = router->port();

    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", port, &error)) << error;
    ASSERT_TRUE(client.drain(-1, &error)) << error;
    EXPECT_TRUE(router->router.draining());

    // The loop exits on its own once drained; a new SUBMIT on the
    // still-open connection is refused.
    auto refused =
        client.submit(net::Request{"nreverse30"}, nullptr, &error);
    if (refused.has_value()) {
        EXPECT_EQ(refused->status, net::WireStatus::Draining);
    }

    router->loop.join();
    router.reset();
    net::PsiClient after;
    EXPECT_FALSE(after.connect("127.0.0.1", port, &error));
}

// ---------------------------------------------------------------------
// Chaos: failover and re-admission
// ---------------------------------------------------------------------

/** The cluster-wide chaos invariant: one of two backends is killed
 *  in the middle of a pipelined batch; every request must complete
 *  exactly once, byte-identical to an undisturbed sequential run. */
TEST(RouterChaos, BackendKilledMidBatchLosesNothing)
{
    BackendHarness survivor;
    auto victim = std::make_unique<BackendHarness>();

    // The victim sits behind a transparent faultnet proxy: stopping
    // the proxy hard-kills the router->victim path mid-batch (RSTs
    // the live connection AND refuses the redial), exactly like a
    // machine dropping off the network.
    net::FaultProxy proxy("127.0.0.1", victim->port(),
                          net::FaultSchedule{});
    std::string error;
    ASSERT_TRUE(proxy.start(&error)) << error;

    RouterHarness router(
        routerConfig({survivor.port(), proxy.port()}));
    router.waitForAdmission(2);

    net::PsiClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", router.port(), &error))
        << error;

    // Pipeline the whole registry through the router at once.
    const auto &registry = programs::allPrograms();
    std::map<std::uint64_t, std::string> tagToWorkload;
    for (const auto &program : registry) {
        std::uint64_t tag = 0;
        ASSERT_TRUE(client.sendSubmit(program.id, 0, &tag, &error))
            << error;
        tagToWorkload[tag] = program.id;
    }

    // Collect a few results, then kill the victim mid-batch.
    std::map<std::string, net::ResultMsg> results;
    for (int i = 0; i < 3; ++i) {
        auto msg = client.recvResult(60'000, &error);
        ASSERT_TRUE(msg.has_value()) << error;
        results.emplace(tagToWorkload.at(msg->tag),
                        std::move(*msg));
    }
    proxy.stop();

    // Zero lost: every remaining request still completes (failover
    // resubmits the victim's unacknowledged work to the survivor).
    while (results.size() < registry.size()) {
        auto msg = client.recvResult(60'000, &error);
        ASSERT_TRUE(msg.has_value())
            << "request lost after backend kill: " << error;
        auto inserted = results.emplace(
            tagToWorkload.at(msg->tag), std::move(*msg));
        EXPECT_TRUE(inserted.second)
            << "duplicate RESULT for one request";
    }

    // Zero duplicates beyond the batch either.
    EXPECT_FALSE(client.recvResult(200, &error).has_value());

    // Byte-identical to an undisturbed sequential run.
    for (const auto &program : registry) {
        SCOPED_TRACE(program.id);
        auto it = results.find(program.id);
        ASSERT_NE(it, results.end());
        ASSERT_TRUE(it->second.ran()) << it->second.error;
        expectMatchesSequential(it->second, program);
    }

    // The router observed the kill: the victim is ejected, and any
    // requests it held were retried on the survivor.
    router::RouterMetrics metrics = router.router.metrics();
    EXPECT_FALSE(metrics.backends[1].admitted);
    EXPECT_GE(metrics.backends[1].ejections, 1u);
    victim.reset();
}

TEST(RouterChaos, EjectedBackendIsReadmittedAfterRestart)
{
    std::uint16_t fixedPort;
    {
        // Grab an ephemeral port, then restart the backend on it
        // later so the router's redial finds the revived process at
        // the same address.
        BackendHarness probe;
        fixedPort = probe.port();
    }

    auto backend = std::make_unique<BackendHarness>(fixedPort);
    RouterHarness router(routerConfig({fixedPort}));
    router.waitForAdmission(1);

    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", router.port(), &error))
        << error;
    auto first =
        client.submit(net::Request{"nreverse30"}, nullptr, &error);
    ASSERT_TRUE(first.has_value()) << error;
    EXPECT_EQ(first->status, net::WireStatus::Ok);

    // Kill the only backend.  The ring empties, so new submits are
    // refused (the refusal is immediate, not a hang).
    backend.reset();
    bool sawRefusal = false;
    for (int i = 0; i < 5000 && !sawRefusal; ++i) {
        auto refused = client.submit(net::Request{"nreverse30"},
                                     nullptr, &error);
        ASSERT_TRUE(refused.has_value()) << error;
        if (refused->status == net::WireStatus::Overloaded)
            sawRefusal = true;
        else
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(sawRefusal)
        << "submits kept succeeding with no backend alive";

    // Restart on the same port: the backoff redial must re-admit it
    // and submits must succeed again without reconnecting.
    backend = std::make_unique<BackendHarness>(fixedPort);
    router.waitForAdmission(1);
    auto revived =
        client.submit(net::Request{"nreverse30"}, nullptr, &error);
    ASSERT_TRUE(revived.has_value()) << error;
    EXPECT_EQ(revived->status, net::WireStatus::Ok);

    router::RouterMetrics metrics = router.router.metrics();
    EXPECT_GE(metrics.backends[0].ejections, 1u);
    EXPECT_TRUE(metrics.backends[0].admitted);
}

} // namespace
