#include <gtest/gtest.h>

#include "kl0/builtin_defs.hpp"
#include "kl0/symbols.hpp"

using namespace psi::kl0;

TEST(Symbols, AtomsInternStably)
{
    SymbolTable t;
    auto a = t.atom("hello");
    auto b = t.atom("world");
    EXPECT_NE(a, b);
    EXPECT_EQ(t.atom("hello"), a);
    EXPECT_EQ(t.atomName(a), "hello");
}

TEST(Symbols, FunctorsDistinguishArity)
{
    SymbolTable t;
    auto f1 = t.functor("f", 1);
    auto f2 = t.functor("f", 2);
    EXPECT_NE(f1, f2);
    EXPECT_EQ(t.functorName(f1), "f");
    EXPECT_EQ(t.functorArity(f2), 2u);
    EXPECT_EQ(t.functor("f", 1), f1);
}

TEST(Symbols, PreinternedAtoms)
{
    SymbolTable t;
    EXPECT_EQ(t.atomName(t.nilAtom()), "[]");
    EXPECT_EQ(t.atomName(t.trueAtom()), "true");
}

TEST(Symbols, CountsGrow)
{
    SymbolTable t;
    auto n0 = t.atomCount();
    t.atom("fresh_atom_xyz");
    EXPECT_EQ(t.atomCount(), n0 + 1);
    auto f0 = t.functorCount();
    t.functor("fresh", 3);
    EXPECT_EQ(t.functorCount(), f0 + 1);
}

TEST(BuiltinDefs, LookupByNameArity)
{
    EXPECT_EQ(builtinIndex("is", 2),
              static_cast<int>(Builtin::Is));
    EXPECT_EQ(builtinIndex("=", 2),
              static_cast<int>(Builtin::Unify));
    EXPECT_EQ(builtinIndex("is", 3), -1);
    EXPECT_EQ(builtinIndex("user_pred", 1), -1);
}

TEST(BuiltinDefs, Aliases)
{
    EXPECT_EQ(builtinIndex("false", 0),
              static_cast<int>(Builtin::Fail));
    EXPECT_EQ(builtinIndex("print", 1),
              static_cast<int>(Builtin::Write));
}

TEST(BuiltinDefs, NamesAndArities)
{
    EXPECT_STREQ(builtinName(Builtin::Univ), "=..");
    EXPECT_EQ(builtinArity(Builtin::Functor), 3u);
    EXPECT_EQ(builtinArity(Builtin::Nl), 0u);
}
