#include <gtest/gtest.h>

#include "micro/work_file.hpp"

using namespace psi;
using namespace psi::micro;

TEST(WorkFile, ReadWriteRoundTrip)
{
    WorkFile wf;
    wf.write(0x25, {Tag::Int, 99});
    EXPECT_EQ(wf.read(0x25).data, 99u);
    EXPECT_EQ(wf.read(0x26).tag, Tag::Undef);
}

TEST(WorkFile, Wfar1AutoIncrement)
{
    WorkFile wf;
    wf.setWfar1(kWfFrameBuf0);
    wf.writeWfar1Inc({Tag::Int, 1});
    wf.writeWfar1Inc({Tag::Int, 2});
    EXPECT_EQ(wf.wfar1(), kWfFrameBuf0 + 2);
    EXPECT_EQ(wf.read(kWfFrameBuf0).data, 1u);
    EXPECT_EQ(wf.read(kWfFrameBuf0 + 1).data, 2u);
}

TEST(WorkFile, Wfar1PreDecrementRead)
{
    WorkFile wf;
    wf.write(10, {Tag::Int, 7});
    wf.setWfar1(11);
    EXPECT_EQ(wf.readWfar1Dec().data, 7u);
    EXPECT_EQ(wf.wfar1(), 10u);
}

TEST(WorkFile, Wfar2IndependentOfWfar1)
{
    WorkFile wf;
    wf.setWfar1(0x40);
    wf.setWfar2(kWfTrailBuf);
    wf.writeWfar2Inc({Tag::Int, 5});
    EXPECT_EQ(wf.wfar1(), 0x40u);
    EXPECT_EQ(wf.wfar2(), kWfTrailBuf + 1u);
    EXPECT_EQ(wf.read(kWfTrailBuf).data, 5u);
}

TEST(WorkFile, DirectModeClassification)
{
    EXPECT_EQ(WorkFile::directMode(0x00), WfMode::Direct00_0F);
    EXPECT_EQ(WorkFile::directMode(0x0F), WfMode::Direct00_0F);
    EXPECT_EQ(WorkFile::directMode(0x10), WfMode::Direct10_3F);
    EXPECT_EQ(WorkFile::directMode(0x3F), WfMode::Direct10_3F);
    EXPECT_EQ(WorkFile::directMode(kWfConstBase), WfMode::Constant);
    EXPECT_EQ(WorkFile::directMode(kWfConstBase + kWfConstWords - 1),
              WfMode::Constant);
    // Frame buffers are not directly addressable.
    EXPECT_EQ(WorkFile::directMode(kWfFrameBuf0), WfMode::None);
}

TEST(WorkFile, LayoutRegionsDisjoint)
{
    EXPECT_LT(kWfArgBase + 16, kWfFrameBuf0 + 0u);
    EXPECT_EQ(kWfFrameBuf0 + kWfFrameBufWords, kWfFrameBuf1 + 0u);
    EXPECT_EQ(kWfFrameBuf1 + kWfFrameBufWords, kWfTrailBuf + 0u);
    EXPECT_LE(kWfConstBase + kWfConstWords, kWfWords + 0u);
}

TEST(WorkFileDeathTest, OutOfRangePanics)
{
    WorkFile wf;
    EXPECT_DEATH(wf.read(kWfWords), "WF address");
}
