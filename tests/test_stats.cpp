#include <gtest/gtest.h>

#include "base/stats.hpp"

using namespace psi::stats;

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c++;
    c += 3;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, GroupAddAndGet)
{
    Group g("test");
    g.add("a");
    g.add("a", 2);
    g.add("b", 10);
    EXPECT_EQ(g.get("a"), 3u);
    EXPECT_EQ(g.get("b"), 10u);
    EXPECT_EQ(g.get("missing"), 0u);
}

TEST(Stats, GroupTotal)
{
    Group g("test");
    g.add("x", 4);
    g.add("y", 6);
    EXPECT_EQ(g.total(), 10u);
}

TEST(Stats, GroupKeysInsertionOrder)
{
    Group g("test");
    g.add("z");
    g.add("a");
    g.add("z");
    ASSERT_EQ(g.keys().size(), 2u);
    EXPECT_EQ(g.keys()[0], "z");
    EXPECT_EQ(g.keys()[1], "a");
}

TEST(Stats, GroupReset)
{
    Group g("test");
    g.add("a", 5);
    g.reset();
    EXPECT_EQ(g.total(), 0u);
    EXPECT_TRUE(g.keys().empty());
}

TEST(Stats, PctHandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(pct(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(pct(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(pct(0, 4), 0.0);
}

TEST(Stats, Ratio)
{
    EXPECT_DOUBLE_EQ(ratio(1, 2), 0.5);
    EXPECT_DOUBLE_EQ(ratio(7, 0), 0.0);
}

TEST(Stats, FixedFormatting)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(3.0, 1), "3.0");
    EXPECT_EQ(fixed(-0.05, 1), "-0.1");
}
