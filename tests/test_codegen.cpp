#include <gtest/gtest.h>

#include "kl0/builtin_defs.hpp"
#include "kl0/codegen.hpp"
#include "kl0/normalize.hpp"
#include "kl0/reader.hpp"
#include "mem/memory_system.hpp"

using namespace psi;
using namespace psi::kl0;

namespace {

/** The pre-psiindex image layout: linear clause chains and generic
 *  CallBuiltin words.  The layout-pin tests below address clause and
 *  directory words directly, so they compile with first-argument
 *  indexing and builtin specialization off; the psiindex tests at the
 *  end of this file cover the indexed layout explicitly. */
constexpr CompileOptions kPlain{.firstArgIndexing = false,
                                .specializeBuiltins = false};

/** Compile @p text and return (mem, syms-owned-elsewhere) helpers. */
struct Compiled
{
    MemorySystem mem;
    SymbolTable syms;
    CodeGen gen;

    explicit Compiled(const std::string &text,
                      CompileOptions opts = kPlain)
        : gen(mem, syms, opts)
    {
        Program p;
        p.consult(text);
        gen.compile(normalize(p));
    }

    TaggedWord
    at(std::uint32_t addr)
    {
        return mem.peek(LogicalAddr(Area::Heap, addr));
    }

    /** Address of the clause table of name/arity via the directory. */
    std::uint32_t
    table(const std::string &name, std::uint32_t arity)
    {
        std::uint32_t f = syms.functor(name, arity);
        TaggedWord dir = at(kDirBase + f);
        EXPECT_EQ(dir.tag, Tag::ClauseRef);
        return dir.data;
    }

    /** Address of clause @p i of name/arity. */
    std::uint32_t
    clause(const std::string &name, std::uint32_t arity,
           std::uint32_t i)
    {
        TaggedWord w = at(table(name, arity) + i);
        EXPECT_EQ(w.tag, Tag::ClauseRef);
        return w.data;
    }
};

} // namespace

TEST(Codegen, DirectoryAndClauseTable)
{
    Compiled c("f(1). f(2). f(3).");
    std::uint32_t t = c.table("f", 1);
    EXPECT_EQ(c.at(t).tag, Tag::ClauseRef);
    EXPECT_EQ(c.at(t + 1).tag, Tag::ClauseRef);
    EXPECT_EQ(c.at(t + 2).tag, Tag::ClauseRef);
    EXPECT_EQ(c.at(t + 3).tag, Tag::EndClauses);
}

TEST(Codegen, UndefinedPredicateDirectoryIsUndef)
{
    Compiled c("f(1).");
    std::uint32_t g = c.syms.functor("undefined_thing", 2);
    EXPECT_EQ(c.at(kDirBase + g).tag, Tag::Undef);
}

TEST(Codegen, ClauseHeaderFields)
{
    // X is local (head + two top-level goal occurrences), L is
    // global (occurs inside a list).
    Compiled c("p(X, [L]) :- q(X), r(X, L).");
    TaggedWord hdr = c.at(c.clause("p", 2, 0));
    ASSERT_EQ(hdr.tag, Tag::ClauseHeader);
    EXPECT_EQ(hdr.data & 0xff, 2u);            // arity
    EXPECT_EQ((hdr.data >> 8) & 0xff, 1u);     // nlocals (X)
    EXPECT_EQ((hdr.data >> 16) & 0xff, 1u);    // nglobals (L)
}

TEST(Codegen, FactBodyIsProceed)
{
    Compiled c("a.");
    std::uint32_t addr = c.clause("a", 0, 0);
    EXPECT_EQ(c.at(addr).tag, Tag::ClauseHeader);
    EXPECT_EQ(c.at(addr + 1).tag, Tag::Proceed);
}

TEST(Codegen, HeadDescriptorKinds)
{
    Compiled c("p(foo, 42, [], X, _, [a|T]) :- q(X, T).");
    std::uint32_t addr = c.clause("p", 6, 0);
    EXPECT_EQ(c.at(addr + 1).tag, Tag::HConst);
    EXPECT_EQ(c.at(addr + 2).tag, Tag::HInt);
    EXPECT_EQ(c.at(addr + 2).data, 42u);
    EXPECT_EQ(c.at(addr + 3).tag, Tag::HNil);
    EXPECT_EQ(c.at(addr + 4).tag, Tag::HVarF);
    EXPECT_EQ(c.at(addr + 5).tag, Tag::HVoid);
    EXPECT_EQ(c.at(addr + 6).tag, Tag::HList);
}

TEST(Codegen, RepeatedHeadVarIsHVarS)
{
    Compiled c("same(X, X).");
    std::uint32_t addr = c.clause("same", 2, 0);
    EXPECT_EQ(c.at(addr + 1).tag, Tag::HVarF);
    EXPECT_EQ(c.at(addr + 2).tag, Tag::HVarS);
}

TEST(Codegen, GroundHeadArgShared)
{
    Compiled c("conf(point(1,2)).");
    std::uint32_t addr = c.clause("conf", 1, 0);
    TaggedWord d = c.at(addr + 1);
    EXPECT_EQ(d.tag, Tag::HGroundStruct);
    // The shared skeleton is a well-formed runtime structure.
    LogicalAddr skel = LogicalAddr::unpack(d.data);
    EXPECT_EQ(skel.area, Area::Heap);
    EXPECT_EQ(c.mem.peek(skel).tag, Tag::Functor);
}

TEST(Codegen, NonGroundHeadArgIsSkeleton)
{
    Compiled c("p(point(X, 2)) :- q(X).");
    std::uint32_t addr = c.clause("p", 1, 0);
    EXPECT_EQ(c.at(addr + 1).tag, Tag::HStruct);
}

TEST(Codegen, LastUserCallMarked)
{
    Compiled c("p :- q, r. q. r.");
    std::uint32_t addr = c.clause("p", 0, 0);
    EXPECT_EQ(c.at(addr + 1).tag, Tag::Call);
    EXPECT_EQ(c.at(addr + 2).tag, Tag::CallLast);
    EXPECT_EQ(c.at(addr + 3).tag, Tag::Proceed);
}

TEST(Codegen, BuiltinCallEmitted)
{
    Compiled c("p(X) :- X = 3.");
    std::uint32_t addr = c.clause("p", 1, 0);
    TaggedWord w = c.at(addr + 2);
    EXPECT_EQ(w.tag, Tag::CallBuiltin);
    EXPECT_EQ(w.data, static_cast<std::uint32_t>(Builtin::Unify));
}

TEST(Codegen, PackedArgsForSmallOperands)
{
    Compiled c("p(X, Y) :- q(X, Y, 3, _).  q(_,_,_,_).");
    std::uint32_t addr = c.clause("p", 2, 0);
    // Header, HVarF, HVarF, CallLast (q is the final goal),
    // PackedArgs.
    EXPECT_EQ(c.at(addr + 3).tag, Tag::CallLast);
    TaggedWord packed = c.at(addr + 4);
    ASSERT_EQ(packed.tag, Tag::PackedArgs);
    // Operand 2 is the small integer 3.
    std::uint32_t op2 = (packed.data >> 16) & 0xff;
    EXPECT_EQ(op2 >> 5, kPackSmallInt);
    EXPECT_EQ(op2 & 0x1f, 3u);
    // Operand 3 is a void.
    std::uint32_t op3 = (packed.data >> 24) & 0xff;
    EXPECT_EQ(op3 >> 5, kPackVoid);
}

TEST(Codegen, AtomArgsNotPacked)
{
    Compiled c("p :- q(foo). q(_).");
    std::uint32_t addr = c.clause("p", 0, 0);
    EXPECT_EQ(c.at(addr + 1).tag, Tag::CallLast);
    EXPECT_EQ(c.at(addr + 2).tag, Tag::AConst);
}

TEST(Codegen, ArithExpressionSkeleton)
{
    Compiled c("p(X, Y) :- Y is X + 1.");
    std::uint32_t addr = c.clause("p", 2, 0);
    // Header, HVarF, HVarF, CallBuiltin(is), args.
    EXPECT_EQ(c.at(addr + 3).tag, Tag::CallBuiltin);
    EXPECT_EQ(c.at(addr + 4).tag, Tag::AVar);   // Y
    EXPECT_EQ(c.at(addr + 5).tag, Tag::AExpr);  // X + 1
    // X stays local: it never needs a global cell.
    TaggedWord hdr = c.at(addr);
    EXPECT_EQ((hdr.data >> 16) & 0xff, 0u);  // nglobals == 0
}

TEST(Codegen, GroundGoalArgShared)
{
    Compiled c("p :- q([1,2,3]). q(_).");
    std::uint32_t addr = c.clause("p", 0, 0);
    EXPECT_EQ(c.at(addr + 2).tag, Tag::AGroundList);
}

TEST(Codegen, QueryPinsNamedVars)
{
    MemorySystem mem;
    SymbolTable syms;
    CodeGen gen(mem, syms);
    QueryCode qc = gen.compileQuery(parseTerm("foo(X, _, Y)"));
    EXPECT_EQ(qc.vars.count("X"), 1u);
    EXPECT_EQ(qc.vars.count("Y"), 1u);
    EXPECT_EQ(qc.vars.size(), 2u);
}

TEST(Codegen, ArityLimitEnforced)
{
    Program p;
    p.consult("big(A1,A2,A3,A4,A5,A6,A7,A8,A9,A10,A11,A12,A13,A14,"
              "A15,A16,A17) :- true.");
    MemorySystem mem;
    SymbolTable syms;
    CodeGen gen(mem, syms);
    EXPECT_THROW(gen.compile(normalize(p)), FatalError);
}

// ----- psiindex: first-argument index layout ---------------------------

namespace {

/** Directory word of name/arity, whatever its tag. */
TaggedWord
dirWord(Compiled &c, const std::string &name, std::uint32_t arity)
{
    return c.at(kDirBase + c.syms.functor(name, arity));
}

/** Follow a root-slot word to its ClauseRef chain for @p key. */
std::uint32_t
chainAt(Compiled &c, TaggedWord slot_w, Tag key_tag, std::uint32_t key)
{
    if (slot_w.tag == Tag::ClauseRef)
        return slot_w.data;
    EXPECT_EQ(slot_w.tag, Tag::IndexHash);
    std::uint32_t block = slot_w.data;
    std::uint32_t nslots = c.at(block).data;
    std::uint32_t h = indexKeyHash(key) & (nslots - 1);
    for (;;) {
        TaggedWord kw = c.at(block + 2 + 2 * h);
        if (kw.tag == Tag::Undef)
            return c.at(block + 1).data;  // miss: var chain
        if (kw.tag == key_tag && kw.data == key)
            return c.at(block + 3 + 2 * h).data;
        h = (h + 1) & (nslots - 1);
    }
}

/** Clause addresses of the chain at @p t, in order. */
std::vector<std::uint32_t>
chainClauses(Compiled &c, std::uint32_t t)
{
    std::vector<std::uint32_t> out;
    for (; c.at(t).tag == Tag::ClauseRef; ++t)
        out.push_back(c.at(t).data);
    EXPECT_EQ(c.at(t).tag, Tag::EndClauses);
    return out;
}

} // namespace

TEST(Codegen, IndexedDirectoryPointsAtRoot)
{
    Compiled c("f(1). f(2). f(3).", CompileOptions{});
    TaggedWord dir = dirWord(c, "f", 1);
    ASSERT_EQ(dir.tag, Tag::IndexRef);
    // Root word 0 holds the linear fallback table, which still lists
    // every clause in source order.
    TaggedWord root0 = c.at(dir.data);
    ASSERT_EQ(root0.tag, Tag::IndexRoot);
    EXPECT_EQ(chainClauses(c, root0.data).size(), 3u);
}

TEST(Codegen, IndexHashSelectsTheMatchingClause)
{
    Compiled c("f(1). f(2). f(3).", CompileOptions{});
    TaggedWord dir = dirWord(c, "f", 1);
    ASSERT_EQ(dir.tag, Tag::IndexRef);
    std::uint32_t root = dir.data;
    auto linear = chainClauses(c, c.at(root).data);

    // Each integer key's bucket holds exactly its own clause.
    for (std::uint32_t k = 1; k <= 3; ++k) {
        auto bucket = chainClauses(
            c, chainAt(c, c.at(root + kIdxSlotInt), Tag::Int, k));
        ASSERT_EQ(bucket.size(), 1u) << "key " << k;
        EXPECT_EQ(bucket[0], linear[k - 1]) << "key " << k;
    }
    // A key no clause mentions falls through to the (empty) var chain.
    auto miss = chainClauses(
        c, chainAt(c, c.at(root + kIdxSlotInt), Tag::Int, 99));
    EXPECT_TRUE(miss.empty());
    // The atom class has no keyed clause: it shares the var chain.
    auto atoms = chainClauses(c, chainAt(c, c.at(root + kIdxSlotAtom),
                                         Tag::Atom, 0));
    EXPECT_TRUE(atoms.empty());
}

TEST(Codegen, VarHeadedClausesAppearInEveryChain)
{
    Compiled c("g(a, 1). g(X, 2). g(b, 3). g([], 4). g([_|_], 5).",
               CompileOptions{});
    TaggedWord dir = dirWord(c, "g", 2);
    ASSERT_EQ(dir.tag, Tag::IndexRef);
    std::uint32_t root = dir.data;
    auto linear = chainClauses(c, c.at(root).data);
    ASSERT_EQ(linear.size(), 5u);

    std::uint32_t key_a = c.syms.atom("a");
    auto a_chain = chainClauses(
        c, chainAt(c, c.at(root + kIdxSlotAtom), Tag::Atom, key_a));
    // g(a,1) plus the var clause g(X,2), in source order.
    ASSERT_EQ(a_chain.size(), 2u);
    EXPECT_EQ(a_chain[0], linear[0]);
    EXPECT_EQ(a_chain[1], linear[1]);

    auto nil_chain =
        chainClauses(c, c.at(root + kIdxSlotNil).data);
    ASSERT_EQ(nil_chain.size(), 2u);
    EXPECT_EQ(nil_chain[0], linear[1]);  // var clause first in order
    EXPECT_EQ(nil_chain[1], linear[3]);

    auto list_chain =
        chainClauses(c, c.at(root + kIdxSlotList).data);
    ASSERT_EQ(list_chain.size(), 2u);
    EXPECT_EQ(list_chain[0], linear[1]);
    EXPECT_EQ(list_chain[1], linear[4]);
}

TEST(Codegen, AllVarHeadsEmitNoIndex)
{
    // No clause has a constant key: the directory stays a plain
    // linear ClauseRef table.
    Compiled c("h(X, 1). h(Y, 2).", CompileOptions{});
    EXPECT_EQ(dirWord(c, "h", 2).tag, Tag::ClauseRef);
}

TEST(Codegen, SingleClauseAndZeroArityStayLinear)
{
    Compiled c("one(a). z :- one(X). z.", CompileOptions{});
    EXPECT_EQ(dirWord(c, "one", 1).tag, Tag::ClauseRef);
    // z/0 has two clauses but no first argument to index.
    EXPECT_EQ(dirWord(c, "z", 0).tag, Tag::ClauseRef);
}

TEST(Codegen, StructHeadsIndexOnPrincipalFunctor)
{
    Compiled c("s(p(_), 1). s(q(_, _), 2). s(p(_), 3).",
               CompileOptions{});
    TaggedWord dir = dirWord(c, "s", 2);
    ASSERT_EQ(dir.tag, Tag::IndexRef);
    std::uint32_t root = dir.data;
    auto linear = chainClauses(c, c.at(root).data);

    std::uint32_t fp = c.syms.functor("p", 1);
    auto p_chain = chainClauses(
        c, chainAt(c, c.at(root + kIdxSlotStruct), Tag::Functor, fp));
    ASSERT_EQ(p_chain.size(), 2u);
    EXPECT_EQ(p_chain[0], linear[0]);
    EXPECT_EQ(p_chain[1], linear[2]);

    std::uint32_t fq = c.syms.functor("q", 2);
    auto q_chain = chainClauses(
        c, chainAt(c, c.at(root + kIdxSlotStruct), Tag::Functor, fq));
    ASSERT_EQ(q_chain.size(), 1u);
    EXPECT_EQ(q_chain[0], linear[1]);
}

TEST(Codegen, SpecializedBuiltinOpcodes)
{
    Compiled c("p(X, Y) :- Y is X + 1, Y < 10.", CompileOptions{});
    std::uint32_t addr = c.clause("p", 2, 0);
    // Header, HVarF, HVarF, CallIs(is), args, CallCmp(<), args.
    EXPECT_EQ(c.at(addr + 3).tag, Tag::CallIs);
    EXPECT_EQ(c.at(addr + 3).data,
              static_cast<std::uint32_t>(Builtin::Is));
    EXPECT_EQ(c.at(addr + 6).tag, Tag::CallCmp);
    EXPECT_EQ(c.at(addr + 6).data,
              static_cast<std::uint32_t>(Builtin::Lt));
}

TEST(Codegen, UnindexedImageHasNoNewTags)
{
    // The option-off image must not contain any psiindex tag, so
    // pre-psiindex images are reproduced bit for bit.
    Compiled c("f(1). f(2). f(3). p(X, Y) :- Y is X + 1.");
    for (std::uint32_t a = kCodeBase; a < c.gen.heapTop(); ++a) {
        Tag t = c.at(a).tag;
        EXPECT_TRUE(t != Tag::IndexRef && t != Tag::IndexRoot &&
                    t != Tag::IndexHash && t != Tag::CallIs &&
                    t != Tag::CallCmp)
            << "word " << a;
    }
    EXPECT_EQ(dirWord(c, "f", 1).tag, Tag::ClauseRef);
}
