#include <gtest/gtest.h>

#include "kl0/builtin_defs.hpp"
#include "kl0/codegen.hpp"
#include "kl0/normalize.hpp"
#include "kl0/reader.hpp"
#include "mem/memory_system.hpp"

using namespace psi;
using namespace psi::kl0;

namespace {

/** Compile @p text and return (mem, syms-owned-elsewhere) helpers. */
struct Compiled
{
    MemorySystem mem;
    SymbolTable syms;
    CodeGen gen{mem, syms};

    explicit Compiled(const std::string &text)
    {
        Program p;
        p.consult(text);
        gen.compile(normalize(p));
    }

    TaggedWord
    at(std::uint32_t addr)
    {
        return mem.peek(LogicalAddr(Area::Heap, addr));
    }

    /** Address of the clause table of name/arity via the directory. */
    std::uint32_t
    table(const std::string &name, std::uint32_t arity)
    {
        std::uint32_t f = syms.functor(name, arity);
        TaggedWord dir = at(kDirBase + f);
        EXPECT_EQ(dir.tag, Tag::ClauseRef);
        return dir.data;
    }

    /** Address of clause @p i of name/arity. */
    std::uint32_t
    clause(const std::string &name, std::uint32_t arity,
           std::uint32_t i)
    {
        TaggedWord w = at(table(name, arity) + i);
        EXPECT_EQ(w.tag, Tag::ClauseRef);
        return w.data;
    }
};

} // namespace

TEST(Codegen, DirectoryAndClauseTable)
{
    Compiled c("f(1). f(2). f(3).");
    std::uint32_t t = c.table("f", 1);
    EXPECT_EQ(c.at(t).tag, Tag::ClauseRef);
    EXPECT_EQ(c.at(t + 1).tag, Tag::ClauseRef);
    EXPECT_EQ(c.at(t + 2).tag, Tag::ClauseRef);
    EXPECT_EQ(c.at(t + 3).tag, Tag::EndClauses);
}

TEST(Codegen, UndefinedPredicateDirectoryIsUndef)
{
    Compiled c("f(1).");
    std::uint32_t g = c.syms.functor("undefined_thing", 2);
    EXPECT_EQ(c.at(kDirBase + g).tag, Tag::Undef);
}

TEST(Codegen, ClauseHeaderFields)
{
    // X is local (head + two top-level goal occurrences), L is
    // global (occurs inside a list).
    Compiled c("p(X, [L]) :- q(X), r(X, L).");
    TaggedWord hdr = c.at(c.clause("p", 2, 0));
    ASSERT_EQ(hdr.tag, Tag::ClauseHeader);
    EXPECT_EQ(hdr.data & 0xff, 2u);            // arity
    EXPECT_EQ((hdr.data >> 8) & 0xff, 1u);     // nlocals (X)
    EXPECT_EQ((hdr.data >> 16) & 0xff, 1u);    // nglobals (L)
}

TEST(Codegen, FactBodyIsProceed)
{
    Compiled c("a.");
    std::uint32_t addr = c.clause("a", 0, 0);
    EXPECT_EQ(c.at(addr).tag, Tag::ClauseHeader);
    EXPECT_EQ(c.at(addr + 1).tag, Tag::Proceed);
}

TEST(Codegen, HeadDescriptorKinds)
{
    Compiled c("p(foo, 42, [], X, _, [a|T]) :- q(X, T).");
    std::uint32_t addr = c.clause("p", 6, 0);
    EXPECT_EQ(c.at(addr + 1).tag, Tag::HConst);
    EXPECT_EQ(c.at(addr + 2).tag, Tag::HInt);
    EXPECT_EQ(c.at(addr + 2).data, 42u);
    EXPECT_EQ(c.at(addr + 3).tag, Tag::HNil);
    EXPECT_EQ(c.at(addr + 4).tag, Tag::HVarF);
    EXPECT_EQ(c.at(addr + 5).tag, Tag::HVoid);
    EXPECT_EQ(c.at(addr + 6).tag, Tag::HList);
}

TEST(Codegen, RepeatedHeadVarIsHVarS)
{
    Compiled c("same(X, X).");
    std::uint32_t addr = c.clause("same", 2, 0);
    EXPECT_EQ(c.at(addr + 1).tag, Tag::HVarF);
    EXPECT_EQ(c.at(addr + 2).tag, Tag::HVarS);
}

TEST(Codegen, GroundHeadArgShared)
{
    Compiled c("conf(point(1,2)).");
    std::uint32_t addr = c.clause("conf", 1, 0);
    TaggedWord d = c.at(addr + 1);
    EXPECT_EQ(d.tag, Tag::HGroundStruct);
    // The shared skeleton is a well-formed runtime structure.
    LogicalAddr skel = LogicalAddr::unpack(d.data);
    EXPECT_EQ(skel.area, Area::Heap);
    EXPECT_EQ(c.mem.peek(skel).tag, Tag::Functor);
}

TEST(Codegen, NonGroundHeadArgIsSkeleton)
{
    Compiled c("p(point(X, 2)) :- q(X).");
    std::uint32_t addr = c.clause("p", 1, 0);
    EXPECT_EQ(c.at(addr + 1).tag, Tag::HStruct);
}

TEST(Codegen, LastUserCallMarked)
{
    Compiled c("p :- q, r. q. r.");
    std::uint32_t addr = c.clause("p", 0, 0);
    EXPECT_EQ(c.at(addr + 1).tag, Tag::Call);
    EXPECT_EQ(c.at(addr + 2).tag, Tag::CallLast);
    EXPECT_EQ(c.at(addr + 3).tag, Tag::Proceed);
}

TEST(Codegen, BuiltinCallEmitted)
{
    Compiled c("p(X) :- X = 3.");
    std::uint32_t addr = c.clause("p", 1, 0);
    TaggedWord w = c.at(addr + 2);
    EXPECT_EQ(w.tag, Tag::CallBuiltin);
    EXPECT_EQ(w.data, static_cast<std::uint32_t>(Builtin::Unify));
}

TEST(Codegen, PackedArgsForSmallOperands)
{
    Compiled c("p(X, Y) :- q(X, Y, 3, _).  q(_,_,_,_).");
    std::uint32_t addr = c.clause("p", 2, 0);
    // Header, HVarF, HVarF, CallLast (q is the final goal),
    // PackedArgs.
    EXPECT_EQ(c.at(addr + 3).tag, Tag::CallLast);
    TaggedWord packed = c.at(addr + 4);
    ASSERT_EQ(packed.tag, Tag::PackedArgs);
    // Operand 2 is the small integer 3.
    std::uint32_t op2 = (packed.data >> 16) & 0xff;
    EXPECT_EQ(op2 >> 5, kPackSmallInt);
    EXPECT_EQ(op2 & 0x1f, 3u);
    // Operand 3 is a void.
    std::uint32_t op3 = (packed.data >> 24) & 0xff;
    EXPECT_EQ(op3 >> 5, kPackVoid);
}

TEST(Codegen, AtomArgsNotPacked)
{
    Compiled c("p :- q(foo). q(_).");
    std::uint32_t addr = c.clause("p", 0, 0);
    EXPECT_EQ(c.at(addr + 1).tag, Tag::CallLast);
    EXPECT_EQ(c.at(addr + 2).tag, Tag::AConst);
}

TEST(Codegen, ArithExpressionSkeleton)
{
    Compiled c("p(X, Y) :- Y is X + 1.");
    std::uint32_t addr = c.clause("p", 2, 0);
    // Header, HVarF, HVarF, CallBuiltin(is), args.
    EXPECT_EQ(c.at(addr + 3).tag, Tag::CallBuiltin);
    EXPECT_EQ(c.at(addr + 4).tag, Tag::AVar);   // Y
    EXPECT_EQ(c.at(addr + 5).tag, Tag::AExpr);  // X + 1
    // X stays local: it never needs a global cell.
    TaggedWord hdr = c.at(addr);
    EXPECT_EQ((hdr.data >> 16) & 0xff, 0u);  // nglobals == 0
}

TEST(Codegen, GroundGoalArgShared)
{
    Compiled c("p :- q([1,2,3]). q(_).");
    std::uint32_t addr = c.clause("p", 0, 0);
    EXPECT_EQ(c.at(addr + 2).tag, Tag::AGroundList);
}

TEST(Codegen, QueryPinsNamedVars)
{
    MemorySystem mem;
    SymbolTable syms;
    CodeGen gen(mem, syms);
    QueryCode qc = gen.compileQuery(parseTerm("foo(X, _, Y)"));
    EXPECT_EQ(qc.vars.count("X"), 1u);
    EXPECT_EQ(qc.vars.count("Y"), 1u);
    EXPECT_EQ(qc.vars.size(), 2u);
}

TEST(Codegen, ArityLimitEnforced)
{
    Program p;
    p.consult("big(A1,A2,A3,A4,A5,A6,A7,A8,A9,A10,A11,A12,A13,A14,"
              "A15,A16,A17) :- true.");
    MemorySystem mem;
    SymbolTable syms;
    CodeGen gen(mem, syms);
    EXPECT_THROW(gen.compile(normalize(p)), FatalError);
}
