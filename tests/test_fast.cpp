/**
 * @file
 * psifast differential suite: the token-threaded fast engine must be
 * byte-identical to the fidelity interpreter in everything a client
 * can observe - solution bindings (including generated _G variable
 * names, which encode allocation order), printed output, inference
 * counts and termination status - while reporting zero for the
 * hardware accounting it skips.
 *
 * Covered paths:
 *  - direct FastEngine::load/solve vs runOnPsi, full registry
 *  - the warm-engine EnginePool path (mode = Fast), where an engine
 *    and its paged storage are reused across jobs
 *  - per-mode metrics counters and mode echo in JobOutcome
 *
 * The registry includes the stress workloads the dispatch rewrite is
 * most likely to break: trail40 (deep trail + unwind), deeprec
 * (frame stack growth) and permall6 (exhaustive backtracking).
 */

#include <gtest/gtest.h>

#include <future>
#include <set>
#include <string>
#include <vector>

#include "psi.hpp"

namespace {

using namespace psi;
using service::EnginePool;
using service::JobOutcome;
using service::QueryJob;

/** Fields the fast engine must reproduce exactly. */
void
expectByteIdentical(const interp::RunResult &fast,
                    const interp::RunResult &fid)
{
    EXPECT_EQ(fast.status, fid.status);
    EXPECT_EQ(fast.output, fid.output);
    EXPECT_EQ(fast.inferences, fid.inferences);
    ASSERT_EQ(fast.solutions.size(), fid.solutions.size());
    for (std::size_t k = 0; k < fid.solutions.size(); ++k)
        EXPECT_EQ(fast.solutions[k].str(), fid.solutions[k].str());
}

TEST(FastEngine, RegistryCoversTheStressWorkloads)
{
    // The differential below is only as strong as the registry it
    // sweeps: pin the workloads that exercise deep trails, deep
    // recursion and exhaustive backtracking so a future registry
    // prune cannot silently weaken the suite.
    std::set<std::string> ids;
    for (const auto &p : programs::allPrograms())
        ids.insert(p.id);
    EXPECT_TRUE(ids.count("trail40"));
    EXPECT_TRUE(ids.count("deeprec"));
    EXPECT_TRUE(ids.count("permall6"));
    EXPECT_TRUE(ids.count("nreverse30"));
    // The adversarial family (cache-set conflict, multi-solution
    // join, choice-point-dense dispatch) must ride the differential
    // too.
    EXPECT_TRUE(ids.count("setclash"));
    EXPECT_TRUE(ids.count("permjoin"));
    EXPECT_TRUE(ids.count("polyop"));
}

TEST(FastEngine, ByteIdenticalToFidelityOnFullRegistry)
{
    for (const auto &p : programs::allPrograms()) {
        SCOPED_TRACE(p.id);
        PsiRun fid = runOnPsi(p);

        auto image = kl0::CompiledProgram::compile(p.source);
        fast::FastEngine fe;
        fe.load(image);
        interp::RunResult fr = fe.solve(p.query);

        expectByteIdentical(fr, fid.result);
        // The accounting the fast path skips reads as zero, never as
        // a stale or fabricated number.
        EXPECT_EQ(fr.steps, 0u);
        EXPECT_EQ(fr.timeNs, 0u);
    }
}

/**
 * One engine, whole registry, no reload between reruns: clear() must
 * restore a byte-identical starting state (stack tops, trail, vector
 * space, generated-name counter) or answers drift on the second run.
 */
TEST(FastEngine, WarmEngineRerunsAreIdentical)
{
    fast::FastEngine fe;
    for (const auto &p : programs::allPrograms()) {
        SCOPED_TRACE(p.id);
        auto image = kl0::CompiledProgram::compile(p.source);
        fe.load(image);
        interp::RunResult first = fe.solve(p.query);
        interp::RunResult again = fe.solve(p.query);
        expectByteIdentical(again, first);
    }
}

TEST(FastEngine, PoolPathMatchesFidelityOnFullRegistry)
{
    const auto &programs = programs::allPrograms();

    EnginePool::Config config;
    config.workers = 4;
    config.queueCapacity = programs.size();
    EnginePool pool(config);

    // Two passes through the pool: the first pass hits cold workers,
    // the second reuses warm engines whose paged areas and interned
    // state survived a prior job.
    for (int pass = 0; pass < 2; ++pass) {
        SCOPED_TRACE("pass " + std::to_string(pass));
        std::vector<std::future<JobOutcome>> futures;
        for (const auto &p : programs) {
            QueryJob job{p, CacheConfig::psi(), interp::RunLimits()};
            job.mode = interp::ExecMode::Fast;
            auto f = pool.submit(std::move(job));
            ASSERT_TRUE(f.has_value());
            futures.push_back(std::move(*f));
        }
        for (std::size_t i = 0; i < programs.size(); ++i) {
            SCOPED_TRACE(programs[i].id);
            JobOutcome out = futures[i].get();
            ASSERT_TRUE(out.error.empty()) << out.error;
            EXPECT_EQ(out.mode, interp::ExecMode::Fast);
            PsiRun fid = runOnPsi(programs[i]);
            expectByteIdentical(out.run.result, fid.result);
        }
    }

    auto snap = pool.metrics();
    EXPECT_EQ(snap.total.jobsFast, 2 * programs.size());
    EXPECT_EQ(snap.total.jobsFidelity, 0u);
}

TEST(FastEngine, PoolCountsModesSeparately)
{
    EnginePool::Config config;
    config.workers = 1;
    EnginePool pool(config);

    const auto &p = programs::programById("nreverse30");
    QueryJob fidelity{p, CacheConfig::psi(), interp::RunLimits()};
    QueryJob fastJob{p, CacheConfig::psi(), interp::RunLimits()};
    fastJob.mode = interp::ExecMode::Fast;

    auto f1 = pool.submit(QueryJob(fidelity));
    auto f2 = pool.submit(QueryJob(fastJob));
    auto f3 = pool.submit(QueryJob(fastJob));
    ASSERT_TRUE(f1 && f2 && f3);
    JobOutcome o1 = f1->get();
    JobOutcome o2 = f2->get();
    JobOutcome o3 = f3->get();
    EXPECT_EQ(o1.mode, interp::ExecMode::Fidelity);
    EXPECT_EQ(o2.mode, interp::ExecMode::Fast);
    EXPECT_GT(o1.run.result.steps, 0u) << "fidelity keeps its stats";
    EXPECT_EQ(o2.run.result.steps, 0u);
    expectByteIdentical(o2.run.result, o1.run.result);
    expectByteIdentical(o3.run.result, o1.run.result);

    auto snap = pool.metrics();
    EXPECT_EQ(snap.total.jobsFidelity, 1u);
    EXPECT_EQ(snap.total.jobsFast, 2u);

    // The split surfaces in both machine renderings.
    const std::string json = snap.json();
    EXPECT_NE(json.find("\"completed_fidelity\": 1"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"completed_fast\": 2"), std::string::npos)
        << json;
    const std::string prom = snap.prometheus();
    EXPECT_NE(prom.find("psi_jobs_mode_total{mode=\"fast\"} 2"),
              std::string::npos)
        << prom;
    EXPECT_NE(prom.find("psi_jobs_mode_total{mode=\"fidelity\"} 1"),
              std::string::npos)
        << prom;
}

// ----- psiindex: first-argument indexing differentials + counters ----

/** Compile options with the psiindex machinery fully off. */
kl0::CompileOptions
plainOptions()
{
    kl0::CompileOptions o;
    o.firstArgIndexing = false;
    o.specializeBuiltins = false;
    return o;
}

/**
 * The index is a pure filter: with indexing and builtin
 * specialization compiled OUT, both engines must still agree with
 * each other byte-for-byte - and with the indexed fidelity run, so
 * flipping CompileOptions can never change what a client observes.
 * (The indexed fast-vs-fidelity leg is ByteIdenticalToFidelity-
 * OnFullRegistry above; this closes the square.)
 */
TEST(FastEngine, ByteIdenticalToFidelityWithIndexingOff)
{
    for (const auto &p : programs::allPrograms()) {
        SCOPED_TRACE(p.id);
        auto image =
            kl0::CompiledProgram::compile(p.source, plainOptions());

        interp::Engine eng;
        eng.load(image);
        interp::RunResult fid = eng.solve(p.query);

        fast::FastEngine fe;
        fe.load(image);
        interp::RunResult fr = fe.solve(p.query);

        expectByteIdentical(fr, fid);
        PsiRun indexed = runOnPsi(p); // default options: indexing ON
        expectByteIdentical(fid, indexed.result);

        // An unindexed image never touches the index counters.
        EXPECT_EQ(fe.indexHits(), 0u);
        EXPECT_EQ(fe.indexFallbacks(), 0u);
        EXPECT_EQ(eng.indexHits(), 0u);
        EXPECT_EQ(eng.indexFallbacks(), 0u);
    }
}

/**
 * A bound first argument dispatches through the index (hit), an
 * unbound one takes the linear fallback - on both engines, with
 * identical counts, since both walk the same compiled index.
 */
TEST(FastEngine, IndexCountersSplitHitsFromFallbacks)
{
    const std::string src = "f(1,a). f(2,b). f(3,c).";
    auto image = kl0::CompiledProgram::compile(src);

    fast::FastEngine fe;
    fe.load(image);
    interp::Engine eng;
    eng.load(image);

    fe.solve("f(2,X)");
    eng.solve("f(2,X)");
    EXPECT_GT(fe.indexHits(), 0u);
    EXPECT_EQ(fe.indexFallbacks(), 0u);
    EXPECT_EQ(eng.indexHits(), fe.indexHits());
    EXPECT_EQ(eng.indexFallbacks(), 0u);

    // Counters are per-run: the unbound query starts from zero.
    fe.solve("f(X,Y)");
    eng.solve("f(X,Y)");
    EXPECT_EQ(fe.indexHits(), 0u);
    EXPECT_GT(fe.indexFallbacks(), 0u);
    EXPECT_EQ(eng.indexHits(), 0u);
    EXPECT_EQ(eng.indexFallbacks(), fe.indexFallbacks());
}

/**
 * The regression the tentpole exists for: on polyop (26-clause
 * dispatch predicate, the worst case for linear clause trial) the
 * indexed image must visit strictly fewer clause candidates than the
 * linear one, on both engines, with byte-identical answers.
 */
TEST(FastEngine, PolyopIndexedTriesStrictlyFewerClauses)
{
    const auto &p = programs::programById("polyop");
    auto indexed = kl0::CompiledProgram::compile(p.source);
    auto linear =
        kl0::CompiledProgram::compile(p.source, plainOptions());

    fast::FastEngine fe;
    fe.load(linear);
    interp::RunResult linearRun = fe.solve(p.query);
    std::uint64_t linearTries = fe.clauseTries();
    fe.load(indexed);
    interp::RunResult indexedRun = fe.solve(p.query);
    std::uint64_t indexedTries = fe.clauseTries();
    expectByteIdentical(indexedRun, linearRun);
    EXPECT_LT(indexedTries, linearTries);
    EXPECT_GT(fe.indexHits(), 0u);

    interp::Engine eng;
    eng.load(linear);
    eng.solve(p.query);
    std::uint64_t fidLinearTries = eng.clauseTries();
    eng.load(indexed);
    eng.solve(p.query);
    EXPECT_LT(eng.clauseTries(), fidLinearTries);
    EXPECT_GT(eng.indexHits(), 0u);
    // Same image, same walk: the engines agree on the counters.
    EXPECT_EQ(eng.clauseTries(), indexedTries);
    EXPECT_EQ(eng.indexHits(), fe.indexHits());
}

/**
 * The per-job counters flow JobOutcome -> WorkerMetrics ->
 * MetricsSnapshot and surface in every rendering the service
 * exposes, for fast and fidelity jobs alike.
 */
TEST(FastEngine, IndexCountersSurfaceInPoolMetrics)
{
    EnginePool::Config config;
    config.workers = 1;
    EnginePool pool(config);

    const auto &p = programs::programById("polyop");
    QueryJob fidelity{p, CacheConfig::psi(), interp::RunLimits()};
    QueryJob fastJob{p, CacheConfig::psi(), interp::RunLimits()};
    fastJob.mode = interp::ExecMode::Fast;

    auto f1 = pool.submit(QueryJob(fidelity));
    auto f2 = pool.submit(QueryJob(fastJob));
    ASSERT_TRUE(f1 && f2);
    JobOutcome o1 = f1->get();
    JobOutcome o2 = f2->get();
    EXPECT_GT(o1.indexHits, 0u);
    EXPECT_GT(o2.indexHits, 0u);
    EXPECT_EQ(o1.indexHits, o2.indexHits);

    auto snap = pool.metrics();
    EXPECT_EQ(snap.total.indexHits, o1.indexHits + o2.indexHits);
    const std::string json = snap.json();
    EXPECT_NE(json.find("\"index_hits\": "), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"index_fallbacks\": "), std::string::npos)
        << json;
    const std::string prom = snap.prometheus();
    EXPECT_NE(prom.find("psi_index_hits_total"), std::string::npos)
        << prom;
    EXPECT_NE(prom.find("psi_index_fallbacks_total"),
              std::string::npos)
        << prom;
}

} // namespace
