#include <gtest/gtest.h>

#include "base/logging.hpp"
#include "kl0/reader.hpp"

using namespace psi::kl0;
using psi::FatalError;

namespace {

std::string
parsed(const std::string &text)
{
    return parseTerm(text)->str();
}

} // namespace

TEST(Reader, SimpleAtomAndCompound)
{
    EXPECT_EQ(parsed("foo"), "foo");
    EXPECT_EQ(parsed("f(a,b)"), "f(a,b)");
    EXPECT_EQ(parsed("f(g(h(x)))"), "f(g(h(x)))");
}

TEST(Reader, OperatorPrecedenceArithmetic)
{
    // * binds tighter than +.
    EXPECT_EQ(parsed("1+2*3"), "+(1,*(2,3))");
    EXPECT_EQ(parsed("(1+2)*3"), "*(+(1,2),3)");
}

TEST(Reader, LeftAssociativity)
{
    EXPECT_EQ(parsed("1-2-3"), "-(-(1,2),3)");
    EXPECT_EQ(parsed("8//2//2"), "//(//(8,2),2)");
}

TEST(Reader, RightAssociativeComma)
{
    EXPECT_EQ(parsed("(a,b,c)"), "','(a,','(b,c))");
}

TEST(Reader, ClauseOperator)
{
    EXPECT_EQ(parsed("h :- b1, b2"), ":-(h,','(b1,b2))");
}

TEST(Reader, ComparisonOperators)
{
    EXPECT_EQ(parsed("X is Y + 1"), "is(X,+(Y,1))");
    EXPECT_EQ(parsed("A =< B"), "=<(A,B)");
    EXPECT_EQ(parsed("A =.. B"), "=..(A,B)");
}

TEST(Reader, NegativeNumberLiterals)
{
    TermPtr t = parseTerm("-5");
    EXPECT_TRUE(t->isInt());
    EXPECT_EQ(t->value(), -5);
    // Binary minus still parses as an operator.
    EXPECT_EQ(parsed("3 - 5"), "-(3,5)");
}

TEST(Reader, PrefixOperators)
{
    EXPECT_EQ(parsed("\\+ foo"), "\\+(foo)");
    EXPECT_EQ(parsed("- X"), "-(X)");
}

TEST(Reader, OperatorAsPlainAtom)
{
    EXPECT_EQ(parsed("f(-)"), "f(-)");
}

TEST(Reader, Lists)
{
    EXPECT_EQ(parsed("[]"), "[]");
    EXPECT_EQ(parsed("[1,2,3]"), "[1,2,3]");
    EXPECT_EQ(parsed("[H|T]"), "[H|T]");
    EXPECT_EQ(parsed("[a,b|T]"), "[a,b|T]");
    EXPECT_EQ(parsed("[[1],[2]]"), "[[1],[2]]");
}

TEST(Reader, IfThenElse)
{
    // -> binds tighter than ;.
    EXPECT_EQ(parsed("(c -> t ; e)"), ";(->(c,t),e)");
}

TEST(Reader, AnonymousVarsAreDistinct)
{
    TermPtr t = parseTerm("f(_, _)");
    EXPECT_NE(t->args()[0]->name(), t->args()[1]->name());
}

TEST(Reader, SameNameVarsShareName)
{
    TermPtr t = parseTerm("f(X, X)");
    EXPECT_EQ(t->args()[0]->name(), t->args()[1]->name());
}

TEST(Reader, ReadAllClauses)
{
    auto cs = parseProgram("a. b :- c. d(1).");
    ASSERT_EQ(cs.size(), 3u);
    EXPECT_EQ(cs[0]->str(), "a");
    EXPECT_EQ(cs[2]->str(), "d(1)");
}

TEST(Reader, CurlyBraces)
{
    EXPECT_EQ(parsed("{}"), "{}");
    EXPECT_EQ(parsed("{a}"), "{}(a)");
}

TEST(Reader, QuotedAtomCompound)
{
    EXPECT_EQ(parsed("'my atom'(1)"), "'my atom'(1)");
}

TEST(Reader, MissingParenThrows)
{
    EXPECT_THROW(parseTerm("f(a"), FatalError);
}

TEST(Reader, MissingClauseEndThrows)
{
    Reader r("foo");
    EXPECT_THROW(r.readClause(), FatalError);
}

TEST(Reader, MissingBracketThrows)
{
    EXPECT_THROW(parseTerm("[1,2"), FatalError);
}

TEST(Reader, CommaArgumentsRespectPriority)
{
    // Inside an argument list, ',' separates arguments.
    TermPtr t = parseTerm("f(a, b)");
    EXPECT_EQ(t->arity(), 2u);
    // A parenthesized conjunction is one argument.
    TermPtr t2 = parseTerm("f((a, b))");
    EXPECT_EQ(t2->arity(), 1u);
}
