/**
 * @file
 * Multi-process support (paper §2.1): process_call/2 runs an arity-0
 * predicate in another process's stack areas; the heap (and the
 * global registry) is shared; machine state survives the switch.
 */

#include <gtest/gtest.h>

#include "psi.hpp"

using namespace psi;
using namespace psi::interp;

namespace {

RunResult
run(const std::string &program, const std::string &query, int max = 10)
{
    Engine eng;
    eng.consult(program);
    RunLimits lim;
    lim.maxSolutions = max;
    return eng.solve(query, lim);
}

} // namespace

TEST(GlobalRegistry, SetAndGetAtomics)
{
    auto r = run("", "global_set(3, hello), global_get(3, V)");
    ASSERT_TRUE(r.succeeded());
    EXPECT_EQ(r.solutions[0].bindings.at("V")->name(), "hello");
}

TEST(GlobalRegistry, UnsetKeyFails)
{
    EXPECT_FALSE(run("", "global_get(7, _)").succeeded());
}

TEST(GlobalRegistry, RejectsNonAtomicValues)
{
    EXPECT_FALSE(run("", "global_set(0, f(x))").succeeded());
    EXPECT_FALSE(run("", "global_set(0, X), X = 1").succeeded());
    EXPECT_FALSE(run("", "global_set(99, a)").succeeded());
}

TEST(GlobalRegistry, SharesVectorHandles)
{
    auto r = run("", "vector_new(3, V), vector_set(V, 1, 42), "
                     "global_set(2, V), global_get(2, W), "
                     "vector_get(W, 1, X)");
    ASSERT_TRUE(r.succeeded());
    EXPECT_EQ(r.solutions[0].bindings.at("X")->value(), 42);
}

TEST(ProcessCall, RunsGoalAndReturns)
{
    auto r = run("svc :- global_set(1, done).",
                 "process_call(1, svc), global_get(1, V)");
    ASSERT_TRUE(r.succeeded());
    EXPECT_EQ(r.solutions[0].bindings.at("V")->name(), "done");
}

TEST(ProcessCall, FailurePropagates)
{
    EXPECT_FALSE(run("svc :- fail.", "process_call(1, svc)")
                     .succeeded());
}

TEST(ProcessCall, IsDeterministic)
{
    // svc has alternatives, but process_call takes only the first
    // solution and leaves no choice points behind.
    auto r = run("svc :- global_set(1, first).\n"
                 "svc :- global_set(1, second).",
                 "process_call(1, svc), global_get(1, V)",
                 10);
    ASSERT_EQ(r.solutions.size(), 1u);
    EXPECT_EQ(r.solutions[0].bindings.at("V")->name(), "first");
}

TEST(ProcessCall, CallerStateSurvivesSwitch)
{
    auto r = run(
        "svc :- global_get(0, Q), vector_set(Q, 0, 9).\n"
        "go(X, Y, L) :- X = f(1, g(2)), L = [a, b, c],\n"
        "    vector_new(2, Q), global_set(0, Q),\n"
        "    process_call(1, svc),\n"
        "    vector_get(Q, 0, Y).",
        "go(X, Y, L)");
    ASSERT_TRUE(r.succeeded());
    EXPECT_EQ(r.solutions[0].bindings.at("X")->str(), "f(1,g(2))");
    EXPECT_EQ(r.solutions[0].bindings.at("Y")->value(), 9);
    EXPECT_EQ(r.solutions[0].bindings.at("L")->str(), "[a,b,c]");
}

TEST(ProcessCall, BacktrackingAcrossProcessCall)
{
    // The caller can still backtrack across a process_call site.
    auto r = run("pick(1). pick(2).\n"
                 "svc.\n"
                 "go(A, B) :- pick(A), process_call(1, svc), pick(B).",
                 "go(A, B)", 10);
    EXPECT_EQ(r.solutions.size(), 4u);
}

TEST(ProcessCall, ServiceUsesOwnStackAreas)
{
    Engine eng;
    eng.consult("svc :- mklist(60, L), len(L, N), N =:= 60.\n"
                "mklist(0, []).\n"
                "mklist(N, [N|T]) :- N > 0, N1 is N - 1, mklist(N1, T).\n"
                "len([], 0).\n"
                "len([_|T], N) :- len(T, N0), N is N0 + 1.");
    auto r = eng.solve("process_call(3, svc)");
    ASSERT_TRUE(r.succeeded());
    // Process 3's global stack lives in its own window: pages beyond
    // the 1 << 24 word boundary of the Global area must be mapped.
    EXPECT_GT(eng.mem().cache().stats().areaAccesses(Area::Global),
              0u);
}

TEST(ProcessCall, RejectsBadArguments)
{
    EXPECT_FALSE(run("svc.", "process_call(0, svc)").succeeded());
    EXPECT_FALSE(run("svc.", "process_call(64, svc)").succeeded());
    EXPECT_FALSE(run("svc.", "process_call(1, f(x))").succeeded());
    EXPECT_FALSE(run("svc.", "process_call(1, no_such)").succeeded());
}

TEST(ProcessCall, NestingRefused)
{
    auto r = run("inner :- global_set(1, bad).\n"
                 "outer :- process_call(2, inner).",
                 "process_call(1, outer)");
    EXPECT_FALSE(r.succeeded());
}

TEST(ProcessCall, BaselineRunsInline)
{
    baseline::WamEngine eng;
    eng.consult("svc :- global_set(1, done).\n"
                "go(V) :- process_call(1, svc), global_get(1, V).");
    auto r = eng.solve("go(V)");
    ASSERT_TRUE(r.succeeded());
    EXPECT_EQ(r.solutions[0].bindings.at("V")->name(), "done");
}

TEST(ProcessCall, EnginesAgreeOnWindowWorkloads)
{
    for (const char *id : {"window2", "window3"}) {
        const auto &p = programs::programById(id);
        Engine a;
        a.consult(p.source);
        baseline::WamEngine b;
        b.consult(p.source);
        auto ra = a.solve(p.query);
        auto rb = b.solve(p.query);
        EXPECT_EQ(ra.succeeded(), rb.succeeded()) << id;
        EXPECT_EQ(ra.output, rb.output) << id;
    }
}
