#include <gtest/gtest.h>

#include "mem/cache.hpp"

using namespace psi;

namespace {

CacheConfig
smallCache(std::uint32_t words, std::uint32_t ways = 2)
{
    CacheConfig c = CacheConfig::psi();
    c.capacityWords = words;
    c.ways = ways;
    return c;
}

} // namespace

TEST(Cache, FirstReadMissesSecondHits)
{
    Cache c(CacheConfig::psi());
    std::uint64_t t0 = c.access(CacheCmd::Read, Area::Heap, 100);
    EXPECT_GT(t0, 0u);  // miss pays the block read-in
    std::uint64_t t1 = c.access(CacheCmd::Read, Area::Heap, 100);
    EXPECT_EQ(t1, 0u);  // hit is free beyond the step
    EXPECT_EQ(c.stats().totalHits(), 1u);
    EXPECT_EQ(c.stats().totalAccesses(), 2u);
}

TEST(Cache, BlockGranularity)
{
    Cache c(CacheConfig::psi());
    c.access(CacheCmd::Read, Area::Heap, 8);   // block 2: words 8-11
    EXPECT_EQ(c.access(CacheCmd::Read, Area::Heap, 11), 0u);
    EXPECT_GT(c.access(CacheCmd::Read, Area::Heap, 12), 0u);
}

TEST(Cache, WriteAllocatesWithReadIn)
{
    Cache c(CacheConfig::psi());
    std::uint64_t t = c.access(CacheCmd::Write, Area::Global, 40);
    EXPECT_EQ(t, CacheConfig::psi().missReadNs);
    EXPECT_EQ(c.stats().readIns, 1u);
    // Subsequent read hits.
    EXPECT_EQ(c.access(CacheCmd::Read, Area::Global, 40), 0u);
}

TEST(Cache, WriteStackSkipsReadIn)
{
    Cache c(CacheConfig::psi());
    std::uint64_t t = c.access(CacheCmd::WriteStack, Area::Local, 40);
    EXPECT_EQ(t, 0u);  // allocation without block transfer
    EXPECT_EQ(c.stats().readIns, 0u);
    EXPECT_EQ(c.stats().stackAllocs, 1u);
    // The allocated line is resident.
    EXPECT_EQ(c.access(CacheCmd::Read, Area::Local, 41), 0u);
}

TEST(Cache, DirtyEvictionPaysWriteBack)
{
    // 8-word, 1-way cache: 2 sets of one 4-word block.
    Cache c(smallCache(8, 1));
    c.access(CacheCmd::WriteStack, Area::Local, 0);   // set 0, dirty
    std::uint64_t t = c.access(CacheCmd::Read, Area::Local, 8);
    // Evicts the dirty block: write-back plus read-in.
    EXPECT_EQ(t, CacheConfig::psi().writeBackNs +
                     CacheConfig::psi().missReadNs);
    EXPECT_EQ(c.stats().writeBacks, 1u);
}

TEST(Cache, CleanEvictionFree)
{
    Cache c(smallCache(8, 1));
    c.access(CacheCmd::Read, Area::Heap, 0);
    std::uint64_t t = c.access(CacheCmd::Read, Area::Heap, 8);
    EXPECT_EQ(t, CacheConfig::psi().missReadNs);
    EXPECT_EQ(c.stats().writeBacks, 0u);
}

TEST(Cache, LruVictimSelection)
{
    // One set, two ways (8 words, 2 ways, 4-word blocks).
    Cache c(smallCache(8, 2));
    c.access(CacheCmd::Read, Area::Heap, 0);    // block A
    c.access(CacheCmd::Read, Area::Heap, 8);    // block B
    c.access(CacheCmd::Read, Area::Heap, 0);    // touch A (B is LRU)
    c.access(CacheCmd::Read, Area::Heap, 16);   // evicts B
    EXPECT_EQ(c.access(CacheCmd::Read, Area::Heap, 0), 0u);   // A hit
    EXPECT_GT(c.access(CacheCmd::Read, Area::Heap, 8), 0u);   // B gone
}

TEST(Cache, TwoWaysAvoidConflict)
{
    // Addresses 0 and 8192 map to the same set of the PSI cache.
    Cache two(CacheConfig::psi());
    two.access(CacheCmd::Read, Area::Heap, 0);
    two.access(CacheCmd::Read, Area::Heap, 4096 * 2);
    EXPECT_EQ(two.access(CacheCmd::Read, Area::Heap, 0), 0u);

    CacheConfig direct = CacheConfig::psi();
    direct.ways = 1;
    Cache one(direct);
    one.access(CacheCmd::Read, Area::Heap, 0);
    one.access(CacheCmd::Read, Area::Heap, 8192);
    EXPECT_GT(one.access(CacheCmd::Read, Area::Heap, 0), 0u);
}

TEST(Cache, StoreThroughWritesCostAndDontAllocate)
{
    CacheConfig cfg = CacheConfig::psi();
    cfg.storeIn = false;
    Cache c(cfg);
    std::uint64_t t = c.access(CacheCmd::Write, Area::Global, 0);
    EXPECT_EQ(t, cfg.throughWriteNs);
    EXPECT_EQ(c.stats().throughWrites, 1u);
    // Write miss did not allocate: the read still misses.
    EXPECT_GT(c.access(CacheCmd::Read, Area::Global, 0), 0u);
}

TEST(Cache, StoreThroughNeverWritesBack)
{
    CacheConfig cfg = smallCache(8, 1);
    cfg.storeIn = false;
    Cache c(cfg);
    for (std::uint32_t a = 0; a < 64; a += 4) {
        c.access(CacheCmd::Read, Area::Heap, a);
        c.access(CacheCmd::Write, Area::Heap, a);
    }
    EXPECT_EQ(c.stats().writeBacks, 0u);
}

TEST(Cache, DisabledCacheChargesEveryAccess)
{
    CacheConfig cfg = CacheConfig::psi();
    cfg.enabled = false;
    Cache c(cfg);
    EXPECT_EQ(c.access(CacheCmd::Read, Area::Heap, 0), cfg.noCacheNs);
    EXPECT_EQ(c.access(CacheCmd::Read, Area::Heap, 0), cfg.noCacheNs);
}

TEST(Cache, PerAreaStats)
{
    Cache c(CacheConfig::psi());
    c.access(CacheCmd::Read, Area::Heap, 0);
    c.access(CacheCmd::Read, Area::Heap, 0);
    c.access(CacheCmd::WriteStack, Area::Trail, 0);
    EXPECT_EQ(c.stats().areaAccesses(Area::Heap), 2u);
    EXPECT_EQ(c.stats().areaAccesses(Area::Trail), 1u);
    EXPECT_EQ(c.stats().areaAccesses(Area::Local), 0u);
    EXPECT_DOUBLE_EQ(c.stats().areaHitPct(Area::Heap), 50.0);
    EXPECT_DOUBLE_EQ(c.stats().areaHitPct(Area::Local), 100.0);
}

TEST(Cache, CmdAccessCounts)
{
    Cache c(CacheConfig::psi());
    c.access(CacheCmd::Read, Area::Heap, 0);
    c.access(CacheCmd::Write, Area::Heap, 0);
    c.access(CacheCmd::WriteStack, Area::Heap, 4);
    EXPECT_EQ(c.stats().cmdAccesses(CacheCmd::Read), 1u);
    EXPECT_EQ(c.stats().cmdAccesses(CacheCmd::Write), 1u);
    EXPECT_EQ(c.stats().cmdAccesses(CacheCmd::WriteStack), 1u);
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(CacheConfig::psi());
    c.access(CacheCmd::Read, Area::Heap, 0);
    c.reset();
    EXPECT_EQ(c.stats().totalAccesses(), 0u);
    EXPECT_GT(c.access(CacheCmd::Read, Area::Heap, 0), 0u);
}

TEST(Cache, GeometryNumSets)
{
    EXPECT_EQ(CacheConfig::psi().numIndexSets(), 1024u);
    EXPECT_EQ(smallCache(8, 2).numIndexSets(), 1u);
    EXPECT_EQ(smallCache(4096, 1).numIndexSets(), 1024u);
}

/** Property: hit ratio is non-decreasing with capacity on a looping
 *  access pattern. */
class CacheCapacitySweep
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheCapacitySweep, HitRatioImprovesWithCapacity)
{
    auto run = [](std::uint32_t cap) {
        Cache c(smallCache(cap));
        // Cyclic sweep over 1024 words, three rounds.
        for (int round = 0; round < 3; ++round) {
            for (std::uint32_t a = 0; a < 1024; ++a)
                c.access(CacheCmd::Read, Area::Heap, a);
        }
        return c.stats().totalHitPct();
    };
    std::uint32_t cap = GetParam();
    EXPECT_LE(run(cap / 2), run(cap) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacitySweep,
                         ::testing::Values(16u, 32u, 64u, 128u, 256u,
                                           512u, 1024u, 2048u, 4096u,
                                           8192u));
