#include <gtest/gtest.h>

#include "mem/memory_system.hpp"

using namespace psi;

TEST(MemorySystem, WriteThenRead)
{
    MemorySystem m;
    m.write({Area::Global, 10}, {Tag::Int, 5});
    EXPECT_EQ(m.read({Area::Global, 10}).data, 5u);
}

TEST(MemorySystem, PeekPokeBypassCacheStats)
{
    MemorySystem m;
    m.poke({Area::Heap, 3}, {Tag::Atom, 1});
    EXPECT_EQ(m.peek({Area::Heap, 3}).tag, Tag::Atom);
    EXPECT_EQ(m.cache().stats().totalAccesses(), 0u);
    EXPECT_EQ(m.stallNs(), 0u);
}

TEST(MemorySystem, StallAccumulates)
{
    MemorySystem m;
    m.read({Area::Heap, 0});       // miss
    std::uint64_t s1 = m.stallNs();
    EXPECT_GT(s1, 0u);
    m.read({Area::Heap, 0});       // hit
    EXPECT_EQ(m.stallNs(), s1);
}

TEST(MemorySystem, WriteStackUpdatesMemory)
{
    MemorySystem m;
    m.writeStack({Area::Control, 7}, {Tag::Int, 9});
    EXPECT_EQ(m.peek({Area::Control, 7}).data, 9u);
    EXPECT_EQ(m.cache().stats().stackAllocs, 1u);
}

TEST(MemorySystem, TraceSinkRecordsAccesses)
{
    MemorySystem m;
    std::vector<MemEvent> trace;
    m.setTraceSink(&trace);
    m.read({Area::Heap, 0});
    m.write({Area::Local, 4}, {Tag::Int, 1});
    m.setTraceSink(nullptr);
    m.read({Area::Heap, 8});
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].cmd, CacheCmd::Read);
    EXPECT_EQ(trace[0].area, Area::Heap);
    EXPECT_EQ(trace[1].cmd, CacheCmd::Write);
    EXPECT_EQ(trace[1].area, Area::Local);
}

TEST(MemorySystem, ResetStatsKeepsContents)
{
    MemorySystem m;
    m.write({Area::Global, 1}, {Tag::Int, 42});
    m.resetStats();
    EXPECT_EQ(m.stallNs(), 0u);
    EXPECT_EQ(m.cache().stats().totalAccesses(), 0u);
    EXPECT_EQ(m.peek({Area::Global, 1}).data, 42u);
}
