#include <gtest/gtest.h>

#include "base/logging.hpp"
#include "kl0/program.hpp"
#include "kl0/reader.hpp"

using namespace psi::kl0;
using psi::FatalError;

TEST(Program, ConsultGroupsByPredicate)
{
    Program p;
    p.consult("f(1). g(x). f(2).");
    ASSERT_EQ(p.predicates().size(), 2u);
    EXPECT_EQ(p.predicates()[0].str(), "f/1");
    EXPECT_EQ(p.predicates()[1].str(), "g/1");
    EXPECT_EQ(p.clauses({"f", 1}).size(), 2u);
}

TEST(Program, RulesSplitHeadAndBody)
{
    Program p;
    p.consult("h(X) :- a(X), b(X), c.");
    const auto &cl = p.clauses({"h", 1})[0];
    EXPECT_EQ(cl.head->str(), "h(X)");
    ASSERT_EQ(cl.body.size(), 3u);
    EXPECT_EQ(cl.body[0]->str(), "a(X)");
    EXPECT_EQ(cl.body[2]->str(), "c");
}

TEST(Program, FactsHaveEmptyBody)
{
    Program p;
    p.consult("fact(1).");
    EXPECT_TRUE(p.clauses({"fact", 1})[0].body.empty());
}

TEST(Program, FlattenConjunctionOrder)
{
    auto t = parseTerm("(a, (b, c), d)");
    auto goals = Program::flattenConjunction(t);
    ASSERT_EQ(goals.size(), 4u);
    EXPECT_EQ(goals[0]->str(), "a");
    EXPECT_EQ(goals[1]->str(), "b");
    EXPECT_EQ(goals[3]->str(), "d");
}

TEST(Program, DirectivesRecorded)
{
    Program p;
    p.consult(":- some_directive. f(1).");
    ASSERT_EQ(p.directives().size(), 1u);
    EXPECT_EQ(p.directives()[0]->str(), "some_directive");
    EXPECT_TRUE(p.defined({"f", 1}));
}

TEST(Program, ClauseCount)
{
    Program p;
    p.consult("a. a. b. c(1) :- a.");
    EXPECT_EQ(p.clauseCount(), 4u);
}

TEST(Program, InvalidHeadThrows)
{
    Program p;
    EXPECT_THROW(p.consult("123."), FatalError);
}

TEST(Program, DefinedLookup)
{
    Program p;
    p.consult("foo(a, b).");
    EXPECT_TRUE(p.defined({"foo", 2}));
    EXPECT_FALSE(p.defined({"foo", 1}));
    EXPECT_FALSE(p.defined({"bar", 2}));
}
