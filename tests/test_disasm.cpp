/**
 * @file
 * Disassembler and trace-persistence tests.
 */

#include <cstdio>
#include <gtest/gtest.h>

#include "psi.hpp"
#include "tools/disasm.hpp"

using namespace psi;

TEST(PsiDisasm, ListsClausesWithComments)
{
    interp::Engine eng;
    eng.consult("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).");
    tools::PsiDisasm dis(eng);
    std::string s = dis.predicate("app", 3);
    EXPECT_NE(s.find("% app/3"), std::string::npos);
    EXPECT_NE(s.find("% clause 0"), std::string::npos);
    EXPECT_NE(s.find("% clause 1"), std::string::npos);
    EXPECT_NE(s.find("clause_header"), std::string::npos);
    EXPECT_NE(s.find("h_nil"), std::string::npos);
    EXPECT_NE(s.find("h_list"), std::string::npos);
    EXPECT_NE(s.find("call_last"), std::string::npos);
    EXPECT_NE(s.find("app/3"), std::string::npos);
    EXPECT_NE(s.find("proceed"), std::string::npos);
}

TEST(PsiDisasm, ShowsBuiltinsAndPackedArgs)
{
    interp::Engine eng;
    eng.consult("p(X, Y) :- Y is X + 1, q(X, Y). q(_, _).");
    tools::PsiDisasm dis(eng);
    std::string s = dis.predicate("p", 2);
    EXPECT_NE(s.find("builtin is"), std::string::npos);
    EXPECT_NE(s.find("a_expr"), std::string::npos);
    EXPECT_NE(s.find("packed"), std::string::npos);
}

TEST(PsiDisasm, UndefinedPredicateEmpty)
{
    interp::Engine eng;
    eng.consult("a.");
    tools::PsiDisasm dis(eng);
    EXPECT_TRUE(dis.predicate("nothing", 2).empty());
}

TEST(PsiDisasm, GroundTermsAnnotated)
{
    interp::Engine eng;
    eng.consult("conf(point(1, 2)).");
    tools::PsiDisasm dis(eng);
    std::string s = dis.predicate("conf", 1);
    EXPECT_NE(s.find("h_ground_struct"), std::string::npos);
    EXPECT_NE(s.find("ground term @"), std::string::npos);
}

TEST(WamListing, ShowsCompiledInstructions)
{
    baseline::WamEngine eng;
    eng.consult("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).");
    std::string s = tools::wamListing(eng, "app", 3);
    EXPECT_NE(s.find("% app/3, 2 clause(s)"), std::string::npos);
    EXPECT_NE(s.find("get_nil"), std::string::npos);
    EXPECT_NE(s.find("get_list"), std::string::npos);
    EXPECT_NE(s.find("unify_variable_x"), std::string::npos);
    EXPECT_NE(s.find("execute"), std::string::npos);
}

TEST(WamListing, UndefinedEmpty)
{
    baseline::WamEngine eng;
    eng.consult("a.");
    EXPECT_TRUE(tools::wamListing(eng, "zz", 1).empty());
}

TEST(TracePersistence, RoundTripsBothStreams)
{
    const auto &p = programs::programById("qsort50");
    interp::Engine eng;
    eng.consult(p.source);
    tools::Collector col;
    auto r = tools::collectRun(eng, col, p.query);
    ASSERT_TRUE(r.succeeded());

    std::string path = "/tmp/psi_trace_test.bin";
    ASSERT_TRUE(col.saveTo(path));

    tools::Collector loaded;
    ASSERT_TRUE(loaded.loadFrom(path));
    ASSERT_EQ(loaded.steps().size(), col.steps().size());
    ASSERT_EQ(loaded.memAccesses().size(), col.memAccesses().size());

    // Replaying the loaded memory trace reproduces the cache stats.
    tools::Pmms a(col.memAccesses(), r.steps);
    tools::Pmms b(loaded.memAccesses(), r.steps);
    auto ra = a.replay(CacheConfig::psi());
    auto rb = b.replay(CacheConfig::psi());
    EXPECT_EQ(ra.stats.totalHits(), rb.stats.totalHits());
    EXPECT_EQ(ra.timeNs, rb.timeNs);

    // And the MAP tallies agree too.
    tools::Map ma(col.steps());
    tools::Map mb(loaded.steps());
    EXPECT_EQ(ma.totalSteps(), mb.totalSteps());
    EXPECT_EQ(ma.moduleSteps(micro::Module::Unify),
              mb.moduleSteps(micro::Module::Unify));
    std::remove(path.c_str());
}

TEST(TracePersistence, RejectsGarbage)
{
    std::string path = "/tmp/psi_trace_garbage.bin";
    {
        FILE *f = fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        fputs("not a trace file", f);
        fclose(f);
    }
    tools::Collector col;
    EXPECT_FALSE(col.loadFrom(path));
    EXPECT_FALSE(col.loadFrom("/no/such/path"));
    std::remove(path.c_str());
}
