/**
 * @file
 * psitrace + protocol-v2 tests: span recording, cross-thread request
 * stitching, the HELLO version handshake, and the TRACE/METRICS
 * observability round-trips.
 *
 *  - disabled tracing records nothing (the acceptance gate for the
 *    "off by default, near-zero cost" contract)
 *  - EnginePool workers record queue/compile-or-cache-hit/setup/solve
 *    spans under the job's trace tag, and a whole pipelined loopback
 *    run stitches per-request timelines across the server's poll
 *    thread and worker threads
 *  - HELLO negotiation: feature intersection on success, structured
 *    ERROR + connection close on an unsupported major, and fuzzed
 *    version bytes never wedge the server (fresh connections still
 *    served afterwards)
 *  - METRICS returns the Prometheus families EXPERIMENTS.md and CI
 *    grep for
 *
 * Trace state is process-global, so every test here runs under a
 * guard that resets the span buffers and restores the disabled
 * default; servers/pools are declared after the guard so they
 * quiesce before the destructor's reset().
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fuzz_util.hpp"
#include "psi.hpp"

namespace {

using namespace psi;
using net::ErrorMsg;
using net::HelloAckMsg;
using net::HelloMsg;
using net::Message;
using net::WireStatus;
using psi::tests::FrameMutator;

/** Reset spans on entry; restore the disabled default on exit. */
struct TraceGuard
{
    TraceGuard() { trace::reset(); }
    ~TraceGuard()
    {
        trace::setEnabled(false);
        trace::reset();
    }
};

/** A PsiServer running its event loop on a background thread. */
struct ServerHarness
{
    net::PsiServer server;
    std::thread loop;

    explicit ServerHarness(const net::PsiServer::Config &config)
        : server(config)
    {
        std::string error;
        if (!server.start(&error))
            throw std::runtime_error("server start: " + error);
        loop = std::thread([this] { server.run(); });
    }

    ~ServerHarness() { drain(); }

    /** Drain and join now (makes the trace buffers quiescent). */
    void
    drain()
    {
        server.requestDrain();
        if (loop.joinable())
            loop.join();
    }

    std::uint16_t port() const { return server.port(); }
};

net::PsiServer::Config
serverConfig(unsigned workers, std::size_t capacity)
{
    net::PsiServer::Config config;
    config.port = 0; // ephemeral
    config.workers = workers;
    config.queueCapacity = capacity;
    config.submitMode = service::Submit::FailFast;
    return config;
}

/** Spans of one tag, keyed by stage, for stitching assertions. */
std::map<trace::Stage, std::vector<trace::Span>>
spansByStage(const std::vector<trace::Span> &spans,
             std::uint64_t tag)
{
    std::map<trace::Stage, std::vector<trace::Span>> out;
    for (const trace::Span &s : spans)
        if (s.tag == tag)
            out[s.stage].push_back(s);
    return out;
}

// ---------------------------------------------------------------------
// Core recording
// ---------------------------------------------------------------------

TEST(TraceCore, DisabledRecordsNothing)
{
    TraceGuard guard;
    ASSERT_FALSE(trace::enabled());

    // A direct record() and a fully traced pool job: both no-ops.
    trace::record(trace::Stage::Solve, trace::nextTag(), 10, 20);
    {
        service::EnginePool::Config config;
        config.workers = 1;
        config.queueCapacity = 2;
        service::EnginePool pool(config);
        service::QueryJob job{programs::programById("nreverse30"),
                              CacheConfig::psi(),
                              interp::RunLimits()};
        job.traceTag = trace::nextTag();
        auto fut = pool.submit(std::move(job));
        ASSERT_TRUE(fut.has_value());
        service::JobOutcome out = fut->get();
        EXPECT_TRUE(out.ok()) << out.error;
    }

    EXPECT_TRUE(trace::collect().empty());
    EXPECT_EQ(trace::droppedSpans(), 0u);
}

TEST(TraceCore, PoolStagesStitchUnderOneTag)
{
    TraceGuard guard;
    trace::setEnabled(true);

    std::uint64_t firstTag = 0, secondTag = 0;
    {
        service::EnginePool::Config config;
        config.workers = 1;
        config.queueCapacity = 2;
        service::EnginePool pool(config);

        // Same workload twice: the first request compiles into the
        // program cache, the second must be served from it.
        for (std::uint64_t *tag : {&firstTag, &secondTag}) {
            service::QueryJob job{
                programs::programById("nreverse30"),
                CacheConfig::psi(), interp::RunLimits()};
            *tag = trace::nextTag();
            job.traceTag = *tag;
            service::JobOutcome out =
                pool.submit(std::move(job))->get();
            ASSERT_TRUE(out.ok()) << out.error;
            EXPECT_EQ(out.traceTag, *tag);
        }
    } // pool joined: recorders quiescent

    std::vector<trace::Span> spans = trace::collect();

    auto first = spansByStage(spans, firstTag);
    for (trace::Stage want :
         {trace::Stage::Queue, trace::Stage::Compile,
          trace::Stage::Setup, trace::Stage::Solve}) {
        EXPECT_EQ(first[want].size(), 1u)
            << "stage " << trace::stageName(want);
    }
    EXPECT_TRUE(first[trace::Stage::CacheHit].empty());

    auto second = spansByStage(spans, secondTag);
    EXPECT_EQ(second[trace::Stage::CacheHit].size(), 1u);
    EXPECT_TRUE(second[trace::Stage::Compile].empty());
    ASSERT_EQ(second[trace::Stage::Queue].size(), 1u);
    ASSERT_EQ(second[trace::Stage::Setup].size(), 1u);
    ASSERT_EQ(second[trace::Stage::Solve].size(), 1u);

    // One timeline: queue wait precedes setup precedes solve.
    const trace::Span &queue = second[trace::Stage::Queue][0];
    const trace::Span &setup = second[trace::Stage::Setup][0];
    const trace::Span &solve = second[trace::Stage::Solve][0];
    EXPECT_LE(queue.startNs, setup.startNs);
    EXPECT_LE(setup.startNs, solve.startNs);
    EXPECT_LE(setup.startNs + setup.durNs, solve.startNs + solve.durNs);
}

TEST(TraceCore, ChromeJsonCarriesStageNamesAndTags)
{
    TraceGuard guard;
    trace::setEnabled(true);

    trace::record(trace::Stage::Solve, 77, 1000, 251'000);
    trace::record(trace::Stage::Queue, 78, 2000, 3500);
    std::string json = trace::chromeJson(trace::collect());

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"solve\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"queue\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"tag\": 77"), std::string::npos);
    // ns -> us with three fractional digits: 1000 ns = 1.000 us,
    // duration 250000 ns = 250.000 us.
    EXPECT_NE(json.find("\"ts\": 1.000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 250.000"), std::string::npos);
}

// ---------------------------------------------------------------------
// HELLO negotiation
// ---------------------------------------------------------------------

TEST(Hello, NegotiatesVersionAndFeatureIntersection)
{
    ServerHarness harness(serverConfig(1, 4));
    std::string error;

    net::PsiClient all;
    ASSERT_TRUE(all.connect("127.0.0.1", harness.port(), &error))
        << error;
    auto ack = all.hello(net::kSupportedFeatures, -1, &error);
    ASSERT_TRUE(ack.has_value()) << error;
    EXPECT_EQ(ack->versionMajor, net::kProtocolMajor);
    EXPECT_EQ(ack->features, net::kSupportedFeatures);

    // A client offering a subset gets exactly that subset back.
    net::PsiClient subset;
    ASSERT_TRUE(subset.connect("127.0.0.1", harness.port(), &error))
        << error;
    ack = subset.hello(net::kFeatureTrace, -1, &error);
    ASSERT_TRUE(ack.has_value()) << error;
    EXPECT_EQ(ack->features, net::kFeatureTrace);

    // The negotiated connection still serves work.
    auto result =
        all.submit(net::Request{"nreverse30"}, nullptr, &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_EQ(result->status, WireStatus::Ok);
}

/** Raw loopback socket with a receive timeout, for hostile HELLOs. */
struct RawConn
{
    int fd = -1;

    explicit RawConn(std::uint16_t port, timeval tv = {5, 0})
    {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::connect(fd,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
    }

    ~RawConn()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool
    sendAll(const std::string &bytes)
    {
        std::size_t off = 0;
        while (off < bytes.size()) {
            ssize_t n = ::send(fd, bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    /**
     * Read until one frame decodes, EOF, or the receive timeout.
     * @return the decoded message, or nullopt on EOF/timeout/garbage
     *         with @p eof telling the two apart.
     */
    std::optional<Message>
    readMessage(bool *eof)
    {
        *eof = false;
        std::string buffer, payload;
        char chunk[4096];
        for (;;) {
            net::FrameResult r =
                net::extractFrame(buffer, payload);
            if (r == net::FrameResult::Frame)
                return net::decode(payload);
            if (r == net::FrameResult::Bad)
                return std::nullopt;
            ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n == 0)
                *eof = true;
            if (n <= 0)
                return std::nullopt;
            buffer.append(chunk, static_cast<std::size_t>(n));
        }
    }
};

TEST(Hello, UnsupportedMajorGetsStructuredErrorAndClose)
{
    ServerHarness harness(serverConfig(1, 4));

    RawConn conn(harness.port());
    HelloMsg bad;
    bad.versionMajor = 99;
    ASSERT_TRUE(conn.sendAll(net::encode(Message(bad))));

    bool eof = false;
    auto reply = conn.readMessage(&eof);
    ASSERT_TRUE(reply.has_value()) << "no ERROR before close";
    ASSERT_TRUE(std::holds_alternative<ErrorMsg>(*reply));
    const auto &err = std::get<ErrorMsg>(*reply);
    EXPECT_EQ(err.code, net::kErrUnsupportedVersion);
    EXPECT_NE(err.message.find("unsupported protocol major 99"),
              std::string::npos)
        << err.message;

    // The connection is closed after the refusal.
    reply = conn.readMessage(&eof);
    EXPECT_FALSE(reply.has_value());
    EXPECT_TRUE(eof) << "server kept a refused connection open";

    // The reject is counted and the server still serves others.
    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", harness.port(), &error))
        << error;
    ASSERT_TRUE(client.hello(net::kSupportedFeatures, -1, &error))
        << error;
    auto snap = harness.server.metrics();
    EXPECT_EQ(snap.netVersionRejects, 1u);
}

TEST(Hello, FuzzedVersionBytesNeverWedgeTheServer)
{
    ServerHarness harness(serverConfig(1, 8));

    // A corpus of HELLOs whose version/feature words the mutator
    // scrambles: whatever arrives, the server must answer (ack or
    // error) or drop - and keep serving fresh connections.
    std::vector<std::string> corpus;
    corpus.push_back(net::encode(Message(HelloMsg{})));
    HelloMsg v1;
    v1.versionMajor = 1;
    v1.versionMinor = 7;
    v1.features = 0;
    corpus.push_back(net::encode(Message(v1)));
    HelloMsg future;
    future.versionMajor = 0xffffffffu;
    future.versionMinor = 0xffffffffu;
    future.features = 0xffffffffffffffffull;
    corpus.push_back(net::encode(Message(future)));

    FrameMutator mutator(20260805, corpus);
    for (int i = 0; i < 60; ++i) {
        SCOPED_TRACE(i);
        // Short read timeout: a length-lying mutant leaves the
        // server legitimately waiting for more bytes, and waiting
        // out the full timeout on each would dominate the test.
        RawConn conn(harness.port(), {0, 200'000});
        ASSERT_TRUE(conn.sendAll(mutator.mutate()));
        // Nudge the framer with a trailing valid HELLO so a
        // truncated mutant is not just an eternal NeedMore.
        conn.sendAll(net::encode(Message(HelloMsg{})));
        bool eof = false;
        conn.readMessage(&eof); // ack, error, or clean close - all fine
    }

    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", harness.port(), &error))
        << error;
    ASSERT_TRUE(client.hello(net::kSupportedFeatures, -1, &error))
        << error;
    auto result =
        client.submit(net::Request{"nreverse30"}, nullptr, &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_EQ(result->status, WireStatus::Ok);
}

// ---------------------------------------------------------------------
// Loopback observability: TRACE / METRICS round-trips, stitching
// ---------------------------------------------------------------------

TEST(Observability, TraceReplyStitchesPipelinedConnections)
{
    TraceGuard guard;
    trace::setEnabled(true);

    std::vector<std::uint64_t> traceTags;
    std::string traceJson;
    {
        ServerHarness harness(serverConfig(2, 16));
        std::string error;

        // Two connections, four pipelined requests each: the spans
        // must stitch per request across the poll thread and both
        // workers, not per connection.
        net::PsiClient a, b;
        ASSERT_TRUE(a.connect("127.0.0.1", harness.port(), &error))
            << error;
        ASSERT_TRUE(b.connect("127.0.0.1", harness.port(), &error))
            << error;
        constexpr int kPerConn = 4;
        for (int i = 0; i < kPerConn; ++i) {
            ASSERT_TRUE(
                a.sendSubmit("nreverse30", 0, nullptr, &error))
                << error;
            ASSERT_TRUE(
                b.sendSubmit("qsort50", 0, nullptr, &error))
                << error;
        }
        for (net::PsiClient *client : {&a, &b}) {
            for (int i = 0; i < kPerConn; ++i) {
                auto result = client->recvResult(20'000, &error);
                ASSERT_TRUE(result.has_value()) << error;
                ASSERT_EQ(result->status, WireStatus::Ok);
                EXPECT_NE(result->traceTag, 0u)
                    << "tracing on but RESULT carries no tag";
                traceTags.push_back(result->traceTag);
            }
        }

        // The TRACE message serves the same spans over the wire.
        auto json = a.traceJson(-1, &error);
        ASSERT_TRUE(json.has_value()) << error;
        traceJson = *json;

        harness.drain(); // quiesce before collect()
    }

    // Each request's tag is unique and owns a complete timeline:
    // decode -> queue -> setup -> solve -> encode -> reply, plus a
    // second decode recorded by the client for its RESULT.
    std::set<std::uint64_t> unique(traceTags.begin(),
                                   traceTags.end());
    EXPECT_EQ(unique.size(), traceTags.size());

    std::vector<trace::Span> spans = trace::collect();
    for (std::uint64_t tag : traceTags) {
        SCOPED_TRACE(tag);
        auto stages = spansByStage(spans, tag);
        for (trace::Stage want :
             {trace::Stage::Queue, trace::Stage::Setup,
              trace::Stage::Solve, trace::Stage::Encode,
              trace::Stage::Reply}) {
            EXPECT_EQ(stages[want].size(), 1u)
                << "stage " << trace::stageName(want);
        }
        // Server SUBMIT decode + client RESULT decode.
        EXPECT_EQ(stages[trace::Stage::Decode].size(), 2u);
        // Exactly one of compile / cache-hit, never both.
        EXPECT_EQ(stages[trace::Stage::Compile].size() +
                      stages[trace::Stage::CacheHit].size(),
                  1u);
        // The earlier decode is the server's; it precedes the queue.
        EXPECT_LE(std::min(stages[trace::Stage::Decode][0].startNs,
                           stages[trace::Stage::Decode][1].startNs),
                  stages[trace::Stage::Queue][0].startNs);
    }

    // The wire dump is the same data: every stage name appears.
    for (const char *name :
         {"decode", "queue", "setup", "solve", "encode", "reply"})
        EXPECT_NE(traceJson.find(std::string("\"name\": \"") + name),
                  std::string::npos)
            << name;
}

TEST(Observability, MetricsReplyCarriesPrometheusFamilies)
{
    ServerHarness harness(serverConfig(1, 4));
    net::PsiClient client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", harness.port(), &error))
        << error;
    for (int i = 0; i < 2; ++i) {
        auto result =
            client.submit(net::Request{"nreverse30"}, nullptr,
                          &error);
        ASSERT_TRUE(result.has_value()) << error;
        ASSERT_EQ(result->status, WireStatus::Ok);
    }

    auto text = client.metricsText(-1, &error);
    ASSERT_TRUE(text.has_value()) << error;

    for (const char *family :
         {"# TYPE psi_jobs_completed_total counter",
          "psi_jobs_completed_total 2",
          "psi_request_stage_seconds{stage=\"queue\",quantile=\"0.5\"}",
          "psi_request_stage_seconds{stage=\"solve\",quantile=\"0.99\"}",
          "psi_firmware_module_steps_total{module=",
          "psi_cache_command_steps_total{cmd=",
          "psi_cache_accesses_total{area=",
          "psi_cache_hits_total{area=",
          "psi_program_cache_hits_total 1",
          "psi_program_cache_misses_total 1",
          "psi_net_conns_accepted_total"})
        EXPECT_NE(text->find(family), std::string::npos) << family;
}

TEST(Observability, TracingDisabledYieldsNoSpansOverLoopback)
{
    TraceGuard guard;
    ASSERT_FALSE(trace::enabled());
    {
        ServerHarness harness(serverConfig(1, 4));
        net::PsiClient client;
        std::string error;
        ASSERT_TRUE(
            client.connect("127.0.0.1", harness.port(), &error))
            << error;
        auto result = client.submit(net::Request{"nreverse30"},
                                    nullptr, &error);
        ASSERT_TRUE(result.has_value()) << error;
        EXPECT_EQ(result->status, WireStatus::Ok);
        EXPECT_EQ(result->traceTag, 0u)
            << "RESULT carries a tag with tracing off";

        // The TRACE surface stays available; it just has no spans.
        auto json = client.traceJson(-1, &error);
        ASSERT_TRUE(json.has_value()) << error;
        EXPECT_EQ(json->find("\"ph\": \"X\""), std::string::npos);
    }
    EXPECT_TRUE(trace::collect().empty());
}

} // namespace
