/**
 * @file
 * Control behaviour of the PSI interpreter: backtracking, cut,
 * negation, disjunction, recursion depth, tail-call behaviour, and
 * run limits.
 */

#include <gtest/gtest.h>

#include "interp/engine.hpp"

using namespace psi;
using namespace psi::interp;

namespace {

std::vector<std::string>
solutions(const std::string &program, const std::string &query,
          int max = 100)
{
    Engine eng;
    eng.consult(program);
    RunLimits lim;
    lim.maxSolutions = max;
    auto r = eng.solve(query, lim);
    std::vector<std::string> out;
    for (const auto &s : r.solutions) {
        std::string line;
        for (const auto &kv : s.bindings) {
            if (!line.empty())
                line += " ";
            line += kv.first + "=" + kv.second->canonicalStr();
        }
        out.push_back(line.empty() ? "yes" : line);
    }
    return out;
}

const char *kPick = "pick(1). pick(2). pick(3).";

} // namespace

TEST(EngineControl, EnumerateFacts)
{
    auto v = solutions(kPick, "pick(X)");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "X=1");
    EXPECT_EQ(v[2], "X=3");
}

TEST(EngineControl, CartesianBacktracking)
{
    auto v = solutions(kPick, "pick(A), pick(B)");
    ASSERT_EQ(v.size(), 9u);
    EXPECT_EQ(v[0], "A=1 B=1");
    EXPECT_EQ(v[3], "A=2 B=1");
    EXPECT_EQ(v[8], "A=3 B=3");
}

TEST(EngineControl, RecursiveEnumerationRegression)
{
    // Regression for the globalization-trail bug: recursive choice
    // points must re-read caller arguments correctly on deep retry.
    auto v = solutions(
        "pick(1). pick(2). pick(3).\n"
        "r(0, []).\n"
        "r(N, [C|Cs]) :- N > 0, pick(C), N1 is N - 1, r(N1, Cs).",
        "r(2, L)");
    ASSERT_EQ(v.size(), 9u);
    EXPECT_EQ(v[0], "L=[1,1]");
    EXPECT_EQ(v[8], "L=[3,3]");
}

TEST(EngineControl, AppendEnumeratesSplits)
{
    auto v = solutions(
        "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
        "app(X, Y, [1,2,3])");
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "X=[] Y=[1,2,3]");
    EXPECT_EQ(v[3], "X=[1,2,3] Y=[]");
}

TEST(EngineControl, BindingsUndoneAcrossAlternatives)
{
    auto v = solutions("q(X) :- X = 1, fail.\nq(2).", "q(V)");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], "V=2");
}

TEST(EngineControl, CutPrunesClauseAlternatives)
{
    auto v = solutions("m(1) :- !. m(2). m(3).", "m(X)");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], "X=1");
}

TEST(EngineControl, CutIsClauseLocal)
{
    // Cut inside m/1 must not prune pick/1 alternatives.
    auto v = solutions(std::string(kPick) + "m(X) :- pick(X), !.",
                       "pick(A), m(B)");
    ASSERT_EQ(v.size(), 3u);  // A enumerates; B committed to 1
    EXPECT_EQ(v[0], "A=1 B=1");
    EXPECT_EQ(v[1], "A=2 B=1");
}

TEST(EngineControl, CutAfterAlternativesTried)
{
    auto v = solutions("t(X) :- X = a. t(X) :- X = b, !. t(c).",
                       "t(X)");
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], "X=a");
    EXPECT_EQ(v[1], "X=b");
}

TEST(EngineControl, CutFailCombination)
{
    EXPECT_TRUE(solutions("p :- fail. p.", "p").size() == 1);
    EXPECT_TRUE(solutions("p :- !, fail. p.", "p").empty());
}

TEST(EngineControl, NegationAsFailure)
{
    auto ok = solutions(kPick, "\\+ pick(9)");
    EXPECT_EQ(ok.size(), 1u);
    EXPECT_TRUE(solutions(kPick, "\\+ pick(2)").empty());
    // Negation leaves no bindings.
    auto v = solutions(kPick, "\\+ pick(9), pick(X)");
    EXPECT_EQ(v.size(), 3u);
}

TEST(EngineControl, Disjunction)
{
    auto v = solutions("", "(X = 1 ; X = 2 ; X = 3)");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[1], "X=2");
}

TEST(EngineControl, IfThenElseCommitsToCondition)
{
    auto v = solutions(kPick, "(pick(X) -> Y = hit ; Y = miss)");
    ASSERT_EQ(v.size(), 1u);  // condition committed: no enumeration
    EXPECT_EQ(v[0], "X=1 Y=hit");
    auto w = solutions(kPick, "(pick(9) -> Y = hit ; Y = miss)");
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], "Y=miss");
}

TEST(EngineControl, BareIfThenFailsWithoutElse)
{
    EXPECT_TRUE(solutions("", "(1 > 2 -> X = y)").empty());
    EXPECT_EQ(solutions("", "(1 < 2 -> X = y)")[0], "X=y");
}

TEST(EngineControl, DeepDeterministicRecursion)
{
    auto v = solutions(
        "count(0). count(N) :- N > 0, N1 is N - 1, count(N1).",
        "count(20000)", 1);
    EXPECT_EQ(v.size(), 1u);
}

TEST(EngineControl, TailCallChainRunsLong)
{
    // A long last-call chain must not exhaust the control stack:
    // loop/1 below recurses 50000 times with TRO.
    Engine eng;
    eng.consult("loop(0). loop(N) :- N > 0, N1 is N - 1, loop(N1).");
    auto r = eng.solve("loop(50000)");
    EXPECT_TRUE(r.succeeded());
    EXPECT_FALSE(r.stepLimitHit);
}

TEST(EngineControl, StepLimitStopsRunaway)
{
    Engine eng;
    eng.consult("spin :- spin.");
    RunLimits lim;
    lim.maxSteps = 20000;
    auto r = eng.solve("spin", lim);
    EXPECT_FALSE(r.succeeded());
    EXPECT_TRUE(r.stepLimitHit);
}

TEST(EngineControl, UndefinedPredicateJustFails)
{
    auto v = solutions("p :- no_such_thing.", "p");
    EXPECT_TRUE(v.empty());
}

TEST(EngineControl, MaxSolutionsRespected)
{
    auto v = solutions(kPick, "pick(A), pick(B)", 4);
    EXPECT_EQ(v.size(), 4u);
}

TEST(EngineControl, FirstSolutionOrderIsSourceOrder)
{
    auto v = solutions("w(b). w(a). w(c).", "w(X)");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "X=b");
    EXPECT_EQ(v[1], "X=a");
    EXPECT_EQ(v[2], "X=c");
}

TEST(EngineControl, BacktrackIntoStructureBuilding)
{
    auto v = solutions(
        "mk(1, f(one)). mk(2, f(two)).\n"
        "go(N, T) :- mk(N, T).",
        "go(N, T)");
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], "N=1 T=f(one)");
    EXPECT_EQ(v[1], "N=2 T=f(two)");
}

TEST(EngineControl, SharedVariableAcrossChoicePoints)
{
    auto v = solutions(kPick, "pick(X), X > 1, pick(Y), Y < X");
    // X=2: Y=1; X=3: Y=1, Y=2.
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "X=2 Y=1");
    EXPECT_EQ(v[2], "X=3 Y=2");
}

TEST(EngineControl, FailureDrivenLoopWithVectors)
{
    auto v = solutions(
        std::string(kPick) +
            "count(N) :- vector_new(1, V), "
            "(pick(_), vector_get(V, 0, C0), C1 is C0 + 1, "
            "vector_set(V, 0, C1), fail ; vector_get(V, 0, N)).",
        "count(N)");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], "N=3");
}

TEST(EngineControl, IncrementalConsultAppends)
{
    Engine eng;
    eng.consult("pick(1).");
    eng.consult("pick(2). pick(3).");
    RunLimits lim;
    lim.maxSolutions = 10;
    auto r = eng.solve("pick(X)", lim);
    ASSERT_EQ(r.solutions.size(), 3u);
    EXPECT_EQ(r.solutions[0].bindings.at("X")->value(), 1);
    EXPECT_EQ(r.solutions[2].bindings.at("X")->value(), 3);
}

TEST(EngineControl, StatsArePopulated)
{
    Engine eng;
    eng.consult("a. b :- a, a.");
    auto r = eng.solve("b");
    EXPECT_TRUE(r.succeeded());
    EXPECT_EQ(r.inferences, 4u);  // the $query wrapper, b, a, a
    EXPECT_GT(r.steps, 0u);
    EXPECT_GT(r.timeNs, r.steps * 100);
    EXPECT_GT(r.lips(), 0.0);
}
