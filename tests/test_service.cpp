/**
 * @file
 * psid service tests: queue backpressure, deadline handling,
 * pool-vs-sequential determinism and metrics aggregation.
 *
 * These run in their own binary labeled `service` so the whole
 * group can be exercised under TSan in one command:
 *
 *     cmake -B build-tsan -S . -DPSI_SANITIZE=thread
 *     cmake --build build-tsan -j
 *     ctest --test-dir build-tsan -L service --output-on-failure
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "psi.hpp"

namespace {

using namespace psi;
using service::BoundedQueue;
using service::EnginePool;
using service::JobOutcome;
using service::LatencyHistogram;
using service::QueryJob;
using service::Submit;

constexpr std::uint64_t kMsNs = 1'000'000ull;

/** A workload that never terminates (tail-recursive loop). */
programs::BenchProgram
loopProgram()
{
    programs::BenchProgram p;
    p.id = "loop_forever";
    p.title = "loop forever";
    p.source = "loop :- loop.\n";
    p.query = "loop";
    return p;
}

interp::RunLimits
deadlineLimits(std::uint64_t ms)
{
    interp::RunLimits limits;
    limits.deadlineNs = ms * kMsNs;
    return limits;
}

// ---------------------------------------------------------------------
// Bounded queue
// ---------------------------------------------------------------------

TEST(JobQueue, FailFastBackpressure)
{
    BoundedQueue<int> q(2);
    int a = 1, b = 2, c = 3;
    EXPECT_TRUE(q.tryPush(a));
    EXPECT_TRUE(q.tryPush(b));
    EXPECT_FALSE(q.tryPush(c));  // full: refused, not queued
    EXPECT_EQ(q.size(), 2u);

    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_TRUE(q.tryPush(c));   // space again
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
}

TEST(JobQueue, BlockingPushWaitsForSpace)
{
    BoundedQueue<int> q(1);
    EXPECT_TRUE(q.push(1));

    std::thread consumer([&q] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        EXPECT_EQ(q.pop().value(), 1);
        EXPECT_EQ(q.pop().value(), 2);
    });
    EXPECT_TRUE(q.push(2));  // blocks until the consumer drains one
    consumer.join();
    EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, CloseDrainsThenEndsStream)
{
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    q.close();

    int x = 9;
    EXPECT_FALSE(q.push(3));
    EXPECT_FALSE(q.tryPush(x));
    EXPECT_EQ(q.pop().value(), 1);   // items already queued drain
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_FALSE(q.pop().has_value()); // then end-of-stream
}

// ---------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------

TEST(Histogram, QuantilesWithinBucketError)
{
    LatencyHistogram h;
    for (std::uint64_t ms = 1; ms <= 100; ++ms)
        h.record(ms * kMsNs);

    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.minNs(), 1 * kMsNs);
    EXPECT_EQ(h.maxNs(), 100 * kMsNs);

    // Upper-bound estimates: exact value <= estimate <= value * 9/8.
    for (auto [q, exact] : {std::pair<double, std::uint64_t>{0.50, 50},
                            {0.95, 95},
                            {0.99, 99}}) {
        std::uint64_t est = h.quantileNs(q);
        EXPECT_GE(est, exact * kMsNs) << "q=" << q;
        EXPECT_LE(est, exact * kMsNs * 9 / 8) << "q=" << q;
    }
}

TEST(Histogram, MergeMatchesCombinedRecording)
{
    LatencyHistogram lo, hi, all;
    for (std::uint64_t ms = 1; ms <= 50; ++ms) {
        lo.record(ms * kMsNs);
        all.record(ms * kMsNs);
    }
    for (std::uint64_t ms = 51; ms <= 100; ++ms) {
        hi.record(ms * kMsNs);
        all.record(ms * kMsNs);
    }
    lo.merge(hi);
    EXPECT_EQ(lo.count(), all.count());
    EXPECT_EQ(lo.sumNs(), all.sumNs());
    EXPECT_EQ(lo.minNs(), all.minNs());
    EXPECT_EQ(lo.maxNs(), all.maxNs());
    for (double q : {0.1, 0.5, 0.9, 0.99})
        EXPECT_EQ(lo.quantileNs(q), all.quantileNs(q)) << "q=" << q;
}

// ---------------------------------------------------------------------
// Deadlines in the engines
// ---------------------------------------------------------------------

TEST(Deadline, PsiEngineTimesOutWithPartialStats)
{
    const auto p = loopProgram();
    PsiRun run = runOnPsi(p, CacheConfig::psi(), deadlineLimits(50));
    EXPECT_EQ(run.result.status, interp::RunStatus::Timeout);
    EXPECT_TRUE(run.result.timedOut());
    EXPECT_FALSE(run.result.stepLimitHit);
    EXPECT_FALSE(run.result.succeeded());
    // Partial statistics are still reported.
    EXPECT_GT(run.result.steps, 0u);
    EXPECT_GT(run.result.inferences, 0u);
    EXPECT_GT(run.seq.totalSteps(), 0u);
}

TEST(Deadline, BaselineEngineTimesOut)
{
    const auto p = loopProgram();
    interp::RunResult r = runOnBaseline(p, deadlineLimits(50));
    EXPECT_EQ(r.status, interp::RunStatus::Timeout);
    EXPECT_FALSE(r.stepLimitHit);
    EXPECT_FALSE(r.succeeded());
    EXPECT_GT(r.steps, 0u);
}

TEST(Deadline, StepLimitKeepsDistinctStatus)
{
    const auto p = loopProgram();
    interp::RunLimits limits;
    limits.maxSteps = 10'000;
    PsiRun run = runOnPsi(p, CacheConfig::psi(), limits);
    EXPECT_EQ(run.result.status, interp::RunStatus::StepLimit);
    EXPECT_TRUE(run.result.stepLimitHit);
    EXPECT_FALSE(run.result.timedOut());
}

// ---------------------------------------------------------------------
// Engine pool
// ---------------------------------------------------------------------

/** Concurrent batch == sequential execution, bit for bit. */
TEST(EnginePool, BatchMatchesSequentialOnFullRegistry)
{
    const auto &programs = programs::allPrograms();
    std::vector<PsiRun> sequential;
    sequential.reserve(programs.size());
    for (const auto &p : programs)
        sequential.push_back(runOnPsi(p));

    std::vector<PsiRun> pooled =
        runBatchOnPsi(programs, CacheConfig::psi(),
                      interp::RunLimits(), 4);

    ASSERT_EQ(pooled.size(), sequential.size());
    for (std::size_t i = 0; i < programs.size(); ++i) {
        SCOPED_TRACE(programs[i].id);
        const PsiRun &s = sequential[i];
        const PsiRun &c = pooled[i];

        // Logical results.
        ASSERT_EQ(c.result.solutions.size(),
                  s.result.solutions.size());
        for (std::size_t k = 0; k < s.result.solutions.size(); ++k)
            EXPECT_EQ(c.result.solutions[k].str(),
                      s.result.solutions[k].str());
        EXPECT_EQ(c.result.output, s.result.output);
        EXPECT_EQ(c.result.status, s.result.status);

        // Model clock and work.
        EXPECT_EQ(c.result.inferences, s.result.inferences);
        EXPECT_EQ(c.result.steps, s.result.steps);
        EXPECT_EQ(c.result.timeNs, s.result.timeNs);
        EXPECT_EQ(c.stallNs, s.stallNs);

        // Hardware statistics, field by field.
        EXPECT_EQ(c.seq.moduleSteps, s.seq.moduleSteps);
        EXPECT_EQ(c.seq.branchOps, s.seq.branchOps);
        EXPECT_EQ(c.seq.wfModes, s.seq.wfModes);
        EXPECT_EQ(c.seq.cacheSteps, s.seq.cacheSteps);
        EXPECT_EQ(c.cache.accesses, s.cache.accesses);
        EXPECT_EQ(c.cache.hits, s.cache.hits);
        EXPECT_EQ(c.cache.readIns, s.cache.readIns);
        EXPECT_EQ(c.cache.writeBacks, s.cache.writeBacks);
        EXPECT_EQ(c.cache.stackAllocs, s.cache.stackAllocs);
        EXPECT_EQ(c.cache.throughWrites, s.cache.throughWrites);
    }
}

TEST(EnginePool, FullQueueAppliesBackpressure)
{
    EnginePool::Config config;
    config.workers = 1;
    config.queueCapacity = 1;
    EnginePool pool(config);

    // Occupy the single worker, then fill the single queue slot.
    auto running = pool.submit({loopProgram(), CacheConfig::psi(),
                                deadlineLimits(750)});
    ASSERT_TRUE(running.has_value());
    // Wait until the worker has picked the first job up so the
    // queued one cannot be consumed before the fail-fast probe.
    while (pool.queueDepth() > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    auto queued = pool.submit({loopProgram(), CacheConfig::psi(),
                               deadlineLimits(750)});
    ASSERT_TRUE(queued.has_value());

    // Queue full: a fail-fast submission is refused immediately.
    auto rejected = pool.submit({programs::programById("nreverse30"),
                                 CacheConfig::psi(),
                                 interp::RunLimits()},
                                Submit::FailFast);
    EXPECT_FALSE(rejected.has_value());

    JobOutcome first = running->get();
    JobOutcome second = queued->get();
    EXPECT_EQ(first.status(), interp::RunStatus::Timeout);
    EXPECT_EQ(second.status(), interp::RunStatus::Timeout);

    auto snap = pool.metrics();
    EXPECT_EQ(snap.submitted, 2u);
    EXPECT_EQ(snap.rejected, 1u);
    EXPECT_EQ(snap.total.completed, 2u);
    EXPECT_EQ(snap.total.timedOut, 2u);
    EXPECT_GE(snap.peakQueueDepth, 1u);
}

/** A deadline-exceeded job must free its worker for the next job. */
TEST(EnginePool, TimeoutFreesWorkerForNextJob)
{
    EnginePool::Config config;
    config.workers = 1;
    config.queueCapacity = 4;
    EnginePool pool(config);

    auto runaway = pool.submit({loopProgram(), CacheConfig::psi(),
                                deadlineLimits(100)});
    auto normal = pool.submit({programs::programById("nreverse30"),
                               CacheConfig::psi(),
                               interp::RunLimits()});
    ASSERT_TRUE(runaway.has_value());
    ASSERT_TRUE(normal.has_value());

    JobOutcome r1 = runaway->get();
    JobOutcome r2 = normal->get();
    EXPECT_EQ(r1.status(), interp::RunStatus::Timeout);
    EXPECT_EQ(r2.status(), interp::RunStatus::Ok);
    EXPECT_TRUE(r2.run.result.succeeded());

    auto snap = pool.metrics();
    EXPECT_EQ(snap.total.completed, 2u);
    EXPECT_EQ(snap.total.timedOut, 1u);
    EXPECT_EQ(snap.total.succeeded, 1u);
}

TEST(EnginePool, ShutdownRefusesNewJobs)
{
    EnginePool pool(EnginePool::Config{2, 8});
    auto fut = pool.submit({programs::programById("nreverse30"),
                            CacheConfig::psi(), interp::RunLimits()});
    ASSERT_TRUE(fut.has_value());
    EXPECT_TRUE(fut->get().ok());
    pool.shutdown();
    auto refused = pool.submit({programs::programById("nreverse30"),
                                CacheConfig::psi(),
                                interp::RunLimits()});
    EXPECT_FALSE(refused.has_value());
}

TEST(EnginePool, MetricsAggregateAcrossWorkers)
{
    const auto &programs = programs::allPrograms();
    EnginePool::Config config;
    config.workers = 4;
    config.queueCapacity = programs.size();
    EnginePool pool(config);

    std::vector<std::future<JobOutcome>> futures;
    std::uint64_t want_inferences = 0;
    for (const auto &p : programs) {
        auto fut = pool.submit({p, CacheConfig::psi(),
                                interp::RunLimits()});
        ASSERT_TRUE(fut.has_value());
        futures.push_back(std::move(*fut));
    }
    for (auto &f : futures)
        want_inferences += f.get().run.result.inferences;

    auto snap = pool.metrics();
    EXPECT_EQ(snap.workers, 4u);
    EXPECT_EQ(snap.submitted, programs.size());
    EXPECT_EQ(snap.total.completed, programs.size());
    EXPECT_EQ(snap.total.succeeded, programs.size());
    EXPECT_EQ(snap.total.inferences, want_inferences);
    EXPECT_EQ(snap.total.latency.count(), programs.size());
    EXPECT_GT(snap.total.steps(), 0u);
    EXPECT_GT(snap.total.cache.totalAccesses(), 0u);

    // Renderings carry the aggregates.
    std::string json = snap.json(1'000'000'000ull);
    EXPECT_NE(json.find("\"completed\": " +
                        std::to_string(programs.size())),
              std::string::npos);
    EXPECT_NE(json.find("\"aggregate_lips\""), std::string::npos);
    EXPECT_GT(snap.table(1'000'000'000ull).rowCount(), 10u);
}

// ---------------------------------------------------------------------
// Registry lookups (actionable failures)
// ---------------------------------------------------------------------

TEST(Registry, FindProgramByIdReturnsNullForUnknown)
{
    EXPECT_EQ(programs::findProgramById("no_such_workload"), nullptr);
    ASSERT_NE(programs::findProgramById("nreverse30"), nullptr);
    EXPECT_EQ(programs::findProgramById("nreverse30")->id,
              "nreverse30");
}

TEST(Registry, ProgramByIdErrorListsAvailableNames)
{
    try {
        programs::programById("no_such_workload");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("no_such_workload"), std::string::npos);
        EXPECT_NE(msg.find("available"), std::string::npos);
        EXPECT_NE(msg.find("nreverse30"), std::string::npos);
    }
}

} // namespace
