/**
 * @file
 * psid service tests: queue backpressure, deadline handling,
 * pool-vs-sequential determinism and metrics aggregation.
 *
 * These run in their own binary labeled `service` so the whole
 * group can be exercised under TSan in one command:
 *
 *     cmake -B build-tsan -S . -DPSI_SANITIZE=thread
 *     cmake --build build-tsan -j
 *     ctest --test-dir build-tsan -L service --output-on-failure
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "psi.hpp"

namespace {

using namespace psi;
using service::BoundedQueue;
using service::EnginePool;
using service::JobOutcome;
using service::LatencyHistogram;
using service::QueryJob;
using service::Submit;

constexpr std::uint64_t kMsNs = 1'000'000ull;

/** A workload that never terminates (tail-recursive loop). */
programs::BenchProgram
loopProgram()
{
    programs::BenchProgram p;
    p.id = "loop_forever";
    p.title = "loop forever";
    p.source = "loop :- loop.\n";
    p.query = "loop";
    return p;
}

interp::RunLimits
deadlineLimits(std::uint64_t ms)
{
    interp::RunLimits limits;
    limits.deadlineNs = ms * kMsNs;
    return limits;
}

// ---------------------------------------------------------------------
// Bounded queue
// ---------------------------------------------------------------------

TEST(JobQueue, FailFastBackpressure)
{
    BoundedQueue<int> q(2);
    int a = 1, b = 2, c = 3;
    EXPECT_TRUE(q.tryPush(a));
    EXPECT_TRUE(q.tryPush(b));
    EXPECT_FALSE(q.tryPush(c));  // full: refused, not queued
    EXPECT_EQ(q.size(), 2u);

    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_TRUE(q.tryPush(c));   // space again
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
}

TEST(JobQueue, BlockingPushWaitsForSpace)
{
    BoundedQueue<int> q(1);
    EXPECT_TRUE(q.push(1));

    std::thread consumer([&q] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        EXPECT_EQ(q.pop().value(), 1);
        EXPECT_EQ(q.pop().value(), 2);
    });
    EXPECT_TRUE(q.push(2));  // blocks until the consumer drains one
    consumer.join();
    EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, CloseDrainsThenEndsStream)
{
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    q.close();

    int x = 9;
    EXPECT_FALSE(q.push(3));
    EXPECT_FALSE(q.tryPush(x));
    EXPECT_EQ(q.pop().value(), 1);   // items already queued drain
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_FALSE(q.pop().has_value()); // then end-of-stream
}

/**
 * Edge-semantics pin: tryPush() racing close() must be exactly-once.
 * Whatever interleaving the race takes, an item is either refused
 * (tryPush returned false, caller keeps it) or drains exactly once
 * after close - never lost, never duplicated, never reordered.
 */
TEST(JobQueue, TryPushRacingCloseIsExactlyOnce)
{
    for (int round = 0; round < 50; ++round) {
        BoundedQueue<int> q(64);
        std::atomic<int> accepted{0};

        std::thread closer([&q] { q.close(); });
        std::thread producer([&q, &accepted] {
            for (int i = 1; i <= 32; ++i) {
                int v = i;
                if (!q.tryPush(v))
                    break; // closed (or full): nothing enqueued
                ++accepted;
            }
        });
        producer.join();
        closer.join();

        // Exactly the accepted prefix drains, in order, then EOS.
        for (int want = 1; want <= accepted.load(); ++want) {
            auto got = q.pop();
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, want);
        }
        EXPECT_FALSE(q.pop().has_value());
    }
}

/**
 * Edge-semantics pin: close() with concurrent blocked consumers.
 * Every queued item is delivered to exactly one consumer before any
 * of them sees end-of-stream, and consumers beyond the item count
 * unblock with end-of-stream instead of hanging.
 */
TEST(JobQueue, CloseWakesAllConsumersAfterDrain)
{
    BoundedQueue<int> q(8);
    constexpr int kItems = 3, kConsumers = 6;
    std::atomic<int> delivered{0}, ended{0};

    std::vector<std::thread> consumers;
    for (int i = 0; i < kConsumers; ++i) {
        consumers.emplace_back([&q, &delivered, &ended] {
            while (auto item = q.pop())
                ++delivered;
            ++ended;
        });
    }
    for (int i = 1; i <= kItems; ++i)
        ASSERT_TRUE(q.push(i));
    q.close();
    for (auto &t : consumers)
        t.join();

    EXPECT_EQ(delivered.load(), kItems);  // each item exactly once
    EXPECT_EQ(ended.load(), kConsumers);  // every consumer unblocked
    EXPECT_EQ(q.size(), 0u);
}

// ---------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------

TEST(Histogram, QuantilesWithinBucketError)
{
    LatencyHistogram h;
    for (std::uint64_t ms = 1; ms <= 100; ++ms)
        h.record(ms * kMsNs);

    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.minNs(), 1 * kMsNs);
    EXPECT_EQ(h.maxNs(), 100 * kMsNs);

    // Upper-bound estimates: exact value <= estimate <= value * 9/8.
    for (auto [q, exact] : {std::pair<double, std::uint64_t>{0.50, 50},
                            {0.95, 95},
                            {0.99, 99}}) {
        std::uint64_t est = h.quantileNs(q);
        EXPECT_GE(est, exact * kMsNs) << "q=" << q;
        EXPECT_LE(est, exact * kMsNs * 9 / 8) << "q=" << q;
    }
}

/**
 * Samples past the top bucket used to be folded into it silently;
 * now they are counted, so a latency report can say "the tail is
 * clamped" instead of presenting a fabricated p99.
 */
TEST(Histogram, SaturationIsCountedNotSilent)
{
    LatencyHistogram h;
    h.record(1 * kMsNs);
    EXPECT_EQ(h.saturatedCount(), 0u);

    const std::uint64_t huge = 1ull << 63;
    h.record(huge);
    h.record(std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(h.saturatedCount(), 2u);
    // Saturated samples still count everywhere else.
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.maxNs(), std::numeric_limits<std::uint64_t>::max());

    LatencyHistogram other;
    other.record(huge);
    h.merge(other);
    EXPECT_EQ(h.saturatedCount(), 3u);

    h.reset();
    EXPECT_EQ(h.saturatedCount(), 0u);
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, MergeMatchesCombinedRecording)
{
    LatencyHistogram lo, hi, all;
    for (std::uint64_t ms = 1; ms <= 50; ++ms) {
        lo.record(ms * kMsNs);
        all.record(ms * kMsNs);
    }
    for (std::uint64_t ms = 51; ms <= 100; ++ms) {
        hi.record(ms * kMsNs);
        all.record(ms * kMsNs);
    }
    lo.merge(hi);
    EXPECT_EQ(lo.count(), all.count());
    EXPECT_EQ(lo.sumNs(), all.sumNs());
    EXPECT_EQ(lo.minNs(), all.minNs());
    EXPECT_EQ(lo.maxNs(), all.maxNs());
    for (double q : {0.1, 0.5, 0.9, 0.99})
        EXPECT_EQ(lo.quantileNs(q), all.quantileNs(q)) << "q=" << q;
}

// ---------------------------------------------------------------------
// Deadlines in the engines
// ---------------------------------------------------------------------

TEST(Deadline, PsiEngineTimesOutWithPartialStats)
{
    const auto p = loopProgram();
    PsiRun run = runOnPsi(p, CacheConfig::psi(), deadlineLimits(50));
    EXPECT_EQ(run.result.status, interp::RunStatus::Timeout);
    EXPECT_TRUE(run.result.timedOut());
    EXPECT_FALSE(run.result.stepLimitHit);
    EXPECT_FALSE(run.result.succeeded());
    // Partial statistics are still reported.
    EXPECT_GT(run.result.steps, 0u);
    EXPECT_GT(run.result.inferences, 0u);
    EXPECT_GT(run.seq.totalSteps(), 0u);
}

TEST(Deadline, BaselineEngineTimesOut)
{
    const auto p = loopProgram();
    interp::RunResult r = runOnBaseline(p, deadlineLimits(50));
    EXPECT_EQ(r.status, interp::RunStatus::Timeout);
    EXPECT_FALSE(r.stepLimitHit);
    EXPECT_FALSE(r.succeeded());
    EXPECT_GT(r.steps, 0u);
}

TEST(Deadline, StepLimitKeepsDistinctStatus)
{
    const auto p = loopProgram();
    interp::RunLimits limits;
    limits.maxSteps = 10'000;
    PsiRun run = runOnPsi(p, CacheConfig::psi(), limits);
    EXPECT_EQ(run.result.status, interp::RunStatus::StepLimit);
    EXPECT_TRUE(run.result.stepLimitHit);
    EXPECT_FALSE(run.result.timedOut());
}

// ---------------------------------------------------------------------
// Engine pool
// ---------------------------------------------------------------------

/** Concurrent batch == sequential execution, bit for bit. */
TEST(EnginePool, BatchMatchesSequentialOnFullRegistry)
{
    const auto &programs = programs::allPrograms();
    std::vector<PsiRun> sequential;
    sequential.reserve(programs.size());
    for (const auto &p : programs)
        sequential.push_back(runOnPsi(p));

    std::vector<PsiRun> pooled =
        runBatchOnPsi(programs, CacheConfig::psi(),
                      interp::RunLimits(), 4);

    ASSERT_EQ(pooled.size(), sequential.size());
    for (std::size_t i = 0; i < programs.size(); ++i) {
        SCOPED_TRACE(programs[i].id);
        const PsiRun &s = sequential[i];
        const PsiRun &c = pooled[i];

        // Logical results.
        ASSERT_EQ(c.result.solutions.size(),
                  s.result.solutions.size());
        for (std::size_t k = 0; k < s.result.solutions.size(); ++k)
            EXPECT_EQ(c.result.solutions[k].str(),
                      s.result.solutions[k].str());
        EXPECT_EQ(c.result.output, s.result.output);
        EXPECT_EQ(c.result.status, s.result.status);

        // Model clock and work.
        EXPECT_EQ(c.result.inferences, s.result.inferences);
        EXPECT_EQ(c.result.steps, s.result.steps);
        EXPECT_EQ(c.result.timeNs, s.result.timeNs);
        EXPECT_EQ(c.stallNs, s.stallNs);

        // Hardware statistics, field by field.
        EXPECT_EQ(c.seq.moduleSteps, s.seq.moduleSteps);
        EXPECT_EQ(c.seq.branchOps, s.seq.branchOps);
        EXPECT_EQ(c.seq.wfModes, s.seq.wfModes);
        EXPECT_EQ(c.seq.cacheSteps, s.seq.cacheSteps);
        EXPECT_EQ(c.cache.accesses, s.cache.accesses);
        EXPECT_EQ(c.cache.hits, s.cache.hits);
        EXPECT_EQ(c.cache.readIns, s.cache.readIns);
        EXPECT_EQ(c.cache.writeBacks, s.cache.writeBacks);
        EXPECT_EQ(c.cache.stackAllocs, s.cache.stackAllocs);
        EXPECT_EQ(c.cache.throughWrites, s.cache.throughWrites);
    }
}

TEST(EnginePool, FullQueueAppliesBackpressure)
{
    EnginePool::Config config;
    config.workers = 1;
    config.queueCapacity = 1;
    EnginePool pool(config);

    // Occupy the single worker, then fill the single queue slot.
    auto running = pool.submit({loopProgram(), CacheConfig::psi(),
                                deadlineLimits(750)});
    ASSERT_TRUE(running.has_value());
    // Wait until the worker has picked the first job up so the
    // queued one cannot be consumed before the fail-fast probe.
    while (pool.queueDepth() > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    auto queued = pool.submit({loopProgram(), CacheConfig::psi(),
                               deadlineLimits(750)});
    ASSERT_TRUE(queued.has_value());

    // Queue full: a fail-fast submission is refused immediately.
    auto rejected = pool.submit({programs::programById("nreverse30"),
                                 CacheConfig::psi(),
                                 interp::RunLimits()},
                                Submit::FailFast);
    EXPECT_FALSE(rejected.has_value());

    JobOutcome first = running->get();
    JobOutcome second = queued->get();
    EXPECT_EQ(first.status(), interp::RunStatus::Timeout);
    EXPECT_EQ(second.status(), interp::RunStatus::Timeout);

    auto snap = pool.metrics();
    EXPECT_EQ(snap.submitted, 2u);
    EXPECT_EQ(snap.rejected, 1u);
    EXPECT_EQ(snap.total.completed, 2u);
    EXPECT_EQ(snap.total.timedOut, 2u);
    EXPECT_GE(snap.peakQueueDepth, 1u);
}

/** A deadline-exceeded job must free its worker for the next job. */
TEST(EnginePool, TimeoutFreesWorkerForNextJob)
{
    EnginePool::Config config;
    config.workers = 1;
    config.queueCapacity = 4;
    EnginePool pool(config);

    auto runaway = pool.submit({loopProgram(), CacheConfig::psi(),
                                deadlineLimits(100)});
    auto normal = pool.submit({programs::programById("nreverse30"),
                               CacheConfig::psi(),
                               interp::RunLimits()});
    ASSERT_TRUE(runaway.has_value());
    ASSERT_TRUE(normal.has_value());

    JobOutcome r1 = runaway->get();
    JobOutcome r2 = normal->get();
    EXPECT_EQ(r1.status(), interp::RunStatus::Timeout);
    EXPECT_EQ(r2.status(), interp::RunStatus::Ok);
    EXPECT_TRUE(r2.run.result.succeeded());

    auto snap = pool.metrics();
    EXPECT_EQ(snap.total.completed, 2u);
    EXPECT_EQ(snap.total.timedOut, 1u);
    EXPECT_EQ(snap.total.succeeded, 1u);
}

TEST(EnginePool, ShutdownRefusesNewJobs)
{
    EnginePool pool(EnginePool::Config{2, 8, nullptr});
    auto fut = pool.submit({programs::programById("nreverse30"),
                            CacheConfig::psi(), interp::RunLimits()});
    ASSERT_TRUE(fut.has_value());
    EXPECT_TRUE(fut->get().ok());
    pool.shutdown();
    auto refused = pool.submit({programs::programById("nreverse30"),
                                CacheConfig::psi(),
                                interp::RunLimits()});
    EXPECT_FALSE(refused.has_value());
}

/**
 * Race a burst of submitAsync() calls against shutdown(): every job
 * the pool ACCEPTED must run its callback exactly once - a lost
 * callback hangs whoever is waiting on the completion, a doubled one
 * double-frees their state.  Run under TSan by the service label.
 */
TEST(EnginePool, SubmitAsyncCallbacksAcceptedBeforeShutdownFireOnce)
{
    const auto &p = programs::programById("nreverse30");
    constexpr int kJobs = 16;

    // Several rounds so shutdown() lands at different points of the
    // submission burst: before it, in the middle, after it.
    for (int round = 0; round < 4; ++round) {
        EnginePool::Config config;
        config.workers = 2;
        config.queueCapacity = kJobs;
        auto pool = std::make_unique<EnginePool>(config);

        std::array<std::atomic<int>, kJobs> fired{};
        std::array<bool, kJobs> accepted{};

        std::thread closer([&pool, round] {
            std::this_thread::sleep_for(
                std::chrono::microseconds(round * 300));
            pool->shutdown();
        });
        for (int i = 0; i < kJobs; ++i) {
            auto refusal = pool->submitAsync(
                {p, CacheConfig::psi(), interp::RunLimits()},
                [&fired, i](JobOutcome) { ++fired[i]; });
            accepted[i] = !refusal.has_value();
            if (refusal) {
                EXPECT_EQ(*refusal, service::SubmitError::ShutDown);
            }
        }
        closer.join();
        pool.reset(); // joins workers: all callbacks have run

        for (int i = 0; i < kJobs; ++i)
            EXPECT_EQ(fired[i].load(), accepted[i] ? 1 : 0)
                << "job " << i << " in round " << round;
    }
}

TEST(EnginePool, MetricsAggregateAcrossWorkers)
{
    const auto &programs = programs::allPrograms();
    EnginePool::Config config;
    config.workers = 4;
    config.queueCapacity = programs.size();
    EnginePool pool(config);

    std::vector<std::future<JobOutcome>> futures;
    std::uint64_t want_inferences = 0;
    for (const auto &p : programs) {
        auto fut = pool.submit({p, CacheConfig::psi(),
                                interp::RunLimits()});
        ASSERT_TRUE(fut.has_value());
        futures.push_back(std::move(*fut));
    }
    for (auto &f : futures)
        want_inferences += f.get().run.result.inferences;

    auto snap = pool.metrics();
    EXPECT_EQ(snap.workers, 4u);
    EXPECT_EQ(snap.submitted, programs.size());
    EXPECT_EQ(snap.total.completed, programs.size());
    EXPECT_EQ(snap.total.succeeded, programs.size());
    EXPECT_EQ(snap.total.inferences, want_inferences);
    EXPECT_EQ(snap.total.latency.count(), programs.size());
    EXPECT_GT(snap.total.steps(), 0u);
    EXPECT_GT(snap.total.cache.totalAccesses(), 0u);

    // Renderings carry the aggregates.
    std::string json = snap.json(1'000'000'000ull);
    EXPECT_NE(json.find("\"completed\": " +
                        std::to_string(programs.size())),
              std::string::npos);
    EXPECT_NE(json.find("\"aggregate_lips\""), std::string::npos);
    EXPECT_GT(snap.table(1'000'000'000ull).rowCount(), 10u);
}

// ---------------------------------------------------------------------
// ProgramCache + warm engines (the compile-once hot path)
// ---------------------------------------------------------------------

/**
 * Cached-compile determinism over the full registry: installing a
 * CompiledProgram into a *reused* engine via load() must reproduce
 * runOnPsi() - results, model clock and every hardware statistic -
 * byte for byte.  One engine serves every program twice, so this
 * pins both the image replay and the warm-reset path.
 */
TEST(ProgramCache, CachedRunsMatchRunOnPsiOnFullRegistry)
{
    interp::Engine engine;
    for (int pass = 0; pass < 2; ++pass) {
        for (const auto &p : programs::allPrograms()) {
            SCOPED_TRACE(p.id + " pass " + std::to_string(pass));
            PsiRun s = runOnPsi(p);
            kl0::CompiledProgram image =
                kl0::CompiledProgram::compile(p.source);
            PsiRun c = runCompiledOnPsi(engine, image, p.query);

            ASSERT_EQ(c.result.solutions.size(),
                      s.result.solutions.size());
            for (std::size_t k = 0; k < s.result.solutions.size();
                 ++k)
                EXPECT_EQ(c.result.solutions[k].str(),
                          s.result.solutions[k].str());
            EXPECT_EQ(c.result.output, s.result.output);
            EXPECT_EQ(c.result.status, s.result.status);
            EXPECT_EQ(c.result.inferences, s.result.inferences);
            EXPECT_EQ(c.result.steps, s.result.steps);
            EXPECT_EQ(c.result.timeNs, s.result.timeNs);
            EXPECT_EQ(c.stallNs, s.stallNs);
            EXPECT_EQ(c.seq.moduleSteps, s.seq.moduleSteps);
            EXPECT_EQ(c.seq.branchOps, s.seq.branchOps);
            EXPECT_EQ(c.seq.wfModes, s.seq.wfModes);
            EXPECT_EQ(c.seq.cacheSteps, s.seq.cacheSteps);
            EXPECT_EQ(c.cache.accesses, s.cache.accesses);
            EXPECT_EQ(c.cache.hits, s.cache.hits);
            EXPECT_EQ(c.cache.readIns, s.cache.readIns);
            EXPECT_EQ(c.cache.writeBacks, s.cache.writeBacks);
            EXPECT_EQ(c.cache.stackAllocs, s.cache.stackAllocs);
            EXPECT_EQ(c.cache.throughWrites, s.cache.throughWrites);
        }
    }
}

/** Non-default cache geometry survives the warm load() path too. */
TEST(ProgramCache, CachedRunsMatchUnderAlternateCacheConfig)
{
    CacheConfig small;
    small.capacityWords = 1024;
    small.ways = 1;
    small.storeIn = false;

    const auto &p = programs::programById("qsort50");
    PsiRun s = runOnPsi(p, small);
    interp::Engine engine; // constructed with the *default* config:
                           // load() must re-configure it per run
    kl0::CompiledProgram image =
        kl0::CompiledProgram::compile(p.source);
    PsiRun c = runCompiledOnPsi(engine, image, p.query, small);

    EXPECT_EQ(c.result.steps, s.result.steps);
    EXPECT_EQ(c.result.timeNs, s.result.timeNs);
    EXPECT_EQ(c.stallNs, s.stallNs);
    EXPECT_EQ(c.cache.accesses, s.cache.accesses);
    EXPECT_EQ(c.cache.hits, s.cache.hits);
    EXPECT_EQ(c.cache.readIns, s.cache.readIns);
    EXPECT_EQ(c.cache.writeBacks, s.cache.writeBacks);
    EXPECT_EQ(c.cache.throughWrites, s.cache.throughWrites);
}

TEST(ProgramCache, CountsHitsAndMissesPerDistinctSource)
{
    service::ProgramCache cache;
    const auto &a = programs::programById("nreverse30");
    const auto &b = programs::programById("qsort50");

    auto a1 = cache.get(a.source);
    auto a2 = cache.get(a.source);
    auto b1 = cache.get(b.source);

    EXPECT_EQ(a1.get(), a2.get()); // one shared immutable image
    EXPECT_NE(a1.get(), b1.get());

    auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.entries, 2u);
}

TEST(ProgramCache, CompileFailurePropagatesAndIsNotCached)
{
    service::ProgramCache cache;
    EXPECT_THROW(cache.get("this is not KL0 ("), FatalError);
    // The poisoned entry is dropped, not memoized.
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_THROW(cache.get("this is not KL0 ("), FatalError);
    EXPECT_EQ(cache.stats().misses, 2u);
}

/**
 * Many threads racing on the same key: exactly one compile, everyone
 * gets the same image.  Run under TSan by the service label.
 */
TEST(ProgramCache, ConcurrentGetSameKeyCompilesOnce)
{
    service::ProgramCache cache;
    const std::string source =
        programs::programById("nreverse30").source;
    constexpr int kThreads = 8;

    std::vector<service::ProgramCache::ProgramPtr> got(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back(
            [&cache, &source, &got, i] { got[i] = cache.get(source); });
    }
    for (auto &t : threads)
        t.join();

    for (int i = 1; i < kThreads; ++i)
        EXPECT_EQ(got[i].get(), got[0].get());
    auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
    EXPECT_EQ(stats.entries, 1u);
}

/**
 * Negative path under contention: when the shared compile fails,
 * EVERY concurrently-waiting thread observes the failure (nobody
 * hangs, nobody gets a null image), and the bad entry is dropped so
 * the same cache still compiles a good program afterwards.
 */
TEST(ProgramCache, ConcurrentCompileFailureReachesEveryWaiter)
{
    service::ProgramCache cache;
    const std::string bad = "this is not KL0 (";
    constexpr int kThreads = 8;

    std::atomic<int> threw{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&cache, &bad, &threw] {
            try {
                cache.get(bad);
                ADD_FAILURE() << "bad source compiled";
            } catch (const FatalError &) {
                ++threw;
            }
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(threw.load(), kThreads);
    // Not poison-cached: the failed entry is gone, a retry compiles
    // again (and fails again), and a good program still works.
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_THROW(cache.get(bad), FatalError);
    auto image =
        cache.get(programs::programById("nreverse30").source);
    EXPECT_NE(image.get(), nullptr);
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(EnginePool, ProgramCacheCountersSurfaceInMetrics)
{
    EnginePool::Config config;
    config.workers = 1;
    config.queueCapacity = 4;
    EnginePool pool(config);

    const auto &p = programs::programById("nreverse30");
    for (int i = 0; i < 3; ++i) {
        auto fut = pool.submit({p, CacheConfig::psi(),
                                interp::RunLimits()});
        ASSERT_TRUE(fut.has_value());
        EXPECT_TRUE(fut->get().ok());
    }

    auto snap = pool.metrics();
    EXPECT_EQ(snap.programCacheMisses, 1u);
    EXPECT_EQ(snap.programCacheHits, 2u);
    EXPECT_EQ(snap.programCacheEntries, 1u);
    EXPECT_GT(snap.total.hostSolveNs, 0u);

    std::string json = snap.json();
    EXPECT_NE(json.find("\"program_cache_hits\": 2"),
              std::string::npos);
    EXPECT_NE(json.find("\"program_cache_misses\": 1"),
              std::string::npos);
    EXPECT_NE(json.find("\"host_setup_ns\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Deadline covers queue wait
// ---------------------------------------------------------------------

/**
 * Regression: the deadline budget used to start only when the engine
 * began executing, so a short-deadline job stuck behind a slow one
 * still ran its full budget after the wait.  Now the budget starts
 * at submit: a job whose budget is exhausted by queue wait completes
 * as Timeout in ~queue-wait time, without ever touching an engine.
 */
TEST(EnginePool, DeadlineBudgetIncludesQueueWait)
{
    EnginePool::Config config;
    config.workers = 1;
    config.queueCapacity = 4;
    EnginePool pool(config);

    // Occupy the single worker for ~400 ms.
    auto slow = pool.submit({loopProgram(), CacheConfig::psi(),
                             deadlineLimits(400)});
    ASSERT_TRUE(slow.has_value());
    while (pool.queueDepth() > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // 10 ms budget, ~400 ms of queue ahead of it: dead on arrival.
    auto doomed = pool.submit({programs::programById("nreverse30"),
                               CacheConfig::psi(),
                               deadlineLimits(10)});
    ASSERT_TRUE(doomed.has_value());

    JobOutcome out = doomed->get();
    EXPECT_EQ(out.status(), interp::RunStatus::Timeout);
    EXPECT_TRUE(out.expired);
    // The engine never ran: no model work, no per-run host time.
    EXPECT_EQ(out.run.result.steps, 0u);
    EXPECT_EQ(out.run.result.inferences, 0u);
    EXPECT_EQ(out.setupNs, 0u);
    EXPECT_EQ(out.solveNs, 0u);
    // It timed out in ~queue-wait time, not queue wait + budget:
    // completion is dominated by the wait itself.
    EXPECT_GE(out.queueNs, 10 * kMsNs);
    EXPECT_LT(out.latencyNs - out.queueNs, 10 * kMsNs);

    EXPECT_EQ(slow->get().status(), interp::RunStatus::Timeout);
    auto snap = pool.metrics();
    EXPECT_EQ(snap.total.timedOut, 2u);
    EXPECT_EQ(snap.total.expiredInQueue, 1u);
}

/** A still-live budget is reduced by the time spent queueing. */
TEST(EnginePool, RemainingBudgetShrinksWithQueueWait)
{
    EnginePool::Config config;
    config.workers = 1;
    config.queueCapacity = 4;
    EnginePool pool(config);

    // ~1 s of queue ahead, 3 s total budget.  With the budget
    // anchored at submit the loop job behind runs for only the
    // *remaining* ~2 s and its whole-request latency lands near 3 s;
    // the old engine-anchored budget would have run the full 3 s
    // after pickup (~4 s latency).
    auto slow = pool.submit({loopProgram(), CacheConfig::psi(),
                             deadlineLimits(1'000)});
    ASSERT_TRUE(slow.has_value());
    auto behind = pool.submit({loopProgram(), CacheConfig::psi(),
                               deadlineLimits(3'000)});
    ASSERT_TRUE(behind.has_value());

    JobOutcome out = behind->get();
    EXPECT_EQ(out.status(), interp::RunStatus::Timeout);
    EXPECT_FALSE(out.expired);
    EXPECT_GT(out.run.result.steps, 0u);
    EXPECT_GE(out.queueNs, 900 * kMsNs);
    // Whole-request latency stays near the submit-anchored budget,
    // with slack for the deadline poll granularity - it must not be
    // queue wait *plus* the full budget.
    EXPECT_LT(out.latencyNs, 3'600 * kMsNs);
}

/**
 * The deadline audit for fast mode, part 1: a fast-mode job whose
 * budget is consumed by queue wait must complete as Timeout with the
 * expired flag and zero stats, exactly like a fidelity job - the
 * expiry check runs before the worker ever picks an engine.
 */
TEST(EnginePool, FastModeQueueExpiryMatchesFidelity)
{
    EnginePool::Config config;
    config.workers = 1;
    config.queueCapacity = 4;
    EnginePool pool(config);

    QueryJob slow{loopProgram(), CacheConfig::psi(),
                  deadlineLimits(400)};
    slow.mode = interp::ExecMode::Fast;
    auto running = pool.submit(std::move(slow));
    ASSERT_TRUE(running.has_value());
    while (pool.queueDepth() > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    QueryJob doomed{programs::programById("nreverse30"),
                    CacheConfig::psi(), deadlineLimits(10)};
    doomed.mode = interp::ExecMode::Fast;
    auto f = pool.submit(std::move(doomed));
    ASSERT_TRUE(f.has_value());

    JobOutcome out = f->get();
    EXPECT_EQ(out.status(), interp::RunStatus::Timeout);
    EXPECT_TRUE(out.expired);
    EXPECT_EQ(out.mode, interp::ExecMode::Fast);
    EXPECT_EQ(out.run.result.steps, 0u);
    EXPECT_EQ(out.run.result.inferences, 0u);
    EXPECT_EQ(out.setupNs, 0u);
    EXPECT_EQ(out.solveNs, 0u);

    EXPECT_EQ(running->get().status(), interp::RunStatus::Timeout);
    auto snap = pool.metrics();
    EXPECT_EQ(snap.total.expiredInQueue, 1u);
}

/**
 * Part 2: a runaway fast-mode solve honors deadlineNs.  The fast
 * loop only polls the clock every few thousand dispatches, so allow
 * generous (but bounded) granularity slack on top of the budget.
 */
TEST(EnginePool, FastModeRunawaySolveHonorsDeadline)
{
    EnginePool::Config config;
    config.workers = 1;
    EnginePool pool(config);

    QueryJob runaway{loopProgram(), CacheConfig::psi(),
                     deadlineLimits(100)};
    runaway.mode = interp::ExecMode::Fast;
    auto f = pool.submit(std::move(runaway));
    ASSERT_TRUE(f.has_value());

    JobOutcome out = f->get();
    EXPECT_EQ(out.status(), interp::RunStatus::Timeout);
    EXPECT_FALSE(out.expired);
    EXPECT_EQ(out.mode, interp::ExecMode::Fast);
    // ~100 ms budget; anything past 2 s means the deadline poll is
    // broken, not merely coarse.
    EXPECT_LT(out.latencyNs, 2'000 * kMsNs);

    // The worker is free afterwards: a normal fast job completes.
    QueryJob next{programs::programById("nreverse30"),
                  CacheConfig::psi(), interp::RunLimits()};
    next.mode = interp::ExecMode::Fast;
    auto g = pool.submit(std::move(next));
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->get().status(), interp::RunStatus::Ok);
}

// ---------------------------------------------------------------------
// Registry lookups (actionable failures)
// ---------------------------------------------------------------------

TEST(Registry, FindProgramByIdReturnsNullForUnknown)
{
    EXPECT_EQ(programs::findProgramById("no_such_workload"), nullptr);
    ASSERT_NE(programs::findProgramById("nreverse30"), nullptr);
    EXPECT_EQ(programs::findProgramById("nreverse30")->id,
              "nreverse30");
}

TEST(Registry, ProgramByIdErrorListsAvailableNames)
{
    try {
        programs::programById("no_such_workload");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("no_such_workload"), std::string::npos);
        EXPECT_NE(msg.find("available"), std::string::npos);
        EXPECT_NE(msg.find("nreverse30"), std::string::npos);
    }
}

} // namespace
