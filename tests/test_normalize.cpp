#include <gtest/gtest.h>

#include "kl0/normalize.hpp"
#include "kl0/reader.hpp"

using namespace psi::kl0;

namespace {

/** True if any clause body goal satisfies @p pred. */
template <typename F>
bool
anyGoal(const Program &p, F pred)
{
    for (const auto &id : p.predicates()) {
        for (const auto &cl : p.clauses(id)) {
            for (const auto &g : cl.body) {
                if (pred(g))
                    return true;
            }
        }
    }
    return false;
}

bool
isControl(const TermPtr &g)
{
    return g->isCallable(";", 2) || g->isCallable("->", 2) ||
           g->isCallable("\\+", 1) || g->isCallable(",", 2) ||
           g->isCallable("not", 1);
}

} // namespace

TEST(Normalize, DisjunctionBecomesAuxPredicate)
{
    Program p;
    p.consult("f(X) :- (a(X) ; b(X)).");
    Program n = normalize(p);
    EXPECT_FALSE(anyGoal(n, isControl));
    // The aux predicate has two clauses.
    bool found = false;
    for (const auto &id : n.predicates()) {
        if (id.name.rfind("$aux", 0) == 0) {
            found = true;
            EXPECT_EQ(n.clauses(id).size(), 2u);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Normalize, AuxCapturesVariables)
{
    Program p;
    p.consult("f(X, Y) :- (a(X) ; b(Y)), c(X, Y).");
    Program n = normalize(p);
    // The aux call must pass both X and Y.
    const auto &cl = n.clauses({"f", 2})[0];
    const TermPtr &aux_call = cl.body[0];
    EXPECT_EQ(aux_call->arity(), 2u);
}

TEST(Normalize, IfThenElseUsesCut)
{
    Program p;
    p.consult("f(X) :- (t(X) -> u(X) ; v(X)).");
    Program n = normalize(p);
    EXPECT_FALSE(anyGoal(n, isControl));
    // Some aux clause contains a cut.
    bool has_cut = anyGoal(n, [](const TermPtr &g) {
        return g->isAtom() && g->name() == "!";
    });
    EXPECT_TRUE(has_cut);
}

TEST(Normalize, BareIfThenGetsFailElse)
{
    Program p;
    p.consult("f(X) :- (t(X) -> u(X)).");
    Program n = normalize(p);
    bool has_fail = anyGoal(n, [](const TermPtr &g) {
        return g->isAtom() && g->name() == "fail";
    });
    EXPECT_TRUE(has_fail);
}

TEST(Normalize, NegationBecomesCutFail)
{
    Program p;
    p.consult("f(X) :- \\+ bad(X), ok(X).");
    Program n = normalize(p);
    EXPECT_FALSE(anyGoal(n, isControl));
    bool has_fail = anyGoal(n, [](const TermPtr &g) {
        return g->isAtom() && g->name() == "fail";
    });
    EXPECT_TRUE(has_fail);
}

TEST(Normalize, NestedControlFullyExpanded)
{
    Program p;
    p.consult("f(X) :- (a(X) ; (b(X) ; \\+ c(X))).");
    Program n = normalize(p);
    EXPECT_FALSE(anyGoal(n, isControl));
}

TEST(Normalize, PlainClausesUntouched)
{
    Program p;
    p.consult("f(X) :- g(X), h(X). g(1). h(1).");
    Program n = normalize(p);
    EXPECT_EQ(n.clauses({"f", 1})[0].body.size(), 2u);
    EXPECT_EQ(n.predicates().size(), 3u);
}

TEST(Normalize, CollectVarsOrder)
{
    auto t = parseTerm("f(B, g(A, B), C)");
    auto vars = collectVars(t);
    ASSERT_EQ(vars.size(), 3u);
    EXPECT_EQ(vars[0]->name(), "B");
    EXPECT_EQ(vars[1]->name(), "A");
    EXPECT_EQ(vars[2]->name(), "C");
}

TEST(Normalize, NormalizeGoalProducesFlatList)
{
    Program aux;
    auto goals = normalizeGoal(parseTerm("(a, (b ; c), d)"), aux);
    ASSERT_EQ(goals.size(), 3u);
    EXPECT_EQ(goals[0]->str(), "a");
    EXPECT_EQ(goals[2]->str(), "d");
    EXPECT_EQ(aux.predicates().size(), 1u);
}
