/**
 * @file
 * Cross-engine and invariant properties, parameterized over the full
 * benchmark workload registry:
 *
 *  - the PSI interpreter and the compiled baseline produce exactly
 *    the same solutions in the same order (alpha-equivalent terms);
 *  - the sequencer statistics are internally consistent (module
 *    steps sum to the total, WF field accesses never exceed steps,
 *    cache-command steps equal the cache's access counts);
 *  - the cache statistics are sane (hits <= accesses per area).
 */

#include <gtest/gtest.h>

#include "psi.hpp"

using namespace psi;

namespace {

std::string
bindingsOf(const interp::Solution &s)
{
    std::string line;
    for (const auto &kv : s.bindings) {
        if (!line.empty())
            line += " ";
        line += kv.first + "=" + kv.second->canonicalStr();
    }
    return line;
}

class WorkloadProps : public ::testing::TestWithParam<const char *>
{
};

} // namespace

TEST_P(WorkloadProps, EnginesAgreeOnSolutions)
{
    const auto &p = programs::programById(GetParam());
    interp::RunLimits lim;
    lim.maxSolutions = 3;

    interp::Engine psi_eng;
    psi_eng.consult(p.source);
    auto r1 = psi_eng.solve(p.query, lim);

    baseline::WamEngine wam;
    wam.consult(p.source);
    auto r2 = wam.solve(p.query, lim);

    ASSERT_EQ(r1.solutions.size(), r2.solutions.size());
    ASSERT_FALSE(r1.solutions.empty())
        << "workload must have at least one solution";
    for (std::size_t i = 0; i < r1.solutions.size(); ++i) {
        EXPECT_EQ(bindingsOf(r1.solutions[i]),
                  bindingsOf(r2.solutions[i]))
            << "solution " << i << " differs";
    }
    EXPECT_EQ(r1.output, r2.output);
}

TEST_P(WorkloadProps, SequencerStatsConsistent)
{
    const auto &p = programs::programById(GetParam());
    PsiRun run = runOnPsi(p);

    const micro::SeqStats &s = run.seq;
    std::uint64_t total = s.totalSteps();
    ASSERT_GT(total, 0u);

    // Branch ops partition the steps.
    std::uint64_t branch_total = 0;
    for (auto v : s.branchOps)
        branch_total += v;
    EXPECT_EQ(branch_total, total);

    // Every WF field is used at most once per step.
    for (int f = 0; f < micro::kNumWfFields; ++f) {
        EXPECT_LE(s.wfFieldAccesses(static_cast<micro::WfField>(f)),
                  total);
    }

    // Source 2 can only address the dual-ported WF00-0F.
    using micro::WfMode;
    const auto &src2 = s.wfModes[1];
    for (int m = 0; m < micro::kNumWfModes; ++m) {
        if (m != static_cast<int>(WfMode::None) &&
            m != static_cast<int>(WfMode::Direct00_0F)) {
            EXPECT_EQ(src2[m], 0u)
                << "src2 used mode " << micro::wfModeName(
                       static_cast<WfMode>(m));
        }
    }

    // Steps carrying cache commands match the cache's own counts.
    for (int c = 0; c < kNumCacheCmds; ++c) {
        EXPECT_EQ(s.cacheSteps[c],
                  run.cache.cmdAccesses(static_cast<CacheCmd>(c)));
    }
}

TEST_P(WorkloadProps, CacheStatsSane)
{
    const auto &p = programs::programById(GetParam());
    PsiRun run = runOnPsi(p);

    std::uint64_t total = run.cache.totalAccesses();
    ASSERT_GT(total, 0u);
    EXPECT_LE(run.cache.totalHits(), total);
    for (int a = 0; a < kNumAreas; ++a) {
        Area area = static_cast<Area>(a);
        EXPECT_LE(run.cache.areaHits(area),
                  run.cache.areaAccesses(area));
        EXPECT_GE(run.cache.areaHitPct(area), 0.0);
        EXPECT_LE(run.cache.areaHitPct(area), 100.0);
    }
    // Memory requests are a minority of the steps (the paper's
    // "about one in five" observation; allow a loose band).
    double cmd_share =
        100.0 * static_cast<double>(total) /
        static_cast<double>(run.seq.totalSteps());
    EXPECT_GT(cmd_share, 5.0);
    EXPECT_LT(cmd_share, 50.0);
}

TEST_P(WorkloadProps, TimingIdentityHolds)
{
    const auto &p = programs::programById(GetParam());
    PsiRun run = runOnPsi(p);
    EXPECT_EQ(run.result.timeNs,
              run.seq.totalSteps() * micro::kStepNs + run.stallNs);
    EXPECT_GT(run.result.inferences, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadProps,
    ::testing::Values("nreverse30", "qsort50", "tree", "lisp_fib",
                      "lisp_nrev", "queens1", "revfunc", "slowrev6",
                      "bup1", "bup2", "bup3", "harmonizer1",
                      "harmonizer2", "harmonizer3", "lcp1", "lcp2",
                      "lcp3", "window1", "window2", "puzzle8"));

// ---------------------------------------------------------------------
// Cache-design properties over one recorded trace.
// ---------------------------------------------------------------------

namespace {

struct TraceFixture
{
    std::vector<MemEvent> trace;
    std::uint64_t steps = 0;

    TraceFixture()
    {
        const auto &p = programs::programById("qsort50");
        interp::Engine eng;
        eng.consult(p.source);
        eng.mem().setTraceSink(&trace);
        auto r = eng.solve(p.query);
        steps = r.steps;
    }
};

TraceFixture &
fixture()
{
    static TraceFixture f;
    return f;
}

} // namespace

class PmmsCapacity : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PmmsCapacity, ImprovementMonotonicInCapacity)
{
    tools::Pmms pmms(fixture().trace, fixture().steps);
    CacheConfig base = CacheConfig::psi();
    CacheConfig half = base;
    base.capacityWords = GetParam();
    half.capacityWords = GetParam() / 2;
    auto rb = pmms.replay(base);
    auto rh = pmms.replay(half);
    EXPECT_GE(rb.improvementPct + 1e-9, rh.improvementPct);
    EXPECT_GE(rb.hitPct + 1e-9, rh.hitPct);
}

INSTANTIATE_TEST_SUITE_P(Capacities, PmmsCapacity,
                         ::testing::Values(16u, 64u, 256u, 1024u,
                                           4096u, 8192u));

TEST(PmmsProps, MoreWaysNeverHurtSameCapacity)
{
    tools::Pmms pmms(fixture().trace, fixture().steps);
    CacheConfig one = CacheConfig::psi();
    one.ways = 1;
    CacheConfig two = CacheConfig::psi();
    EXPECT_GE(pmms.replay(two).hitPct + 0.5,
              pmms.replay(one).hitPct);
}

TEST(PmmsProps, StoreInBeatsStoreThrough)
{
    tools::Pmms pmms(fixture().trace, fixture().steps);
    CacheConfig thr = CacheConfig::psi();
    thr.storeIn = false;
    EXPECT_GT(pmms.replay(CacheConfig::psi()).improvementPct,
              pmms.replay(thr).improvementPct);
}

TEST(PmmsProps, CachedAlwaysBeatsUncached)
{
    tools::Pmms pmms(fixture().trace, fixture().steps);
    auto r = pmms.replay(CacheConfig::psi());
    EXPECT_LT(r.timeNs, pmms.noCacheTimeNs());
    EXPECT_GT(r.improvementPct, 0.0);
}
