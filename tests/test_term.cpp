#include <gtest/gtest.h>

#include "kl0/term.hpp"

using namespace psi::kl0;

TEST(Term, AtomBasics)
{
    TermPtr a = Term::atom("foo");
    EXPECT_TRUE(a->isAtom());
    EXPECT_EQ(a->name(), "foo");
    EXPECT_EQ(a->arity(), 0u);
    EXPECT_FALSE(a->isVar());
}

TEST(Term, IntegerBasics)
{
    TermPtr i = Term::integer(-42);
    EXPECT_TRUE(i->isInt());
    EXPECT_EQ(i->value(), -42);
}

TEST(Term, VarBasics)
{
    TermPtr v = Term::var("X");
    EXPECT_TRUE(v->isVar());
    EXPECT_EQ(v->name(), "X");
}

TEST(Term, CompoundBasics)
{
    TermPtr c = Term::compound("f", {Term::atom("a"), Term::integer(1)});
    EXPECT_TRUE(c->isCompound());
    EXPECT_EQ(c->name(), "f");
    EXPECT_EQ(c->arity(), 2u);
    EXPECT_TRUE(c->isCallable("f", 2));
    EXPECT_FALSE(c->isCallable("f", 1));
    EXPECT_FALSE(c->isCallable("g", 2));
}

TEST(Term, CompoundWithNoArgsIsAtom)
{
    TermPtr c = Term::compound("f", {});
    EXPECT_TRUE(c->isAtom());
}

TEST(Term, NilAndCons)
{
    EXPECT_TRUE(Term::nil()->isNil());
    TermPtr l = Term::list({Term::integer(1)});
    EXPECT_TRUE(l->isCons());
    EXPECT_TRUE(l->args()[1]->isNil());
}

TEST(Term, ListWithTail)
{
    TermPtr l = Term::list({Term::integer(1), Term::integer(2)},
                           Term::var("T"));
    EXPECT_TRUE(l->isCons());
    EXPECT_EQ(l->str(), "[1,2|T]");
}

TEST(Term, EqualsStructural)
{
    TermPtr a = Term::compound("f", {Term::var("X"), Term::integer(3)});
    TermPtr b = Term::compound("f", {Term::var("X"), Term::integer(3)});
    TermPtr c = Term::compound("f", {Term::var("Y"), Term::integer(3)});
    EXPECT_TRUE(a->equals(*b));
    EXPECT_FALSE(a->equals(*c));
}

TEST(Term, StrListNotation)
{
    TermPtr l = Term::list({Term::atom("a"), Term::atom("b")});
    EXPECT_EQ(l->str(), "[a,b]");
}

TEST(Term, StrQuotesOddAtoms)
{
    EXPECT_EQ(Term::atom("Foo")->str(), "'Foo'");
    EXPECT_EQ(Term::atom("foo")->str(), "foo");
}

TEST(Term, StrNestedCompound)
{
    TermPtr t = Term::compound(
        "point", {Term::integer(1),
                  Term::compound("g", {Term::atom("z")})});
    EXPECT_EQ(t->str(), "point(1,g(z))");
}

TEST(Term, CanonicalStrRenamesVars)
{
    TermPtr t1 = Term::compound("f", {Term::var("Foo"), Term::var("Bar"),
                                      Term::var("Foo")});
    TermPtr t2 = Term::compound("f", {Term::var("A"), Term::var("B"),
                                      Term::var("A")});
    EXPECT_EQ(t1->canonicalStr(), t2->canonicalStr());
    EXPECT_EQ(t1->canonicalStr(), "f(_A,_B,_A)");
}

TEST(Term, CanonicalStrDistinguishesPattern)
{
    TermPtr t1 = Term::compound("f", {Term::var("X"), Term::var("X")});
    TermPtr t2 = Term::compound("f", {Term::var("X"), Term::var("Y")});
    EXPECT_NE(t1->canonicalStr(), t2->canonicalStr());
}
