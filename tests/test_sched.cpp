/**
 * @file
 * psisched tests: deterministic policy unit tests over Scheduler<int>
 * (WFQ interleave, EDF tie-breaks, quotas, affinity batching, the
 * age-cap starvation pin) plus pool-level integration - two-tenant
 * runs, FIFO-vs-affinity differential byte-identity and the
 * TenantQuota refusal surfaced through submitAsync().
 *
 * These run in their own binary labeled `sched` so CI and the
 * sanitizer job can exercise the group in one command:
 *
 *     ctest --test-dir build -L sched --output-on-failure
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "psi.hpp"

namespace {

using namespace psi;
using sched::AffinityScheduler;
using sched::DispatchClass;
using sched::FifoScheduler;
using sched::PushResult;
using sched::SchedConfig;
using sched::SchedKind;
using sched::SchedSnapshot;
using sched::TaskInfo;
using service::EnginePool;
using service::JobOutcome;
using service::QueryJob;
using service::Submit;
using service::SubmitError;

constexpr std::uint64_t kMsNs = 1'000'000ull;
/** Mirror of SchedulerBase::kVirtualScale (protected there). */
constexpr std::uint64_t kScale = 1u << 16;

/** A workload that never terminates (tail-recursive loop). */
programs::BenchProgram
loopProgram()
{
    programs::BenchProgram p;
    p.id = "loop_forever";
    p.title = "loop forever";
    p.source = "loop :- loop.\n";
    p.query = "loop";
    return p;
}

interp::RunLimits
deadlineLimits(std::uint64_t ms)
{
    interp::RunLimits limits;
    limits.deadlineNs = ms * kMsNs;
    return limits;
}

TaskInfo
task(const std::string &tenant, std::uint64_t key = 0,
     std::uint64_t deadlineNs = 0,
     sched::SchedClock::time_point submitted =
         sched::SchedClock::now())
{
    TaskInfo info;
    info.tenant = tenant;
    info.affinityKey = key;
    info.deadlineNs = deadlineNs;
    info.submitted = submitted;
    return info;
}

/** Push one int or fail the test. */
template <typename S>
void
mustPush(S &s, const TaskInfo &info, int value)
{
    int v = value;
    ASSERT_EQ(s.tryPush(info, v), PushResult::Ok);
}

/** Pop one dispatch or fail the test. */
template <typename S>
sched::Dispatched<int>
mustPop(S &s, unsigned worker, std::uint64_t loadedKey)
{
    auto d = s.pop(worker, loadedKey);
    EXPECT_TRUE(d.has_value());
    return d ? std::move(*d) : sched::Dispatched<int>{};
}

// ---------------------------------------------------------------------
// Names and sanitization
// ---------------------------------------------------------------------

TEST(SchedNames, KindRoundTrip)
{
    EXPECT_STREQ(sched::schedKindName(SchedKind::Fifo), "fifo");
    EXPECT_STREQ(sched::schedKindName(SchedKind::Affinity),
                 "affinity");
    SchedKind k = SchedKind::Fifo;
    EXPECT_TRUE(sched::parseSchedKind("affinity", k));
    EXPECT_EQ(k, SchedKind::Affinity);
    EXPECT_TRUE(sched::parseSchedKind("fifo", k));
    EXPECT_EQ(k, SchedKind::Fifo);
    EXPECT_FALSE(sched::parseSchedKind("round-robin", k));
}

TEST(SchedNames, TenantSanitization)
{
    EXPECT_EQ(sched::sanitizeTenantName(""), "default");
    // '~' is reserved for the fold bucket, so it no longer passes
    // through - a client-declared "team-a_1.x~" must not be able to
    // produce a name in the scheduler's reserved namespace.
    EXPECT_EQ(sched::sanitizeTenantName("team-a_1.x~"),
              "team-a_1.x_");
    EXPECT_EQ(sched::sanitizeTenantName("bad name!"), "bad_name_");
    // Length capped so hostile ids cannot bloat metrics labels.
    EXPECT_EQ(sched::sanitizeTenantName(std::string(200, 'a')).size(),
              48u);
}

TEST(SchedNames, HostileTenantIdsSurviveJsonAndPrometheus)
{
    // Tenant ids chosen to break each emission surface: JSON-key
    // metacharacters, Prometheus label metacharacters, control
    // characters, and an attempt to claim the fold bucket's name.
    const std::vector<std::string> hostile = {
        "evil\"quote", "back\\slash", "line\nbreak", "tab\there",
        sched::kOverflowTenant,
    };
    SchedConfig config;
    config.capacity = 16;
    AffinityScheduler<int> s(config);
    for (std::size_t i = 0; i < hostile.size(); ++i)
        mustPush(s, task(hostile[i]), static_cast<int>(i));

    SchedSnapshot snap = s.snapshot();
    for (const auto &ten : snap.tenants) {
        // Every interned name is already metrics-safe: nothing that
        // needs escaping in a JSON key or Prometheus label value.
        for (char c : ten.name) {
            bool ok = (c >= 'a' && c <= 'z') ||
                      (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' ||
                      c == '.' || c == '-';
            EXPECT_TRUE(ok) << "unsafe char in tenant name '"
                            << ten.name << "'";
        }
        // No client name may land in the reserved fold bucket.
        EXPECT_NE(ten.name, sched::kOverflowTenant);
    }

    // The declared "~other" tenant was sanitized to "_other".
    bool sawSanitizedOther = false;
    for (const auto &ten : snap.tenants)
        sawSanitizedOther |= ten.name == "_other";
    EXPECT_TRUE(sawSanitizedOther);

    // The rendered JSON object must stay structurally valid: every
    // quote inside it is either a key/value delimiter or escaped.
    JsonWriter w;
    snap.json(w);
    const std::string json = w.str();
    int depth = 0;
    bool inString = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        char c = json[i];
        if (inString) {
            if (c == '\\')
                ++i; // skip escaped char
            else if (c == '"')
                inString = false;
        } else if (c == '"') {
            inString = true;
        } else if (c == '{') {
            ++depth;
        } else if (c == '}') {
            --depth;
        }
    }
    EXPECT_FALSE(inString) << "unterminated string in: " << json;
    EXPECT_EQ(depth, 0) << "unbalanced braces in: " << json;

    // Prometheus label values: no raw quote, backslash or newline
    // may appear inside the {tenant="..."} label.
    const std::string prom = snap.prometheus();
    std::size_t pos = 0;
    while ((pos = prom.find("tenant=\"", pos)) != std::string::npos) {
        pos += 8;
        std::size_t end = prom.find('"', pos);
        ASSERT_NE(end, std::string::npos);
        const std::string label = prom.substr(pos, end - pos);
        EXPECT_EQ(label.find('\\'), std::string::npos) << label;
        EXPECT_EQ(label.find('\n'), std::string::npos) << label;
        pos = end;
    }
}

TEST(SchedNames, FoldBucketStaysReservedUnderOverflow)
{
    // With the tenant table capped, late tenants fold into "~other" -
    // and a client who declared the literal name "~other" beforehand
    // must still be counted separately (as "_other"), not merged
    // into the scheduler's own bucket.
    SchedConfig config;
    config.capacity = 16;
    config.maxTenants = 4; // three real tenants + the fold bucket
    AffinityScheduler<int> s(config);
    mustPush(s, task(sched::kOverflowTenant), 0); // hostile literal
    mustPush(s, task("a"), 1);
    mustPush(s, task("b"), 2);
    mustPush(s, task("late1"), 3); // past the cap: folds
    mustPush(s, task("late2"), 4); // folds too

    SchedSnapshot snap = s.snapshot();
    ASSERT_EQ(snap.tenants.size(), 4u);
    std::uint64_t folded = 0;
    std::uint64_t hostileAdmitted = 0;
    for (const auto &ten : snap.tenants) {
        if (ten.name == sched::kOverflowTenant)
            folded = ten.admitted;
        if (ten.name == "_other")
            hostileAdmitted = ten.admitted;
    }
    EXPECT_EQ(folded, 2u) << "late1+late2 share the fold bucket";
    EXPECT_EQ(hostileAdmitted, 1u)
        << "hostile '~other' must stay distinct from the bucket";
}

// ---------------------------------------------------------------------
// FifoScheduler: the legacy order, with the new accounting
// ---------------------------------------------------------------------

TEST(FifoSched, StrictArrivalOrderAcrossTenants)
{
    SchedConfig config;
    config.capacity = 8;
    FifoScheduler<int> s(config);
    EXPECT_EQ(s.kind(), SchedKind::Fifo);

    mustPush(s, task("a", 11), 1);
    mustPush(s, task("b", 22), 2);
    mustPush(s, task("a", 11), 3);
    mustPush(s, task("b", 22), 4);

    for (int want = 1; want <= 4; ++want) {
        auto d = mustPop(s, 0, 11);
        EXPECT_EQ(d.item, want);
        EXPECT_EQ(d.cls, DispatchClass::Fair);
    }

    SchedSnapshot snap = s.snapshot();
    EXPECT_EQ(snap.dispatches(), 4u);
    EXPECT_EQ(snap.affinityHits, 2u);   // the two key-11 jobs
    EXPECT_EQ(snap.affinityMisses, 2u);
    ASSERT_EQ(snap.tenants.size(), 2u);
    EXPECT_EQ(snap.tenants[0].name, "a");
    EXPECT_EQ(snap.tenants[0].dispatched, 2u);
    EXPECT_EQ(snap.tenants[1].name, "b");
    EXPECT_EQ(snap.tenants[1].dispatched, 2u);
}

TEST(FifoSched, FullQueueRefusesFailFast)
{
    SchedConfig config;
    config.capacity = 2;
    FifoScheduler<int> s(config);
    mustPush(s, task("a"), 1);
    mustPush(s, task("a"), 2);
    int v = 3;
    EXPECT_EQ(s.tryPush(task("a"), v), PushResult::QueueFull);
    EXPECT_EQ(v, 3); // refused item untouched
    EXPECT_EQ(s.snapshot().tenants[0].rejected, 1u);
}

// ---------------------------------------------------------------------
// AffinityScheduler: fairness
// ---------------------------------------------------------------------

/**
 * Equal-weight WFQ interleaves a backlogged tenant with a newly
 * arriving one instead of draining the backlog first.  Tenant a
 * queues six jobs, then b queues two; virtual finish tags put b's
 * jobs right behind a's matching ones:  a1 b1 a2 b2 a3 a4 a5 a6.
 */
TEST(AffinitySched, EqualWeightInterleave)
{
    SchedConfig config;
    config.capacity = 16;
    config.ageCapNs = 0; // isolate the fair order
    AffinityScheduler<int> s(config);

    auto now = sched::SchedClock::now();
    for (int i = 1; i <= 6; ++i)
        mustPush(s, task("a", 0, 0, now), 10 + i);
    for (int i = 1; i <= 2; ++i)
        mustPush(s, task("b", 0, 0, now), 20 + i);

    const std::vector<int> want = {11, 21, 12, 22, 13, 14, 15, 16};
    for (int expected : want) {
        auto d = mustPop(s, 0, 0);
        EXPECT_EQ(d.item, expected);
        EXPECT_EQ(d.cls, DispatchClass::Fair);
    }
    EXPECT_EQ(s.snapshot().fairDispatches, 8u);
}

/**
 * A weight-3 tenant gets three dispatches for every one a weight-1
 * tenant gets while both are backlogged: tags advance by scale/3 vs
 * scale, so the order is h1 h2 h3 l1 h4 h5 h6 l2.
 */
TEST(AffinitySched, WeightedShareUnderContention)
{
    SchedConfig config;
    config.capacity = 16;
    config.ageCapNs = 0;
    config.weights["heavy"] = 3;
    AffinityScheduler<int> s(config);

    auto now = sched::SchedClock::now();
    for (int i = 1; i <= 6; ++i)
        mustPush(s, task("heavy", 0, 0, now), 100 + i);
    for (int i = 1; i <= 2; ++i)
        mustPush(s, task("light", 0, 0, now), 200 + i);

    const std::vector<int> want = {101, 102, 103, 201,
                                   104, 105, 106, 202};
    for (int expected : want)
        EXPECT_EQ(mustPop(s, 0, 0).item, expected);

    SchedSnapshot snap = s.snapshot();
    ASSERT_EQ(snap.tenants.size(), 2u);
    EXPECT_EQ(snap.tenants[0].weight, 3u);
    EXPECT_EQ(snap.tenants[1].weight, 1u);
}

/** Equal virtual tags break ties earliest-deadline-first. */
TEST(AffinitySched, EdfTieBreakOnEqualTags)
{
    SchedConfig config;
    config.capacity = 8;
    config.ageCapNs = 0;
    AffinityScheduler<int> s(config);

    auto now = sched::SchedClock::now();
    // Same arrival instant, same (first-job) virtual finish tag:
    // the 1 ms deadline beats the 10 s one despite arriving later.
    mustPush(s, task("x", 0, 10'000 * kMsNs, now), 1);
    mustPush(s, task("y", 0, 1 * kMsNs, now), 2);

    EXPECT_EQ(mustPop(s, 0, 0).item, 2);
    EXPECT_EQ(mustPop(s, 0, 0).item, 1);
}

/**
 * A tenant that was idle while others accumulated backlog starts at
 * the current virtual clock: its first job lands near the head, but
 * it gets no retroactive "credit" for the idle time.
 */
TEST(AffinitySched, LateTenantStartsAtVirtualNowNotZero)
{
    SchedConfig config;
    config.capacity = 16;
    config.ageCapNs = 0;
    AffinityScheduler<int> s(config);

    auto now = sched::SchedClock::now();
    for (int i = 1; i <= 4; ++i)
        mustPush(s, task("busy", 0, 0, now), 10 + i);
    // Dispatch two: the virtual clock advances to busy's 2nd tag.
    EXPECT_EQ(mustPop(s, 0, 0).item, 11);
    EXPECT_EQ(mustPop(s, 0, 0).item, 12);

    // The late tenant's first tag = vnow + scale = busy's 3rd tag;
    // busy wins the tie on seq, then the newcomer goes next.
    mustPush(s, task("late", 0, 0, now), 99);
    EXPECT_EQ(mustPop(s, 0, 0).item, 13);
    EXPECT_EQ(mustPop(s, 0, 0).item, 99);
    EXPECT_EQ(mustPop(s, 0, 0).item, 14);
}

// ---------------------------------------------------------------------
// AffinityScheduler: admission control
// ---------------------------------------------------------------------

TEST(AffinitySched, QuotaAndCapacityFailFast)
{
    SchedConfig config;
    config.capacity = 4;
    config.tenantQuota = 2;
    AffinityScheduler<int> s(config);

    mustPush(s, task("a"), 1);
    mustPush(s, task("a"), 2);
    int v = 3;
    // Tenant a is at quota while the queue still has room.
    EXPECT_EQ(s.tryPush(task("a"), v), PushResult::QuotaExceeded);
    mustPush(s, task("b"), 4);
    mustPush(s, task("b"), 5);
    // Queue full now: capacity refusal wins over quota accounting.
    EXPECT_EQ(s.tryPush(task("c"), v), PushResult::QueueFull);

    SchedSnapshot snap = s.snapshot();
    EXPECT_EQ(snap.quotaRejects, 1u);
    ASSERT_EQ(snap.tenants.size(), 3u);
    EXPECT_EQ(snap.tenants[0].quotaRejected, 1u);
    EXPECT_EQ(snap.tenants[2].name, "c");
    EXPECT_EQ(snap.tenants[2].rejected, 1u);

    s.close();
    EXPECT_EQ(s.tryPush(task("a"), v), PushResult::Closed);
    EXPECT_EQ(v, 3);
}

TEST(AffinitySched, BlockingPushWaitsForQuotaRelease)
{
    SchedConfig config;
    config.capacity = 8;
    config.tenantQuota = 1;
    AffinityScheduler<int> s(config);

    mustPush(s, task("a"), 1);
    std::thread consumer([&s] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        EXPECT_EQ(mustPop(s, 0, 0).item, 1);
        EXPECT_EQ(mustPop(s, 0, 0).item, 2);
    });
    // Blocks on the tenant quota (not capacity) until the consumer
    // dispatches job 1.
    int v = 2;
    EXPECT_EQ(s.push(task("a"), v), PushResult::Ok);
    consumer.join();
    EXPECT_EQ(s.size(), 0u);
}

TEST(AffinitySched, CloseDrainsThenEndsStream)
{
    SchedConfig config;
    config.capacity = 4;
    AffinityScheduler<int> s(config);
    mustPush(s, task("a"), 1);
    mustPush(s, task("a"), 2);
    s.close();

    int v = 3;
    EXPECT_EQ(s.push(task("a"), v), PushResult::Closed);
    EXPECT_EQ(s.tryPush(task("a"), v), PushResult::Closed);
    EXPECT_EQ(mustPop(s, 0, 0).item, 1); // queued jobs still drain
    EXPECT_EQ(mustPop(s, 0, 0).item, 2);
    EXPECT_FALSE(s.pop(0, 0).has_value()); // then end-of-stream
}

TEST(AffinitySched, OverflowTenantsShareOneBucket)
{
    SchedConfig config;
    config.capacity = 16;
    config.maxTenants = 3;
    AffinityScheduler<int> s(config);

    mustPush(s, task("a"), 1);
    mustPush(s, task("b"), 2);
    mustPush(s, task("c"), 3); // table full: lands in ~other
    mustPush(s, task("d"), 4); // shares the same bucket

    SchedSnapshot snap = s.snapshot();
    ASSERT_EQ(snap.tenants.size(), 3u);
    EXPECT_EQ(snap.tenants[0].name, "a");
    EXPECT_EQ(snap.tenants[1].name, "b");
    EXPECT_EQ(snap.tenants[2].name, sched::kOverflowTenant);
    EXPECT_EQ(snap.tenants[2].admitted, 2u);
}

// ---------------------------------------------------------------------
// AffinityScheduler: affinity batching and the age cap
// ---------------------------------------------------------------------

/**
 * A worker holding image K1 batches the queued K1 jobs (oldest
 * first) up to maxBatch, then falls back to the fair head; with the
 * image swapped to K2 the K2 jobs batch the same way.  Every counter
 * of the run is pinned.
 */
TEST(AffinitySched, BatchesBoundedByMaxBatch)
{
    constexpr std::uint64_t kK1 = 0xAAAA, kK2 = 0xBBBB;
    SchedConfig config;
    config.capacity = 16;
    config.maxBatch = 2;
    config.ageCapNs = 0;
    AffinityScheduler<int> s(config);

    auto now = sched::SchedClock::now();
    mustPush(s, task("t", kK2, 0, now), 20); // k2a: fair head
    mustPush(s, task("t", kK1, 0, now), 11); // k1a
    mustPush(s, task("t", kK1, 0, now), 12); // k1b
    mustPush(s, task("t", kK1, 0, now), 13); // k1c
    mustPush(s, task("t", kK2, 0, now), 21); // k2b

    struct Want
    {
        std::uint64_t loaded;
        int item;
        DispatchClass cls;
    };
    const std::vector<Want> script = {
        {kK1, 11, DispatchClass::Affinity}, // batch 1 on K1
        {kK1, 12, DispatchClass::Affinity},
        {kK1, 20, DispatchClass::Fair},     // maxBatch hit: fair head
        {kK2, 21, DispatchClass::Affinity}, // batch 2 on K2
        {kK2, 13, DispatchClass::Fair},     // maxBatch hit again
    };
    for (const Want &w : script) {
        auto d = mustPop(s, 0, w.loaded);
        EXPECT_EQ(d.item, w.item);
        EXPECT_EQ(d.cls, w.cls);
    }

    SchedSnapshot snap = s.snapshot();
    EXPECT_EQ(snap.affinityHits, 3u);   // k1a k1b k2b
    EXPECT_EQ(snap.affinityMisses, 2u); // k2a under K1, k1c under K2
    EXPECT_EQ(snap.affinityDispatches, 3u);
    EXPECT_EQ(snap.fairDispatches, 2u);
    EXPECT_EQ(snap.agedDispatches, 0u);
    EXPECT_EQ(snap.batches, 2u);
    EXPECT_EQ(snap.batchJobs, 4u);
    EXPECT_EQ(snap.maxBatchRun, 2u);
    EXPECT_DOUBLE_EQ(snap.affinityHitRatio(), 0.6);
    EXPECT_DOUBLE_EQ(snap.meanBatchJobs(), 2.0);
}

/**
 * The starvation regression pin: affinity pressure from a hot image
 * cannot hold the oldest job past ageCapNs.  Once the victim has
 * waited past the cap it dispatches next - as Aged - even though the
 * worker's loaded image still has queued work and batch room.
 */
TEST(AffinitySched, AgeCapOverridesAffinityPressure)
{
    constexpr std::uint64_t kHot = 0xCAFE, kCold = 0xD00D;
    SchedConfig config;
    config.capacity = 16;
    config.maxBatch = 1000;         // batching never self-limits
    config.ageCapNs = 30 * kMsNs;
    AffinityScheduler<int> s(config);

    mustPush(s, task("light", kCold), 99); // the would-starve victim
    for (int i = 1; i <= 4; ++i)
        mustPush(s, task("heavy", kHot), i);

    // Affinity wins while the victim is younger than the cap.
    auto first = mustPop(s, 0, kHot);
    EXPECT_EQ(first.cls, DispatchClass::Affinity);
    EXPECT_EQ(first.item, 1);

    std::this_thread::sleep_for(std::chrono::milliseconds(40));

    // Past the cap the victim overrides the (still available) batch.
    auto aged = mustPop(s, 0, kHot);
    EXPECT_EQ(aged.item, 99);
    EXPECT_EQ(aged.cls, DispatchClass::Aged);
    EXPECT_GE(aged.waitNs, 30 * kMsNs);

    SchedSnapshot snap = s.snapshot();
    EXPECT_EQ(snap.agedDispatches, 1u);
    EXPECT_EQ(snap.affinityDispatches, 1u);
}

// ---------------------------------------------------------------------
// Pool integration
// ---------------------------------------------------------------------

QueryJob
jobFor(const std::string &workload, const std::string &tenant)
{
    QueryJob job;
    job.program = programs::programById(workload);
    job.cache = CacheConfig::psi();
    job.tenant = tenant;
    return job;
}

/** Two tenants through the production scheduler: everything
 *  completes and the per-tenant + affinity accounting shows up in
 *  the pool's MetricsSnapshot, its JSON and its Prometheus text. */
TEST(SchedPool, TwoTenantRunPopulatesMetrics)
{
    EnginePool::Config config;
    config.workers = 2;
    config.queueCapacity = 32;
    config.scheduler = SchedKind::Affinity;
    EnginePool pool(config);
    EXPECT_EQ(pool.schedulerKind(), SchedKind::Affinity);

    constexpr int kJobs = 8;
    std::vector<std::future<JobOutcome>> futures;
    for (int i = 0; i < kJobs; ++i) {
        auto fut = pool.submit(
            jobFor("nreverse30", i % 2 == 0 ? "alice" : "bob"));
        ASSERT_TRUE(fut.has_value());
        futures.push_back(std::move(*fut));
    }
    for (auto &f : futures) {
        JobOutcome out = f.get();
        EXPECT_TRUE(out.ok());
        EXPECT_TRUE(out.run.result.succeeded());
    }

    auto snap = pool.metrics();
    EXPECT_EQ(snap.sched.kind, SchedKind::Affinity);
    EXPECT_EQ(snap.sched.dispatches(),
              static_cast<std::uint64_t>(kJobs));
    // Every job shares one image, so only each worker's first
    // dispatch (cold engine, loadedKey 0) can miss.
    EXPECT_LE(snap.sched.affinityMisses, 2u);
    EXPECT_GE(snap.sched.affinityHits,
              static_cast<std::uint64_t>(kJobs) - 2u);
    ASSERT_EQ(snap.sched.tenants.size(), 2u);
    EXPECT_EQ(snap.sched.tenants[0].name, "alice");
    EXPECT_EQ(snap.sched.tenants[0].dispatched, 4u);
    EXPECT_EQ(snap.sched.tenants[1].name, "bob");
    EXPECT_EQ(snap.sched.tenants[1].dispatched, 4u);

    const std::string json = snap.json();
    EXPECT_NE(json.find("\"sched_policy\": \"affinity\""),
              std::string::npos);
    EXPECT_NE(json.find("\"sched_affinity_hits\""),
              std::string::npos);
    EXPECT_NE(json.find("\"tenant_alice_dispatched\": 4"),
              std::string::npos);

    const std::string prom = snap.prometheus();
    EXPECT_NE(prom.find("psi_sched_policy{policy=\"affinity\"} 1"),
              std::string::npos);
    EXPECT_NE(prom.find("psi_sched_affinity_hits_total"),
              std::string::npos);
    EXPECT_NE(
        prom.find("psi_sched_tenant_dispatched_total{tenant=\"bob\"}"
                  " 4"),
        std::string::npos);
}

/**
 * Differential byte-identity: the affinity scheduler may reorder
 * dispatch, but results and hardware statistics of every workload -
 * including the new stress programs - must match the FIFO pool
 * field by field (Engine::load() still fully resets per job).
 */
TEST(SchedPool, AffinityMatchesFifoOnMixedWorkloads)
{
    const std::vector<std::string> ids = {
        "nreverse30", "qsort50", "trail40", "deeprec", "permall6",
    };
    // Repeat each workload so affinity actually batches.
    std::vector<std::string> sequence;
    for (int round = 0; round < 3; ++round)
        for (const auto &id : ids)
            sequence.push_back(id);

    auto runWith = [&sequence](SchedKind kind) {
        EnginePool::Config config;
        config.workers = 3;
        config.queueCapacity = 64;
        config.scheduler = kind;
        EnginePool pool(config);
        std::vector<std::future<JobOutcome>> futures;
        for (const auto &id : sequence) {
            auto fut = pool.submit(jobFor(id, "diff"));
            EXPECT_TRUE(fut.has_value());
            futures.push_back(std::move(*fut));
        }
        std::vector<JobOutcome> outs;
        outs.reserve(futures.size());
        for (auto &f : futures)
            outs.push_back(f.get());
        return outs;
    };

    std::vector<JobOutcome> fifo = runWith(SchedKind::Fifo);
    std::vector<JobOutcome> aff = runWith(SchedKind::Affinity);
    ASSERT_EQ(fifo.size(), aff.size());
    for (std::size_t i = 0; i < fifo.size(); ++i) {
        SCOPED_TRACE(sequence[i]);
        const PsiRun &f = fifo[i].run;
        const PsiRun &a = aff[i].run;
        EXPECT_TRUE(aff[i].ok());
        ASSERT_EQ(a.result.solutions.size(),
                  f.result.solutions.size());
        for (std::size_t k = 0; k < f.result.solutions.size(); ++k)
            EXPECT_EQ(a.result.solutions[k].str(),
                      f.result.solutions[k].str());
        EXPECT_EQ(a.result.output, f.result.output);
        EXPECT_EQ(a.result.status, f.result.status);
        EXPECT_EQ(a.result.inferences, f.result.inferences);
        EXPECT_EQ(a.result.steps, f.result.steps);
        EXPECT_EQ(a.result.timeNs, f.result.timeNs);
        EXPECT_EQ(a.stallNs, f.stallNs);
        EXPECT_EQ(a.seq.moduleSteps, f.seq.moduleSteps);
        EXPECT_EQ(a.seq.branchOps, f.seq.branchOps);
        EXPECT_EQ(a.cache.accesses, f.cache.accesses);
        EXPECT_EQ(a.cache.hits, f.cache.hits);
        EXPECT_EQ(a.cache.writeBacks, f.cache.writeBacks);
    }
}

/** A tenant over its quota is refused fail-fast with the dedicated
 *  TenantQuota reason (the wire maps it to OVERLOADED), while other
 *  tenants still get in. */
TEST(SchedPool, SubmitAsyncSurfacesTenantQuota)
{
    EnginePool::Config config;
    config.workers = 1;
    config.queueCapacity = 8;
    config.scheduler = SchedKind::Affinity;
    config.sched.tenantQuota = 1;
    EnginePool pool(config);

    // Wedge the single worker so queued jobs stay queued.
    auto wedge = pool.submit({loopProgram(), CacheConfig::psi(),
                              deadlineLimits(400)});
    ASSERT_TRUE(wedge.has_value());
    while (pool.queueDepth() > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    std::atomic<int> done{0};
    auto callback = [&done](JobOutcome) { ++done; };

    QueryJob greedy1 = jobFor("nreverse30", "greedy");
    greedy1.limits = deadlineLimits(3000);
    EXPECT_FALSE(
        pool.submitAsync(std::move(greedy1), callback).has_value());

    QueryJob greedy2 = jobFor("nreverse30", "greedy");
    greedy2.limits = deadlineLimits(3000);
    auto refused = pool.submitAsync(std::move(greedy2), callback);
    ASSERT_TRUE(refused.has_value());
    EXPECT_EQ(*refused, SubmitError::TenantQuota);

    // A different tenant is not affected by greedy's quota.
    QueryJob polite = jobFor("nreverse30", "polite");
    polite.limits = deadlineLimits(3000);
    EXPECT_FALSE(
        pool.submitAsync(std::move(polite), callback).has_value());

    EXPECT_EQ(wedge->get().status(), interp::RunStatus::Timeout);
    pool.shutdown(); // drains the accepted async jobs
    EXPECT_EQ(done.load(), 2);

    auto snap = pool.metrics();
    EXPECT_EQ(snap.sched.quotaRejects, 1u);
    EXPECT_EQ(snap.rejected, 1u);
}

} // namespace
