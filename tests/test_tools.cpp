/**
 * @file
 * Tests of the COLLECT / MAP / PMMS tool chain, including the two
 * strong cross-validation properties:
 *  - MAP tallies over a collected trace equal the sequencer's live
 *    counters;
 *  - a PMMS replay of a collected memory trace through the production
 *    cache configuration reproduces the engine's own cache stats.
 */

#include <gtest/gtest.h>

#include "psi.hpp"

using namespace psi;

namespace {

struct Collected
{
    interp::Engine eng;
    tools::Collector col;
    interp::RunResult result;
    micro::SeqStats seq;
    CacheStats cache;

    explicit Collected(const std::string &id)
    {
        const auto &p = programs::programById(id);
        eng.consult(p.source);
        result = tools::collectRun(eng, col, p.query);
        seq = eng.seq().stats();
        cache = eng.mem().cache().stats();
    }
};

} // namespace

TEST(Collector, CapturesBothStreams)
{
    Collected c("qsort50");
    EXPECT_TRUE(c.result.succeeded());
    EXPECT_EQ(c.col.steps().size(), c.seq.totalSteps());
    EXPECT_EQ(c.col.memAccesses().size(), c.cache.totalAccesses());
    EXPECT_GT(c.col.traceBytes(), 0u);
}

TEST(Collector, DetachStopsRecording)
{
    Collected c("nreverse30");
    std::size_t n = c.col.steps().size();
    auto r2 = c.eng.solve("true");
    EXPECT_TRUE(r2.succeeded());
    EXPECT_EQ(c.col.steps().size(), n);
}

TEST(Map, MatchesLiveModuleCounters)
{
    Collected c("puzzle8");
    tools::Map map(c.col.steps());
    EXPECT_EQ(map.totalSteps(), c.seq.totalSteps());
    for (int m = 0; m < micro::kNumModules; ++m) {
        auto mod = static_cast<micro::Module>(m);
        EXPECT_EQ(map.moduleSteps(mod), c.seq.moduleSteps[m])
            << micro::moduleName(mod);
    }
}

TEST(Map, MatchesLiveBranchCounters)
{
    Collected c("bup2");
    tools::Map map(c.col.steps());
    for (int b = 0; b < micro::kNumBranchOps; ++b) {
        auto op = static_cast<micro::BranchOp>(b);
        EXPECT_EQ(map.branchOps(op), c.seq.branchOps[b])
            << micro::branchOpName(op);
    }
}

TEST(Map, MatchesLiveWfModeCounters)
{
    Collected c("lcp2");
    tools::Map map(c.col.steps());
    for (int f = 0; f < micro::kNumWfFields; ++f) {
        for (int m = 0; m < micro::kNumWfModes; ++m) {
            EXPECT_EQ(map.wfMode(static_cast<micro::WfField>(f),
                                 static_cast<micro::WfMode>(m)),
                      c.seq.wfModes[f][m]);
        }
    }
}

TEST(Map, MatchesCacheCommandCounters)
{
    Collected c("harmonizer1");
    tools::Map map(c.col.steps());
    for (int cc = 0; cc < kNumCacheCmds; ++cc) {
        EXPECT_EQ(map.cacheSteps(static_cast<CacheCmd>(cc)),
                  c.seq.cacheSteps[cc]);
    }
}

TEST(Map, PercentagesSumSensibly)
{
    Collected c("window1");
    tools::Map map(c.col.steps());
    double total = 0.0;
    for (int m = 0; m < micro::kNumModules; ++m)
        total += map.modulePct(static_cast<micro::Module>(m));
    EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST(Pmms, ReplayReproducesEngineCacheStats)
{
    Collected c("qsort50");
    tools::Pmms pmms(c.col.memAccesses(), c.seq.totalSteps());
    auto r = pmms.replay(CacheConfig::psi());
    EXPECT_EQ(r.stats.totalAccesses(), c.cache.totalAccesses());
    EXPECT_EQ(r.stats.totalHits(), c.cache.totalHits());
    EXPECT_EQ(r.stats.readIns, c.cache.readIns);
    EXPECT_EQ(r.stats.writeBacks, c.cache.writeBacks);
    for (int a = 0; a < kNumAreas; ++a) {
        EXPECT_EQ(r.stats.areaHits(static_cast<Area>(a)),
                  c.cache.areaHits(static_cast<Area>(a)));
    }
    // And the reconstructed time matches the engine's model time.
    EXPECT_EQ(r.timeNs, c.result.timeNs);
}

TEST(Pmms, SweepCoversRequestedCapacities)
{
    Collected c("nreverse30");
    tools::Pmms pmms(c.col.memAccesses(), c.seq.totalSteps());
    auto rs = pmms.sweepCapacity({8, 64, 512, 8192});
    ASSERT_EQ(rs.size(), 4u);
    EXPECT_EQ(rs[0].config.capacityWords, 8u);
    EXPECT_EQ(rs[3].config.capacityWords, 8192u);
    // Monotone improvement across the sweep.
    for (std::size_t i = 1; i < rs.size(); ++i)
        EXPECT_GE(rs[i].improvementPct + 1e-9,
                  rs[i - 1].improvementPct);
}

TEST(Pmms, NoCacheTimeExceedsCachedTime)
{
    Collected c("tree");
    tools::Pmms pmms(c.col.memAccesses(), c.seq.totalSteps());
    auto r = pmms.replay(CacheConfig::psi());
    EXPECT_GT(pmms.noCacheTimeNs(), r.timeNs);
}
