/**
 * @file
 * Seeded mutation helpers for the wire-protocol fuzz harness.
 *
 * Every mutation draws from one SplitMix64, so a failing iteration
 * reproduces from (seed, iteration) alone - the harness prints both.
 * The mutators work on raw frame bytes (header + payload) and cover
 * the classic framing attacks:
 *
 *  - bit flips anywhere in the frame
 *  - length-field lies (header announces more/less than is there)
 *  - truncation at an arbitrary byte
 *  - splices of two valid frames (prefix of one + suffix of another)
 */

#ifndef PSI_TESTS_FUZZ_UTIL_HPP
#define PSI_TESTS_FUZZ_UTIL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "base/backoff.hpp"
#include "net/wire.hpp"

namespace psi {
namespace tests {

/** Deterministic byte-level mutator over a corpus of valid frames. */
class FrameMutator
{
  public:
    FrameMutator(std::uint64_t seed,
                 std::vector<std::string> corpus)
        : _rng(seed), _corpus(std::move(corpus))
    {}

    SplitMix64 &rng() { return _rng; }

    /** A pristine corpus frame, chosen at random. */
    const std::string &
    pick()
    {
        return _corpus[_rng.below(_corpus.size())];
    }

    /** Flip 1..8 random bits. */
    std::string
    flipBits(std::string frame)
    {
        std::uint64_t flips = _rng.range(1, 8);
        for (std::uint64_t i = 0; i < flips && !frame.empty(); ++i) {
            std::size_t at = _rng.below(frame.size());
            frame[at] = static_cast<char>(
                static_cast<unsigned char>(frame[at]) ^
                (1u << _rng.below(8)));
        }
        return frame;
    }

    /** Overwrite the u32 header with a lie: tiny, huge, or nearby. */
    std::string
    lieAboutLength(std::string frame)
    {
        if (frame.size() < net::kFrameHeaderBytes)
            return frame;
        std::uint32_t lie = 0;
        switch (_rng.below(3)) {
          case 0: // tiny (including the illegal zero)
            lie = static_cast<std::uint32_t>(_rng.below(4));
            break;
          case 1: // huge (often past kMaxFramePayload)
            lie = static_cast<std::uint32_t>(
                _rng.range(net::kMaxFramePayload,
                           net::kMaxFramePayload * 4ull));
            break;
          default: { // off by a little, either direction
            std::uint64_t real =
                frame.size() - net::kFrameHeaderBytes;
            std::uint64_t delta = _rng.range(1, 16);
            lie = static_cast<std::uint32_t>(
                _rng.below(2) ? real + delta
                              : (real > delta ? real - delta : 0));
            break;
          }
        }
        frame[0] = static_cast<char>(lie >> 24);
        frame[1] = static_cast<char>(lie >> 16);
        frame[2] = static_cast<char>(lie >> 8);
        frame[3] = static_cast<char>(lie);
        return frame;
    }

    /** Chop the frame at a random byte (possibly to nothing). */
    std::string
    truncate(std::string frame)
    {
        if (frame.empty())
            return frame;
        frame.resize(_rng.below(frame.size()));
        return frame;
    }

    /** Prefix of one valid frame glued to a suffix of another. */
    std::string
    splice()
    {
        const std::string &a = pick();
        const std::string &b = pick();
        std::string out = a.substr(0, _rng.below(a.size() + 1));
        out += b.substr(_rng.below(b.size() + 1));
        return out;
    }

    /** One mutated frame, mutation kind chosen at random. */
    std::string
    mutate()
    {
        switch (_rng.below(4)) {
          case 0:
            return flipBits(pick());
          case 1:
            return lieAboutLength(pick());
          case 2:
            return truncate(pick());
          default:
            return splice();
        }
    }

  private:
    SplitMix64 _rng;
    std::vector<std::string> _corpus;
};

} // namespace tests
} // namespace psi

#endif // PSI_TESTS_FUZZ_UTIL_HPP
