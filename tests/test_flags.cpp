/**
 * @file
 * Flags value parsing: numeric range checking.
 *
 * Regression tests for two silent-corruption bugs:
 *
 *  - parseU64's overflow check compared *after* multiplying, so an
 *    input that wraps modulo 2^64 back into range was accepted
 *    ("184467440737095516159" wraps to exactly 2^64 - 1).
 *  - opt(unsigned*) parsed through uint64 and then cast, silently
 *    truncating values above UINT_MAX ("4294967297" became 1).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "base/flags.hpp"
#include "base/mixspec.hpp"

namespace {

using psi::Flags;

/** Run one "--flag value" pair through a fresh parser. */
template <typename T>
bool
parseOne(const std::string &value, T *target)
{
    Flags flags("test [options]");
    flags.opt("--n", target, "value under test");
    std::string arg0 = "test";
    std::string arg1 = "--n";
    std::string arg2 = value;
    char *argv[] = {arg0.data(), arg1.data(), arg2.data(), nullptr};
    testing::internal::CaptureStderr();
    bool ok = flags.parse(3, argv);
    testing::internal::GetCapturedStderr();
    return ok;
}

TEST(Flags, U64AcceptsMaxValue)
{
    std::uint64_t n = 0;
    EXPECT_TRUE(parseOne("18446744073709551615", &n));
    EXPECT_EQ(n, std::numeric_limits<std::uint64_t>::max());
}

TEST(Flags, U64RejectsOneAboveMax)
{
    // 2^64: overflows the accumulator on the final digit.
    std::uint64_t n = 7;
    EXPECT_FALSE(parseOne("18446744073709551616", &n));
    EXPECT_EQ(n, 7u) << "target must be untouched on error";
}

TEST(Flags, U64RejectsValueThatWrapsBackIntoRange)
{
    // 21 digits: 2^64 + 159 wraps modulo 2^64 to exactly 2^64 - 1,
    // which the old post-multiply check (`next < value`) accepted.
    std::uint64_t n = 7;
    EXPECT_FALSE(parseOne("184467440737095516159", &n));
    EXPECT_EQ(n, 7u);
}

TEST(Flags, U64RejectsAbsurdlyLongNumber)
{
    std::uint64_t n = 0;
    EXPECT_FALSE(parseOne("99999999999999999999999999999999", &n));
}

TEST(Flags, UnsignedAcceptsMaxValue)
{
    unsigned n = 0;
    EXPECT_TRUE(parseOne("4294967295", &n));
    EXPECT_EQ(n, std::numeric_limits<unsigned>::max());
}

TEST(Flags, UnsignedRejectsValueAboveUintMax)
{
    // Fits in uint64 but not unsigned; used to truncate to 0.
    unsigned n = 7;
    EXPECT_FALSE(parseOne("4294967296", &n));
    EXPECT_EQ(n, 7u) << "target must be untouched on error";
}

TEST(Flags, UnsignedRejectsTruncationToSmallValue)
{
    // 2^32 + 1: the old cast silently produced 1 - the nastiest
    // flavor, since "--workers 4294967297" ran with one worker.
    unsigned n = 7;
    EXPECT_FALSE(parseOne("4294967297", &n));
    EXPECT_EQ(n, 7u);
}

TEST(Flags, RejectsNonNumericAndEmptyValues)
{
    std::uint64_t n = 7;
    EXPECT_FALSE(parseOne("12x", &n));
    EXPECT_FALSE(parseOne("", &n));
    EXPECT_EQ(n, 7u);
}

TEST(Flags, RepeatableOptAccumulatesInOrder)
{
    std::vector<std::string> backends;
    Flags flags("test [options]");
    flags.opt("--backend", &backends, "repeatable endpoint");
    std::string args[] = {"test",      "--backend", "a:1",
                          "--backend", "b:2",       "--backend",
                          "b:2"};
    char *argv[8] = {};
    for (int i = 0; i < 7; ++i)
        argv[i] = args[i].data();
    ASSERT_TRUE(flags.parse(7, argv));
    // Every occurrence appends - order preserved, duplicates kept
    // (the caller decides what repeats mean).
    ASSERT_EQ(backends.size(), 3u);
    EXPECT_EQ(backends[0], "a:1");
    EXPECT_EQ(backends[1], "b:2");
    EXPECT_EQ(backends[2], "b:2");
}

TEST(Flags, RepeatableOptAbsentLeavesVectorEmpty)
{
    std::vector<std::string> backends;
    Flags flags("test [options]");
    flags.opt("--backend", &backends, "repeatable endpoint");
    std::string arg0 = "test";
    char *argv[] = {arg0.data(), nullptr};
    EXPECT_TRUE(flags.parse(1, argv));
    EXPECT_TRUE(backends.empty());
}

// --mix spec parsing.  The old net_throughput parser ran shares
// through strtoull, which wrapped "-3" to 2^64 - 3 and accepted
// trailing junk ("3x" parsed as 3) - a negative share then exploded
// the weighted-round-robin pattern.  parseMixSpec must reject every
// malformed share/weight with an actionable message and leave the
// output empty.

using psi::mixspec::MixEntry;
using psi::mixspec::parseMixSpec;
using psi::mixspec::wrrPattern;

TEST(MixSpec, ParsesSharesAndWeights)
{
    std::vector<MixEntry> entries;
    std::string error;
    ASSERT_TRUE(
        parseMixSpec("nreverse30:3:2,qsort50:1,tree", entries, error))
        << error;
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].workload, "nreverse30");
    EXPECT_EQ(entries[0].share, 3u);
    EXPECT_EQ(entries[0].weight, 2u);
    EXPECT_EQ(entries[1].workload, "qsort50");
    EXPECT_EQ(entries[1].share, 1u);
    EXPECT_EQ(entries[1].weight, 1u);
    EXPECT_EQ(entries[2].workload, "tree");
    EXPECT_EQ(entries[2].share, 1u);
}

TEST(MixSpec, RejectsNegativeShare)
{
    // The strtoull bug: "-3" wrapped to 18446744073709551613.
    std::vector<MixEntry> entries;
    std::string error;
    EXPECT_FALSE(parseMixSpec("nreverse30:-3", entries, error));
    EXPECT_TRUE(entries.empty()) << "output must be cleared";
    EXPECT_NE(error.find("nreverse30:-3"), std::string::npos)
        << "error must name the bad entry: " << error;
}

TEST(MixSpec, RejectsZeroShare)
{
    std::vector<MixEntry> entries;
    std::string error;
    EXPECT_FALSE(parseMixSpec("nreverse30:0", entries, error));
    EXPECT_TRUE(entries.empty());
}

TEST(MixSpec, RejectsTrailingJunkInShare)
{
    // strtoull stopped at the junk and returned 3.
    std::vector<MixEntry> entries;
    std::string error;
    EXPECT_FALSE(parseMixSpec("nreverse30:3x", entries, error));
    EXPECT_TRUE(entries.empty());
}

TEST(MixSpec, RejectsOversizedShare)
{
    std::vector<MixEntry> entries;
    std::string error;
    EXPECT_FALSE(parseMixSpec("nreverse30:1000001", entries, error));
    EXPECT_NE(error.find("1000000"), std::string::npos)
        << "error must state the cap: " << error;
}

TEST(MixSpec, RejectsEmptyEntryAndEmptyWorkload)
{
    std::vector<MixEntry> entries;
    std::string error;
    EXPECT_FALSE(parseMixSpec("nreverse30:2,,tree", entries, error));
    EXPECT_FALSE(parseMixSpec(":2", entries, error));
    EXPECT_FALSE(parseMixSpec("", entries, error));
}

TEST(MixSpec, RejectsTooManyFields)
{
    std::vector<MixEntry> entries;
    std::string error;
    EXPECT_FALSE(parseMixSpec("nreverse30:1:2:3", entries, error));
}

TEST(MixSpec, RejectsBadWeight)
{
    std::vector<MixEntry> entries;
    std::string error;
    EXPECT_FALSE(parseMixSpec("nreverse30:1:-2", entries, error));
    EXPECT_FALSE(parseMixSpec("nreverse30:1:0", entries, error));
    EXPECT_NE(error.find("weight"), std::string::npos) << error;
}

TEST(MixSpec, WrrPatternInterleavesByShare)
{
    std::vector<MixEntry> entries;
    std::string error;
    ASSERT_TRUE(parseMixSpec("a:3,b:1", entries, error)) << error;
    std::vector<std::uint32_t> pattern = wrrPattern(entries);
    ASSERT_EQ(pattern.size(), 4u);
    // Shares 3:1 -> lane 0 three times, lane 1 once, interleaved
    // (not a 3-run then b) so short windows see both tenants.
    EXPECT_EQ(std::count(pattern.begin(), pattern.end(), 0u), 3);
    EXPECT_EQ(std::count(pattern.begin(), pattern.end(), 1u), 1);
}

TEST(MixSpec, WrrPatternSingleLane)
{
    std::vector<MixEntry> entries;
    std::string error;
    ASSERT_TRUE(parseMixSpec("a", entries, error)) << error;
    std::vector<std::uint32_t> pattern = wrrPattern(entries);
    ASSERT_EQ(pattern.size(), 1u);
    EXPECT_EQ(pattern[0], 0u);
}

} // namespace
