/**
 * @file
 * Flags value parsing: numeric range checking.
 *
 * Regression tests for two silent-corruption bugs:
 *
 *  - parseU64's overflow check compared *after* multiplying, so an
 *    input that wraps modulo 2^64 back into range was accepted
 *    ("184467440737095516159" wraps to exactly 2^64 - 1).
 *  - opt(unsigned*) parsed through uint64 and then cast, silently
 *    truncating values above UINT_MAX ("4294967297" became 1).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "base/flags.hpp"

namespace {

using psi::Flags;

/** Run one "--flag value" pair through a fresh parser. */
template <typename T>
bool
parseOne(const std::string &value, T *target)
{
    Flags flags("test [options]");
    flags.opt("--n", target, "value under test");
    std::string arg0 = "test";
    std::string arg1 = "--n";
    std::string arg2 = value;
    char *argv[] = {arg0.data(), arg1.data(), arg2.data(), nullptr};
    testing::internal::CaptureStderr();
    bool ok = flags.parse(3, argv);
    testing::internal::GetCapturedStderr();
    return ok;
}

TEST(Flags, U64AcceptsMaxValue)
{
    std::uint64_t n = 0;
    EXPECT_TRUE(parseOne("18446744073709551615", &n));
    EXPECT_EQ(n, std::numeric_limits<std::uint64_t>::max());
}

TEST(Flags, U64RejectsOneAboveMax)
{
    // 2^64: overflows the accumulator on the final digit.
    std::uint64_t n = 7;
    EXPECT_FALSE(parseOne("18446744073709551616", &n));
    EXPECT_EQ(n, 7u) << "target must be untouched on error";
}

TEST(Flags, U64RejectsValueThatWrapsBackIntoRange)
{
    // 21 digits: 2^64 + 159 wraps modulo 2^64 to exactly 2^64 - 1,
    // which the old post-multiply check (`next < value`) accepted.
    std::uint64_t n = 7;
    EXPECT_FALSE(parseOne("184467440737095516159", &n));
    EXPECT_EQ(n, 7u);
}

TEST(Flags, U64RejectsAbsurdlyLongNumber)
{
    std::uint64_t n = 0;
    EXPECT_FALSE(parseOne("99999999999999999999999999999999", &n));
}

TEST(Flags, UnsignedAcceptsMaxValue)
{
    unsigned n = 0;
    EXPECT_TRUE(parseOne("4294967295", &n));
    EXPECT_EQ(n, std::numeric_limits<unsigned>::max());
}

TEST(Flags, UnsignedRejectsValueAboveUintMax)
{
    // Fits in uint64 but not unsigned; used to truncate to 0.
    unsigned n = 7;
    EXPECT_FALSE(parseOne("4294967296", &n));
    EXPECT_EQ(n, 7u) << "target must be untouched on error";
}

TEST(Flags, UnsignedRejectsTruncationToSmallValue)
{
    // 2^32 + 1: the old cast silently produced 1 - the nastiest
    // flavor, since "--workers 4294967297" ran with one worker.
    unsigned n = 7;
    EXPECT_FALSE(parseOne("4294967297", &n));
    EXPECT_EQ(n, 7u);
}

TEST(Flags, RejectsNonNumericAndEmptyValues)
{
    std::uint64_t n = 7;
    EXPECT_FALSE(parseOne("12x", &n));
    EXPECT_FALSE(parseOne("", &n));
    EXPECT_EQ(n, 7u);
}

TEST(Flags, RepeatableOptAccumulatesInOrder)
{
    std::vector<std::string> backends;
    Flags flags("test [options]");
    flags.opt("--backend", &backends, "repeatable endpoint");
    std::string args[] = {"test",      "--backend", "a:1",
                          "--backend", "b:2",       "--backend",
                          "b:2"};
    char *argv[8] = {};
    for (int i = 0; i < 7; ++i)
        argv[i] = args[i].data();
    ASSERT_TRUE(flags.parse(7, argv));
    // Every occurrence appends - order preserved, duplicates kept
    // (the caller decides what repeats mean).
    ASSERT_EQ(backends.size(), 3u);
    EXPECT_EQ(backends[0], "a:1");
    EXPECT_EQ(backends[1], "b:2");
    EXPECT_EQ(backends[2], "b:2");
}

TEST(Flags, RepeatableOptAbsentLeavesVectorEmpty)
{
    std::vector<std::string> backends;
    Flags flags("test [options]");
    flags.opt("--backend", &backends, "repeatable endpoint");
    std::string arg0 = "test";
    char *argv[] = {arg0.data(), nullptr};
    EXPECT_TRUE(flags.parse(1, argv));
    EXPECT_TRUE(backends.empty());
}

} // namespace
