/**
 * @file
 * Firmware-option (ablation) correctness and direction tests: every
 * feature toggle must preserve semantics exactly, and the
 * performance deltas must point the way the paper's discussion
 * says.
 */

#include <gtest/gtest.h>

#include "psi.hpp"

using namespace psi;
using namespace psi::interp;

namespace {

std::vector<std::string>
solutionsWith(const FirmwareOptions &fw, const std::string &program,
              const std::string &query, int max = 50)
{
    Engine eng(CacheConfig::psi(), fw);
    eng.consult(program);
    RunLimits lim;
    lim.maxSolutions = max;
    auto r = eng.solve(query, lim);
    std::vector<std::string> out;
    for (const auto &s : r.solutions) {
        std::string line;
        for (const auto &kv : s.bindings) {
            if (!line.empty())
                line += " ";
            line += kv.first + "=" + kv.second->canonicalStr();
        }
        out.push_back(line.empty() ? "yes" : line);
    }
    return out;
}

/** All four single-feature variants. */
std::vector<FirmwareOptions>
variants()
{
    FirmwareOptions no_ws;
    no_ws.writeStackCommand = false;
    FirmwareOptions no_tb;
    no_tb.trailBuffer = false;
    FirmwareOptions no_fb;
    no_fb.frameBuffers = false;
    FirmwareOptions idx;
    idx.firstArgIndexing = true;
    FirmwareOptions all_off;
    all_off.writeStackCommand = false;
    all_off.trailBuffer = false;
    all_off.frameBuffers = false;
    all_off.firstArgIndexing = true;
    return {no_ws, no_tb, no_fb, idx, all_off};
}

const char *kProg =
    "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).\n"
    "pick(1). pick(2). pick(3).\n"
    "r(0, []).\n"
    "r(N, [C|Cs]) :- N > 0, pick(C), N1 is N - 1, r(N1, Cs).\n"
    "t(a, 1). t(b, 2). t(c, 3).\n"
    "m(1) :- !. m(2).\n"
    "loc(X, Y) :- q1(X), q2(X, Y). q1(5). q2(5, ok).";

} // namespace

TEST(Ablations, AllVariantsPreserveSemantics)
{
    FirmwareOptions base;
    const char *queries[] = {
        "app(X, Y, [1,2,3])",
        "r(2, L)",
        "pick(A), pick(B), A < B",
        "t(b, V)",
        "t(K, V)",
        "m(X)",
        "loc(X, Y)",
    };
    for (const char *q : queries) {
        auto expect = solutionsWith(base, kProg, q);
        int vi = 0;
        for (const auto &fw : variants()) {
            EXPECT_EQ(solutionsWith(fw, kProg, q), expect)
                << "variant " << vi << " query " << q;
            ++vi;
        }
    }
}

TEST(Ablations, WorkloadsUnchangedUnderIndexing)
{
    FirmwareOptions idx;
    idx.firstArgIndexing = true;
    for (const char *id : {"queens1", "bup2", "harmonizer2", "lcp2"}) {
        const auto &p = programs::programById(id);
        Engine a;
        a.consult(p.source);
        Engine b(CacheConfig::psi(), idx);
        b.consult(p.source);
        auto ra = a.solve(p.query);
        auto rb = b.solve(p.query);
        ASSERT_EQ(ra.solutions.size(), rb.solutions.size()) << id;
        for (std::size_t i = 0; i < ra.solutions.size(); ++i) {
            EXPECT_EQ(ra.solutions[i].str(), rb.solutions[i].str())
                << id;
        }
    }
}

TEST(Ablations, IndexingNeverSlower)
{
    // The runtime first-argument probe only has clauses to skip on a
    // linear chain; with compile-time indexing (the default) the
    // chain is already filtered and the probe is pure overhead.  Pin
    // both engines to unindexed images so the ablation keeps
    // measuring the probe itself.
    kl0::CompileOptions plain;
    plain.firstArgIndexing = false;
    plain.specializeBuiltins = false;
    FirmwareOptions idx;
    idx.firstArgIndexing = true;
    for (const char *id : {"nreverse30", "bup2", "lcp2"}) {
        const auto &p = programs::programById(id);
        Engine a;
        a.setCompileOptions(plain);
        a.consult(p.source);
        Engine b(CacheConfig::psi(), idx);
        b.setCompileOptions(plain);
        b.consult(p.source);
        auto ta = a.solve(p.query).timeNs;
        auto tb = b.solve(p.query).timeNs;
        // Allow 2% tolerance (probe overhead on tiny predicates).
        EXPECT_LE(tb, ta + ta / 50) << id;
    }
}

TEST(Ablations, NoWriteStackCostsTime)
{
    FirmwareOptions no_ws;
    no_ws.writeStackCommand = false;
    const auto &p = programs::programById("qsort50");
    Engine a;
    a.consult(p.source);
    Engine b(CacheConfig::psi(), no_ws);
    b.consult(p.source);
    auto ta = a.solve(p.query);
    auto tb = b.solve(p.query);
    // Same step count, more memory stalls (write misses now fetch).
    EXPECT_EQ(ta.steps, tb.steps);
    EXPECT_GT(tb.timeNs, ta.timeNs);
    // And no write-stack commands appear at all.
    EXPECT_EQ(b.mem().cache().stats().cmdAccesses(
                  CacheCmd::WriteStack),
              0u);
}

TEST(Ablations, NoFrameBuffersRaisesLocalTraffic)
{
    FirmwareOptions no_fb;
    no_fb.frameBuffers = false;
    const auto &p = programs::programById("puzzle8");
    Engine a;
    a.consult(p.source);
    Engine b(CacheConfig::psi(), no_fb);
    b.consult(p.source);
    auto ra = a.solve(p.query);
    auto rb = b.solve(p.query);
    ASSERT_TRUE(ra.succeeded());
    ASSERT_TRUE(rb.succeeded());
    EXPECT_GT(b.mem().cache().stats().areaAccesses(Area::Local),
              a.mem().cache().stats().areaAccesses(Area::Local));
}

TEST(Ablations, NoTrailBufferMovesTrailToMemory)
{
    FirmwareOptions no_tb;
    no_tb.trailBuffer = false;
    const auto &p = programs::programById("queens1");
    Engine a;
    a.consult(p.source);
    Engine b(CacheConfig::psi(), no_tb);
    b.consult(p.source);
    auto ra = a.solve(p.query);
    auto rb = b.solve(p.query);
    ASSERT_TRUE(ra.succeeded() && rb.succeeded());
    // Every trail push now goes straight to the trail stack.
    EXPECT_GE(b.mem().cache().stats().areaAccesses(Area::Trail),
              a.mem().cache().stats().areaAccesses(Area::Trail));
}
