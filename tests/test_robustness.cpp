/**
 * @file
 * Robustness properties: malformed input must raise FatalError (and
 * never crash), deterministic pseudo-random token soup included; the
 * engines must survive pathological-but-legal programs.
 */

#include <gtest/gtest.h>

#include "psi.hpp"

using namespace psi;

namespace {

/** xorshift32: deterministic input generator for the soup tests. */
std::uint32_t
next(std::uint32_t &s)
{
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    return s;
}

} // namespace

TEST(Robustness, MalformedClausesThrowNotCrash)
{
    const char *bad[] = {
        "f(.",       "f(a))",     "f(a",      "[1,2",
        "f(a) :- .", "f().",     "f(a,).",   "f(|).",
        "f(a) g(b).", "'unterminated", "/* open", "f(a)extra.",
        "1.",        "X.",
    };
    for (const char *text : bad) {
        kl0::Program p;
        EXPECT_THROW(p.consult(text), FatalError) << text;
    }
}

TEST(Robustness, BadGoalsThrowAtLoad)
{
    interp::Engine eng;
    EXPECT_THROW(eng.consult("f(a) :- 1."), FatalError);
    EXPECT_THROW(eng.consult("f(X) :- X."), FatalError);
}

TEST(Robustness, TokenSoupNeverCrashes)
{
    const char alphabet[] =
        "abzXY_09 ()[]|,.'\\+-*/<>=:;!@#&{}\n\t";
    std::uint32_t seed = 0xC0FFEE;
    int parsed_ok = 0;
    for (int round = 0; round < 300; ++round) {
        std::string text;
        int len = 1 + static_cast<int>(next(seed) % 60);
        for (int i = 0; i < len; ++i)
            text.push_back(
                alphabet[next(seed) % (sizeof(alphabet) - 1)]);
        try {
            kl0::Program p;
            p.consult(text);
            ++parsed_ok;
        } catch (const FatalError &) {
            // expected for most soups
        }
    }
    // The property is "no crash"; a few soups may legitimately parse.
    SUCCEED() << parsed_ok << " soups parsed";
}

TEST(Robustness, DeepNestingParsesAndRuns)
{
    // 200 levels of f(...) nesting.
    std::string term = "x";
    for (int i = 0; i < 200; ++i)
        term = "f(" + term + ")";
    interp::Engine eng;
    eng.consult("deep(" + term + ").");
    auto r = eng.solve("deep(X), deep(X)");
    EXPECT_TRUE(r.succeeded());
}

TEST(Robustness, LongListsRoundTrip)
{
    std::string list = "[0";
    for (int i = 1; i < 800; ++i)
        list += "," + std::to_string(i);
    list += "]";
    interp::Engine eng;
    eng.consult(programs::librarySource());
    auto r = eng.solve("length(" + list + ", N)");
    ASSERT_TRUE(r.succeeded());
    EXPECT_EQ(r.solutions[0].bindings.at("N")->value(), 800);
}

TEST(Robustness, SelfUnificationOfLargeTerms)
{
    interp::Engine eng;
    eng.consult("eq(X, X).");
    std::string t = "g(1)";
    for (int i = 0; i < 12; ++i)
        t = "h(" + t + "," + t + ")";
    // ~4K-node ground term unified against an equal copy: must
    // finish well within the step limit.
    interp::RunLimits lim;
    lim.maxSteps = 50'000'000;
    auto r = eng.solve("eq(" + t + ", " + t + ")", lim);
    EXPECT_TRUE(r.succeeded());
}

TEST(Robustness, ZeroArityEverything)
{
    interp::Engine eng;
    eng.consult("a. b :- a. c :- b, a.");
    EXPECT_TRUE(eng.solve("c").succeeded());
}

TEST(Robustness, EmptyProgramAndQueries)
{
    interp::Engine eng;
    eng.consult("");
    EXPECT_TRUE(eng.solve("true").succeeded());
    EXPECT_FALSE(eng.solve("fail").succeeded());
}

TEST(Robustness, BaselineMalformedAlsoThrows)
{
    baseline::WamEngine eng;
    EXPECT_THROW(eng.consult("f(."), FatalError);
    EXPECT_THROW(eng.consult("1."), FatalError);
}
