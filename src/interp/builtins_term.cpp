/**
 * @file
 * Term inspection / construction built-ins (functor/3, arg/3, =../2),
 * the standard-order comparison used by ==/2 and @</2, and the
 * write/1 output firmware.
 */

#include "interp/engine.hpp"

#include "base/logging.hpp"
#include "base/strutil.hpp"

namespace psi {
namespace interp {

namespace {

constexpr auto kScr = micro::WfMode::Direct00_0F;
constexpr auto kReg = micro::WfMode::Direct10_3F;
constexpr auto kNoWf = micro::WfMode::None;

} // namespace

bool
Engine::termCompare(const TaggedWord &a, const TaggedWord &b, int &out)
{
    _seq.texture(Module::Built, 2);
    Deref da = deref(a, Module::Built);
    Deref db = deref(b, Module::Built);
    _seq.step(Module::Built, BranchOp::T1CaseTag, kScr, kScr, kNoWf);

    auto order = [](const Deref &d) {
        if (d.unbound)
            return 0;
        switch (d.word.tag) {
          case Tag::Int: return 1;
          case Tag::Atom:
          case Tag::Nil: return 2;
          case Tag::Vector: return 3;
          case Tag::List:
          case Tag::Struct: return 4;
          default: return 5;
        }
    };

    int oa = order(da);
    int ob = order(db);
    if (oa != ob) {
        out = oa < ob ? -1 : 1;
        return true;
    }

    switch (oa) {
      case 0: {  // both unbound: compare cell addresses
        std::uint32_t pa = da.cell.pack();
        std::uint32_t pb = db.cell.pack();
        out = pa == pb ? 0 : (pa < pb ? -1 : 1);
        return true;
      }
      case 1: {
        std::int32_t va = da.word.asInt();
        std::int32_t vb = db.word.asInt();
        out = va == vb ? 0 : (va < vb ? -1 : 1);
        return true;
      }
      case 2: {
        const std::string &na = da.word.tag == Tag::Nil
                                    ? _syms.atomName(_syms.nilAtom())
                                    : _syms.atomName(da.word.data);
        const std::string &nb = db.word.tag == Tag::Nil
                                    ? _syms.atomName(_syms.nilAtom())
                                    : _syms.atomName(db.word.data);
        out = na.compare(nb);
        out = out == 0 ? 0 : (out < 0 ? -1 : 1);
        return true;
      }
      case 3: {
        out = da.word.data == db.word.data
                  ? 0
                  : (da.word.data < db.word.data ? -1 : 1);
        return true;
      }
      case 4: {
        // Compounds: arity, then name, then arguments left to right.
        auto shape = [this](const Deref &d, std::uint32_t &arity,
                            std::string &name, LogicalAddr &args) {
            if (d.word.tag == Tag::List) {
                arity = 2;
                name = ".";
                args = LogicalAddr::unpack(d.word.data);
                return;
            }
            LogicalAddr a = LogicalAddr::unpack(d.word.data);
            TaggedWord f = _seq.readMem(Module::Built, a,
                                        BranchOp::T1Nop, kScr, kScr);
            arity = _syms.functorArity(f.data);
            name = _syms.functorName(f.data);
            args = a.plus(1);
        };
        std::uint32_t na = 0;
        std::uint32_t nb = 0;
        std::string fa;
        std::string fb;
        LogicalAddr aa;
        LogicalAddr ab;
        shape(da, na, fa, aa);
        shape(db, nb, fb, ab);
        if (na != nb) {
            out = na < nb ? -1 : 1;
            return true;
        }
        int c = fa.compare(fb);
        if (c != 0) {
            out = c < 0 ? -1 : 1;
            return true;
        }
        for (std::uint32_t k = 0; k < na; ++k) {
            TaggedWord va = _seq.readMem(Module::Built, aa.plus(k),
                                         BranchOp::T1Nop, kScr, kScr);
            TaggedWord vb = _seq.readMem(Module::Built, ab.plus(k),
                                         BranchOp::T1Nop, kScr, kScr);
            if (!termCompare(va, vb, out))
                return false;
            if (out != 0)
                return true;
        }
        out = 0;
        return true;
      }
      default:
        return false;
    }
}

bool
Engine::structuralEq(const TaggedWord &a, const TaggedWord &b)
{
    int c = 0;
    return termCompare(a, b, c) && c == 0;
}

void
Engine::writeTerm(const TaggedWord &w, int depth)
{
    _seq.texture(Module::Built, 2);
    auto put = [this](const std::string &s) {
        if (_out.size() < _maxOutputBytes)
            _out += s;
    };

    if (depth > 10000) {
        put("...");
        return;
    }

    Deref d = deref(w, Module::Built);
    _seq.step(Module::Built, BranchOp::T1CaseTag, kScr, kNoWf, kNoWf);

    if (d.unbound) {
        put("_G" + std::to_string(d.cell.pack()));
        return;
    }
    switch (d.word.tag) {
      case Tag::Atom:
        put(_syms.atomName(d.word.data));
        return;
      case Tag::Int:
        put(std::to_string(d.word.asInt()));
        return;
      case Tag::Nil:
        put("[]");
        return;
      case Tag::Vector:
        put("$vector");
        return;
      case Tag::List: {
        put("[");
        TaggedWord cur = d.word;
        bool first = true;
        for (;;) {
            LogicalAddr a = LogicalAddr::unpack(cur.data);
            if (!first)
                put(",");
            first = false;
            TaggedWord car = _seq.readMem(Module::Built, a,
                                          BranchOp::T1Nop, kScr, kScr);
            writeTerm(car, depth + 1);
            TaggedWord cdr = _seq.readMem(Module::Built, a.plus(1),
                                          BranchOp::T1CaseTag, kScr,
                                          kScr);
            Deref dc = deref(cdr, Module::Built);
            if (dc.unbound) {
                put("|_G" + std::to_string(dc.cell.pack()));
                break;
            }
            if (dc.word.tag == Tag::Nil)
                break;
            if (dc.word.tag == Tag::List) {
                cur = dc.word;
                continue;
            }
            put("|");
            writeTerm(dc.word, depth + 1);
            break;
        }
        put("]");
        return;
      }
      case Tag::Struct: {
        LogicalAddr a = LogicalAddr::unpack(d.word.data);
        TaggedWord f = _seq.readMem(Module::Built, a, BranchOp::T1Nop,
                                    kScr, kScr);
        put(_syms.functorName(f.data));
        put("(");
        std::uint32_t n = _syms.functorArity(f.data);
        for (std::uint32_t k = 1; k <= n; ++k) {
            if (k > 1)
                put(",");
            TaggedWord v = _seq.readMem(Module::Built, a.plus(k),
                                        BranchOp::T1Nop, kScr, kScr);
            writeTerm(v, depth + 1);
        }
        put(")");
        return;
      }
      default:
        put("?");
        return;
    }
}

bool
Engine::builtinFunctor()
{
    Deref d = deref(readA(0, Module::Built), Module::Built);

    if (!d.unbound) {
        TaggedWord fw;
        std::int32_t arity = 0;
        switch (d.word.tag) {
          case Tag::Atom:
          case Tag::Int:
            fw = d.word;
            break;
          case Tag::Nil:
            fw = {Tag::Nil, 0};
            break;
          case Tag::List:
            fw = {Tag::Atom, _syms.atom(".")};
            arity = 2;
            break;
          case Tag::Struct: {
            LogicalAddr a = LogicalAddr::unpack(d.word.data);
            TaggedWord f = _seq.readMem(Module::Built, a,
                                        BranchOp::T1Nop, kScr, kScr);
            fw = {Tag::Atom, _syms.atom(_syms.functorName(f.data))};
            arity =
                static_cast<std::int32_t>(_syms.functorArity(f.data));
            break;
          }
          default:
            return false;
        }
        return unify(readA(1, Module::Built), fw) &&
               unify(readA(2, Module::Built),
                     TaggedWord::makeInt(arity));
    }

    // Construction mode.
    Deref df = deref(readA(1, Module::Built), Module::Built);
    Deref dn = deref(readA(2, Module::Built), Module::Built);
    if (df.unbound || dn.unbound || dn.word.tag != Tag::Int)
        return false;
    std::int32_t n = dn.word.asInt();
    if (n < 0 || n > 255)
        return false;
    if (n == 0) {
        bind(d.cell, df.word, Module::Built);
        return true;
    }
    if (df.word.tag != Tag::Atom)
        return false;

    const std::string &name = _syms.atomName(df.word.data);
    std::uint32_t base = _gt;
    if (name == "." && n == 2) {
        for (int k = 0; k < 2; ++k) {
            LogicalAddr cell(Area::Global, _gt);
            _seq.pushMem(Module::Built, cell,
                         {Tag::Ref, cell.pack()}, BranchOp::T3Nop,
                         kScr);
            ++_gt;
        }
        bind(d.cell, {Tag::List, LogicalAddr(Area::Global, base).pack()},
             Module::Built);
        return true;
    }
    std::uint32_t f =
        _syms.functor(name, static_cast<std::uint32_t>(n));
    _seq.pushMem(Module::Built, LogicalAddr(Area::Global, _gt),
                 {Tag::Functor, f}, BranchOp::T3Nop, kScr);
    ++_gt;
    for (std::int32_t k = 0; k < n; ++k) {
        LogicalAddr cell(Area::Global, _gt);
        _seq.pushMem(Module::Built, cell, {Tag::Ref, cell.pack()},
                     BranchOp::T3Nop, kScr);
        ++_gt;
    }
    bind(d.cell, {Tag::Struct, LogicalAddr(Area::Global, base).pack()},
         Module::Built);
    return true;
}

bool
Engine::builtinArg()
{
    Deref dn = deref(readA(0, Module::Built), Module::Built);
    Deref dt = deref(readA(1, Module::Built), Module::Built);
    if (dn.unbound || dn.word.tag != Tag::Int || dt.unbound)
        return false;
    std::int32_t n = dn.word.asInt();
    if (n < 1)
        return false;

    if (dt.word.tag == Tag::List) {
        if (n > 2)
            return false;
        LogicalAddr a = LogicalAddr::unpack(dt.word.data);
        TaggedWord v = _seq.readMem(
            Module::Built,
            a.plus(static_cast<std::uint32_t>(n - 1)),
            BranchOp::T1Nop, kScr, kReg);
        return unify(readA(2, Module::Built), v);
    }
    if (dt.word.tag == Tag::Struct) {
        LogicalAddr a = LogicalAddr::unpack(dt.word.data);
        TaggedWord f = _seq.readMem(Module::Built, a,
                                    BranchOp::T1CondFalse, kScr, kScr);
        if (n > static_cast<std::int32_t>(_syms.functorArity(f.data)))
            return false;
        TaggedWord v = _seq.readMem(
            Module::Built, a.plus(static_cast<std::uint32_t>(n)),
            BranchOp::T1Nop, kScr, kReg);
        return unify(readA(2, Module::Built), v);
    }
    return false;
}

bool
Engine::builtinUniv()
{
    Deref dt = deref(readA(0, Module::Built), Module::Built);

    if (!dt.unbound) {
        // Decomposition: T =.. [F | Args].
        std::vector<TaggedWord> items;
        switch (dt.word.tag) {
          case Tag::Atom:
          case Tag::Int:
          case Tag::Nil:
            items.push_back(dt.word);
            break;
          case Tag::List: {
            LogicalAddr a = LogicalAddr::unpack(dt.word.data);
            items.push_back({Tag::Atom, _syms.atom(".")});
            for (int k = 0; k < 2; ++k) {
                items.push_back(_seq.readMem(Module::Built, a.plus(k),
                                             BranchOp::T1Nop, kScr,
                                             kScr));
            }
            break;
          }
          case Tag::Struct: {
            LogicalAddr a = LogicalAddr::unpack(dt.word.data);
            TaggedWord f = _seq.readMem(Module::Built, a,
                                        BranchOp::T1Nop, kScr, kScr);
            items.push_back(
                {Tag::Atom, _syms.atom(_syms.functorName(f.data))});
            std::uint32_t n = _syms.functorArity(f.data);
            for (std::uint32_t k = 1; k <= n; ++k) {
                items.push_back(_seq.readMem(Module::Built, a.plus(k),
                                             BranchOp::T1Nop, kScr,
                                             kScr));
            }
            break;
          }
          default:
            return false;
        }
        // Build the list back to front on the global stack.
        TaggedWord tail = {Tag::Nil, 0};
        for (auto it = items.rbegin(); it != items.rend(); ++it) {
            std::uint32_t base = _gt;
            _seq.pushMem(Module::Built, LogicalAddr(Area::Global, _gt),
                         *it, BranchOp::T3Nop, kScr);
            ++_gt;
            _seq.pushMem(Module::Built, LogicalAddr(Area::Global, _gt),
                         tail, BranchOp::T3Nop, kScr);
            ++_gt;
            tail = {Tag::List, LogicalAddr(Area::Global, base).pack()};
        }
        return unify(readA(1, Module::Built), tail);
    }

    // Construction: walk the list into functor + args.
    Deref dl = deref(readA(1, Module::Built), Module::Built);
    if (dl.unbound || dl.word.tag != Tag::List)
        return false;
    std::vector<TaggedWord> items;
    TaggedWord cur = dl.word;
    while (true) {
        LogicalAddr a = LogicalAddr::unpack(cur.data);
        items.push_back(_seq.readMem(Module::Built, a,
                                     BranchOp::T1Nop, kScr, kScr));
        TaggedWord cdr = _seq.readMem(Module::Built, a.plus(1),
                                      BranchOp::T1CaseTag, kScr, kScr);
        Deref dc = deref(cdr, Module::Built);
        if (dc.unbound)
            return false;
        if (dc.word.tag == Tag::Nil)
            break;
        if (dc.word.tag != Tag::List)
            return false;
        cur = dc.word;
        if (items.size() > 260)
            return false;
    }

    Deref dh = deref(items[0], Module::Built);
    if (dh.unbound)
        return false;
    std::uint32_t n = static_cast<std::uint32_t>(items.size()) - 1;
    if (n == 0) {
        bind(dt.cell, dh.word, Module::Built);
        return true;
    }
    if (dh.word.tag != Tag::Atom && dh.word.tag != Tag::Nil)
        return false;
    const std::string &name = dh.word.tag == Tag::Nil
                                  ? _syms.atomName(_syms.nilAtom())
                                  : _syms.atomName(dh.word.data);

    std::uint32_t base = _gt;
    if (name == "." && n == 2) {
        for (std::uint32_t k = 1; k <= 2; ++k) {
            Deref dk = deref(items[k], Module::Built);
            _seq.pushMem(Module::Built, LogicalAddr(Area::Global, _gt),
                         dk.unbound ? TaggedWord{Tag::Ref,
                                                 dk.cell.pack()}
                                    : dk.word,
                         BranchOp::T3Nop, kScr);
            ++_gt;
        }
        bind(dt.cell,
             {Tag::List, LogicalAddr(Area::Global, base).pack()},
             Module::Built);
        return true;
    }
    _seq.pushMem(Module::Built, LogicalAddr(Area::Global, _gt),
                 {Tag::Functor, _syms.functor(name, n)},
                 BranchOp::T3Nop, kScr);
    ++_gt;
    for (std::uint32_t k = 1; k <= n; ++k) {
        Deref dk = deref(items[k], Module::Built);
        _seq.pushMem(Module::Built, LogicalAddr(Area::Global, _gt),
                     dk.unbound
                         ? TaggedWord{Tag::Ref, dk.cell.pack()}
                         : dk.word,
                     BranchOp::T3Nop, kScr);
        ++_gt;
    }
    bind(dt.cell,
         {Tag::Struct, LogicalAddr(Area::Global, base).pack()},
         Module::Built);
    return true;
}

} // namespace interp
} // namespace psi
