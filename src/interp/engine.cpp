#include "interp/engine.hpp"

#include "base/logging.hpp"
#include "kl0/builtin_defs.hpp"
#include "kl0/normalize.hpp"
#include "kl0/reader.hpp"

namespace psi {
namespace interp {

namespace {

constexpr auto kScr = micro::WfMode::Direct00_0F;
constexpr auto kReg = micro::WfMode::Direct10_3F;
constexpr auto kNoWf = micro::WfMode::None;

// Decode/bookkeeping step counts of the firmware routines (the
// register-level texture around the explicit memory accesses).  The
// densities are calibrated against the paper's own measurements:
// ~137 steps per inference on nreverse, a cache command in 16-23% of
// steps (Table 3), and the Table 2 module mix.
constexpr int kFetchDecode = 1;   ///< per body instruction word
constexpr int kCallDecode = 10;    ///< per user-predicate call
constexpr int kTrialDecode = 1;   ///< per clause candidate tried
constexpr int kEnterDecode = 1;   ///< per clause entry
constexpr int kArgDecode = 2;     ///< per argument descriptor
constexpr int kVarFetchDecode = 1;///< per variable argument fetch
constexpr int kFramePush = 3;     ///< per control-frame push
constexpr int kEnvRestore = 3;    ///< per environment restore
constexpr int kReturnDecode = 4;  ///< per clause return
constexpr int kBacktrackDecode = 6;///< per deep backtrack
constexpr int kCutWork = 12;       ///< per cut

/** Make the self-referencing word of an unbound cell. */
TaggedWord
unboundAt(const LogicalAddr &addr)
{
    return {Tag::Ref, addr.pack()};
}

TaggedWord
intWord(std::uint32_t v)
{
    return {Tag::Int, v};
}

} // namespace

Engine::Engine(const CacheConfig &config, const FirmwareOptions &fw)
    : _mem(config), _seq(_mem), _codegen(_mem, _syms), _fw(fw)
{
    _seq.setWriteStackEnabled(fw.writeStackCommand);
}

void
Engine::load(const kl0::Program &program)
{
    _codegen.compile(kl0::normalize(program));
}

void
Engine::consult(const std::string &text)
{
    if (_codegen.heapTop() == kl0::kCodeBase) {
        // Fresh machine: the single compile entry point, sharing the
        // image-replay path with the warm-engine loads.
        load(kl0::CompiledProgram::compile(text, _codegen.options()));
        return;
    }
    // Machine already holds code: append incrementally (REPL path).
    kl0::Program p;
    p.consult(text);
    load(p);
}

void
Engine::resetMachine()
{
    _mem.reset();
    _seq.reset();
    _syms = kl0::SymbolTable();
    _codegen.restore(kl0::CodeGen::Snapshot{});
    resetRun();
    _vecTop = kl0::kVectorBase;
    _maxOutputBytes = 1 << 20;
    _inProcessCall = false;
    _warnedUndefined.clear();
    _procTops = {};
}

void
Engine::load(const kl0::CompiledProgram &image)
{
    resetMachine();
    _syms = image.symbols();
    _codegen.restore(image.codegen());
    _codegen.setOptions(image.options());
    // Replay in emission order so pages are touched (and physical
    // frames allocated) exactly as the original compile touched them.
    for (const PokeRecord &p : image.image())
        _mem.poke(p.addr, p.word);
}

void
Engine::load(const kl0::CompiledProgram &image,
             const CacheConfig &cache)
{
    _mem.reconfigure(cache);
    load(image);
}

RunResult
Engine::solve(const std::string &query_text, const RunLimits &limits)
{
    return solve(kl0::parseTerm(query_text), limits);
}

RunResult
Engine::solve(const kl0::TermPtr &goal, const RunLimits &limits)
{
    kl0::QueryCode qc = _codegen.compileQuery(goal);
    return run(qc, limits);
}

void
Engine::resetRun()
{
    _gt = _lt = _ct = _memTT = kStackBase;
    _b = kNoChoice;
    _hb = _hl = 0;
    _cp = 0;
    _act = Activation{};
    _act.globalBase = _gt;
    _curBuf = 0;
    _trailBufCount = 0;
    _inferences = 0;
    _idxHits = 0;
    _idxFallbacks = 0;
    _clauseTries = 0;
    _out.clear();
    _failFlag = false;
}

RunResult
Engine::run(const kl0::QueryCode &qc, const RunLimits &limits)
{
    resetRun();
    if (_resetStatsOnRun) {
        _mem.resetStats();
        _seq.resetStats();
    }
    _maxOutputBytes = limits.maxOutputBytes;

    RunResult result;
    bool started = doCall(qc.functorIdx, 0, true);
    if (!started)
        started = backtrack();
    if (started)
        mainLoop(qc, result, limits);
    result.stepLimitHit = result.status == RunStatus::StepLimit;

    result.inferences = _inferences;
    result.steps = _seq.stats().totalSteps();
    result.timeNs = _seq.timeNs();
    result.output = std::move(_out);
    _out.clear();
    return result;
}

void
Engine::mainLoop(const kl0::QueryCode &qc, RunResult &result,
                 const RunLimits &limits)
{
    const Deadline deadline(limits.deadlineNs);
    std::uint32_t poll = 0;
    for (;;) {
        if (_seq.stats().totalSteps() > limits.maxSteps) {
            result.status = RunStatus::StepLimit;
            return;
        }
        // Wall-clock deadline, polled every 4096 dispatches so the
        // clock read is amortized away.
        if (deadline.armed() && (++poll & 0xfffu) == 0 &&
            deadline.expired()) {
            result.status = RunStatus::Timeout;
            return;
        }

        if (_failFlag) {
            _failFlag = false;
            if (!backtrack())
                return;
            continue;
        }

        TaggedWord w = _seq.readMem(Module::Control,
                                    LogicalAddr(Area::Heap, _cp),
                                    BranchOp::T1CaseIrOpcode);
        ++_cp;
        _seq.texture(Module::Control, kFetchDecode);

        switch (w.tag) {
          case Tag::Call:
          case Tag::CallLast: {
            std::uint32_t goal_cp = _cp - 1;
            std::uint32_t f = w.data;
            loadArgs(_syms.functorArity(f), Module::Control);
            if (!doCall(f, goal_cp, w.tag == Tag::CallLast))
                _failFlag = true;
            break;
          }
          case Tag::CallBuiltin: {
            auto b = static_cast<kl0::Builtin>(w.data);
            loadArgs(kl0::builtinArity(b), Module::GetArg);
            if (!execBuiltin(b))
                _failFlag = true;
            break;
          }
          case Tag::CallIs: {
            // Specialized entry: one dispatch step, none of the
            // generic builtin staging texture.
            loadArgs(2, Module::GetArg);
            _seq.step(Module::Built, BranchOp::T1GotoJr, kScr, kNoWf,
                      kNoWf);
            if (!execIs())
                _failFlag = true;
            break;
          }
          case Tag::CallCmp: {
            loadArgs(2, Module::GetArg);
            _seq.step(Module::Built, BranchOp::T1GotoJr, kScr, kNoWf,
                      kNoWf);
            if (!arithCompare(static_cast<kl0::Builtin>(w.data)))
                _failFlag = true;
            break;
          }
          case Tag::CutOp:
            doCut();
            break;
          case Tag::Proceed: {
            // Return-from-clause decision step.
            _seq.step(Module::Control, BranchOp::T1CondTrue, kScr,
                      kScr);
            if (_act.contEnv == kRootEnv) {
                extractSolution(qc, result);
                if (static_cast<int>(result.solutions.size()) >=
                    limits.maxSolutions) {
                    return;
                }
                _failFlag = true;
                break;
            }
            // Determinate local-frame reclamation.
            if (_act.frame.kind == FrameLoc::Kind::Stack &&
                _act.frame.addr + _act.nlocals == _lt &&
                _hl <= _act.frame.addr) {
                _seq.step(Module::Control, BranchOp::T1CondFalse,
                          kScr, kScr, kScr);
                _lt = _act.frame.addr;
            }
            _seq.texture(Module::Control, kReturnDecode);
            std::uint32_t rcp = _act.contCP;
            restoreEnv(_act.contEnv);
            _cp = rcp;
            break;
          }
          default:
            panic("bad instruction word tag '", tagName(w.tag),
                  "' at heap:", _cp - 1);
        }
    }
}

void
Engine::loadArgs(std::uint32_t arity, Module m)
{
    if (arity == 0)
        return;

    TaggedWord w = _seq.readMem(m, LogicalAddr(Area::Heap, _cp),
                                BranchOp::T1CaseTag);
    if (w.tag == Tag::PackedArgs) {
        ++_cp;
        for (std::uint32_t i = 0; i < arity; ++i) {
            std::uint32_t op = (w.data >> (8 * i)) & 0xff;
            std::uint32_t type = op >> 5;
            std::uint32_t idx = op & 0x1f;
            // Packed-operand dispatch (the `case (irn)` branch).
            _seq.step(m, BranchOp::T1CaseIrn, kScr, kNoWf, kReg);
            _seq.texture(m, kArgDecode - 1);
            TaggedWord a;
            switch (type) {
              case kl0::kPackLocalVar:
                a = fetchVarArg(VarSlot{false,
                                static_cast<std::uint16_t>(idx)}, m);
                break;
              case kl0::kPackGlobalVar:
                a = fetchVarArg(VarSlot{true,
                                static_cast<std::uint16_t>(idx)}, m);
                break;
              case kl0::kPackVoid:
                a = newGlobalCell(m);
                break;
              case kl0::kPackSmallInt:
                a = intWord(idx);
                break;
              default:
                panic("bad packed operand type ", type);
            }
            _seq.wf().write(micro::kWfArgBase + i, a);
        }
        return;
    }

    for (std::uint32_t i = 0; i < arity; ++i) {
        TaggedWord d = _seq.readMem(m, LogicalAddr(Area::Heap, _cp),
                                    BranchOp::T1CaseTag, kNoWf,
                                    kReg);
        ++_cp;
        _seq.texture(m, kArgDecode);
        TaggedWord a;
        switch (d.tag) {
          case Tag::AConst:
            a = {Tag::Atom, d.data};
            break;
          case Tag::AInt:
            a = {Tag::Int, d.data};
            break;
          case Tag::ANil:
            a = {Tag::Nil, 0};
            break;
          case Tag::AVoid:
            a = newGlobalCell(m);
            break;
          case Tag::AVar:
            a = fetchVarArg(VarSlot::decode(d.data), m);
            break;
          case Tag::AList:
            a = instantiate(LogicalAddr::unpack(d.data).offset, true);
            break;
          case Tag::AStruct:
            a = instantiate(LogicalAddr::unpack(d.data).offset, false);
            break;
          case Tag::AGroundList:
            // Ground terms are shared from the heap image.
            a = {Tag::List, d.data};
            break;
          case Tag::AGroundStruct:
          case Tag::AExpr:
            a = {Tag::Struct, d.data};
            break;
          default:
            panic("bad argument descriptor '", tagName(d.tag), "'");
        }
        _seq.wf().write(micro::kWfArgBase + i, a);
    }
}

TaggedWord
Engine::readA(std::uint32_t i, Module m)
{
    _seq.step(m, BranchOp::T1Nop, kReg, kNoWf, kNoWf);
    return _seq.wf().read(micro::kWfArgBase + i);
}

void
Engine::writeA(std::uint32_t i, const TaggedWord &w, Module m)
{
    _seq.step(m, BranchOp::T1Nop, kNoWf, kNoWf, kReg);
    _seq.wf().write(micro::kWfArgBase + i, w);
}

TaggedWord
Engine::readLocal(std::uint32_t slot, Module m)
{
    switch (_act.frame.kind) {
      case FrameLoc::Kind::Buf0:
      case FrameLoc::Kind::Buf1: {
        std::uint16_t base = _act.frame.kind == FrameLoc::Kind::Buf0
                                 ? micro::kWfFrameBuf0
                                 : micro::kWfFrameBuf1;
        // Base-relative access through PDR/CDR.
        _seq.step(m, BranchOp::T1Nop, micro::WfMode::BaseRelPdrCdr,
                  kNoWf, kReg);
        return _seq.wf().read(base + slot);
      }
      case FrameLoc::Kind::Stack:
        return _seq.readMem(
            m, LogicalAddr(Area::Local, _act.frame.addr + slot),
            BranchOp::T1Nop, kScr, kReg);
      default:
        panic("local access with no frame");
    }
}

void
Engine::writeLocal(std::uint32_t slot, const TaggedWord &w, Module m)
{
    switch (_act.frame.kind) {
      case FrameLoc::Kind::Buf0:
      case FrameLoc::Kind::Buf1: {
        std::uint16_t base = _act.frame.kind == FrameLoc::Kind::Buf0
                                 ? micro::kWfFrameBuf0
                                 : micro::kWfFrameBuf1;
        _seq.step(m, BranchOp::T1Nop, kReg, kNoWf,
                  micro::WfMode::BaseRelPdrCdr);
        _seq.wf().write(base + slot, w);
        return;
      }
      case FrameLoc::Kind::Stack:
        _seq.writeMem(m,
                      LogicalAddr(Area::Local, _act.frame.addr + slot),
                      w, BranchOp::T1Nop, kReg);
        return;
      default:
        panic("local write with no frame");
    }
}

TaggedWord
Engine::fetchVarArg(const VarSlot &vs, Module m)
{
    _seq.texture(m, kVarFetchDecode);
    if (vs.global) {
        // A reference to the global cell is formed in one step.
        _seq.step(m, BranchOp::T1Nop, kScr, kNoWf, kReg);
        return {Tag::Ref,
                LogicalAddr(Area::Global,
                            _act.globalBase + vs.index).pack()};
    }
    TaggedWord v = readLocal(vs.index, m);
    if (v.tag == Tag::Undef) {
        // First use of an uninitialized local as an argument: the
        // variable is globalized so no reference into the work file
        // (or into a dying frame) can ever be created.
        TaggedWord ref = newGlobalCell(m);
        if (_act.frame.kind == FrameLoc::Kind::Stack) {
            // A flushed frame can be re-read by a choice-point retry,
            // so the slot initialization must be undoable: bind()
            // trails it conditionally, and trail unwinding restores
            // local-stack cells to the uninitialized state.
            bind(LogicalAddr(Area::Local, _act.frame.addr + vs.index),
                 ref, m);
        } else {
            writeLocal(vs.index, ref, m);
        }
        return ref;
    }
    return v;
}

TaggedWord
Engine::newGlobalCell(Module m)
{
    LogicalAddr cell(Area::Global, _gt);
    _seq.pushMem(m, cell, unboundAt(cell), BranchOp::T2Nop);
    ++_gt;
    return {Tag::Ref, cell.pack()};
}

bool
Engine::doCall(std::uint32_t functor_idx, std::uint32_t goal_cp,
               bool last_call)
{
    ++_inferences;

    // Call entry: save the goal context, set up the predicate
    // descriptor fetch.
    _seq.step(Module::Control, BranchOp::T1Gosub, kScr, kScr, kScr);
    _seq.texture(Module::Control, kCallDecode);
    TaggedWord dir = _seq.readMem(
        Module::Control,
        LogicalAddr(Area::Heap, kl0::kDirBase + functor_idx),
        BranchOp::T1CondFalse, kScr);
    if (dir.tag == Tag::IndexRef)
        dir = {Tag::ClauseRef, resolveIndex(dir.data)};
    if (dir.tag != Tag::ClauseRef) {
        if (functor_idx >= _warnedUndefined.size())
            _warnedUndefined.resize(functor_idx + 1, false);
        if (!_warnedUndefined[functor_idx]) {
            _warnedUndefined[functor_idx] = true;
            warn("undefined predicate ",
                 _syms.functorName(functor_idx), "/",
                 _syms.functorArity(functor_idx));
        }
        return false;
    }

    std::uint32_t cont_cp;
    std::uint32_t cont_env;
    if (last_call) {
        // Tail-recursion optimization: the callee inherits this
        // activation's continuation; no environment is pushed.
        _seq.step(Module::Control, BranchOp::T1CondTrue, kScr, kScr);
        cont_cp = _act.contCP;
        cont_env = _act.contEnv;
    } else {
        _seq.step(Module::Control, BranchOp::T1CondFalse, kScr, kScr);
        if (_act.frame.inBuffer())
            flushFrame();
        // The current control information is saved to the control
        // stack for every continuation-creating call.
        pushEnvFrame();
        cont_cp = _cp;
        cont_env = _act.selfEnv;
    }

    return tryClauses(dir.data, goal_cp,
                      _syms.functorArity(functor_idx), cont_cp,
                      cont_env, _b);
}

std::uint32_t
Engine::resolveIndex(std::uint32_t root)
{
    // Dereference A1 and switch on its tag (an index exists only for
    // predicates of arity > 0, so A1 is always loaded here).
    Deref d = deref(_seq.wf().read(micro::kWfArgBase),
                    Module::Control);
    TaggedWord a1 =
        d.unbound ? TaggedWord{Tag::Ref, d.cell.pack()} : d.word;
    _seq.step(Module::Control, BranchOp::T1CaseTag, kScr, kScr);

    std::uint32_t slot;
    std::uint32_t key = 0;
    Tag key_tag = Tag::Undef;
    switch (a1.tag) {
      case Tag::Atom:
        slot = kl0::kIdxSlotAtom;
        key = a1.data;
        key_tag = Tag::Atom;
        break;
      case Tag::Int:
        slot = kl0::kIdxSlotInt;
        key = a1.data;
        key_tag = Tag::Int;
        break;
      case Tag::Nil:
        slot = kl0::kIdxSlotNil;
        break;
      case Tag::List:
        slot = kl0::kIdxSlotList;
        break;
      case Tag::Struct:
        slot = kl0::kIdxSlotStruct;
        key = _seq.readMem(Module::Control,
                           LogicalAddr::unpack(a1.data),
                           BranchOp::T1Nop, kScr)
                  .data;
        key_tag = Tag::Functor;
        break;
      default:
        // Unbound - or a tag the index does not cover (vectors):
        // walk the full linear chain.
        ++_idxFallbacks;
        return _seq.readMem(Module::Control,
                            LogicalAddr(Area::Heap, root),
                            BranchOp::T1Goto, kScr)
            .data;
    }
    ++_idxHits;

    TaggedWord w = _seq.readMem(Module::Control,
                                LogicalAddr(Area::Heap, root + slot),
                                BranchOp::T1CaseTag, kScr);
    if (w.tag == Tag::ClauseRef)
        return w.data;
    PSI_ASSERT(w.tag == Tag::IndexHash, "bad index slot word");

    std::uint32_t block = w.data;
    std::uint32_t nslots =
        _seq.readMem(Module::Control, LogicalAddr(Area::Heap, block),
                     BranchOp::T1Nop, kScr)
            .data;
    std::uint32_t h = kl0::indexKeyHash(key) & (nslots - 1);
    for (;;) {
        TaggedWord kw = _seq.readMem(
            Module::Control,
            LogicalAddr(Area::Heap, block + 2 + 2 * h),
            BranchOp::T1CaseTag, kScr);
        if (kw.tag == Tag::Undef) {
            // No clause mentions this key: only the variable-headed
            // clauses can match.
            return _seq.readMem(Module::Control,
                                LogicalAddr(Area::Heap, block + 1),
                                BranchOp::T1Goto, kScr)
                .data;
        }
        if (kw.tag == key_tag && kw.data == key) {
            return _seq.readMem(
                       Module::Control,
                       LogicalAddr(Area::Heap, block + 3 + 2 * h),
                       BranchOp::T1Goto, kScr)
                .data;
        }
        // Linear probe (load factor <= 1/2 guarantees an empty slot).
        h = (h + 1) & (nslots - 1);
    }
}

bool
Engine::firstArgMayMatch(std::uint32_t clause_addr,
                         const TaggedWord &a1)
{
    // One probe of the first head descriptor plus a tag comparison -
    // the dispatch the PSI-II instruction-code redesign aims at.
    TaggedWord desc = _seq.readMem(
        Module::Control, LogicalAddr(Area::Heap, clause_addr + 1),
        BranchOp::T1CaseTag);
    _seq.step(Module::Control, BranchOp::T1TagCmp, kScr, kScr);
    if (a1.tag == Tag::Ref)
        return true;
    switch (desc.tag) {
      case Tag::HConst:
        return a1.tag == Tag::Atom && a1.data == desc.data;
      case Tag::HInt:
        return a1.tag == Tag::Int && a1.data == desc.data;
      case Tag::HNil:
        return a1.tag == Tag::Nil;
      case Tag::HList:
      case Tag::HGroundList:
        return a1.tag == Tag::List;
      case Tag::HStruct:
      case Tag::HGroundStruct:
        return a1.tag == Tag::Struct;
      default:
        return true;  // variable or void: matches anything
    }
}

bool
Engine::tryClauses(std::uint32_t table_addr, std::uint32_t goal_cp,
                   std::uint32_t arity, std::uint32_t cont_cp,
                   std::uint32_t cont_env, std::uint32_t cut_b)
{
    // Dereference the first argument once when indexing is enabled.
    TaggedWord a1{};
    if (_fw.firstArgIndexing && arity > 0) {
        Deref d = deref(_seq.wf().read(micro::kWfArgBase),
                        Module::Control);
        a1 = d.unbound ? TaggedWord{Tag::Ref, d.cell.pack()} : d.word;
    }
    // Caller context captured for the choice point (deep retries
    // reload arguments against this frame).
    FrameLoc caller_frame = _act.frame;
    std::uint32_t caller_gb = _act.globalBase;
    std::uint32_t caller_nlocals = _act.nlocals;

    // Trial snapshot, held in work-file registers: stack tops at
    // call time, so a failed head unification can be undone without
    // touching the control stack (shallow backtracking).
    std::uint32_t old_hb = _hb;
    std::uint32_t old_hl = _hl;
    std::uint32_t trial_gt = _gt;
    std::uint64_t trial_tt = trailTop();
    _seq.step(Module::Control, BranchOp::T1Nop, kScr, kScr, kScr);

    std::uint32_t pos = table_addr;
    TaggedWord cur = _seq.readMem(Module::Control,
                                  LogicalAddr(Area::Heap, pos),
                                  BranchOp::T1CondTrue, kScr);
    if (cur.tag != Tag::ClauseRef)
        return false;

    for (;;) {
        ++_clauseTries;
        TaggedWord next = _seq.readMem(Module::Control,
                                       LogicalAddr(Area::Heap, pos + 1),
                                       BranchOp::T1CondTrue, kScr);
        _seq.texture(Module::Control, kTrialDecode);
        bool has_next = next.tag == Tag::ClauseRef;

        if (_fw.firstArgIndexing && arity > 0 &&
            !firstArgMayMatch(cur.data, a1)) {
            if (!has_next) {
                _hb = old_hb;
                _hl = old_hl;
                return false;
            }
            pos += 1;
            cur = next;
            continue;
        }

        // Bind conditionally against the trial snapshot so a failing
        // head unification is fully undoable.
        _hb = trial_gt;
        _hl = _lt;

        if (enterClause(cur.data, cont_cp, cont_env, cut_b)) {
            if (has_next) {
                // Commit with alternatives: only now does control
                // information go to the control stack.
                std::uint32_t cfe;
                if (caller_frame.inBuffer()) {
                    // Lazy flush: a deep retry must be able to
                    // re-read the caller's locals from memory.
                    std::uint16_t base =
                        caller_frame.kind == FrameLoc::Kind::Buf0
                            ? micro::kWfFrameBuf0
                            : micro::kWfFrameBuf1;
                    std::uint32_t addr = _lt;
                    _seq.step(Module::Control, BranchOp::T1LoadJr,
                              kScr, kNoWf, kNoWf);
                    for (std::uint32_t i = 0; i < caller_nlocals;
                         ++i) {
                        _seq.pushMem(Module::Control,
                                     LogicalAddr(Area::Local, _lt + i),
                                     _seq.wf().read(base + i),
                                     BranchOp::T3Nop,
                                     micro::WfMode::IndWfar1);
                    }
                    _lt += caller_nlocals;
                    cfe = FrameLoc{FrameLoc::Kind::Stack,
                                   addr}.encode();
                } else {
                    cfe = caller_frame.encode();
                }
                trailFlush();
                pushChoicePoint(goal_cp, cont_cp, cont_env, cfe,
                                caller_gb, trial_gt, _lt,
                                static_cast<std::uint32_t>(trial_tt),
                                cut_b, pos + 1);
                _hb = trial_gt;
                _hl = _lt;
            } else {
                _hb = old_hb;
                _hl = old_hl;
            }
            return true;
        }

        // Shallow retry from the work-file snapshot.
        _seq.step(Module::Control, BranchOp::T1CondFalse, kScr, kNoWf,
                  kScr);
        unwindTrail(trial_tt);
        _gt = trial_gt;
        // Reclaim any local frame the failed candidate allocated
        // (no-op with frame buffers: _hl is the trial-start local
        // top).
        _lt = _hl;
        if (!has_next) {
            _hb = old_hb;
            _hl = old_hl;
            return false;
        }
        pos += 1;
        cur = next;
    }
}

void
Engine::flushFrame()
{
    PSI_ASSERT(_act.frame.inBuffer(), "flush of a non-buffer frame");
    std::uint16_t base = _act.frame.kind == FrameLoc::Kind::Buf0
                             ? micro::kWfFrameBuf0
                             : micro::kWfFrameBuf1;
    std::uint32_t addr = _lt;
    // WFAR1 := buffer base (address-register setup step).
    _seq.step(Module::Control, BranchOp::T1LoadJr, kScr, kNoWf, kNoWf);
    for (std::uint32_t i = 0; i < _act.nlocals; ++i) {
        _seq.pushMem(Module::Control, LogicalAddr(Area::Local, _lt + i),
                     _seq.wf().read(base + i), BranchOp::T3Nop,
                     micro::WfMode::IndWfar1);
    }
    _lt += _act.nlocals;
    _act.frame = FrameLoc{FrameLoc::Kind::Stack, addr};
}

void
Engine::pushEnvFrame()
{
    _seq.texture(Module::Control, kFramePush);
    std::uint32_t env = _ct;
    const std::uint32_t words[kFrameWords] = {
        _act.contCP,
        _act.contEnv,
        _act.frame.encode(),
        _act.globalBase,
        _act.cutB,
        _act.nlocals,
        _act.clauseAddr,
        0, 0, 0,
    };
    for (std::uint32_t i = 0; i < kFrameWords; ++i) {
        _seq.pushMem(Module::Control,
                     LogicalAddr(Area::Control, _ct + i),
                     intWord(words[i]), BranchOp::T3Nop, kReg);
    }
    _ct += kFrameWords;
    _act.selfEnv = env;
}

void
Engine::restoreEnv(std::uint32_t env_addr)
{
    PSI_ASSERT(env_addr != kRootEnv && env_addr != 0,
               "bad environment address");
    _seq.texture(Module::Control, kEnvRestore);
    std::uint32_t w[7];
    for (int i = 0; i < 7; ++i) {
        w[i] = _seq.readMem(Module::Control,
                            LogicalAddr(Area::Control, env_addr + i),
                            i == 0 ? BranchOp::T2Goto : BranchOp::T2Nop,
                            kNoWf, kScr)
                   .data;
    }
    _act.contCP = w[kEnvContCP];
    _act.contEnv = w[kEnvContEnv];
    _act.frame = FrameLoc::decode(w[kEnvFrameLoc]);
    _act.globalBase = w[kEnvGlobalBase];
    _act.cutB = w[kEnvCutB];
    _act.nlocals = w[kEnvNLocals];
    _act.clauseAddr = w[kEnvClauseAddr];

    if (env_addr + kFrameWords == _ct &&
        (_b == kNoChoice || _b < env_addr)) {
        // Determinate return to the top frame: reclaim it.
        _ct = env_addr;
        _act.selfEnv = 0;
    } else {
        _act.selfEnv = env_addr;
    }
}

void
Engine::pushChoicePoint(std::uint32_t goal_cp, std::uint32_t cont_cp,
                        std::uint32_t cont_env,
                        std::uint32_t caller_frame_enc,
                        std::uint32_t caller_global_base,
                        std::uint32_t saved_gt, std::uint32_t saved_lt,
                        std::uint32_t saved_tt, std::uint32_t saved_b,
                        std::uint32_t next_clause_addr)
{
    _seq.texture(Module::Control, kFramePush);
    std::uint32_t cp_addr = _ct;
    const std::uint32_t words[kFrameWords] = {
        goal_cp,
        caller_frame_enc,
        caller_global_base,
        cont_cp,
        cont_env,
        saved_gt,
        saved_lt,
        saved_tt,
        saved_b,
        next_clause_addr,
    };
    for (std::uint32_t i = 0; i < kFrameWords; ++i) {
        _seq.pushMem(Module::Control,
                     LogicalAddr(Area::Control, _ct + i),
                     intWord(words[i]), BranchOp::T3Nop, kReg);
    }
    _ct += kFrameWords;
    _b = cp_addr;
}

bool
Engine::enterClause(std::uint32_t clause_addr, std::uint32_t cont_cp,
                    std::uint32_t cont_env, std::uint32_t cut_b)
{
    TaggedWord hdr = _seq.readMem(Module::Control,
                                  LogicalAddr(Area::Heap, clause_addr),
                                  BranchOp::T1CaseTag, kNoWf,
                                  kScr);
    PSI_ASSERT(hdr.tag == Tag::ClauseHeader, "bad clause address");
    _seq.texture(Module::Control, kEnterDecode);
    std::uint32_t arity = hdr.data & 0xff;
    std::uint32_t nlocals = (hdr.data >> 8) & 0xff;
    std::uint32_t nglobals = (hdr.data >> 16) & 0xff;

    std::uint32_t global_base = _gt;
    for (std::uint32_t g = 0; g < nglobals; ++g) {
        LogicalAddr cell(Area::Global, _gt + g);
        _seq.pushMem(Module::Control, cell, unboundAt(cell),
                     BranchOp::T2Nop);
    }
    _gt += nglobals;

    FrameLoc frame;
    if (nlocals > 0 && _fw.frameBuffers) {
        int nb = 1 - _curBuf;
        frame.kind = nb == 0 ? FrameLoc::Kind::Buf0
                             : FrameLoc::Kind::Buf1;
        std::uint16_t base = nb == 0 ? micro::kWfFrameBuf0
                                     : micro::kWfFrameBuf1;
        // Initialize the frame through WFAR1 auto-increment.
        for (std::uint32_t i = 0; i < nlocals; ++i) {
            _seq.step(Module::Control, BranchOp::T3Nop, kNoWf, kNoWf,
                      micro::WfMode::IndWfar1);
            _seq.wf().write(base + i, TaggedWord{});
        }
        _curBuf = nb;
    } else if (nlocals > 0) {
        // Ablation: no frame buffers - the local frame is allocated
        // directly on the local stack.
        frame.kind = FrameLoc::Kind::Stack;
        frame.addr = _lt;
        for (std::uint32_t i = 0; i < nlocals; ++i) {
            _seq.pushMem(Module::Control,
                         LogicalAddr(Area::Local, _lt + i),
                         TaggedWord{}, BranchOp::T3Nop);
        }
        _lt += nlocals;
    }

    _act.contCP = cont_cp;
    _act.contEnv = cont_env;
    _act.frame = frame;
    _act.globalBase = global_base;
    _act.cutB = cut_b;
    _act.nlocals = nlocals;
    _act.clauseAddr = clause_addr;
    _act.selfEnv = 0;

    std::uint32_t dp = clause_addr + 1;
    for (std::uint32_t i = 0; i < arity; ++i) {
        TaggedWord desc = _seq.readMem(Module::Unify,
                                       LogicalAddr(Area::Heap, dp + i),
                                       BranchOp::T1CaseTag, kNoWf,
                                       kScr);
        TaggedWord arg = _seq.wf().read(micro::kWfArgBase + i);
        if (!unifyHead(desc, arg))
            return false;
    }
    // Activation setup completes only after the head has matched.
    _seq.texture(Module::Control, 5);
    _cp = dp + arity;
    return true;
}

bool
Engine::backtrack()
{
    for (;;) {
        if (_b == kNoChoice)
            return false;

        // Deep backtracking: restore the machine from the newest
        // choice-point frame.
        _seq.step(Module::Control, BranchOp::T2Goto, kScr, kNoWf,
                  kScr);
        _seq.texture(Module::Control, kBacktrackDecode);
        std::uint32_t w[kFrameWords];
        for (std::uint32_t i = 0; i < kFrameWords; ++i) {
            w[i] = _seq.readMem(Module::Control,
                                LogicalAddr(Area::Control, _b + i),
                                BranchOp::T2Nop, kNoWf, kScr)
                       .data;
        }

        unwindTrail(w[kCpSavedTT]);
        _gt = w[kCpSavedGT];
        _lt = w[kCpSavedLT];
        // The frame is consumed: remaining candidates run a fresh
        // trial loop, which pushes a new choice point only if one is
        // still needed.
        _ct = _b;
        _b = w[kCpSavedB];
        reloadTrailBounds(Module::Control);

        // Rebuild the caller context and reload the goal arguments
        // from the instruction code (DEC-10-interpreter style retry).
        _act.frame = FrameLoc::decode(w[kCpCallerFrame]);
        _act.globalBase = w[kCpCallerGlobal];

        std::uint32_t goal_cp = w[kCpGoalCP];
        std::uint32_t arity = 0;
        if (goal_cp != 0) {
            TaggedWord call = _seq.readMem(
                Module::Control, LogicalAddr(Area::Heap, goal_cp),
                BranchOp::T1CaseIrOpcode, kNoWf, kScr);
            PSI_ASSERT(call.tag == Tag::Call ||
                           call.tag == Tag::CallLast,
                       "retry at a non-call word");
            _cp = goal_cp + 1;
            arity = _syms.functorArity(call.data);
            loadArgs(arity, Module::Control);
        }

        if (tryClauses(w[kCpNextClause], goal_cp, arity,
                       w[kCpContCP], w[kCpContEnv], w[kCpSavedB])) {
            return true;
        }
        // Every remaining candidate failed; fail into the next
        // older choice point.
    }
}

void
Engine::reloadTrailBounds(Module m)
{
    if (_b == kNoChoice) {
        _hb = 0;
        _hl = 0;
        return;
    }
    _hb = _seq.readMem(m, LogicalAddr(Area::Control, _b + kCpSavedGT),
                       BranchOp::T2Nop, kNoWf, kScr)
              .data;
    _hl = _seq.readMem(m, LogicalAddr(Area::Control, _b + kCpSavedLT),
                       BranchOp::T2Nop, kNoWf, kScr)
              .data;
}

void
Engine::doCut()
{
    _seq.step(Module::Cut, BranchOp::T1CondTrue, kScr, kScr);
    _seq.texture(Module::Cut, kCutWork);
    if (_b != _act.cutB) {
        _b = _act.cutB;
        _seq.step(Module::Cut, BranchOp::T1CondFalse, kScr, kNoWf,
                  kScr);
        reloadTrailBounds(Module::Cut);
    }
}

void
Engine::extractSolution(const kl0::QueryCode &qc, RunResult &result)
{
    Solution sol;
    for (const auto &kv : qc.vars) {
        const kl0::SlotRef &sr = kv.second;
        TaggedWord w;
        if (sr.global) {
            w = _mem.peek(LogicalAddr(Area::Global,
                                      _act.globalBase + sr.index));
        } else {
            switch (_act.frame.kind) {
              case FrameLoc::Kind::Stack:
                w = _mem.peek(LogicalAddr(Area::Local,
                                          _act.frame.addr + sr.index));
                break;
              case FrameLoc::Kind::Buf0:
              case FrameLoc::Kind::Buf1: {
                std::uint16_t base =
                    _act.frame.kind == FrameLoc::Kind::Buf0
                        ? micro::kWfFrameBuf0
                        : micro::kWfFrameBuf1;
                w = _seq.wf().read(base + sr.index);
                break;
              }
              default:
                w = TaggedWord{};
            }
        }
        if (w.tag == Tag::Undef) {
            sol.bindings[kv.first] = kl0::Term::var("_" + kv.first);
        } else {
            sol.bindings[kv.first] = exportTerm(w);
        }
    }
    result.solutions.push_back(std::move(sol));
}

kl0::TermPtr
Engine::exportTerm(const TaggedWord &w, int depth)
{
    if (depth > 100000)
        return kl0::Term::atom("...");

    TaggedWord cur = w;
    // Host-level dereference (no accounting: extraction is outside
    // the measured firmware).
    while (cur.tag == Tag::Ref) {
        LogicalAddr a = LogicalAddr::unpack(cur.data);
        TaggedWord inner = _mem.peek(a);
        if (inner.tag == Tag::Ref && inner.data == cur.data) {
            return kl0::Term::var("_G" + std::to_string(cur.data));
        }
        cur = inner;
    }

    switch (cur.tag) {
      case Tag::Undef:
        return kl0::Term::var("_U");
      case Tag::Atom:
        return kl0::Term::atom(_syms.atomName(cur.data));
      case Tag::Int:
        return kl0::Term::integer(cur.asInt());
      case Tag::Nil:
        return kl0::Term::nil();
      case Tag::List: {
        LogicalAddr a = LogicalAddr::unpack(cur.data);
        return kl0::Term::compound(
            ".", {exportTerm(_mem.peek(a), depth + 1),
                  exportTerm(_mem.peek(a.plus(1)), depth + 1)});
      }
      case Tag::Struct: {
        LogicalAddr a = LogicalAddr::unpack(cur.data);
        TaggedWord f = _mem.peek(a);
        PSI_ASSERT(f.tag == Tag::Functor, "bad structure word");
        std::uint32_t n = _syms.functorArity(f.data);
        std::vector<kl0::TermPtr> args;
        args.reserve(n);
        for (std::uint32_t i = 1; i <= n; ++i)
            args.push_back(exportTerm(_mem.peek(a.plus(i)), depth + 1));
        return kl0::Term::compound(_syms.functorName(f.data),
                                   std::move(args));
      }
      case Tag::Vector: {
        LogicalAddr a = LogicalAddr::unpack(cur.data);
        TaggedWord size = _mem.peek(a);
        return kl0::Term::compound(
            "$vector", {kl0::Term::integer(size.asInt())});
      }
      default:
        return kl0::Term::atom(std::string("$bad_") +
                               tagName(cur.tag));
    }
}

} // namespace interp
} // namespace psi
