/**
 * @file
 * Arithmetic evaluation firmware (is/2 and the comparison built-ins).
 *
 * Expressions are ordinary terms; evaluation walks the structure with
 * tag dispatch and a functor-indexed jump, all charged to the built
 * module.  Arithmetic is 32-bit two's complement as on the PSI
 * (intermediate math in 64 bits, range-checked at the end by is/2).
 */

#include "interp/engine.hpp"

#include "base/logging.hpp"
#include "kl0/builtin_defs.hpp"

namespace psi {
namespace interp {

namespace {

constexpr auto kScr = micro::WfMode::Direct00_0F;
constexpr auto kConstWf = micro::WfMode::Constant;
constexpr auto kNoWf = micro::WfMode::None;

} // namespace

bool
Engine::evalArith(const TaggedWord &w, std::int64_t &out)
{
    // Operand fetching is charged to get_arg (the paper singles out
    // built-in argument fetching as time-consuming); the ALU work is
    // charged to built.
    _seq.texture(Module::GetArg, 2);
    _seq.texture(Module::Built, 2);
    Deref d = deref(w, Module::GetArg);
    if (d.unbound) {
        warn("arithmetic: unbound variable");
        return false;
    }

    switch (d.word.tag) {
      case Tag::Int:
        out = d.word.asInt();
        return true;

      case Tag::SkelVar: {
        // Expression skeletons are evaluated in place; variable slots
        // are resolved against the current activation.
        if (d.word.data & kl0::kSkelVoidBit) {
            warn("arithmetic: unbound (void) variable");
            return false;
        }
        VarSlot vs = VarSlot::decode(d.word.data);
        if (vs.global) {
            TaggedWord ref = {
                Tag::Ref,
                LogicalAddr(Area::Global,
                            _act.globalBase + vs.index).pack()};
            return evalArith(ref, out);
        }
        TaggedWord v = readLocal(vs.index, Module::GetArg);
        if (v.tag == Tag::Undef) {
            warn("arithmetic: unbound variable");
            return false;
        }
        return evalArith(v, out);
      }

      case Tag::Struct: {
        LogicalAddr a = LogicalAddr::unpack(d.word.data);
        TaggedWord f = _seq.readMem(Module::Built, a,
                                    BranchOp::T1GotoJr, kScr, kScr);
        if (f.tag != Tag::Functor)
            return false;
        const std::string &name = _syms.functorName(f.data);
        std::uint32_t arity = _syms.functorArity(f.data);

        if (arity == 1) {
            std::int64_t x = 0;
            TaggedWord ax = _seq.readMem(Module::GetArg, a.plus(1),
                                         BranchOp::T1Nop, kScr, kScr);
            if (!evalArith(ax, x))
                return false;
            _seq.step(Module::Built, BranchOp::T1Nop, kConstWf, kScr,
                      kScr);
            if (name == "-") { out = -x; return true; }
            if (name == "+") { out = x; return true; }
            if (name == "abs") { out = x < 0 ? -x : x; return true; }
            if (name == "\\") { out = ~x; return true; }
            warn("arithmetic: unknown function ", name, "/1");
            return false;
        }

        if (arity == 2) {
            std::int64_t x = 0;
            std::int64_t y = 0;
            TaggedWord ax = _seq.readMem(Module::GetArg, a.plus(1),
                                         BranchOp::T1Nop, kScr, kScr);
            if (!evalArith(ax, x))
                return false;
            TaggedWord ay = _seq.readMem(Module::GetArg, a.plus(2),
                                         BranchOp::T1Nop, kScr, kScr);
            if (!evalArith(ay, y))
                return false;
            // The ALU operation step.
            _seq.step(Module::Built, BranchOp::T1Nop, kScr, kScr,
                      kScr);
            if (name == "+") { out = x + y; return true; }
            if (name == "-") { out = x - y; return true; }
            if (name == "*") { out = x * y; return true; }
            if (name == "//" || name == "/") {
                if (y == 0) {
                    warn("arithmetic: division by zero");
                    return false;
                }
                out = x / y;
                return true;
            }
            if (name == "mod") {
                if (y == 0) {
                    warn("arithmetic: mod by zero");
                    return false;
                }
                out = x % y;
                if (out != 0 && ((out < 0) != (y < 0)))
                    out += y;
                return true;
            }
            if (name == "rem") {
                if (y == 0)
                    return false;
                out = x % y;
                return true;
            }
            if (name == "min") { out = x < y ? x : y; return true; }
            if (name == "max") { out = x > y ? x : y; return true; }
            if (name == "<<") { out = x << (y & 31); return true; }
            if (name == ">>") { out = x >> (y & 31); return true; }
            if (name == "/\\") { out = x & y; return true; }
            if (name == "\\/") { out = x | y; return true; }
            if (name == "xor") { out = x ^ y; return true; }
            warn("arithmetic: unknown function ", name, "/2");
            return false;
        }
        warn("arithmetic: unknown function ", name, "/", arity);
        return false;
      }

      default:
        warn("arithmetic: bad operand tag '", tagName(d.word.tag),
             "'");
        return false;
    }
}

bool
Engine::arithCompare(kl0::Builtin b)
{
    using kl0::Builtin;

    std::int64_t x = 0;
    std::int64_t y = 0;
    if (!evalArith(readA(0, Module::Built), x))
        return false;
    if (!evalArith(readA(1, Module::Built), y))
        return false;
    // The comparison step.
    _seq.step(Module::Built, BranchOp::T1CondTrue, kScr, kScr, kNoWf);
    switch (b) {
      case Builtin::Lt: return x < y;
      case Builtin::Gt: return x > y;
      case Builtin::Le: return x <= y;
      case Builtin::Ge: return x >= y;
      case Builtin::ArithEq: return x == y;
      case Builtin::ArithNe: return x != y;
      default:
        panic("arithCompare: bad builtin");
    }
}

} // namespace interp
} // namespace psi
