/**
 * @file
 * Unification, dereferencing and trail firmware of the interpreter.
 *
 * All steps here are charged to the Unify module except trail
 * operations (Trail).  The dereference loop is one cache read plus
 * one tag-dispatch branch per hop; general unification is driven by
 * tag dispatch; skeletons are either instantiated onto the global
 * stack (write mode) or walked element-wise against a bound term
 * (read mode).
 */

#include "interp/engine.hpp"

#include "base/logging.hpp"

namespace psi {
namespace interp {

namespace {

constexpr auto kScr = micro::WfMode::Direct00_0F;
constexpr auto kReg = micro::WfMode::Direct10_3F;
constexpr auto kNoWf = micro::WfMode::None;

TaggedWord
unboundAt(const LogicalAddr &addr)
{
    return {Tag::Ref, addr.pack()};
}

// Decode-texture densities of the unification firmware.
constexpr int kDerefHop = 2;      ///< per reference hop
constexpr int kBindWork = 3;      ///< per binding (trail condition)
constexpr int kUnifyEntry = 4;    ///< per general-unify invocation
constexpr int kHeadArgWork = 3;   ///< per head argument descriptor
constexpr int kSkelElem = 2;      ///< per skeleton element

} // namespace

Deref
Engine::deref(const TaggedWord &w, Module m)
{
    Deref d;
    d.word = w;
    if (w.tag != Tag::Ref) {
        // Tag test of an already-bound word.
        _seq.step(m, BranchOp::T1CaseTag, kReg, kNoWf, kNoWf);
        return d;
    }
    while (d.word.tag == Tag::Ref) {
        LogicalAddr a = LogicalAddr::unpack(d.word.data);
        _seq.texture(m, kDerefHop);
        TaggedWord inner =
            _seq.readMem(m, a, BranchOp::T1CaseTag);
        if (inner.tag == Tag::Ref && inner.data == d.word.data) {
            d.unbound = true;
            d.cell = a;
            return d;
        }
        d.word = inner;
    }
    return d;
}

void
Engine::bind(const LogicalAddr &cell, const TaggedWord &value, Module m)
{
    _seq.texture(m, kBindWork);
    _seq.writeMem(m, cell, value, BranchOp::T1CondFalse, kReg, kScr);
    bool need_trail =
        (cell.area == Area::Global && cell.offset < _hb) ||
        (cell.area == Area::Local && cell.offset < _hl);
    if (need_trail)
        trailPush(cell);
}

void
Engine::trailPush(const LogicalAddr &cell)
{
    _seq.texture(Module::Trail, 1);
    if (!_fw.trailBuffer) {
        // Ablation: entries go straight to the trail stack.
        _seq.pushMem(Module::Trail, LogicalAddr(Area::Trail, _memTT),
                     {Tag::Ref, cell.pack()}, BranchOp::T3Nop, kReg);
        ++_memTT;
        return;
    }
    PSI_ASSERT(_trailBufCount < micro::kWfTrailBufWords,
               "trail buffer overflow");
    _seq.step(Module::Trail, BranchOp::T1Nop, kScr, kNoWf,
              micro::WfMode::IndWfar2);
    _seq.wf().write(micro::kWfTrailBuf + _trailBufCount,
                    {Tag::Ref, cell.pack()});
    ++_trailBufCount;
    if (_trailBufCount == micro::kWfTrailBufWords)
        trailFlush();
}

void
Engine::trailFlush()
{
    for (std::uint32_t i = 0; i < _trailBufCount; ++i) {
        _seq.pushMem(Module::Trail,
                     LogicalAddr(Area::Trail, _memTT + i),
                     _seq.wf().read(micro::kWfTrailBuf + i),
                     BranchOp::T3Nop, micro::WfMode::IndWfar2);
    }
    _memTT += _trailBufCount;
    _trailBufCount = 0;
}

void
Engine::unwindTrail(std::uint64_t to_tt)
{
    auto reset_cell = [this](const LogicalAddr &a) {
        if (a.area == Area::Local) {
            // Local-stack entries record variable globalization; the
            // pre-binding state is always "uninitialized".
            _seq.writeMem(Module::Trail, a, TaggedWord{},
                          BranchOp::T2Nop, kScr);
        } else {
            _seq.writeMem(Module::Trail, a, unboundAt(a),
                          BranchOp::T2Nop, kScr);
        }
    };

    // Entries still in the work-file buffer occupy logical positions
    // _memTT .. _memTT + count - 1; undo only those at or above the
    // target (shallow retries may restore a point with older buffer
    // entries still live).
    while (_trailBufCount > 0 && _memTT + _trailBufCount > to_tt) {
        --_trailBufCount;
        _seq.step(Module::Trail, BranchOp::T1CondFalse,
                  micro::WfMode::IndWfar2, kNoWf, kScr);
        TaggedWord e =
            _seq.wf().read(micro::kWfTrailBuf + _trailBufCount);
        reset_cell(LogicalAddr::unpack(e.data));
    }
    while (_memTT > to_tt) {
        --_memTT;
        TaggedWord e = _seq.readMem(Module::Trail,
                                    LogicalAddr(Area::Trail, _memTT),
                                    BranchOp::T1CondFalse, kScr);
        reset_cell(LogicalAddr::unpack(e.data));
    }
}

bool
Engine::unify(const TaggedWord &a, const TaggedWord &b)
{
    _seq.texture(Module::Unify, kUnifyEntry);
    Deref da = deref(a, Module::Unify);
    Deref db = deref(b, Module::Unify);

    if (da.unbound && db.unbound) {
        _seq.step(Module::Unify, BranchOp::T1CondTrue, kScr, kScr);
        if (da.cell == db.cell)
            return true;
        // Bind the younger cell to the older one so restoring the
        // global top on backtracking can never leave a dangling
        // reference.
        if (da.cell.offset < db.cell.offset)
            bind(db.cell, unboundAt(da.cell), Module::Unify);
        else
            bind(da.cell, unboundAt(db.cell), Module::Unify);
        return true;
    }
    if (da.unbound) {
        bind(da.cell, db.word, Module::Unify);
        return true;
    }
    if (db.unbound) {
        bind(db.cell, da.word, Module::Unify);
        return true;
    }

    // Both bound: two-tag dispatch.
    _seq.step(Module::Unify, BranchOp::T1CaseTag, kScr, kScr);
    if (da.word.tag != db.word.tag)
        return false;

    switch (da.word.tag) {
      case Tag::Atom:
      case Tag::Int:
        return da.word.data == db.word.data;
      case Tag::Nil:
        return true;
      case Tag::Vector:
        return da.word.data == db.word.data;
      case Tag::List: {
        LogicalAddr aa = LogicalAddr::unpack(da.word.data);
        LogicalAddr ba = LogicalAddr::unpack(db.word.data);
        for (int k = 0; k < 2; ++k) {
            TaggedWord va = _seq.readMem(Module::Unify, aa.plus(k),
                                         BranchOp::T2Nop);
            TaggedWord vb = _seq.readMem(Module::Unify, ba.plus(k),
                                         BranchOp::T2Nop);
            if (!unify(va, vb))
                return false;
        }
        return true;
      }
      case Tag::Struct: {
        LogicalAddr aa = LogicalAddr::unpack(da.word.data);
        LogicalAddr ba = LogicalAddr::unpack(db.word.data);
        TaggedWord fa = _seq.readMem(Module::Unify, aa,
                                     BranchOp::T1CondFalse, kScr);
        TaggedWord fb = _seq.readMem(Module::Unify, ba,
                                     BranchOp::T1CondFalse, kScr);
        if (fa.data != fb.data)
            return false;
        std::uint32_t n = _syms.functorArity(fa.data);
        for (std::uint32_t k = 1; k <= n; ++k) {
            TaggedWord va = _seq.readMem(Module::Unify, aa.plus(k),
                                         BranchOp::T2Nop);
            TaggedWord vb = _seq.readMem(Module::Unify, ba.plus(k),
                                         BranchOp::T2Nop);
            if (!unify(va, vb))
                return false;
        }
        return true;
      }
      default:
        return false;
    }
}

bool
Engine::unifyHead(const TaggedWord &desc, const TaggedWord &arg)
{
    _seq.texture(Module::Unify, kHeadArgWork);
    switch (desc.tag) {
      case Tag::HConst: {
        Deref d = deref(arg, Module::Unify);
        if (d.unbound) {
            bind(d.cell, {Tag::Atom, desc.data}, Module::Unify);
            return true;
        }
        return d.word.tag == Tag::Atom && d.word.data == desc.data;
      }
      case Tag::HInt: {
        Deref d = deref(arg, Module::Unify);
        if (d.unbound) {
            bind(d.cell, {Tag::Int, desc.data}, Module::Unify);
            return true;
        }
        return d.word.tag == Tag::Int && d.word.data == desc.data;
      }
      case Tag::HNil: {
        Deref d = deref(arg, Module::Unify);
        if (d.unbound) {
            bind(d.cell, {Tag::Nil, 0}, Module::Unify);
            return true;
        }
        return d.word.tag == Tag::Nil;
      }
      case Tag::HVoid:
        _seq.step(Module::Unify, BranchOp::T2Nop, kReg, kNoWf, kNoWf);
        return true;
      case Tag::HVarF: {
        VarSlot vs = VarSlot::decode(desc.data);
        if (vs.global) {
            bind(LogicalAddr(Area::Global, _act.globalBase + vs.index),
                 arg, Module::Unify);
        } else {
            writeLocal(vs.index, arg, Module::Unify);
        }
        return true;
      }
      case Tag::HVarS: {
        VarSlot vs = VarSlot::decode(desc.data);
        if (vs.global) {
            TaggedWord ref = unboundAt(
                LogicalAddr(Area::Global, _act.globalBase + vs.index));
            return unify(ref, arg);
        }
        TaggedWord v = readLocal(vs.index, Module::Unify);
        return unify(v, arg);
      }
      case Tag::HList: {
        std::uint32_t skel = LogicalAddr::unpack(desc.data).offset;
        Deref d = deref(arg, Module::Unify);
        if (d.unbound) {
            TaggedWord w = instantiate(skel, true);
            bind(d.cell, w, Module::Unify);
            return true;
        }
        if (d.word.tag != Tag::List)
            return false;
        return unifySkeleton(skel, true, d.word);
      }
      case Tag::HStruct: {
        std::uint32_t skel = LogicalAddr::unpack(desc.data).offset;
        Deref d = deref(arg, Module::Unify);
        if (d.unbound) {
            TaggedWord w = instantiate(skel, false);
            bind(d.cell, w, Module::Unify);
            return true;
        }
        if (d.word.tag != Tag::Struct)
            return false;
        return unifySkeleton(skel, false, d.word);
      }
      case Tag::HGroundList: {
        // Shared ground term: bind directly or unify in place.
        Deref d = deref(arg, Module::Unify);
        if (d.unbound) {
            bind(d.cell, {Tag::List, desc.data}, Module::Unify);
            return true;
        }
        if (d.word.tag != Tag::List)
            return false;
        return unify({Tag::List, desc.data}, d.word);
      }
      case Tag::HGroundStruct: {
        Deref d = deref(arg, Module::Unify);
        if (d.unbound) {
            bind(d.cell, {Tag::Struct, desc.data}, Module::Unify);
            return true;
        }
        if (d.word.tag != Tag::Struct)
            return false;
        return unify({Tag::Struct, desc.data}, d.word);
      }
      default:
        panic("bad head descriptor '", tagName(desc.tag), "'");
    }
}

TaggedWord
Engine::instantiate(std::uint32_t skel_addr, bool is_cons)
{
    std::vector<TaggedWord> out;
    std::uint32_t start = 0;
    std::uint32_t n = 2;
    if (!is_cons) {
        TaggedWord f = _seq.readMem(Module::Unify,
                                    LogicalAddr(Area::Heap, skel_addr),
                                    BranchOp::T1CaseTag, kScr, kScr);
        PSI_ASSERT(f.tag == Tag::Functor, "bad structure skeleton");
        out.push_back(f);
        n = _syms.functorArity(f.data);
        start = 1;
    }
    out.reserve(start + n);

    for (std::uint32_t k = 0; k < n; ++k) {
        _seq.texture(Module::Unify, kSkelElem);
        TaggedWord e = _seq.readMem(
            Module::Unify,
            LogicalAddr(Area::Heap, skel_addr + start + k),
            BranchOp::T1CaseTag);
        switch (e.tag) {
          case Tag::Atom:
          case Tag::Int:
          case Tag::Nil:
            out.push_back(e);
            break;
          case Tag::SkelVar:
            if (e.data & kl0::kSkelVoidBit) {
                // Placeholder: becomes a fresh unbound cell at its
                // final address.
                out.push_back(TaggedWord{});
            } else {
                VarSlot vs = VarSlot::decode(e.data);
                _seq.step(Module::Unify, BranchOp::T2Nop, kScr, kScr,
                          kScr);
                out.push_back(unboundAt(LogicalAddr(
                    Area::Global, _act.globalBase + vs.index)));
            }
            break;
          case Tag::List:
            out.push_back(
                instantiate(LogicalAddr::unpack(e.data).offset, true));
            break;
          case Tag::Struct:
            out.push_back(instantiate(
                LogicalAddr::unpack(e.data).offset, false));
            break;
          default:
            panic("bad skeleton element '", tagName(e.tag), "'");
        }
    }

    std::uint32_t base = _gt;
    for (std::uint32_t i = 0; i < out.size(); ++i) {
        LogicalAddr cell(Area::Global, base + i);
        TaggedWord w =
            out[i].tag == Tag::Undef ? unboundAt(cell) : out[i];
        _seq.pushMem(Module::Unify, cell, w, BranchOp::T2Nop, kReg);
    }
    _gt += static_cast<std::uint32_t>(out.size());
    return {is_cons ? Tag::List : Tag::Struct,
            LogicalAddr(Area::Global, base).pack()};
}

bool
Engine::unifySkelElement(const TaggedWord &skel_elem,
                         const TaggedWord &cell_value)
{
    _seq.texture(Module::Unify, kSkelElem);
    switch (skel_elem.tag) {
      case Tag::Atom:
      case Tag::Int:
      case Tag::Nil: {
        Deref d = deref(cell_value, Module::Unify);
        if (d.unbound) {
            bind(d.cell, skel_elem, Module::Unify);
            return true;
        }
        return d.word.tag == skel_elem.tag &&
               d.word.data == skel_elem.data;
      }
      case Tag::SkelVar: {
        if (skel_elem.data & kl0::kSkelVoidBit) {
            _seq.step(Module::Unify, BranchOp::T2Nop, kScr, kNoWf,
                      kNoWf);
            return true;
        }
        VarSlot vs = VarSlot::decode(skel_elem.data);
        TaggedWord ref = unboundAt(
            LogicalAddr(Area::Global, _act.globalBase + vs.index));
        return unify(ref, cell_value);
      }
      case Tag::List: {
        std::uint32_t sub = LogicalAddr::unpack(skel_elem.data).offset;
        Deref d = deref(cell_value, Module::Unify);
        if (d.unbound) {
            bind(d.cell, instantiate(sub, true), Module::Unify);
            return true;
        }
        if (d.word.tag != Tag::List)
            return false;
        return unifySkeleton(sub, true, d.word);
      }
      case Tag::Struct: {
        std::uint32_t sub = LogicalAddr::unpack(skel_elem.data).offset;
        Deref d = deref(cell_value, Module::Unify);
        if (d.unbound) {
            bind(d.cell, instantiate(sub, false), Module::Unify);
            return true;
        }
        if (d.word.tag != Tag::Struct)
            return false;
        return unifySkeleton(sub, false, d.word);
      }
      default:
        panic("bad skeleton element '", tagName(skel_elem.tag), "'");
    }
}

bool
Engine::unifySkeleton(std::uint32_t skel_addr, bool is_cons,
                      const TaggedWord &term)
{
    LogicalAddr taddr = LogicalAddr::unpack(term.data);
    std::uint32_t n = 2;
    std::uint32_t off = 0;
    if (!is_cons) {
        TaggedWord fs = _seq.readMem(Module::Unify,
                                     LogicalAddr(Area::Heap, skel_addr),
                                     BranchOp::T1CondFalse, kScr);
        TaggedWord ft = _seq.readMem(Module::Unify, taddr,
                                     BranchOp::T1CondFalse, kScr);
        if (fs.data != ft.data)
            return false;
        n = _syms.functorArity(fs.data);
        off = 1;
    }
    for (std::uint32_t k = 0; k < n; ++k) {
        TaggedWord se = _seq.readMem(
            Module::Unify,
            LogicalAddr(Area::Heap, skel_addr + off + k),
            BranchOp::T1CaseTag);
        TaggedWord tv = _seq.readMem(Module::Unify,
                                     taddr.plus(off + k),
                                     BranchOp::T2Nop);
        if (!unifySkelElement(se, tv))
            return false;
    }
    return true;
}

} // namespace interp
} // namespace psi
