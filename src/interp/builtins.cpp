/**
 * @file
 * Built-in predicate dispatch and the simple built-ins.
 *
 * Argument values were already fetched into the A registers by
 * loadArgs() (charged to the get_arg module); the bodies here are
 * charged to the built module, except where they enter the general
 * unifier (unify module) or the trail (trail module).
 */

#include "interp/engine.hpp"

#include "base/logging.hpp"
#include "kl0/builtin_defs.hpp"

namespace psi {
namespace interp {

namespace {

constexpr auto kScr = micro::WfMode::Direct00_0F;
constexpr auto kReg = micro::WfMode::Direct10_3F;
constexpr auto kConstWf = micro::WfMode::Constant;
constexpr auto kNoWf = micro::WfMode::None;

} // namespace

bool
Engine::execIs()
{
    std::int64_t v = 0;
    if (!evalArith(readA(1, Module::Built), v))
        return false;
    if (v < INT32_MIN || v > INT32_MAX) {
        warn("is/2: result ", v, " overflows the 32-bit data part");
        return false;
    }
    return unify(readA(0, Module::Built),
                 TaggedWord::makeInt(static_cast<std::int32_t>(v)));
}

bool
Engine::execBuiltin(kl0::Builtin b)
{
    using kl0::Builtin;

    // Built-in entry dispatch (indexed jump through the builtin id)
    // plus argument staging from the A registers.
    _seq.step(Module::Built, BranchOp::T1GotoJr, kScr, kNoWf, kNoWf);
    _seq.texture(Module::GetArg, 2);
    _seq.texture(Module::Built, 4);

    switch (b) {
      case Builtin::True:
        return true;

      case Builtin::Fail:
        return false;

      case Builtin::Unify:
        return unify(readA(0, Module::Built), readA(1, Module::Built));

      case Builtin::NotUnify: {
        // Speculative unification: force every binding onto the trail
        // by raising the trail bounds, then undo them.
        std::uint32_t save_hb = _hb;
        std::uint32_t save_hl = _hl;
        std::uint32_t save_gt = _gt;
        std::uint64_t mark = trailTop();
        _hb = 0xffffffffu;
        _hl = 0xffffffffu;
        bool unified =
            unify(readA(0, Module::Built), readA(1, Module::Built));
        unwindTrail(mark);
        _gt = save_gt;
        _hb = save_hb;
        _hl = save_hl;
        return !unified;
      }

      case Builtin::Eq: {
        int c = 0;
        return termCompare(readA(0, Module::Built),
                           readA(1, Module::Built), c) &&
               c == 0;
      }
      case Builtin::NotEq: {
        int c = 0;
        return termCompare(readA(0, Module::Built),
                           readA(1, Module::Built), c) &&
               c != 0;
      }
      case Builtin::TermLt:
      case Builtin::TermGt:
      case Builtin::TermLe:
      case Builtin::TermGe: {
        int c = 0;
        if (!termCompare(readA(0, Module::Built),
                         readA(1, Module::Built), c)) {
            return false;
        }
        switch (b) {
          case Builtin::TermLt: return c < 0;
          case Builtin::TermGt: return c > 0;
          case Builtin::TermLe: return c <= 0;
          default: return c >= 0;
        }
      }

      case Builtin::Is:
        return execIs();

      case Builtin::Lt:
      case Builtin::Gt:
      case Builtin::Le:
      case Builtin::Ge:
      case Builtin::ArithEq:
      case Builtin::ArithNe:
        return arithCompare(b);

      case Builtin::IsVar: {
        Deref d = deref(readA(0, Module::Built), Module::Built);
        return d.unbound;
      }
      case Builtin::IsNonvar: {
        Deref d = deref(readA(0, Module::Built), Module::Built);
        return !d.unbound;
      }
      case Builtin::IsAtom: {
        Deref d = deref(readA(0, Module::Built), Module::Built);
        return !d.unbound &&
               (d.word.tag == Tag::Atom || d.word.tag == Tag::Nil);
      }
      case Builtin::IsInteger: {
        Deref d = deref(readA(0, Module::Built), Module::Built);
        return !d.unbound && d.word.tag == Tag::Int;
      }
      case Builtin::IsAtomic: {
        Deref d = deref(readA(0, Module::Built), Module::Built);
        return !d.unbound &&
               (d.word.tag == Tag::Atom || d.word.tag == Tag::Nil ||
                d.word.tag == Tag::Int || d.word.tag == Tag::Vector);
      }
      case Builtin::IsCompound: {
        Deref d = deref(readA(0, Module::Built), Module::Built);
        return !d.unbound &&
               (d.word.tag == Tag::List || d.word.tag == Tag::Struct);
      }

      case Builtin::Functor:
        return builtinFunctor();
      case Builtin::Arg:
        return builtinArg();
      case Builtin::Univ:
        return builtinUniv();

      case Builtin::Write:
        writeTerm(readA(0, Module::Built));
        return true;
      case Builtin::Nl:
        _seq.step(Module::Built, BranchOp::T2Nop, kConstWf, kNoWf,
                  kNoWf);
        if (_out.size() < _maxOutputBytes)
            _out.push_back('\n');
        return true;
      case Builtin::Tab: {
        std::int64_t n = 0;
        if (!evalArith(readA(0, Module::Built), n) || n < 0)
            return false;
        for (std::int64_t i = 0; i < n; ++i) {
            _seq.step(Module::Built, BranchOp::T1CondTrue, kConstWf,
                      kScr, kNoWf);
            if (_out.size() < _maxOutputBytes)
                _out.push_back(' ');
        }
        return true;
      }

      case Builtin::VectorNew:
      case Builtin::VectorGet:
      case Builtin::VectorSet:
      case Builtin::VectorSize:
        return builtinVector(b);

      case Builtin::GlobalSet:
      case Builtin::GlobalGet:
        return builtinGlobal(b);

      case Builtin::ProcessCall:
        return builtinProcessCall();

      case Builtin::NumBuiltins:
        break;
    }
    panic("bad builtin id ", static_cast<int>(b));
}

bool
Engine::builtinVector(kl0::Builtin b)
{
    using kl0::Builtin;

    if (b == Builtin::VectorNew) {
        Deref dn = deref(readA(0, Module::Built), Module::Built);
        if (dn.unbound || dn.word.tag != Tag::Int)
            return false;
        std::int32_t n = dn.word.asInt();
        if (n < 0 || n > (1 << 22)) {
            warn("vector_new: bad size ", n);
            return false;
        }
        std::uint32_t base = _vecTop;
        _seq.writeMem(Module::Built, LogicalAddr(Area::Heap, base),
                      TaggedWord::makeInt(n), BranchOp::T2Nop, kScr);
        for (std::int32_t i = 0; i < n; ++i) {
            _seq.writeMem(Module::Built,
                          LogicalAddr(Area::Heap, base + 1 + i),
                          TaggedWord::makeInt(0), BranchOp::T3Nop,
                          kScr);
        }
        _vecTop += static_cast<std::uint32_t>(n) + 1;
        return unify(readA(1, Module::Built),
                     {Tag::Vector, LogicalAddr(Area::Heap, base).pack()});
    }

    Deref dv = deref(readA(0, Module::Built), Module::Built);
    if (dv.unbound || dv.word.tag != Tag::Vector)
        return false;
    LogicalAddr base = LogicalAddr::unpack(dv.word.data);
    TaggedWord size = _seq.readMem(Module::Built, base,
                                   BranchOp::T1CondFalse, kScr, kScr);

    if (b == Builtin::VectorSize) {
        return unify(readA(1, Module::Built), size);
    }

    Deref di = deref(readA(1, Module::Built), Module::Built);
    if (di.unbound || di.word.tag != Tag::Int)
        return false;
    std::int32_t i = di.word.asInt();
    if (i < 0 || i >= size.asInt())
        return false;

    if (b == Builtin::VectorGet) {
        TaggedWord w = _seq.readMem(
            Module::Built, base.plus(1 + static_cast<std::uint32_t>(i)),
            BranchOp::T1Nop, kScr, kReg);
        return unify(readA(2, Module::Built), w);
    }

    // VectorSet: destructive, never trailed (heap vectors are the
    // PSI's non-backtrackable rewritable data).
    Deref dx = deref(readA(2, Module::Built), Module::Built);
    _seq.writeMem(Module::Built,
                  base.plus(1 + static_cast<std::uint32_t>(i)),
                  dx.unbound ? TaggedWord{Tag::Ref, dx.cell.pack()}
                             : dx.word,
                  BranchOp::T2Nop, kReg);
    return true;
}

} // namespace interp
} // namespace psi
