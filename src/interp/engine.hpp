/**
 * @file
 * The PSI firmware interpreter.
 *
 * One Engine owns the full machine: memory system (translation +
 * cache + main memory), microprogram sequencer (work file, timing,
 * dynamic-frequency statistics), symbol table and code generator.
 * Programs are loaded once; queries are compiled on the fly and
 * executed by the firmware main loop.
 *
 * Every firmware action is issued through the sequencer, so the
 * statistics behind the paper's Tables 2-7 are measured from the work
 * the model actually performs.  The method split across translation
 * units mirrors the firmware modules: engine.cpp (control), unify.cpp
 * (unification, trail), builtins*.cpp (built-ins, get_arg).
 */

#ifndef PSI_INTERP_ENGINE_HPP
#define PSI_INTERP_ENGINE_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "interp/machine.hpp"
#include "kl0/builtin_defs.hpp"
#include "kl0/codegen.hpp"
#include "kl0/compiled_program.hpp"
#include "kl0/program.hpp"
#include "kl0/symbols.hpp"
#include "mem/memory_system.hpp"
#include "micro/sequencer.hpp"

namespace psi {
namespace interp {

/**
 * Firmware feature switches for the design studies the paper's
 * evaluation motivates (§4 discussions and the PSI-II redesign the
 * conclusion announces).  The defaults are the PSI as measured.
 */
struct FirmwareOptions
{
    /**
     * Clause selection by first-argument tag before head
     * unification - the "improving the instruction code suitable for
     * the compile time optimization" direction of the redesign
     * (PSI-II); off on the measured PSI.
     */
    bool firstArgIndexing = false;
    /** Buffer trail entries in the WF via WFAR2 (paper §4.3). */
    bool trailBuffer = true;
    /** Use the dedicated Write-Stack cache command for pushes. */
    bool writeStackCommand = true;
    /** Cache local frames in the WF buffers (TRO support, §2.2). */
    bool frameBuffers = true;
};

/** The microprogrammed KL0 interpreter. */
class Engine
{
  public:
    explicit Engine(const CacheConfig &config = CacheConfig::psi(),
                    const FirmwareOptions &fw = FirmwareOptions());

    /** Load (normalize + compile) a program into the heap image. */
    void load(const kl0::Program &program);

    /**
     * Consult @p text.  On a fresh machine this routes through the
     * single compile entry point, CompiledProgram::compile, and
     * installs the image; on a machine that already holds code it
     * compiles incrementally, appending clauses (the REPL path).
     */
    void consult(const std::string &text);

    /**
     * Code-generation options for subsequent consults and query
     * compiles.  load(image) overrides them with the image's own
     * options so the engine stays consistent with the installed code.
     */
    void setCompileOptions(const kl0::CompileOptions &opts)
    {
        _codegen.setOptions(opts);
    }
    const kl0::CompileOptions &compileOptions() const
    {
        return _codegen.options();
    }

    /**
     * Install a precompiled image into a fully reset machine.
     *
     * Equivalent to constructing a fresh Engine and consulting the
     * image's source - results and every hardware statistic are
     * byte-identical (the image replays its heap stores in emission
     * order, reproducing the physical layout of a consult) - but
     * without paying parse/normalize/codegen on this thread.  This
     * is the warm-engine hot path of the psid worker loop.
     */
    void load(const kl0::CompiledProgram &image);

    /** Same, first re-configuring the cache model for this run. */
    void load(const kl0::CompiledProgram &image,
              const CacheConfig &cache);

    /**
     * Return the machine to its just-constructed state: memory
     * contents and mappings, cache residency, work file, texture
     * ring, statistics, registers, vector/process state.  The symbol
     * table and heap image are cleared with everything else, so a
     * load()/consult() must follow before the next solve().
     */
    void resetMachine();

    /** Compile and run a query given as text, e.g. "append(X,Y,[1])". */
    RunResult solve(const std::string &query_text,
                    const RunLimits &limits = RunLimits());

    /** Compile and run a query term. */
    RunResult solve(const kl0::TermPtr &goal,
                    const RunLimits &limits = RunLimits());

    /** @name Component access (benches, tools, tests) */
    /// @{
    MemorySystem &mem() { return _mem; }
    micro::Sequencer &seq() { return _seq; }
    kl0::SymbolTable &symbols() { return _syms; }
    const kl0::CodeGen &codegen() const { return _codegen; }
    /// @}

    /**
     * When true (default), statistics and the cache are reset after
     * query compilation so measurements cover execution only.
     */
    void setResetStatsOnRun(bool v) { _resetStatsOnRun = v; }

    /** @name Per-run first-argument-index counters
     * Calls dispatched through an index (bound first argument) vs
     * falling back to the linear chain (unbound or uncovered tag),
     * and clause candidates visited by the trial loop.  Reset at
     * every solve; harvested into pool metrics by the psid worker.
     */
    /// @{
    std::uint64_t indexHits() const { return _idxHits; }
    std::uint64_t indexFallbacks() const { return _idxFallbacks; }
    std::uint64_t clauseTries() const { return _clauseTries; }
    /// @}

  private:
    using Module = micro::Module;
    using BranchOp = micro::BranchOp;
    using WfMode = micro::WfMode;

    // ----- engine.cpp: control ---------------------------------------
    void resetRun();
    RunResult run(const kl0::QueryCode &qc, const RunLimits &limits);
    /** Sets result.status when a limit ends the run early. */
    void mainLoop(const kl0::QueryCode &qc, RunResult &result,
                  const RunLimits &limits);
    /** Load call arguments at _cp into A registers; advances _cp. */
    void loadArgs(std::uint32_t arity, Module m);
    /** Perform a user-predicate call. @return false to backtrack. */
    bool doCall(std::uint32_t functor_idx, std::uint32_t goal_cp,
                bool last_call);
    /**
     * Shallow-backtracking clause trial loop: try candidates from
     * @p table_addr against the A registers, undoing failed head
     * unifications from work-file state; push a choice point only
     * when a clause commits with alternatives remaining.
     *
     * The caller context for deep retries (frame location, global
     * base) is taken from _act at entry.
     */
    bool tryClauses(std::uint32_t table_addr, std::uint32_t goal_cp,
                    std::uint32_t arity, std::uint32_t cont_cp,
                    std::uint32_t cont_env, std::uint32_t cut_b);
    /**
     * Resolve a first-argument index rooted at @p root to the clause
     * table tryClauses should walk: dereference A1, switch on its
     * tag, probe the hash block when the class is keyed.  Unbound or
     * uncovered first arguments take the linear-table fallback.
     */
    std::uint32_t resolveIndex(std::uint32_t root);
    /** Enter one clause: globals, locals, head unification. */
    bool enterClause(std::uint32_t clause_addr, std::uint32_t cont_cp,
                     std::uint32_t cont_env, std::uint32_t cut_b);
    /** Restore state from the newest choice point; false if none. */
    bool backtrack();
    void pushChoicePoint(std::uint32_t goal_cp, std::uint32_t cont_cp,
                         std::uint32_t cont_env,
                         std::uint32_t caller_frame_enc,
                         std::uint32_t caller_global_base,
                         std::uint32_t saved_gt, std::uint32_t saved_lt,
                         std::uint32_t saved_tt, std::uint32_t saved_b,
                         std::uint32_t next_clause_addr);
    void pushEnvFrame();
    void restoreEnv(std::uint32_t env_addr);
    /** Copy the buffer frame to the local stack if needed. */
    void flushFrame();
    void doCut();
    /** Re-read HB/HL from the (new) newest choice point. */
    void reloadTrailBounds(Module m);
    void extractSolution(const kl0::QueryCode &qc, RunResult &result);
    kl0::TermPtr exportTerm(const TaggedWord &w, int depth = 0);

    // ----- local frame access -----------------------------------------
    TaggedWord readLocal(std::uint32_t slot, Module m);
    void writeLocal(std::uint32_t slot, const TaggedWord &w, Module m);
    /** Fetch a variable's value for an argument position. */
    TaggedWord fetchVarArg(const VarSlot &vs, Module m);
    /** Allocate a fresh unbound global cell; @return a Ref to it. */
    TaggedWord newGlobalCell(Module m);

    // ----- unify.cpp: unification and trail ---------------------------
    Deref deref(const TaggedWord &w, Module m);
    void bind(const LogicalAddr &cell, const TaggedWord &value,
              Module m);
    void trailPush(const LogicalAddr &cell);
    void trailFlush();
    void unwindTrail(std::uint64_t to_tt);
    std::uint64_t trailTop() const
    {
        return _memTT + _trailBufCount;
    }
    bool unify(const TaggedWord &a, const TaggedWord &b);
    bool unifyHead(const TaggedWord &desc, const TaggedWord &arg);
    /** Instantiate a heap skeleton onto the global stack. */
    TaggedWord instantiate(std::uint32_t skel_addr, bool is_cons);
    /** Read-mode unification of a skeleton against a bound term. */
    bool unifySkeleton(std::uint32_t skel_addr, bool is_cons,
                       const TaggedWord &term);
    /** One element of a skeleton against one runtime cell. */
    bool unifySkelElement(const TaggedWord &skel_elem,
                          const TaggedWord &cell_value);

    // ----- builtins.cpp / builtins_arith.cpp / builtins_term.cpp ------
    bool execBuiltin(kl0::Builtin b);
    /** is/2 body, shared by the generic dispatch and CallIs. */
    bool execIs();
    bool evalArith(const TaggedWord &w, std::int64_t &out);
    bool arithCompare(kl0::Builtin b);
    /** Standard order comparison; -1/0/+1 via @p out. */
    bool termCompare(const TaggedWord &a, const TaggedWord &b,
                     int &out);
    bool structuralEq(const TaggedWord &a, const TaggedWord &b);
    void writeTerm(const TaggedWord &w, int depth = 0);
    bool builtinFunctor();
    bool builtinArg();
    bool builtinUniv();
    bool builtinVector(kl0::Builtin b);
    bool builtinGlobal(kl0::Builtin b);
    /**
     * process_call/2: run an arity-0 predicate to its first solution
     * inside another process's stack areas (the paper's §2.1
     * multi-process support: the heap is shared, the four stacks are
     * independent logical spaces).  The work-file contents and the
     * current control registers are saved across the switch, as on
     * the PSI.
     */
    bool builtinProcessCall();
    /** Nested firmware loop used by process_call. */
    bool runNested(std::uint32_t functor_idx, std::uint64_t max_steps);

    TaggedWord readA(std::uint32_t i, Module m);
    void writeA(std::uint32_t i, const TaggedWord &w, Module m);

    // ----- components --------------------------------------------------
    /** Quick check: can clause head arg 1 possibly match @p a1? */
    bool firstArgMayMatch(std::uint32_t clause_addr,
                          const TaggedWord &a1);

    MemorySystem _mem;
    micro::Sequencer _seq;
    kl0::SymbolTable _syms;
    kl0::CodeGen _codegen;
    FirmwareOptions _fw;

    // ----- machine registers (conceptually WF scratch) -----------------
    std::uint32_t _gt = kStackBase;   ///< global stack top
    std::uint32_t _lt = kStackBase;   ///< local stack top
    std::uint32_t _ct = kStackBase;   ///< control stack top
    std::uint32_t _memTT = kStackBase;///< trail stack top (memory part)
    std::uint32_t _b = kNoChoice;     ///< newest choice point
    std::uint32_t _hb = 0;            ///< global top at newest CP
    std::uint32_t _hl = 0;            ///< local top at newest CP
    std::uint32_t _cp = 0;            ///< code pointer
    Activation _act;
    int _curBuf = 0;
    std::uint32_t _trailBufCount = 0; ///< entries in the WF buffer
    std::uint32_t _vecTop = kl0::kVectorBase;
    std::uint64_t _inferences = 0;
    std::uint64_t _idxHits = 0;       ///< index-dispatched calls
    std::uint64_t _idxFallbacks = 0;  ///< linear-fallback calls
    std::uint64_t _clauseTries = 0;   ///< clause candidates visited
    std::string _out;
    std::size_t _maxOutputBytes = 1 << 20;
    bool _failFlag = false;           ///< set by dispatch on failure
    bool _resetStatsOnRun = true;
    bool _inProcessCall = false;      ///< nesting guard
    std::vector<bool> _warnedUndefined;
    /** Per-process stack cursors (index = process id; the paper's
     *  per-process logical areas are offset windows of 1 << 24
     *  words within each stack area). */
    struct ProcTops
    {
        std::uint32_t gt, lt, ct, tt;
        bool started = false;
    };
    std::array<ProcTops, 8> _procTops{};
};

} // namespace interp
} // namespace psi

#endif // PSI_INTERP_ENGINE_HPP
