#include "interp/machine.hpp"

#include <sstream>

namespace psi {
namespace interp {

std::string
Solution::str() const
{
    std::ostringstream os;
    bool first = true;
    for (const auto &kv : bindings) {
        if (!first)
            os << ", ";
        os << kv.first << " = " << kv.second->str();
        first = false;
    }
    if (first)
        os << "true";
    return os.str();
}

} // namespace interp
} // namespace psi
