#include "interp/machine.hpp"

#include <sstream>

namespace psi {
namespace interp {

const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::Ok:
        return "ok";
      case RunStatus::StepLimit:
        return "step-limit";
      case RunStatus::Timeout:
        return "timeout";
    }
    return "?";
}

const char *
execModeName(ExecMode m)
{
    switch (m) {
      case ExecMode::Fidelity:
        return "fidelity";
      case ExecMode::Fast:
        return "fast";
    }
    return "?";
}

std::string
Solution::str() const
{
    std::ostringstream os;
    bool first = true;
    for (const auto &kv : bindings) {
        if (!first)
            os << ", ";
        os << kv.first << " = " << kv.second->str();
        first = false;
    }
    if (first)
        os << "true";
    return os.str();
}

} // namespace interp
} // namespace psi
