/**
 * @file
 * Machine-level value types of the PSI firmware interpreter:
 * frame locations, control-frame layouts, dereference results and
 * the run-result types returned to embedders.
 *
 * Execution model (paper §2.1/§2.2, DEC-10-interpreter style):
 *
 *  - four stacks: the local stack holds local-variable frames, the
 *    global stack compound-term instances and their variables, the
 *    control stack 10-word environment / choice-point frames, the
 *    trail stack reset information;
 *  - the current activation's control information lives in work-file
 *    registers and is saved to the control stack only when necessary
 *    (non-last calls push an environment frame; calls to predicates
 *    with several candidate clauses push a choice point);
 *  - the current local frame lives in one of the two 64-word work-file
 *    frame buffers, used alternately along last-call chains
 *    (tail-recursion optimization); a frame is flushed to the local
 *    stack when it must survive (non-last call) or when a choice
 *    point will re-read the caller's arguments on retry;
 *  - bindings are trailed conditionally against the newest choice
 *    point's saved stack tops; trail entries are buffered in the
 *    work file (via WFAR2) and flushed to the trail stack in bursts.
 */

#ifndef PSI_INTERP_MACHINE_HPP
#define PSI_INTERP_MACHINE_HPP

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kl0/term.hpp"
#include "mem/area.hpp"
#include "mem/tagged_word.hpp"

namespace psi {
namespace interp {

/** Where the current clause's local frame lives. */
struct FrameLoc
{
    enum class Kind : std::uint8_t
    {
        None = 0,  ///< clause has no locals
        Buf0 = 1,  ///< work-file frame buffer 0
        Buf1 = 2,  ///< work-file frame buffer 1
        Stack = 3, ///< flushed to the local stack
    };

    Kind kind = Kind::None;
    std::uint32_t addr = 0;  ///< local-stack offset when Stack

    /** Pack into a control-frame word. */
    std::uint32_t
    encode() const
    {
        return (static_cast<std::uint32_t>(kind) << 28) |
               (addr & 0x0fffffffu);
    }

    static FrameLoc
    decode(std::uint32_t w)
    {
        FrameLoc f;
        f.kind = static_cast<Kind>(w >> 28);
        f.addr = w & 0x0fffffffu;
        return f;
    }

    bool inBuffer() const
    {
        return kind == Kind::Buf0 || kind == Kind::Buf1;
    }
};

/** Sentinel: continuation environment of the query itself. */
constexpr std::uint32_t kRootEnv = 0xffffffffu;

/** B == kNoChoice means no choice point is live. */
constexpr std::uint32_t kNoChoice = 0;

/** Stacks start at offset 16 so 0 never aliases a valid frame. */
constexpr std::uint32_t kStackBase = 16;

/** Words per control-stack frame (the paper's 10-word frames). */
constexpr std::uint32_t kFrameWords = 10;

/** @name Choice-point frame word indices */
/// @{
constexpr int kCpGoalCP = 0;        ///< code address of the Call word
constexpr int kCpCallerFrame = 1;   ///< caller FrameLoc (encoded)
constexpr int kCpCallerGlobal = 2;  ///< caller's global base
constexpr int kCpContCP = 3;        ///< callee continuation code ptr
constexpr int kCpContEnv = 4;       ///< callee continuation env
constexpr int kCpSavedGT = 5;
constexpr int kCpSavedLT = 6;
constexpr int kCpSavedTT = 7;
constexpr int kCpSavedB = 8;
constexpr int kCpNextClause = 9;    ///< next ClauseRef table address
/// @}

/** @name Environment frame word indices */
/// @{
constexpr int kEnvContCP = 0;
constexpr int kEnvContEnv = 1;
constexpr int kEnvFrameLoc = 2;
constexpr int kEnvGlobalBase = 3;
constexpr int kEnvCutB = 4;
constexpr int kEnvNLocals = 5;
constexpr int kEnvClauseAddr = 6;
// words 7..9 reserved (written as zero; the PSI frame is 10 words)
/// @}

/** The current activation's control registers (held in the WF). */
struct Activation
{
    std::uint32_t contCP = 0;
    std::uint32_t contEnv = kRootEnv;
    FrameLoc frame;
    std::uint32_t globalBase = 0;
    std::uint32_t cutB = kNoChoice;
    std::uint32_t nlocals = 0;
    std::uint32_t clauseAddr = 0;
    /** Control-stack address of this activation's own environment
     *  frame, or 0 when none has been pushed yet. */
    std::uint32_t selfEnv = 0;
};

/** Result of dereferencing a word. */
struct Deref
{
    TaggedWord word;      ///< final non-Ref word, or the unbound Ref
    bool unbound = false;
    LogicalAddr cell;     ///< the unbound cell when unbound
};

/** Limits for one query run (shared by both engines). */
struct RunLimits
{
    int maxSolutions = 1;
    std::uint64_t maxSteps = 2'000'000'000;  ///< safety valve
    std::size_t maxOutputBytes = 1 << 20;
    /**
     * Wall-clock execution budget in host nanoseconds; 0 = unlimited.
     * Checked periodically in the engine main loops, so a runaway
     * query returns RunStatus::Timeout with partial statistics
     * instead of wedging its caller (or a psid pool worker).
     */
    std::uint64_t deadlineNs = 0;
};

/** How a query run ended. */
enum class RunStatus : std::uint8_t
{
    Ok = 0,        ///< ran to completion (success or final failure)
    StepLimit = 1, ///< RunLimits::maxSteps exhausted
    Timeout = 2,   ///< RunLimits::deadlineNs wall-clock budget spent
};

/** Short name for reports ("ok" / "step-limit" / "timeout"). */
const char *runStatusName(RunStatus s);

/**
 * Which execution engine serves a solve.
 *
 * Fidelity is the microcoded interpreter whose sequencer drives the
 * paper's model clock and cache statistics (Tables 2-7). Fast is the
 * token-threaded flat-dispatch engine (src/fast/): byte-identical
 * answers and output, no per-step accounting (steps and model time
 * report as zero).
 */
enum class ExecMode : std::uint8_t
{
    Fidelity = 0,
    Fast = 1,
};

/** Short name for reports ("fidelity" / "fast"). */
const char *execModeName(ExecMode m);

/**
 * Armed wall-clock deadline for RunLimits::deadlineNs.
 *
 * Constructed at run entry; the engine main loops poll expired()
 * every few thousand iterations, so the check costs one clock read
 * amortized over ~1 ms of host work and never perturbs the model
 * statistics (the model clock is driven by microsteps, not host
 * time).
 */
class Deadline
{
  public:
    explicit Deadline(std::uint64_t budget_ns)
        : _armed(budget_ns != 0),
          _expiry(std::chrono::steady_clock::now() +
                  std::chrono::nanoseconds(budget_ns))
    {}

    bool armed() const { return _armed; }

    bool
    expired() const
    {
        return _armed &&
               std::chrono::steady_clock::now() >= _expiry;
    }

  private:
    bool _armed;
    std::chrono::steady_clock::time_point _expiry;
};

/** One solution: bindings of the named query variables. */
struct Solution
{
    std::map<std::string, kl0::TermPtr> bindings;

    std::string str() const;
};

/** Outcome of running a query. */
struct RunResult
{
    std::vector<Solution> solutions;
    std::uint64_t inferences = 0;  ///< user-predicate calls
    std::uint64_t timeNs = 0;      ///< model time (steps + stalls)
    std::uint64_t steps = 0;       ///< microinstruction steps
    RunStatus status = RunStatus::Ok;
    bool stepLimitHit = false;     ///< status == StepLimit (legacy)
    std::string output;            ///< text written by write/nl/tab

    bool succeeded() const { return !solutions.empty(); }
    bool timedOut() const { return status == RunStatus::Timeout; }

    /** Logical inferences per second under the model clock. */
    double
    lips() const
    {
        return timeNs == 0
            ? 0.0
            : static_cast<double>(inferences) * 1e9 /
              static_cast<double>(timeNs);
    }
};

} // namespace interp
} // namespace psi

#endif // PSI_INTERP_MACHINE_HPP
