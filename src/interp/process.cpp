/**
 * @file
 * Multi-process support (paper §2.1).
 *
 * The PSI runs multiple programs - user processes and interrupt
 * handling processes - concurrently: the heap area is shared by all
 * of them, while the four stack areas of each process are
 * independent logical spaces mapped through the hardware address
 * translation table.
 *
 * This model realizes that organization with per-process offset
 * windows (1 << 24 words) inside each stack area and a cooperative
 * `process_call(ProcId, PredAtom)` built-in that runs an arity-0
 * predicate to its first solution in the target process's areas.
 * Switching saves and restores the machine registers and the
 * work-file state, charging the control-frame traffic a real switch
 * costs; the distinct stack pages are what degrade cache locality in
 * the window-2/3 scenarios, as the paper observes.
 *
 * A small shared registry (global_set/global_get, heap-resident)
 * lets processes exchange atomic values and heap-vector handles -
 * the shared rewritable data of the PSI heap.
 */

#include "interp/engine.hpp"

#include "base/logging.hpp"

namespace psi {
namespace interp {

namespace {

constexpr auto kScr = micro::WfMode::Direct00_0F;
constexpr auto kReg = micro::WfMode::Direct10_3F;

/** Words per process window inside each stack area. */
constexpr std::uint32_t kProcWindow = 1u << 24;

/** Heap-resident shared registry (below the vector region). */
constexpr std::uint32_t kGlobalRegBase = kl0::kVectorBase - 64;
constexpr std::uint32_t kGlobalRegSlots = 16;

} // namespace

bool
Engine::builtinGlobal(kl0::Builtin b)
{
    Deref dk = deref(readA(0, Module::Built), Module::Built);
    if (dk.unbound || dk.word.tag != Tag::Int)
        return false;
    std::int32_t k = dk.word.asInt();
    if (k < 0 || k >= static_cast<std::int32_t>(kGlobalRegSlots))
        return false;
    LogicalAddr slot(Area::Heap,
                     kGlobalRegBase + static_cast<std::uint32_t>(k));

    if (b == kl0::Builtin::GlobalSet) {
        Deref dv = deref(readA(1, Module::Built), Module::Built);
        // Only process-lifetime values may be stored: atomic data and
        // heap-vector handles.  Stack references would dangle.
        if (dv.unbound ||
            (dv.word.tag != Tag::Atom && dv.word.tag != Tag::Int &&
             dv.word.tag != Tag::Nil && dv.word.tag != Tag::Vector)) {
            return false;
        }
        _seq.writeMem(Module::Built, slot, dv.word, BranchOp::T2Nop,
                      kReg);
        return true;
    }

    TaggedWord v = _seq.readMem(Module::Built, slot,
                                BranchOp::T1CondFalse, kScr, kReg);
    if (v.tag == Tag::Undef)
        return false;
    return unify(readA(1, Module::Built), v);
}

bool
Engine::runNested(std::uint32_t functor_idx, std::uint64_t max_steps)
{
    bool ok = doCall(functor_idx, 0, true);
    if (!ok)
        ok = backtrack();
    if (!ok)
        return false;

    std::uint64_t start = _seq.stats().totalSteps();
    for (;;) {
        if (_seq.stats().totalSteps() - start > max_steps) {
            warn("process_call: step budget exhausted");
            return false;
        }
        if (_failFlag) {
            _failFlag = false;
            if (!backtrack())
                return false;
            continue;
        }

        TaggedWord w = _seq.readMem(Module::Control,
                                    LogicalAddr(Area::Heap, _cp),
                                    BranchOp::T1CaseIrOpcode);
        ++_cp;
        _seq.texture(Module::Control, 1);

        switch (w.tag) {
          case Tag::Call:
          case Tag::CallLast: {
            std::uint32_t goal_cp = _cp - 1;
            loadArgs(_syms.functorArity(w.data), Module::Control);
            if (!doCall(w.data, goal_cp, w.tag == Tag::CallLast))
                _failFlag = true;
            break;
          }
          case Tag::CallBuiltin: {
            auto b = static_cast<kl0::Builtin>(w.data);
            loadArgs(kl0::builtinArity(b), Module::GetArg);
            if (!execBuiltin(b))
                _failFlag = true;
            break;
          }
          case Tag::CallIs:
            loadArgs(2, Module::GetArg);
            if (!execIs())
                _failFlag = true;
            break;
          case Tag::CallCmp:
            loadArgs(2, Module::GetArg);
            if (!arithCompare(static_cast<kl0::Builtin>(w.data)))
                _failFlag = true;
            break;
          case Tag::CutOp:
            doCut();
            break;
          case Tag::Proceed: {
            _seq.step(Module::Control, BranchOp::T1CondTrue, kScr,
                      kScr);
            if (_act.contEnv == kRootEnv)
                return true;  // first solution: the process yields
            if (_act.frame.kind == FrameLoc::Kind::Stack &&
                _act.frame.addr + _act.nlocals == _lt &&
                _hl <= _act.frame.addr) {
                _lt = _act.frame.addr;
            }
            std::uint32_t rcp = _act.contCP;
            restoreEnv(_act.contEnv);
            _cp = rcp;
            break;
          }
          default:
            panic("bad instruction word in nested run: ",
                  tagName(w.tag));
        }
    }
}

bool
Engine::builtinProcessCall()
{
    if (_inProcessCall) {
        warn("process_call: nesting is not supported");
        return false;
    }

    Deref dp = deref(readA(0, Module::Built), Module::Built);
    Deref df = deref(readA(1, Module::Built), Module::Built);
    if (dp.unbound || dp.word.tag != Tag::Int || df.unbound ||
        df.word.tag != Tag::Atom) {
        return false;
    }
    std::int32_t pid = dp.word.asInt();
    if (pid < 1 || pid >= static_cast<std::int32_t>(_procTops.size()))
        return false;
    std::uint32_t f =
        _syms.functor(_syms.atomName(df.word.data), 0);

    // ---- process switch: save the current machine state ------------
    // The control registers and the live work-file regions go to the
    // control stack (a 10-word frame of register state plus the
    // dirty frame buffer), as the PSI saved WF state "as necessary".
    _seq.texture(Module::Control, 12);
    for (int i = 0; i < 10; ++i) {
        _seq.pushMem(Module::Control,
                     LogicalAddr(Area::Control, _ct + i),
                     {Tag::Int, 0}, BranchOp::T3Nop, kReg);
    }

    struct Saved
    {
        std::uint32_t gt, lt, ct, memTT, b, hb, hl, cp;
        std::uint32_t trailBufCount;
        int curBuf;
        bool failFlag;
        Activation act;
        std::array<TaggedWord, 64> regs;
        std::array<TaggedWord, 2 * micro::kWfFrameBufWords> frames;
        std::array<TaggedWord, micro::kWfTrailBufWords> trail;
    } s;
    s.gt = _gt;
    s.lt = _lt;
    s.ct = _ct + 10;  // past the switch frame
    s.memTT = _memTT;
    s.b = _b;
    s.hb = _hb;
    s.hl = _hl;
    s.cp = _cp;
    s.trailBufCount = _trailBufCount;
    s.curBuf = _curBuf;
    s.failFlag = _failFlag;
    s.act = _act;
    for (std::uint16_t i = 0; i < 64; ++i)
        s.regs[i] = _seq.wf().read(i);
    for (std::uint16_t i = 0; i < 2 * micro::kWfFrameBufWords; ++i)
        s.frames[i] = _seq.wf().read(micro::kWfFrameBuf0 + i);
    for (std::uint16_t i = 0; i < micro::kWfTrailBufWords; ++i)
        s.trail[i] = _seq.wf().read(micro::kWfTrailBuf + i);

    // ---- enter the target process's areas --------------------------
    std::uint32_t base =
        static_cast<std::uint32_t>(pid) * kProcWindow + kStackBase;
    _gt = base;
    _lt = base;
    _ct = base;
    _memTT = base;
    _b = kNoChoice;
    _hb = _hl = 0;
    _trailBufCount = 0;
    _curBuf = 0;
    _failFlag = false;
    _act = Activation{};
    _act.globalBase = _gt;
    _inProcessCall = true;

    bool ok = runNested(f, 200'000'000);

    // ---- switch back -------------------------------------------------
    _inProcessCall = false;
    _seq.texture(Module::Control, 12);
    _gt = s.gt;
    _lt = s.lt;
    _ct = s.ct - 10;
    _memTT = s.memTT;
    _b = s.b;
    _hb = s.hb;
    _hl = s.hl;
    _cp = s.cp;
    _trailBufCount = s.trailBufCount;
    _curBuf = s.curBuf;
    _failFlag = s.failFlag;
    _act = s.act;
    for (std::uint16_t i = 0; i < 64; ++i)
        _seq.wf().write(i, s.regs[i]);
    for (std::uint16_t i = 0; i < 2 * micro::kWfFrameBufWords; ++i)
        _seq.wf().write(micro::kWfFrameBuf0 + i, s.frames[i]);
    for (std::uint16_t i = 0; i < micro::kWfTrailBufWords; ++i)
        _seq.wf().write(micro::kWfTrailBuf + i, s.trail[i]);
    for (int i = 0; i < 10; ++i) {
        _seq.readMem(Module::Control,
                     LogicalAddr(Area::Control, _ct + i),
                     BranchOp::T2Nop, micro::WfMode::None, kReg);
    }
    return ok;
}

} // namespace interp
} // namespace psi
