/**
 * @file
 * Bounded MPMC job queue with backpressure.
 *
 * The psid service feeds its engine pool through one of these: any
 * number of producers submit jobs, the pool's worker threads consume
 * them.  The queue is bounded so a burst of submissions exerts
 * backpressure instead of growing without limit; the producer picks
 * the policy per call (push() blocks until space, tryPush() fails
 * fast so the caller can reject the request).
 *
 * close() starts shutdown: producers are refused from that point,
 * consumers drain the remaining items and then see end-of-stream.
 */

#ifndef PSI_SERVICE_JOB_QUEUE_HPP
#define PSI_SERVICE_JOB_QUEUE_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace psi {
namespace service {

/** Bounded multi-producer / multi-consumer FIFO. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity)
        : _capacity(capacity == 0 ? 1 : capacity)
    {}

    /**
     * Enqueue, blocking while the queue is full.
     * @return false when the queue was closed (item dropped).
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(_m);
        _notFull.wait(lock, [this] {
            return _closed || _items.size() < _capacity;
        });
        if (_closed)
            return false;
        _items.push_back(std::move(item));
        _notEmpty.notify_one();
        return true;
    }

    /**
     * Enqueue without blocking.
     * @return false when the queue is full or closed; @p item is
     *         left untouched so the caller can report the rejection.
     */
    bool
    tryPush(T &item)
    {
        std::lock_guard<std::mutex> lock(_m);
        if (_closed || _items.size() >= _capacity)
            return false;
        _items.push_back(std::move(item));
        _notEmpty.notify_one();
        return true;
    }

    /**
     * Dequeue, blocking while the queue is empty.
     * @return std::nullopt once the queue is closed and drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(_m);
        _notEmpty.wait(lock,
                       [this] { return _closed || !_items.empty(); });
        if (_items.empty())
            return std::nullopt;
        T item = std::move(_items.front());
        _items.pop_front();
        _notFull.notify_one();
        return item;
    }

    /** Refuse new items; wake every waiter. Idempotent. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(_m);
        _closed = true;
        _notFull.notify_all();
        _notEmpty.notify_all();
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(_m);
        return _items.size();
    }

    std::size_t capacity() const { return _capacity; }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(_m);
        return _closed;
    }

  private:
    const std::size_t _capacity;
    mutable std::mutex _m;
    std::condition_variable _notFull;
    std::condition_variable _notEmpty;
    std::deque<T> _items;
    bool _closed = false;
};

} // namespace service
} // namespace psi

#endif // PSI_SERVICE_JOB_QUEUE_HPP
