/**
 * @file
 * psid engine pool: N worker threads serving batch queries.
 *
 * Architecture (one box per worker):
 *
 *     submit() ──> sched::Scheduler<Job> ──> worker 0 [warm Engine]
 *        │          (WFQ + EDF + affinity    worker 1 [warm Engine]
 *        └─ std::future<JobOutcome>  batching)  ...  [metrics shard]
 *                                          │
 *                               shared ProgramCache
 *                            (compile once per source)
 *
 * Dispatch is pull-based: each worker asks the scheduler for its
 * next job, passing the affinity key of the image its warm engine
 * currently holds, so the scheduler can batch same-image requests
 * onto the worker that already has the image resident (see
 * sched/scheduler.hpp for the fairness/affinity/age policy).  The
 * default AffinityScheduler reorders dispatch but never results:
 * Engine::load() still fully resets the machine per job, so results
 * and hardware statistics stay byte-identical to sequential
 * runOnPsi() under any dispatch order.  SchedKind::Fifo restores
 * the original strict arrival order.
 *
 * PSI engines are stateful and non-reentrant (heap image, work file,
 * cache), so the pool never shares one between threads.  Each worker
 * keeps one long-lived private Engine; per job it fetches the
 * immutable kl0::CompiledProgram from the shared ProgramCache
 * (compiling only on the first sight of a source) and installs it
 * with Engine::load(), which fully resets machine, memory, cache and
 * statistics state.  The reset/replay path reproduces the physical
 * memory layout of a fresh consult exactly, so a concurrent batch
 * still produces byte-identical per-program results and hardware
 * statistics to sequential runOnPsi() - the property the service
 * tests pin down - while keeping parse/normalize/codegen off the
 * per-request hot path.
 *
 * Deadlines ride in RunLimits::deadlineNs and cover the whole
 * request, starting at submit: queue wait is charged against the
 * budget, a job that expires while queued completes as
 * RunStatus::Timeout without touching an engine, and a runaway query
 * returns RunStatus::Timeout with partial statistics so its worker
 * moves on instead of wedging.
 */

#ifndef PSI_SERVICE_ENGINE_POOL_HPP
#define PSI_SERVICE_ENGINE_POOL_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "interp/machine.hpp"
#include "mem/cache.hpp"
#include "programs/registry.hpp"
#include "sched/scheduler.hpp"
#include "service/metrics.hpp"
#include "service/program_cache.hpp"
#include "system.hpp"

namespace psi {
namespace service {

/** One batch query: a workload plus its machine configuration. */
struct QueryJob
{
    programs::BenchProgram program;
    CacheConfig cache = CacheConfig::psi();
    interp::RunLimits limits;   ///< includes the deadlineNs budget
    /** psitrace request tag (trace::nextTag()); 0 = don't trace.
     *  Workers record queue/compile/setup/solve spans under it. */
    std::uint64_t traceTag = 0;
    /** Scheduling tenant (fairness + quota unit).  "" = the shared
     *  default tenant every v1 (tenant-less) client lands in. */
    std::string tenant = {};
    /** Execution mode.  Fidelity runs the microcoded interpreter and
     *  fills the hardware statistics (the paper's Tables 2-7); Fast
     *  runs the token-threaded flat-dispatch engine, byte-identical
     *  in answers but reporting zero steps/model-time/cache stats. */
    interp::ExecMode mode = interp::ExecMode::Fidelity;
    /** Image compile options (first-argument indexing, builtin
     *  specialization).  Folded into the program-cache key, so jobs
     *  with different options never share an image. */
    kl0::CompileOptions compile = {};
};

/** What the pool hands back through the job's future. */
struct JobOutcome
{
    std::string id;             ///< program id, for correlation
    PsiRun run;                 ///< result + hardware statistics
    std::string error;          ///< FatalError text; empty = ran
    std::uint64_t queueNs = 0;  ///< host: submit -> worker pickup
    std::uint64_t execNs = 0;   ///< host: setup + solve
    std::uint64_t setupNs = 0;  ///< host: program fetch + load
    std::uint64_t solveNs = 0;  ///< host: query compile + run
    std::uint64_t latencyNs = 0;///< host: submit -> completion
    std::uint64_t traceTag = 0; ///< echo of QueryJob::traceTag
    /** Echo of QueryJob::mode (which engine served the job). */
    interp::ExecMode mode = interp::ExecMode::Fidelity;
    /** Calls dispatched through a first-argument index. */
    std::uint64_t indexHits = 0;
    /** Indexed calls that fell back to the linear clause chain. */
    std::uint64_t indexFallbacks = 0;
    /** True when the deadline budget was exhausted by queue wait
     *  alone; the job completed as Timeout without running. */
    bool expired = false;

    bool ok() const { return error.empty(); }
    interp::RunStatus status() const { return run.result.status; }
};

/** Submission policy when the queue is full. */
enum class Submit
{
    Block,    ///< wait for space (backpressure onto the producer)
    FailFast, ///< refuse immediately; the pool counts the rejection
};

/**
 * Why a submission was refused.  Network front ends map QueueFull
 * and TenantQuota to an OVERLOADED reply (backpressure surfaced to
 * the client) and ShutDown to a DRAINING reply.
 */
enum class SubmitError : std::uint8_t
{
    QueueFull,   ///< fail-fast submission against a full queue
    TenantQuota, ///< fail-fast: the job's tenant is over quota
    ShutDown,    ///< the pool is draining / shut down
};

/** Fixed-size pool of isolated PSI engine workers. */
class EnginePool
{
  public:
    struct Config
    {
        unsigned workers = 4;
        std::size_t queueCapacity = 64;
        /** Compiled-program cache shared by the workers.  Leave null
         *  and the pool creates a private one; inject an instance to
         *  share compiles across pools (or to pre-warm it). */
        std::shared_ptr<ProgramCache> programCache;
        /** Dispatch policy; Affinity is the production default,
         *  Fifo restores the original strict arrival order. */
        sched::SchedKind scheduler = sched::SchedKind::Affinity;
        /** Fairness/affinity knobs.  sched.capacity is ignored: the
         *  pool always uses queueCapacity as the global bound. */
        sched::SchedConfig sched = {};
    };

    EnginePool();
    explicit EnginePool(const Config &config);
    ~EnginePool();

    EnginePool(const EnginePool &) = delete;
    EnginePool &operator=(const EnginePool &) = delete;

    /**
     * Submit one job.
     *
     * @return a future for the job's outcome, or std::nullopt when
     *         the job was refused (FailFast with a full queue, or
     *         the pool is shut down).
     */
    std::optional<std::future<JobOutcome>>
    submit(QueryJob job, Submit mode = Submit::Block);

    /**
     * Callback flavor of submit() for event-loop callers (psinet):
     * @p done runs on the worker thread that executed the job, so it
     * must be cheap and thread-safe (typically: push the outcome
     * onto a completion queue and wake the loop).
     *
     * @return std::nullopt when the job was accepted, otherwise the
     *         refusal reason so the caller can tell overload
     *         (QueueFull) from drain (ShutDown) apart.
     */
    std::optional<SubmitError>
    submitAsync(QueryJob job, std::function<void(JobOutcome)> done,
                Submit mode = Submit::FailFast);

    /**
     * Stop accepting jobs, drain the queue and join the workers.
     * Idempotent; also run by the destructor.  This is the graceful
     * drain: jobs already accepted still execute and complete their
     * futures/callbacks before the workers exit.
     */
    void shutdown();

    /** Merge every worker shard into one snapshot. */
    MetricsSnapshot metrics() const;

    /** The shared compiled-program cache (for tests and tools). */
    ProgramCache &programCache() { return *_programCache; }

    unsigned workers() const { return _config.workers; }
    std::size_t queueCapacity() const { return _sched->capacity(); }
    std::size_t queueDepth() const { return _sched->size(); }
    sched::SchedKind schedulerKind() const { return _sched->kind(); }

  private:
    struct Job
    {
        QueryJob query;
        std::promise<JobOutcome> promise;
        /** Set for submitAsync() jobs; used instead of the promise. */
        std::function<void(JobOutcome)> done;
        std::chrono::steady_clock::time_point submitted;
    };

    std::optional<SubmitError> enqueue(Job &&job, Submit mode);

    /** Per-worker metrics shard; the lock is shard-private, so
     *  workers never contend with each other, only with a
     *  concurrent metrics() reader. */
    struct Shard
    {
        mutable std::mutex m;
        WorkerMetrics wm;
    };

    void workerMain(unsigned index);

    Config _config;
    std::shared_ptr<ProgramCache> _programCache;
    std::unique_ptr<sched::Scheduler<Job>> _sched;
    std::vector<std::unique_ptr<Shard>> _shards;
    std::vector<std::thread> _threads;
    std::atomic<std::uint64_t> _submitted{0};
    std::atomic<std::uint64_t> _rejected{0};
    std::atomic<std::uint64_t> _peakDepth{0};
    std::atomic<bool> _shutdown{false};
};

} // namespace service
} // namespace psi

#endif // PSI_SERVICE_ENGINE_POOL_HPP
