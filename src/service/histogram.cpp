#include "service/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace psi {
namespace service {

int
LatencyHistogram::bucketOf(std::uint64_t ns)
{
    constexpr std::uint64_t kLinearMax = 1ull << kSubBits;
    if (ns < kLinearMax)
        return static_cast<int>(ns);
    int shift = std::bit_width(ns) - 1 - kSubBits;
    int sub = static_cast<int>((ns >> shift) & (kLinearMax - 1));
    // May exceed kBuckets - 1; record() clamps and counts that as
    // saturation instead of folding it in silently.
    return ((shift + 1) << kSubBits) + sub;
}

std::uint64_t
LatencyHistogram::bucketUpperNs(int bucket)
{
    constexpr int kLinear = 1 << kSubBits;
    if (bucket < kLinear)
        return static_cast<std::uint64_t>(bucket);
    int shift = (bucket >> kSubBits) - 1;
    std::uint64_t sub = static_cast<std::uint64_t>(bucket & (kLinear - 1));
    std::uint64_t base = (static_cast<std::uint64_t>(kLinear) + sub)
                         << shift;
    return base + ((1ull << shift) - 1);
}

void
LatencyHistogram::record(std::uint64_t ns)
{
    int idx = bucketOf(ns);
    if (idx > kBuckets - 1) {
        ++_saturated;
        idx = kBuckets - 1;
    }
    ++_counts[idx];
    ++_count;
    _sum += ns;
    _min = std::min(_min, ns);
    _max = std::max(_max, ns);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other._count == 0)
        return;
    for (int i = 0; i < kBuckets; ++i)
        _counts[i] += other._counts[i];
    _count += other._count;
    _saturated += other._saturated;
    _sum += other._sum;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

double
LatencyHistogram::meanNs() const
{
    return _count == 0
        ? 0.0
        : static_cast<double>(_sum) / static_cast<double>(_count);
}

std::uint64_t
LatencyHistogram::quantileNs(double q) const
{
    if (_count == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(_count)));
    rank = std::max<std::uint64_t>(rank, 1);

    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += _counts[i];
        if (seen >= rank)
            return std::min(bucketUpperNs(i), _max);
    }
    return _max;
}

void
LatencyHistogram::reset()
{
    _counts.fill(0);
    _count = 0;
    _saturated = 0;
    _sum = 0;
    _min = std::numeric_limits<std::uint64_t>::max();
    _max = 0;
}

} // namespace service
} // namespace psi
