#include "service/program_cache.hpp"

namespace psi {
namespace service {

ProgramCache::ProgramPtr
ProgramCache::get(const std::string &source, kl0::CompileOptions opts,
                  bool *compiled)
{
    // The option bits are folded into the key so images compiled with
    // different options (indexed vs unindexed) never alias.
    std::uint64_t key = kl0::CompiledProgram::hashSource(source);
    key ^= (static_cast<std::uint64_t>(opts.firstArgIndexing) |
            (static_cast<std::uint64_t>(opts.specializeBuiltins) << 1))
           * 0x9e3779b97f4a7c15ull;

    std::promise<ProgramPtr> promise;
    std::shared_future<ProgramPtr> ready;
    bool owner = false;
    bool collision = false;
    {
        std::lock_guard<std::mutex> lock(_m);
        auto it = _map.find(key);
        if (it == _map.end()) {
            ++_misses;
            owner = true;
            ready = promise.get_future().share();
            _map.emplace(key, Entry{source, opts, ready});
        } else if (it->second.source == source &&
                   it->second.options == opts) {
            ++_hits;
            ready = it->second.ready;
        } else {
            // Same 64-bit hash, different source: don't evict the
            // resident program, just compile this one uncached.
            ++_misses;
            collision = true;
        }
    }

    if (compiled)
        *compiled = owner || collision;

    if (collision) {
        return std::make_shared<const kl0::CompiledProgram>(
            kl0::CompiledProgram::compile(source, opts));
    }

    if (owner) {
        try {
            promise.set_value(
                std::make_shared<const kl0::CompiledProgram>(
                    kl0::CompiledProgram::compile(source, opts)));
        } catch (...) {
            promise.set_exception(std::current_exception());
            {
                std::lock_guard<std::mutex> lock(_m);
                _map.erase(key);
            }
            throw;
        }
    }

    return ready.get(); // rethrows the owner's compile failure
}

ProgramCache::Stats
ProgramCache::stats() const
{
    std::lock_guard<std::mutex> lock(_m);
    return Stats{_hits, _misses,
                 static_cast<std::uint64_t>(_map.size())};
}

} // namespace service
} // namespace psi
