#include "service/program_cache.hpp"

namespace psi {
namespace service {

ProgramCache::ProgramPtr
ProgramCache::get(const std::string &source, bool *compiled)
{
    const std::uint64_t key = kl0::CompiledProgram::hashSource(source);

    std::promise<ProgramPtr> promise;
    std::shared_future<ProgramPtr> ready;
    bool owner = false;
    bool collision = false;
    {
        std::lock_guard<std::mutex> lock(_m);
        auto it = _map.find(key);
        if (it == _map.end()) {
            ++_misses;
            owner = true;
            ready = promise.get_future().share();
            _map.emplace(key, Entry{source, ready});
        } else if (it->second.source == source) {
            ++_hits;
            ready = it->second.ready;
        } else {
            // Same 64-bit hash, different source: don't evict the
            // resident program, just compile this one uncached.
            ++_misses;
            collision = true;
        }
    }

    if (compiled)
        *compiled = owner || collision;

    if (collision) {
        return std::make_shared<const kl0::CompiledProgram>(
            kl0::CompiledProgram::compile(source));
    }

    if (owner) {
        try {
            promise.set_value(
                std::make_shared<const kl0::CompiledProgram>(
                    kl0::CompiledProgram::compile(source)));
        } catch (...) {
            promise.set_exception(std::current_exception());
            {
                std::lock_guard<std::mutex> lock(_m);
                _map.erase(key);
            }
            throw;
        }
    }

    return ready.get(); // rethrows the owner's compile failure
}

ProgramCache::Stats
ProgramCache::stats() const
{
    std::lock_guard<std::mutex> lock(_m);
    return Stats{_hits, _misses,
                 static_cast<std::uint64_t>(_map.size())};
}

} // namespace service
} // namespace psi
