/**
 * @file
 * ProgramCache: memoized KL0 compilation for the psid service.
 *
 * Every request used to pay a full parse -> normalize -> codegen on
 * the worker thread.  The cache compiles each distinct source once
 * and hands out shared_ptrs to the immutable kl0::CompiledProgram;
 * workers then install it with the cheap Engine::load() replay.
 *
 * Keying is by FNV-1a 64 content hash with the full source stored
 * per entry, so a (vanishingly unlikely) hash collision degrades to
 * an uncached compile instead of serving the wrong program.
 *
 * Concurrency: entries hold a shared_future, so when N workers miss
 * on the same key simultaneously exactly one compiles and the others
 * block on the future - no duplicate work, no lock held during the
 * compile.  A compile failure propagates to every waiter and the
 * entry is dropped, so a bad program doesn't poison the key.
 *
 * Hit/miss/entry counters feed the service metrics snapshot and the
 * psinet STATS reply.
 */

#ifndef PSI_SERVICE_PROGRAM_CACHE_HPP
#define PSI_SERVICE_PROGRAM_CACHE_HPP

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "kl0/compiled_program.hpp"

namespace psi {
namespace service {

/** Thread-safe memoizing compiler front end. */
class ProgramCache
{
  public:
    using ProgramPtr = std::shared_ptr<const kl0::CompiledProgram>;

    /** Point-in-time counters for metrics. */
    struct Stats
    {
        std::uint64_t hits = 0;    ///< served from the cache
        std::uint64_t misses = 0;  ///< compiled on this call
        std::uint64_t entries = 0; ///< programs resident
    };

    /**
     * The compiled image for @p source, compiling at most once per
     * distinct source.  Blocks while another thread compiles the
     * same key.  Throws FatalError (to every concurrent waiter) when
     * the source does not compile.
     *
     * @param opts compile options folded into the cache key, so an
     *        indexed and an unindexed image of the same source never
     *        alias each other.
     * @param compiled when non-null, set true when this call paid
     *        (or waited on) a compile and false on a cache hit - the
     *        signal psitrace uses to name the span compile vs
     *        cache-hit.
     */
    ProgramPtr get(const std::string &source,
                   kl0::CompileOptions opts = {},
                   bool *compiled = nullptr);

    Stats stats() const;

  private:
    struct Entry
    {
        std::string source; ///< collision guard
        kl0::CompileOptions options; ///< collision guard
        std::shared_future<ProgramPtr> ready;
    };

    mutable std::mutex _m;
    std::unordered_map<std::uint64_t, Entry> _map;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace service
} // namespace psi

#endif // PSI_SERVICE_PROGRAM_CACHE_HPP
