/**
 * @file
 * psid metrics: per-worker shards and the merged service snapshot.
 *
 * Each pool worker owns a WorkerMetrics shard and records into it
 * with no cross-worker contention; the aggregator merges every shard
 * (plus the pool-level submit/reject gauges) into a MetricsSnapshot
 * on demand.  The snapshot renders through the repo's base/table
 * machinery for humans and as a flat JSON object for machines.
 *
 * Aggregated quantities: job counters (completed / succeeded /
 * timed-out / step-limited / errored, plus pool-level submitted /
 * rejected and queue depth), the merged hardware statistics
 * (micro::SeqStats, CacheStats, model time, stall time) and two
 * latency histograms (queue wait and total submit-to-completion)
 * with p50/p95/p99 queries.
 */

#ifndef PSI_SERVICE_METRICS_HPP
#define PSI_SERVICE_METRICS_HPP

#include <cstdint>
#include <string>

#include "base/table.hpp"
#include "mem/cache.hpp"
#include "micro/sequencer.hpp"
#include "sched/metrics.hpp"
#include "service/histogram.hpp"

namespace psi {
namespace service {

struct JobOutcome;

/** @name Hardware-statistics merge helpers (shard aggregation) */
/// @{
void accumulate(micro::SeqStats &into, const micro::SeqStats &from);
void accumulate(CacheStats &into, const CacheStats &from);
/// @}

/** One worker's (mergeable) slice of the service metrics. */
struct WorkerMetrics
{
    std::uint64_t completed = 0;   ///< jobs finished (any status)
    std::uint64_t succeeded = 0;   ///< ... with >= 1 solution
    std::uint64_t timedOut = 0;    ///< ... RunStatus::Timeout
    std::uint64_t stepLimited = 0; ///< ... RunStatus::StepLimit
    std::uint64_t errored = 0;     ///< ... FatalError from the engine
    /** Timeouts whose whole budget was spent queueing: completed as
     *  RunStatus::Timeout without ever touching an engine. */
    std::uint64_t expiredInQueue = 0;
    /** @name Per-execution-mode split of `completed` */
    /// @{
    std::uint64_t jobsFidelity = 0; ///< microcoded interpreter runs
    std::uint64_t jobsFast = 0;     ///< token-threaded fast runs
    /// @}

    std::uint64_t inferences = 0;  ///< user-predicate calls
    /** @name First-argument index counters (both engines) */
    /// @{
    std::uint64_t indexHits = 0;      ///< calls served via the index
    std::uint64_t indexFallbacks = 0; ///< indexed calls gone linear
    /// @}
    std::uint64_t modelNs = 0;     ///< model clock (steps + stalls)
    std::uint64_t stallNs = 0;     ///< memory stall share
    std::uint64_t hostExecNs = 0;  ///< host time spent executing
    std::uint64_t hostSetupNs = 0; ///< ... program fetch + load share
    std::uint64_t hostSolveNs = 0; ///< ... query compile + run share

    micro::SeqStats seq;           ///< merged firmware statistics
    CacheStats cache;              ///< merged cache statistics
    LatencyHistogram latency;      ///< submit -> completion (host ns)
    LatencyHistogram queueWait;    ///< submit -> worker pickup
    /** @name Per-stage duration summaries (jobs that ran only) */
    /// @{
    LatencyHistogram setup;        ///< program fetch + image load
    LatencyHistogram solve;        ///< query compile + run
    /// @}

    std::uint64_t steps() const { return seq.totalSteps(); }

    /** Fold one finished job into this shard. */
    void record(const JobOutcome &outcome);

    /** Fold another shard into this one. */
    void merge(const WorkerMetrics &other);
};

/** Point-in-time aggregate over the whole pool. */
struct MetricsSnapshot
{
    WorkerMetrics total;               ///< all worker shards merged
    std::uint64_t submitted = 0;       ///< jobs accepted into the queue
    std::uint64_t rejected = 0;        ///< fail-fast submissions refused
    std::uint64_t queueDepth = 0;      ///< jobs waiting right now
    std::uint64_t peakQueueDepth = 0;  ///< high-water mark
    unsigned workers = 0;

    /** @name Shared ProgramCache counters (compile-once hot path) */
    /// @{
    std::uint64_t programCacheHits = 0;
    std::uint64_t programCacheMisses = 0;
    std::uint64_t programCacheEntries = 0;
    /// @}

    /** Scheduler counters: per-tenant fairness, affinity batching
     *  (see sched/metrics.hpp). */
    sched::SchedSnapshot sched;

    /** @name Wire-level counters (filled by net::PsiServer) */
    /// @{
    std::uint64_t netConnsAccepted = 0; ///< connections accepted
    std::uint64_t netConnsDropped = 0;  ///< dropped by the server
    std::uint64_t netBadFrames = 0;     ///< framing-layer rejects
    std::uint64_t netDecodeErrors = 0;  ///< body/protocol rejects
    std::uint64_t netVersionRejects = 0;///< HELLO major refused
    /// @}

    /**
     * Aggregate service throughput: model inferences completed per
     * host second over @p wall_ns of service wall time.
     */
    double hostLips(std::uint64_t wall_ns) const;

    /** Human-readable report (@p wall_ns 0 = omit throughput row). */
    Table table(std::uint64_t wall_ns = 0) const;

    /** Machine-readable flat JSON object. */
    std::string json(std::uint64_t wall_ns = 0) const;

    /**
     * Prometheus text exposition (served by the psinet METRICS
     * message).  Families cover the job counters, the per-stage
     * duration summaries (queue / setup / solve / request), and the
     * per-run firmware + cache aggregates behind the paper's
     * Tables 2-5 (psi_firmware_module_steps_total,
     * psi_cache_command_steps_total, psi_cache_accesses_total,
     * psi_cache_hits_total).
     */
    std::string prometheus(std::uint64_t wall_ns = 0) const;
};

} // namespace service
} // namespace psi

#endif // PSI_SERVICE_METRICS_HPP
