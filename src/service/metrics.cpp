#include "service/metrics.hpp"

#include <sstream>

#include "base/stats.hpp"
#include "service/engine_pool.hpp"

namespace psi {
namespace service {

void
accumulate(micro::SeqStats &into, const micro::SeqStats &from)
{
    for (std::size_t i = 0; i < into.moduleSteps.size(); ++i)
        into.moduleSteps[i] += from.moduleSteps[i];
    for (std::size_t i = 0; i < into.branchOps.size(); ++i)
        into.branchOps[i] += from.branchOps[i];
    for (std::size_t f = 0; f < into.wfModes.size(); ++f) {
        for (std::size_t m = 0; m < into.wfModes[f].size(); ++m)
            into.wfModes[f][m] += from.wfModes[f][m];
    }
    for (std::size_t i = 0; i < into.cacheSteps.size(); ++i)
        into.cacheSteps[i] += from.cacheSteps[i];
}

void
accumulate(CacheStats &into, const CacheStats &from)
{
    for (std::size_t a = 0; a < into.accesses.size(); ++a) {
        for (std::size_t c = 0; c < into.accesses[a].size(); ++c) {
            into.accesses[a][c] += from.accesses[a][c];
            into.hits[a][c] += from.hits[a][c];
        }
    }
    into.readIns += from.readIns;
    into.writeBacks += from.writeBacks;
    into.stackAllocs += from.stackAllocs;
    into.throughWrites += from.throughWrites;
}

void
WorkerMetrics::record(const JobOutcome &outcome)
{
    ++completed;
    if (!outcome.ok()) {
        ++errored;
    } else {
        switch (outcome.status()) {
          case interp::RunStatus::Timeout:
            ++timedOut;
            if (outcome.expired)
                ++expiredInQueue;
            break;
          case interp::RunStatus::StepLimit:
            ++stepLimited;
            break;
          case interp::RunStatus::Ok:
            if (outcome.run.result.succeeded())
                ++succeeded;
            break;
        }
    }

    inferences += outcome.run.result.inferences;
    modelNs += outcome.run.result.timeNs;
    stallNs += outcome.run.stallNs;
    hostExecNs += outcome.execNs;
    hostSetupNs += outcome.setupNs;
    hostSolveNs += outcome.solveNs;
    accumulate(seq, outcome.run.seq);
    accumulate(cache, outcome.run.cache);
    latency.record(outcome.latencyNs);
    queueWait.record(outcome.queueNs);
}

void
WorkerMetrics::merge(const WorkerMetrics &other)
{
    completed += other.completed;
    succeeded += other.succeeded;
    timedOut += other.timedOut;
    stepLimited += other.stepLimited;
    errored += other.errored;
    expiredInQueue += other.expiredInQueue;
    inferences += other.inferences;
    modelNs += other.modelNs;
    stallNs += other.stallNs;
    hostExecNs += other.hostExecNs;
    hostSetupNs += other.hostSetupNs;
    hostSolveNs += other.hostSolveNs;
    accumulate(seq, other.seq);
    accumulate(cache, other.cache);
    latency.merge(other.latency);
    queueWait.merge(other.queueWait);
}

double
MetricsSnapshot::hostLips(std::uint64_t wall_ns) const
{
    return wall_ns == 0
        ? 0.0
        : static_cast<double>(total.inferences) * 1e9 /
              static_cast<double>(wall_ns);
}

namespace {

std::string
ms(std::uint64_t ns, int prec = 2)
{
    return stats::fixed(static_cast<double>(ns) / 1e6, prec);
}

} // namespace

Table
MetricsSnapshot::table(std::uint64_t wall_ns) const
{
    Table t("psid service metrics");
    t.setHeader({"metric", "value"});
    auto row = [&t](const std::string &k, const std::string &v) {
        t.addRow({k, v});
    };

    row("workers", std::to_string(workers));
    row("jobs submitted", std::to_string(submitted));
    row("jobs completed", std::to_string(total.completed));
    row("jobs succeeded", std::to_string(total.succeeded));
    row("jobs timed out", std::to_string(total.timedOut));
    row("  expired in queue", std::to_string(total.expiredInQueue));
    row("jobs step-limited", std::to_string(total.stepLimited));
    row("jobs errored", std::to_string(total.errored));
    row("jobs rejected", std::to_string(rejected));
    row("queue depth", std::to_string(queueDepth));
    row("queue depth peak", std::to_string(peakQueueDepth));
    t.addSeparator();
    row("inferences", std::to_string(total.inferences));
    row("microsteps", std::to_string(total.steps()));
    row("model time ms", ms(total.modelNs));
    row("memory stall ms", ms(total.stallNs));
    row("host exec ms", ms(total.hostExecNs));
    row("  setup ms", ms(total.hostSetupNs));
    row("  solve ms", ms(total.hostSolveNs));
    row("cache hit %",
        stats::fixed(total.cache.totalHitPct(), 1));
    row("program cache hits", std::to_string(programCacheHits));
    row("program cache misses", std::to_string(programCacheMisses));
    row("program cache entries", std::to_string(programCacheEntries));
    if (netConnsAccepted != 0 || netConnsDropped != 0 ||
        netBadFrames != 0 || netDecodeErrors != 0) {
        t.addSeparator();
        row("net conns accepted", std::to_string(netConnsAccepted));
        row("net conns dropped", std::to_string(netConnsDropped));
        row("net bad frames", std::to_string(netBadFrames));
        row("net decode errors", std::to_string(netDecodeErrors));
    }
    t.addSeparator();
    row("latency p50 ms", ms(total.latency.quantileNs(0.50)));
    row("latency p95 ms", ms(total.latency.quantileNs(0.95)));
    row("latency p99 ms", ms(total.latency.quantileNs(0.99)));
    row("latency max ms", ms(total.latency.maxNs()));
    row("queue wait p50 ms", ms(total.queueWait.quantileNs(0.50)));
    if (wall_ns != 0) {
        t.addSeparator();
        row("wall time ms", ms(wall_ns));
        row("aggregate LIPS", stats::fixed(hostLips(wall_ns), 0));
    }
    return t;
}

std::string
MetricsSnapshot::json(std::uint64_t wall_ns) const
{
    std::ostringstream os;
    bool first = true;
    auto num = [&](const std::string &k, const std::string &v) {
        os << (first ? "" : ", ") << '"' << k << "\": " << v;
        first = false;
    };
    auto u = [&](const std::string &k, std::uint64_t v) {
        num(k, std::to_string(v));
    };

    os << "{";
    u("workers", workers);
    u("submitted", submitted);
    u("completed", total.completed);
    u("succeeded", total.succeeded);
    u("timed_out", total.timedOut);
    u("expired_in_queue", total.expiredInQueue);
    u("step_limited", total.stepLimited);
    u("errored", total.errored);
    u("rejected", rejected);
    u("queue_depth", queueDepth);
    u("peak_queue_depth", peakQueueDepth);
    u("inferences", total.inferences);
    u("microsteps", total.steps());
    u("model_ns", total.modelNs);
    u("stall_ns", total.stallNs);
    u("host_exec_ns", total.hostExecNs);
    u("host_setup_ns", total.hostSetupNs);
    u("host_solve_ns", total.hostSolveNs);
    num("cache_hit_pct", stats::fixed(total.cache.totalHitPct(), 3));
    u("program_cache_hits", programCacheHits);
    u("program_cache_misses", programCacheMisses);
    u("program_cache_entries", programCacheEntries);
    u("net_conns_accepted", netConnsAccepted);
    u("net_conns_dropped", netConnsDropped);
    u("net_bad_frames", netBadFrames);
    u("net_decode_errors", netDecodeErrors);
    u("latency_p50_ns", total.latency.quantileNs(0.50));
    u("latency_p95_ns", total.latency.quantileNs(0.95));
    u("latency_p99_ns", total.latency.quantileNs(0.99));
    u("latency_min_ns", total.latency.minNs());
    u("latency_max_ns", total.latency.maxNs());
    num("latency_mean_ns", stats::fixed(total.latency.meanNs(), 0));
    u("queue_wait_p50_ns", total.queueWait.quantileNs(0.50));
    u("queue_wait_p99_ns", total.queueWait.quantileNs(0.99));
    if (wall_ns != 0) {
        u("wall_ns", wall_ns);
        num("aggregate_lips", stats::fixed(hostLips(wall_ns), 1));
    }
    os << "}";
    return os.str();
}

} // namespace service
} // namespace psi
