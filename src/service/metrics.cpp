#include "service/metrics.hpp"

#include <sstream>
#include <utility>

#include "base/json.hpp"
#include "base/stats.hpp"
#include "service/engine_pool.hpp"

namespace psi {
namespace service {

void
accumulate(micro::SeqStats &into, const micro::SeqStats &from)
{
    for (std::size_t i = 0; i < into.moduleSteps.size(); ++i)
        into.moduleSteps[i] += from.moduleSteps[i];
    for (std::size_t i = 0; i < into.branchOps.size(); ++i)
        into.branchOps[i] += from.branchOps[i];
    for (std::size_t f = 0; f < into.wfModes.size(); ++f) {
        for (std::size_t m = 0; m < into.wfModes[f].size(); ++m)
            into.wfModes[f][m] += from.wfModes[f][m];
    }
    for (std::size_t i = 0; i < into.cacheSteps.size(); ++i)
        into.cacheSteps[i] += from.cacheSteps[i];
}

void
accumulate(CacheStats &into, const CacheStats &from)
{
    for (std::size_t a = 0; a < into.accesses.size(); ++a) {
        for (std::size_t c = 0; c < into.accesses[a].size(); ++c) {
            into.accesses[a][c] += from.accesses[a][c];
            into.hits[a][c] += from.hits[a][c];
        }
    }
    into.readIns += from.readIns;
    into.writeBacks += from.writeBacks;
    into.stackAllocs += from.stackAllocs;
    into.throughWrites += from.throughWrites;
}

void
WorkerMetrics::record(const JobOutcome &outcome)
{
    ++completed;
    if (outcome.mode == interp::ExecMode::Fast)
        ++jobsFast;
    else
        ++jobsFidelity;
    if (!outcome.ok()) {
        ++errored;
    } else {
        switch (outcome.status()) {
          case interp::RunStatus::Timeout:
            ++timedOut;
            if (outcome.expired)
                ++expiredInQueue;
            break;
          case interp::RunStatus::StepLimit:
            ++stepLimited;
            break;
          case interp::RunStatus::Ok:
            if (outcome.run.result.succeeded())
                ++succeeded;
            break;
        }
    }

    inferences += outcome.run.result.inferences;
    indexHits += outcome.indexHits;
    indexFallbacks += outcome.indexFallbacks;
    modelNs += outcome.run.result.timeNs;
    stallNs += outcome.run.stallNs;
    hostExecNs += outcome.execNs;
    hostSetupNs += outcome.setupNs;
    hostSolveNs += outcome.solveNs;
    accumulate(seq, outcome.run.seq);
    accumulate(cache, outcome.run.cache);
    latency.record(outcome.latencyNs);
    queueWait.record(outcome.queueNs);
    // Stage histograms only make sense for jobs that reached an
    // engine; queue-expired jobs have no setup/solve phase.
    if (outcome.ok() && !outcome.expired) {
        setup.record(outcome.setupNs);
        solve.record(outcome.solveNs);
    }
}

void
WorkerMetrics::merge(const WorkerMetrics &other)
{
    completed += other.completed;
    jobsFidelity += other.jobsFidelity;
    jobsFast += other.jobsFast;
    succeeded += other.succeeded;
    timedOut += other.timedOut;
    stepLimited += other.stepLimited;
    errored += other.errored;
    expiredInQueue += other.expiredInQueue;
    inferences += other.inferences;
    indexHits += other.indexHits;
    indexFallbacks += other.indexFallbacks;
    modelNs += other.modelNs;
    stallNs += other.stallNs;
    hostExecNs += other.hostExecNs;
    hostSetupNs += other.hostSetupNs;
    hostSolveNs += other.hostSolveNs;
    accumulate(seq, other.seq);
    accumulate(cache, other.cache);
    latency.merge(other.latency);
    queueWait.merge(other.queueWait);
    setup.merge(other.setup);
    solve.merge(other.solve);
}

double
MetricsSnapshot::hostLips(std::uint64_t wall_ns) const
{
    return wall_ns == 0
        ? 0.0
        : static_cast<double>(total.inferences) * 1e9 /
              static_cast<double>(wall_ns);
}

namespace {

std::string
ms(std::uint64_t ns, int prec = 2)
{
    return stats::fixed(static_cast<double>(ns) / 1e6, prec);
}

} // namespace

Table
MetricsSnapshot::table(std::uint64_t wall_ns) const
{
    Table t("psid service metrics");
    t.setHeader({"metric", "value"});
    auto row = [&t](const std::string &k, const std::string &v) {
        t.addRow({k, v});
    };

    row("workers", std::to_string(workers));
    row("jobs submitted", std::to_string(submitted));
    row("jobs completed", std::to_string(total.completed));
    row("  fidelity mode", std::to_string(total.jobsFidelity));
    row("  fast mode", std::to_string(total.jobsFast));
    row("jobs succeeded", std::to_string(total.succeeded));
    row("jobs timed out", std::to_string(total.timedOut));
    row("  expired in queue", std::to_string(total.expiredInQueue));
    row("jobs step-limited", std::to_string(total.stepLimited));
    row("jobs errored", std::to_string(total.errored));
    row("jobs rejected", std::to_string(rejected));
    row("queue depth", std::to_string(queueDepth));
    row("queue depth peak", std::to_string(peakQueueDepth));
    t.addSeparator();
    row("inferences", std::to_string(total.inferences));
    row("index hits", std::to_string(total.indexHits));
    row("index fallbacks", std::to_string(total.indexFallbacks));
    row("microsteps", std::to_string(total.steps()));
    row("model time ms", ms(total.modelNs));
    row("memory stall ms", ms(total.stallNs));
    row("host exec ms", ms(total.hostExecNs));
    row("  setup ms", ms(total.hostSetupNs));
    row("  solve ms", ms(total.hostSolveNs));
    row("cache hit %",
        stats::fixed(total.cache.totalHitPct(), 1));
    row("program cache hits", std::to_string(programCacheHits));
    row("program cache misses", std::to_string(programCacheMisses));
    row("program cache entries", std::to_string(programCacheEntries));
    t.addSeparator();
    sched.tableRows(t);
    if (netConnsAccepted != 0 || netConnsDropped != 0 ||
        netBadFrames != 0 || netDecodeErrors != 0 ||
        netVersionRejects != 0) {
        t.addSeparator();
        row("net conns accepted", std::to_string(netConnsAccepted));
        row("net conns dropped", std::to_string(netConnsDropped));
        row("net bad frames", std::to_string(netBadFrames));
        row("net decode errors", std::to_string(netDecodeErrors));
        row("net version rejects", std::to_string(netVersionRejects));
    }
    t.addSeparator();
    row("latency p50 ms", ms(total.latency.quantileNs(0.50)));
    row("latency p95 ms", ms(total.latency.quantileNs(0.95)));
    row("latency p99 ms", ms(total.latency.quantileNs(0.99)));
    row("latency max ms", ms(total.latency.maxNs()));
    row("queue wait p50 ms", ms(total.queueWait.quantileNs(0.50)));
    if (wall_ns != 0) {
        t.addSeparator();
        row("wall time ms", ms(wall_ns));
        row("aggregate LIPS", stats::fixed(hostLips(wall_ns), 0));
    }
    return t;
}

std::string
MetricsSnapshot::json(std::uint64_t wall_ns) const
{
    JsonWriter w;
    w.u("workers", workers);
    w.u("submitted", submitted);
    w.u("completed", total.completed);
    w.u("completed_fidelity", total.jobsFidelity);
    w.u("completed_fast", total.jobsFast);
    w.u("succeeded", total.succeeded);
    w.u("timed_out", total.timedOut);
    w.u("expired_in_queue", total.expiredInQueue);
    w.u("step_limited", total.stepLimited);
    w.u("errored", total.errored);
    w.u("rejected", rejected);
    w.u("queue_depth", queueDepth);
    w.u("peak_queue_depth", peakQueueDepth);
    w.u("inferences", total.inferences);
    w.u("index_hits", total.indexHits);
    w.u("index_fallbacks", total.indexFallbacks);
    w.u("microsteps", total.steps());
    w.u("model_ns", total.modelNs);
    w.u("stall_ns", total.stallNs);
    w.u("host_exec_ns", total.hostExecNs);
    w.u("host_setup_ns", total.hostSetupNs);
    w.u("host_solve_ns", total.hostSolveNs);
    w.num("cache_hit_pct",
          stats::fixed(total.cache.totalHitPct(), 3));
    w.u("program_cache_hits", programCacheHits);
    w.u("program_cache_misses", programCacheMisses);
    w.u("program_cache_entries", programCacheEntries);
    sched.json(w);
    w.u("net_conns_accepted", netConnsAccepted);
    w.u("net_conns_dropped", netConnsDropped);
    w.u("net_bad_frames", netBadFrames);
    w.u("net_decode_errors", netDecodeErrors);
    w.u("net_version_rejects", netVersionRejects);
    w.u("latency_p50_ns", total.latency.quantileNs(0.50));
    w.u("latency_p95_ns", total.latency.quantileNs(0.95));
    w.u("latency_p99_ns", total.latency.quantileNs(0.99));
    w.u("latency_min_ns", total.latency.minNs());
    w.u("latency_max_ns", total.latency.maxNs());
    w.num("latency_mean_ns",
          stats::fixed(total.latency.meanNs(), 0));
    w.u("queue_wait_p50_ns", total.queueWait.quantileNs(0.50));
    w.u("queue_wait_p99_ns", total.queueWait.quantileNs(0.99));
    if (wall_ns != 0) {
        w.u("wall_ns", wall_ns);
        w.num("aggregate_lips", stats::fixed(hostLips(wall_ns), 1));
    }
    return w.str();
}

namespace {

/** Format @p ns as fractional seconds (Prometheus base unit). */
std::string
secs(std::uint64_t ns)
{
    return stats::fixed(static_cast<double>(ns) / 1e9, 9);
}

} // namespace

std::string
MetricsSnapshot::prometheus(std::uint64_t wall_ns) const
{
    std::ostringstream os;
    auto counter = [&os](const char *name, std::uint64_t v) {
        os << "# TYPE " << name << " counter\n"
           << name << ' ' << v << '\n';
    };
    auto gauge = [&os](const char *name, const std::string &v) {
        os << "# TYPE " << name << " gauge\n"
           << name << ' ' << v << '\n';
    };
    auto seconds = [&os](const char *name, std::uint64_t ns) {
        os << "# TYPE " << name << " counter\n"
           << name << ' ' << secs(ns) << '\n';
    };

    gauge("psi_workers", std::to_string(workers));
    counter("psi_jobs_submitted_total", submitted);
    counter("psi_jobs_completed_total", total.completed);
    os << "# TYPE psi_jobs_mode_total counter\n"
       << "psi_jobs_mode_total{mode=\"fidelity\"} "
       << total.jobsFidelity << '\n'
       << "psi_jobs_mode_total{mode=\"fast\"} " << total.jobsFast
       << '\n';
    counter("psi_jobs_succeeded_total", total.succeeded);
    counter("psi_jobs_timed_out_total", total.timedOut);
    counter("psi_jobs_expired_in_queue_total", total.expiredInQueue);
    counter("psi_jobs_step_limited_total", total.stepLimited);
    counter("psi_jobs_errored_total", total.errored);
    counter("psi_jobs_rejected_total", rejected);
    gauge("psi_queue_depth", std::to_string(queueDepth));
    gauge("psi_queue_depth_peak", std::to_string(peakQueueDepth));

    counter("psi_inferences_total", total.inferences);
    counter("psi_index_hits_total", total.indexHits);
    counter("psi_index_fallbacks_total", total.indexFallbacks);
    counter("psi_microsteps_total", total.steps());
    seconds("psi_model_seconds_total", total.modelNs);
    seconds("psi_stall_seconds_total", total.stallNs);
    seconds("psi_host_exec_seconds_total", total.hostExecNs);
    seconds("psi_host_setup_seconds_total", total.hostSetupNs);
    seconds("psi_host_solve_seconds_total", total.hostSolveNs);

    // Per-stage duration summaries; "request" is the whole
    // submit-to-completion latency the clients observe.
    os << "# TYPE psi_request_stage_seconds summary\n";
    auto summary = [&os](const char *stage,
                         const LatencyHistogram &h) {
        static const std::pair<const char *, double> kQs[] = {
            {"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};
        for (const auto &[label, q] : kQs) {
            os << "psi_request_stage_seconds{stage=\"" << stage
               << "\",quantile=\"" << label << "\"} "
               << secs(h.quantileNs(q)) << '\n';
        }
        os << "psi_request_stage_seconds_sum{stage=\"" << stage
           << "\"} " << secs(h.sumNs()) << '\n'
           << "psi_request_stage_seconds_count{stage=\"" << stage
           << "\"} " << h.count() << '\n';
    };
    summary("queue", total.queueWait);
    summary("setup", total.setup);
    summary("solve", total.solve);
    summary("request", total.latency);

    // Firmware module steps (paper Table 2).
    os << "# TYPE psi_firmware_module_steps_total counter\n";
    for (int m = 0; m < micro::kNumModules; ++m) {
        os << "psi_firmware_module_steps_total{module=\""
           << micro::moduleName(static_cast<micro::Module>(m))
           << "\"} " << total.seq.moduleSteps[m] << '\n';
    }

    // Steps per cache command (paper Table 3).
    os << "# TYPE psi_cache_command_steps_total counter\n";
    for (int c = 0; c < kNumCacheCmds; ++c) {
        os << "psi_cache_command_steps_total{cmd=\""
           << cacheCmdName(static_cast<CacheCmd>(c)) << "\"} "
           << total.seq.cacheSteps[c] << '\n';
    }

    // Cache accesses / hits per area and command (Tables 4-5).
    os << "# TYPE psi_cache_accesses_total counter\n";
    for (int a = 0; a < kNumAreas; ++a) {
        for (int c = 0; c < kNumCacheCmds; ++c) {
            os << "psi_cache_accesses_total{area=\""
               << areaName(static_cast<Area>(a)) << "\",cmd=\""
               << cacheCmdName(static_cast<CacheCmd>(c)) << "\"} "
               << total.cache.accesses[a][c] << '\n';
        }
    }
    os << "# TYPE psi_cache_hits_total counter\n";
    for (int a = 0; a < kNumAreas; ++a) {
        for (int c = 0; c < kNumCacheCmds; ++c) {
            os << "psi_cache_hits_total{area=\""
               << areaName(static_cast<Area>(a)) << "\",cmd=\""
               << cacheCmdName(static_cast<CacheCmd>(c)) << "\"} "
               << total.cache.hits[a][c] << '\n';
        }
    }
    counter("psi_cache_read_ins_total", total.cache.readIns);
    counter("psi_cache_write_backs_total", total.cache.writeBacks);
    counter("psi_cache_stack_allocs_total", total.cache.stackAllocs);
    counter("psi_cache_through_writes_total",
            total.cache.throughWrites);
    gauge("psi_cache_hit_ratio",
          stats::fixed(total.cache.totalHitPct() / 100.0, 6));

    counter("psi_program_cache_hits_total", programCacheHits);
    counter("psi_program_cache_misses_total", programCacheMisses);
    gauge("psi_program_cache_entries",
          std::to_string(programCacheEntries));

    os << sched.prometheus();

    counter("psi_net_conns_accepted_total", netConnsAccepted);
    counter("psi_net_conns_dropped_total", netConnsDropped);
    counter("psi_net_bad_frames_total", netBadFrames);
    counter("psi_net_decode_errors_total", netDecodeErrors);
    counter("psi_net_version_rejects_total", netVersionRejects);

    if (wall_ns != 0) {
        gauge("psi_wall_seconds", secs(wall_ns));
        gauge("psi_aggregate_lips",
              stats::fixed(hostLips(wall_ns), 1));
    }
    return os.str();
}

} // namespace service
} // namespace psi
