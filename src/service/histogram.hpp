/**
 * @file
 * Log-linear latency histogram (HDR-style).
 *
 * Buckets are 2^kSubBits linear sub-divisions of each power-of-two
 * range, so any recorded value lands in a bucket whose width is at
 * most 1/2^kSubBits of the value: quantile estimates carry a bounded
 * ~12% relative error with a fixed 512-counter footprint, and two
 * histograms merge by adding counters - exactly what the psid
 * metrics aggregator needs to combine per-worker shards.
 */

#ifndef PSI_SERVICE_HISTOGRAM_HPP
#define PSI_SERVICE_HISTOGRAM_HPP

#include <array>
#include <cstdint>
#include <limits>

namespace psi {
namespace service {

/** Mergeable nanosecond-latency histogram with quantile queries. */
class LatencyHistogram
{
  public:
    static constexpr int kSubBits = 3;  ///< 8 sub-buckets per octave
    static constexpr int kBuckets = (61 << kSubBits);

    /** Add one sample. */
    void record(std::uint64_t ns);

    /** Add every sample of @p other (per-worker shard merge). */
    void merge(const LatencyHistogram &other);

    std::uint64_t count() const { return _count; }
    std::uint64_t minNs() const { return _count ? _min : 0; }
    std::uint64_t maxNs() const { return _max; }
    std::uint64_t sumNs() const { return _sum; }
    double meanNs() const;

    /**
     * Samples that overflowed the top bucket.  They still count in
     * count()/sumNs()/maxNs(), but their bucket position is a lie
     * (folded into the last bucket), so any report quoting
     * quantiles must surface this instead of silently presenting a
     * clamped tail as the real distribution.
     */
    std::uint64_t saturatedCount() const { return _saturated; }

    /**
     * Upper bound of the bucket holding the @p q quantile sample
     * (q in [0, 1]); 0 when the histogram is empty.  p50/p95/p99
     * reports use q = 0.50 / 0.95 / 0.99.
     */
    std::uint64_t quantileNs(double q) const;

    void reset();

  private:
    static int bucketOf(std::uint64_t ns);
    static std::uint64_t bucketUpperNs(int bucket);

    std::array<std::uint64_t, kBuckets> _counts{};
    std::uint64_t _count = 0;
    std::uint64_t _saturated = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t _max = 0;
};

} // namespace service
} // namespace psi

#endif // PSI_SERVICE_HISTOGRAM_HPP
