/**
 * @file
 * Umbrella header for psid, the concurrent batch-query service:
 *
 *  - service::EnginePool      worker threads with warm engines
 *  - service::ProgramCache    memoized KL0 compilation (shared)
 *  - service::BoundedQueue    MPMC job queue with backpressure
 *  - service::WorkerMetrics   mergeable per-worker statistics
 *  - service::MetricsSnapshot aggregated service report (table/JSON)
 *  - service::LatencyHistogram p50/p95/p99 latency tracking
 */

#ifndef PSI_SERVICE_SERVICE_HPP
#define PSI_SERVICE_SERVICE_HPP

#include "service/engine_pool.hpp"
#include "service/histogram.hpp"
#include "service/job_queue.hpp"
#include "service/metrics.hpp"
#include "service/program_cache.hpp"

#endif // PSI_SERVICE_SERVICE_HPP
