#include "service/engine_pool.hpp"

#include "base/logging.hpp"
#include "base/trace.hpp"
#include "fast/fast_engine.hpp"
#include "interp/engine.hpp"
#include "kl0/compiled_program.hpp"

namespace psi {
namespace service {

namespace {

sched::SchedConfig
poolSchedConfig(const EnginePool::Config &config)
{
    sched::SchedConfig sc = config.sched;
    sc.capacity = config.queueCapacity;
    return sc;
}

} // namespace

EnginePool::EnginePool() : EnginePool(Config()) {}

EnginePool::EnginePool(const Config &config)
    : _config(config),
      _programCache(config.programCache
                        ? config.programCache
                        : std::make_shared<ProgramCache>()),
      _sched(sched::makeScheduler<Job>(config.scheduler,
                                       poolSchedConfig(config)))
{
    if (_config.workers == 0)
        _config.workers = 1;
    _shards.reserve(_config.workers);
    _threads.reserve(_config.workers);
    for (unsigned i = 0; i < _config.workers; ++i)
        _shards.push_back(std::make_unique<Shard>());
    for (unsigned i = 0; i < _config.workers; ++i)
        _threads.emplace_back([this, i] { workerMain(i); });
}

EnginePool::~EnginePool()
{
    shutdown();
}

std::optional<SubmitError>
EnginePool::enqueue(Job &&job, Submit mode)
{
    sched::TaskInfo info;
    info.tenant = job.query.tenant;
    info.affinityKey =
        kl0::CompiledProgram::hashSource(job.query.program.source);
    info.deadlineNs = job.query.limits.deadlineNs;
    info.submitted = job.submitted;

    sched::PushResult r = mode == Submit::Block
        ? _sched->push(info, job)
        : _sched->tryPush(info, job);
    switch (r) {
      case sched::PushResult::Ok:
        break;
      case sched::PushResult::QueueFull:
        _rejected.fetch_add(1, std::memory_order_relaxed);
        return SubmitError::QueueFull;
      case sched::PushResult::QuotaExceeded:
        _rejected.fetch_add(1, std::memory_order_relaxed);
        return SubmitError::TenantQuota;
      case sched::PushResult::Closed:
        _rejected.fetch_add(1, std::memory_order_relaxed);
        return SubmitError::ShutDown;
    }

    _submitted.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t depth = _sched->size();
    std::uint64_t peak = _peakDepth.load(std::memory_order_relaxed);
    while (depth > peak &&
           !_peakDepth.compare_exchange_weak(
               peak, depth, std::memory_order_relaxed)) {
    }
    return std::nullopt;
}

std::optional<std::future<JobOutcome>>
EnginePool::submit(QueryJob query, Submit mode)
{
    Job job;
    job.query = std::move(query);
    job.submitted = std::chrono::steady_clock::now();
    std::future<JobOutcome> fut = job.promise.get_future();

    if (enqueue(std::move(job), mode))
        return std::nullopt;
    return fut;
}

std::optional<SubmitError>
EnginePool::submitAsync(QueryJob query,
                        std::function<void(JobOutcome)> done,
                        Submit mode)
{
    Job job;
    job.query = std::move(query);
    job.done = std::move(done);
    job.submitted = std::chrono::steady_clock::now();

    return enqueue(std::move(job), mode);
}

void
EnginePool::workerMain(unsigned index)
{
    auto ns = [](auto from, auto to) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                to - from)
                .count());
    };

    Shard &shard = *_shards[index];
    // One long-lived engine per worker.  load() fully resets machine,
    // memory and statistics state between jobs, so each job still
    // observes a machine indistinguishable from a fresh construction
    // - without paying the construction, or the per-request KL0
    // compile the shared ProgramCache now absorbs.
    interp::Engine engine;
    // The fast engine sits beside the fidelity engine: both stay warm
    // so a worker alternating modes never reconstructs either.  It is
    // only instantiated on the first fast job (its paged areas cost a
    // little memory a fidelity-only deployment shouldn't pay).
    std::unique_ptr<fast::FastEngine> fastEngine;
    // The affinity key of the image the warm engine currently
    // holds; the scheduler batches same-key jobs onto this worker.
    std::uint64_t loadedKey = 0;
    while (std::optional<sched::Dispatched<Job>> d =
               _sched->pop(index, loadedKey)) {
        Job *job = &d->item;
        auto picked = std::chrono::steady_clock::now();

        JobOutcome out;
        out.id = job->query.program.id;
        out.queueNs = ns(job->submitted, picked);
        out.traceTag = job->query.traceTag;
        out.mode = job->query.mode;

        // Spans are recorded only for tagged jobs with tracing on;
        // the tracing bool keeps the disabled path to one relaxed
        // load per job.
        const bool tracing = trace::enabled() && out.traceTag != 0;
        if (tracing) {
            std::uint64_t qStart = trace::toNs(job->submitted);
            std::uint64_t qEnd = trace::toNs(picked);
            trace::record(trace::Stage::Queue, out.traceTag, qStart,
                          qEnd);
            // Attribute the same wait to its scheduling class, so a
            // trace shows *why* the request dispatched when it did.
            trace::Stage cls = trace::Stage::SchedFair;
            if (d->cls == sched::DispatchClass::Affinity)
                cls = trace::Stage::SchedAffinity;
            else if (d->cls == sched::DispatchClass::Aged)
                cls = trace::Stage::SchedAged;
            trace::record(cls, out.traceTag, qStart, qEnd);
        }

        // The deadline budget starts at submit, so queue wait counts
        // against it.  Dead-on-arrival jobs complete as Timeout right
        // here instead of burning a worker on a doomed run.
        const std::uint64_t budget = job->query.limits.deadlineNs;
        if (budget != 0 && out.queueNs >= budget) {
            out.expired = true;
            out.run.result.status = interp::RunStatus::Timeout;
        } else {
            try {
                std::uint64_t tFetch =
                    tracing ? trace::nowNs() : 0;
                bool compiled = false;
                ProgramCache::ProgramPtr image = _programCache->get(
                    job->query.program.source, job->query.compile,
                    &compiled);
                if (tracing)
                    trace::record(compiled
                                      ? trace::Stage::Compile
                                      : trace::Stage::CacheHit,
                                  out.traceTag, tFetch,
                                  trace::nowNs());
                const bool fast =
                    job->query.mode == interp::ExecMode::Fast;
                if (fast) {
                    if (!fastEngine)
                        fastEngine =
                            std::make_unique<fast::FastEngine>();
                    fastEngine->load(*image);
                } else {
                    engine.load(*image, job->query.cache);
                }
                loadedKey = image->sourceHash();
                auto loaded = std::chrono::steady_clock::now();
                if (tracing)
                    trace::record(trace::Stage::Setup, out.traceTag,
                                  trace::toNs(picked),
                                  trace::toNs(loaded));

                interp::RunLimits limits = job->query.limits;
                if (budget != 0)
                    limits.deadlineNs = budget - out.queueNs;
                if (fast) {
                    // No sequencer, cache model or stall clock to
                    // copy: fast runs report zero hardware stats.
                    out.run.result = fastEngine->solve(
                        job->query.program.query, limits);
                    out.indexHits = fastEngine->indexHits();
                    out.indexFallbacks = fastEngine->indexFallbacks();
                } else {
                    out.run.result = engine.solve(
                        job->query.program.query, limits);
                    out.run.seq = engine.seq().stats();
                    out.run.cache = engine.mem().cache().stats();
                    out.run.stallNs = engine.mem().stallNs();
                    out.indexHits = engine.indexHits();
                    out.indexFallbacks = engine.indexFallbacks();
                }

                auto solved = std::chrono::steady_clock::now();
                if (tracing)
                    trace::record(trace::Stage::Solve, out.traceTag,
                                  trace::toNs(loaded),
                                  trace::toNs(solved));
                out.setupNs = ns(picked, loaded);
                out.solveNs = ns(loaded, solved);
            } catch (const FatalError &e) {
                out.error = e.what();
                // The engine may be mid-load; don't advertise its
                // image as warm to the scheduler.
                loadedKey = 0;
            }
        }

        auto done = std::chrono::steady_clock::now();
        out.execNs = ns(picked, done);
        out.latencyNs = ns(job->submitted, done);

        // Record before fulfilling the promise so a caller who has
        // waited on the future observes the job in the metrics.
        {
            std::lock_guard<std::mutex> lock(shard.m);
            shard.wm.record(out);
        }
        if (job->done)
            job->done(std::move(out));
        else
            job->promise.set_value(std::move(out));
    }
}

void
EnginePool::shutdown()
{
    bool expected = false;
    if (!_shutdown.compare_exchange_strong(expected, true))
        return;
    _sched->close();
    for (auto &t : _threads) {
        if (t.joinable())
            t.join();
    }
}

MetricsSnapshot
EnginePool::metrics() const
{
    MetricsSnapshot snap;
    for (const auto &shard : _shards) {
        std::lock_guard<std::mutex> lock(shard->m);
        snap.total.merge(shard->wm);
    }
    snap.submitted = _submitted.load(std::memory_order_relaxed);
    snap.rejected = _rejected.load(std::memory_order_relaxed);
    snap.queueDepth = _sched->size();
    snap.peakQueueDepth = _peakDepth.load(std::memory_order_relaxed);
    snap.workers = _config.workers;
    snap.sched = _sched->snapshot();
    ProgramCache::Stats pc = _programCache->stats();
    snap.programCacheHits = pc.hits;
    snap.programCacheMisses = pc.misses;
    snap.programCacheEntries = pc.entries;
    return snap;
}

} // namespace service
} // namespace psi
