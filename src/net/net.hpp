/**
 * @file
 * Umbrella header for psinet, the TCP front end of the psid service:
 *
 *  - net::wire       length-prefixed framed messages (wire.hpp)
 *  - net::PsiServer  poll-based non-blocking server over EnginePool
 *  - net::PsiClient  blocking client library (also pipelined, and
 *                    resilient via submitRetry())
 *  - net::FaultProxy deterministic fault-injection proxy for chaos
 *                    testing (faultnet.hpp)
 *
 * Frame layout and message types are specified in docs/PROTOCOL.md.
 */

#ifndef PSI_NET_NET_HPP
#define PSI_NET_NET_HPP

#include "net/client.hpp"
#include "net/faultnet.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"

#endif // PSI_NET_NET_HPP
