#include "net/client.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "base/logging.hpp"
#include "base/trace.hpp"

namespace psi {
namespace net {

namespace {

void
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
}

} // namespace

PsiClient::~PsiClient()
{
    close();
}

void
PsiClient::close()
{
    int fd = _fd.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0)
        ::close(fd);
    _sendFailed.store(false, std::memory_order_release);
    _rbuf.clear();
    _pending.clear();
}

void
PsiClient::setRetryPolicy(const RetryPolicy &policy)
{
    _policy = policy;
    if (_policy.maxAttempts == 0)
        _policy.maxAttempts = 1;
    if (_policy.connectAttempts == 0)
        _policy.connectAttempts = 1;
}

std::uint64_t
PsiClient::backoffSleep(Backoff &backoff, std::uint64_t capNs)
{
    std::uint64_t delay = backoff.nextDelayNs();
    if (delay > capNs)
        delay = capNs;
    if (delay > 0)
        std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
    _retryStats.backoffNs += delay;
    return delay;
}

bool
PsiClient::connect(const std::string &host, std::uint16_t port,
                   std::string *error)
{
    _host = host;
    _port = port;

    Backoff backoff({_policy.backoffBaseNs, _policy.backoffMaxNs,
                     _policy.backoffMultiplier,
                     _policy.seed + _retryStats.connectDials});
    std::string lastError;
    for (unsigned attempt = 1;; ++attempt) {
        ++_retryStats.connectDials;
        if (connectOnce(host, port, &lastError))
            return true;
        if (attempt >= _policy.connectAttempts)
            break;
        ++_retryStats.connectRetries;
        backoffSleep(backoff, UINT64_MAX);
    }
    setError(error, lastError + " (after " +
                        std::to_string(_policy.connectAttempts) +
                        (_policy.connectAttempts == 1 ? " attempt)"
                                                      : " attempts)"));
    return false;
}

bool
PsiClient::connectOnce(const std::string &host, std::uint16_t port,
                       std::string *error)
{
    close();

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *result = nullptr;
    int rc = ::getaddrinfo(host.c_str(),
                           std::to_string(port).c_str(), &hints,
                           &result);
    if (rc != 0) {
        setError(error, "resolve " + host + ": " + gai_strerror(rc));
        return false;
    }

    int connectedFd = -1;
    int lastErr = ECONNREFUSED;
    for (addrinfo *ai = result; ai != nullptr; ai = ai->ai_next) {
        int fd = ::socket(ai->ai_family, ai->ai_socktype,
                          ai->ai_protocol);
        if (fd < 0) {
            lastErr = errno;
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            connectedFd = fd;
            break;
        }
        lastErr = errno;
        ::close(fd);
    }
    ::freeaddrinfo(result);

    if (connectedFd < 0) {
        setError(error, "connect " + host + ":" +
                            std::to_string(port) + ": " +
                            std::strerror(lastErr));
        return false;
    }
    _fd.store(connectedFd, std::memory_order_release);
    return true;
}

bool
PsiClient::sendAll(const std::string &bytes, std::string *error)
{
    int fd = _fd.load(std::memory_order_acquire);
    if (fd < 0 || _sendFailed.load(std::memory_order_acquire)) {
        setError(error, "not connected");
        return false;
    }
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + off,
                           bytes.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        setError(error,
                 std::string("send: ") + std::strerror(errno));
        // Don't close() from the sender half: the receiver thread may
        // be reading _rbuf / polling _fd right now.  Shut the socket
        // down so the receiver observes EOF and does the teardown.
        _sendFailed.store(true, std::memory_order_release);
        ::shutdown(fd, SHUT_RDWR);
        return false;
    }
    return true;
}

std::optional<Message>
PsiClient::recvMessage(int timeoutMs, std::string *error)
{
    int fd = _fd.load(std::memory_order_acquire);
    if (fd < 0) {
        setError(error, "not connected");
        return std::nullopt;
    }

    using clock = std::chrono::steady_clock;
    auto deadline = clock::now() + std::chrono::milliseconds(
                                       timeoutMs < 0 ? 0 : timeoutMs);

    std::string payload;
    // Client-side decode span: ioStartNs re-stamps after every poll
    // wake-up, so it covers recv + frame extraction + decode of the
    // message but never the idle wait for the server (that interval
    // belongs to the server's own spans on the shared timeline).
    std::uint64_t ioStartNs =
        trace::enabled() ? trace::nowNs() : 0;
    for (;;) {
        switch (extractFrame(_rbuf, payload)) {
          case FrameResult::Frame: {
            std::string derror;
            std::optional<Message> msg = decode(payload, &derror);
            if (!msg) {
                setError(error, "protocol error: " + derror);
                close();
            } else if (ioStartNs != 0) {
                if (auto *r = std::get_if<ResultMsg>(&*msg);
                    r != nullptr && r->traceTag != 0)
                    trace::record(trace::Stage::Decode, r->traceTag,
                                  ioStartNs, trace::nowNs());
            }
            return msg;
          }
          case FrameResult::Bad:
            setError(error, "protocol error: bad frame from server");
            close();
            return std::nullopt;
          case FrameResult::NeedMore:
            break;
        }

        int wait = -1;
        if (timeoutMs >= 0) {
            auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - clock::now())
                    .count();
            if (left <= 0) {
                setError(error, "timed out waiting for reply");
                return std::nullopt;
            }
            wait = static_cast<int>(left);
        }

        pollfd pfd{fd, POLLIN, 0};
        int ready = ::poll(&pfd, 1, wait);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            setError(error,
                     std::string("poll: ") + std::strerror(errno));
            close();
            return std::nullopt;
        }
        if (ready == 0) {
            setError(error, "timed out waiting for reply");
            return std::nullopt;
        }

        if (ioStartNs != 0)
            ioStartNs = trace::nowNs(); // wait is over; restart span

        char chunk[64 * 1024];
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            _rbuf.append(chunk, static_cast<std::size_t>(n));
        } else if (n == 0) {
            setError(error, "connection closed by server");
            close();
            return std::nullopt;
        } else if (errno != EINTR) {
            setError(error,
                     std::string("recv: ") + std::strerror(errno));
            close();
            return std::nullopt;
        }
    }
}

bool
PsiClient::sendSubmit(const std::string &workload,
                      std::uint64_t deadlineNs,
                      std::uint64_t *tagOut, std::string *error,
                      const std::string &tenant,
                      interp::ExecMode mode)
{
    SubmitBuilder builder(_nextTag++, workload);
    builder.deadlineNs(deadlineNs).tenant(tenant);
    // Fidelity requests keep the v2.1 two-field form so pre-v2.2
    // servers (which reject trailing bytes) interop unchanged; only
    // a fast request needs the mode byte on the wire.
    if (mode != interp::ExecMode::Fidelity)
        builder.mode(mode);
    SubmitMsg msg = std::move(builder).build();
    if (tagOut)
        *tagOut = msg.tag;
    return sendAll(encode(Message(std::move(msg))), error);
}

std::optional<ResultMsg>
PsiClient::recvResult(int timeoutMs, std::string *error)
{
    if (!_pending.empty()) {
        ResultMsg result = std::move(_pending.front());
        _pending.pop_front();
        return result;
    }
    std::optional<Message> msg = recvMessage(timeoutMs, error);
    if (!msg)
        return std::nullopt;
    if (auto *result = std::get_if<ResultMsg>(&*msg))
        return std::move(*result);
    setError(error, "unexpected reply (wanted RESULT)");
    close();
    return std::nullopt;
}

std::optional<ResultMsg>
PsiClient::submit(const Request &request, const RetryPolicy *retry,
                  std::string *error)
{
    if (retry == nullptr) {
        return submitOnce(request.workload, request.deadlineNs,
                          request.timeoutMs, error, request.tenant,
                          request.mode);
    }
    RetryPolicy policy = *retry;
    if (policy.maxAttempts == 0)
        policy.maxAttempts = 1;
    if (policy.connectAttempts == 0)
        policy.connectAttempts = 1;
    return submitWithRetry(request.workload, policy,
                           request.deadlineNs, request.timeoutMs,
                           error, request.tenant, request.mode);
}

std::optional<ResultMsg>
PsiClient::submitOnce(const std::string &workload,
                      std::uint64_t deadlineNs, int timeoutMs,
                      std::string *error, const std::string &tenant,
                      interp::ExecMode mode)
{
    std::uint64_t tag = 0;
    if (!sendSubmit(workload, deadlineNs, &tag, error, tenant, mode))
        return std::nullopt;
    for (;;) {
        std::optional<ResultMsg> result = recvResult(timeoutMs, error);
        if (!result)
            return std::nullopt;
        if (result->tag == tag)
            return result;
        // An earlier pipelined reply; park it for recvResult().
        _pending.push_back(std::move(*result));
    }
}

std::optional<ResultMsg>
PsiClient::submitWithRetry(const std::string &workload,
                           const RetryPolicy &policy,
                           std::uint64_t deadlineNs, int timeoutMs,
                           std::string *error,
                           const std::string &tenant,
                           interp::ExecMode mode)
{
    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    auto elapsedNs = [&] {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                clock::now() - start)
                .count());
    };

    Backoff backoff({policy.backoffBaseNs, policy.backoffMaxNs,
                     policy.backoffMultiplier,
                     policy.seed + _nextTag});
    std::string lastError = "not connected";

    for (unsigned attempt = 1; attempt <= policy.maxAttempts;
         ++attempt) {
        std::uint64_t spent = elapsedNs();
        if (deadlineNs != 0 && spent >= deadlineNs)
            break; // budget gone: never retry past the deadline

        if (attempt > 1)
            backoffSleep(backoff, deadlineNs == 0
                                      ? UINT64_MAX
                                      : deadlineNs - spent);

        // Reconnect if the previous attempt killed the connection.
        if (!connected()) {
            if (_host.empty()) {
                setError(error, "not connected (no prior connect())");
                return std::nullopt;
            }
            ++_retryStats.connectDials;
            if (!connectOnce(_host, _port, &lastError))
                continue; // dial refused: next attempt, more backoff
            if (attempt > 1)
                ++_retryStats.reconnects;
        }

        // Each attempt runs under the *remaining* budget and a fresh
        // tag; any RESULT still echoing a superseded tag is a
        // duplicate and must be dropped, not delivered.
        spent = elapsedNs();
        if (deadlineNs != 0 && spent >= deadlineNs)
            break;
        std::uint64_t remainingNs =
            deadlineNs == 0 ? 0 : deadlineNs - spent;

        std::uint64_t tag = 0;
        if (!sendSubmit(workload, remainingNs, &tag, &lastError,
                        tenant, mode))
            continue; // send failed: connection is dead, retry
        if (attempt > 1)
            ++_retryStats.resubmits;

        for (;;) {
            int waitMs = timeoutMs;
            if (deadlineNs != 0) {
                std::uint64_t el = elapsedNs();
                std::uint64_t left =
                    el >= deadlineNs ? 0 : deadlineNs - el;
                int leftMs =
                    static_cast<int>(left / 1'000'000u) + 1;
                if (waitMs < 0 || leftMs < waitMs)
                    waitMs = leftMs;
            }
            std::optional<ResultMsg> result =
                recvResult(waitMs, &lastError);
            if (!result) {
                if (connected()) {
                    // A live connection timed out: the request is
                    // still in flight; resubmitting could deliver
                    // its solutions twice.  Fail, don't retry.
                    if (deadlineNs != 0 &&
                        elapsedNs() >= deadlineNs)
                        break; // budget exhausted, stop retrying
                    setError(error,
                             "timed out with request in flight "
                             "(attempt " +
                                 std::to_string(attempt) + "): " +
                                 lastError);
                    return std::nullopt;
                }
                break; // connection died: unacknowledged, retry
            }
            if (result->tag != tag) {
                // Echo of a superseded attempt (or an unrelated
                // pipelined call, which this single-threaded API
                // does not support): drop it.
                ++_retryStats.duplicatesDropped;
                continue;
            }
            if (result->status == WireStatus::Overloaded) {
                ++_retryStats.overloadedRetries;
                backoff.raiseFloor(policy.overloadedFloorNs);
                lastError = "server overloaded: " + result->error;
                break; // retryable backpressure
            }
            if (result->status == WireStatus::Draining) {
                ++_retryStats.drainingRetries;
                lastError = "server draining: " + result->error;
                break; // retryable: a restarted server may be back
            }
            return result;
        }
    }

    ++_retryStats.exhausted;
    setError(error,
             "gave up after " + std::to_string(policy.maxAttempts) +
                 " attempts" +
                 (deadlineNs != 0 ? " (deadline budget)" : "") +
                 ": " + lastError);
    return std::nullopt;
}

std::optional<std::string>
PsiClient::stats(int timeoutMs, std::string *error)
{
    if (!sendAll(encode(Message(StatsMsg{})), error))
        return std::nullopt;
    for (;;) {
        std::optional<Message> msg = recvMessage(timeoutMs, error);
        if (!msg)
            return std::nullopt;
        if (auto *reply = std::get_if<StatsReplyMsg>(&*msg))
            return std::move(reply->json);
        if (auto *result = std::get_if<ResultMsg>(&*msg)) {
            _pending.push_back(std::move(*result));
            continue; // pipelined RESULT passing by
        }
        setError(error, "unexpected reply (wanted STATS_REPLY)");
        close();
        return std::nullopt;
    }
}

std::optional<HelloAckMsg>
PsiClient::hello(std::uint64_t features, int timeoutMs,
                 std::string *error)
{
    HelloMsg msg;
    msg.features = features;
    if (!sendAll(encode(Message(std::move(msg))), error))
        return std::nullopt;
    for (;;) {
        std::optional<Message> reply = recvMessage(timeoutMs, error);
        if (!reply)
            return std::nullopt;
        if (auto *ack = std::get_if<HelloAckMsg>(&*reply))
            return std::move(*ack);
        if (auto *err = std::get_if<ErrorMsg>(&*reply)) {
            setError(error, "server rejected hello (code " +
                                std::to_string(err->code) + "): " +
                                err->message);
            close();
            return std::nullopt;
        }
        if (auto *result = std::get_if<ResultMsg>(&*reply)) {
            _pending.push_back(std::move(*result));
            continue;
        }
        setError(error, "unexpected reply (wanted HELLO_ACK)");
        close();
        return std::nullopt;
    }
}

std::optional<std::string>
PsiClient::traceJson(int timeoutMs, std::string *error)
{
    if (!sendAll(encode(Message(TraceMsg{})), error))
        return std::nullopt;
    for (;;) {
        std::optional<Message> msg = recvMessage(timeoutMs, error);
        if (!msg)
            return std::nullopt;
        if (auto *reply = std::get_if<TraceReplyMsg>(&*msg))
            return std::move(reply->json);
        if (auto *result = std::get_if<ResultMsg>(&*msg)) {
            _pending.push_back(std::move(*result));
            continue;
        }
        setError(error, "unexpected reply (wanted TRACE_REPLY)");
        close();
        return std::nullopt;
    }
}

std::optional<std::string>
PsiClient::metricsText(int timeoutMs, std::string *error)
{
    if (!sendAll(encode(Message(MetricsMsg{})), error))
        return std::nullopt;
    for (;;) {
        std::optional<Message> msg = recvMessage(timeoutMs, error);
        if (!msg)
            return std::nullopt;
        if (auto *reply = std::get_if<MetricsReplyMsg>(&*msg))
            return std::move(reply->text);
        if (auto *result = std::get_if<ResultMsg>(&*msg)) {
            _pending.push_back(std::move(*result));
            continue;
        }
        setError(error, "unexpected reply (wanted METRICS_REPLY)");
        close();
        return std::nullopt;
    }
}

bool
PsiClient::drain(int timeoutMs, std::string *error)
{
    if (!sendAll(encode(Message(DrainMsg{})), error))
        return false;
    for (;;) {
        std::optional<Message> msg = recvMessage(timeoutMs, error);
        if (!msg)
            return false;
        if (std::get_if<DrainAckMsg>(&*msg) != nullptr)
            return true;
        if (auto *result = std::get_if<ResultMsg>(&*msg)) {
            _pending.push_back(std::move(*result));
            continue;
        }
        setError(error, "unexpected reply (wanted DRAIN_ACK)");
        close();
        return false;
    }
}

} // namespace net
} // namespace psi
