#include "net/wire.hpp"

#include "service/engine_pool.hpp"

namespace psi {
namespace net {

const char *
wireStatusName(WireStatus s)
{
    switch (s) {
      case WireStatus::Ok:              return "ok";
      case WireStatus::StepLimit:       return "step-limit";
      case WireStatus::Timeout:         return "timeout";
      case WireStatus::EngineError:     return "engine-error";
      case WireStatus::UnknownWorkload: return "unknown-workload";
      case WireStatus::Overloaded:      return "overloaded";
      case WireStatus::Draining:        return "draining";
    }
    return "?";
}

WireStatus
wireStatus(interp::RunStatus s)
{
    switch (s) {
      case interp::RunStatus::Ok:        return WireStatus::Ok;
      case interp::RunStatus::StepLimit: return WireStatus::StepLimit;
      case interp::RunStatus::Timeout:   return WireStatus::Timeout;
    }
    return WireStatus::EngineError;
}

MsgType
messageType(const Message &msg)
{
    struct Visitor
    {
        MsgType operator()(const SubmitMsg &) { return MsgType::Submit; }
        MsgType operator()(const ResultMsg &) { return MsgType::Result; }
        MsgType operator()(const StatsMsg &) { return MsgType::Stats; }
        MsgType operator()(const StatsReplyMsg &)
        {
            return MsgType::StatsReply;
        }
        MsgType operator()(const DrainMsg &) { return MsgType::Drain; }
        MsgType operator()(const DrainAckMsg &)
        {
            return MsgType::DrainAck;
        }
        MsgType operator()(const HelloMsg &) { return MsgType::Hello; }
        MsgType operator()(const HelloAckMsg &)
        {
            return MsgType::HelloAck;
        }
        MsgType operator()(const ErrorMsg &) { return MsgType::Error; }
        MsgType operator()(const TraceMsg &) { return MsgType::Trace; }
        MsgType operator()(const TraceReplyMsg &)
        {
            return MsgType::TraceReply;
        }
        MsgType operator()(const MetricsMsg &)
        {
            return MsgType::Metrics;
        }
        MsgType operator()(const MetricsReplyMsg &)
        {
            return MsgType::MetricsReply;
        }
    };
    return std::visit(Visitor{}, msg);
}

namespace {

// ---------------------------------------------------------------------
// Primitive writers (big-endian, strings/arrays length-prefixed)
// ---------------------------------------------------------------------

void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int shift = 24; shift >= 0; shift -= 8)
        out.push_back(static_cast<char>((v >> shift) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int shift = 56; shift >= 0; shift -= 8)
        out.push_back(static_cast<char>((v >> shift) & 0xff));
}

void
putString(std::string &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

template <std::size_t N>
void
putArray(std::string &out, const std::array<std::uint64_t, N> &a)
{
    putU32(out, static_cast<std::uint32_t>(N));
    for (std::uint64_t v : a)
        putU64(out, v);
}

template <std::size_t Rows, std::size_t Cols>
void
putMatrix(std::string &out,
          const std::array<std::array<std::uint64_t, Cols>, Rows> &m)
{
    putU32(out, static_cast<std::uint32_t>(Rows));
    putU32(out, static_cast<std::uint32_t>(Cols));
    for (const auto &row : m)
        for (std::uint64_t v : row)
            putU64(out, v);
}

// ---------------------------------------------------------------------
// Primitive readers (bounds-checked; false = truncated)
// ---------------------------------------------------------------------

struct Reader
{
    std::string_view data;
    std::size_t pos = 0;

    bool
    getU8(std::uint8_t &v)
    {
        if (pos + 1 > data.size())
            return false;
        v = static_cast<std::uint8_t>(data[pos++]);
        return true;
    }

    bool
    getU32(std::uint32_t &v)
    {
        if (pos + 4 > data.size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v = (v << 8) |
                static_cast<std::uint8_t>(data[pos++]);
        return true;
    }

    bool
    getU64(std::uint64_t &v)
    {
        if (pos + 8 > data.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v = (v << 8) |
                static_cast<std::uint8_t>(data[pos++]);
        return true;
    }

    bool
    getString(std::string &s)
    {
        std::uint32_t n;
        if (!getU32(n) || pos + n > data.size())
            return false;
        s.assign(data.substr(pos, n));
        pos += n;
        return true;
    }

    template <std::size_t N>
    bool
    getArray(std::array<std::uint64_t, N> &a)
    {
        std::uint32_t n;
        if (!getU32(n) || n != N)
            return false;
        for (std::uint64_t &v : a)
            if (!getU64(v))
                return false;
        return true;
    }

    template <std::size_t Rows, std::size_t Cols>
    bool
    getMatrix(std::array<std::array<std::uint64_t, Cols>, Rows> &m)
    {
        std::uint32_t rows, cols;
        if (!getU32(rows) || !getU32(cols) || rows != Rows ||
            cols != Cols)
            return false;
        for (auto &row : m)
            for (std::uint64_t &v : row)
                if (!getU64(v))
                    return false;
        return true;
    }

    bool done() const { return pos == data.size(); }
};

// ---------------------------------------------------------------------
// Message bodies
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// SUBMIT tail fields
// ---------------------------------------------------------------------
// The SUBMIT body grew by appending one optional field per minor
// revision, and a frame is self-canonical: it simply ends after the
// last field its sender knew.  Each row below bundles the three
// obligations one appended field carries - encode when present,
// decode while bytes remain, reset to the default when absent (so a
// re-encode reproduces the sender's exact bytes).  The encoder stops
// at the first absent field and the decoder flips to absent at
// exhaustion, which together enforce the prefix rule (e.g. a mode
// byte cannot ride without the tenant field before it).  Adding a
// v2.3 field is one more row, nothing else.

struct SubmitTailField
{
    bool SubmitMsg::*present;                      ///< presence flag
    void (*put)(std::string &, const SubmitMsg &); ///< encode field
    bool (*get)(Reader &, SubmitMsg &);            ///< decode+validate
    void (*clear)(SubmitMsg &);                    ///< absent default
};

const SubmitTailField kSubmitTail[] = {
    // v2.1: scheduling tenant ("" = the shared default tenant).
    {&SubmitMsg::hasTenant,
     [](std::string &out, const SubmitMsg &m) {
         putString(out, m.tenant);
     },
     [](Reader &r, SubmitMsg &m) { return r.getString(m.tenant); },
     [](SubmitMsg &m) { m.tenant.clear(); }},
    // v2.2: execution-mode byte.  Unknown modes are a decode error,
    // not a silent fallback: a frame asking for an execution
    // semantics this build does not implement must not run as
    // something else.
    {&SubmitMsg::hasMode,
     [](std::string &out, const SubmitMsg &m) {
         putU8(out, static_cast<std::uint8_t>(m.mode));
     },
     [](Reader &r, SubmitMsg &m) {
         std::uint8_t mode;
         if (!r.getU8(mode))
             return false;
         if (mode > static_cast<std::uint8_t>(interp::ExecMode::Fast))
             return false;
         m.mode = static_cast<interp::ExecMode>(mode);
         return true;
     },
     [](SubmitMsg &m) { m.mode = interp::ExecMode::Fidelity; }},
};

void
putBody(std::string &out, const SubmitMsg &m)
{
    putU64(out, m.tag);
    putString(out, m.workload);
    putU64(out, m.deadlineNs);
    for (const SubmitTailField &f : kSubmitTail) {
        if (!(m.*f.present))
            break;
        f.put(out, m);
    }
}

void
putBody(std::string &out, const ResultMsg &m)
{
    putU64(out, m.tag);
    putU8(out, static_cast<std::uint8_t>(m.status));
    putString(out, m.error);
    putU32(out, static_cast<std::uint32_t>(m.solutions.size()));
    for (const auto &s : m.solutions)
        putString(out, s);
    putString(out, m.output);
    putU64(out, m.inferences);
    putU64(out, m.steps);
    putU64(out, m.modelNs);
    putU64(out, m.stallNs);
    putArray(out, m.seq.moduleSteps);
    putArray(out, m.seq.branchOps);
    putMatrix(out, m.seq.wfModes);
    putArray(out, m.seq.cacheSteps);
    putMatrix(out, m.cache.accesses);
    putMatrix(out, m.cache.hits);
    putU64(out, m.cache.readIns);
    putU64(out, m.cache.writeBacks);
    putU64(out, m.cache.stackAllocs);
    putU64(out, m.cache.throughWrites);
    putU64(out, m.queueNs);
    putU64(out, m.execNs);
    putU64(out, m.latencyNs);
    putU64(out, m.traceTag);
}

void
putBody(std::string &, const StatsMsg &)
{}

void
putBody(std::string &out, const StatsReplyMsg &m)
{
    putString(out, m.json);
}

void
putBody(std::string &, const DrainMsg &)
{}

void
putBody(std::string &, const DrainAckMsg &)
{}

void
putBody(std::string &out, const HelloMsg &m)
{
    putU32(out, m.versionMajor);
    putU32(out, m.versionMinor);
    putU64(out, m.features);
}

void
putBody(std::string &out, const HelloAckMsg &m)
{
    putU32(out, m.versionMajor);
    putU32(out, m.versionMinor);
    putU64(out, m.features);
}

void
putBody(std::string &out, const ErrorMsg &m)
{
    putU32(out, m.code);
    putString(out, m.message);
}

void
putBody(std::string &, const TraceMsg &)
{}

void
putBody(std::string &out, const TraceReplyMsg &m)
{
    putString(out, m.json);
}

void
putBody(std::string &, const MetricsMsg &)
{}

void
putBody(std::string &out, const MetricsReplyMsg &m)
{
    putString(out, m.text);
}

bool
getBody(Reader &r, SubmitMsg &m)
{
    if (!r.getU64(m.tag) || !r.getString(m.workload) ||
        !r.getU64(m.deadlineNs))
        return false;
    // Once the frame runs dry, every remaining field is absent and
    // takes its default - remembering the absence is what lets a
    // re-encode reproduce the sender's exact bytes.
    bool ended = false;
    for (const SubmitTailField &f : kSubmitTail) {
        if (!ended && r.done())
            ended = true;
        if (ended) {
            m.*f.present = false;
            f.clear(m);
            continue;
        }
        m.*f.present = true;
        if (!f.get(r, m))
            return false;
    }
    return true;
}

bool
getBody(Reader &r, ResultMsg &m)
{
    std::uint8_t status;
    std::uint32_t nsolutions;
    if (!r.getU64(m.tag) || !r.getU8(status) ||
        !r.getString(m.error) || !r.getU32(nsolutions))
        return false;
    m.status = static_cast<WireStatus>(status);
    // An untrusted count: each solution needs at least a 4-byte
    // length prefix, so more than remaining/4 entries cannot decode.
    // Checking before resize() keeps a tiny malicious frame from
    // forcing a multi-GB allocation.
    if (nsolutions > (r.data.size() - r.pos) / 4)
        return false;
    m.solutions.resize(nsolutions);
    for (auto &s : m.solutions)
        if (!r.getString(s))
            return false;
    return r.getString(m.output) && r.getU64(m.inferences) &&
           r.getU64(m.steps) && r.getU64(m.modelNs) &&
           r.getU64(m.stallNs) && r.getArray(m.seq.moduleSteps) &&
           r.getArray(m.seq.branchOps) && r.getMatrix(m.seq.wfModes) &&
           r.getArray(m.seq.cacheSteps) &&
           r.getMatrix(m.cache.accesses) &&
           r.getMatrix(m.cache.hits) && r.getU64(m.cache.readIns) &&
           r.getU64(m.cache.writeBacks) &&
           r.getU64(m.cache.stackAllocs) &&
           r.getU64(m.cache.throughWrites) && r.getU64(m.queueNs) &&
           r.getU64(m.execNs) && r.getU64(m.latencyNs) &&
           r.getU64(m.traceTag);
}

bool
getBody(Reader &, StatsMsg &)
{
    return true;
}

bool
getBody(Reader &r, StatsReplyMsg &m)
{
    return r.getString(m.json);
}

bool
getBody(Reader &, DrainMsg &)
{
    return true;
}

bool
getBody(Reader &, DrainAckMsg &)
{
    return true;
}

bool
getBody(Reader &r, HelloMsg &m)
{
    return r.getU32(m.versionMajor) && r.getU32(m.versionMinor) &&
           r.getU64(m.features);
}

bool
getBody(Reader &r, HelloAckMsg &m)
{
    return r.getU32(m.versionMajor) && r.getU32(m.versionMinor) &&
           r.getU64(m.features);
}

bool
getBody(Reader &r, ErrorMsg &m)
{
    return r.getU32(m.code) && r.getString(m.message);
}

bool
getBody(Reader &, TraceMsg &)
{
    return true;
}

bool
getBody(Reader &r, TraceReplyMsg &m)
{
    return r.getString(m.json);
}

bool
getBody(Reader &, MetricsMsg &)
{
    return true;
}

bool
getBody(Reader &r, MetricsReplyMsg &m)
{
    return r.getString(m.text);
}

template <typename T>
std::optional<Message>
decodeAs(Reader &r, std::string *error)
{
    T msg;
    if (!getBody(r, msg)) {
        if (error)
            *error = "truncated message body";
        return std::nullopt;
    }
    if (!r.done()) {
        if (error)
            *error = "trailing bytes after message body";
        return std::nullopt;
    }
    return Message(std::move(msg));
}

} // namespace

std::string
encode(const Message &msg)
{
    std::string payload;
    putU8(payload, static_cast<std::uint8_t>(messageType(msg)));
    std::visit([&payload](const auto &m) { putBody(payload, m); },
               msg);

    std::string frame;
    frame.reserve(kFrameHeaderBytes + payload.size());
    putU32(frame, static_cast<std::uint32_t>(payload.size()));
    frame.append(payload);
    return frame;
}

FrameResult
extractFrame(std::string &buffer, std::string &payload)
{
    if (buffer.size() < kFrameHeaderBytes)
        return FrameResult::NeedMore;
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i)
        length = (length << 8) |
                 static_cast<std::uint8_t>(buffer[i]);
    if (length == 0 || length > kMaxFramePayload)
        return FrameResult::Bad;
    if (buffer.size() < kFrameHeaderBytes + length)
        return FrameResult::NeedMore;
    payload.assign(buffer, kFrameHeaderBytes, length);
    buffer.erase(0, kFrameHeaderBytes + length);
    return FrameResult::Frame;
}

std::optional<Message>
decode(std::string_view payload, std::string *error)
{
    Reader r{payload};
    std::uint8_t type;
    if (!r.getU8(type)) {
        if (error)
            *error = "empty payload";
        return std::nullopt;
    }
    switch (static_cast<MsgType>(type)) {
      case MsgType::Submit:
        return decodeAs<SubmitMsg>(r, error);
      case MsgType::Result:
        return decodeAs<ResultMsg>(r, error);
      case MsgType::Stats:
        return decodeAs<StatsMsg>(r, error);
      case MsgType::StatsReply:
        return decodeAs<StatsReplyMsg>(r, error);
      case MsgType::Drain:
        return decodeAs<DrainMsg>(r, error);
      case MsgType::DrainAck:
        return decodeAs<DrainAckMsg>(r, error);
      case MsgType::Hello:
        return decodeAs<HelloMsg>(r, error);
      case MsgType::HelloAck:
        return decodeAs<HelloAckMsg>(r, error);
      case MsgType::Error:
        return decodeAs<ErrorMsg>(r, error);
      case MsgType::Trace:
        return decodeAs<TraceMsg>(r, error);
      case MsgType::TraceReply:
        return decodeAs<TraceReplyMsg>(r, error);
      case MsgType::Metrics:
        return decodeAs<MetricsMsg>(r, error);
      case MsgType::MetricsReply:
        return decodeAs<MetricsReplyMsg>(r, error);
    }
    if (error)
        *error = "unknown message type " + std::to_string(type);
    return std::nullopt;
}

ResultMsg
resultFromOutcome(std::uint64_t tag,
                  const service::JobOutcome &outcome)
{
    ResultMsg msg;
    msg.tag = tag;
    if (!outcome.ok()) {
        msg.status = WireStatus::EngineError;
        msg.error = outcome.error;
    } else {
        msg.status = wireStatus(outcome.status());
    }

    const interp::RunResult &r = outcome.run.result;
    msg.solutions.reserve(r.solutions.size());
    for (const auto &s : r.solutions)
        msg.solutions.push_back(s.str());
    msg.output = r.output;
    msg.inferences = r.inferences;
    msg.steps = r.steps;
    msg.modelNs = r.timeNs;
    msg.stallNs = outcome.run.stallNs;
    msg.seq = outcome.run.seq;
    msg.cache = outcome.run.cache;
    msg.queueNs = outcome.queueNs;
    msg.execNs = outcome.execNs;
    msg.latencyNs = outcome.latencyNs;
    msg.traceTag = outcome.traceTag;
    return msg;
}

} // namespace net
} // namespace psi
