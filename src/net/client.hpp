/**
 * @file
 * PsiClient: blocking client library for the psinet wire protocol.
 *
 * One instance owns one TCP connection.  Two usage models:
 *
 *  - Request/response: submit(Request) sends a SUBMIT and blocks
 *    until the matching RESULT arrives; stats(), traceJson(),
 *    metricsText() and drain() likewise.  Passing a RetryPolicy
 *    makes the same call resilient: reconnect on a dead connection,
 *    exponential backoff with seeded jitter, OVERLOADED/DRAINING
 *    treated as retryable backpressure, and a deadline-aware budget
 *    that is never exceeded by retries.  Resubmission is
 *    idempotent-safe: only a request whose RESULT never arrived
 *    (connection died, or the server refused it) is sent again, each
 *    attempt under a fresh tag, and a stale RESULT for a superseded
 *    attempt is detected by its echoed tag and dropped, so no
 *    solution is ever delivered twice.
 *
 *  - Pipelined: sendSubmit() queues requests without waiting and
 *    recvResult() collects RESULTs as they complete (completion
 *    order, not submission order - correlate by tag).  One sender
 *    thread and one receiver thread may use the same client
 *    concurrently; that split is exactly what the open-loop load
 *    generator (bench/net_throughput) does.
 *
 * hello() optionally opens the connection with a version/feature
 * handshake; servers too old to know HELLO close the connection,
 * servers too new for this client answer with a structured ERROR.
 *
 * Every receive path takes a timeout in milliseconds (-1 = wait
 * forever); on timeout the call fails without consuming a partial
 * frame, so the connection stays usable.  A timeout on a *live*
 * connection is deliberately not retried by submitRetry(): the
 * request is still outstanding and a resubmit would run it twice.
 *
 * The retry paths (connect(), submitRetry()) are single-threaded
 * APIs - don't mix them with the concurrent sender/receiver split.
 */

#ifndef PSI_NET_CLIENT_HPP
#define PSI_NET_CLIENT_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "base/backoff.hpp"
#include "net/wire.hpp"

namespace psi {
namespace net {

/** Reconnect/retry policy for connect() and submitRetry(). */
struct RetryPolicy
{
    /** submitRetry(): total tries per request (1 = no retry). */
    unsigned maxAttempts = 4;
    /** connect(): dial attempts before giving up (1 = no retry).
     *  Name-resolution failures and transient connect errors
     *  (ECONNREFUSED and friends) are retried alike. */
    unsigned connectAttempts = 3;

    std::uint64_t backoffBaseNs = 5'000'000;   ///< first ceiling
    std::uint64_t backoffMaxNs = 500'000'000;  ///< ceiling cap
    double backoffMultiplier = 2.0;
    /** An OVERLOADED reply raises the backoff ceiling to at least
     *  this: server backpressure backs off harder than a flaky
     *  link does. */
    std::uint64_t overloadedFloorNs = 50'000'000;
    std::uint64_t seed = 1; ///< jitter PRNG seed (deterministic)
};

/** What the retry machinery did (single-threaded counters). */
struct RetryStats
{
    std::uint64_t connectDials = 0;      ///< dial attempts, total
    std::uint64_t connectRetries = 0;    ///< dials after a failure
    std::uint64_t reconnects = 0;        ///< submitRetry() re-dials
    std::uint64_t resubmits = 0;         ///< SUBMITs sent again
    std::uint64_t overloadedRetries = 0; ///< OVERLOADED then retried
    std::uint64_t drainingRetries = 0;   ///< DRAINING then retried
    std::uint64_t duplicatesDropped = 0; ///< stale-tag RESULTs dropped
    std::uint64_t backoffNs = 0;         ///< total time backing off
    std::uint64_t exhausted = 0;         ///< gave up (attempts/budget)
};

/** One query as the client submits it. */
struct Request
{
    std::string workload;         ///< registry workload id
    std::uint64_t deadlineNs = 0; ///< whole-request budget; 0 = none
    int timeoutMs = -1;           ///< client-side wait; -1 = forever
    /** Scheduling tenant (server-side fairness + quota unit);
     *  "" = the shared default tenant. */
    std::string tenant = {};
    /** Execution mode.  Fast requests ride the v2.2 SUBMIT form
     *  (mode byte after the tenant); Fidelity requests keep the
     *  v2.1 form so pre-v2.2 servers interop unchanged. */
    interp::ExecMode mode = interp::ExecMode::Fidelity;
};

/** Blocking connection to a PsiServer. */
class PsiClient
{
  public:
    PsiClient() = default;
    ~PsiClient();

    PsiClient(const PsiClient &) = delete;
    PsiClient &operator=(const PsiClient &) = delete;

    /**
     * Connect to @p host : @p port (IPv4 dotted quad or name),
     * retrying transient failures per the RetryPolicy (jittered
     * backoff between dials).  On final failure the error string
     * carries the attempt count.
     */
    bool connect(const std::string &host, std::uint16_t port,
                 std::string *error = nullptr);

    /**
     * Tear down the connection and clear buffered state.  Not safe
     * concurrently with the receiver half: only the receiving thread
     * (or a single-threaded owner) may call it.  The sender half
     * never closes - on a send failure it shuts the socket down and
     * lets the receiver observe EOF and do the teardown.
     */
    void close();
    bool connected() const
    {
        return _fd.load(std::memory_order_acquire) >= 0 &&
               !_sendFailed.load(std::memory_order_acquire);
    }

    /**
     * Submit one Request and wait for its RESULT.
     *
     * With @p retry null this is a single attempt: any failure
     * (dead connection, OVERLOADED, timeout) surfaces immediately.
     *
     * With a RetryPolicy the call survives connection failures and
     * server backpressure:
     *
     *  - A dead connection (reset, truncation, EOF, refused dial)
     *    reconnects with backoff and resubmits - the outstanding
     *    request is unacknowledged, so the resubmit cannot
     *    duplicate a delivered result.
     *  - OVERLOADED and DRAINING RESULTs are retryable refusals;
     *    OVERLOADED raises the backoff ceiling (the server asked
     *    for air, give it more than a jittery link would get).
     *  - Request::deadlineNs budgets the *whole* call: backoff
     *    sleeps never extend past the remaining budget and each
     *    resubmit carries only the remainder to the server.
     *  - A recv timeout on a live connection fails without retry:
     *    the request is still in flight server-side and running it
     *    again could hand back a duplicate.
     *
     * Single-threaded API (no concurrent sender/receiver split).
     */
    std::optional<ResultMsg>
    submit(const Request &request,
           const RetryPolicy *retry = nullptr,
           std::string *error = nullptr);

    /**
     * Negotiate the protocol version (optional opener; servers treat
     * connections that skip it as v1).  On success returns the
     * server's HELLO_ACK carrying its version and the feature-bit
     * intersection.  A structured ERROR reply (unsupported major)
     * sets @p error from its code/message and closes the
     * connection.
     */
    std::optional<HelloAckMsg>
    hello(std::uint64_t features = kSupportedFeatures,
          int timeoutMs = -1, std::string *error = nullptr);

    /** Policy for connect()/submit(Request, &policy); also reseeds
     *  the jitter. */
    void setRetryPolicy(const RetryPolicy &policy);
    const RetryPolicy &retryPolicy() const { return _policy; }

    /** Counters accumulated by the retry paths (never reset). */
    const RetryStats &retryStats() const { return _retryStats; }

    /**
     * Pipelined send half: queue one SUBMIT and return immediately.
     * @param tagOut receives the correlation tag of this request.
     */
    bool sendSubmit(const std::string &workload,
                    std::uint64_t deadlineNs = 0,
                    std::uint64_t *tagOut = nullptr,
                    std::string *error = nullptr,
                    const std::string &tenant = std::string(),
                    interp::ExecMode mode =
                        interp::ExecMode::Fidelity);

    /** Pipelined receive half: next RESULT in completion order. */
    std::optional<ResultMsg> recvResult(int timeoutMs = -1,
                                        std::string *error = nullptr);

    /** Fetch the server's aggregated metrics JSON. */
    std::optional<std::string> stats(int timeoutMs = -1,
                                     std::string *error = nullptr);

    /** Fetch the server's psitrace spans as Chrome trace JSON. */
    std::optional<std::string>
    traceJson(int timeoutMs = -1, std::string *error = nullptr);

    /** Fetch the server's metrics as Prometheus text exposition. */
    std::optional<std::string>
    metricsText(int timeoutMs = -1, std::string *error = nullptr);

    /** Ask the server to drain; true once DRAIN_ACK arrives. */
    bool drain(int timeoutMs = -1, std::string *error = nullptr);

  private:
    bool sendAll(const std::string &bytes, std::string *error);
    std::optional<Message> recvMessage(int timeoutMs,
                                       std::string *error);
    /** One SUBMIT, one matching RESULT, no retries. */
    std::optional<ResultMsg>
    submitOnce(const std::string &workload, std::uint64_t deadlineNs,
               int timeoutMs, std::string *error,
               const std::string &tenant = std::string(),
               interp::ExecMode mode = interp::ExecMode::Fidelity);
    /** The resilient submit loop, parameterized by @p policy. */
    std::optional<ResultMsg>
    submitWithRetry(const std::string &workload,
                    const RetryPolicy &policy,
                    std::uint64_t deadlineNs, int timeoutMs,
                    std::string *error,
                    const std::string &tenant = std::string(),
                    interp::ExecMode mode =
                        interp::ExecMode::Fidelity);
    /** One dial, no retry loop. */
    bool connectOnce(const std::string &host, std::uint16_t port,
                     std::string *error);
    /** Jittered sleep of at most @p capNs; returns ns slept. */
    std::uint64_t backoffSleep(Backoff &backoff,
                               std::uint64_t capNs);

    RetryPolicy _policy;
    RetryStats _retryStats;
    /** Last connect() target, for submitRetry() reconnects. */
    std::string _host;
    std::uint16_t _port = 0;

    std::atomic<int> _fd{-1};
    /** Set by the sender half on a send failure; the receiver (or a
     *  single-threaded owner) sees EOF and performs the close(). */
    std::atomic<bool> _sendFailed{false};
    std::string _rbuf;
    std::uint64_t _nextTag = 1;
    /** RESULTs that arrived while a control reply (STATS_REPLY,
     *  DRAIN_ACK) or another tag was awaited; recvResult() serves
     *  these before reading the socket, so pipelined results are
     *  never dropped. */
    std::deque<ResultMsg> _pending;
};

} // namespace net
} // namespace psi

#endif // PSI_NET_CLIENT_HPP
