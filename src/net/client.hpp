/**
 * @file
 * PsiClient: blocking client library for the psinet wire protocol.
 *
 * One instance owns one TCP connection.  Two usage models:
 *
 *  - Request/response: submit() sends a SUBMIT and blocks until the
 *    matching RESULT arrives; stats() and drain() likewise.
 *
 *  - Pipelined: sendSubmit() queues requests without waiting and
 *    recvResult() collects RESULTs as they complete (completion
 *    order, not submission order - correlate by tag).  One sender
 *    thread and one receiver thread may use the same client
 *    concurrently; that split is exactly what the open-loop load
 *    generator (bench/net_throughput) does.
 *
 * Every receive path takes a timeout in milliseconds (-1 = wait
 * forever); on timeout the call fails without consuming a partial
 * frame, so the connection stays usable.
 */

#ifndef PSI_NET_CLIENT_HPP
#define PSI_NET_CLIENT_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "net/wire.hpp"

namespace psi {
namespace net {

/** Blocking connection to a PsiServer. */
class PsiClient
{
  public:
    PsiClient() = default;
    ~PsiClient();

    PsiClient(const PsiClient &) = delete;
    PsiClient &operator=(const PsiClient &) = delete;

    /** Connect to @p host : @p port (IPv4 dotted quad or name). */
    bool connect(const std::string &host, std::uint16_t port,
                 std::string *error = nullptr);

    /**
     * Tear down the connection and clear buffered state.  Not safe
     * concurrently with the receiver half: only the receiving thread
     * (or a single-threaded owner) may call it.  The sender half
     * never closes - on a send failure it shuts the socket down and
     * lets the receiver observe EOF and do the teardown.
     */
    void close();
    bool connected() const
    {
        return _fd.load(std::memory_order_acquire) >= 0 &&
               !_sendFailed.load(std::memory_order_acquire);
    }

    /**
     * Submit @p workload and wait for its RESULT.
     * @param deadlineNs per-request engine budget; 0 = none.
     * @param timeoutMs  client-side wait bound; -1 = forever.
     */
    std::optional<ResultMsg>
    submit(const std::string &workload, std::uint64_t deadlineNs = 0,
           int timeoutMs = -1, std::string *error = nullptr);

    /**
     * Pipelined send half: queue one SUBMIT and return immediately.
     * @param tagOut receives the correlation tag of this request.
     */
    bool sendSubmit(const std::string &workload,
                    std::uint64_t deadlineNs = 0,
                    std::uint64_t *tagOut = nullptr,
                    std::string *error = nullptr);

    /** Pipelined receive half: next RESULT in completion order. */
    std::optional<ResultMsg> recvResult(int timeoutMs = -1,
                                        std::string *error = nullptr);

    /** Fetch the server's aggregated metrics JSON. */
    std::optional<std::string> stats(int timeoutMs = -1,
                                     std::string *error = nullptr);

    /** Ask the server to drain; true once DRAIN_ACK arrives. */
    bool drain(int timeoutMs = -1, std::string *error = nullptr);

  private:
    bool sendAll(const std::string &bytes, std::string *error);
    std::optional<Message> recvMessage(int timeoutMs,
                                       std::string *error);

    std::atomic<int> _fd{-1};
    /** Set by the sender half on a send failure; the receiver (or a
     *  single-threaded owner) sees EOF and performs the close(). */
    std::atomic<bool> _sendFailed{false};
    std::string _rbuf;
    std::uint64_t _nextTag = 1;
    /** RESULTs that arrived while a control reply (STATS_REPLY,
     *  DRAIN_ACK) or another tag was awaited; recvResult() serves
     *  these before reading the socket, so pipelined results are
     *  never dropped. */
    std::deque<ResultMsg> _pending;
};

} // namespace net
} // namespace psi

#endif // PSI_NET_CLIENT_HPP
