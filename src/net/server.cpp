#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "base/logging.hpp"
#include "base/trace.hpp"
#include "programs/registry.hpp"

namespace psi {
namespace net {

namespace {

/** Target of the SIGINT/SIGTERM drain handler. */
std::atomic<PsiServer *> g_signalServer{nullptr};

extern "C" void
drainSignalHandler(int)
{
    if (PsiServer *server = g_signalServer.load())
        server->requestDrain();
}

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

std::uint64_t
nsSince(std::chrono::steady_clock::time_point from)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - from)
            .count());
}

} // namespace

PsiServer::PsiServer() : PsiServer(Config()) {}

PsiServer::PsiServer(const Config &config)
    : _config(config),
      // A server-owned ProgramCache shared by every pool worker:
      // each distinct workload source is compiled once for the
      // lifetime of the server, and its hit/miss counters ride the
      // STATS reply with the rest of the metrics snapshot.
      _pool(service::EnginePool::Config{
          config.workers, config.queueCapacity,
          std::make_shared<service::ProgramCache>(),
          config.scheduler, config.sched}),
      _started(std::chrono::steady_clock::now())
{}

PsiServer::~PsiServer()
{
    if (g_signalServer.load() == this)
        g_signalServer.store(nullptr);
    // Drain the pool while the completion queue, its mutex and the
    // wake pipe are still alive: in-flight done-callbacks lock
    // _completionMutex and write to _wakeWrite, so letting member
    // destruction (reverse declaration order) reach them first
    // would hand the callbacks destroyed state.  Idempotent when
    // run() already shut the pool down.
    _pool.shutdown();
    for (auto &entry : _conns)
        closeFd(entry.second.fd);
    closeFd(_listenFd);
    closeFd(_wakeRead);
    closeFd(_wakeWrite);
}

bool
PsiServer::start(std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what + ": " + std::strerror(errno);
        closeFd(_listenFd);
        closeFd(_wakeRead);
        closeFd(_wakeWrite);
        return false;
    };

    int pipefds[2];
    if (::pipe(pipefds) != 0)
        return fail("pipe");
    _wakeRead = pipefds[0];
    _wakeWrite = pipefds[1];
    if (!setNonBlocking(_wakeRead) || !setNonBlocking(_wakeWrite))
        return fail("fcntl(wake pipe)");

    _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_listenFd < 0)
        return fail("socket");
    int one = 1;
    ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    if (_config.reusePort &&
        ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) != 0)
        return fail("setsockopt(SO_REUSEPORT)");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(_config.port);
    if (::inet_pton(AF_INET, _config.bindAddr.c_str(),
                    &addr.sin_addr) != 1) {
        if (error)
            *error = "bad bind address '" + _config.bindAddr + "'";
        closeFd(_listenFd);
        closeFd(_wakeRead);
        closeFd(_wakeWrite);
        return false;
    }
    if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind " + _config.bindAddr + ":" +
                    std::to_string(_config.port));
    if (::listen(_listenFd, 128) != 0)
        return fail("listen");
    if (!setNonBlocking(_listenFd))
        return fail("fcntl(listener)");

    socklen_t len = sizeof(addr);
    if (::getsockname(_listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("getsockname");
    _port = ntohs(addr.sin_port);
    return true;
}

void
PsiServer::requestDrain()
{
    _drain.store(true, std::memory_order_release);
    // Wake the poll loop; write(2) is async-signal-safe and the pipe
    // is non-blocking, so this is safe inside a signal handler.
    if (_wakeWrite >= 0) {
        char byte = 'd';
        [[maybe_unused]] ssize_t n = ::write(_wakeWrite, &byte, 1);
    }
}

void
PsiServer::installSignalHandlers()
{
    g_signalServer.store(this);
    struct sigaction sa{};
    sa.sa_handler = drainSignalHandler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

void
PsiServer::run()
{
    PSI_ASSERT(_listenFd >= 0, "PsiServer::run() before start()");
    while (!drainComplete())
        pollOnce();

    // A drain can win the race before the first poll ever runs, so
    // the listener may still be open here with connections parked in
    // its accept queue.  Close it: the kernel resets the parked
    // connections, turning a silent forever-hang into a clean
    // retryable error on the client side.
    closeFd(_listenFd);
    for (auto &entry : _conns)
        closeFd(entry.second.fd);
    _conns.clear();
    _pool.shutdown();
}

bool
PsiServer::drainComplete() const
{
    if (!_drain.load(std::memory_order_acquire))
        return false;
    if (_inFlight != 0)
        return false;
    {
        std::lock_guard<std::mutex> lock(_completionMutex);
        if (!_completions.empty())
            return false;
    }
    for (const auto &entry : _conns) {
        const Conn &conn = entry.second;
        if (conn.woff < conn.wbuf.size())
            return false;
    }
    return true;
}

void
PsiServer::pollOnce()
{
    bool draining = _drain.load(std::memory_order_acquire);
    if (draining)
        closeFd(_listenFd); // stop accepting; run() owns the exit

    std::vector<pollfd> fds;
    fds.reserve(_conns.size() + 2);
    fds.push_back({_wakeRead, POLLIN, 0});
    std::size_t listenerSlot = 0;
    if (!draining && _listenFd >= 0) {
        listenerSlot = fds.size();
        fds.push_back({_listenFd, POLLIN, 0});
    }

    std::vector<std::uint64_t> order;
    order.reserve(_conns.size());
    for (auto &entry : _conns) {
        Conn &conn = entry.second;
        short events = POLLIN;
        if (conn.woff < conn.wbuf.size())
            events |= POLLOUT;
        fds.push_back({conn.fd, events, 0});
        order.push_back(conn.id);
    }

    int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
        if (errno == EINTR)
            return;
        panic("poll failed: ", std::strerror(errno));
    }

    // Data reported readable below was already pending at this
    // instant, so the first decode span of each connection's batch
    // starts here - the wait while the loop serves earlier
    // connections (head-of-line blocking) is attributed, not lost.
    const std::uint64_t pollWakeNs =
        trace::enabled() ? trace::nowNs() : 0;

    if (fds[0].revents & POLLIN)
        drainWakePipe();
    if (!draining && _listenFd >= 0 &&
        (fds[listenerSlot].revents & POLLIN))
        acceptConnections();

    std::size_t base = fds.size() - order.size();
    for (std::size_t i = 0; i < order.size(); ++i) {
        auto it = _conns.find(order[i]);
        if (it == _conns.end())
            continue;
        Conn &conn = it->second;
        short revents = fds[base + i].revents;
        bool ok = true;
        if (revents & (POLLERR | POLLHUP | POLLNVAL))
            ok = (revents & POLLIN) != 0; // drain final bytes first
        if (ok && (revents & POLLIN))
            ok = handleReadable(conn, pollWakeNs);
        if (ok && (revents & POLLOUT))
            ok = flushWrites(conn);
        if (!ok)
            _closing.push_back(conn.id);
    }

    processCompletions();

    for (std::uint64_t id : _closing)
        closeConn(id);
    _closing.clear();
}

void
PsiServer::acceptConnections()
{
    for (;;) {
        const bool tracing = trace::enabled();
        std::uint64_t t0 = tracing ? trace::nowNs() : 0;
        int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                return;
            warn("psinet: accept failed: ", std::strerror(errno));
            return;
        }
        if (!setNonBlocking(fd)) {
            ::close(fd);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        Conn conn;
        conn.fd = fd;
        conn.id = _nextConnId++;
        _conns.emplace(conn.id, std::move(conn));
        _connsAccepted.fetch_add(1, std::memory_order_relaxed);
        // Connection accepts are not tied to a request yet; tag 0
        // marks them as connection-scoped events in the trace.
        if (tracing)
            trace::record(trace::Stage::Accept, 0, t0,
                          trace::nowNs());
    }
}

bool
PsiServer::handleReadable(Conn &conn, std::uint64_t pollWakeNs)
{
    char chunk[64 * 1024];
    for (;;) {
        ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            conn.rbuf.append(chunk, static_cast<std::size_t>(n));
            if (n < static_cast<ssize_t>(sizeof(chunk)))
                break;
            continue;
        }
        if (n == 0)
            return false; // peer closed
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        return false;
    }

    std::string payload;
    bool firstFrame = true;
    for (;;) {
        std::uint64_t decodeStartNs = 0;
        if (trace::enabled()) {
            decodeStartNs = firstFrame && pollWakeNs != 0
                                ? pollWakeNs
                                : trace::nowNs();
        }
        firstFrame = false;
        switch (extractFrame(conn.rbuf, payload)) {
          case FrameResult::NeedMore:
            return true;
          case FrameResult::Bad:
            warn("psinet: dropping connection ", conn.id,
                 " (oversized or empty frame)");
            _badFrames.fetch_add(1, std::memory_order_relaxed);
            _connsDropped.fetch_add(1, std::memory_order_relaxed);
            return false;
          case FrameResult::Frame:
            break;
        }
        std::string derror;
        std::optional<Message> msg = decode(payload, &derror);
        if (!msg) {
            warn("psinet: dropping connection ", conn.id, " (",
                 derror, ")");
            _decodeErrors.fetch_add(1, std::memory_order_relaxed);
            _connsDropped.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        if (!handleMessage(conn, std::move(*msg), decodeStartNs))
            return false;
    }
}

bool
PsiServer::handleMessage(Conn &conn, Message &&msg,
                         std::uint64_t decodeStartNs)
{
    if (auto *submit = std::get_if<SubmitMsg>(&msg)) {
        handleSubmit(conn, std::move(*submit), decodeStartNs);
        return true;
    }
    if (auto *hello = std::get_if<HelloMsg>(&msg)) {
        // v1 peers (which never send HELLO) stay wire-compatible, so
        // a v1 HELLO is accepted too; only unknown majors are
        // refused.  Minor versions and unknown feature bits never
        // cause rejection - the reply advertises the intersection.
        if (hello->versionMajor == 1 ||
            hello->versionMajor == kProtocolMajor) {
            HelloAckMsg ack;
            ack.versionMajor = kProtocolMajor;
            ack.versionMinor = kProtocolMinor;
            ack.features = hello->features & kSupportedFeatures;
            queueReply(conn, Message(std::move(ack)));
            return flushWrites(conn);
        }
        warn("psinet: rejecting connection ", conn.id,
             " (unsupported protocol major ", hello->versionMajor,
             ")");
        ErrorMsg err;
        err.code = kErrUnsupportedVersion;
        err.message =
            "unsupported protocol major " +
            std::to_string(hello->versionMajor) +
            "; server speaks " + std::to_string(kProtocolMajor) +
            " (and accepts 1)";
        queueReply(conn, Message(std::move(err)));
        flushWrites(conn);
        _versionRejects.fetch_add(1, std::memory_order_relaxed);
        _connsDropped.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (std::get_if<StatsMsg>(&msg) != nullptr) {
        StatsReplyMsg reply;
        reply.json = metrics().json(nsSince(_started));
        queueReply(conn, Message(std::move(reply)));
        return flushWrites(conn);
    }
    if (std::get_if<TraceMsg>(&msg) != nullptr) {
        TraceReplyMsg reply;
        reply.json = trace::chromeJson(trace::collect());
        queueReply(conn, Message(std::move(reply)));
        return flushWrites(conn);
    }
    if (std::get_if<MetricsMsg>(&msg) != nullptr) {
        MetricsReplyMsg reply;
        reply.text = metrics().prometheus(nsSince(_started));
        queueReply(conn, Message(std::move(reply)));
        return flushWrites(conn);
    }
    if (std::get_if<DrainMsg>(&msg) != nullptr) {
        // Flag first, ack second: a client that has seen DRAIN_ACK
        // must be able to observe draining() == true.
        requestDrain();
        queueReply(conn, Message(DrainAckMsg{}));
        return flushWrites(conn);
    }
    // RESULT / STATS_REPLY / DRAIN_ACK / HELLO_ACK / ERROR /
    // TRACE_REPLY / METRICS_REPLY are server-to-client only.
    warn("psinet: dropping connection ", conn.id,
         " (unexpected client message type ",
         static_cast<int>(messageType(msg)), ")");
    _decodeErrors.fetch_add(1, std::memory_order_relaxed);
    _connsDropped.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
PsiServer::handleSubmit(Conn &conn, SubmitMsg &&msg,
                        std::uint64_t decodeStartNs)
{
    auto refuse = [&](WireStatus status, std::string why) {
        ResultMsg reply;
        reply.tag = msg.tag;
        reply.status = status;
        reply.error = std::move(why);
        queueReply(conn, Message(std::move(reply)));
        flushWrites(conn);
    };

    if (_drain.load(std::memory_order_acquire)) {
        refuse(WireStatus::Draining, "server is draining");
        return;
    }

    const programs::BenchProgram *program =
        programs::findProgramById(msg.workload);
    if (program == nullptr) {
        refuse(WireStatus::UnknownWorkload,
               "unknown workload '" + msg.workload +
                   "'; available: " + programs::programIdList());
        return;
    }

    service::QueryJob job;
    job.program = *program;
    job.limits.deadlineNs = msg.deadlineNs;
    // v1 clients (hasTenant == false) carry an empty tenant and land
    // in the scheduler's shared default tenant.
    job.tenant = msg.tenant;
    // Pre-v2.2 clients (hasMode == false) run in fidelity mode.
    job.mode = msg.mode;
    if (trace::enabled()) {
        // The server-side tag is minted here and echoed back in the
        // RESULT so the client can stitch its own spans onto the
        // same request timeline.
        job.traceTag = trace::nextTag();
        trace::record(trace::Stage::Decode, job.traceTag,
                      decodeStartNs, trace::nowNs());
    }

    std::uint64_t connId = conn.id;
    std::uint64_t tag = msg.tag;
    auto done = [this, connId, tag](service::JobOutcome outcome) {
        const std::uint64_t enqueueNs =
            trace::enabled() && outcome.traceTag != 0
                ? trace::nowNs()
                : 0;
        {
            std::lock_guard<std::mutex> lock(_completionMutex);
            _completions.push_back(
                {connId, resultFromOutcome(tag, std::move(outcome)),
                 enqueueNs});
        }
        char byte = 'c';
        [[maybe_unused]] ssize_t n = ::write(_wakeWrite, &byte, 1);
    };

    std::optional<service::SubmitError> refused =
        _pool.submitAsync(std::move(job), std::move(done),
                          _config.submitMode);
    if (!refused) {
        ++_inFlight;
        return;
    }
    switch (*refused) {
      case service::SubmitError::QueueFull:
        refuse(WireStatus::Overloaded,
               "queue full (" +
                   std::to_string(_pool.queueCapacity()) +
                   " jobs); retry later");
        break;
      case service::SubmitError::TenantQuota:
        refuse(WireStatus::Overloaded,
               "tenant over queue quota; retry later");
        break;
      case service::SubmitError::ShutDown:
        refuse(WireStatus::Draining, "server is draining");
        break;
    }
}

void
PsiServer::queueReply(Conn &conn, const Message &msg)
{
    conn.wbuf.append(encode(msg));
    if (conn.wbuf.size() - conn.woff > _config.maxWriteBuffer) {
        warn("psinet: dropping slow consumer connection ", conn.id);
        _connsDropped.fetch_add(1, std::memory_order_relaxed);
        _closing.push_back(conn.id);
    }
}

bool
PsiServer::flushWrites(Conn &conn)
{
    while (conn.woff < conn.wbuf.size()) {
        ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                           conn.wbuf.size() - conn.woff,
                           MSG_NOSIGNAL);
        if (n > 0) {
            conn.woff += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        return false;
    }
    if (conn.woff == conn.wbuf.size()) {
        conn.wbuf.clear();
        conn.woff = 0;
    } else if (conn.woff > (1u << 20)) {
        conn.wbuf.erase(0, conn.woff);
        conn.woff = 0;
    }
    return true;
}

void
PsiServer::closeConn(std::uint64_t id)
{
    auto it = _conns.find(id);
    if (it == _conns.end())
        return;
    closeFd(it->second.fd);
    _conns.erase(it);
}

void
PsiServer::drainWakePipe()
{
    char buf[256];
    while (::read(_wakeRead, buf, sizeof(buf)) > 0) {
    }
}

void
PsiServer::processCompletions()
{
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(_completionMutex);
        batch.swap(_completions);
    }
    for (auto &completion : batch) {
        PSI_ASSERT(_inFlight > 0, "completion without in-flight job");
        --_inFlight;
        auto it = _conns.find(completion.connId);
        if (it == _conns.end())
            continue; // client went away; drop the reply
        const std::uint64_t traceTag = completion.msg.traceTag;
        const bool tracing = trace::enabled() && traceTag != 0;
        // Encode starts at the worker's hand-off, so the completion
        // queue + wake latency shows up in the timeline.
        std::uint64_t t0 = tracing ? (completion.enqueueNs != 0
                                          ? completion.enqueueNs
                                          : trace::nowNs())
                                   : 0;
        queueReply(it->second, Message(std::move(completion.msg)));
        std::uint64_t t1 = tracing ? trace::nowNs() : 0;
        if (tracing)
            trace::record(trace::Stage::Encode, traceTag, t0, t1);
        bool ok = flushWrites(it->second);
        if (tracing)
            trace::record(trace::Stage::Reply, traceTag, t1,
                          trace::nowNs());
        if (!ok)
            _closing.push_back(completion.connId);
    }
}

} // namespace net
} // namespace psi
