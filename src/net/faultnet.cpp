#include "net/faultnet.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "base/logging.hpp"
#include "base/strutil.hpp"

namespace psi {
namespace net {

namespace {

using clock_type = std::chrono::steady_clock;

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool
parseProb(const std::string &value, double *out)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || v < 0.0 || v > 1.0)
        return false;
    *out = v;
    return true;
}

bool
parseU64Field(const std::string &value, std::uint64_t *out)
{
    if (value.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    *out = v;
    return true;
}

} // namespace

// ---------------------------------------------------------------------
// FaultSchedule
// ---------------------------------------------------------------------

std::optional<FaultSchedule>
FaultSchedule::parse(const std::string &spec, std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return std::nullopt;
    };

    FaultSchedule schedule;
    for (const std::string &field : strutil::split(spec, ',')) {
        std::string part = strutil::trim(field);
        if (part.empty())
            continue;
        std::size_t eq = part.find('=');
        if (eq == std::string::npos)
            return fail("fault schedule: '" + part +
                        "' is not key=value");
        std::string key = part.substr(0, eq);
        std::string value = part.substr(eq + 1);

        if (key == "seed") {
            if (!parseU64Field(value, &schedule.seed))
                return fail("fault schedule: bad seed '" + value +
                            "'");
        } else if (key == "split") {
            if (!parseProb(value, &schedule.splitProb))
                return fail("fault schedule: split wants a "
                            "probability in [0,1], got '" +
                            value + "'");
        } else if (key == "coalesce") {
            if (!parseProb(value, &schedule.coalesceProb))
                return fail("fault schedule: coalesce wants a "
                            "probability in [0,1], got '" +
                            value + "'");
        } else if (key == "delay_us") {
            std::size_t dots = value.find("..");
            std::string lo = dots == std::string::npos
                                 ? value
                                 : value.substr(0, dots);
            std::string hi = dots == std::string::npos
                                 ? value
                                 : value.substr(dots + 2);
            if (!parseU64Field(lo, &schedule.delayMinUs) ||
                !parseU64Field(hi, &schedule.delayMaxUs) ||
                schedule.delayMaxUs < schedule.delayMinUs)
                return fail("fault schedule: delay_us wants "
                            "N or A..B with A <= B, got '" +
                            value + "'");
        } else if (key == "reset_after") {
            if (!parseU64Field(value, &schedule.resetAfterBytes) ||
                schedule.resetAfterBytes == 0)
                return fail("fault schedule: reset_after wants a "
                            "positive byte count, got '" +
                            value + "'");
        } else {
            return fail("fault schedule: unknown key '" + key +
                        "' (known: seed, split, coalesce, "
                        "delay_us, reset_after)");
        }
    }
    return schedule;
}

std::string
FaultSchedule::str() const
{
    std::ostringstream os;
    os << "seed=" << seed;
    if (splitProb > 0)
        os << ",split=" << splitProb;
    if (coalesceProb > 0)
        os << ",coalesce=" << coalesceProb;
    if (delayMaxUs > 0)
        os << ",delay_us=" << delayMinUs << ".." << delayMaxUs;
    if (resetAfterBytes > 0)
        os << ",reset_after=" << resetAfterBytes;
    return os.str();
}

// ---------------------------------------------------------------------
// FaultProxy
// ---------------------------------------------------------------------

FaultProxy::FaultProxy(std::string upstreamHost,
                       std::uint16_t upstreamPort,
                       FaultSchedule schedule)
    : _upstreamHost(std::move(upstreamHost)),
      _upstreamPort(upstreamPort),
      _schedule(schedule),
      _rng(schedule.seed)
{}

FaultProxy::~FaultProxy()
{
    stop();
}

bool
FaultProxy::start(std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what + ": " + std::strerror(errno);
        closeFd(_listenFd);
        closeFd(_wakeRead);
        closeFd(_wakeWrite);
        return false;
    };

    int pipefds[2];
    if (::pipe(pipefds) != 0)
        return fail("faultnet: pipe");
    _wakeRead = pipefds[0];
    _wakeWrite = pipefds[1];
    if (!setNonBlocking(_wakeRead) || !setNonBlocking(_wakeWrite))
        return fail("faultnet: fcntl(wake pipe)");

    _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_listenFd < 0)
        return fail("faultnet: socket");
    int one = 1;
    ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0; // ephemeral
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("faultnet: bind");
    if (::listen(_listenFd, 64) != 0)
        return fail("faultnet: listen");
    if (!setNonBlocking(_listenFd))
        return fail("faultnet: fcntl(listener)");

    socklen_t len = sizeof(addr);
    if (::getsockname(_listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("faultnet: getsockname");
    _port = ntohs(addr.sin_port);

    _stop.store(false, std::memory_order_release);
    _thread = std::thread([this] { relayMain(); });
    return true;
}

void
FaultProxy::setUpstream(std::uint16_t upstreamPort)
{
    _upstreamPort.store(upstreamPort, std::memory_order_release);
}

void
FaultProxy::stop()
{
    if (!_thread.joinable())
        return;
    _stop.store(true, std::memory_order_release);
    char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(_wakeWrite, &byte, 1);
    _thread.join();
    for (auto &entry : _pairs) {
        closeFd(entry.second.client.fd);
        closeFd(entry.second.upstream.fd);
    }
    _pairs.clear();
    closeFd(_listenFd);
    closeFd(_wakeRead);
    closeFd(_wakeWrite);
}

FaultStats
FaultProxy::stats() const
{
    std::lock_guard<std::mutex> lock(_statsMutex);
    return _stats;
}

void
FaultProxy::hardClose(int fd)
{
    if (fd < 0)
        return;
    // SO_LINGER with zero timeout turns close() into an RST: the
    // peer observes ECONNRESET, not an orderly FIN.
    linger lg{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd);
}

void
FaultProxy::acceptOne()
{
    for (;;) {
        int cfd = ::accept(_listenFd, nullptr, nullptr);
        if (cfd < 0)
            return;
        setNoDelay(cfd);

        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(
            _upstreamPort.load(std::memory_order_acquire)));
        ::inet_pton(AF_INET, _upstreamHost.c_str(), &addr.sin_addr);
        int ufd = ::socket(AF_INET, SOCK_STREAM, 0);
        bool dialed =
            ufd >= 0 &&
            ::connect(ufd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0;
        {
            std::lock_guard<std::mutex> lock(_statsMutex);
            ++_stats.connections;
            if (!dialed)
                ++_stats.upstreamFailed;
        }
        if (!dialed) {
            // No server behind the proxy: the client sees an
            // immediate close, which its retry policy treats as a
            // transient connection failure.
            if (ufd >= 0)
                ::close(ufd);
            ::close(cfd);
            continue;
        }
        setNoDelay(ufd);
        if (!setNonBlocking(cfd) || !setNonBlocking(ufd)) {
            ::close(cfd);
            ::close(ufd);
            continue;
        }

        Pair pair;
        pair.client.fd = cfd;
        pair.upstream.fd = ufd;
        _pairs.emplace(_nextPairId++, std::move(pair));
    }
}

/**
 * Mutate @p chunk per the schedule and append it to @p to's delivery
 * queue as one or more timed segments.
 */
void
FaultProxy::scheduleChunk(Leg &to, std::string chunk)
{
    auto now = clock_type::now();
    auto delay = [&]() {
        return std::chrono::microseconds(_rng.range(
            _schedule.delayMinUs, _schedule.delayMaxUs));
    };

    {
        std::lock_guard<std::mutex> lock(_statsMutex);
        _stats.bytesForwarded += chunk.size();
    }
    _sinceReset += chunk.size();

    bool delayed = _schedule.delayMaxUs > 0;
    if (delayed) {
        std::lock_guard<std::mutex> lock(_statsMutex);
        ++_stats.delays;
    }

    // Coalesce: glue onto the last not-yet-released segment so this
    // chunk and its neighbor arrive in one recv() at the far side.
    if (_schedule.coalesceProb > 0 &&
        _rng.unit() < _schedule.coalesceProb && !to.out.empty() &&
        to.out.back().releaseAt > now) {
        to.out.back().bytes.append(chunk);
        std::lock_guard<std::mutex> lock(_statsMutex);
        ++_stats.coalesces;
        return;
    }

    // Split: chop into a few pieces released a hair apart, so the
    // far side reassembles the frame across many tiny recv()s.
    if (_schedule.splitProb > 0 && chunk.size() > 1 &&
        _rng.unit() < _schedule.splitProb) {
        std::uint64_t pieces =
            _rng.range(2, chunk.size() < 8 ? chunk.size() : 8);
        auto releaseAt = now + delay();
        std::size_t off = 0;
        for (std::uint64_t p = 0; p < pieces && off < chunk.size();
             ++p) {
            std::size_t rest = chunk.size() - off;
            std::size_t take =
                p + 1 == pieces
                    ? rest
                    : static_cast<std::size_t>(_rng.range(
                          1, rest - (pieces - 1 - p)));
            Leg::Segment seg;
            seg.bytes = chunk.substr(off, take);
            seg.releaseAt = releaseAt;
            releaseAt += std::chrono::microseconds(
                _rng.range(50, 300));
            to.out.push_back(std::move(seg));
            off += take;
        }
        std::lock_guard<std::mutex> lock(_statsMutex);
        ++_stats.splits;
        return;
    }

    Leg::Segment seg;
    seg.bytes = std::move(chunk);
    seg.releaseAt = delayed ? now + delay() : now;
    to.out.push_back(std::move(seg));
}

/** Read whatever @p from's socket has and schedule it toward @p to.
 *  @return false when the pair should start closing. */
bool
FaultProxy::pump(Leg &from, Leg &to)
{
    char chunk[64 * 1024];
    for (;;) {
        ssize_t n = ::recv(from.fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            scheduleChunk(to, std::string(
                                  chunk, static_cast<std::size_t>(n)));
            if (n < static_cast<ssize_t>(sizeof(chunk)))
                return true;
            continue;
        }
        if (n == 0) {
            from.eof = true;
            return false;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        from.eof = true;
        return false;
    }
}

/** Deliver released segments. @return false on a dead socket. */
bool
FaultProxy::flushLeg(Leg &leg)
{
    auto now = clock_type::now();
    while (!leg.out.empty()) {
        Leg::Segment &seg = leg.out.front();
        if (seg.releaseAt > now)
            return true; // not yet due
        while (seg.off < seg.bytes.size()) {
            ssize_t n = ::send(leg.fd, seg.bytes.data() + seg.off,
                               seg.bytes.size() - seg.off,
                               MSG_NOSIGNAL);
            if (n > 0) {
                seg.off += static_cast<std::size_t>(n);
                continue;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true;
            if (errno == EINTR)
                continue;
            return false;
        }
        leg.out.pop_front();
    }
    return true;
}

/** Truncate whatever is in flight and hard-reset both sockets. */
void
FaultProxy::injectReset(Pair &pair)
{
    std::uint64_t dropped = 0;
    for (Leg *leg : {&pair.client, &pair.upstream}) {
        for (const Leg::Segment &seg : leg->out) {
            // Deliver a random prefix of the first pending segment
            // so the victim sees a frame cut off mid-body, then
            // nothing but the reset.
            if (&seg == &leg->out.front() && seg.off == 0 &&
                !seg.bytes.empty()) {
                std::size_t keep = static_cast<std::size_t>(
                    _rng.below(seg.bytes.size()));
                if (keep > 0)
                    [[maybe_unused]] ssize_t n =
                        ::send(leg->fd, seg.bytes.data(), keep,
                               MSG_NOSIGNAL);
                dropped += seg.bytes.size() - keep;
            } else {
                dropped += seg.bytes.size() - seg.off;
            }
        }
        leg->out.clear();
    }
    hardClose(pair.client.fd);
    hardClose(pair.upstream.fd);
    pair.client.fd = -1;
    pair.upstream.fd = -1;
    {
        std::lock_guard<std::mutex> lock(_statsMutex);
        ++_stats.resets;
        _stats.truncatedBytes += dropped;
    }
    _sinceReset = 0;
}

void
FaultProxy::relayMain()
{
    while (!_stop.load(std::memory_order_acquire)) {
        std::vector<pollfd> fds;
        std::vector<std::pair<std::uint64_t, bool>> slots; // id, isClient
        fds.push_back({_wakeRead, POLLIN, 0});
        fds.push_back({_listenFd, POLLIN, 0});

        auto now = clock_type::now();
        int timeoutMs = 100; // re-check stop / releases regardless
        auto due = [&](const Leg &leg) {
            if (leg.out.empty())
                return;
            auto waitMs =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    leg.out.front().releaseAt - now)
                    .count();
            int w = waitMs <= 0 ? 0 : static_cast<int>(waitMs) + 1;
            if (w < timeoutMs)
                timeoutMs = w;
        };

        for (auto &entry : _pairs) {
            Pair &pair = entry.second;
            for (bool isClient : {true, false}) {
                Leg &leg = isClient ? pair.client : pair.upstream;
                short events = 0;
                if (!leg.eof && !pair.closing)
                    events |= POLLIN;
                if (!leg.out.empty() &&
                    leg.out.front().releaseAt <= now)
                    events |= POLLOUT;
                due(leg);
                fds.push_back({leg.fd, events, 0});
                slots.push_back({entry.first, isClient});
            }
        }

        int ready = ::poll(fds.data(), fds.size(), timeoutMs);
        if (ready < 0 && errno != EINTR)
            break;

        if (fds[0].revents & POLLIN) {
            char buf[64];
            while (::read(_wakeRead, buf, sizeof(buf)) > 0) {
            }
        }
        if (fds[1].revents & POLLIN)
            acceptOne();

        now = clock_type::now();
        std::vector<std::uint64_t> dead;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            auto it = _pairs.find(slots[i].first);
            if (it == _pairs.end())
                continue;
            Pair &pair = it->second;
            if (pair.client.fd < 0) {
                dead.push_back(it->first); // reset already fired
                continue;
            }
            Leg &leg = slots[i].second ? pair.client : pair.upstream;
            Leg &other = slots[i].second ? pair.upstream : pair.client;
            short revents = fds[i + 2].revents;

            if ((revents & POLLIN) && !pair.closing) {
                // Bytes read off this socket are delivered to the
                // *other* side of the pair.
                if (!pump(leg, other))
                    pair.closing = true;
            }
            if (revents & (POLLERR | POLLNVAL))
                pair.closing = true;
            if ((revents & POLLHUP) && !(revents & POLLIN))
                pair.closing = true;

            // A scheduled reset fires on the forwarded-byte budget.
            if (_schedule.resetAfterBytes > 0 &&
                _sinceReset >= _schedule.resetAfterBytes) {
                injectReset(pair);
                dead.push_back(it->first);
                continue;
            }

            if (pair.closing) {
                // Flush everything still pending without further
                // delay, then let the drain below close the pair.
                for (Leg *l : {&pair.client, &pair.upstream})
                    for (Leg::Segment &seg : l->out)
                        seg.releaseAt = now;
            }
            if (!flushLeg(leg) || !flushLeg(other))
                pair.closing = true;
            if (pair.closing && pair.client.out.empty() &&
                pair.upstream.out.empty())
                dead.push_back(it->first);
        }

        for (std::uint64_t id : dead) {
            auto it = _pairs.find(id);
            if (it == _pairs.end())
                continue;
            closeFd(it->second.client.fd);
            closeFd(it->second.upstream.fd);
            _pairs.erase(it);
        }
    }
}

} // namespace net
} // namespace psi
