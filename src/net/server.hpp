/**
 * @file
 * PsiServer: the psinet TCP front end over a service::EnginePool.
 *
 * Single-threaded poll(2) event loop plus the pool's worker threads:
 *
 *     client conns ──► poll loop ──► EnginePool (N workers)
 *        ▲   read state machine          │ completion callback
 *        │   (buffer -> frames)          ▼
 *        └── write state machine ◄── completion queue + wake pipe
 *            (frames -> buffer)
 *
 * Every socket is non-blocking.  Each connection owns a read buffer
 * that bytes accumulate into until extractFrame() cuts complete
 * frames off the front, and a write buffer that encoded replies
 * drain from whenever the socket is writable - the loop never
 * blocks on a peer.
 *
 * Backpressure is surfaced, not absorbed: a SUBMIT that meets a full
 * job queue in fail-fast mode gets an OVERLOADED reply immediately
 * instead of stalling the accept path (Submit::Block retains the
 * old behavior for single-tenant use).
 *
 * Graceful drain (SIGINT / SIGTERM / a DRAIN message /
 * requestDrain()): stop accepting connections, refuse new SUBMITs
 * with DRAINING, finish every accepted job, flush every reply, then
 * shut the pool down and return from run().
 *
 * Observability: a HELLO opener negotiates the protocol version
 * (unknown majors get a structured ERROR and a close; clients that
 * skip HELLO are treated as v1), TRACE returns the accumulated
 * psitrace spans as Chrome trace-event JSON, and METRICS returns the
 * metrics snapshot as Prometheus text.  When tracing is enabled the
 * loop itself records accept/decode/encode/reply spans under each
 * request's trace tag so a request's timeline stitches across the
 * loop and worker threads.
 */

#ifndef PSI_NET_SERVER_HPP
#define PSI_NET_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "service/engine_pool.hpp"

namespace psi {
namespace net {

/** Non-blocking TCP server exposing an EnginePool. */
class PsiServer
{
  public:
    struct Config
    {
        std::string bindAddr = "127.0.0.1";
        std::uint16_t port = 0;  ///< 0 = ephemeral (see port())
        unsigned workers = 4;
        std::size_t queueCapacity = 64;
        /** Full-queue policy: FailFast -> OVERLOADED replies. */
        service::Submit submitMode = service::Submit::FailFast;
        /** A connection buffering more reply bytes than this is a
         *  slow consumer and gets dropped. */
        std::size_t maxWriteBuffer = 8u << 20;
        /** Opt into SO_REUSEPORT on the listener so several server
         *  processes (or future multi-reactor routers) can share one
         *  port, kernel-balancing accepts between them. */
        bool reusePort = false;
        /** Pool dispatch policy (see sched/scheduler.hpp);
         *  Affinity is the production default. */
        sched::SchedKind scheduler = sched::SchedKind::Affinity;
        /** Fairness/affinity knobs; sched.capacity is ignored
         *  (queueCapacity is the global bound). */
        sched::SchedConfig sched = {};
    };

    PsiServer();
    explicit PsiServer(const Config &config);
    ~PsiServer();

    PsiServer(const PsiServer &) = delete;
    PsiServer &operator=(const PsiServer &) = delete;

    /**
     * Bind + listen (the pool is already running).
     * @return false with @p error set when the address is unusable.
     */
    bool start(std::string *error = nullptr);

    /** Actual listening port (after an ephemeral bind). */
    std::uint16_t port() const { return _port; }

    /** Event loop; returns after a drain completes. */
    void run();

    /**
     * Begin graceful drain.  Async-signal-safe: callable from a
     * SIGINT/SIGTERM handler (installSignalHandlers() does exactly
     * that) or from any thread.
     */
    void requestDrain();

    bool draining() const
    {
        return _drain.load(std::memory_order_acquire);
    }

    /** Route SIGINT and SIGTERM to this server's requestDrain(). */
    void installSignalHandlers();

    /** Pool metrics plus this server's wire-level counters. */
    service::MetricsSnapshot metrics() const
    {
        service::MetricsSnapshot snap = _pool.metrics();
        snap.netConnsAccepted =
            _connsAccepted.load(std::memory_order_relaxed);
        snap.netConnsDropped =
            _connsDropped.load(std::memory_order_relaxed);
        snap.netBadFrames =
            _badFrames.load(std::memory_order_relaxed);
        snap.netDecodeErrors =
            _decodeErrors.load(std::memory_order_relaxed);
        snap.netVersionRejects =
            _versionRejects.load(std::memory_order_relaxed);
        return snap;
    }

  private:
    struct Conn
    {
        int fd = -1;
        std::uint64_t id = 0;
        std::string rbuf;        ///< bytes read, not yet framed
        std::string wbuf;        ///< encoded replies, not yet sent
        std::size_t woff = 0;    ///< sent prefix of wbuf
    };

    struct Completion
    {
        std::uint64_t connId;
        ResultMsg msg;
        /** Trace clock at worker hand-off (0 = untraced).  The
         *  request's encode span starts here so the completion
         *  queue + wake-pipe latency is attributed, not lost. */
        std::uint64_t enqueueNs = 0;
    };

    void pollOnce();
    void acceptConnections();
    /** @p pollWakeNs: trace clock when poll() reported this conn
     *  readable (0 when tracing is off); the batch's first decode
     *  span starts there so head-of-line wait is attributed. */
    bool handleReadable(Conn &conn, std::uint64_t pollWakeNs);
    /** @p decodeStartNs: trace clock before this message's frame was
     *  cut + decoded (0 when tracing is off); becomes the request's
     *  decode span for SUBMITs. */
    bool handleMessage(Conn &conn, Message &&msg,
                       std::uint64_t decodeStartNs);
    void handleSubmit(Conn &conn, SubmitMsg &&msg,
                      std::uint64_t decodeStartNs);
    void queueReply(Conn &conn, const Message &msg);
    bool flushWrites(Conn &conn);
    void closeConn(std::uint64_t id);
    void drainWakePipe();
    void processCompletions();
    bool drainComplete() const;

    Config _config;
    service::EnginePool _pool;
    int _listenFd = -1;
    int _wakeRead = -1;
    int _wakeWrite = -1;
    std::uint16_t _port = 0;
    std::uint64_t _nextConnId = 1;
    std::map<std::uint64_t, Conn> _conns;
    std::vector<std::uint64_t> _closing;

    mutable std::mutex _completionMutex;
    std::vector<Completion> _completions;
    /** Jobs accepted by the pool whose RESULT is not yet queued. */
    std::size_t _inFlight = 0;

    std::atomic<bool> _drain{false};
    std::chrono::steady_clock::time_point _started;

    /** @name Wire-level counters (see metrics())
     *  Atomics only because metrics() may be read from another
     *  thread; the loop thread is the sole writer. */
    /// @{
    std::atomic<std::uint64_t> _connsAccepted{0};
    std::atomic<std::uint64_t> _connsDropped{0};  ///< server-initiated
    std::atomic<std::uint64_t> _badFrames{0};     ///< framing rejected
    std::atomic<std::uint64_t> _decodeErrors{0};  ///< body rejected
    std::atomic<std::uint64_t> _versionRejects{0};///< HELLO refused
    /// @}
};

} // namespace net
} // namespace psi

#endif // PSI_NET_SERVER_HPP
