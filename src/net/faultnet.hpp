/**
 * @file
 * faultnet: a deterministic, seedable fault-injection TCP proxy.
 *
 * FaultProxy sits between a PsiClient and a PsiServer on loopback
 * and mangles the byte stream according to a scripted FaultSchedule:
 *
 *     client ──TCP──► FaultProxy ──TCP──► PsiServer
 *                      │ split / coalesce / delay / truncate+reset
 *
 * Faults are applied at the byte level, below the framing layer, so
 * they exercise exactly the paths a hostile network does: frames
 * arriving one byte at a time, several frames coalesced into one
 * segment, replies cut off mid-body, and connections hard-reset
 * (RST, not FIN) in the middle of a pipelined batch.
 *
 * Determinism: every probabilistic choice draws from one SplitMix64
 * seeded by the schedule, so a chaos-test failure reproduces from
 * its spec string alone.  The same spec drives the chaos tests
 * (tests/test_net.cpp) and `net_throughput --fault-schedule`.
 *
 * The proxy runs one background thread (poll(2) over every leg);
 * setUpstream() re-points new connections at a different server
 * port, which is how the chaos suite survives a mid-batch server
 * kill-and-restart.
 */

#ifndef PSI_NET_FAULTNET_HPP
#define PSI_NET_FAULTNET_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "base/backoff.hpp"

namespace psi {
namespace net {

/**
 * One scripted fault schedule, parsed from a "key=value,..." spec:
 *
 *     seed=N         PRNG seed (default 1)
 *     split=P        probability [0,1] a forwarded chunk is chopped
 *                    into tiny pieces delivered separately
 *     coalesce=P     probability a chunk is held and delivered glued
 *                    to the following bytes
 *     delay_us=A..B  uniform per-chunk forwarding delay (or one value)
 *     reset_after=N  hard-reset the connection after ~N forwarded
 *                    bytes, repeating every N bytes; the frame in
 *                    flight is truncated to a random prefix first
 *
 * An empty spec is a transparent proxy.
 */
struct FaultSchedule
{
    std::uint64_t seed = 1;
    double splitProb = 0.0;
    double coalesceProb = 0.0;
    std::uint64_t delayMinUs = 0;
    std::uint64_t delayMaxUs = 0;
    std::uint64_t resetAfterBytes = 0; ///< 0 = never reset

    bool
    enabled() const
    {
        return splitProb > 0 || coalesceProb > 0 || delayMaxUs > 0 ||
               resetAfterBytes > 0;
    }

    /** Parse a spec string; nullopt with @p error set on bad input. */
    static std::optional<FaultSchedule>
    parse(const std::string &spec, std::string *error = nullptr);

    /** Normalized spec string (for logs and banners). */
    std::string str() const;
};

/** What the proxy did to the traffic (all monotonically increasing). */
struct FaultStats
{
    std::uint64_t connections = 0;    ///< client connections accepted
    std::uint64_t upstreamFailed = 0; ///< dials the server refused
    std::uint64_t bytesForwarded = 0; ///< after truncation
    std::uint64_t splits = 0;         ///< chunks chopped into pieces
    std::uint64_t coalesces = 0;      ///< chunks held back to glue
    std::uint64_t delays = 0;         ///< chunks delayed
    std::uint64_t resets = 0;         ///< connections hard-reset
    std::uint64_t truncatedBytes = 0; ///< bytes dropped by resets
};

/** Fault-injecting TCP proxy in front of one upstream address. */
class FaultProxy
{
  public:
    FaultProxy(std::string upstreamHost, std::uint16_t upstreamPort,
               FaultSchedule schedule);
    ~FaultProxy();

    FaultProxy(const FaultProxy &) = delete;
    FaultProxy &operator=(const FaultProxy &) = delete;

    /** Bind an ephemeral loopback port and start the relay thread. */
    bool start(std::string *error = nullptr);

    /** The port clients should connect to. */
    std::uint16_t port() const { return _port; }

    /** Re-point *new* connections at @p upstreamPort (server
     *  restarted on a different port mid-batch). */
    void setUpstream(std::uint16_t upstreamPort);

    /** Close the listener and every leg, then join the thread. */
    void stop();

    FaultStats stats() const;

  private:
    /** One direction of one proxied connection. */
    struct Leg
    {
        int fd = -1;
        bool eof = false; ///< this socket's peer finished sending
        /** Mutated bytes scheduled for delivery to fd.  A coalesced
         *  chunk merges into the last not-yet-released segment, so
         *  held bytes always carry a release time and can't stall. */
        struct Segment
        {
            std::string bytes;
            std::size_t off = 0;
            std::chrono::steady_clock::time_point releaseAt;
        };
        std::deque<Segment> out;
    };

    struct Pair
    {
        Leg client;   ///< delivery leg toward the client
        Leg upstream; ///< delivery leg toward the server
        bool closing = false; ///< flush remaining bytes, then close
    };

    void relayMain();
    void acceptOne();
    /** Read from @p from and schedule mutated bytes onto @p to. */
    bool pump(Leg &from, Leg &to);
    void scheduleChunk(Leg &to, std::string chunk);
    bool flushLeg(Leg &leg);
    void injectReset(Pair &pair);
    static void hardClose(int fd);

    std::string _upstreamHost;
    std::atomic<int> _upstreamPort;
    FaultSchedule _schedule;
    SplitMix64 _rng;
    std::uint64_t _sinceReset = 0; ///< forwarded bytes since a reset

    int _listenFd = -1;
    int _wakeRead = -1;
    int _wakeWrite = -1;
    std::uint16_t _port = 0;
    std::thread _thread;
    std::atomic<bool> _stop{false};

    std::map<std::uint64_t, Pair> _pairs;
    std::uint64_t _nextPairId = 1;

    mutable std::mutex _statsMutex;
    FaultStats _stats;
};

} // namespace net
} // namespace psi

#endif // PSI_NET_FAULTNET_HPP
