/**
 * @file
 * psinet wire protocol: length-prefixed framed messages.
 *
 * Every message travels in one frame:
 *
 *     +-------------------+---------+----------------+
 *     | u32 payload bytes | u8 type | type body ...  |
 *     +-------------------+---------+----------------+
 *       big-endian          ^------- payload -------^
 *
 * The length covers the payload (type byte included) and is capped at
 * kMaxFramePayload; a peer announcing a larger frame is a protocol
 * error and the connection is dropped without buffering the payload.
 * Integers are fixed-width big-endian, strings and arrays carry a u32
 * count before their elements, so every message round-trips through
 * encode()/decode() byte-exactly (pinned by tests/test_net.cpp).
 *
 * Message flow (see docs/PROTOCOL.md for the full layout):
 *
 *   client                         server
 *     HELLO(version, features)   ->            [optional; v1 implied]
 *                                <- HELLO_ACK  (or ERROR + close)
 *     SUBMIT(tag, workload, ddl) ->
 *                                <- RESULT(tag, status, answer, stats)
 *     STATS                      ->
 *                                <- STATS_REPLY(metrics json)
 *     TRACE                      ->
 *                                <- TRACE_REPLY(chrome trace json)
 *     METRICS                    ->
 *                                <- METRICS_REPLY(prometheus text)
 *     DRAIN                      ->
 *                                <- DRAIN_ACK, then graceful drain
 *
 * Requests are correlated by the client-chosen tag, so a connection
 * may pipeline many SUBMITs; RESULTs come back in completion order,
 * not submission order.
 */

#ifndef PSI_NET_WIRE_HPP
#define PSI_NET_WIRE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "interp/machine.hpp"
#include "mem/cache.hpp"
#include "micro/sequencer.hpp"

namespace psi {
namespace service {
struct JobOutcome;
}

namespace net {

/** Hard cap on one frame's payload (type byte + body). */
constexpr std::uint32_t kMaxFramePayload = 4u << 20;

/** Bytes of frame header (the big-endian payload length). */
constexpr std::size_t kFrameHeaderBytes = 4;

/** @name Protocol version + feature negotiation (HELLO/HELLO_ACK)
 *
 * A client may open with HELLO(version, features).  The server
 * accepts major versions 1 (the pre-HELLO protocol; also implied
 * when the first frame is not a HELLO) and kProtocolMajor; any other
 * major is answered with a structured ERROR and the connection is
 * closed.  Minor versions and feature bits never cause rejection -
 * the HELLO_ACK carries the server's version and the intersection of
 * the offered and supported feature bits, so each side knows what
 * the other actually speaks.
 */
/// @{
constexpr std::uint32_t kProtocolMajor = 2;
constexpr std::uint32_t kProtocolMinor = 2;
constexpr std::uint64_t kFeatureTrace = 1u << 0;   ///< TRACE msgs
constexpr std::uint64_t kFeatureMetrics = 1u << 1; ///< METRICS msgs
/** Peer is a psirouter (forwarding frames for a cluster), not an
 *  engine-owning server.  Advertised only by routers - deliberately
 *  NOT part of kSupportedFeatures, so a plain PsiServer's HELLO_ACK
 *  never carries it and a client can tell the two tiers apart. */
constexpr std::uint64_t kFeatureRouting = 1u << 2;
/** SUBMIT carries a tenant id (v2.1 scheduler fairness unit). */
constexpr std::uint64_t kFeatureTenant = 1u << 3;
/** SUBMIT carries an execution-mode byte (v2.2 fast dispatch). */
constexpr std::uint64_t kFeatureFastMode = 1u << 4;
constexpr std::uint64_t kSupportedFeatures =
    kFeatureTrace | kFeatureMetrics | kFeatureTenant |
    kFeatureFastMode;
/// @}

/** ERROR codes (the `code` field of ErrorMsg). */
constexpr std::uint32_t kErrUnsupportedVersion = 1;

/** Payload type byte. */
enum class MsgType : std::uint8_t
{
    Submit = 1,      ///< client -> server: run one workload
    Result = 2,      ///< server -> client: outcome + statistics
    Stats = 3,       ///< client -> server: request service metrics
    StatsReply = 4,  ///< server -> client: metrics JSON
    Drain = 5,       ///< client -> server: start graceful drain
    DrainAck = 6,    ///< server -> client: drain acknowledged
    Hello = 7,       ///< client -> server: version + feature bits
    HelloAck = 8,    ///< server -> client: negotiated reply
    Error = 9,       ///< server -> client: structured refusal
    Trace = 10,      ///< client -> server: request the span dump
    TraceReply = 11, ///< server -> client: chrome trace-event JSON
    Metrics = 12,    ///< client -> server: request live metrics
    MetricsReply = 13, ///< server -> client: prometheus text
};

/**
 * Status of one RESULT.  The first three values mirror
 * interp::RunStatus (the job ran on an engine); the rest are
 * service-level refusals that never reached an engine.
 */
enum class WireStatus : std::uint8_t
{
    Ok = 0,              ///< ran to completion
    StepLimit = 1,       ///< RunLimits::maxSteps exhausted
    Timeout = 2,         ///< deadline budget spent
    EngineError = 16,    ///< FatalError from the engine (see error)
    UnknownWorkload = 17,///< workload id not in the registry
    Overloaded = 18,     ///< fail-fast queue rejection (backpressure)
    Draining = 19,       ///< server is draining, no new work
};

const char *wireStatusName(WireStatus s);

/** Map an engine run status onto the wire. */
WireStatus wireStatus(interp::RunStatus s);

/** SUBMIT body.  Three self-canonical forms share the type byte:
 *  the v1/v2.0 body ends after deadlineNs, the v2.1 body appends a
 *  tenant string, and the v2.2 body appends an execution-mode byte
 *  after the tenant (so hasMode implies hasTenant).  The decoder
 *  distinguishes the forms by exhaustion and re-encodes each one
 *  byte-identically (the fuzz suite's round-trip property), so old
 *  clients interop unchanged.  Encoder and decoder share one
 *  ordered tail-field table in wire.cpp (kSubmitTail) - appending a
 *  future field is one row there.  Construct outgoing SUBMITs
 *  through SubmitBuilder rather than by hand: the builder keeps the
 *  presence flags consistent with the prefix rule. */
struct SubmitMsg
{
    std::uint64_t tag = 0;        ///< client-chosen correlation id
    std::string workload;         ///< registry id, e.g. "queens1"
    std::uint64_t deadlineNs = 0; ///< per-request budget; 0 = none
    /** Scheduling tenant (fairness + quota unit); "" = the shared
     *  default tenant.  Only on the wire when hasTenant. */
    std::string tenant = {};
    /** False for frames in the tenant-less v1/v2.0 form; such
     *  requests run as the shared default tenant. */
    bool hasTenant = true;
    /** Execution mode (v2.2); only on the wire when hasMode.  The
     *  decoder rejects mode bytes it does not know, so a future
     *  mode never silently degrades to Fidelity mid-cluster. */
    interp::ExecMode mode = interp::ExecMode::Fidelity;
    /** False for frames in the v1/v2.0/v2.1 forms; such requests
     *  run in Fidelity mode. */
    bool hasMode = true;
};

/**
 * Fluent constructor for outgoing SUBMITs - the one place client
 * code builds a SubmitMsg.  A fresh builder produces the smallest
 * form (v1/v2.0: tag + workload + deadline); each setter that
 * touches an appended tail field upgrades the frame just far enough
 * to carry it, so the presence flags always satisfy the prefix rule
 * (mode() implies the tenant field is on the wire) and a Fidelity
 * request without a tenant still interops with pre-v2.1 servers:
 *
 *     encode(SubmitBuilder(tag, "queens1")
 *                .deadlineNs(budget)
 *                .tenant("team-a")
 *                .mode(interp::ExecMode::Fast)
 *                .build());
 */
class SubmitBuilder
{
  public:
    SubmitBuilder(std::uint64_t tag, std::string workload)
    {
        _m.tag = tag;
        _m.workload = std::move(workload);
        _m.hasTenant = false;
        _m.hasMode = false;
    }

    /** Per-request budget in nanoseconds (0 = none). */
    SubmitBuilder &
    deadlineNs(std::uint64_t ns)
    {
        _m.deadlineNs = ns;
        return *this;
    }

    /** Scheduling tenant; upgrades the frame to the v2.1 form. */
    SubmitBuilder &
    tenant(std::string t)
    {
        _m.tenant = std::move(t);
        _m.hasTenant = true;
        return *this;
    }

    /** Execution mode; upgrades the frame to the v2.2 form (which
     *  carries the tenant field too - "" = default tenant).  Leave
     *  unset for Fidelity requests that must reach v2.1 servers. */
    SubmitBuilder &
    mode(interp::ExecMode m)
    {
        _m.mode = m;
        _m.hasMode = true;
        _m.hasTenant = true;
        return *this;
    }

    SubmitMsg
    build() &&
    {
        return std::move(_m);
    }

    SubmitMsg
    build() const &
    {
        return _m;
    }

  private:
    SubmitMsg _m;
};

/** RESULT body: the full JobOutcome, serialized. */
struct ResultMsg
{
    std::uint64_t tag = 0;
    WireStatus status = WireStatus::Ok;
    std::string error;            ///< refusal / engine error text

    std::vector<std::string> solutions; ///< rendered bindings
    std::string output;           ///< text written by write/nl/tab

    std::uint64_t inferences = 0; ///< user-predicate calls
    std::uint64_t steps = 0;      ///< microinstruction steps
    std::uint64_t modelNs = 0;    ///< model clock (steps + stalls)
    std::uint64_t stallNs = 0;    ///< memory stall share
    micro::SeqStats seq{};        ///< firmware statistics
    CacheStats cache{};           ///< cache statistics

    std::uint64_t queueNs = 0;    ///< server: submit -> worker pickup
    std::uint64_t execNs = 0;     ///< server: consult + solve
    std::uint64_t latencyNs = 0;  ///< server: submit -> completion
    /** Server-assigned psitrace tag (0 = tracing disabled): the tag
     *  every server-side span of this request carries, so a client
     *  can stitch its own observations onto the server timeline. */
    std::uint64_t traceTag = 0;

    /** True when the job reached an engine (statistics are valid). */
    bool
    ran() const
    {
        return status == WireStatus::Ok ||
               status == WireStatus::StepLimit ||
               status == WireStatus::Timeout;
    }
};

struct StatsMsg
{};

struct StatsReplyMsg
{
    std::string json; ///< service::MetricsSnapshot::json()
};

struct DrainMsg
{};

struct DrainAckMsg
{};

/** HELLO body: the client's protocol version and feature bits. */
struct HelloMsg
{
    std::uint32_t versionMajor = kProtocolMajor;
    std::uint32_t versionMinor = kProtocolMinor;
    std::uint64_t features = kSupportedFeatures;
};

/** HELLO_ACK body: the server's version and the agreed features. */
struct HelloAckMsg
{
    std::uint32_t versionMajor = kProtocolMajor;
    std::uint32_t versionMinor = kProtocolMinor;
    std::uint64_t features = 0; ///< offered AND supported
};

/** ERROR body: a structured refusal (the connection closes after). */
struct ErrorMsg
{
    std::uint32_t code = 0; ///< kErr* constant
    std::string message;    ///< human-readable detail
};

struct TraceMsg
{};

struct TraceReplyMsg
{
    std::string json; ///< trace::chromeJson() of the server's spans
};

struct MetricsMsg
{};

struct MetricsReplyMsg
{
    std::string text; ///< Prometheus text exposition
};

using Message =
    std::variant<SubmitMsg, ResultMsg, StatsMsg, StatsReplyMsg,
                 DrainMsg, DrainAckMsg, HelloMsg, HelloAckMsg,
                 ErrorMsg, TraceMsg, TraceReplyMsg, MetricsMsg,
                 MetricsReplyMsg>;

MsgType messageType(const Message &msg);

/** Encode @p msg as one complete frame (header + payload). */
std::string encode(const Message &msg);

/** Outcome of scanning a receive buffer for one frame. */
enum class FrameResult : std::uint8_t
{
    Frame,    ///< one payload extracted and consumed
    NeedMore, ///< incomplete; buffer untouched, read more bytes
    Bad,      ///< oversized or empty frame announced: drop the peer
};

/**
 * Cut one complete frame's payload off the front of @p buffer.
 * On Frame, @p payload holds the type byte + body and the frame is
 * consumed from @p buffer; otherwise @p buffer is left untouched.
 */
FrameResult extractFrame(std::string &buffer, std::string &payload);

/**
 * Decode one frame payload.
 * @return the message, or std::nullopt with @p error set when the
 *         payload is truncated, trailing-garbage or of unknown type.
 */
std::optional<Message> decode(std::string_view payload,
                              std::string *error = nullptr);

/** Build the RESULT for a finished pool job. */
ResultMsg resultFromOutcome(std::uint64_t tag,
                            const service::JobOutcome &outcome);

} // namespace net
} // namespace psi

#endif // PSI_NET_WIRE_HPP
