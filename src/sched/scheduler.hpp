/**
 * @file
 * psisched: pluggable scheduling for the engine pool.
 *
 * The pool used to drain one FIFO BoundedQueue: a burst of one
 * tenant's heavy queries starved everyone else, and requests sharing
 * a compiled image landed on arbitrary workers, wasting the warm
 * per-worker engine layout.  Scheduler<T> replaces that queue with a
 * policy object; two implementations ship:
 *
 *  - FifoScheduler: the original arrival-order queue, kept so legacy
 *    behavior stays selectable and differential-testable.
 *
 *  - AffinityScheduler (production): three cooperating orders over
 *    one job set.
 *
 *      fairness   weighted-fair queuing across tenants.  Each tenant
 *                 carries a virtual finish tag advanced by
 *                 kVirtualScale/weight per admitted job; the fair
 *                 order is (vfinish, deadline, seq), so equal-tag
 *                 jobs break ties earliest-deadline-first (EDF) and
 *                 a tenant with weight w gets ~w/Σw of dispatches
 *                 under contention while an idle tenant's first job
 *                 jumps near the head (its tag snaps up to the
 *                 global virtual clock).
 *
 *      affinity   per-image queues keyed by CompiledProgram source
 *                 hash.  A worker whose warm engine already holds
 *                 image K prefers the oldest queued job with key K,
 *                 up to maxBatch consecutive dispatches, amortizing
 *                 image setup across the batch.
 *
 *      age        the anti-starvation invariant: whenever the oldest
 *                 queued job has waited >= ageCapNs, it dispatches
 *                 next regardless of fairness tags or affinity.  So
 *                 affinity can reorder within the cap but can never
 *                 hold a job back longer than the cap while workers
 *                 are dispatching.
 *
 *    Admission is bounded twice: a global capacity and a per-tenant
 *    quota (fail-fast OVERLOADED on breach), so one tenant cannot
 *    own the whole queue.  Tenant cardinality is capped; overflow
 *    tenants share the "~other" bucket.
 *
 * Scheduler<T> is a class template because the pool's Job type is
 * private and move-only; the pool instantiates Scheduler<Job> and
 * hands the scheduler full ownership of queued jobs.
 */

#ifndef PSI_SCHED_SCHEDULER_HPP
#define PSI_SCHED_SCHEDULER_HPP

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sched/metrics.hpp"

namespace psi {
namespace sched {

using SchedClock = std::chrono::steady_clock;

/** Policy knobs; defaults reproduce single-tenant pool behavior. */
struct SchedConfig
{
    /** Global queue bound (jobs waiting, all tenants). */
    std::size_t capacity = 64;
    /** Per-tenant queued-job bound; 0 = capacity (no extra bound),
     *  so a single-tenant deployment behaves exactly like the old
     *  BoundedQueue.  Breach refuses fail-fast (OVERLOADED). */
    std::size_t tenantQuota = 0;
    /** Max consecutive same-image dispatches to one worker before
     *  the fair order takes back over. */
    std::uint32_t maxBatch = 8;
    /** Anti-starvation bound: a job older than this dispatches next
     *  regardless of affinity or fairness.  0 disables the cap.
     *  Keep it several service times long - once typical queue
     *  waits exceed the cap, every dispatch is an age override and
     *  the policy degenerates to FIFO. */
    std::uint64_t ageCapNs = 500'000'000;
    /** WFQ share for tenants absent from @ref weights. */
    std::uint64_t defaultWeight = 1;
    /** Per-tenant WFQ shares (higher = more dispatch share). */
    std::map<std::string, std::uint64_t> weights;
    /** Tenant table bound; later tenants share kOverflowTenant. */
    std::size_t maxTenants = 64;
};

/** Scheduling-relevant facts about one job, supplied at push. */
struct TaskInfo
{
    std::string tenant;             ///< "" = the shared v1 tenant
    std::uint64_t affinityKey = 0;  ///< program source hash; 0 = none
    std::uint64_t deadlineNs = 0;   ///< budget from submit; 0 = none
    SchedClock::time_point submitted{};
};

/** Admission verdict. */
enum class PushResult : std::uint8_t
{
    Ok,
    QueueFull,     ///< global capacity reached (fail-fast only)
    QuotaExceeded, ///< per-tenant quota reached (fail-fast only)
    Closed,        ///< scheduler is draining / shut down
};

/** One dispatch: the job plus why it was chosen now. */
template <typename T>
struct Dispatched
{
    T item;
    DispatchClass cls = DispatchClass::Fair;
    std::uint64_t waitNs = 0; ///< submit -> dispatch
};

/**
 * The pool-facing scheduling interface.  Thread-safe; push and pop
 * block/wake exactly like the BoundedQueue they replace.
 */
template <typename T>
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Fail-fast admission; @p item is left untouched on refusal. */
    virtual PushResult tryPush(const TaskInfo &info, T &item) = 0;

    /** Blocking admission: waits for capacity (and tenant quota);
     *  returns Closed when the scheduler shuts down while waiting.
     *  @p item is left untouched on refusal. */
    virtual PushResult push(const TaskInfo &info, T &item) = 0;

    /**
     * Dispatch one job to @p worker, blocking while empty.
     * @p loadedKey is the affinity key of the image the worker's
     * engine currently holds (0 = none); the scheduler uses it for
     * affinity batching and hit accounting.
     * @return nullopt once closed and drained (end of stream).
     */
    virtual std::optional<Dispatched<T>>
    pop(unsigned worker, std::uint64_t loadedKey) = 0;

    /** Stop admitting; queued jobs still drain.  Idempotent. */
    virtual void close() = 0;
    virtual bool closed() const = 0;

    virtual std::size_t size() const = 0;
    virtual std::size_t capacity() const = 0;
    virtual SchedKind kind() const = 0;
    virtual SchedSnapshot snapshot() const = 0;
};

namespace detail {

/** Tenant state: WFQ tag + quota depth + counters. */
struct Tenant
{
    std::string name;
    std::uint64_t weight = 1;
    std::uint64_t vfinish = 0; ///< last assigned virtual finish tag
    std::uint64_t depth = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t quotaRejected = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t waitNs = 0;
};

inline std::uint64_t
elapsedNs(SchedClock::time_point from, SchedClock::time_point to)
{
    return to <= from
        ? 0
        : static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  to - from)
                  .count());
}

} // namespace detail

/**
 * Shared implementation core: the lock, the tenant table, the
 * dispatch/admission counters and the snapshot.  Derived classes
 * own the actual job containers.
 */
template <typename T>
class SchedulerBase : public Scheduler<T>
{
  public:
    explicit SchedulerBase(const SchedConfig &config)
        : _config(config)
    {
        if (_config.capacity == 0)
            _config.capacity = 1;
        if (_config.tenantQuota == 0 ||
            _config.tenantQuota > _config.capacity)
            _config.tenantQuota = _config.capacity;
        if (_config.defaultWeight == 0)
            _config.defaultWeight = 1;
        if (_config.maxTenants < 2)
            _config.maxTenants = 2;
    }

    void close() override
    {
        {
            std::lock_guard<std::mutex> lock(_m);
            _closed = true;
        }
        _nonEmpty.notify_all();
        _notFull.notify_all();
    }

    bool closed() const override
    {
        std::lock_guard<std::mutex> lock(_m);
        return _closed;
    }

    std::size_t size() const override
    {
        std::lock_guard<std::mutex> lock(_m);
        return _size;
    }

    std::size_t capacity() const override
    {
        return _config.capacity;
    }

    SchedSnapshot snapshot() const override
    {
        std::lock_guard<std::mutex> lock(_m);
        SchedSnapshot snap;
        snap.kind = this->kind();
        snap.affinityHits = _affinityHits;
        snap.affinityMisses = _affinityMisses;
        snap.agedDispatches = _agedDispatches;
        snap.fairDispatches = _fairDispatches;
        snap.affinityDispatches = _affinityDispatches;
        snap.batches = _batches;
        snap.batchJobs = _batchJobs;
        snap.maxBatchRun = _maxBatchRun;
        snap.quotaRejects = _quotaRejects;
        snap.tenants.reserve(_tenants.size());
        for (const auto &t : _tenants) {
            TenantSnapshot ts;
            ts.name = t.name;
            ts.weight = t.weight;
            ts.depth = t.depth;
            ts.admitted = t.admitted;
            ts.rejected = t.rejected;
            ts.quotaRejected = t.quotaRejected;
            ts.dispatched = t.dispatched;
            ts.waitNs = t.waitNs;
            snap.tenants.push_back(std::move(ts));
        }
        return snap;
    }

  protected:
    /** Fixed-point scale of the WFQ virtual clock: one weight-1 job
     *  advances a tenant's tag by this much. */
    static constexpr std::uint64_t kVirtualScale = 1u << 16;

    /** Intern @p name (sanitized) into the tenant table; tenants
     *  past maxTenants share the overflow bucket.  Only the
     *  scheduler's own fold-bucket intern (@p raw) bypasses
     *  sanitization: client names always pass through it, and since
     *  it maps '~' to '_', no client-declared name - not even a
     *  literal "~other" - can intern into the bucket's table slot. */
    std::uint32_t internTenantLocked(const std::string &name,
                                     bool raw = false)
    {
        std::string key = raw ? name : sanitizeTenantName(name);
        auto it = _tenantIndex.find(key);
        if (it != _tenantIndex.end())
            return it->second;
        if (_tenants.size() + 1 >= _config.maxTenants &&
            key != kOverflowTenant) {
            // Table full: everyone new shares the overflow bucket.
            return internTenantLocked(kOverflowTenant,
                                      /*raw=*/true);
        }
        detail::Tenant t;
        t.name = key;
        auto w = _config.weights.find(key);
        t.weight = w != _config.weights.end() && w->second > 0
            ? w->second
            : _config.defaultWeight;
        // A tenant arriving late starts at the current virtual
        // clock, not zero, so it cannot claim an unbounded backlog
        // of "credit" and lock out established tenants.
        t.vfinish = _vnow;
        _tenants.push_back(std::move(t));
        std::uint32_t idx =
            static_cast<std::uint32_t>(_tenants.size() - 1);
        _tenantIndex.emplace(std::move(key), idx);
        return idx;
    }

    /** Assign the next WFQ finish tag for one admitted job. */
    std::uint64_t nextVFinishLocked(detail::Tenant &t)
    {
        t.vfinish = std::max(t.vfinish, _vnow) +
            kVirtualScale / t.weight;
        return t.vfinish;
    }

    /** Admission bookkeeping after a job is queued. */
    void chargeAdmitLocked(detail::Tenant &t)
    {
        ++t.depth;
        ++t.admitted;
        ++_size;
    }

    /** Dispatch bookkeeping: fairness clock, affinity hit/miss,
     *  batch runs, tenant wait. */
    void chargeDispatchLocked(detail::Tenant &t, std::uint64_t vfinish,
                              std::uint64_t key,
                              std::uint64_t loadedKey,
                              DispatchClass cls, std::uint64_t waitNs,
                              unsigned worker)
    {
        --t.depth;
        ++t.dispatched;
        t.waitNs += waitNs;
        --_size;
        _vnow = std::max(_vnow, vfinish);
        if (key != 0 && key == loadedKey)
            ++_affinityHits;
        else
            ++_affinityMisses;
        switch (cls) {
          case DispatchClass::Fair:
            ++_fairDispatches;
            break;
          case DispatchClass::Affinity:
            ++_affinityDispatches;
            break;
          case DispatchClass::Aged:
            ++_agedDispatches;
            break;
        }
        if (_batchRuns.size() <= worker)
            _batchRuns.resize(worker + 1);
        BatchRun &run = _batchRuns[worker];
        if (key != 0 && key == run.key) {
            ++run.length;
            // A "batch" is a same-image run of length >= 2; count it
            // once at the 1 -> 2 transition, then per extra job.
            _batchJobs += run.length == 2 ? 2 : 1;
            if (run.length == 2)
                ++_batches;
        } else {
            run.key = key;
            run.length = 1;
        }
        _maxBatchRun = std::max<std::uint64_t>(_maxBatchRun,
                                               run.length);
    }

    /** Current same-image run length for @p worker (batch bound). */
    std::uint64_t batchRunLocked(unsigned worker,
                                 std::uint64_t key) const
    {
        if (worker >= _batchRuns.size())
            return 0;
        const BatchRun &run = _batchRuns[worker];
        return key != 0 && run.key == key ? run.length : 0;
    }

    struct BatchRun
    {
        std::uint64_t key = 0;
        std::uint64_t length = 0;
    };

    SchedConfig _config;
    mutable std::mutex _m;
    std::condition_variable _nonEmpty;
    std::condition_variable _notFull;
    bool _closed = false;
    std::size_t _size = 0;
    std::uint64_t _vnow = 0;
    std::uint64_t _seq = 0;
    std::vector<detail::Tenant> _tenants;
    std::unordered_map<std::string, std::uint32_t> _tenantIndex;
    std::vector<BatchRun> _batchRuns;
    std::uint64_t _affinityHits = 0;
    std::uint64_t _affinityMisses = 0;
    std::uint64_t _agedDispatches = 0;
    std::uint64_t _fairDispatches = 0;
    std::uint64_t _affinityDispatches = 0;
    std::uint64_t _batches = 0;
    std::uint64_t _batchJobs = 0;
    std::uint64_t _maxBatchRun = 0;
    std::uint64_t _quotaRejects = 0;
};

/**
 * The original pool order: strict arrival sequence, no quotas, no
 * reordering.  Tenant and affinity-hit counters are still recorded
 * so FIFO-vs-affinity runs compare on identical metrics.
 */
template <typename T>
class FifoScheduler final : public SchedulerBase<T>
{
    using Base = SchedulerBase<T>;

  public:
    explicit FifoScheduler(const SchedConfig &config) : Base(config) {}

    SchedKind kind() const override { return SchedKind::Fifo; }

    PushResult tryPush(const TaskInfo &info, T &item) override
    {
        std::lock_guard<std::mutex> lock(this->_m);
        if (this->_closed)
            return PushResult::Closed;
        if (this->_size >= this->_config.capacity) {
            std::uint32_t idx = this->internTenantLocked(info.tenant);
            ++this->_tenants[idx].rejected;
            return PushResult::QueueFull;
        }
        admitLocked(info, item);
        this->_nonEmpty.notify_one();
        return PushResult::Ok;
    }

    PushResult push(const TaskInfo &info, T &item) override
    {
        std::unique_lock<std::mutex> lock(this->_m);
        this->_notFull.wait(lock, [this] {
            return this->_closed ||
                this->_size < this->_config.capacity;
        });
        if (this->_closed)
            return PushResult::Closed;
        admitLocked(info, item);
        lock.unlock();
        this->_nonEmpty.notify_one();
        return PushResult::Ok;
    }

    std::optional<Dispatched<T>>
    pop(unsigned worker, std::uint64_t loadedKey) override
    {
        std::unique_lock<std::mutex> lock(this->_m);
        this->_nonEmpty.wait(lock, [this] {
            return this->_closed || !_queue.empty();
        });
        if (_queue.empty())
            return std::nullopt;
        Entry e = std::move(_queue.front());
        _queue.pop_front();
        Dispatched<T> out;
        out.item = std::move(e.item);
        out.cls = DispatchClass::Fair;
        out.waitNs = detail::elapsedNs(e.submitted,
                                       SchedClock::now());
        this->chargeDispatchLocked(this->_tenants[e.tenant],
                                   e.vfinish, e.key, loadedKey,
                                   out.cls, out.waitNs, worker);
        lock.unlock();
        this->_notFull.notify_one();
        return out;
    }

  private:
    struct Entry
    {
        T item;
        std::uint32_t tenant = 0;
        std::uint64_t key = 0;
        std::uint64_t vfinish = 0;
        SchedClock::time_point submitted{};
    };

    void admitLocked(const TaskInfo &info, T &item)
    {
        Entry e;
        std::uint32_t idx = this->internTenantLocked(info.tenant);
        detail::Tenant &t = this->_tenants[idx];
        e.item = std::move(item);
        e.tenant = idx;
        e.key = info.affinityKey;
        e.vfinish = this->nextVFinishLocked(t);
        e.submitted = info.submitted;
        _queue.push_back(std::move(e));
        this->chargeAdmitLocked(t);
    }

    std::deque<Entry> _queue;
};

/**
 * The production scheduler: WFQ + EDF fairness, per-image affinity
 * batching, per-tenant quotas and the age-cap starvation bound.  See
 * the file comment for the policy; everything below is the three
 * index structures kept in lockstep over one job list.
 */
template <typename T>
class AffinityScheduler final : public SchedulerBase<T>
{
    using Base = SchedulerBase<T>;

  public:
    explicit AffinityScheduler(const SchedConfig &config)
        : Base(config)
    {
    }

    SchedKind kind() const override { return SchedKind::Affinity; }

    PushResult tryPush(const TaskInfo &info, T &item) override
    {
        std::lock_guard<std::mutex> lock(this->_m);
        if (this->_closed)
            return PushResult::Closed;
        std::uint32_t idx = this->internTenantLocked(info.tenant);
        detail::Tenant &t = this->_tenants[idx];
        if (this->_size >= this->_config.capacity) {
            ++t.rejected;
            return PushResult::QueueFull;
        }
        if (t.depth >= this->_config.tenantQuota) {
            ++t.quotaRejected;
            ++this->_quotaRejects;
            return PushResult::QuotaExceeded;
        }
        admitLocked(idx, info, item);
        this->_nonEmpty.notify_one();
        return PushResult::Ok;
    }

    PushResult push(const TaskInfo &info, T &item) override
    {
        std::unique_lock<std::mutex> lock(this->_m);
        std::uint32_t idx = this->internTenantLocked(info.tenant);
        this->_notFull.wait(lock, [this, idx] {
            return this->_closed ||
                (this->_size < this->_config.capacity &&
                 this->_tenants[idx].depth <
                     this->_config.tenantQuota);
        });
        if (this->_closed)
            return PushResult::Closed;
        admitLocked(idx, info, item);
        lock.unlock();
        this->_nonEmpty.notify_one();
        return PushResult::Ok;
    }

    std::optional<Dispatched<T>>
    pop(unsigned worker, std::uint64_t loadedKey) override
    {
        std::unique_lock<std::mutex> lock(this->_m);
        this->_nonEmpty.wait(lock, [this] {
            return this->_closed || !_jobs.empty();
        });
        if (_jobs.empty())
            return std::nullopt;

        auto now = SchedClock::now();
        It choice = _jobs.end();
        DispatchClass cls = DispatchClass::Fair;

        // 1. Affinity: prefer the oldest job sharing the worker's
        //    loaded image, unless the worker exhausted its batch.
        if (loadedKey != 0 &&
            this->batchRunLocked(worker, loadedKey) <
                this->_config.maxBatch) {
            auto byKey = _byKey.find(loadedKey);
            if (byKey != _byKey.end() && !byKey->second.empty()) {
                choice = byKey->second.front();
                cls = DispatchClass::Affinity;
            }
        }
        // 2. Fairness: otherwise the WFQ/EDF head.
        if (choice == _jobs.end()) {
            choice = _fair.begin()->second;
            cls = DispatchClass::Fair;
        }
        // 3. Age cap: the oldest waiting job overrides everything
        //    once it has waited past the cap (anti-starvation).
        if (this->_config.ageCapNs != 0) {
            It oldest = _jobs.begin();
            if (oldest != choice &&
                detail::elapsedNs(oldest->submitted, now) >=
                    this->_config.ageCapNs) {
                choice = oldest;
                cls = DispatchClass::Aged;
            }
        }

        Dispatched<T> out;
        out.cls = cls;
        out.waitNs = detail::elapsedNs(choice->submitted, now);
        out.item = std::move(choice->item);
        this->chargeDispatchLocked(this->_tenants[choice->tenant],
                                   choice->vfinish, choice->key,
                                   loadedKey, cls, out.waitNs,
                                   worker);
        eraseLocked(choice);
        lock.unlock();
        this->_notFull.notify_all();
        return out;
    }

  private:
    struct Entry
    {
        T item;
        std::uint32_t tenant = 0;
        std::uint64_t key = 0;
        std::uint64_t vfinish = 0;
        std::uint64_t deadlineAt = 0; ///< UINT64_MAX = none
        std::uint64_t seq = 0;
        SchedClock::time_point submitted{};
    };
    using It = typename std::list<Entry>::iterator;
    /** Fair order: virtual finish, then EDF, then arrival. */
    using FairKey =
        std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;

    static FairKey fairKeyOf(const Entry &e)
    {
        return FairKey(e.vfinish, e.deadlineAt, e.seq);
    }

    void admitLocked(std::uint32_t idx, const TaskInfo &info,
                     T &item)
    {
        detail::Tenant &t = this->_tenants[idx];
        Entry e;
        e.item = std::move(item);
        e.tenant = idx;
        e.key = info.affinityKey;
        e.vfinish = this->nextVFinishLocked(t);
        e.seq = ++this->_seq;
        e.submitted = info.submitted;
        e.deadlineAt = info.deadlineNs == 0
            ? std::numeric_limits<std::uint64_t>::max()
            : static_cast<std::uint64_t>(
                  std::chrono::duration_cast<
                      std::chrono::nanoseconds>(
                      info.submitted.time_since_epoch())
                      .count()) +
                info.deadlineNs;
        _jobs.push_back(std::move(e));
        It it = std::prev(_jobs.end());
        _fair.emplace(fairKeyOf(*it), it);
        if (it->key != 0)
            _byKey[it->key].push_back(it);
        this->chargeAdmitLocked(t);
    }

    /** Remove @p it from the fair map, its key queue and the job
     *  list (counters are the caller's job). */
    void eraseLocked(It it)
    {
        _fair.erase(fairKeyOf(*it));
        if (it->key != 0) {
            auto byKey = _byKey.find(it->key);
            if (byKey != _byKey.end()) {
                auto &q = byKey->second;
                q.erase(std::find(q.begin(), q.end(), it));
                if (q.empty())
                    _byKey.erase(byKey);
            }
        }
        _jobs.erase(it);
    }

    std::list<Entry> _jobs; ///< arrival order (age-cap scans front)
    std::map<FairKey, It> _fair;
    std::unordered_map<std::uint64_t, std::deque<It>> _byKey;
};

/** Factory: the pool configures by kind, not by concrete type. */
template <typename T>
std::unique_ptr<Scheduler<T>>
makeScheduler(SchedKind kind, const SchedConfig &config)
{
    if (kind == SchedKind::Fifo)
        return std::make_unique<FifoScheduler<T>>(config);
    return std::make_unique<AffinityScheduler<T>>(config);
}

} // namespace sched
} // namespace psi

#endif // PSI_SCHED_SCHEDULER_HPP
