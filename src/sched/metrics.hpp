/**
 * @file
 * psisched observability: the point-in-time snapshot a Scheduler
 * publishes and its three renderings (human table rows, flat STATS
 * JSON keys, psi_sched_* Prometheus families).
 *
 * Kept separate from the scheduler templates so the service metrics
 * code can embed and render a SchedSnapshot without instantiating
 * Scheduler<T>, and so the emission conventions (snake_case JSON,
 * tenant label sanitization, one TYPE line per family) live in one
 * .cpp next to the policy they describe.
 *
 * Tenant cardinality is bounded by SchedConfig::maxTenants (overflow
 * tenants collapse into one "~other" bucket), so the per-tenant
 * families here cannot blow up the Prometheus surface no matter what
 * tenant ids clients send.
 */

#ifndef PSI_SCHED_METRICS_HPP
#define PSI_SCHED_METRICS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "base/table.hpp"

namespace psi {
class JsonWriter;

namespace sched {

/** Which Scheduler implementation a pool runs. */
enum class SchedKind : std::uint8_t
{
    Fifo,     ///< the original single arrival-order queue
    Affinity, ///< WFQ + EDF + cache-affinity batching (production)
};

const char *schedKindName(SchedKind kind);

/** Parse a --sched flag value; @return false on unknown name. */
bool parseSchedKind(const std::string &name, SchedKind &out);

/**
 * Why the scheduler picked a particular job for a worker.  Recorded
 * per dispatch and attributed to the psitrace queue span so traces
 * show whether a request waited for fairness or rode a warm image.
 */
enum class DispatchClass : std::uint8_t
{
    Fair,     ///< head of the weighted-fair (EDF tie-broken) order
    Affinity, ///< batched behind the worker's loaded image
    Aged,     ///< anti-starvation override: oldest job hit the age cap
};

const char *dispatchClassName(DispatchClass cls);

/** One tenant's slice of the scheduler counters. */
struct TenantSnapshot
{
    std::string name;
    std::uint64_t weight = 1;        ///< WFQ share
    std::uint64_t depth = 0;         ///< queued right now
    std::uint64_t admitted = 0;      ///< accepted into the queue
    std::uint64_t rejected = 0;      ///< refused: queue full
    std::uint64_t quotaRejected = 0; ///< refused: per-tenant quota
    std::uint64_t dispatched = 0;    ///< handed to a worker
    std::uint64_t waitNs = 0;        ///< total submit -> dispatch wait

    double meanWaitNs() const
    {
        return dispatched == 0
            ? 0.0
            : static_cast<double>(waitNs) /
                  static_cast<double>(dispatched);
    }
};

/** Point-in-time scheduler counters (all monotonic except depth). */
struct SchedSnapshot
{
    SchedKind kind = SchedKind::Fifo;
    std::uint64_t affinityHits = 0;   ///< dispatch key == loaded image
    std::uint64_t affinityMisses = 0; ///< dispatch forced an image swap
    std::uint64_t agedDispatches = 0; ///< age-cap overrides
    std::uint64_t fairDispatches = 0; ///< fair-order dispatches
    std::uint64_t affinityDispatches = 0; ///< batched dispatches
    std::uint64_t batches = 0;        ///< same-key runs started
    std::uint64_t batchJobs = 0;      ///< jobs dispatched inside runs
    std::uint64_t maxBatchRun = 0;    ///< longest same-key run seen
    std::uint64_t quotaRejects = 0;   ///< sum of tenant quota refusals
    std::vector<TenantSnapshot> tenants; ///< stable intern order

    std::uint64_t dispatches() const
    {
        return affinityHits + affinityMisses;
    }
    double affinityHitRatio() const
    {
        std::uint64_t d = dispatches();
        return d == 0 ? 0.0
                      : static_cast<double>(affinityHits) /
                            static_cast<double>(d);
    }
    double meanBatchJobs() const
    {
        return batches == 0 ? 0.0
                            : static_cast<double>(batchJobs) /
                                  static_cast<double>(batches);
    }

    /** Append scheduler rows to the service metrics table. */
    void tableRows(Table &t) const;

    /** Append flat sched_* keys to the STATS JSON object. */
    void json(JsonWriter &w) const;

    /** psi_sched_* Prometheus families (text exposition). */
    std::string prometheus() const;
};

/**
 * Clamp a client-supplied tenant id to a safe metrics label:
 * [A-Za-z0-9_.-] pass through, anything else (including '~', which
 * is reserved for the fold bucket) becomes '_', length is capped,
 * and an empty id maps to "default" (the v1 shared tenant).  The
 * output never needs escaping as a JSON key or a Prometheus label
 * value, and can never equal kOverflowTenant.
 */
std::string sanitizeTenantName(const std::string &name);

/** The bucket absorbing tenants past SchedConfig::maxTenants.
 *  Interned verbatim by the scheduler, never via
 *  sanitizeTenantName(), so client names cannot collide with it. */
extern const char *const kOverflowTenant;

/** The shared tenant v1 (tenant-less) clients land in. */
extern const char *const kDefaultTenant;

} // namespace sched
} // namespace psi

#endif // PSI_SCHED_METRICS_HPP
