#include "sched/metrics.hpp"

#include <sstream>

#include "base/json.hpp"
#include "base/stats.hpp"

namespace psi {
namespace sched {

const char *const kOverflowTenant = "~other";
const char *const kDefaultTenant = "default";

const char *
schedKindName(SchedKind kind)
{
    switch (kind) {
      case SchedKind::Fifo:
        return "fifo";
      case SchedKind::Affinity:
        return "affinity";
    }
    return "?";
}

bool
parseSchedKind(const std::string &name, SchedKind &out)
{
    if (name == "fifo") {
        out = SchedKind::Fifo;
        return true;
    }
    if (name == "affinity") {
        out = SchedKind::Affinity;
        return true;
    }
    return false;
}

const char *
dispatchClassName(DispatchClass cls)
{
    switch (cls) {
      case DispatchClass::Fair:
        return "fair";
      case DispatchClass::Affinity:
        return "affinity";
      case DispatchClass::Aged:
        return "aged";
    }
    return "?";
}

std::string
sanitizeTenantName(const std::string &name)
{
    if (name.empty())
        return kDefaultTenant;
    // '~' is reserved for the scheduler's own fold bucket "~other"
    // (interned verbatim, never through this function): mapping it
    // to '_' here means no client-declared tenant - including a
    // hostile literal "~other" - can collide with that bucket and
    // silently merge its counters into the overflow row.
    static const std::size_t kMaxLen = 48;
    std::string out;
    out.reserve(std::min(name.size(), kMaxLen));
    for (char c : name) {
        if (out.size() >= kMaxLen)
            break;
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                  c == '-';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void
SchedSnapshot::tableRows(Table &t) const
{
    auto row = [&t](const std::string &k, const std::string &v) {
        t.addRow({k, v});
    };
    row("scheduler", schedKindName(kind));
    row("sched affinity hits", std::to_string(affinityHits));
    row("sched affinity misses", std::to_string(affinityMisses));
    row("sched affinity hit %",
        stats::fixed(affinityHitRatio() * 100.0, 1));
    row("sched aged dispatches", std::to_string(agedDispatches));
    row("sched batches", std::to_string(batches));
    row("sched mean batch", stats::fixed(meanBatchJobs(), 2));
    row("sched quota rejects", std::to_string(quotaRejects));
    for (const auto &ten : tenants) {
        row("tenant " + ten.name,
            "depth=" + std::to_string(ten.depth) +
                " admit=" + std::to_string(ten.admitted) +
                " reject=" +
                std::to_string(ten.rejected + ten.quotaRejected) +
                " wait_ms=" +
                stats::fixed(ten.meanWaitNs() / 1e6, 2));
    }
}

void
SchedSnapshot::json(JsonWriter &w) const
{
    w.s("sched_policy", schedKindName(kind));
    w.u("sched_affinity_hits", affinityHits);
    w.u("sched_affinity_misses", affinityMisses);
    w.f("sched_affinity_hit_ratio", affinityHitRatio(), 4);
    w.u("sched_aged_dispatches", agedDispatches);
    w.u("sched_fair_dispatches", fairDispatches);
    w.u("sched_affinity_dispatches", affinityDispatches);
    w.u("sched_batches", batches);
    w.u("sched_batch_jobs", batchJobs);
    w.u("sched_max_batch_run", maxBatchRun);
    w.u("sched_quota_rejects", quotaRejects);
    w.u("sched_tenants", tenants.size());
    for (const auto &ten : tenants) {
        const std::string p = "tenant_" + ten.name + "_";
        w.u(p + "depth", ten.depth);
        w.u(p + "admitted", ten.admitted);
        w.u(p + "rejected", ten.rejected + ten.quotaRejected);
        w.u(p + "dispatched", ten.dispatched);
        w.u(p + "wait_ns", ten.waitNs);
        w.num(p + "mean_wait_ns", stats::fixed(ten.meanWaitNs(), 0));
    }
}

std::string
SchedSnapshot::prometheus() const
{
    std::ostringstream os;
    auto counter = [&os](const char *name, std::uint64_t v) {
        os << "# TYPE " << name << " counter\n"
           << name << ' ' << v << '\n';
    };

    os << "# TYPE psi_sched_policy gauge\n"
       << "psi_sched_policy{policy=\"" << schedKindName(kind)
       << "\"} 1\n";
    counter("psi_sched_affinity_hits_total", affinityHits);
    counter("psi_sched_affinity_misses_total", affinityMisses);
    os << "# TYPE psi_sched_affinity_hit_ratio gauge\n"
       << "psi_sched_affinity_hit_ratio "
       << stats::fixed(affinityHitRatio(), 6) << '\n';
    os << "# TYPE psi_sched_dispatches_total counter\n";
    os << "psi_sched_dispatches_total{class=\"fair\"} "
       << fairDispatches << '\n';
    os << "psi_sched_dispatches_total{class=\"affinity\"} "
       << affinityDispatches << '\n';
    os << "psi_sched_dispatches_total{class=\"aged\"} "
       << agedDispatches << '\n';
    counter("psi_sched_batches_total", batches);
    counter("psi_sched_batch_jobs_total", batchJobs);
    os << "# TYPE psi_sched_max_batch_run gauge\n"
       << "psi_sched_max_batch_run " << maxBatchRun << '\n';
    counter("psi_sched_quota_rejects_total", quotaRejects);

    os << "# TYPE psi_sched_tenant_depth gauge\n";
    for (const auto &ten : tenants) {
        os << "psi_sched_tenant_depth{tenant=\"" << ten.name
           << "\"} " << ten.depth << '\n';
    }
    os << "# TYPE psi_sched_tenant_weight gauge\n";
    for (const auto &ten : tenants) {
        os << "psi_sched_tenant_weight{tenant=\"" << ten.name
           << "\"} " << ten.weight << '\n';
    }
    os << "# TYPE psi_sched_tenant_admitted_total counter\n";
    for (const auto &ten : tenants) {
        os << "psi_sched_tenant_admitted_total{tenant=\"" << ten.name
           << "\"} " << ten.admitted << '\n';
    }
    os << "# TYPE psi_sched_tenant_rejected_total counter\n";
    for (const auto &ten : tenants) {
        os << "psi_sched_tenant_rejected_total{tenant=\"" << ten.name
           << "\",reason=\"queue_full\"} " << ten.rejected << '\n'
           << "psi_sched_tenant_rejected_total{tenant=\"" << ten.name
           << "\",reason=\"quota\"} " << ten.quotaRejected << '\n';
    }
    os << "# TYPE psi_sched_tenant_dispatched_total counter\n";
    for (const auto &ten : tenants) {
        os << "psi_sched_tenant_dispatched_total{tenant=\""
           << ten.name << "\"} " << ten.dispatched << '\n';
    }
    os << "# TYPE psi_sched_tenant_wait_seconds_total counter\n";
    for (const auto &ten : tenants) {
        os << "psi_sched_tenant_wait_seconds_total{tenant=\""
           << ten.name << "\"} "
           << stats::fixed(static_cast<double>(ten.waitNs) / 1e9, 9)
           << '\n';
    }
    return os.str();
}

} // namespace sched
} // namespace psi
