/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * panic()  - a model bug: a condition that must never occur regardless
 *            of what the user does.  Aborts.
 * fatal()  - a user error: bad program text, invalid configuration.
 *            Throws FatalError so embedding code (REPL, tests) can
 *            recover.
 * warn()   - something is off but execution can continue.
 * inform() - plain status output.
 */

#ifndef PSI_BASE_LOGGING_HPP
#define PSI_BASE_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace psi {

/** Exception thrown by fatal(); carries the formatted message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Stream-concatenate a parameter pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Abort with a model-bug diagnostic. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(__FILE__, __LINE__,
                      detail::concat(std::forward<Args>(args)...));
}

/** Raise a user-level error (throws FatalError). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit a warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit an informational message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** panic() unless the given model invariant holds. */
#define PSI_ASSERT(cond, ...)                                          \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::psi::detail::panicImpl(__FILE__, __LINE__,               \
                ::psi::detail::concat("assertion '" #cond "' failed ", \
                                      ##__VA_ARGS__));                 \
        }                                                              \
    } while (0)

} // namespace psi

#endif // PSI_BASE_LOGGING_HPP
