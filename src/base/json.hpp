/**
 * @file
 * JsonWriter: the one flat-JSON-object emitter for the repo's
 * machine-readable surfaces (MetricsSnapshot::json(), farm_throughput
 * --json, net_throughput --json).
 *
 * Before this existed each surface hand-rolled its own `os << ...`
 * object, and the three schemas drifted (quoting, separators, key
 * casing).  JsonWriter pins the shared conventions in one place:
 * snake_case keys, `"key": value` pairs separated by `", "`, strings
 * escaped, numbers either exact u64s or caller-formatted fixed-point
 * literals (no locale, no exponent notation).
 *
 * It deliberately writes only flat objects - one `{...}` per line is
 * the repo's JSON-lines contract; anything nested (the Chrome trace
 * export) has its own renderer.
 */

#ifndef PSI_BASE_JSON_HPP
#define PSI_BASE_JSON_HPP

#include <cstdint>
#include <string>
#include <string_view>

namespace psi {

/** Escape @p s for placement inside a JSON string literal. */
std::string jsonEscape(std::string_view s);

/** Builder for one flat JSON object, key order = call order. */
class JsonWriter
{
  public:
    /** Unsigned integer value. */
    JsonWriter &u(std::string_view key, std::uint64_t v);

    /** Fixed-point double with @p prec decimals (never exponent). */
    JsonWriter &f(std::string_view key, double v, int prec);

    /** Pre-formatted numeric literal (e.g. stats::fixed output). */
    JsonWriter &num(std::string_view key, std::string_view literal);

    /** Escaped string value. */
    JsonWriter &s(std::string_view key, std::string_view v);

    /** The finished object, braces included. */
    std::string str() const;

  private:
    void key(std::string_view k);

    std::string _body;
    bool _first = true;
};

} // namespace psi

#endif // PSI_BASE_JSON_HPP
