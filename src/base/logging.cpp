#include "base/logging.hpp"

#include <cstdlib>
#include <iostream>

namespace psi {
namespace detail {

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")"
              << std::endl;
    std::abort();
}

[[noreturn]] void
fatalImpl(const std::string &msg)
{
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cerr << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace psi
