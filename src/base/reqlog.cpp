#include "base/reqlog.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "base/backoff.hpp"
#include "base/json.hpp"
#include "base/logging.hpp"

namespace psi {
namespace reqlog {

namespace {

/**
 * Strict parser for one flat JSON object line: string or unsigned
 * integer values only, no nesting, no duplicate keys, nothing after
 * the closing brace.  Small enough to hand-roll, and hand-rolling
 * keeps the error messages specific ("negative value for at_ns")
 * instead of a generic parser's "unexpected token".
 */
class LineParser
{
  public:
    explicit LineParser(const std::string &text) : _text(text) {}

    /** Parse the whole line into @p strings / @p numbers.  Keys keep
     *  their order of first appearance in @p order. */
    bool
    parse(std::map<std::string, std::string> &strings,
          std::map<std::string, std::uint64_t> &numbers,
          std::vector<std::string> &order)
    {
        skipWs();
        if (!consume('{'))
            return fail("expected '{'");
        skipWs();
        if (consume('}'))
            return end();
        for (;;) {
            std::string key;
            if (!parseString(key, "key"))
                return false;
            if (strings.count(key) || numbers.count(key))
                return fail("duplicate key '" + key + "'");
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after key '" + key + "'");
            skipWs();
            if (peek() == '"') {
                std::string value;
                if (!parseString(value, "value of '" + key + "'"))
                    return false;
                strings.emplace(key, std::move(value));
            } else {
                std::uint64_t value = 0;
                if (!parseNumber(key, value))
                    return false;
                numbers.emplace(key, value);
            }
            order.push_back(key);
            skipWs();
            if (consume(',')) {
                skipWs();
                continue;
            }
            if (consume('}'))
                return end();
            return fail("expected ',' or '}'");
        }
    }

    const std::string &error() const { return _error; }

  private:
    char peek() const
    {
        return _pos < _text.size() ? _text[_pos] : '\0';
    }
    bool consume(char c)
    {
        if (peek() != c)
            return false;
        ++_pos;
        return true;
    }
    void skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t'))
            ++_pos;
    }
    bool fail(const std::string &why)
    {
        _error = why;
        return false;
    }
    /** Nothing but whitespace may follow the object - a junk tail
     *  means the line is not what it appears to be. */
    bool end()
    {
        skipWs();
        if (_pos != _text.size())
            return fail("junk after closing '}': '" +
                        _text.substr(_pos) + "'");
        return true;
    }

    bool parseString(std::string &out, const std::string &what)
    {
        if (!consume('"'))
            return fail("expected '\"' to open " + what);
        out.clear();
        while (_pos < _text.size()) {
            char c = _text[_pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (_pos >= _text.size())
                    break;
                char esc = _text[_pos++];
                switch (esc) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'n': out.push_back('\n'); break;
                  case 't': out.push_back('\t'); break;
                  default:
                    return fail(std::string("unsupported escape '\\") +
                                esc + "' in " + what);
                }
                continue;
            }
            out.push_back(c);
        }
        return fail("unterminated string in " + what);
    }

    bool parseNumber(const std::string &key, std::uint64_t &out)
    {
        if (peek() == '-')
            return fail("negative value for '" + key + "'");
        if (peek() < '0' || peek() > '9')
            return fail("expected a string or unsigned integer for '" +
                        key + "'");
        out = 0;
        while (peek() >= '0' && peek() <= '9') {
            std::uint64_t digit =
                static_cast<std::uint64_t>(peek() - '0');
            if (out >
                (std::numeric_limits<std::uint64_t>::max() - digit) /
                    10)
                return fail("value of '" + key +
                            "' overflows 64 bits");
            out = out * 10 + digit;
            ++_pos;
        }
        if (peek() == '.' || peek() == 'e' || peek() == 'E')
            return fail("non-integer value for '" + key + "'");
        return true;
    }

    const std::string &_text;
    std::size_t _pos = 0;
    std::string _error;
};

bool
lineError(std::size_t line, const std::string &why,
          std::string *error)
{
    if (error)
        *error = "line " + std::to_string(line) + ": " + why;
    return false;
}

bool
parseHeaderLine(const std::string &text, std::size_t line,
                Header &out, std::string *error)
{
    std::map<std::string, std::string> strings;
    std::map<std::string, std::uint64_t> numbers;
    std::vector<std::string> order;
    LineParser p(text);
    if (!p.parse(strings, numbers, order))
        return lineError(line, p.error(), error);
    auto version = numbers.find("psi_reqlog");
    if (version == numbers.end())
        return lineError(line,
                         "first line must be a header object with a "
                         "\"psi_reqlog\" version field",
                         error);
    if (version->second != kVersion)
        return lineError(
            line,
            "unsupported reqlog version " +
                std::to_string(version->second) + " (this build " +
                "reads version " + std::to_string(kVersion) + ")",
            error);
    out.version = static_cast<std::uint32_t>(version->second);
    for (const std::string &key : order) {
        if (key == "psi_reqlog")
            continue;
        if (key == "seed") {
            out.seed = numbers.at(key);
        } else if (key == "source") {
            auto s = strings.find(key);
            if (s == strings.end())
                return lineError(line, "\"source\" must be a string",
                                 error);
            out.source = s->second;
        } else {
            return lineError(line,
                             "unknown header field '" + key +
                                 "' (a new field needs a new "
                                 "reqlog version)",
                             error);
        }
    }
    return true;
}

bool
parseEntryLine(const std::string &text, std::size_t line,
               std::uint64_t prevAtNs, Entry &out, std::string *error)
{
    std::map<std::string, std::string> strings;
    std::map<std::string, std::uint64_t> numbers;
    std::vector<std::string> order;
    LineParser p(text);
    if (!p.parse(strings, numbers, order))
        return lineError(line, p.error(), error);

    out = Entry{};
    out.line = line;
    bool haveAt = false, haveWorkload = false;
    for (const std::string &key : order) {
        if (key == "at_ns") {
            auto n = numbers.find(key);
            if (n == numbers.end())
                return lineError(line, "\"at_ns\" must be an integer",
                                 error);
            out.atNs = n->second;
            haveAt = true;
        } else if (key == "workload") {
            auto s = strings.find(key);
            if (s == strings.end() || s->second.empty())
                return lineError(
                    line, "\"workload\" must be a non-empty string",
                    error);
            out.workload = s->second;
            haveWorkload = true;
        } else if (key == "tenant") {
            auto s = strings.find(key);
            if (s == strings.end())
                return lineError(line, "\"tenant\" must be a string",
                                 error);
            out.tenant = s->second;
        } else if (key == "mode") {
            auto s = strings.find(key);
            if (s == strings.end())
                return lineError(line, "\"mode\" must be a string",
                                 error);
            if (s->second == "fidelity") {
                out.mode = interp::ExecMode::Fidelity;
            } else if (s->second == "fast") {
                out.mode = interp::ExecMode::Fast;
            } else {
                return lineError(line,
                                 "unknown mode '" + s->second +
                                     "' (use \"fidelity\" or "
                                     "\"fast\")",
                                 error);
            }
        } else if (key == "deadline_ns") {
            auto n = numbers.find(key);
            if (n == numbers.end())
                return lineError(
                    line, "\"deadline_ns\" must be an integer",
                    error);
            out.deadlineNs = n->second;
        } else {
            return lineError(line,
                             "unknown field '" + key +
                                 "' (a new field needs a new "
                                 "reqlog version)",
                             error);
        }
    }
    if (!haveAt)
        return lineError(line, "missing required field \"at_ns\"",
                         error);
    if (!haveWorkload)
        return lineError(line, "missing required field \"workload\"",
                         error);
    if (out.atNs < prevAtNs)
        return lineError(line,
                         "at_ns " + std::to_string(out.atNs) +
                             " goes backwards (previous entry is at " +
                             std::to_string(prevAtNs) + ")",
                         error);
    return true;
}

bool
blank(const std::string &text)
{
    for (char c : text) {
        if (c != ' ' && c != '\t' && c != '\r')
            return false;
    }
    return true;
}

/** Exponential draw with mean @p meanS seconds. */
double
expDraw(SplitMix64 &rng, double meanS)
{
    // unit() is in [0, 1); flip to (0, 1] so log() is finite.
    return -std::log(1.0 - rng.unit()) * meanS;
}

} // namespace

std::optional<Log>
parse(std::istream &in, std::string *error)
{
    Log log;
    std::string line;
    std::size_t lineNo = 0;
    bool sawHeader = false;
    std::uint64_t prevAtNs = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (blank(line))
            continue;
        if (!sawHeader) {
            if (!parseHeaderLine(line, lineNo, log.header, error))
                return std::nullopt;
            sawHeader = true;
            continue;
        }
        Entry entry;
        if (!parseEntryLine(line, lineNo, prevAtNs, entry, error))
            return std::nullopt;
        prevAtNs = entry.atNs;
        log.entries.push_back(std::move(entry));
    }
    if (!sawHeader) {
        if (error)
            *error = "line 1: empty log (expected a "
                     "{\"psi_reqlog\": 1, ...} header line)";
        return std::nullopt;
    }
    return log;
}

std::optional<Log>
parseFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open request log '" + path + "'";
        return std::nullopt;
    }
    auto log = parse(in, error);
    if (!log && error)
        *error = path + ": " + *error;
    return log;
}

std::string
formatHeader(const Header &header)
{
    JsonWriter w;
    w.u("psi_reqlog", kVersion);
    if (header.seed != 0)
        w.u("seed", header.seed);
    if (!header.source.empty())
        w.s("source", header.source);
    return w.str();
}

std::string
formatEntry(const Entry &entry)
{
    JsonWriter w;
    w.u("at_ns", entry.atNs);
    w.s("workload", entry.workload);
    if (!entry.tenant.empty())
        w.s("tenant", entry.tenant);
    if (entry.mode != interp::ExecMode::Fidelity)
        w.s("mode", interp::execModeName(entry.mode));
    if (entry.deadlineNs != 0)
        w.u("deadline_ns", entry.deadlineNs);
    return w.str();
}

void
write(std::ostream &out, const Log &log)
{
    out << formatHeader(log.header) << "\n";
    for (const Entry &entry : log.entries)
        out << formatEntry(entry) << "\n";
}

bool
writeFile(const std::string &path, const Log &log,
          std::string *error)
{
    std::ofstream out(path);
    if (!out) {
        if (error)
            *error = "cannot write request log '" + path + "'";
        return false;
    }
    write(out, log);
    out.flush();
    if (!out) {
        if (error)
            *error = "short write to request log '" + path + "'";
        return false;
    }
    return true;
}

bool
validateWorkloads(
    const Log &log,
    const std::function<bool(const std::string &)> &known,
    std::string *error)
{
    for (const Entry &entry : log.entries) {
        if (!known(entry.workload)) {
            lineError(entry.line,
                      "unknown workload '" + entry.workload + "'",
                      error);
            return false;
        }
    }
    return true;
}

Log
synthesize(const GenConfig &config)
{
    if (config.workloads.empty())
        fatal("reqlog::synthesize: no workloads configured");
    if (config.rate <= 0)
        fatal("reqlog::synthesize: rate must be > 0");
    std::uint64_t shareTotal = 0;
    for (const GenWorkload &w : config.workloads) {
        if (w.id.empty() || w.share == 0)
            fatal("reqlog::synthesize: workload entries need an id "
                  "and a positive share");
        shareTotal += w.share;
    }
    const unsigned tenants = std::max(1u, config.tenants);
    const double burst = std::max(1.0, config.burst);
    const double dwellS =
        config.burstDwellS > 0 ? config.burstDwellS : 0.25;

    // Zipf tenant weights: cumulative distribution over t0..tN-1.
    std::vector<double> tenantCdf(tenants);
    double acc = 0;
    for (unsigned i = 0; i < tenants; ++i) {
        acc += 1.0 /
               std::pow(static_cast<double>(i + 1),
                        std::max(0.0, config.skew));
        tenantCdf[i] = acc;
    }
    for (double &c : tenantCdf)
        c /= acc;

    SplitMix64 rng(config.seed);
    Log log;
    log.header.seed = config.seed;
    log.header.source = "psi_mklog";
    log.entries.reserve(config.requests);

    // Two-state MMPP: arrivals are Poisson at `rate` in the calm
    // state and `rate * burst` in the burst state; dwell times in
    // each state are exponential with mean dwellS.  Every draw below
    // happens in a fixed order per request, so the whole log is a
    // pure function of the seed.
    double nowS = 0;
    bool bursting = false;
    double stateEndS = expDraw(rng, dwellS);
    for (std::uint64_t i = 0; i < config.requests; ++i) {
        for (;;) {
            double rate = bursting ? config.rate * burst
                                   : config.rate;
            double gapS = expDraw(rng, 1.0 / rate);
            if (nowS + gapS >= stateEndS) {
                // The state flips before this arrival: restart the
                // draw from the switch point at the new rate.
                nowS = stateEndS;
                stateEndS = nowS + expDraw(rng, dwellS);
                bursting = !bursting;
                continue;
            }
            nowS += gapS;
            break;
        }

        Entry entry;
        entry.atNs = static_cast<std::uint64_t>(
            std::llround(nowS * 1e9));
        if (!log.entries.empty() &&
            entry.atNs < log.entries.back().atNs)
            entry.atNs = log.entries.back().atNs;

        double t = rng.unit();
        unsigned tenant = 0;
        while (tenant + 1 < tenants && t >= tenantCdf[tenant])
            ++tenant;
        entry.tenant = "t" + std::to_string(tenant);

        std::uint64_t pick = rng.below(shareTotal);
        for (const GenWorkload &w : config.workloads) {
            if (pick < w.share) {
                entry.workload = w.id;
                break;
            }
            pick -= w.share;
        }

        entry.mode = rng.unit() < config.fastShare
            ? interp::ExecMode::Fast
            : interp::ExecMode::Fidelity;
        if (rng.unit() < config.deadlineShare)
            entry.deadlineNs =
                rng.range(config.deadlineLoMs, config.deadlineHiMs) *
                1'000'000ull;
        log.entries.push_back(std::move(entry));
    }
    return log;
}

} // namespace reqlog
} // namespace psi
