/**
 * @file
 * Lightweight statistics primitives used by the machine models.
 *
 * The hardware models keep their own strongly typed counters; this
 * header supplies the shared building blocks: a scalar counter, a
 * named counter group for report generation, and percentage/ratio
 * formatting helpers used throughout the bench binaries.
 */

#ifndef PSI_BASE_STATS_HPP
#define PSI_BASE_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace psi {
namespace stats {

/** Monotonic event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++_value; }
    void operator++(int) { ++_value; }
    void operator+=(std::uint64_t n) { _value += n; }

    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/**
 * A flat group of named counters, useful for ad-hoc instrumentation
 * (the strongly typed models convert into one of these for
 * reporting).
 */
class Group
{
  public:
    explicit Group(std::string name) : _name(std::move(name)) {}

    /** Add @p n to counter @p key, creating it at zero if missing. */
    void add(const std::string &key, std::uint64_t n = 1);

    /** Value of @p key, or 0 if the counter never fired. */
    std::uint64_t get(const std::string &key) const;

    /** Sum over all counters in the group. */
    std::uint64_t total() const;

    /** Keys in insertion order. */
    const std::vector<std::string> &keys() const { return _order; }

    const std::string &name() const { return _name; }

    void reset();

  private:
    std::string _name;
    std::map<std::string, std::uint64_t> _values;
    std::vector<std::string> _order;
};

/** @return 100 * num / den, or 0 when den == 0. */
double pct(std::uint64_t num, std::uint64_t den);

/** @return num / den as double, or 0 when den == 0. */
double ratio(std::uint64_t num, std::uint64_t den);

/** Format @p v with @p prec digits after the decimal point. */
std::string fixed(double v, int prec = 1);

} // namespace stats
} // namespace psi

#endif // PSI_BASE_STATS_HPP
