#include "base/trace.hpp"

#include <memory>
#include <mutex>
#include <sstream>

namespace psi {
namespace trace {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Request:  return "request";
      case Stage::Accept:   return "accept";
      case Stage::Decode:   return "decode";
      case Stage::Queue:    return "queue";
      case Stage::CacheHit: return "cache-hit";
      case Stage::Compile:  return "compile";
      case Stage::Setup:    return "setup";
      case Stage::Solve:    return "solve";
      case Stage::Encode:   return "encode";
      case Stage::Reply:    return "reply";
      case Stage::Send:     return "send";
      case Stage::SchedFair:     return "sched-fair";
      case Stage::SchedAffinity: return "sched-affinity";
      case Stage::SchedAged:     return "sched-aged";
      case Stage::NumStages: break;
    }
    return "?";
}

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

/**
 * One thread's append-only span buffer.  The owning thread is the
 * only writer; it publishes each append with a release store of
 * head, so readers that acquire head see fully written spans.
 * Published entries are never modified (no ring overwrite), which is
 * what makes the concurrent collect() race-free.
 */
struct ThreadBuffer
{
    static constexpr std::size_t kCapacity = 1u << 14; // 16384 spans

    std::vector<Span> spans;
    std::atomic<std::size_t> head{0};
    std::atomic<std::uint64_t> dropped{0};
    std::uint32_t tid = 0;
};

/** Owns every thread's buffer for the process lifetime, so spans
 *  survive their recording thread (pool workers are often joined
 *  before the trace is exported). */
struct Registry
{
    std::mutex m;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

ThreadBuffer *
threadBuffer()
{
    thread_local ThreadBuffer *buf = [] {
        auto owned = std::make_unique<ThreadBuffer>();
        owned->spans.resize(ThreadBuffer::kCapacity);
        ThreadBuffer *raw = owned.get();
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.m);
        raw->tid = static_cast<std::uint32_t>(reg.buffers.size());
        reg.buffers.push_back(std::move(owned));
        return raw;
    }();
    return buf;
}

std::chrono::steady_clock::time_point
epoch()
{
    static const auto e = std::chrono::steady_clock::now();
    return e;
}

std::atomic<std::uint64_t> g_nextTag{1};

} // namespace

void
recordSlow(Stage stage, std::uint64_t tag, std::uint64_t startNs,
           std::uint64_t endNs)
{
    ThreadBuffer *buf = threadBuffer();
    std::size_t idx = buf->head.load(std::memory_order_relaxed);
    if (idx >= buf->spans.size()) {
        buf->dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Span &s = buf->spans[idx];
    s.tag = tag;
    s.startNs = startNs;
    s.durNs = endNs >= startNs ? endNs - startNs : 0;
    s.tid = buf->tid;
    s.stage = stage;
    buf->head.store(idx + 1, std::memory_order_release);
}

} // namespace detail

void
setEnabled(bool on)
{
    detail::epoch(); // anchor the timeline before the first span
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t
toNs(std::chrono::steady_clock::time_point tp)
{
    auto e = detail::epoch();
    if (tp <= e)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(tp - e)
            .count());
}

std::uint64_t
nowNs()
{
    return toNs(std::chrono::steady_clock::now());
}

std::uint64_t
nextTag()
{
    return detail::g_nextTag.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Span>
collect()
{
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.m);
    std::vector<Span> out;
    for (const auto &buf : reg.buffers) {
        std::size_t n = buf->head.load(std::memory_order_acquire);
        out.insert(out.end(), buf->spans.begin(),
                   buf->spans.begin() + static_cast<std::ptrdiff_t>(n));
    }
    return out;
}

std::uint64_t
droppedSpans()
{
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.m);
    std::uint64_t total = 0;
    for (const auto &buf : reg.buffers)
        total += buf->dropped.load(std::memory_order_relaxed);
    return total;
}

void
reset()
{
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.m);
    for (const auto &buf : reg.buffers) {
        buf->head.store(0, std::memory_order_release);
        buf->dropped.store(0, std::memory_order_relaxed);
    }
}

namespace {

/** Nanoseconds -> trace-event microseconds with ns precision. */
void
putUs(std::ostringstream &os, std::uint64_t ns)
{
    os << ns / 1000 << '.';
    unsigned frac = static_cast<unsigned>(ns % 1000);
    os << static_cast<char>('0' + frac / 100)
       << static_cast<char>('0' + (frac / 10) % 10)
       << static_cast<char>('0' + frac % 10);
}

} // namespace

std::string
chromeJson(const std::vector<Span> &spans)
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (const Span &s : spans) {
        os << (first ? "" : ",") << "\n"
           << "{\"name\": \"" << stageName(s.stage)
           << "\", \"cat\": \"psi\", \"ph\": \"X\", \"ts\": ";
        putUs(os, s.startNs);
        os << ", \"dur\": ";
        putUs(os, s.durNs);
        os << ", \"pid\": 1, \"tid\": " << s.tid
           << ", \"args\": {\"tag\": " << s.tag << "}}";
        first = false;
    }
    os << "\n]}\n";
    return os.str();
}

} // namespace trace
} // namespace psi
