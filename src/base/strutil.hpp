/**
 * @file
 * Small string helpers shared by the reader, printers and tools.
 */

#ifndef PSI_BASE_STRUTIL_HPP
#define PSI_BASE_STRUTIL_HPP

#include <string>
#include <vector>

namespace psi {
namespace strutil {

/** Split @p s on @p sep; empty fields are kept. */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &s);

/** Join @p parts with @p sep between elements. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Left/right pad @p s with spaces to width @p w. */
std::string padLeft(const std::string &s, std::size_t w);
std::string padRight(const std::string &s, std::size_t w);

/** True if the atom text needs quoting in canonical output. */
bool atomNeedsQuotes(const std::string &s);

} // namespace strutil
} // namespace psi

#endif // PSI_BASE_STRUTIL_HPP
