/**
 * @file
 * Fixed-width ASCII table printer.
 *
 * Every bench binary renders its results with this class so the
 * output visually matches the row/column layout of the paper's
 * tables (program name column, one column per measured quantity,
 * optional paper-reference columns).
 */

#ifndef PSI_BASE_TABLE_HPP
#define PSI_BASE_TABLE_HPP

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace psi {

/** Simple column-aligned text table. */
class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title) : _title(std::move(title)) {}

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render to @p os. */
    void print(std::ostream &os) const;

    /** Render to a string (used by tests). */
    std::string str() const;

    std::size_t rowCount() const { return _rows.size(); }

  private:
    struct Row
    {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::string _title;
    std::vector<std::string> _header;
    std::vector<Row> _rows;
};

} // namespace psi

#endif // PSI_BASE_TABLE_HPP
