/**
 * @file
 * Seedable randomness + exponential backoff for retry loops.
 *
 * Everything that "waits a random amount and tries again" in this
 * repo (the psinet retrying client, the fault-injection proxy, the
 * wire fuzzer) draws from one tiny deterministic PRNG so a failure
 * reproduces from its seed alone:
 *
 *     SplitMix64 rng(42);          // same seed -> same sequence
 *     Backoff backoff({});         // 5 ms, x2, capped, jittered
 *     sleep(backoff.nextDelayNs());
 *
 * Backoff implements "equal jitter": the k-th delay is half the
 * current ceiling plus a uniform draw over the other half, so
 * retries spread out (no thundering herd) while the expected delay
 * still doubles per attempt.  raiseFloor() lets a caller that was
 * told to back off harder (an OVERLOADED reply) jump the ceiling
 * without restarting the schedule.
 */

#ifndef PSI_BASE_BACKOFF_HPP
#define PSI_BASE_BACKOFF_HPP

#include <cstdint>

namespace psi {

/** SplitMix64: tiny, fast, seedable PRNG (public-domain algorithm). */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed = 1) : _state(seed) {}

    /** Next 64 random bits. */
    std::uint64_t next();

    /** Uniform draw in [0, bound); bound 0 returns 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform draw in [lo, hi]; hi < lo returns lo. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform draw in [0, 1). */
    double unit();

  private:
    std::uint64_t _state;
};

/** Seeded exponential backoff with equal jitter. */
class Backoff
{
  public:
    struct Config
    {
        std::uint64_t baseNs = 5'000'000;   ///< first-delay ceiling
        std::uint64_t maxNs = 500'000'000;  ///< ceiling cap
        double multiplier = 2.0;            ///< ceiling growth
        std::uint64_t seed = 1;             ///< jitter PRNG seed
    };

    Backoff() : Backoff(Config{}) {}
    explicit Backoff(const Config &config);

    /**
     * The next delay: cur/2 + uniform(0, cur/2], then the ceiling
     * grows by the multiplier (capped at maxNs).
     */
    std::uint64_t nextDelayNs();

    /** Jump the current ceiling to at least @p ns (capped at max). */
    void raiseFloor(std::uint64_t ns);

    /** Restart the schedule from the base ceiling. */
    void reset();

    /** Current ceiling (the next delay is at most this). */
    std::uint64_t ceilingNs() const { return _current; }

  private:
    Config _config;
    SplitMix64 _rng;
    std::uint64_t _current;
};

} // namespace psi

#endif // PSI_BASE_BACKOFF_HPP
