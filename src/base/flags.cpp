#include "base/flags.hpp"

#include <cstdint>
#include <iostream>
#include <limits>
#include <sstream>

namespace psi {

namespace {

/** Parse an unsigned decimal; empty return = ok. */
std::string
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return "expected a number, got nothing";
    std::uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return "expected a number, got '" + text + "'";
        // Test BEFORE multiplying: `value * 10 + digit` can wrap all
        // the way around to a value that still compares plausibly
        // (e.g. 2^64 + 159 ends up as exactly 2^64 - 1), so a
        // post-hoc `next < value` check misses most overflows.
        std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (value >
            (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            return "number '" + text + "' is out of range";
        value = value * 10 + digit;
    }
    out = value;
    return "";
}

} // namespace

Flags::Flags(std::string usage) : _usage(std::move(usage)) {}

Flags &
Flags::add(Spec spec)
{
    _specs.push_back(std::move(spec));
    return *this;
}

Flags &
Flags::opt(const std::string &name, unsigned *target,
           const std::string &help)
{
    return add({name, "N", help, [target](const std::string &v) {
                    std::uint64_t value;
                    std::string err = parseU64(v, value);
                    if (!err.empty())
                        return err;
                    if (value > std::numeric_limits<unsigned>::max())
                        return "number '" + v + "' is out of range";
                    *target = static_cast<unsigned>(value);
                    return std::string();
                }});
}

Flags &
Flags::opt(const std::string &name, std::uint64_t *target,
           const std::string &help)
{
    return add({name, "N", help, [target](const std::string &v) {
                    return parseU64(v, *target);
                }});
}

Flags &
Flags::opt(const std::string &name, double *target,
           const std::string &help)
{
    return add({name, "X", help, [target](const std::string &v) {
                    std::size_t used = 0;
                    try {
                        *target = std::stod(v, &used);
                    } catch (const std::exception &) {
                        used = 0;
                    }
                    return used == v.size() && !v.empty()
                        ? std::string()
                        : "expected a number, got '" + v + "'";
                }});
}

Flags &
Flags::opt(const std::string &name, std::string *target,
           const std::string &help)
{
    return add({name, "S", help, [target](const std::string &v) {
                    *target = v;
                    return std::string();
                }});
}

Flags &
Flags::opt(const std::string &name,
           std::vector<std::string> *target,
           const std::string &help)
{
    return add({name, "S", help, [target](const std::string &v) {
                    target->push_back(v);
                    return std::string();
                }});
}

Flags &
Flags::flag(const std::string &name, bool *target,
            const std::string &help)
{
    return add({name, "", help, [target](const std::string &) {
                    *target = true;
                    return std::string();
                }});
}

std::string
Flags::usage() const
{
    std::ostringstream os;
    os << "usage: " << _usage << "\n";
    for (const auto &spec : _specs) {
        std::string head = "  " + spec.name +
                           (spec.valueName.empty()
                                ? ""
                                : " " + spec.valueName);
        os << head << std::string(head.size() < 16
                                      ? 16 - head.size()
                                      : 1,
                                  ' ')
           << spec.help << "\n";
    }
    return os.str();
}

bool
Flags::parse(int argc, char **argv,
             std::vector<std::string> *positional) const
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            std::cerr << usage();
            return false;
        }

        const Spec *match = nullptr;
        for (const auto &spec : _specs) {
            if (spec.name == arg) {
                match = &spec;
                break;
            }
        }

        if (match == nullptr) {
            if (positional != nullptr && !arg.empty() &&
                arg[0] != '-') {
                positional->push_back(std::move(arg));
                continue;
            }
            std::cerr << "unknown flag '" << arg << "'\n" << usage();
            return false;
        }

        std::string value;
        if (!match->valueName.empty()) {
            if (i + 1 >= argc) {
                std::cerr << "missing value after " << arg << "\n"
                          << usage();
                return false;
            }
            value = argv[++i];
        }
        std::string err = match->apply(value);
        if (!err.empty()) {
            std::cerr << arg << ": " << err << "\n" << usage();
            return false;
        }
    }
    return true;
}

} // namespace psi
