#include "base/strutil.hpp"

#include <cctype>

namespace psi {
namespace strutil {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
padLeft(const std::string &s, std::size_t w)
{
    return s.size() >= w ? s : std::string(w - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t w)
{
    return s.size() >= w ? s : s + std::string(w - s.size(), ' ');
}

bool
atomNeedsQuotes(const std::string &s)
{
    if (s.empty())
        return true;
    // Solo and symbolic atoms print bare.
    if (s == "[]" || s == "!" || s == ";" || s == "{}")
        return false;
    auto symbolic = [](char c) {
        return std::string("+-*/\\^<>=~:.?@#&$").find(c) !=
               std::string::npos;
    };
    bool all_symbolic = true;
    for (char c : s)
        all_symbolic = all_symbolic && symbolic(c);
    if (all_symbolic)
        return false;
    if (!std::islower(static_cast<unsigned char>(s[0])))
        return true;
    for (char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            return true;
    }
    return false;
}

} // namespace strutil
} // namespace psi
