/**
 * @file
 * Strict parsing for --mix tenant-lane specs.
 *
 * A spec is a comma-separated list of `workload[:share[:weight]]`
 * entries.  Shares and weights must be positive decimal integers;
 * anything else (negative numbers, trailing junk, empty fields,
 * zero, absurdly large values) is rejected with an actionable
 * message instead of being passed through `strtoull`, whose silent
 * wraparound of "-3" to 2^64-3 used to make the weighted round-robin
 * expansion allocate an effectively unbounded lane pattern.
 */

#ifndef PSI_BASE_MIXSPEC_HPP
#define PSI_BASE_MIXSPEC_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace psi {
namespace mixspec {

/** One parsed `workload:share[:weight]` entry. */
struct MixEntry
{
    std::string workload;
    std::uint64_t share = 1;
    std::uint64_t weight = 1;
};

/** Largest accepted share or weight.  Shares are traffic ratios and
 *  weights are WFQ entitlements; values beyond this bound are
 *  certainly typos and would make the WRR pattern explode. */
constexpr std::uint64_t kMaxShare = 1'000'000;

/**
 * Parse @p spec into @p out.  Returns false and sets @p error to a
 * one-line human-readable message (without the program-name prefix)
 * on any malformed entry.  On failure @p out is left empty.
 */
bool parseMixSpec(const std::string &spec, std::vector<MixEntry> &out,
                  std::string &error);

/**
 * Expand parsed entries into an interleaved weighted-round-robin
 * pattern of entry indices: entry l appears share_l times, spread
 * across the pattern so a heavy tenant's requests do not clump.
 * The pattern is non-empty for any non-empty @p entries because
 * every parsed share is >= 1.
 */
std::vector<std::uint32_t>
wrrPattern(const std::vector<MixEntry> &entries);

} // namespace mixspec
} // namespace psi

#endif // PSI_BASE_MIXSPEC_HPP
