#include "base/stats.hpp"

#include <iomanip>
#include <sstream>

namespace psi {
namespace stats {

void
Group::add(const std::string &key, std::uint64_t n)
{
    auto it = _values.find(key);
    if (it == _values.end()) {
        _values.emplace(key, n);
        _order.push_back(key);
    } else {
        it->second += n;
    }
}

std::uint64_t
Group::get(const std::string &key) const
{
    auto it = _values.find(key);
    return it == _values.end() ? 0 : it->second;
}

std::uint64_t
Group::total() const
{
    std::uint64_t sum = 0;
    for (const auto &kv : _values)
        sum += kv.second;
    return sum;
}

void
Group::reset()
{
    _values.clear();
    _order.clear();
}

double
pct(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0 : 100.0 * static_cast<double>(num) /
                            static_cast<double>(den);
}

double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0 : static_cast<double>(num) /
                            static_cast<double>(den);
}

std::string
fixed(double v, int prec)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
}

} // namespace stats
} // namespace psi
