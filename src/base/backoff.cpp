#include "base/backoff.hpp"

namespace psi {

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (_state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
SplitMix64::below(std::uint64_t bound)
{
    return bound == 0 ? 0 : next() % bound;
}

std::uint64_t
SplitMix64::range(std::uint64_t lo, std::uint64_t hi)
{
    return hi <= lo ? lo : lo + below(hi - lo + 1);
}

double
SplitMix64::unit()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Backoff::Backoff(const Config &config)
    : _config(config), _rng(config.seed), _current(config.baseNs)
{
    if (_config.baseNs == 0)
        _config.baseNs = 1;
    if (_config.maxNs < _config.baseNs)
        _config.maxNs = _config.baseNs;
    if (_config.multiplier < 1.0)
        _config.multiplier = 1.0;
    _current = _config.baseNs;
}

std::uint64_t
Backoff::nextDelayNs()
{
    std::uint64_t half = _current / 2;
    std::uint64_t delay = half + _rng.range(1, half > 0 ? half : 1);

    double grown = static_cast<double>(_current) * _config.multiplier;
    std::uint64_t cap = _config.maxNs;
    _current = grown >= static_cast<double>(cap)
                   ? cap
                   : static_cast<std::uint64_t>(grown);
    return delay;
}

void
Backoff::raiseFloor(std::uint64_t ns)
{
    if (ns > _current)
        _current = ns < _config.maxNs ? ns : _config.maxNs;
}

void
Backoff::reset()
{
    _current = _config.baseNs;
}

} // namespace psi
