/**
 * @file
 * Tiny command-line flag parser for the example and bench binaries.
 *
 * The same "-w N workers, -d MS deadline, workloads as positionals"
 * loop used to be hand-rolled in every CLI; this centralizes it:
 *
 *     unsigned workers = 4;
 *     bool json = false;
 *     Flags flags("farm_throughput [options] [workload ...]");
 *     flags.opt("-w", &workers, "worker threads");
 *     flags.flag("--json", &json, "machine-readable output only");
 *     std::vector<std::string> positional;
 *     if (!flags.parse(argc, argv, &positional))
 *         return 1;   // message + usage already on stderr
 *
 * Values are validated (a non-numeric count is an actionable error,
 * not atoi()'s silent zero) and -h / --help prints the usage table.
 */

#ifndef PSI_BASE_FLAGS_HPP
#define PSI_BASE_FLAGS_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace psi {

/** Declarative command-line flags with typed value parsing. */
class Flags
{
  public:
    /** @param usage one-line synopsis shown in error/help output. */
    explicit Flags(std::string usage);

    /** @name Value-taking options (the next argv entry) */
    /// @{
    Flags &opt(const std::string &name, unsigned *target,
               const std::string &help);
    Flags &opt(const std::string &name, std::uint64_t *target,
               const std::string &help);
    Flags &opt(const std::string &name, double *target,
               const std::string &help);
    Flags &opt(const std::string &name, std::string *target,
               const std::string &help);
    /** Repeatable: every occurrence appends its value, so
     *  `--backend a:1 --backend b:2` collects {"a:1", "b:2"}. */
    Flags &opt(const std::string &name,
               std::vector<std::string> *target,
               const std::string &help);
    /// @}

    /** Boolean switch (no value). */
    Flags &flag(const std::string &name, bool *target,
                const std::string &help);

    /**
     * Parse @p argv.  Non-flag arguments are appended to
     * @p positional (nullptr = positionals are an error).
     * @return false after printing the problem + usage to stderr;
     *         also false (with no error) for -h / --help.
     */
    bool parse(int argc, char **argv,
               std::vector<std::string> *positional = nullptr) const;

    /** The formatted usage text (also printed on parse errors). */
    std::string usage() const;

  private:
    struct Spec
    {
        std::string name;
        std::string valueName; ///< empty for boolean switches
        std::string help;
        /** Parses the value (or flips the switch); empty string on
         *  success, else the error text. */
        std::function<std::string(const std::string &)> apply;
    };

    Flags &add(Spec spec);

    std::string _usage;
    std::vector<Spec> _specs;
};

} // namespace psi

#endif // PSI_BASE_FLAGS_HPP
