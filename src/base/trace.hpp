/**
 * @file
 * psitrace: low-overhead request-span recording.
 *
 * The service layers (psid's EnginePool, psinet's PsiServer, the
 * client-side load generators) record one Span per request stage -
 * decode, queue wait, program-cache compile / hit, engine setup,
 * solve, encode, reply - each carrying the request's trace tag, so a
 * whole request's timeline stitches back together across the threads
 * it crossed.  Spans export as Chrome trace-event JSON (loads in
 * chrome://tracing and Perfetto) via chromeJson().
 *
 * Design constraints, in order:
 *
 *  - Near-zero cost when disabled.  Every record path starts with a
 *    single relaxed atomic load (enabled()); nothing else runs, no
 *    clock is read, no buffer is touched.  Tracing is off by
 *    default.
 *
 *  - Lock-free recording when enabled.  Each recording thread owns a
 *    fixed-capacity append-only buffer registered once (the only
 *    lock, taken once per thread's lifetime).  The owner publishes
 *    each span with a release store of the buffer head; collect()
 *    acquires the head and reads only the published prefix, so a
 *    concurrent snapshot is race-free without a seqlock.  A full
 *    buffer drops new spans (counted) instead of overwriting old
 *    ones - overwrite would race the collector.
 *
 *  - One clock.  All timestamps are steady-clock nanoseconds since a
 *    process-wide trace epoch (nowNs() / toNs()), so spans recorded
 *    on different threads order correctly on one timeline.
 *
 * reset() is the one non-concurrent operation: it must not race
 * active recorders (call it while the traced system is quiescent -
 * between bench rounds, between tests).
 */

#ifndef PSI_BASE_TRACE_HPP
#define PSI_BASE_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace psi {
namespace trace {

/** Request stages, one span name each (see stageName()). */
enum class Stage : std::uint8_t
{
    Request = 0, ///< client: scheduled send -> RESULT received
    Accept,      ///< server: connection accepted
    Decode,      ///< bytes -> message (server SUBMIT / client RESULT)
    Queue,       ///< pool: submit -> worker pickup
    CacheHit,    ///< worker: program served from the ProgramCache
    Compile,     ///< worker: program compiled on this request
    Setup,       ///< worker: program fetch + image load
    Solve,       ///< worker: query compile + run
    Encode,      ///< server: outcome -> RESULT frame bytes
    Reply,       ///< server: frame bytes -> socket / write buffer
    Send,        ///< client: SUBMIT encode + send syscall
    /** @name Scheduling-class attribution of the queue wait.
     *  The pool records exactly one of these alongside each Queue
     *  span, covering the same interval, so traces show whether the
     *  request dispatched in fair order, rode an affinity batch, or
     *  was rescued by the anti-starvation age cap. */
    /// @{
    SchedFair,
    SchedAffinity,
    SchedAged,
    /// @}
    NumStages,
};

const char *stageName(Stage s);

/** One recorded interval on one thread. */
struct Span
{
    std::uint64_t tag = 0;     ///< request trace tag (0 = none)
    std::uint64_t startNs = 0; ///< trace-epoch-relative, monotonic
    std::uint64_t durNs = 0;
    std::uint32_t tid = 0;     ///< recording thread (dense index)
    Stage stage = Stage::Request;
};

namespace detail {
extern std::atomic<bool> g_enabled;
void recordSlow(Stage stage, std::uint64_t tag,
                std::uint64_t startNs, std::uint64_t endNs);
} // namespace detail

/** The global fast-path gate: one relaxed load. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn recording on/off (also anchors the trace epoch). */
void setEnabled(bool on);

/** Monotonic nanoseconds since the process trace epoch. */
std::uint64_t nowNs();

/** Convert a steady_clock time point onto the trace timeline. */
std::uint64_t toNs(std::chrono::steady_clock::time_point tp);

/**
 * Record one span.  A no-op (single relaxed load) when tracing is
 * disabled; when enabled, appends to the calling thread's buffer.
 */
inline void
record(Stage stage, std::uint64_t tag, std::uint64_t startNs,
       std::uint64_t endNs)
{
    if (enabled())
        detail::recordSlow(stage, tag, startNs, endNs);
}

/**
 * Allocate a process-unique request trace tag (never 0).  The server
 * stamps one on each SUBMIT and echoes it in the RESULT, so client
 * and server spans of the same request share a tag.
 */
std::uint64_t nextTag();

/** Snapshot every thread's published spans (safe while recording). */
std::vector<Span> collect();

/** Spans lost to full thread buffers since the last reset(). */
std::uint64_t droppedSpans();

/**
 * Drop all recorded spans (enabled state is untouched).  NOT safe
 * concurrently with active recorders or collect(); call it only
 * while the traced system is quiescent.
 */
void reset();

/** Render spans as Chrome trace-event JSON ("X" complete events). */
std::string chromeJson(const std::vector<Span> &spans);

/**
 * RAII span: stamps the start on construction (when enabled) and
 * records on destruction.  setTag() attaches the request tag once
 * it is known (e.g. after decode assigns one).
 */
class SpanScope
{
  public:
    SpanScope(Stage stage, std::uint64_t tag = 0)
        : _tag(tag), _stage(stage), _armed(enabled())
    {
        if (_armed)
            _start = nowNs();
    }

    ~SpanScope()
    {
        if (_armed)
            detail::recordSlow(_stage, _tag, _start, nowNs());
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    void setTag(std::uint64_t tag) { _tag = tag; }

  private:
    std::uint64_t _start = 0;
    std::uint64_t _tag;
    Stage _stage;
    bool _armed;
};

} // namespace trace
} // namespace psi

#endif // PSI_BASE_TRACE_HPP
