/**
 * @file
 * psireplay request logs: a versioned JSONL record of request
 * traffic, replayable with its inter-arrival timing preserved.
 *
 * A log is plain JSON-lines text.  The first line is a header object
 * that names the format version; every following line is one request:
 *
 *     {"psi_reqlog": 1, "seed": 42, "source": "psi_mklog"}
 *     {"at_ns": 0, "workload": "nreverse30", "tenant": "t0"}
 *     {"at_ns": 812345, "workload": "trail40", "tenant": "t1",
 *      "mode": "fast", "deadline_ns": 250000000}
 *
 * `at_ns` is the arrival offset from the start of the log (not an
 * absolute clock), so a replay at --speed X just divides it.  The
 * parser is strict on purpose - a load harness that silently skips
 * or reinterprets malformed lines replays a *different* workload
 * than the one recorded, and every claim made on top of it is then
 * about the wrong traffic.  Anything unexpected (unknown version,
 * unknown key, negative or non-monotonic offsets, junk after the
 * closing brace) fails the whole parse with a "line N: ..." message.
 *
 * Versioning rule: adding a field, changing a default, or widening
 * an accepted value set is a new version number.  Readers accept
 * exactly the versions they know (currently: 1); writers always
 * stamp kVersion.  That is what makes a recorded log a durable
 * artifact: a v1 line means the same request forever.
 *
 * synthesize() generates production-shaped logs deterministically
 * from a seed: bursty MMPP arrivals (a two-state Markov-modulated
 * Poisson process - calm and burst periods with exponential dwell
 * times), heavy-tailed Zipf tenant skew, and configurable
 * mode/deadline mixes.  Same seed + same config = byte-identical
 * log, so perf numbers taken on a synthetic log cite one integer.
 */

#ifndef PSI_BASE_REQLOG_HPP
#define PSI_BASE_REQLOG_HPP

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "interp/machine.hpp"

namespace psi {
namespace reqlog {

/** The format version this build reads and writes. */
constexpr std::uint32_t kVersion = 1;

/** One request line. */
struct Entry
{
    std::uint64_t atNs = 0;       ///< arrival offset from log start
    std::string workload;         ///< registry workload id
    std::string tenant;           ///< "" = the shared default tenant
    interp::ExecMode mode = interp::ExecMode::Fidelity;
    std::uint64_t deadlineNs = 0; ///< whole-request budget; 0 = none
    std::size_t line = 0;         ///< 1-based source line (diagnostics
                                  ///< only; not serialized)
};

/** The header line. */
struct Header
{
    std::uint32_t version = kVersion;
    std::uint64_t seed = 0; ///< generator seed; 0 = recorded traffic
    std::string source;     ///< producing tool, e.g. "psi_mklog"
};

/** A parsed (or about-to-be-written) request log. */
struct Log
{
    Header header;
    std::vector<Entry> entries;

    /** Offset of the last entry (the log's time span). */
    std::uint64_t
    spanNs() const
    {
        return entries.empty() ? 0 : entries.back().atNs;
    }
};

/**
 * Parse a whole log.  Returns nullopt and sets @p error to a
 * one-line "line N: ..." message on the first malformed line; a log
 * is either fully valid or rejected, never partially loaded.  Empty
 * lines are permitted (and skipped); everything else must parse.
 */
std::optional<Log> parse(std::istream &in, std::string *error);

/** parse() over a file; the error message names the path. */
std::optional<Log> parseFile(const std::string &path,
                             std::string *error);

/** @name Serialization (always writes kVersion lines) */
/// @{
std::string formatHeader(const Header &header);
std::string formatEntry(const Entry &entry);
void write(std::ostream &out, const Log &log);
bool writeFile(const std::string &path, const Log &log,
               std::string *error);
/// @}

/**
 * Check every entry's workload id against @p known (typically
 * programs::findProgramById).  On the first unknown id returns false
 * with an actionable "line N: unknown workload '...'" message.
 */
bool validateWorkloads(
    const Log &log,
    const std::function<bool(const std::string &)> &known,
    std::string *error);

/** One workload's slice of a synthetic log. */
struct GenWorkload
{
    std::string id;
    std::uint64_t share = 1; ///< relative traffic share
};

/** Shape of a synthetic production-like log. */
struct GenConfig
{
    std::uint64_t seed = 1;
    std::uint64_t requests = 1000;
    /** Calm-state arrival rate (req/s); must be > 0. */
    double rate = 200.0;
    /** Burst-state rate multiplier (1 = no bursts). */
    double burst = 8.0;
    /** Mean dwell time in each MMPP state, seconds. */
    double burstDwellS = 0.25;
    /** Tenant population ("t0".."tN-1"); at least 1. */
    unsigned tenants = 4;
    /** Zipf exponent for tenant skew (0 = uniform).  At the default
     *  1.2, t0 sends a few times the traffic of t1, which sends a
     *  few times t2's, ... - the heavy-tail shape multi-tenant
     *  deployments actually see. */
    double skew = 1.2;
    /** Fraction of requests submitted in fast mode. */
    double fastShare = 0.0;
    /** Fraction of requests carrying a deadline budget. */
    double deadlineShare = 0.0;
    std::uint64_t deadlineLoMs = 50;
    std::uint64_t deadlineHiMs = 500;
    /** Workload mix; must be non-empty with positive shares. */
    std::vector<GenWorkload> workloads;
};

/**
 * Deterministically generate a log from @p config (same seed + same
 * config = byte-identical output).  The header records the seed and
 * "psi_mklog" as the source.  fatal() on a nonsensical config (no
 * workloads, zero rate).
 */
Log synthesize(const GenConfig &config);

} // namespace reqlog
} // namespace psi

#endif // PSI_BASE_REQLOG_HPP
