#include "base/table.hpp"

#include <algorithm>
#include <sstream>

#include "base/logging.hpp"
#include "base/strutil.hpp"

namespace psi {

void
Table::setHeader(std::vector<std::string> header)
{
    _header = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    PSI_ASSERT(_header.empty() || row.size() == _header.size(),
               "row width ", row.size(), " != header width ",
               _header.size());
    _rows.push_back(Row{false, std::move(row)});
}

void
Table::addSeparator()
{
    _rows.push_back(Row{true, {}});
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_header.size());
    for (std::size_t i = 0; i < _header.size(); ++i)
        widths[i] = _header[i].size();
    for (const auto &row : _rows) {
        if (row.separator)
            continue;
        for (std::size_t i = 0; i < row.cells.size(); ++i)
            widths[i] = std::max(widths[i], row.cells[i].size());
    }

    std::size_t line_width = 0;
    for (std::size_t w : widths)
        line_width += w + 2;

    os << _title << "\n";
    os << std::string(line_width, '=') << "\n";
    if (!_header.empty()) {
        for (std::size_t i = 0; i < _header.size(); ++i) {
            os << (i == 0 ? strutil::padRight(_header[i], widths[i])
                          : strutil::padLeft(_header[i], widths[i]))
               << "  ";
        }
        os << "\n" << std::string(line_width, '-') << "\n";
    }
    for (const auto &row : _rows) {
        if (row.separator) {
            os << std::string(line_width, '-') << "\n";
            continue;
        }
        for (std::size_t i = 0; i < row.cells.size(); ++i) {
            // First column (labels) left-aligned, the rest right.
            os << (i == 0 ? strutil::padRight(row.cells[i], widths[i])
                          : strutil::padLeft(row.cells[i], widths[i]))
               << "  ";
        }
        os << "\n";
    }
    os << std::string(line_width, '=') << "\n";
}

std::string
Table::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace psi
