#include "base/mixspec.hpp"

#include "base/strutil.hpp"

namespace psi {
namespace mixspec {

namespace {

/** Parse a positive decimal integer; reject sign characters, empty
 *  strings, trailing junk, zero and values above kMaxShare. */
bool
parsePositive(const std::string &s, std::uint64_t &out,
              std::string &why)
{
    if (s.empty()) {
        why = "empty number";
        return false;
    }
    std::uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9') {
            why = "'" + s + "' is not a positive integer";
            return false;
        }
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
        if (v > kMaxShare) {
            why = "'" + s + "' exceeds the maximum of " +
                  std::to_string(kMaxShare);
            return false;
        }
    }
    if (v == 0) {
        why = "must be >= 1";
        return false;
    }
    out = v;
    return true;
}

} // namespace

bool
parseMixSpec(const std::string &spec, std::vector<MixEntry> &out,
             std::string &error)
{
    out.clear();
    std::uint64_t shareSum = 0;
    for (const std::string &entry : strutil::split(spec, ',')) {
        std::vector<std::string> parts = strutil::split(entry, ':');
        if (parts.empty() || parts[0].empty()) {
            error = "bad --mix entry '" + entry +
                    "': empty workload name "
                    "(want workload:share[:weight])";
            out.clear();
            return false;
        }
        if (parts.size() > 3) {
            error = "bad --mix entry '" + entry +
                    "': too many fields "
                    "(want workload:share[:weight])";
            out.clear();
            return false;
        }
        MixEntry lane;
        lane.workload = parts[0];
        std::string why;
        if (parts.size() > 1 &&
            !parsePositive(parts[1], lane.share, why)) {
            error = "bad --mix share in '" + entry + "': " + why;
            out.clear();
            return false;
        }
        if (parts.size() > 2 &&
            !parsePositive(parts[2], lane.weight, why)) {
            error = "bad --mix weight in '" + entry + "': " + why;
            out.clear();
            return false;
        }
        shareSum += lane.share;
        out.push_back(std::move(lane));
    }
    if (out.empty() || shareSum == 0) {
        // Unreachable via parsing (every share is >= 1), but guards
        // future callers constructing entries by hand: an empty WRR
        // pattern means laneOf() divides by zero.
        error = "--mix needs at least one lane with a positive share";
        out.clear();
        return false;
    }
    return true;
}

std::vector<std::uint32_t>
wrrPattern(const std::vector<MixEntry> &entries)
{
    std::vector<std::uint32_t> pattern;
    std::uint64_t maxShare = 0;
    for (const MixEntry &lane : entries)
        maxShare = std::max(maxShare, lane.share);
    for (std::uint64_t r = 0; r < maxShare; ++r)
        for (std::size_t l = 0; l < entries.size(); ++l)
            if (entries[l].share > r)
                pattern.push_back(static_cast<std::uint32_t>(l));
    return pattern;
}

} // namespace mixspec
} // namespace psi
