#include "base/json.hpp"

#include "base/stats.hpp"

namespace psi {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::key(std::string_view k)
{
    if (!_first)
        _body += ", ";
    _first = false;
    // Keys are escaped like values: most are compile-time literals,
    // but per-tenant keys carry caller-supplied names, and an
    // unescaped quote or backslash there corrupts the whole object.
    _body += '"';
    _body += jsonEscape(k);
    _body += "\": ";
}

JsonWriter &
JsonWriter::u(std::string_view k, std::uint64_t v)
{
    key(k);
    _body += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::f(std::string_view k, double v, int prec)
{
    key(k);
    _body += stats::fixed(v, prec);
    return *this;
}

JsonWriter &
JsonWriter::num(std::string_view k, std::string_view literal)
{
    key(k);
    _body += literal;
    return *this;
}

JsonWriter &
JsonWriter::s(std::string_view k, std::string_view v)
{
    key(k);
    _body += '"';
    _body += jsonEscape(v);
    _body += '"';
    return *this;
}

std::string
JsonWriter::str() const
{
    return "{" + _body + "}";
}

} // namespace psi
