/**
 * @file
 * Fast-engine control core: load, token-threaded main loop, calls,
 * clause trial, choice points, environments, backtracking, solution
 * extraction.  Transliterated statement-for-statement from
 * interp/engine.cpp with the sequencer accounting removed; every
 * state transition (register updates, allocation order, frame and
 * trail decisions) is kept identical so answers are byte-identical.
 */

#include "fast/fast_engine.hpp"

#include <cstring>

#include "base/logging.hpp"
#include "kl0/reader.hpp"

namespace psi {
namespace fast {

namespace {

/** Make the self-referencing word of an unbound cell. */
TaggedWord
unboundAt(const LogicalAddr &addr)
{
    return {Tag::Ref, addr.pack()};
}

TaggedWord
intWord(std::uint32_t v)
{
    return {Tag::Int, v};
}

} // namespace

void
FlatArea::clear()
{
    for (std::uint32_t idx : _mapped)
        std::memset(_pages[idx].get(), 0,
                    kPageWords * sizeof(TaggedWord));
}

TaggedWord *
FlatArea::page(std::uint32_t idx)
{
    std::unique_ptr<TaggedWord[]> &p = _pages[idx];
    if (!p) {
        p.reset(new TaggedWord[kPageWords]());
        _mapped.push_back(idx);
    }
    return p.get();
}

FastEngine::FastEngine() : _codegen(_qmem, _syms) {}

void
FastEngine::load(const kl0::CompiledProgram &image)
{
    for (FlatArea &a : _area)
        a.clear();
    _qmem.reset();
    _syms = image.symbols();
    _codegen.restore(image.codegen());
    // Query code compiled against this image must use the same
    // compile options (a $queryN/0 predicate is never indexed, but
    // the builtin specialization must agree with the image).
    _codegen.setOptions(image.options());
    for (const PokeRecord &p : image.image()) {
        _qmem.poke(p.addr, p.word);
        write(p.addr, p.word);
    }
    resetRun();
    _vecTop = kl0::kVectorBase;
    _maxOutputBytes = 1 << 20;
    _inProcessCall = false;
    _warnedUndefined.clear();
    _arithOps.clear(); // functor indices are per-image
    _loaded = true;
}

interp::RunResult
FastEngine::solve(const std::string &query_text,
                  const RunLimits &limits)
{
    return solve(kl0::parseTerm(query_text), limits);
}

interp::RunResult
FastEngine::solve(const kl0::TermPtr &goal, const RunLimits &limits)
{
    // The shared CodeGen emits into the scratch MemorySystem; mirror
    // its poke log into the flat heap so the query code, clause table
    // and directory entry land at the same logical addresses the
    // fidelity engine executes from.
    _queryPokes.clear();
    _qmem.setPokeLog(&_queryPokes);
    kl0::QueryCode qc = _codegen.compileQuery(goal);
    _qmem.setPokeLog(nullptr);
    for (const PokeRecord &p : _queryPokes)
        write(p.addr, p.word);
    return run(qc, limits);
}

void
FastEngine::resetRun()
{
    _gt = _lt = _ct = _tt = interp::kStackBase;
    _b = interp::kNoChoice;
    _hb = _hl = 0;
    _cp = 0;
    _act = Activation{};
    _act.globalBase = _gt;
    _curBuf = 0;
    _inferences = 0;
    _idxHits = 0;
    _idxFallbacks = 0;
    _clauseTries = 0;
    _out.clear();
    _failFlag = false;
}

interp::RunResult
FastEngine::run(const kl0::QueryCode &qc, const RunLimits &limits)
{
    resetRun();
    _dispatches = 0;
    _maxOutputBytes = limits.maxOutputBytes;

    RunResult result;
    bool started = doCall(qc.functorIdx, 0, true);
    if (!started)
        started = backtrack();
    if (started)
        mainLoop(qc, result, limits);
    result.stepLimitHit = result.status == interp::RunStatus::StepLimit;

    result.inferences = _inferences;
    // No accounting in fast mode: steps and model time are zero.
    result.steps = 0;
    result.timeNs = 0;
    result.output = std::move(_out);
    _out.clear();
    return result;
}

void
FastEngine::mainLoop(const kl0::QueryCode &qc, RunResult &result,
                     const RunLimits &limits)
{
    const interp::Deadline deadline(limits.deadlineNs);
    std::uint32_t poll = 0;
    TaggedWord w;

#if defined(__GNUC__) || defined(__clang__)
    // Token-threaded dispatch: the instruction tag indexes a label
    // table directly, one indirect jump per body instruction word.
    // Indexed by Tag value; only the six instruction tokens are
    // executable, everything else is a corrupt-image panic.
    static const void *const kOp[static_cast<int>(Tag::NumTags)] = {
        &&op_bad, // Undef
        &&op_bad, // Ref
        &&op_bad, // Atom
        &&op_bad, // Int
        &&op_bad, // Nil
        &&op_bad, // List
        &&op_bad, // Struct
        &&op_bad, // Functor
        &&op_bad, // Vector
        &&op_bad, // SkelVar
        &&op_bad, // ClauseHeader
        &&op_bad, // ClauseRef
        &&op_bad, // EndClauses
        &&op_bad, // HConst
        &&op_bad, // HInt
        &&op_bad, // HNil
        &&op_bad, // HVarF
        &&op_bad, // HVarS
        &&op_bad, // HList
        &&op_bad, // HStruct
        &&op_bad, // HGroundList
        &&op_bad, // HGroundStruct
        &&op_bad, // HVoid
        &&op_call,    // Call
        &&op_call,    // CallLast
        &&op_builtin, // CallBuiltin
        &&op_bad, // PackedArgs
        &&op_bad, // AConst
        &&op_bad, // AInt
        &&op_bad, // ANil
        &&op_bad, // AVar
        &&op_bad, // AVoid
        &&op_bad, // AList
        &&op_bad, // AStruct
        &&op_bad, // AGroundList
        &&op_bad, // AGroundStruct
        &&op_bad, // AExpr
        &&op_cut,     // CutOp
        &&op_proceed, // Proceed
        &&op_bad, // IndexRef
        &&op_bad, // IndexRoot
        &&op_bad, // IndexHash
        &&op_is,  // CallIs
        &&op_cmp, // CallCmp
    };
#define PSI_FAST_DISPATCH() goto *kOp[static_cast<int>(w.tag)]
#else
#define PSI_FAST_DISPATCH()                                           \
    switch (w.tag) {                                                  \
      case Tag::Call:                                                 \
      case Tag::CallLast:                                             \
        goto op_call;                                                 \
      case Tag::CallBuiltin:                                          \
        goto op_builtin;                                              \
      case Tag::CallIs:                                               \
        goto op_is;                                                   \
      case Tag::CallCmp:                                              \
        goto op_cmp;                                                  \
      case Tag::CutOp:                                                \
        goto op_cut;                                                  \
      case Tag::Proceed:                                              \
        goto op_proceed;                                              \
      default:                                                        \
        goto op_bad;                                                  \
    }
#endif

next:
    // maxSteps is a dispatch-count safety valve here (the fidelity
    // engine counts microinstructions against the same field).
    if (++_dispatches > limits.maxSteps) {
        result.status = interp::RunStatus::StepLimit;
        return;
    }
    // Wall-clock deadline, polled every 4096 dispatches so the clock
    // read is amortized away (same granularity as the fidelity loop).
    if (deadline.armed() && (++poll & 0xfffu) == 0 &&
        deadline.expired()) {
        result.status = interp::RunStatus::Timeout;
        return;
    }

    if (_failFlag) {
        _failFlag = false;
        if (!backtrack())
            return;
        goto next;
    }

    w = heapRead(_cp);
    ++_cp;
    PSI_FAST_DISPATCH();

op_call: {
    std::uint32_t goal_cp = _cp - 1;
    std::uint32_t f = w.data;
    loadArgs(_syms.functorArity(f));
    if (!doCall(f, goal_cp, w.tag == Tag::CallLast))
        _failFlag = true;
    goto next;
}

op_builtin: {
    auto b = static_cast<kl0::Builtin>(w.data);
    loadArgs(kl0::builtinArity(b));
    if (!execBuiltin(b))
        _failFlag = true;
    goto next;
}

op_is: {
    loadArgs(2);
    if (!execIs())
        _failFlag = true;
    goto next;
}

op_cmp: {
    loadArgs(2);
    if (!arithCompare(static_cast<kl0::Builtin>(w.data)))
        _failFlag = true;
    goto next;
}

op_cut:
    doCut();
    goto next;

op_proceed: {
    if (_act.contEnv == interp::kRootEnv) {
        extractSolution(qc, result);
        if (static_cast<int>(result.solutions.size()) >=
            limits.maxSolutions) {
            return;
        }
        _failFlag = true;
        goto next;
    }
    // Determinate local-frame reclamation.
    if (_act.frame.kind == FrameLoc::Kind::Stack &&
        _act.frame.addr + _act.nlocals == _lt &&
        _hl <= _act.frame.addr) {
        _lt = _act.frame.addr;
    }
    std::uint32_t rcp = _act.contCP;
    restoreEnv(_act.contEnv);
    _cp = rcp;
    goto next;
}

op_bad:
    panic("bad instruction word tag '", tagName(w.tag),
          "' at heap:", _cp - 1);

#undef PSI_FAST_DISPATCH
}

void
FastEngine::loadArgs(std::uint32_t arity)
{
    if (arity == 0)
        return;

    TaggedWord w = heapRead(_cp);
    if (w.tag == Tag::PackedArgs) {
        ++_cp;
        for (std::uint32_t i = 0; i < arity; ++i) {
            std::uint32_t op = (w.data >> (8 * i)) & 0xff;
            std::uint32_t type = op >> 5;
            std::uint32_t idx = op & 0x1f;
            TaggedWord a;
            switch (type) {
              case kl0::kPackLocalVar:
                a = fetchVarArg(VarSlot{false,
                                static_cast<std::uint16_t>(idx)});
                break;
              case kl0::kPackGlobalVar:
                a = fetchVarArg(VarSlot{true,
                                static_cast<std::uint16_t>(idx)});
                break;
              case kl0::kPackVoid:
                a = newGlobalCell();
                break;
              case kl0::kPackSmallInt:
                a = intWord(idx);
                break;
              default:
                panic("bad packed operand type ", type);
            }
            _a[i] = a;
        }
        return;
    }

    for (std::uint32_t i = 0; i < arity; ++i) {
        TaggedWord d = heapRead(_cp);
        ++_cp;
        TaggedWord a;
        switch (d.tag) {
          case Tag::AConst:
            a = {Tag::Atom, d.data};
            break;
          case Tag::AInt:
            a = {Tag::Int, d.data};
            break;
          case Tag::ANil:
            a = {Tag::Nil, 0};
            break;
          case Tag::AVoid:
            a = newGlobalCell();
            break;
          case Tag::AVar:
            a = fetchVarArg(VarSlot::decode(d.data));
            break;
          case Tag::AList:
            a = instantiate(LogicalAddr::unpack(d.data).offset, true);
            break;
          case Tag::AStruct:
            a = instantiate(LogicalAddr::unpack(d.data).offset, false);
            break;
          case Tag::AGroundList:
            // Ground terms are shared from the heap image.
            a = {Tag::List, d.data};
            break;
          case Tag::AGroundStruct:
          case Tag::AExpr:
            a = {Tag::Struct, d.data};
            break;
          default:
            panic("bad argument descriptor '", tagName(d.tag), "'");
        }
        _a[i] = a;
    }
}

TaggedWord
FastEngine::readLocal(std::uint32_t slot)
{
    switch (_act.frame.kind) {
      case FrameLoc::Kind::Buf0:
        return _fbuf[0][slot];
      case FrameLoc::Kind::Buf1:
        return _fbuf[1][slot];
      case FrameLoc::Kind::Stack:
        return read(LogicalAddr(Area::Local, _act.frame.addr + slot));
      default:
        panic("local access with no frame");
    }
}

void
FastEngine::writeLocal(std::uint32_t slot, const TaggedWord &w)
{
    switch (_act.frame.kind) {
      case FrameLoc::Kind::Buf0:
        _fbuf[0][slot] = w;
        return;
      case FrameLoc::Kind::Buf1:
        _fbuf[1][slot] = w;
        return;
      case FrameLoc::Kind::Stack:
        write(LogicalAddr(Area::Local, _act.frame.addr + slot), w);
        return;
      default:
        panic("local write with no frame");
    }
}

TaggedWord
FastEngine::fetchVarArg(const VarSlot &vs)
{
    if (vs.global) {
        return {Tag::Ref,
                LogicalAddr(Area::Global,
                            _act.globalBase + vs.index).pack()};
    }
    TaggedWord v = readLocal(vs.index);
    if (v.tag == Tag::Undef) {
        // First use of an uninitialized local as an argument: the
        // variable is globalized so no reference into a frame buffer
        // (or into a dying frame) can ever be created.
        TaggedWord ref = newGlobalCell();
        if (_act.frame.kind == FrameLoc::Kind::Stack) {
            // A flushed frame can be re-read by a choice-point retry,
            // so the slot initialization must be undoable.
            bind(LogicalAddr(Area::Local, _act.frame.addr + vs.index),
                 ref);
        } else {
            writeLocal(vs.index, ref);
        }
        return ref;
    }
    return v;
}

TaggedWord
FastEngine::newGlobalCell()
{
    LogicalAddr cell(Area::Global, _gt);
    write(cell, unboundAt(cell));
    ++_gt;
    return {Tag::Ref, cell.pack()};
}

bool
FastEngine::doCall(std::uint32_t functor_idx, std::uint32_t goal_cp,
                   bool last_call)
{
    ++_inferences;

    TaggedWord dir = heapRead(kl0::kDirBase + functor_idx);
    if (dir.tag == Tag::IndexRef)
        dir = {Tag::ClauseRef, resolveIndex(dir.data)};
    if (dir.tag != Tag::ClauseRef) {
        if (functor_idx >= _warnedUndefined.size())
            _warnedUndefined.resize(functor_idx + 1, false);
        if (!_warnedUndefined[functor_idx]) {
            _warnedUndefined[functor_idx] = true;
            warn("undefined predicate ",
                 _syms.functorName(functor_idx), "/",
                 _syms.functorArity(functor_idx));
        }
        return false;
    }

    std::uint32_t cont_cp;
    std::uint32_t cont_env;
    if (last_call) {
        // Tail-recursion optimization: the callee inherits this
        // activation's continuation; no environment is pushed.
        cont_cp = _act.contCP;
        cont_env = _act.contEnv;
    } else {
        if (_act.frame.inBuffer())
            flushFrame();
        pushEnvFrame();
        cont_cp = _cp;
        cont_env = _act.selfEnv;
    }

    return tryClauses(dir.data, goal_cp,
                      _syms.functorArity(functor_idx), cont_cp,
                      cont_env, _b);
}

std::uint32_t
FastEngine::resolveIndex(std::uint32_t root)
{
    // Same walk as interp::Engine::resolveIndex, minus the sequencer
    // accounting: dereference A1, pick the class slot, and hash the
    // principal constant/functor to a pre-built ClauseRef chain (an
    // index exists only for predicates of arity > 0, so A1 is always
    // loaded here).
    Deref d = deref(_a[0]);
    TaggedWord a1 =
        d.unbound ? TaggedWord{Tag::Ref, d.cell.pack()} : d.word;

    std::uint32_t slot;
    std::uint32_t key = 0;
    Tag key_tag = Tag::Undef;
    switch (a1.tag) {
      case Tag::Atom:
        slot = kl0::kIdxSlotAtom;
        key = a1.data;
        key_tag = Tag::Atom;
        break;
      case Tag::Int:
        slot = kl0::kIdxSlotInt;
        key = a1.data;
        key_tag = Tag::Int;
        break;
      case Tag::Nil:
        slot = kl0::kIdxSlotNil;
        break;
      case Tag::List:
        slot = kl0::kIdxSlotList;
        break;
      case Tag::Struct:
        slot = kl0::kIdxSlotStruct;
        key = read(LogicalAddr::unpack(a1.data)).data;
        key_tag = Tag::Functor;
        break;
      default:
        // Unbound - or a tag the index does not cover (vectors):
        // walk the full linear chain.
        ++_idxFallbacks;
        return heapRead(root).data;
    }
    ++_idxHits;

    TaggedWord w = heapRead(root + slot);
    if (w.tag == Tag::ClauseRef)
        return w.data;
    PSI_ASSERT(w.tag == Tag::IndexHash, "bad index slot word");

    std::uint32_t block = w.data;
    std::uint32_t nslots = heapRead(block).data;
    std::uint32_t h = kl0::indexKeyHash(key) & (nslots - 1);
    for (;;) {
        TaggedWord kw = heapRead(block + 2 + 2 * h);
        if (kw.tag == Tag::Undef) {
            // No clause mentions this key: only the variable-headed
            // clauses can match.
            return heapRead(block + 1).data;
        }
        if (kw.tag == key_tag && kw.data == key)
            return heapRead(block + 3 + 2 * h).data;
        // Linear probe (load factor <= 1/2 guarantees an empty slot).
        h = (h + 1) & (nslots - 1);
    }
}

bool
FastEngine::tryClauses(std::uint32_t table_addr, std::uint32_t goal_cp,
                       std::uint32_t arity, std::uint32_t cont_cp,
                       std::uint32_t cont_env, std::uint32_t cut_b)
{
    (void)arity;
    // Caller context captured for the choice point (deep retries
    // reload arguments against this frame).
    FrameLoc caller_frame = _act.frame;
    std::uint32_t caller_gb = _act.globalBase;
    std::uint32_t caller_nlocals = _act.nlocals;

    // Trial snapshot: stack tops at call time, so a failed head
    // unification can be undone without touching the control stack
    // (shallow backtracking).
    std::uint32_t old_hb = _hb;
    std::uint32_t old_hl = _hl;
    std::uint32_t trial_gt = _gt;
    std::uint64_t trial_tt = trailTop();

    std::uint32_t pos = table_addr;
    TaggedWord cur = heapRead(pos);
    if (cur.tag != Tag::ClauseRef)
        return false;

    for (;;) {
        ++_clauseTries;
        TaggedWord next = heapRead(pos + 1);
        bool has_next = next.tag == Tag::ClauseRef;

        // Bind conditionally against the trial snapshot so a failing
        // head unification is fully undoable.
        _hb = trial_gt;
        _hl = _lt;

        if (enterClause(cur.data, cont_cp, cont_env, cut_b)) {
            if (has_next) {
                // Commit with alternatives: only now does control
                // information go to the control stack.
                std::uint32_t cfe;
                if (caller_frame.inBuffer()) {
                    // Lazy flush: a deep retry must be able to
                    // re-read the caller's locals from memory.
                    const TaggedWord *buf =
                        _fbuf[caller_frame.kind == FrameLoc::Kind::Buf0
                                  ? 0
                                  : 1];
                    std::uint32_t addr = _lt;
                    for (std::uint32_t i = 0; i < caller_nlocals;
                         ++i) {
                        write(LogicalAddr(Area::Local, _lt + i),
                              buf[i]);
                    }
                    _lt += caller_nlocals;
                    cfe = FrameLoc{FrameLoc::Kind::Stack,
                                   addr}.encode();
                } else {
                    cfe = caller_frame.encode();
                }
                pushChoicePoint(goal_cp, cont_cp, cont_env, cfe,
                                caller_gb, trial_gt, _lt,
                                static_cast<std::uint32_t>(trial_tt),
                                cut_b, pos + 1);
                _hb = trial_gt;
                _hl = _lt;
            } else {
                _hb = old_hb;
                _hl = old_hl;
            }
            return true;
        }

        // Shallow retry from the trial snapshot.
        unwindTrail(trial_tt);
        _gt = trial_gt;
        // Reclaim any local frame the failed candidate allocated
        // (no-op with frame buffers: _hl is the trial-start local
        // top).
        _lt = _hl;
        if (!has_next) {
            _hb = old_hb;
            _hl = old_hl;
            return false;
        }
        pos += 1;
        cur = next;
    }
}

void
FastEngine::flushFrame()
{
    PSI_ASSERT(_act.frame.inBuffer(), "flush of a non-buffer frame");
    const TaggedWord *buf =
        _fbuf[_act.frame.kind == FrameLoc::Kind::Buf0 ? 0 : 1];
    std::uint32_t addr = _lt;
    for (std::uint32_t i = 0; i < _act.nlocals; ++i)
        write(LogicalAddr(Area::Local, _lt + i), buf[i]);
    _lt += _act.nlocals;
    _act.frame = FrameLoc{FrameLoc::Kind::Stack, addr};
}

void
FastEngine::pushEnvFrame()
{
    std::uint32_t env = _ct;
    const std::uint32_t words[interp::kFrameWords] = {
        _act.contCP,
        _act.contEnv,
        _act.frame.encode(),
        _act.globalBase,
        _act.cutB,
        _act.nlocals,
        _act.clauseAddr,
        0, 0, 0,
    };
    for (std::uint32_t i = 0; i < interp::kFrameWords; ++i)
        write(LogicalAddr(Area::Control, _ct + i), intWord(words[i]));
    _ct += interp::kFrameWords;
    _act.selfEnv = env;
}

void
FastEngine::restoreEnv(std::uint32_t env_addr)
{
    PSI_ASSERT(env_addr != interp::kRootEnv && env_addr != 0,
               "bad environment address");
    std::uint32_t w[7];
    for (int i = 0; i < 7; ++i)
        w[i] = read(LogicalAddr(Area::Control, env_addr + i)).data;
    _act.contCP = w[interp::kEnvContCP];
    _act.contEnv = w[interp::kEnvContEnv];
    _act.frame = FrameLoc::decode(w[interp::kEnvFrameLoc]);
    _act.globalBase = w[interp::kEnvGlobalBase];
    _act.cutB = w[interp::kEnvCutB];
    _act.nlocals = w[interp::kEnvNLocals];
    _act.clauseAddr = w[interp::kEnvClauseAddr];

    if (env_addr + interp::kFrameWords == _ct &&
        (_b == interp::kNoChoice || _b < env_addr)) {
        // Determinate return to the top frame: reclaim it.
        _ct = env_addr;
        _act.selfEnv = 0;
    } else {
        _act.selfEnv = env_addr;
    }
}

void
FastEngine::pushChoicePoint(std::uint32_t goal_cp,
                            std::uint32_t cont_cp,
                            std::uint32_t cont_env,
                            std::uint32_t caller_frame_enc,
                            std::uint32_t caller_global_base,
                            std::uint32_t saved_gt,
                            std::uint32_t saved_lt,
                            std::uint32_t saved_tt,
                            std::uint32_t saved_b,
                            std::uint32_t next_clause_addr)
{
    std::uint32_t cp_addr = _ct;
    const std::uint32_t words[interp::kFrameWords] = {
        goal_cp,
        caller_frame_enc,
        caller_global_base,
        cont_cp,
        cont_env,
        saved_gt,
        saved_lt,
        saved_tt,
        saved_b,
        next_clause_addr,
    };
    for (std::uint32_t i = 0; i < interp::kFrameWords; ++i)
        write(LogicalAddr(Area::Control, _ct + i), intWord(words[i]));
    _ct += interp::kFrameWords;
    _b = cp_addr;
}

bool
FastEngine::enterClause(std::uint32_t clause_addr,
                        std::uint32_t cont_cp, std::uint32_t cont_env,
                        std::uint32_t cut_b)
{
    TaggedWord hdr = heapRead(clause_addr);
    PSI_ASSERT(hdr.tag == Tag::ClauseHeader, "bad clause address");
    std::uint32_t arity = hdr.data & 0xff;
    std::uint32_t nlocals = (hdr.data >> 8) & 0xff;
    std::uint32_t nglobals = (hdr.data >> 16) & 0xff;

    std::uint32_t global_base = _gt;
    for (std::uint32_t g = 0; g < nglobals; ++g) {
        LogicalAddr cell(Area::Global, _gt + g);
        write(cell, unboundAt(cell));
    }
    _gt += nglobals;

    FrameLoc frame;
    if (nlocals > 0) {
        int nb = 1 - _curBuf;
        frame.kind = nb == 0 ? FrameLoc::Kind::Buf0
                             : FrameLoc::Kind::Buf1;
        TaggedWord *buf = _fbuf[nb];
        for (std::uint32_t i = 0; i < nlocals; ++i)
            buf[i] = TaggedWord{};
        _curBuf = nb;
    }

    _act.contCP = cont_cp;
    _act.contEnv = cont_env;
    _act.frame = frame;
    _act.globalBase = global_base;
    _act.cutB = cut_b;
    _act.nlocals = nlocals;
    _act.clauseAddr = clause_addr;
    _act.selfEnv = 0;

    std::uint32_t dp = clause_addr + 1;
    for (std::uint32_t i = 0; i < arity; ++i) {
        TaggedWord desc = heapRead(dp + i);
        if (!unifyHead(desc, _a[i]))
            return false;
    }
    _cp = dp + arity;
    return true;
}

bool
FastEngine::backtrack()
{
    for (;;) {
        if (_b == interp::kNoChoice)
            return false;

        // Deep backtracking: restore the machine from the newest
        // choice-point frame.
        std::uint32_t w[interp::kFrameWords];
        for (std::uint32_t i = 0; i < interp::kFrameWords; ++i)
            w[i] = read(LogicalAddr(Area::Control, _b + i)).data;

        unwindTrail(w[interp::kCpSavedTT]);
        _gt = w[interp::kCpSavedGT];
        _lt = w[interp::kCpSavedLT];
        // The frame is consumed: remaining candidates run a fresh
        // trial loop, which pushes a new choice point only if one is
        // still needed.
        _ct = _b;
        _b = w[interp::kCpSavedB];
        reloadTrailBounds();

        // Rebuild the caller context and reload the goal arguments
        // from the instruction code (DEC-10-interpreter style retry).
        _act.frame = FrameLoc::decode(w[interp::kCpCallerFrame]);
        _act.globalBase = w[interp::kCpCallerGlobal];

        std::uint32_t goal_cp = w[interp::kCpGoalCP];
        std::uint32_t arity = 0;
        if (goal_cp != 0) {
            TaggedWord call = heapRead(goal_cp);
            PSI_ASSERT(call.tag == Tag::Call ||
                           call.tag == Tag::CallLast,
                       "retry at a non-call word");
            _cp = goal_cp + 1;
            arity = _syms.functorArity(call.data);
            loadArgs(arity);
        }

        if (tryClauses(w[interp::kCpNextClause], goal_cp, arity,
                       w[interp::kCpContCP], w[interp::kCpContEnv],
                       w[interp::kCpSavedB])) {
            return true;
        }
        // Every remaining candidate failed; fail into the next
        // older choice point.
    }
}

void
FastEngine::reloadTrailBounds()
{
    if (_b == interp::kNoChoice) {
        _hb = 0;
        _hl = 0;
        return;
    }
    _hb = read(LogicalAddr(Area::Control,
                           _b + interp::kCpSavedGT)).data;
    _hl = read(LogicalAddr(Area::Control,
                           _b + interp::kCpSavedLT)).data;
}

void
FastEngine::doCut()
{
    if (_b != _act.cutB) {
        _b = _act.cutB;
        reloadTrailBounds();
    }
}

void
FastEngine::extractSolution(const kl0::QueryCode &qc,
                            RunResult &result)
{
    interp::Solution sol;
    for (const auto &kv : qc.vars) {
        const kl0::SlotRef &sr = kv.second;
        TaggedWord w;
        if (sr.global) {
            w = read(LogicalAddr(Area::Global,
                                 _act.globalBase + sr.index));
        } else {
            switch (_act.frame.kind) {
              case FrameLoc::Kind::Stack:
                w = read(LogicalAddr(Area::Local,
                                     _act.frame.addr + sr.index));
                break;
              case FrameLoc::Kind::Buf0:
                w = _fbuf[0][sr.index];
                break;
              case FrameLoc::Kind::Buf1:
                w = _fbuf[1][sr.index];
                break;
              default:
                w = TaggedWord{};
            }
        }
        if (w.tag == Tag::Undef) {
            sol.bindings[kv.first] = kl0::Term::var("_" + kv.first);
        } else {
            sol.bindings[kv.first] = exportTerm(w);
        }
    }
    result.solutions.push_back(std::move(sol));
}

kl0::TermPtr
FastEngine::exportTerm(const TaggedWord &w, int depth)
{
    if (depth > 100000)
        return kl0::Term::atom("...");

    TaggedWord cur = w;
    while (cur.tag == Tag::Ref) {
        LogicalAddr a = LogicalAddr::unpack(cur.data);
        TaggedWord inner = read(a);
        if (inner.tag == Tag::Ref && inner.data == cur.data) {
            return kl0::Term::var("_G" + std::to_string(cur.data));
        }
        cur = inner;
    }

    switch (cur.tag) {
      case Tag::Undef:
        return kl0::Term::var("_U");
      case Tag::Atom:
        return kl0::Term::atom(_syms.atomName(cur.data));
      case Tag::Int:
        return kl0::Term::integer(cur.asInt());
      case Tag::Nil:
        return kl0::Term::nil();
      case Tag::List: {
        LogicalAddr a = LogicalAddr::unpack(cur.data);
        return kl0::Term::compound(
            ".", {exportTerm(read(a), depth + 1),
                  exportTerm(read(a.plus(1)), depth + 1)});
      }
      case Tag::Struct: {
        LogicalAddr a = LogicalAddr::unpack(cur.data);
        TaggedWord f = read(a);
        PSI_ASSERT(f.tag == Tag::Functor, "bad structure word");
        std::uint32_t n = _syms.functorArity(f.data);
        std::vector<kl0::TermPtr> args;
        args.reserve(n);
        for (std::uint32_t i = 1; i <= n; ++i)
            args.push_back(exportTerm(read(a.plus(i)), depth + 1));
        return kl0::Term::compound(_syms.functorName(f.data),
                                   std::move(args));
      }
      case Tag::Vector: {
        LogicalAddr a = LogicalAddr::unpack(cur.data);
        TaggedWord size = read(a);
        return kl0::Term::compound(
            "$vector", {kl0::Term::integer(size.asInt())});
      }
      default:
        return kl0::Term::atom(std::string("$bad_") +
                               tagName(cur.tag));
    }
}

} // namespace fast
} // namespace psi
