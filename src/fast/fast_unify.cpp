/**
 * @file
 * Fast-engine unification, dereferencing and trail.  Transliterated
 * from interp/unify.cpp with the sequencer accounting removed.  The
 * work-file trail buffer of the firmware is represented by a flat
 * trail stack at the same logical positions: entries land at the
 * offsets the buffered entries would eventually flush to, trail tops
 * saved in choice points are identical, and unwinding pops in the
 * same LIFO order.
 */

#include "fast/fast_engine.hpp"

#include "base/logging.hpp"

namespace psi {
namespace fast {

namespace {

TaggedWord
unboundAt(const LogicalAddr &addr)
{
    return {Tag::Ref, addr.pack()};
}

} // namespace

interp::Deref
FastEngine::deref(const TaggedWord &w)
{
    Deref d;
    d.word = w;
    while (d.word.tag == Tag::Ref) {
        LogicalAddr a = LogicalAddr::unpack(d.word.data);
        TaggedWord inner = read(a);
        if (inner.tag == Tag::Ref && inner.data == d.word.data) {
            d.unbound = true;
            d.cell = a;
            return d;
        }
        d.word = inner;
    }
    return d;
}

void
FastEngine::bind(const LogicalAddr &cell, const TaggedWord &value)
{
    write(cell, value);
    bool need_trail =
        (cell.area == Area::Global && cell.offset < _hb) ||
        (cell.area == Area::Local && cell.offset < _hl);
    if (need_trail)
        trailPush(cell);
}

void
FastEngine::trailPush(const LogicalAddr &cell)
{
    write(LogicalAddr(Area::Trail, _tt), {Tag::Ref, cell.pack()});
    ++_tt;
}

void
FastEngine::unwindTrail(std::uint64_t to_tt)
{
    while (_tt > to_tt) {
        --_tt;
        TaggedWord e = read(LogicalAddr(Area::Trail, _tt));
        LogicalAddr a = LogicalAddr::unpack(e.data);
        if (a.area == Area::Local) {
            // Local-stack entries record variable globalization; the
            // pre-binding state is always "uninitialized".
            write(a, TaggedWord{});
        } else {
            write(a, unboundAt(a));
        }
    }
}

bool
FastEngine::unify(const TaggedWord &a, const TaggedWord &b)
{
    Deref da = deref(a);
    Deref db = deref(b);

    if (da.unbound && db.unbound) {
        if (da.cell == db.cell)
            return true;
        // Bind the younger cell to the older one so restoring the
        // global top on backtracking can never leave a dangling
        // reference.
        if (da.cell.offset < db.cell.offset)
            bind(db.cell, unboundAt(da.cell));
        else
            bind(da.cell, unboundAt(db.cell));
        return true;
    }
    if (da.unbound) {
        bind(da.cell, db.word);
        return true;
    }
    if (db.unbound) {
        bind(db.cell, da.word);
        return true;
    }

    if (da.word.tag != db.word.tag)
        return false;

    switch (da.word.tag) {
      case Tag::Atom:
      case Tag::Int:
        return da.word.data == db.word.data;
      case Tag::Nil:
        return true;
      case Tag::Vector:
        return da.word.data == db.word.data;
      case Tag::List: {
        LogicalAddr aa = LogicalAddr::unpack(da.word.data);
        LogicalAddr ba = LogicalAddr::unpack(db.word.data);
        for (int k = 0; k < 2; ++k) {
            if (!unify(read(aa.plus(k)), read(ba.plus(k))))
                return false;
        }
        return true;
      }
      case Tag::Struct: {
        LogicalAddr aa = LogicalAddr::unpack(da.word.data);
        LogicalAddr ba = LogicalAddr::unpack(db.word.data);
        TaggedWord fa = read(aa);
        TaggedWord fb = read(ba);
        if (fa.data != fb.data)
            return false;
        std::uint32_t n = _syms.functorArity(fa.data);
        for (std::uint32_t k = 1; k <= n; ++k) {
            if (!unify(read(aa.plus(k)), read(ba.plus(k))))
                return false;
        }
        return true;
      }
      default:
        return false;
    }
}

bool
FastEngine::unifyHead(const TaggedWord &desc, const TaggedWord &arg)
{
    switch (desc.tag) {
      case Tag::HConst: {
        Deref d = deref(arg);
        if (d.unbound) {
            bind(d.cell, {Tag::Atom, desc.data});
            return true;
        }
        return d.word.tag == Tag::Atom && d.word.data == desc.data;
      }
      case Tag::HInt: {
        Deref d = deref(arg);
        if (d.unbound) {
            bind(d.cell, {Tag::Int, desc.data});
            return true;
        }
        return d.word.tag == Tag::Int && d.word.data == desc.data;
      }
      case Tag::HNil: {
        Deref d = deref(arg);
        if (d.unbound) {
            bind(d.cell, {Tag::Nil, 0});
            return true;
        }
        return d.word.tag == Tag::Nil;
      }
      case Tag::HVoid:
        return true;
      case Tag::HVarF: {
        VarSlot vs = VarSlot::decode(desc.data);
        if (vs.global) {
            bind(LogicalAddr(Area::Global, _act.globalBase + vs.index),
                 arg);
        } else {
            writeLocal(vs.index, arg);
        }
        return true;
      }
      case Tag::HVarS: {
        VarSlot vs = VarSlot::decode(desc.data);
        if (vs.global) {
            TaggedWord ref = unboundAt(
                LogicalAddr(Area::Global, _act.globalBase + vs.index));
            return unify(ref, arg);
        }
        TaggedWord v = readLocal(vs.index);
        return unify(v, arg);
      }
      case Tag::HList: {
        std::uint32_t skel = LogicalAddr::unpack(desc.data).offset;
        Deref d = deref(arg);
        if (d.unbound) {
            TaggedWord w = instantiate(skel, true);
            bind(d.cell, w);
            return true;
        }
        if (d.word.tag != Tag::List)
            return false;
        return unifySkeleton(skel, true, d.word);
      }
      case Tag::HStruct: {
        std::uint32_t skel = LogicalAddr::unpack(desc.data).offset;
        Deref d = deref(arg);
        if (d.unbound) {
            TaggedWord w = instantiate(skel, false);
            bind(d.cell, w);
            return true;
        }
        if (d.word.tag != Tag::Struct)
            return false;
        return unifySkeleton(skel, false, d.word);
      }
      case Tag::HGroundList: {
        // Shared ground term: bind directly or unify in place.
        Deref d = deref(arg);
        if (d.unbound) {
            bind(d.cell, {Tag::List, desc.data});
            return true;
        }
        if (d.word.tag != Tag::List)
            return false;
        return unify({Tag::List, desc.data}, d.word);
      }
      case Tag::HGroundStruct: {
        Deref d = deref(arg);
        if (d.unbound) {
            bind(d.cell, {Tag::Struct, desc.data});
            return true;
        }
        if (d.word.tag != Tag::Struct)
            return false;
        return unify({Tag::Struct, desc.data}, d.word);
      }
      default:
        panic("bad head descriptor '", tagName(desc.tag), "'");
    }
}

TaggedWord
FastEngine::instantiate(std::uint32_t skel_addr, bool is_cons)
{
    std::vector<TaggedWord> out;
    std::uint32_t start = 0;
    std::uint32_t n = 2;
    if (!is_cons) {
        TaggedWord f = heapRead(skel_addr);
        PSI_ASSERT(f.tag == Tag::Functor, "bad structure skeleton");
        out.push_back(f);
        n = _syms.functorArity(f.data);
        start = 1;
    }
    out.reserve(start + n);

    for (std::uint32_t k = 0; k < n; ++k) {
        TaggedWord e = heapRead(skel_addr + start + k);
        switch (e.tag) {
          case Tag::Atom:
          case Tag::Int:
          case Tag::Nil:
            out.push_back(e);
            break;
          case Tag::SkelVar:
            if (e.data & kl0::kSkelVoidBit) {
                // Placeholder: becomes a fresh unbound cell at its
                // final address.
                out.push_back(TaggedWord{});
            } else {
                VarSlot vs = VarSlot::decode(e.data);
                out.push_back(unboundAt(LogicalAddr(
                    Area::Global, _act.globalBase + vs.index)));
            }
            break;
          case Tag::List:
            out.push_back(
                instantiate(LogicalAddr::unpack(e.data).offset, true));
            break;
          case Tag::Struct:
            out.push_back(instantiate(
                LogicalAddr::unpack(e.data).offset, false));
            break;
          default:
            panic("bad skeleton element '", tagName(e.tag), "'");
        }
    }

    std::uint32_t base = _gt;
    for (std::uint32_t i = 0; i < out.size(); ++i) {
        LogicalAddr cell(Area::Global, base + i);
        TaggedWord w =
            out[i].tag == Tag::Undef ? unboundAt(cell) : out[i];
        write(cell, w);
    }
    _gt += static_cast<std::uint32_t>(out.size());
    return {is_cons ? Tag::List : Tag::Struct,
            LogicalAddr(Area::Global, base).pack()};
}

bool
FastEngine::unifySkelElement(const TaggedWord &skel_elem,
                             const TaggedWord &cell_value)
{
    switch (skel_elem.tag) {
      case Tag::Atom:
      case Tag::Int:
      case Tag::Nil: {
        Deref d = deref(cell_value);
        if (d.unbound) {
            bind(d.cell, skel_elem);
            return true;
        }
        return d.word.tag == skel_elem.tag &&
               d.word.data == skel_elem.data;
      }
      case Tag::SkelVar: {
        if (skel_elem.data & kl0::kSkelVoidBit)
            return true;
        VarSlot vs = VarSlot::decode(skel_elem.data);
        TaggedWord ref = unboundAt(
            LogicalAddr(Area::Global, _act.globalBase + vs.index));
        return unify(ref, cell_value);
      }
      case Tag::List: {
        std::uint32_t sub = LogicalAddr::unpack(skel_elem.data).offset;
        Deref d = deref(cell_value);
        if (d.unbound) {
            bind(d.cell, instantiate(sub, true));
            return true;
        }
        if (d.word.tag != Tag::List)
            return false;
        return unifySkeleton(sub, true, d.word);
      }
      case Tag::Struct: {
        std::uint32_t sub = LogicalAddr::unpack(skel_elem.data).offset;
        Deref d = deref(cell_value);
        if (d.unbound) {
            bind(d.cell, instantiate(sub, false));
            return true;
        }
        if (d.word.tag != Tag::Struct)
            return false;
        return unifySkeleton(sub, false, d.word);
      }
      default:
        panic("bad skeleton element '", tagName(skel_elem.tag), "'");
    }
}

bool
FastEngine::unifySkeleton(std::uint32_t skel_addr, bool is_cons,
                          const TaggedWord &term)
{
    LogicalAddr taddr = LogicalAddr::unpack(term.data);
    std::uint32_t n = 2;
    std::uint32_t off = 0;
    if (!is_cons) {
        TaggedWord fs = heapRead(skel_addr);
        TaggedWord ft = read(taddr);
        if (fs.data != ft.data)
            return false;
        n = _syms.functorArity(fs.data);
        off = 1;
    }
    for (std::uint32_t k = 0; k < n; ++k) {
        TaggedWord se = heapRead(skel_addr + off + k);
        TaggedWord tv = read(taddr.plus(off + k));
        if (!unifySkelElement(se, tv))
            return false;
    }
    return true;
}

} // namespace fast
} // namespace psi
