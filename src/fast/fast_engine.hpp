/**
 * @file
 * The fast (non-accounting) KL0 execution engine.
 *
 * A statement-for-statement transliteration of the firmware
 * interpreter (src/interp/) with every sequencer interaction removed:
 * no microinstruction stepping, no cache model, no work-file texture,
 * no module/branch tagging.  The instruction stream is the same
 * flattened, contiguous image of tagged words the fidelity engine
 * executes - replayed from the immutable kl0::CompiledProgram into
 * paged flat arrays - and the main loop dispatches on the instruction
 * tag token directly (computed goto under GCC/Clang, a switch
 * elsewhere).
 *
 * Fidelity contract: answers, solution sets, ordering and write/nl/tab
 * output are byte-identical to interp::Engine for any terminating
 * query, because the engine replicates
 *
 *  - the exact logical-address allocation order on every stack (so
 *    exported unbound variables print the same "_G<addr>" names),
 *  - the younger-binds-to-older rule and conditional-trail bounds,
 *  - the frame-buffer alternation, lazy frame flushing, TRO and
 *    determinate-frame-reclamation decisions, and
 *  - the output-cap check order of the firmware built-ins.
 *
 * What is NOT replicated is the accounting: RunResult::steps and
 * timeNs are reported as zero, RunLimits::maxSteps is interpreted as
 * a dispatch-count safety valve (the fidelity engine counts
 * microinstructions, so the same numeric limit trips far later here),
 * and deadlineNs is honored with the same bounded granularity as the
 * fidelity loop (a periodic poll every 4096 dispatches).  The paper's
 * Tables 2-7 are therefore served exclusively by the fidelity engine.
 *
 * Only the default FirmwareOptions are modeled (frame buffers on,
 * trail buffering on, no runtime first-argument probing); the trail
 * buffer is represented by a flat trail stack at the same logical
 * positions, which is observationally identical (same trail tops in
 * choice points, same LIFO unwind order).  Compile-time first-argument
 * indexing (kl0::CompileOptions::firstArgIndexing) IS supported: an
 * IndexRef directory entry is resolved through the same heap-resident
 * index structure the fidelity engine walks, selecting a pre-built
 * ClauseRef chain, so the clause trial order - and therefore every
 * answer byte - is unchanged.
 */

#ifndef PSI_FAST_FAST_ENGINE_HPP
#define PSI_FAST_FAST_ENGINE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "interp/machine.hpp"
#include "kl0/builtin_defs.hpp"
#include "kl0/codegen.hpp"
#include "kl0/compiled_program.hpp"
#include "kl0/symbols.hpp"
#include "mem/area.hpp"
#include "mem/memory_system.hpp"
#include "mem/tagged_word.hpp"

namespace psi {
namespace fast {

/**
 * Paged flat storage for one logical area (28-bit word offsets).
 *
 * Pages are allocated zeroed on first write and kept mapped across
 * clear() so a warm engine reloading the same image does not churn
 * the allocator.  A read of a never-written word returns the Undef
 * word, matching MemorySystem::peek of untouched memory.
 */
class FlatArea
{
  public:
    static constexpr std::uint32_t kPageShift = 14;
    static constexpr std::uint32_t kPageWords = 1u << kPageShift;
    static constexpr std::uint32_t kPageMask = kPageWords - 1;
    static constexpr std::uint32_t kPageCount = 1u << (28 - kPageShift);

    FlatArea() : _pages(kPageCount) {}

    TaggedWord
    read(std::uint32_t off) const
    {
        const TaggedWord *p = _pages[off >> kPageShift].get();
        return p ? p[off & kPageMask] : TaggedWord{};
    }

    void
    write(std::uint32_t off, const TaggedWord &w)
    {
        page(off >> kPageShift)[off & kPageMask] = w;
    }

    /** Zero every touched page; keep the pages mapped. */
    void clear();

  private:
    TaggedWord *page(std::uint32_t idx);

    std::vector<std::unique_ptr<TaggedWord[]>> _pages;
    std::vector<std::uint32_t> _mapped;
};

/** The token-threaded flat-dispatch KL0 engine. */
class FastEngine
{
  public:
    FastEngine();

    /**
     * Install a precompiled image: replay its poke log into the flat
     * areas and adopt its symbol table and codegen snapshot, exactly
     * as interp::Engine::load does for the firmware machine.
     */
    void load(const kl0::CompiledProgram &image);

    bool loaded() const { return _loaded; }

    /** Compile and run a query given as text. */
    interp::RunResult solve(const std::string &query_text,
                            const interp::RunLimits &limits =
                                interp::RunLimits());

    /** Compile and run a query term. */
    interp::RunResult solve(const kl0::TermPtr &goal,
                            const interp::RunLimits &limits =
                                interp::RunLimits());

    // ----- first-argument index instrumentation ------------------------
    /** Calls dispatched through a first-argument index this run. */
    std::uint64_t indexHits() const { return _idxHits; }
    /** Indexed calls that fell back to the linear chain this run. */
    std::uint64_t indexFallbacks() const { return _idxFallbacks; }
    /** Clause candidates visited by the trial loop this run. */
    std::uint64_t clauseTries() const { return _clauseTries; }

  private:
    using RunLimits = interp::RunLimits;
    using RunResult = interp::RunResult;
    using Activation = interp::Activation;
    using FrameLoc = interp::FrameLoc;
    using Deref = interp::Deref;

    // ----- fast_engine.cpp: control -----------------------------------
    void resetRun();
    RunResult run(const kl0::QueryCode &qc, const RunLimits &limits);
    void mainLoop(const kl0::QueryCode &qc, RunResult &result,
                  const RunLimits &limits);
    void loadArgs(std::uint32_t arity);
    bool doCall(std::uint32_t functor_idx, std::uint32_t goal_cp,
                bool last_call);
    std::uint32_t resolveIndex(std::uint32_t root);
    bool tryClauses(std::uint32_t table_addr, std::uint32_t goal_cp,
                    std::uint32_t arity, std::uint32_t cont_cp,
                    std::uint32_t cont_env, std::uint32_t cut_b);
    bool enterClause(std::uint32_t clause_addr, std::uint32_t cont_cp,
                     std::uint32_t cont_env, std::uint32_t cut_b);
    bool backtrack();
    void pushChoicePoint(std::uint32_t goal_cp, std::uint32_t cont_cp,
                         std::uint32_t cont_env,
                         std::uint32_t caller_frame_enc,
                         std::uint32_t caller_global_base,
                         std::uint32_t saved_gt, std::uint32_t saved_lt,
                         std::uint32_t saved_tt, std::uint32_t saved_b,
                         std::uint32_t next_clause_addr);
    void pushEnvFrame();
    void restoreEnv(std::uint32_t env_addr);
    void flushFrame();
    void doCut();
    void reloadTrailBounds();
    void extractSolution(const kl0::QueryCode &qc, RunResult &result);
    kl0::TermPtr exportTerm(const TaggedWord &w, int depth = 0);

    // ----- local frame access -----------------------------------------
    TaggedWord readLocal(std::uint32_t slot);
    void writeLocal(std::uint32_t slot, const TaggedWord &w);
    TaggedWord fetchVarArg(const VarSlot &vs);
    TaggedWord newGlobalCell();

    // ----- fast_unify.cpp: unification and trail ----------------------
    Deref deref(const TaggedWord &w);
    void bind(const LogicalAddr &cell, const TaggedWord &value);
    void trailPush(const LogicalAddr &cell);
    void unwindTrail(std::uint64_t to_tt);
    std::uint64_t trailTop() const { return _tt; }
    bool unify(const TaggedWord &a, const TaggedWord &b);
    bool unifyHead(const TaggedWord &desc, const TaggedWord &arg);
    TaggedWord instantiate(std::uint32_t skel_addr, bool is_cons);
    bool unifySkeleton(std::uint32_t skel_addr, bool is_cons,
                       const TaggedWord &term);
    bool unifySkelElement(const TaggedWord &skel_elem,
                          const TaggedWord &cell_value);

    // ----- fast_builtins.cpp ------------------------------------------
    bool execBuiltin(kl0::Builtin b);
    bool execIs();
    bool evalArith(const TaggedWord &w, std::int64_t &out);
    /**
     * Resolved arithmetic operator of a functor.  evalArith runs
     * once per expression node, so matching the operator by name
     * there dominates arith-heavy profiles; this memoizes the
     * string match per functor index (cleared on load, grown when a
     * query compile interns new functors).
     */
    enum class ArithOp : std::uint8_t
    {
        Unresolved = 0,
        NotArith,                          ///< not an arith functor
        Neg, Ident, Abs, BitNot,           // arity 1
        Add, Sub, Mul, IDiv, Mod, Rem,     // arity 2
        Min, Max, Shl, Shr, BitAnd, BitOr, BitXor,
    };
    ArithOp arithOpFor(std::uint32_t functor_idx);
    bool arithCompare(kl0::Builtin b);
    bool termCompare(const TaggedWord &a, const TaggedWord &b,
                     int &out);
    void writeTerm(const TaggedWord &w, int depth = 0);
    bool builtinFunctor();
    bool builtinArg();
    bool builtinUniv();
    bool builtinVector(kl0::Builtin b);
    bool builtinGlobal(kl0::Builtin b);
    bool builtinProcessCall();
    bool runNested(std::uint32_t functor_idx,
                   std::uint64_t max_dispatches);

    // ----- flat memory access -----------------------------------------
    TaggedWord
    read(const LogicalAddr &a) const
    {
        return _area[static_cast<int>(a.area)].read(a.offset);
    }
    void
    write(const LogicalAddr &a, const TaggedWord &w)
    {
        _area[static_cast<int>(a.area)].write(a.offset, w);
    }
    TaggedWord heapRead(std::uint32_t off) const
    {
        return _area[static_cast<int>(Area::Heap)].read(off);
    }

    // ----- components --------------------------------------------------
    FlatArea _area[kNumAreas];
    kl0::SymbolTable _syms;
    /** Scratch memory the shared CodeGen emits query code into; its
     *  poke log is mirrored into the flat heap after each compile. */
    MemorySystem _qmem;
    kl0::CodeGen _codegen;
    std::vector<PokeRecord> _queryPokes;
    bool _loaded = false;

    // ----- machine registers -------------------------------------------
    std::uint32_t _gt = interp::kStackBase;  ///< global stack top
    std::uint32_t _lt = interp::kStackBase;  ///< local stack top
    std::uint32_t _ct = interp::kStackBase;  ///< control stack top
    std::uint32_t _tt = interp::kStackBase;  ///< trail stack top
    std::uint32_t _b = interp::kNoChoice;    ///< newest choice point
    std::uint32_t _hb = 0;                   ///< global top at newest CP
    std::uint32_t _hl = 0;                   ///< local top at newest CP
    std::uint32_t _cp = 0;                   ///< code pointer
    Activation _act;
    int _curBuf = 0;
    TaggedWord _a[kl0::kMaxArity];           ///< argument registers
    TaggedWord _fbuf[2][kl0::kMaxLocals];    ///< WF frame buffers
    std::uint32_t _vecTop = kl0::kVectorBase;
    std::uint64_t _inferences = 0;
    std::uint64_t _dispatches = 0;           ///< maxSteps proxy
    std::uint64_t _idxHits = 0;              ///< indexed dispatches
    std::uint64_t _idxFallbacks = 0;         ///< linear-chain fallbacks
    std::uint64_t _clauseTries = 0;          ///< clause candidates tried
    std::string _out;
    std::size_t _maxOutputBytes = 1 << 20;
    bool _failFlag = false;
    bool _inProcessCall = false;
    std::vector<bool> _warnedUndefined;
    std::vector<ArithOp> _arithOps; ///< functor idx -> operator memo
};

} // namespace fast
} // namespace psi

#endif // PSI_FAST_FAST_ENGINE_HPP
