/**
 * @file
 * Fast-engine built-ins: dispatch, arithmetic, term inspection /
 * construction, write/1 output, vectors, the shared registry and
 * process_call.  Transliterated from interp/builtins.cpp,
 * builtins_arith.cpp, builtins_term.cpp and process.cpp with the
 * sequencer accounting removed.  Warning messages and the output-cap
 * check order are kept identical so stderr and RunResult::output
 * match the fidelity engine byte for byte.
 */

#include "fast/fast_engine.hpp"

#include <array>
#include <cstdint>

#include "base/logging.hpp"

namespace psi {
namespace fast {

namespace {

/** Words per process window inside each stack area. */
constexpr std::uint32_t kProcWindow = 1u << 24;

/** Heap-resident shared registry (below the vector region). */
constexpr std::uint32_t kGlobalRegBase = kl0::kVectorBase - 64;
constexpr std::uint32_t kGlobalRegSlots = 16;

} // namespace

bool
FastEngine::execIs()
{
    std::int64_t v = 0;
    if (!evalArith(_a[1], v))
        return false;
    if (v < INT32_MIN || v > INT32_MAX) {
        warn("is/2: result ", v, " overflows the 32-bit data part");
        return false;
    }
    return unify(_a[0],
                 TaggedWord::makeInt(static_cast<std::int32_t>(v)));
}

bool
FastEngine::execBuiltin(kl0::Builtin b)
{
    using kl0::Builtin;

    switch (b) {
      case Builtin::True:
        return true;

      case Builtin::Fail:
        return false;

      case Builtin::Unify:
        return unify(_a[0], _a[1]);

      case Builtin::NotUnify: {
        // Speculative unification: force every binding onto the trail
        // by raising the trail bounds, then undo them.
        std::uint32_t save_hb = _hb;
        std::uint32_t save_hl = _hl;
        std::uint32_t save_gt = _gt;
        std::uint64_t mark = trailTop();
        _hb = 0xffffffffu;
        _hl = 0xffffffffu;
        bool unified = unify(_a[0], _a[1]);
        unwindTrail(mark);
        _gt = save_gt;
        _hb = save_hb;
        _hl = save_hl;
        return !unified;
      }

      case Builtin::Eq: {
        int c = 0;
        return termCompare(_a[0], _a[1], c) && c == 0;
      }
      case Builtin::NotEq: {
        int c = 0;
        return termCompare(_a[0], _a[1], c) && c != 0;
      }
      case Builtin::TermLt:
      case Builtin::TermGt:
      case Builtin::TermLe:
      case Builtin::TermGe: {
        int c = 0;
        if (!termCompare(_a[0], _a[1], c))
            return false;
        switch (b) {
          case Builtin::TermLt: return c < 0;
          case Builtin::TermGt: return c > 0;
          case Builtin::TermLe: return c <= 0;
          default: return c >= 0;
        }
      }

      case Builtin::Is:
        return execIs();

      case Builtin::Lt:
      case Builtin::Gt:
      case Builtin::Le:
      case Builtin::Ge:
      case Builtin::ArithEq:
      case Builtin::ArithNe:
        return arithCompare(b);

      case Builtin::IsVar:
        return deref(_a[0]).unbound;
      case Builtin::IsNonvar:
        return !deref(_a[0]).unbound;
      case Builtin::IsAtom: {
        Deref d = deref(_a[0]);
        return !d.unbound &&
               (d.word.tag == Tag::Atom || d.word.tag == Tag::Nil);
      }
      case Builtin::IsInteger: {
        Deref d = deref(_a[0]);
        return !d.unbound && d.word.tag == Tag::Int;
      }
      case Builtin::IsAtomic: {
        Deref d = deref(_a[0]);
        return !d.unbound &&
               (d.word.tag == Tag::Atom || d.word.tag == Tag::Nil ||
                d.word.tag == Tag::Int || d.word.tag == Tag::Vector);
      }
      case Builtin::IsCompound: {
        Deref d = deref(_a[0]);
        return !d.unbound &&
               (d.word.tag == Tag::List || d.word.tag == Tag::Struct);
      }

      case Builtin::Functor:
        return builtinFunctor();
      case Builtin::Arg:
        return builtinArg();
      case Builtin::Univ:
        return builtinUniv();

      case Builtin::Write:
        writeTerm(_a[0]);
        return true;
      case Builtin::Nl:
        if (_out.size() < _maxOutputBytes)
            _out.push_back('\n');
        return true;
      case Builtin::Tab: {
        std::int64_t n = 0;
        if (!evalArith(_a[0], n) || n < 0)
            return false;
        for (std::int64_t i = 0; i < n; ++i) {
            if (_out.size() < _maxOutputBytes)
                _out.push_back(' ');
        }
        return true;
      }

      case Builtin::VectorNew:
      case Builtin::VectorGet:
      case Builtin::VectorSet:
      case Builtin::VectorSize:
        return builtinVector(b);

      case Builtin::GlobalSet:
      case Builtin::GlobalGet:
        return builtinGlobal(b);

      case Builtin::ProcessCall:
        return builtinProcessCall();

      case Builtin::NumBuiltins:
        break;
    }
    panic("bad builtin id ", static_cast<int>(b));
}

bool
FastEngine::builtinVector(kl0::Builtin b)
{
    using kl0::Builtin;

    if (b == Builtin::VectorNew) {
        Deref dn = deref(_a[0]);
        if (dn.unbound || dn.word.tag != Tag::Int)
            return false;
        std::int32_t n = dn.word.asInt();
        if (n < 0 || n > (1 << 22)) {
            warn("vector_new: bad size ", n);
            return false;
        }
        std::uint32_t base = _vecTop;
        write(LogicalAddr(Area::Heap, base), TaggedWord::makeInt(n));
        for (std::int32_t i = 0; i < n; ++i) {
            write(LogicalAddr(Area::Heap,
                              base + 1 + static_cast<std::uint32_t>(i)),
                  TaggedWord::makeInt(0));
        }
        _vecTop += static_cast<std::uint32_t>(n) + 1;
        return unify(_a[1],
                     {Tag::Vector, LogicalAddr(Area::Heap, base).pack()});
    }

    Deref dv = deref(_a[0]);
    if (dv.unbound || dv.word.tag != Tag::Vector)
        return false;
    LogicalAddr base = LogicalAddr::unpack(dv.word.data);
    TaggedWord size = read(base);

    if (b == Builtin::VectorSize)
        return unify(_a[1], size);

    Deref di = deref(_a[1]);
    if (di.unbound || di.word.tag != Tag::Int)
        return false;
    std::int32_t i = di.word.asInt();
    if (i < 0 || i >= size.asInt())
        return false;

    if (b == Builtin::VectorGet) {
        TaggedWord w =
            read(base.plus(1 + static_cast<std::uint32_t>(i)));
        return unify(_a[2], w);
    }

    // VectorSet: destructive, never trailed (heap vectors are the
    // PSI's non-backtrackable rewritable data).
    Deref dx = deref(_a[2]);
    write(base.plus(1 + static_cast<std::uint32_t>(i)),
          dx.unbound ? TaggedWord{Tag::Ref, dx.cell.pack()} : dx.word);
    return true;
}

bool
FastEngine::evalArith(const TaggedWord &w, std::int64_t &out)
{
    Deref d = deref(w);
    if (d.unbound) {
        warn("arithmetic: unbound variable");
        return false;
    }

    switch (d.word.tag) {
      case Tag::Int:
        out = d.word.asInt();
        return true;

      case Tag::SkelVar: {
        // Expression skeletons are evaluated in place; variable slots
        // are resolved against the current activation.
        if (d.word.data & kl0::kSkelVoidBit) {
            warn("arithmetic: unbound (void) variable");
            return false;
        }
        VarSlot vs = VarSlot::decode(d.word.data);
        if (vs.global) {
            TaggedWord ref = {
                Tag::Ref,
                LogicalAddr(Area::Global,
                            _act.globalBase + vs.index).pack()};
            return evalArith(ref, out);
        }
        TaggedWord v = readLocal(vs.index);
        if (v.tag == Tag::Undef) {
            warn("arithmetic: unbound variable");
            return false;
        }
        return evalArith(v, out);
      }

      case Tag::Struct: {
        LogicalAddr a = LogicalAddr::unpack(d.word.data);
        TaggedWord f = read(a);
        if (f.tag != Tag::Functor)
            return false;
        const ArithOp op = arithOpFor(f.data);
        if (op == ArithOp::NotArith) {
            warn("arithmetic: unknown function ",
                 _syms.functorName(f.data), "/",
                 _syms.functorArity(f.data));
            return false;
        }

        std::int64_t x = 0;
        if (!evalArith(read(a.plus(1)), x))
            return false;
        switch (op) {
          case ArithOp::Neg: out = -x; return true;
          case ArithOp::Ident: out = x; return true;
          case ArithOp::Abs: out = x < 0 ? -x : x; return true;
          case ArithOp::BitNot: out = ~x; return true;
          default: break; // binary: needs the second operand
        }

        std::int64_t y = 0;
        if (!evalArith(read(a.plus(2)), y))
            return false;
        switch (op) {
          case ArithOp::Add: out = x + y; return true;
          case ArithOp::Sub: out = x - y; return true;
          case ArithOp::Mul: out = x * y; return true;
          case ArithOp::IDiv:
            if (y == 0) {
                warn("arithmetic: division by zero");
                return false;
            }
            out = x / y;
            return true;
          case ArithOp::Mod:
            if (y == 0) {
                warn("arithmetic: mod by zero");
                return false;
            }
            out = x % y;
            if (out != 0 && ((out < 0) != (y < 0)))
                out += y;
            return true;
          case ArithOp::Rem:
            if (y == 0)
                return false;
            out = x % y;
            return true;
          case ArithOp::Min: out = x < y ? x : y; return true;
          case ArithOp::Max: out = x > y ? x : y; return true;
          case ArithOp::Shl: out = x << (y & 31); return true;
          case ArithOp::Shr: out = x >> (y & 31); return true;
          case ArithOp::BitAnd: out = x & y; return true;
          case ArithOp::BitOr: out = x | y; return true;
          case ArithOp::BitXor: out = x ^ y; return true;
          default: return false; // unreachable
        }
      }

      default:
        warn("arithmetic: bad operand tag '", tagName(d.word.tag),
             "'");
        return false;
    }
}

FastEngine::ArithOp
FastEngine::arithOpFor(std::uint32_t functor_idx)
{
    if (functor_idx >= _arithOps.size())
        _arithOps.resize(_syms.functorCount(), ArithOp::Unresolved);
    ArithOp &slot = _arithOps[functor_idx];
    if (slot != ArithOp::Unresolved)
        return slot;

    const std::string &name = _syms.functorName(functor_idx);
    const std::uint32_t arity = _syms.functorArity(functor_idx);
    ArithOp op = ArithOp::NotArith;
    if (arity == 1) {
        if (name == "-") op = ArithOp::Neg;
        else if (name == "+") op = ArithOp::Ident;
        else if (name == "abs") op = ArithOp::Abs;
        else if (name == "\\") op = ArithOp::BitNot;
    } else if (arity == 2) {
        if (name == "+") op = ArithOp::Add;
        else if (name == "-") op = ArithOp::Sub;
        else if (name == "*") op = ArithOp::Mul;
        else if (name == "//" || name == "/") op = ArithOp::IDiv;
        else if (name == "mod") op = ArithOp::Mod;
        else if (name == "rem") op = ArithOp::Rem;
        else if (name == "min") op = ArithOp::Min;
        else if (name == "max") op = ArithOp::Max;
        else if (name == "<<") op = ArithOp::Shl;
        else if (name == ">>") op = ArithOp::Shr;
        else if (name == "/\\") op = ArithOp::BitAnd;
        else if (name == "\\/") op = ArithOp::BitOr;
        else if (name == "xor") op = ArithOp::BitXor;
    }
    slot = op;
    return op;
}

bool
FastEngine::arithCompare(kl0::Builtin b)
{
    using kl0::Builtin;

    std::int64_t x = 0;
    std::int64_t y = 0;
    if (!evalArith(_a[0], x))
        return false;
    if (!evalArith(_a[1], y))
        return false;
    switch (b) {
      case Builtin::Lt: return x < y;
      case Builtin::Gt: return x > y;
      case Builtin::Le: return x <= y;
      case Builtin::Ge: return x >= y;
      case Builtin::ArithEq: return x == y;
      case Builtin::ArithNe: return x != y;
      default:
        panic("arithCompare: bad builtin");
    }
}

bool
FastEngine::termCompare(const TaggedWord &a, const TaggedWord &b,
                        int &out)
{
    Deref da = deref(a);
    Deref db = deref(b);

    auto order = [](const Deref &d) {
        if (d.unbound)
            return 0;
        switch (d.word.tag) {
          case Tag::Int: return 1;
          case Tag::Atom:
          case Tag::Nil: return 2;
          case Tag::Vector: return 3;
          case Tag::List:
          case Tag::Struct: return 4;
          default: return 5;
        }
    };

    int oa = order(da);
    int ob = order(db);
    if (oa != ob) {
        out = oa < ob ? -1 : 1;
        return true;
    }

    switch (oa) {
      case 0: {  // both unbound: compare cell addresses
        std::uint32_t pa = da.cell.pack();
        std::uint32_t pb = db.cell.pack();
        out = pa == pb ? 0 : (pa < pb ? -1 : 1);
        return true;
      }
      case 1: {
        std::int32_t va = da.word.asInt();
        std::int32_t vb = db.word.asInt();
        out = va == vb ? 0 : (va < vb ? -1 : 1);
        return true;
      }
      case 2: {
        const std::string &na = da.word.tag == Tag::Nil
                                    ? _syms.atomName(_syms.nilAtom())
                                    : _syms.atomName(da.word.data);
        const std::string &nb = db.word.tag == Tag::Nil
                                    ? _syms.atomName(_syms.nilAtom())
                                    : _syms.atomName(db.word.data);
        out = na.compare(nb);
        out = out == 0 ? 0 : (out < 0 ? -1 : 1);
        return true;
      }
      case 3: {
        out = da.word.data == db.word.data
                  ? 0
                  : (da.word.data < db.word.data ? -1 : 1);
        return true;
      }
      case 4: {
        // Compounds: arity, then name, then arguments left to right.
        auto shape = [this](const Deref &d, std::uint32_t &arity,
                            std::string &name, LogicalAddr &args) {
            if (d.word.tag == Tag::List) {
                arity = 2;
                name = ".";
                args = LogicalAddr::unpack(d.word.data);
                return;
            }
            LogicalAddr a = LogicalAddr::unpack(d.word.data);
            TaggedWord f = read(a);
            arity = _syms.functorArity(f.data);
            name = _syms.functorName(f.data);
            args = a.plus(1);
        };
        std::uint32_t na = 0;
        std::uint32_t nb = 0;
        std::string fa;
        std::string fb;
        LogicalAddr aa;
        LogicalAddr ab;
        shape(da, na, fa, aa);
        shape(db, nb, fb, ab);
        if (na != nb) {
            out = na < nb ? -1 : 1;
            return true;
        }
        int c = fa.compare(fb);
        if (c != 0) {
            out = c < 0 ? -1 : 1;
            return true;
        }
        for (std::uint32_t k = 0; k < na; ++k) {
            if (!termCompare(read(aa.plus(k)), read(ab.plus(k)), out))
                return false;
            if (out != 0)
                return true;
        }
        out = 0;
        return true;
      }
      default:
        return false;
    }
}

void
FastEngine::writeTerm(const TaggedWord &w, int depth)
{
    auto put = [this](const std::string &s) {
        if (_out.size() < _maxOutputBytes)
            _out += s;
    };

    if (depth > 10000) {
        put("...");
        return;
    }

    Deref d = deref(w);

    if (d.unbound) {
        put("_G" + std::to_string(d.cell.pack()));
        return;
    }
    switch (d.word.tag) {
      case Tag::Atom:
        put(_syms.atomName(d.word.data));
        return;
      case Tag::Int:
        put(std::to_string(d.word.asInt()));
        return;
      case Tag::Nil:
        put("[]");
        return;
      case Tag::Vector:
        put("$vector");
        return;
      case Tag::List: {
        put("[");
        TaggedWord cur = d.word;
        bool first = true;
        for (;;) {
            LogicalAddr a = LogicalAddr::unpack(cur.data);
            if (!first)
                put(",");
            first = false;
            writeTerm(read(a), depth + 1);
            Deref dc = deref(read(a.plus(1)));
            if (dc.unbound) {
                put("|_G" + std::to_string(dc.cell.pack()));
                break;
            }
            if (dc.word.tag == Tag::Nil)
                break;
            if (dc.word.tag == Tag::List) {
                cur = dc.word;
                continue;
            }
            put("|");
            writeTerm(dc.word, depth + 1);
            break;
        }
        put("]");
        return;
      }
      case Tag::Struct: {
        LogicalAddr a = LogicalAddr::unpack(d.word.data);
        TaggedWord f = read(a);
        put(_syms.functorName(f.data));
        put("(");
        std::uint32_t n = _syms.functorArity(f.data);
        for (std::uint32_t k = 1; k <= n; ++k) {
            if (k > 1)
                put(",");
            writeTerm(read(a.plus(k)), depth + 1);
        }
        put(")");
        return;
      }
      default:
        put("?");
        return;
    }
}

bool
FastEngine::builtinFunctor()
{
    Deref d = deref(_a[0]);

    if (!d.unbound) {
        TaggedWord fw;
        std::int32_t arity = 0;
        switch (d.word.tag) {
          case Tag::Atom:
          case Tag::Int:
            fw = d.word;
            break;
          case Tag::Nil:
            fw = {Tag::Nil, 0};
            break;
          case Tag::List:
            fw = {Tag::Atom, _syms.atom(".")};
            arity = 2;
            break;
          case Tag::Struct: {
            LogicalAddr a = LogicalAddr::unpack(d.word.data);
            TaggedWord f = read(a);
            fw = {Tag::Atom, _syms.atom(_syms.functorName(f.data))};
            arity =
                static_cast<std::int32_t>(_syms.functorArity(f.data));
            break;
          }
          default:
            return false;
        }
        return unify(_a[1], fw) &&
               unify(_a[2], TaggedWord::makeInt(arity));
    }

    // Construction mode.
    Deref df = deref(_a[1]);
    Deref dn = deref(_a[2]);
    if (df.unbound || dn.unbound || dn.word.tag != Tag::Int)
        return false;
    std::int32_t n = dn.word.asInt();
    if (n < 0 || n > 255)
        return false;
    if (n == 0) {
        bind(d.cell, df.word);
        return true;
    }
    if (df.word.tag != Tag::Atom)
        return false;

    const std::string &name = _syms.atomName(df.word.data);
    std::uint32_t base = _gt;
    if (name == "." && n == 2) {
        for (int k = 0; k < 2; ++k) {
            LogicalAddr cell(Area::Global, _gt);
            write(cell, {Tag::Ref, cell.pack()});
            ++_gt;
        }
        bind(d.cell,
             {Tag::List, LogicalAddr(Area::Global, base).pack()});
        return true;
    }
    std::uint32_t f =
        _syms.functor(name, static_cast<std::uint32_t>(n));
    write(LogicalAddr(Area::Global, _gt), {Tag::Functor, f});
    ++_gt;
    for (std::int32_t k = 0; k < n; ++k) {
        LogicalAddr cell(Area::Global, _gt);
        write(cell, {Tag::Ref, cell.pack()});
        ++_gt;
    }
    bind(d.cell,
         {Tag::Struct, LogicalAddr(Area::Global, base).pack()});
    return true;
}

bool
FastEngine::builtinArg()
{
    Deref dn = deref(_a[0]);
    Deref dt = deref(_a[1]);
    if (dn.unbound || dn.word.tag != Tag::Int || dt.unbound)
        return false;
    std::int32_t n = dn.word.asInt();
    if (n < 1)
        return false;

    if (dt.word.tag == Tag::List) {
        if (n > 2)
            return false;
        LogicalAddr a = LogicalAddr::unpack(dt.word.data);
        TaggedWord v = read(a.plus(static_cast<std::uint32_t>(n - 1)));
        return unify(_a[2], v);
    }
    if (dt.word.tag == Tag::Struct) {
        LogicalAddr a = LogicalAddr::unpack(dt.word.data);
        TaggedWord f = read(a);
        if (n > static_cast<std::int32_t>(_syms.functorArity(f.data)))
            return false;
        TaggedWord v = read(a.plus(static_cast<std::uint32_t>(n)));
        return unify(_a[2], v);
    }
    return false;
}

bool
FastEngine::builtinUniv()
{
    Deref dt = deref(_a[0]);

    if (!dt.unbound) {
        // Decomposition: T =.. [F | Args].
        std::vector<TaggedWord> items;
        switch (dt.word.tag) {
          case Tag::Atom:
          case Tag::Int:
          case Tag::Nil:
            items.push_back(dt.word);
            break;
          case Tag::List: {
            LogicalAddr a = LogicalAddr::unpack(dt.word.data);
            items.push_back({Tag::Atom, _syms.atom(".")});
            for (int k = 0; k < 2; ++k)
                items.push_back(read(a.plus(k)));
            break;
          }
          case Tag::Struct: {
            LogicalAddr a = LogicalAddr::unpack(dt.word.data);
            TaggedWord f = read(a);
            items.push_back(
                {Tag::Atom, _syms.atom(_syms.functorName(f.data))});
            std::uint32_t n = _syms.functorArity(f.data);
            for (std::uint32_t k = 1; k <= n; ++k)
                items.push_back(read(a.plus(k)));
            break;
          }
          default:
            return false;
        }
        // Build the list back to front on the global stack.
        TaggedWord tail = {Tag::Nil, 0};
        for (auto it = items.rbegin(); it != items.rend(); ++it) {
            std::uint32_t base = _gt;
            write(LogicalAddr(Area::Global, _gt), *it);
            ++_gt;
            write(LogicalAddr(Area::Global, _gt), tail);
            ++_gt;
            tail = {Tag::List, LogicalAddr(Area::Global, base).pack()};
        }
        return unify(_a[1], tail);
    }

    // Construction: walk the list into functor + args.
    Deref dl = deref(_a[1]);
    if (dl.unbound || dl.word.tag != Tag::List)
        return false;
    std::vector<TaggedWord> items;
    TaggedWord cur = dl.word;
    while (true) {
        LogicalAddr a = LogicalAddr::unpack(cur.data);
        items.push_back(read(a));
        Deref dc = deref(read(a.plus(1)));
        if (dc.unbound)
            return false;
        if (dc.word.tag == Tag::Nil)
            break;
        if (dc.word.tag != Tag::List)
            return false;
        cur = dc.word;
        if (items.size() > 260)
            return false;
    }

    Deref dh = deref(items[0]);
    if (dh.unbound)
        return false;
    std::uint32_t n = static_cast<std::uint32_t>(items.size()) - 1;
    if (n == 0) {
        bind(dt.cell, dh.word);
        return true;
    }
    if (dh.word.tag != Tag::Atom && dh.word.tag != Tag::Nil)
        return false;
    const std::string &name = dh.word.tag == Tag::Nil
                                  ? _syms.atomName(_syms.nilAtom())
                                  : _syms.atomName(dh.word.data);

    std::uint32_t base = _gt;
    if (name == "." && n == 2) {
        for (std::uint32_t k = 1; k <= 2; ++k) {
            Deref dk = deref(items[k]);
            write(LogicalAddr(Area::Global, _gt),
                  dk.unbound ? TaggedWord{Tag::Ref, dk.cell.pack()}
                             : dk.word);
            ++_gt;
        }
        bind(dt.cell,
             {Tag::List, LogicalAddr(Area::Global, base).pack()});
        return true;
    }
    write(LogicalAddr(Area::Global, _gt),
          {Tag::Functor, _syms.functor(name, n)});
    ++_gt;
    for (std::uint32_t k = 1; k <= n; ++k) {
        Deref dk = deref(items[k]);
        write(LogicalAddr(Area::Global, _gt),
              dk.unbound ? TaggedWord{Tag::Ref, dk.cell.pack()}
                         : dk.word);
        ++_gt;
    }
    bind(dt.cell,
         {Tag::Struct, LogicalAddr(Area::Global, base).pack()});
    return true;
}

bool
FastEngine::builtinGlobal(kl0::Builtin b)
{
    Deref dk = deref(_a[0]);
    if (dk.unbound || dk.word.tag != Tag::Int)
        return false;
    std::int32_t k = dk.word.asInt();
    if (k < 0 || k >= static_cast<std::int32_t>(kGlobalRegSlots))
        return false;
    LogicalAddr slot(Area::Heap,
                     kGlobalRegBase + static_cast<std::uint32_t>(k));

    if (b == kl0::Builtin::GlobalSet) {
        Deref dv = deref(_a[1]);
        // Only process-lifetime values may be stored: atomic data and
        // heap-vector handles.  Stack references would dangle.
        if (dv.unbound ||
            (dv.word.tag != Tag::Atom && dv.word.tag != Tag::Int &&
             dv.word.tag != Tag::Nil && dv.word.tag != Tag::Vector)) {
            return false;
        }
        write(slot, dv.word);
        return true;
    }

    TaggedWord v = read(slot);
    if (v.tag == Tag::Undef)
        return false;
    return unify(_a[1], v);
}

bool
FastEngine::runNested(std::uint32_t functor_idx,
                      std::uint64_t max_dispatches)
{
    bool ok = doCall(functor_idx, 0, true);
    if (!ok)
        ok = backtrack();
    if (!ok)
        return false;

    std::uint64_t start = _dispatches;
    for (;;) {
        if (_dispatches - start > max_dispatches) {
            warn("process_call: step budget exhausted");
            return false;
        }
        ++_dispatches;
        if (_failFlag) {
            _failFlag = false;
            if (!backtrack())
                return false;
            continue;
        }

        TaggedWord w = heapRead(_cp);
        ++_cp;

        switch (w.tag) {
          case Tag::Call:
          case Tag::CallLast: {
            std::uint32_t goal_cp = _cp - 1;
            loadArgs(_syms.functorArity(w.data));
            if (!doCall(w.data, goal_cp, w.tag == Tag::CallLast))
                _failFlag = true;
            break;
          }
          case Tag::CallBuiltin: {
            auto b = static_cast<kl0::Builtin>(w.data);
            loadArgs(kl0::builtinArity(b));
            if (!execBuiltin(b))
                _failFlag = true;
            break;
          }
          case Tag::CallIs:
            loadArgs(2);
            if (!execIs())
                _failFlag = true;
            break;
          case Tag::CallCmp:
            loadArgs(2);
            if (!arithCompare(static_cast<kl0::Builtin>(w.data)))
                _failFlag = true;
            break;
          case Tag::CutOp:
            doCut();
            break;
          case Tag::Proceed: {
            if (_act.contEnv == interp::kRootEnv)
                return true;  // first solution: the process yields
            if (_act.frame.kind == FrameLoc::Kind::Stack &&
                _act.frame.addr + _act.nlocals == _lt &&
                _hl <= _act.frame.addr) {
                _lt = _act.frame.addr;
            }
            std::uint32_t rcp = _act.contCP;
            restoreEnv(_act.contEnv);
            _cp = rcp;
            break;
          }
          default:
            panic("bad instruction word in nested run: ",
                  tagName(w.tag));
        }
    }
}

bool
FastEngine::builtinProcessCall()
{
    if (_inProcessCall) {
        warn("process_call: nesting is not supported");
        return false;
    }

    Deref dp = deref(_a[0]);
    Deref df = deref(_a[1]);
    if (dp.unbound || dp.word.tag != Tag::Int || df.unbound ||
        df.word.tag != Tag::Atom) {
        return false;
    }
    std::int32_t pid = dp.word.asInt();
    if (pid < 1 || pid >= 8)
        return false;
    std::uint32_t f =
        _syms.functor(_syms.atomName(df.word.data), 0);

    // ---- process switch: save the current machine state ------------
    // The fidelity engine writes a 10-word switch frame of register
    // state above the control top; replicate the store so the control
    // area contents stay identical.
    for (int i = 0; i < 10; ++i) {
        write(LogicalAddr(Area::Control,
                          _ct + static_cast<std::uint32_t>(i)),
              {Tag::Int, 0});
    }

    struct Saved
    {
        std::uint32_t gt, lt, ct, tt, b, hb, hl, cp;
        int curBuf;
        bool failFlag;
        Activation act;
        std::array<TaggedWord, kl0::kMaxArity> args;
        std::array<TaggedWord, 2 * kl0::kMaxLocals> frames;
    } s;
    s.gt = _gt;
    s.lt = _lt;
    s.ct = _ct + 10;  // past the switch frame
    s.tt = _tt;
    s.b = _b;
    s.hb = _hb;
    s.hl = _hl;
    s.cp = _cp;
    s.curBuf = _curBuf;
    s.failFlag = _failFlag;
    s.act = _act;
    for (std::uint32_t i = 0; i < kl0::kMaxArity; ++i)
        s.args[i] = _a[i];
    for (std::uint32_t i = 0; i < kl0::kMaxLocals; ++i) {
        s.frames[i] = _fbuf[0][i];
        s.frames[kl0::kMaxLocals + i] = _fbuf[1][i];
    }

    // ---- enter the target process's areas --------------------------
    std::uint32_t base = static_cast<std::uint32_t>(pid) * kProcWindow +
                         interp::kStackBase;
    _gt = base;
    _lt = base;
    _ct = base;
    _tt = base;
    _b = interp::kNoChoice;
    _hb = _hl = 0;
    _curBuf = 0;
    _failFlag = false;
    _act = Activation{};
    _act.globalBase = _gt;
    _inProcessCall = true;

    bool ok = runNested(f, 200'000'000);

    // ---- switch back -------------------------------------------------
    _inProcessCall = false;
    _gt = s.gt;
    _lt = s.lt;
    _ct = s.ct - 10;
    _tt = s.tt;
    _b = s.b;
    _hb = s.hb;
    _hl = s.hl;
    _cp = s.cp;
    _curBuf = s.curBuf;
    _failFlag = s.failFlag;
    _act = s.act;
    for (std::uint32_t i = 0; i < kl0::kMaxArity; ++i)
        _a[i] = s.args[i];
    for (std::uint32_t i = 0; i < kl0::kMaxLocals; ++i) {
        _fbuf[0][i] = s.frames[i];
        _fbuf[1][i] = s.frames[kl0::kMaxLocals + i];
    }
    return ok;
}

} // namespace fast
} // namespace psi
