/**
 * @file
 * psirouter: the shared-nothing cluster front end as a daemon.
 *
 *     $ ./src/psirouter -P 9733 \
 *           --backend 127.0.0.1:9734 --backend 127.0.0.1:9735
 *
 * Fronts N independent psinet backends (each a PsiServer, e.g.
 * `psinet_demo serve`): requests are sharded by the program's
 * source-content hash on a consistent-hash ring, so each backend's
 * compiled-program cache and warm engines serve a stable shard.
 * Backends are health-checked and ejected/re-admitted automatically;
 * a backend killed mid-batch has its unacknowledged requests failed
 * over to the ring successor, losing nothing.
 *
 * Clients speak the ordinary psinet protocol to the router (the
 * HELLO_ACK carries the routing feature bit); STATS/METRICS against
 * the router report per-backend routed/retried/ejected counters and
 * the shard-affinity hit ratio.  SIGINT/SIGTERM (or a DRAIN message)
 * drains gracefully: every forwarded request is answered before
 * exit.
 */

#include <iostream>
#include <string>
#include <vector>

#include "base/flags.hpp"
#include "base/trace.hpp"
#include "router/router.hpp"

int
main(int argc, char **argv)
{
    using namespace psi;

    std::uint64_t port = 9733;
    std::vector<std::string> backendSpecs;
    std::uint64_t vnodes = 128;
    std::uint64_t probeMs = 200;
    std::uint64_t probeTimeoutMs = 1000;
    std::uint64_t ejectAfter = 3;
    bool reusePort = false;
    bool traceOn = false;

    Flags flags("psirouter --backend host:port [--backend ...] "
                "[options]");
    flags
        .opt("-P", &port,
             "TCP port to listen on (default 9733, 0 = ephemeral)")
        .opt("--backend", &backendSpecs,
             "backend address host:port (repeat once per backend)")
        .opt("--vnodes", &vnodes,
             "ring points per backend (default 128)")
        .opt("--probe-ms", &probeMs,
             "health probe interval in ms (default 200)")
        .opt("--probe-timeout-ms", &probeTimeoutMs,
             "probe timeout in ms (default 1000)")
        .opt("--eject-after", &ejectAfter,
             "consecutive probe failures before ejection (default 3)")
        .flag("--reuseport",
              &reusePort, "set SO_REUSEPORT on the listener so "
                          "several routers can share the port")
        .flag("--trace", &traceOn,
              "record psitrace spans (fetch with a TRACE message)");
    if (!flags.parse(argc, argv))
        return 1;
    if (traceOn)
        trace::setEnabled(true);

    router::PsiRouter::Config config;
    config.port = static_cast<std::uint16_t>(port);
    config.vnodes = static_cast<unsigned>(vnodes);
    config.probeIntervalNs = probeMs * 1'000'000ull;
    config.probeTimeoutNs = probeTimeoutMs * 1'000'000ull;
    config.ejectAfterFailures = static_cast<unsigned>(ejectAfter);
    config.reusePort = reusePort;
    for (const std::string &spec : backendSpecs) {
        std::string error;
        auto addr = router::BackendAddr::parse(spec, &error);
        if (!addr) {
            std::cerr << "psirouter: " << error << "\n";
            return 1;
        }
        config.backends.push_back(*addr);
    }
    if (config.backends.empty()) {
        std::cerr << "psirouter: at least one --backend is required\n"
                  << flags.usage();
        return 1;
    }

    router::PsiRouter router(config);
    std::string error;
    if (!router.start(&error)) {
        std::cerr << "psirouter: " << error << "\n";
        return 1;
    }
    router.installSignalHandlers();

    std::cout << "psirouter: listening on 127.0.0.1:" << router.port()
              << ", " << config.backends.size() << " backends:";
    for (const auto &addr : config.backends)
        std::cout << ' ' << addr.str();
    std::cout << "\npsirouter: SIGINT/SIGTERM or a DRAIN message "
                 "drains gracefully\n";

    router.run();

    std::cout << "\npsirouter: drained; final metrics\n";
    router.metrics().table().print(std::cout);
    return 0;
}
