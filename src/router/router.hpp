/**
 * @file
 * PsiRouter: a shared-nothing cluster front end for psinet.
 *
 * One router process fronts N independent PsiServer backends:
 *
 *     clients ──► poll loop ──► consistent-hash ring ──► backend 0
 *        ▲         (frames,        (program source        backend 1
 *        │          routing)        content hash)         ...
 *        └────────── RESULTs forwarded back ◄─────────────┘
 *
 * Sharding is by the program's source-content hash - the same key
 * the backends' ProgramCache uses - so every request for one program
 * lands on the one backend whose compiled image and warm engines
 * already hold it.  Membership changes remap only the dead backend's
 * shard (consistent hashing), so a failure never flushes the
 * survivors' caches.
 *
 * The router speaks protocol v2 on both sides: clients may HELLO
 * (the ack carries kFeatureRouting so a client can tell a router
 * from a plain server), and the router opens every backend
 * connection with its own HELLO.  SUBMITs are forwarded with
 * router-minted tags (per-backend pipelining, many in flight);
 * RESULTs are mapped back to the originating client connection and
 * its original tag.  STATS / METRICS / TRACE answer with the
 * *router's* view (per-backend routed/retried/ejected counters and
 * the shard-affinity hit ratio); clients that want a backend's
 * engine metrics ask that backend directly.
 *
 * Failure handling mirrors the client library's submitRetry
 * contract, applied per backend connection:
 *
 *  - health: a periodic STATS probe rides each backend connection;
 *    consecutive probe timeouts (or any transport error) eject the
 *    backend from the ring, and a jittered-backoff reconnect loop
 *    re-admits it when it answers again;
 *  - failover: when a backend dies, exactly its *unacknowledged*
 *    requests (forwarded, no RESULT yet) are resubmitted to the
 *    ring successor under fresh tags; a RESULT bearing a superseded
 *    tag is dropped, never double-delivered, so a backend killed
 *    mid-batch loses zero requests and duplicates none;
 *  - backpressure: an OVERLOADED / DRAINING refusal from the owner
 *    is retried once per remaining ring member before the refusal
 *    is passed through to the client.
 *
 * Deadlines are anchored at the router: each forward (and each
 * failover resubmit) carries only the remaining budget, and a
 * request whose budget dies during failover is answered Timeout by
 * the router itself.
 */

#ifndef PSI_ROUTER_ROUTER_HPP
#define PSI_ROUTER_ROUTER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/backoff.hpp"
#include "base/table.hpp"
#include "net/wire.hpp"
#include "router/hash_ring.hpp"

namespace psi {
namespace router {

/** One backend address, parsed from "host:port". */
struct BackendAddr
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    /** Parse "host:port" (or ":port" / bare "port" for loopback);
     *  nullopt with @p error set on bad input. */
    static std::optional<BackendAddr>
    parse(const std::string &spec, std::string *error = nullptr);

    std::string str() const;
};

/** Point-in-time router counters (see PsiRouter::metrics()). */
struct RouterMetrics
{
    struct Backend
    {
        std::string addr;
        bool admitted = false;       ///< currently in the ring
        std::uint64_t routed = 0;    ///< SUBMITs forwarded here
        std::uint64_t completed = 0; ///< RESULTs relayed from here
        std::uint64_t retried = 0;   ///< failover resubmits sent here
        std::uint64_t refusals = 0;  ///< OVERLOADED/DRAINING received
        std::uint64_t ejections = 0; ///< times removed from the ring
    };

    std::vector<Backend> backends;
    std::uint64_t clientConns = 0;   ///< client connections accepted
    std::uint64_t submits = 0;       ///< SUBMITs received
    std::uint64_t affinityHits = 0;  ///< forwards to the home backend
    std::uint64_t affinityMisses = 0;///< forwards diverted elsewhere
    std::uint64_t unknownWorkload = 0;
    std::uint64_t noBackend = 0;     ///< refused: ring was empty
    std::uint64_t routerTimeouts = 0;///< budget died during failover
    std::uint64_t staleDropped = 0;  ///< RESULTs for superseded tags
    std::uint64_t clientGone = 0;    ///< RESULTs for closed clients

    /** Fraction of forwards that reached the key's home backend
     *  (the full-membership ring owner), in [0, 1]. */
    double affinityRatio() const;

    Table table() const;

    /** Flat JSON object (the router's STATS reply). */
    std::string json(std::uint64_t wall_ns = 0) const;

    /** Prometheus text exposition (the router's METRICS reply). */
    std::string prometheus(std::uint64_t wall_ns = 0) const;
};

/** Non-blocking TCP router in front of N PsiServer backends. */
class PsiRouter
{
  public:
    struct Config
    {
        std::string bindAddr = "127.0.0.1";
        std::uint16_t port = 0; ///< 0 = ephemeral (see port())
        std::vector<BackendAddr> backends;
        /** Ring points per backend (balance knob). */
        unsigned vnodes = 128;
        /** Idle gap between health probes on a live backend. */
        std::uint64_t probeIntervalNs = 200'000'000;
        /** A probe unanswered this long counts one failure. */
        std::uint64_t probeTimeoutNs = 1'000'000'000;
        /** Consecutive probe failures before ejection (transport
         *  errors eject immediately regardless). */
        unsigned ejectAfterFailures = 3;
        /** Non-blocking connect attempts older than this fail. */
        std::uint64_t connectTimeoutNs = 1'000'000'000;
        /** Reconnect backoff for ejected backends. */
        Backoff::Config readmission{50'000'000, 2'000'000'000, 2.0,
                                    1};
        /** A client buffering more reply bytes than this is a slow
         *  consumer and gets dropped. */
        std::size_t maxWriteBuffer = 8u << 20;
        /** Listener SO_REUSEPORT (multi-router front doors). */
        bool reusePort = false;
    };

    PsiRouter();
    explicit PsiRouter(const Config &config);
    ~PsiRouter();

    PsiRouter(const PsiRouter &) = delete;
    PsiRouter &operator=(const PsiRouter &) = delete;

    /**
     * Bind + listen and begin dialing the backends (admission
     * completes inside run()).
     * @return false with @p error set when the address is unusable
     *         or no backends were configured.
     */
    bool start(std::string *error = nullptr);

    /** Actual listening port (after an ephemeral bind). */
    std::uint16_t port() const { return _port; }

    /** Event loop; returns after a drain completes. */
    void run();

    /** Begin graceful drain: stop accepting, refuse new SUBMITs,
     *  finish every forwarded request, flush, return from run().
     *  Async-signal-safe (see installSignalHandlers()). */
    void requestDrain();

    bool draining() const
    {
        return _drain.load(std::memory_order_acquire);
    }

    /** Route SIGINT and SIGTERM to this router's requestDrain(). */
    void installSignalHandlers();

    RouterMetrics metrics() const;

  private:
    /** Backend connection lifecycle. */
    enum class BState : std::uint8_t
    {
        Ejected,    ///< down; reconnect scheduled
        Connecting, ///< non-blocking connect in flight
        Admitted,   ///< connected and in the ring
    };

    using Clock = std::chrono::steady_clock;

    struct Backend
    {
        BackendAddr addr;
        std::uint32_t index = 0;
        std::atomic<BState> state{BState::Ejected};
        int fd = -1;
        std::string rbuf;
        std::string wbuf;
        std::size_t woff = 0;
        /** Router tags forwarded here, RESULT not yet seen. */
        std::set<std::uint64_t> outstanding;
        unsigned failures = 0;        ///< consecutive probe failures
        bool probeOutstanding = false;
        Clock::time_point probeSentAt{};
        Clock::time_point nextProbeAt{};  ///< next probe / redial
        Clock::time_point connectStartAt{};
        Backoff backoff;
        bool everAdmitted = false;

        /** @name Counters (loop thread writes, metrics() reads) */
        /// @{
        std::atomic<std::uint64_t> routed{0};
        std::atomic<std::uint64_t> completed{0};
        std::atomic<std::uint64_t> retried{0};
        std::atomic<std::uint64_t> refusals{0};
        std::atomic<std::uint64_t> ejections{0};
        /// @}
    };

    struct Conn
    {
        int fd = -1;
        std::uint64_t id = 0;
        std::string rbuf;
        std::string wbuf;
        std::size_t woff = 0;
    };

    /** One client request in flight toward some backend. */
    struct Pending
    {
        std::uint64_t clientConnId = 0;
        std::uint64_t clientTag = 0;
        std::string workload;
        std::string tenant;           ///< forwarded fairness unit
        /** Forwarded execution mode (v2.2 fast dispatch). */
        interp::ExecMode mode = interp::ExecMode::Fidelity;
        bool hasMode = false;         ///< mode byte was on the wire
        std::uint64_t key = 0;        ///< source-content hash
        std::uint32_t backend = 0;    ///< current target
        std::vector<std::uint32_t> tried;
        bool hasDeadline = false;
        Clock::time_point deadlineAt{};
        bool isRetry = false;         ///< next forward is a failover
    };

    void pollOnce();
    void acceptConnections();
    bool handleClientReadable(Conn &conn);
    bool handleClientMessage(Conn &conn, net::Message &&msg);
    void handleSubmit(Conn &conn, net::SubmitMsg &&msg);
    /** Forward @p pending to @p target under a fresh router tag. */
    void forwardToBackend(std::uint32_t target, Pending &&pending);
    /** Reply to the pending request's client (drops when gone). */
    void respondToClient(const Pending &pending, net::ResultMsg msg);
    void refuseClient(const Pending &pending, net::WireStatus status,
                      std::string why);
    void queueReply(Conn &conn, const net::Message &msg);
    bool flushConn(Conn &conn);
    void closeConn(std::uint64_t id);

    void serviceBackendTimers();
    void startConnect(Backend &backend);
    void onBackendConnected(Backend &backend);
    bool finishConnect(Backend &backend);
    bool handleBackendReadable(Backend &backend);
    bool handleBackendMessage(Backend &backend, net::Message &&msg);
    /** Drop the connection, leave the ring, fail over every
     *  outstanding request, schedule a reconnect. */
    void eject(Backend &backend, const std::string &why);
    /** Resubmit one orphaned pending request to the ring successor
     *  (or refuse it when the ring is exhausted/empty). */
    void failover(Pending &&pending);
    void queueToBackend(Backend &backend, const net::Message &msg);
    bool flushBackend(Backend &backend);
    void scheduleRedial(Backend &backend);

    void drainWakePipe();
    bool drainComplete() const;
    int pollTimeoutMs() const;

    static std::uint64_t
    nsBetween(Clock::time_point from, Clock::time_point to)
    {
        return to <= from
            ? 0
            : static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      to - from)
                      .count());
    }

    Config _config;
    int _listenFd = -1;
    int _wakeRead = -1;
    int _wakeWrite = -1;
    std::uint16_t _port = 0;
    std::uint64_t _nextConnId = 1;
    std::uint64_t _nextRouterTag = 1;
    std::map<std::uint64_t, Conn> _conns;
    std::vector<std::uint64_t> _closing;
    std::vector<std::unique_ptr<Backend>> _backends;
    std::unordered_map<std::uint64_t, Pending> _pending;
    HashRing _ring;     ///< admitted members only (routing)
    HashRing _fullRing; ///< full membership (affinity accounting)
    std::atomic<bool> _drain{false};
    Clock::time_point _started;

    /** @name Router-level counters (loop writes, metrics() reads) */
    /// @{
    std::atomic<std::uint64_t> _clientConns{0};
    std::atomic<std::uint64_t> _submits{0};
    std::atomic<std::uint64_t> _affinityHits{0};
    std::atomic<std::uint64_t> _affinityMisses{0};
    std::atomic<std::uint64_t> _unknownWorkload{0};
    std::atomic<std::uint64_t> _noBackend{0};
    std::atomic<std::uint64_t> _routerTimeouts{0};
    std::atomic<std::uint64_t> _staleDropped{0};
    std::atomic<std::uint64_t> _clientGone{0};
    /// @}
};

} // namespace router
} // namespace psi

#endif // PSI_ROUTER_ROUTER_HPP
