/**
 * @file
 * Consistent-hash ring for psirouter's cache-affinity sharding.
 *
 * Keys are program source-content hashes (the ProgramCache key, see
 * kl0::CompiledProgram::hashSource), nodes are backend indices.  Each
 * node is planted at `vnodes` pseudo-random points on a 64-bit ring
 * (a seeded SplitMix64 stream per node, so the layout is a pure
 * function of the membership set); a key is owned by the first node
 * point at or clockwise after the key's own ring position.
 *
 * The two properties the router is built on, pinned by
 * tests/test_router.cpp:
 *
 *  - balance: with enough virtual nodes the key space splits evenly
 *    (the per-node share concentrates around 1/N), so backend caches
 *    and warm engines each serve a stable, comparably sized shard;
 *  - minimal remap: removing (or re-adding) one node moves only the
 *    keys that node owned - roughly 1/N of them - and every other
 *    key keeps its owner, so a backend failure does not flush the
 *    other backends' compiled-image caches.
 */

#ifndef PSI_ROUTER_HASH_RING_HPP
#define PSI_ROUTER_HASH_RING_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace psi {
namespace router {

/** Consistent-hash ring: u64 keys onto u32 node ids. */
class HashRing
{
  public:
    /** @param vnodes ring points planted per node (balance knob). */
    explicit HashRing(unsigned vnodes = 128);

    /** Plant @p node on the ring (no-op when present). */
    void add(std::uint32_t node);

    /** Remove @p node and all its ring points (no-op when absent). */
    void remove(std::uint32_t node);

    bool contains(std::uint32_t node) const;

    /** Number of member nodes (not ring points). */
    std::size_t size() const { return _nodes.size(); }

    bool empty() const { return _nodes.empty(); }

    /** Owner of @p key; nullopt when the ring is empty. */
    std::optional<std::uint32_t> owner(std::uint64_t key) const;

    /**
     * Up to @p n distinct nodes in ring order starting at the owner
     * of @p key: element 0 is the owner, element 1 the failover
     * successor, and so on.
     */
    std::vector<std::uint32_t> preference(std::uint64_t key,
                                          std::size_t n) const;

  private:
    unsigned _vnodes;
    std::map<std::uint64_t, std::uint32_t> _points;
    std::set<std::uint32_t> _nodes;
};

} // namespace router
} // namespace psi

#endif // PSI_ROUTER_HASH_RING_HPP
