#include "router/router.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>

#include "base/json.hpp"
#include "base/logging.hpp"
#include "base/trace.hpp"
#include "kl0/compiled_program.hpp"
#include "programs/registry.hpp"

namespace psi {
namespace router {

namespace {

/** Target of the SIGINT/SIGTERM drain handler. */
std::atomic<PsiRouter *> g_signalRouter{nullptr};

extern "C" void
routerDrainSignalHandler(int)
{
    if (PsiRouter *router = g_signalRouter.load())
        router->requestDrain();
}

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

std::uint64_t
nsSince(std::chrono::steady_clock::time_point from)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - from)
            .count());
}

} // namespace

// --------------------------------------------------------------------
// BackendAddr

std::optional<BackendAddr>
BackendAddr::parse(const std::string &spec, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = "bad backend '" + spec + "': " + why;
        return std::nullopt;
    };

    BackendAddr addr;
    std::string portPart;
    std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
        portPart = spec; // bare port, loopback host
    } else {
        if (colon > 0)
            addr.host = spec.substr(0, colon);
        portPart = spec.substr(colon + 1);
    }
    if (portPart.empty())
        return fail("missing port");
    unsigned long port = 0;
    for (char c : portPart) {
        if (c < '0' || c > '9')
            return fail("port is not a number");
        port = port * 10 + static_cast<unsigned long>(c - '0');
        if (port > 65535)
            return fail("port out of range");
    }
    if (port == 0)
        return fail("port out of range");
    addr.port = static_cast<std::uint16_t>(port);
    return addr;
}

std::string
BackendAddr::str() const
{
    return host + ":" + std::to_string(port);
}

// --------------------------------------------------------------------
// RouterMetrics

double
RouterMetrics::affinityRatio() const
{
    std::uint64_t total = affinityHits + affinityMisses;
    return total == 0
        ? 1.0
        : static_cast<double>(affinityHits) /
              static_cast<double>(total);
}

Table
RouterMetrics::table() const
{
    Table t("psirouter backends");
    t.setHeader({"backend", "state", "routed", "completed",
                 "retried", "refusals", "ejections"});
    for (const Backend &b : backends)
        t.addRow({b.addr, b.admitted ? "admitted" : "ejected",
                  std::to_string(b.routed),
                  std::to_string(b.completed),
                  std::to_string(b.retried),
                  std::to_string(b.refusals),
                  std::to_string(b.ejections)});
    return t;
}

std::string
RouterMetrics::json(std::uint64_t wall_ns) const
{
    JsonWriter w;
    w.s("role", "router");
    w.u("backends", backends.size());
    std::uint64_t admitted = 0;
    for (const Backend &b : backends)
        admitted += b.admitted ? 1 : 0;
    w.u("backends_admitted", admitted);
    w.u("client_conns", clientConns);
    w.u("submits", submits);
    w.u("affinity_hits", affinityHits);
    w.u("affinity_misses", affinityMisses);
    w.f("affinity_ratio", affinityRatio(), 4);
    w.u("unknown_workload", unknownWorkload);
    w.u("no_backend", noBackend);
    w.u("router_timeouts", routerTimeouts);
    w.u("stale_dropped", staleDropped);
    w.u("client_gone", clientGone);
    for (std::size_t i = 0; i < backends.size(); ++i) {
        const Backend &b = backends[i];
        const std::string p = "backend_" + std::to_string(i) + "_";
        w.s(p + "addr", b.addr);
        w.u(p + "admitted", b.admitted ? 1 : 0);
        w.u(p + "routed", b.routed);
        w.u(p + "completed", b.completed);
        w.u(p + "retried", b.retried);
        w.u(p + "refusals", b.refusals);
        w.u(p + "ejections", b.ejections);
    }
    w.u("wall_ns", wall_ns);
    return w.str();
}

std::string
RouterMetrics::prometheus(std::uint64_t wall_ns) const
{
    std::ostringstream os;
    auto counter = [&os](const char *name, std::uint64_t v) {
        os << "# TYPE " << name << " counter\n"
           << name << ' ' << v << '\n';
    };
    auto family = [&](const char *name, const char *kind,
                      auto pick) {
        os << "# TYPE " << name << ' ' << kind << '\n';
        for (const Backend &b : backends)
            os << name << "{backend=\"" << b.addr << "\"} "
               << pick(b) << '\n';
    };

    os << "# TYPE psi_router_backends gauge\n"
       << "psi_router_backends " << backends.size() << '\n';
    family("psi_router_backend_admitted", "gauge",
           [](const Backend &b) { return b.admitted ? 1 : 0; });
    family("psi_router_routed_total", "counter",
           [](const Backend &b) { return b.routed; });
    family("psi_router_completed_total", "counter",
           [](const Backend &b) { return b.completed; });
    family("psi_router_retried_total", "counter",
           [](const Backend &b) { return b.retried; });
    family("psi_router_refusals_total", "counter",
           [](const Backend &b) { return b.refusals; });
    family("psi_router_ejections_total", "counter",
           [](const Backend &b) { return b.ejections; });

    counter("psi_router_client_conns_total", clientConns);
    counter("psi_router_submits_total", submits);
    counter("psi_router_affinity_hits_total", affinityHits);
    counter("psi_router_affinity_misses_total", affinityMisses);
    os << "# TYPE psi_router_affinity_ratio gauge\n"
       << "psi_router_affinity_ratio ";
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4f", affinityRatio());
        os << buf << '\n';
    }
    counter("psi_router_unknown_workload_total", unknownWorkload);
    counter("psi_router_no_backend_total", noBackend);
    counter("psi_router_timeouts_total", routerTimeouts);
    counter("psi_router_stale_dropped_total", staleDropped);
    counter("psi_router_client_gone_total", clientGone);
    os << "# TYPE psi_router_uptime_seconds counter\n"
       << "psi_router_uptime_seconds "
       << static_cast<double>(wall_ns) / 1e9 << '\n';
    return os.str();
}

// --------------------------------------------------------------------
// PsiRouter

PsiRouter::PsiRouter() : PsiRouter(Config()) {}

PsiRouter::PsiRouter(const Config &config)
    : _config(config),
      _ring(config.vnodes),
      _fullRing(config.vnodes),
      _started(Clock::now())
{
    for (std::size_t i = 0; i < _config.backends.size(); ++i) {
        auto backend = std::make_unique<Backend>();
        backend->addr = _config.backends[i];
        backend->index = static_cast<std::uint32_t>(i);
        Backoff::Config bc = _config.readmission;
        // Distinct jitter stream per backend so simultaneous deaths
        // don't redial in lockstep.
        bc.seed = SplitMix64(bc.seed ^ (i + 1)).next();
        backend->backoff = Backoff(bc);
        _backends.push_back(std::move(backend));
        // The full ring never changes: it defines each key's *home*
        // backend for affinity accounting even while members are
        // ejected.
        _fullRing.add(static_cast<std::uint32_t>(i));
    }
}

PsiRouter::~PsiRouter()
{
    if (g_signalRouter.load() == this)
        g_signalRouter.store(nullptr);
    for (auto &entry : _conns)
        closeFd(entry.second.fd);
    for (auto &backend : _backends)
        closeFd(backend->fd);
    closeFd(_listenFd);
    closeFd(_wakeRead);
    closeFd(_wakeWrite);
}

bool
PsiRouter::start(std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what + ": " + std::strerror(errno);
        closeFd(_listenFd);
        closeFd(_wakeRead);
        closeFd(_wakeWrite);
        return false;
    };

    if (_backends.empty()) {
        if (error)
            *error = "no backends configured";
        return false;
    }

    int pipefds[2];
    if (::pipe(pipefds) != 0)
        return fail("pipe");
    _wakeRead = pipefds[0];
    _wakeWrite = pipefds[1];
    if (!setNonBlocking(_wakeRead) || !setNonBlocking(_wakeWrite))
        return fail("fcntl(wake pipe)");

    _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_listenFd < 0)
        return fail("socket");
    int one = 1;
    ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    if (_config.reusePort)
        ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(_config.port);
    if (::inet_pton(AF_INET, _config.bindAddr.c_str(),
                    &addr.sin_addr) != 1) {
        if (error)
            *error = "bad bind address '" + _config.bindAddr + "'";
        closeFd(_listenFd);
        closeFd(_wakeRead);
        closeFd(_wakeWrite);
        return false;
    }
    if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind " + _config.bindAddr + ":" +
                    std::to_string(_config.port));
    if (::listen(_listenFd, 128) != 0)
        return fail("listen");
    if (!setNonBlocking(_listenFd))
        return fail("fcntl(listener)");

    socklen_t len = sizeof(addr);
    if (::getsockname(_listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("getsockname");
    _port = ntohs(addr.sin_port);

    // Dial every backend eagerly so the first SUBMIT usually finds a
    // populated ring; admission completes inside run()'s poll loop.
    for (auto &backend : _backends)
        startConnect(*backend);
    return true;
}

void
PsiRouter::requestDrain()
{
    _drain.store(true, std::memory_order_release);
    // Wake the poll loop; write(2) is async-signal-safe and the pipe
    // is non-blocking, so this is safe inside a signal handler.
    if (_wakeWrite >= 0) {
        char byte = 'd';
        [[maybe_unused]] ssize_t n = ::write(_wakeWrite, &byte, 1);
    }
}

void
PsiRouter::installSignalHandlers()
{
    g_signalRouter.store(this);
    struct sigaction sa{};
    sa.sa_handler = routerDrainSignalHandler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

void
PsiRouter::run()
{
    PSI_ASSERT(_listenFd >= 0, "PsiRouter::run() before start()");
    while (!drainComplete())
        pollOnce();

    closeFd(_listenFd);
    for (auto &entry : _conns)
        closeFd(entry.second.fd);
    _conns.clear();
    for (auto &backend : _backends) {
        closeFd(backend->fd);
        backend->state.store(BState::Ejected,
                             std::memory_order_release);
    }
}

bool
PsiRouter::drainComplete() const
{
    if (!_drain.load(std::memory_order_acquire))
        return false;
    // Every accepted request must be answered before exit; the
    // backends still owe us _pending RESULTs.
    if (!_pending.empty())
        return false;
    for (const auto &entry : _conns) {
        const Conn &conn = entry.second;
        if (conn.woff < conn.wbuf.size())
            return false;
    }
    return true;
}

int
PsiRouter::pollTimeoutMs() const
{
    Clock::time_point next = Clock::now() + std::chrono::seconds(1);
    for (const auto &backend : _backends) {
        switch (backend->state.load(std::memory_order_relaxed)) {
          case BState::Ejected:
            next = std::min(next, backend->nextProbeAt);
            break;
          case BState::Connecting:
            next = std::min(
                next, backend->connectStartAt +
                          std::chrono::nanoseconds(
                              _config.connectTimeoutNs));
            break;
          case BState::Admitted:
            next = std::min(
                next, backend->probeOutstanding
                          ? backend->probeSentAt +
                                std::chrono::nanoseconds(
                                    _config.probeTimeoutNs)
                          : backend->nextProbeAt);
            break;
        }
    }
    Clock::time_point now = Clock::now();
    if (next <= now)
        return 0;
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  next - now)
                  .count();
    return static_cast<int>(std::min<long long>(ms + 1, 1000));
}

void
PsiRouter::pollOnce()
{
    bool draining = _drain.load(std::memory_order_acquire);
    if (draining)
        closeFd(_listenFd); // stop accepting; run() owns the exit

    serviceBackendTimers();

    std::vector<pollfd> fds;
    fds.reserve(_conns.size() + _backends.size() + 2);
    fds.push_back({_wakeRead, POLLIN, 0});
    std::size_t listenerSlot = 0;
    if (!draining && _listenFd >= 0) {
        listenerSlot = fds.size();
        fds.push_back({_listenFd, POLLIN, 0});
    }

    std::size_t backendBase = fds.size();
    std::vector<std::uint32_t> backendOrder;
    for (auto &backend : _backends) {
        BState state =
            backend->state.load(std::memory_order_relaxed);
        if (backend->fd < 0 || state == BState::Ejected)
            continue;
        short events = 0;
        if (state == BState::Connecting) {
            events = POLLOUT;
        } else {
            events = POLLIN;
            if (backend->woff < backend->wbuf.size())
                events |= POLLOUT;
        }
        fds.push_back({backend->fd, events, 0});
        backendOrder.push_back(backend->index);
    }

    std::size_t connBase = fds.size();
    std::vector<std::uint64_t> order;
    order.reserve(_conns.size());
    for (auto &entry : _conns) {
        Conn &conn = entry.second;
        short events = POLLIN;
        if (conn.woff < conn.wbuf.size())
            events |= POLLOUT;
        fds.push_back({conn.fd, events, 0});
        order.push_back(conn.id);
    }

    int ready = ::poll(fds.data(), fds.size(), pollTimeoutMs());
    if (ready < 0) {
        if (errno == EINTR)
            return;
        panic("router poll failed: ", std::strerror(errno));
    }

    if (fds[0].revents & POLLIN)
        drainWakePipe();
    if (!draining && _listenFd >= 0 &&
        (fds[listenerSlot].revents & POLLIN))
        acceptConnections();

    for (std::size_t i = 0; i < backendOrder.size(); ++i) {
        Backend &backend = *_backends[backendOrder[i]];
        short revents = fds[backendBase + i].revents;
        if (revents == 0)
            continue;
        BState state =
            backend.state.load(std::memory_order_relaxed);
        if (state == BState::Connecting) {
            if (revents & (POLLOUT | POLLERR | POLLHUP))
                finishConnect(backend);
            continue;
        }
        if (state != BState::Admitted || backend.fd < 0)
            continue; // ejected earlier in this pass
        bool ok = true;
        if (revents & (POLLERR | POLLNVAL))
            ok = false;
        if (ok && (revents & (POLLIN | POLLHUP)))
            ok = handleBackendReadable(backend);
        if (ok && (revents & POLLOUT))
            ok = flushBackend(backend);
        if (!ok &&
            backend.state.load(std::memory_order_relaxed) ==
                BState::Admitted)
            eject(backend, "connection lost");
    }

    for (std::size_t i = 0; i < order.size(); ++i) {
        auto it = _conns.find(order[i]);
        if (it == _conns.end())
            continue;
        Conn &conn = it->second;
        short revents = fds[connBase + i].revents;
        bool ok = true;
        if (revents & (POLLERR | POLLHUP | POLLNVAL))
            ok = (revents & POLLIN) != 0; // drain final bytes first
        if (ok && (revents & POLLIN))
            ok = handleClientReadable(conn);
        if (ok && (revents & POLLOUT))
            ok = flushConn(conn);
        if (!ok)
            _closing.push_back(conn.id);
    }

    for (std::uint64_t id : _closing)
        closeConn(id);
    _closing.clear();
}

void
PsiRouter::acceptConnections()
{
    for (;;) {
        int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                return;
            warn("psirouter: accept failed: ",
                 std::strerror(errno));
            return;
        }
        if (!setNonBlocking(fd)) {
            ::close(fd);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));

        Conn conn;
        conn.fd = fd;
        conn.id = _nextConnId++;
        _conns.emplace(conn.id, std::move(conn));
        _clientConns.fetch_add(1, std::memory_order_relaxed);
    }
}

bool
PsiRouter::handleClientReadable(Conn &conn)
{
    char chunk[64 * 1024];
    for (;;) {
        ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            conn.rbuf.append(chunk, static_cast<std::size_t>(n));
            if (n < static_cast<ssize_t>(sizeof(chunk)))
                break;
            continue;
        }
        if (n == 0)
            return false; // peer closed
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        return false;
    }

    std::string payload;
    for (;;) {
        switch (net::extractFrame(conn.rbuf, payload)) {
          case net::FrameResult::NeedMore:
            return true;
          case net::FrameResult::Bad:
            warn("psirouter: dropping client ", conn.id,
                 " (oversized or empty frame)");
            return false;
          case net::FrameResult::Frame:
            break;
        }
        std::string derror;
        std::optional<net::Message> msg =
            net::decode(payload, &derror);
        if (!msg) {
            warn("psirouter: dropping client ", conn.id, " (",
                 derror, ")");
            return false;
        }
        if (!handleClientMessage(conn, std::move(*msg)))
            return false;
    }
}

bool
PsiRouter::handleClientMessage(Conn &conn, net::Message &&msg)
{
    if (auto *submit = std::get_if<net::SubmitMsg>(&msg)) {
        handleSubmit(conn, std::move(*submit));
        return true;
    }
    if (auto *hello = std::get_if<net::HelloMsg>(&msg)) {
        if (hello->versionMajor == 1 ||
            hello->versionMajor == net::kProtocolMajor) {
            net::HelloAckMsg ack;
            ack.versionMajor = net::kProtocolMajor;
            ack.versionMinor = net::kProtocolMinor;
            // The router answers with kFeatureRouting on top of the
            // plain-server feature set: a client that offered the
            // bit can tell a router from a backend by the ack.
            ack.features = hello->features &
                           (net::kSupportedFeatures |
                            net::kFeatureRouting);
            queueReply(conn, net::Message(std::move(ack)));
            return flushConn(conn);
        }
        net::ErrorMsg err;
        err.code = net::kErrUnsupportedVersion;
        err.message =
            "unsupported protocol major " +
            std::to_string(hello->versionMajor) +
            "; router speaks " +
            std::to_string(net::kProtocolMajor) +
            " (and accepts 1)";
        queueReply(conn, net::Message(std::move(err)));
        flushConn(conn);
        return false;
    }
    if (std::get_if<net::StatsMsg>(&msg) != nullptr) {
        net::StatsReplyMsg reply;
        reply.json = metrics().json(nsSince(_started));
        queueReply(conn, net::Message(std::move(reply)));
        return flushConn(conn);
    }
    if (std::get_if<net::MetricsMsg>(&msg) != nullptr) {
        net::MetricsReplyMsg reply;
        reply.text = metrics().prometheus(nsSince(_started));
        queueReply(conn, net::Message(std::move(reply)));
        return flushConn(conn);
    }
    if (std::get_if<net::TraceMsg>(&msg) != nullptr) {
        net::TraceReplyMsg reply;
        reply.json = trace::chromeJson(trace::collect());
        queueReply(conn, net::Message(std::move(reply)));
        return flushConn(conn);
    }
    if (std::get_if<net::DrainMsg>(&msg) != nullptr) {
        requestDrain();
        queueReply(conn, net::Message(net::DrainAckMsg{}));
        return flushConn(conn);
    }
    warn("psirouter: dropping client ", conn.id,
         " (unexpected message type ",
         static_cast<int>(net::messageType(msg)), ")");
    return false;
}

void
PsiRouter::handleSubmit(Conn &conn, net::SubmitMsg &&msg)
{
    auto refuse = [&](net::WireStatus status, std::string why) {
        net::ResultMsg reply;
        reply.tag = msg.tag;
        reply.status = status;
        reply.error = std::move(why);
        queueReply(conn, net::Message(std::move(reply)));
        flushConn(conn);
    };

    if (_drain.load(std::memory_order_acquire)) {
        refuse(net::WireStatus::Draining, "router is draining");
        return;
    }

    _submits.fetch_add(1, std::memory_order_relaxed);

    // Workload resolution happens here, not just on the backend: the
    // routing key is the program's *source-content* hash (the
    // ProgramCache key), so every alias of the same source rides the
    // same shard.
    const programs::BenchProgram *program =
        programs::findProgramById(msg.workload);
    if (program == nullptr) {
        _unknownWorkload.fetch_add(1, std::memory_order_relaxed);
        refuse(net::WireStatus::UnknownWorkload,
               "unknown workload '" + msg.workload +
                   "'; available: " + programs::programIdList());
        return;
    }

    Pending pending;
    pending.clientConnId = conn.id;
    pending.clientTag = msg.tag;
    pending.workload = std::move(msg.workload);
    pending.tenant = std::move(msg.tenant);
    pending.mode = msg.mode;
    pending.hasMode = msg.hasMode;
    pending.key = kl0::CompiledProgram::hashSource(program->source);
    if (msg.deadlineNs != 0) {
        pending.hasDeadline = true;
        pending.deadlineAt =
            Clock::now() + std::chrono::nanoseconds(msg.deadlineNs);
    }

    std::optional<std::uint32_t> target = _ring.owner(pending.key);
    if (!target) {
        _noBackend.fetch_add(1, std::memory_order_relaxed);
        refuse(net::WireStatus::Overloaded,
               "no backends available; retry later");
        return;
    }
    forwardToBackend(*target, std::move(pending));
}

void
PsiRouter::forwardToBackend(std::uint32_t target, Pending &&pending)
{
    Backend &backend = *_backends[target];
    std::uint64_t remainNs = 0;
    if (pending.hasDeadline) {
        remainNs = nsBetween(Clock::now(), pending.deadlineAt);
        if (remainNs == 0) {
            _routerTimeouts.fetch_add(1,
                                      std::memory_order_relaxed);
            refuseClient(pending, net::WireStatus::Timeout,
                         "deadline expired at router");
            return;
        }
    }

    // Affinity is judged against the *full* ring: a forward counts
    // as a hit only when it reaches the key's home backend, so
    // ejection diverts and refusal failovers show up as misses.
    if (!pending.isRetry) {
        auto home = _fullRing.owner(pending.key);
        if (home && *home == target)
            _affinityHits.fetch_add(1, std::memory_order_relaxed);
        else
            _affinityMisses.fetch_add(1,
                                      std::memory_order_relaxed);
        backend.routed.fetch_add(1, std::memory_order_relaxed);
    } else {
        backend.retried.fetch_add(1, std::memory_order_relaxed);
    }

    // A fresh router tag per attempt is what makes failover
    // exactly-once: a RESULT from a superseded attempt no longer
    // matches any pending entry and is dropped as stale.
    std::uint64_t routerTag = _nextRouterTag++;
    pending.backend = target;
    if (pending.tried.empty() || pending.tried.back() != target)
        pending.tried.push_back(target);
    backend.outstanding.insert(routerTag);

    net::SubmitBuilder fwd(routerTag, pending.workload);
    fwd.deadlineNs(remainNs);
    // The tenant rides through so backend-side fairness sees the
    // same tenant the client declared (v1 senders forward as the
    // default tenant).  The execution mode rides through the same
    // way, in the v2.2 form only when the client used it, so a
    // cluster of pre-v2.2 backends keeps serving fidelity traffic.
    fwd.tenant(pending.tenant);
    if (pending.hasMode)
        fwd.mode(pending.mode);
    _pending.emplace(routerTag, std::move(pending));

    queueToBackend(backend, net::Message(std::move(fwd).build()));
    if (!flushBackend(backend))
        eject(backend, "send failed");
}

void
PsiRouter::respondToClient(const Pending &pending,
                           net::ResultMsg msg)
{
    auto it = _conns.find(pending.clientConnId);
    if (it == _conns.end()) {
        _clientGone.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    msg.tag = pending.clientTag;
    queueReply(it->second, net::Message(std::move(msg)));
    if (!flushConn(it->second))
        _closing.push_back(pending.clientConnId);
}

void
PsiRouter::refuseClient(const Pending &pending,
                        net::WireStatus status, std::string why)
{
    net::ResultMsg msg;
    msg.status = status;
    msg.error = std::move(why);
    respondToClient(pending, std::move(msg));
}

void
PsiRouter::queueReply(Conn &conn, const net::Message &msg)
{
    conn.wbuf.append(net::encode(msg));
    if (conn.wbuf.size() - conn.woff > _config.maxWriteBuffer) {
        warn("psirouter: dropping slow consumer connection ",
             conn.id);
        _closing.push_back(conn.id);
    }
}

bool
PsiRouter::flushConn(Conn &conn)
{
    while (conn.woff < conn.wbuf.size()) {
        ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                           conn.wbuf.size() - conn.woff,
                           MSG_NOSIGNAL);
        if (n > 0) {
            conn.woff += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        return false;
    }
    if (conn.woff == conn.wbuf.size()) {
        conn.wbuf.clear();
        conn.woff = 0;
    } else if (conn.woff > (1u << 20)) {
        conn.wbuf.erase(0, conn.woff);
        conn.woff = 0;
    }
    return true;
}

void
PsiRouter::closeConn(std::uint64_t id)
{
    auto it = _conns.find(id);
    if (it == _conns.end())
        return;
    closeFd(it->second.fd);
    _conns.erase(it);
}

// --------------------------------------------------------------------
// Backend lifecycle

void
PsiRouter::serviceBackendTimers()
{
    Clock::time_point now = Clock::now();
    for (auto &entry : _backends) {
        Backend &backend = *entry;
        switch (backend.state.load(std::memory_order_relaxed)) {
          case BState::Ejected:
            if (now >= backend.nextProbeAt)
                startConnect(backend);
            break;
          case BState::Connecting:
            if (nsBetween(backend.connectStartAt, now) >
                _config.connectTimeoutNs) {
                closeFd(backend.fd);
                scheduleRedial(backend);
            }
            break;
          case BState::Admitted:
            if (backend.probeOutstanding) {
                if (nsBetween(backend.probeSentAt, now) >
                    _config.probeTimeoutNs) {
                    backend.probeOutstanding = false;
                    if (++backend.failures >=
                        _config.ejectAfterFailures) {
                        eject(backend, "health probe timeout");
                        break;
                    }
                    // Re-probe immediately: the next timeout (or
                    // answer) keeps the consecutive count moving.
                    backend.probeOutstanding = true;
                    backend.probeSentAt = now;
                    queueToBackend(backend,
                                   net::Message(net::StatsMsg{}));
                    if (!flushBackend(backend))
                        eject(backend, "probe send failed");
                }
            } else if (now >= backend.nextProbeAt) {
                backend.probeOutstanding = true;
                backend.probeSentAt = now;
                queueToBackend(backend,
                               net::Message(net::StatsMsg{}));
                if (!flushBackend(backend))
                    eject(backend, "probe send failed");
            }
            break;
        }
    }
}

void
PsiRouter::startConnect(Backend &backend)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        scheduleRedial(backend);
        return;
    }
    if (!setNonBlocking(fd)) {
        ::close(fd);
        scheduleRedial(backend);
        return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(backend.addr.port);
    if (::inet_pton(AF_INET, backend.addr.host.c_str(),
                    &addr.sin_addr) != 1) {
        warn("psirouter: bad backend address '", backend.addr.host,
             "'");
        ::close(fd);
        scheduleRedial(backend);
        return;
    }

    backend.fd = fd;
    int rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    if (rc == 0) {
        onBackendConnected(backend);
        return;
    }
    if (errno == EINPROGRESS) {
        backend.state.store(BState::Connecting,
                            std::memory_order_release);
        backend.connectStartAt = Clock::now();
        return;
    }
    closeFd(backend.fd);
    scheduleRedial(backend);
}

bool
PsiRouter::finishConnect(Backend &backend)
{
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(backend.fd, SOL_SOCKET, SO_ERROR, &err,
                     &len) != 0 ||
        err != 0) {
        closeFd(backend.fd);
        scheduleRedial(backend);
        return false;
    }
    onBackendConnected(backend);
    return true;
}

void
PsiRouter::onBackendConnected(Backend &backend)
{
    backend.state.store(BState::Admitted,
                        std::memory_order_release);
    backend.failures = 0;
    backend.probeOutstanding = false;
    backend.rbuf.clear();
    backend.wbuf.clear();
    backend.woff = 0;
    backend.backoff.reset();
    backend.everAdmitted = true;
    backend.nextProbeAt =
        Clock::now() +
        std::chrono::nanoseconds(_config.probeIntervalNs);
    _ring.add(backend.index);
    inform("psirouter: backend ", backend.addr.str(),
           " admitted (", _ring.size(), "/", _backends.size(),
           " in ring)");

    // Open with our own HELLO: a plain v2 server acks with the
    // intersection of features; the routing bit we offer is simply
    // absent from its reply.
    net::HelloMsg hello;
    hello.versionMajor = net::kProtocolMajor;
    hello.versionMinor = net::kProtocolMinor;
    hello.features = net::kSupportedFeatures |
                     net::kFeatureRouting;
    queueToBackend(backend, net::Message(std::move(hello)));
    if (!flushBackend(backend))
        eject(backend, "hello send failed");
}

bool
PsiRouter::handleBackendReadable(Backend &backend)
{
    char chunk[64 * 1024];
    for (;;) {
        ssize_t n = ::recv(backend.fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            backend.rbuf.append(chunk,
                                static_cast<std::size_t>(n));
            if (n < static_cast<ssize_t>(sizeof(chunk)))
                break;
            continue;
        }
        if (n == 0)
            return false; // backend closed
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        return false;
    }

    std::string payload;
    for (;;) {
        switch (net::extractFrame(backend.rbuf, payload)) {
          case net::FrameResult::NeedMore:
            return true;
          case net::FrameResult::Bad:
            warn("psirouter: backend ", backend.addr.str(),
                 " sent an oversized or empty frame");
            return false;
          case net::FrameResult::Frame:
            break;
        }
        std::string derror;
        std::optional<net::Message> msg =
            net::decode(payload, &derror);
        if (!msg) {
            warn("psirouter: backend ", backend.addr.str(), ": ",
                 derror);
            return false;
        }
        if (!handleBackendMessage(backend, std::move(*msg)))
            return false;
    }
}

bool
PsiRouter::handleBackendMessage(Backend &backend,
                                net::Message &&msg)
{
    // Any frame is proof of life: consecutive-failure counting only
    // tracks a backend that has gone fully silent.
    backend.failures = 0;

    if (auto *result = std::get_if<net::ResultMsg>(&msg)) {
        auto it = _pending.find(result->tag);
        if (it == _pending.end()) {
            // A RESULT for a superseded tag: the request was already
            // failed over (and possibly answered) elsewhere.
            _staleDropped.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        Pending pending = std::move(it->second);
        _pending.erase(it);
        _backends[pending.backend]->outstanding.erase(result->tag);

        const bool refusal =
            !result->ran() &&
            (result->status == net::WireStatus::Overloaded ||
             result->status == net::WireStatus::Draining);
        if (refusal) {
            backend.refusals.fetch_add(1,
                                       std::memory_order_relaxed);
            // Try the remaining ring members once each before the
            // refusal reaches the client.
            std::vector<std::uint32_t> pref =
                _ring.preference(pending.key, _ring.size());
            for (std::uint32_t candidate : pref) {
                bool tried = false;
                for (std::uint32_t t : pending.tried)
                    tried = tried || t == candidate;
                if (tried)
                    continue;
                pending.isRetry = true;
                forwardToBackend(candidate, std::move(pending));
                return true;
            }
            respondToClient(pending, std::move(*result));
            return true;
        }

        backend.completed.fetch_add(1, std::memory_order_relaxed);
        respondToClient(pending, std::move(*result));
        return true;
    }
    if (std::get_if<net::StatsReplyMsg>(&msg) != nullptr) {
        backend.probeOutstanding = false;
        backend.nextProbeAt =
            Clock::now() +
            std::chrono::nanoseconds(_config.probeIntervalNs);
        return true;
    }
    if (std::get_if<net::HelloAckMsg>(&msg) != nullptr)
        return true;
    if (auto *err = std::get_if<net::ErrorMsg>(&msg)) {
        warn("psirouter: backend ", backend.addr.str(),
             " refused us: ", err->message);
        // A protocol-level refusal will repeat on reconnect; back
        // off harder than a plain connection loss.
        backend.backoff.raiseFloor(_config.readmission.maxNs);
        return false;
    }
    if (std::get_if<net::DrainAckMsg>(&msg) != nullptr)
        return true;
    warn("psirouter: backend ", backend.addr.str(),
         " sent unexpected message type ",
         static_cast<int>(net::messageType(msg)));
    return false;
}

void
PsiRouter::eject(Backend &backend, const std::string &why)
{
    if (backend.state.load(std::memory_order_relaxed) ==
        BState::Admitted)
        backend.ejections.fetch_add(1, std::memory_order_relaxed);
    warn("psirouter: ejecting backend ", backend.addr.str(), " (",
         why, "), ", backend.outstanding.size(),
         " requests to fail over");
    _ring.remove(backend.index);
    closeFd(backend.fd);
    backend.rbuf.clear();
    backend.wbuf.clear();
    backend.woff = 0;
    backend.probeOutstanding = false;
    backend.failures = 0;
    scheduleRedial(backend);

    // Fail over exactly the unacknowledged requests.  Move the set
    // out first: forwardToBackend() below may recurse into eject()
    // on another backend, and each recursion shrinks the ring, so
    // the chain terminates.
    std::set<std::uint64_t> orphaned;
    orphaned.swap(backend.outstanding);
    for (std::uint64_t tag : orphaned) {
        auto it = _pending.find(tag);
        if (it == _pending.end())
            continue;
        Pending pending = std::move(it->second);
        _pending.erase(it);
        failover(std::move(pending));
    }
}

void
PsiRouter::failover(Pending &&pending)
{
    if (pending.hasDeadline &&
        Clock::now() >= pending.deadlineAt) {
        _routerTimeouts.fetch_add(1, std::memory_order_relaxed);
        refuseClient(pending, net::WireStatus::Timeout,
                     "deadline expired during failover");
        return;
    }
    // Ring successor: the preference list starts at the key's owner
    // on the *current* (post-ejection) ring, so the first member we
    // have not tried yet is the natural failover target.
    std::vector<std::uint32_t> pref =
        _ring.preference(pending.key, _ring.size());
    for (std::uint32_t candidate : pref) {
        bool tried = false;
        for (std::uint32_t t : pending.tried)
            tried = tried || t == candidate;
        if (tried)
            continue;
        pending.isRetry = true;
        forwardToBackend(candidate, std::move(pending));
        return;
    }
    // Every admitted backend was tried (or the ring is empty): allow
    // a full second lap before giving up only if membership changed;
    // otherwise refuse so the client's own submitRetry takes over.
    if (!pref.empty() && pending.tried.size() < 2 * _backends.size()) {
        pending.isRetry = true;
        pending.tried.clear();
        forwardToBackend(pref.front(), std::move(pending));
        return;
    }
    _noBackend.fetch_add(1, std::memory_order_relaxed);
    refuseClient(pending, net::WireStatus::Overloaded,
                 "no backend available after failover; retry later");
}

void
PsiRouter::queueToBackend(Backend &backend, const net::Message &msg)
{
    backend.wbuf.append(net::encode(msg));
}

bool
PsiRouter::flushBackend(Backend &backend)
{
    if (backend.fd < 0)
        return false;
    while (backend.woff < backend.wbuf.size()) {
        ssize_t n =
            ::send(backend.fd, backend.wbuf.data() + backend.woff,
                   backend.wbuf.size() - backend.woff,
                   MSG_NOSIGNAL);
        if (n > 0) {
            backend.woff += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        return false;
    }
    if (backend.woff == backend.wbuf.size()) {
        backend.wbuf.clear();
        backend.woff = 0;
    }
    return true;
}

void
PsiRouter::scheduleRedial(Backend &backend)
{
    backend.state.store(BState::Ejected,
                        std::memory_order_release);
    backend.nextProbeAt =
        Clock::now() +
        std::chrono::nanoseconds(backend.backoff.nextDelayNs());
}

void
PsiRouter::drainWakePipe()
{
    char buf[256];
    while (::read(_wakeRead, buf, sizeof(buf)) > 0) {
    }
}

RouterMetrics
PsiRouter::metrics() const
{
    RouterMetrics m;
    for (const auto &entry : _backends) {
        const Backend &b = *entry;
        RouterMetrics::Backend out;
        out.addr = b.addr.str();
        out.admitted = b.state.load(std::memory_order_acquire) ==
                       BState::Admitted;
        out.routed = b.routed.load(std::memory_order_relaxed);
        out.completed = b.completed.load(std::memory_order_relaxed);
        out.retried = b.retried.load(std::memory_order_relaxed);
        out.refusals = b.refusals.load(std::memory_order_relaxed);
        out.ejections = b.ejections.load(std::memory_order_relaxed);
        m.backends.push_back(std::move(out));
    }
    m.clientConns = _clientConns.load(std::memory_order_relaxed);
    m.submits = _submits.load(std::memory_order_relaxed);
    m.affinityHits = _affinityHits.load(std::memory_order_relaxed);
    m.affinityMisses =
        _affinityMisses.load(std::memory_order_relaxed);
    m.unknownWorkload =
        _unknownWorkload.load(std::memory_order_relaxed);
    m.noBackend = _noBackend.load(std::memory_order_relaxed);
    m.routerTimeouts =
        _routerTimeouts.load(std::memory_order_relaxed);
    m.staleDropped = _staleDropped.load(std::memory_order_relaxed);
    m.clientGone = _clientGone.load(std::memory_order_relaxed);
    return m;
}

} // namespace router
} // namespace psi
