#include "router/hash_ring.hpp"

#include "base/backoff.hpp"

namespace psi {
namespace router {

namespace {

/**
 * The ring position of a key.  Keys are already 64-bit content
 * hashes, but one more SplitMix64 step decorrelates them from the
 * node-point streams (which draw from the same generator family).
 */
std::uint64_t
keyPoint(std::uint64_t key)
{
    return SplitMix64(key).next();
}

} // namespace

HashRing::HashRing(unsigned vnodes)
    : _vnodes(vnodes == 0 ? 1 : vnodes)
{}

void
HashRing::add(std::uint32_t node)
{
    if (!_nodes.insert(node).second)
        return;
    // One deterministic point stream per node: membership alone
    // decides the layout, so every router instance (and a restarted
    // one) agrees on key ownership.
    SplitMix64 rng(0x9517'0cb7'0000'0000ull ^
                   (static_cast<std::uint64_t>(node) + 1));
    for (unsigned i = 0; i < _vnodes; ++i)
        _points.emplace(rng.next(), node);
}

void
HashRing::remove(std::uint32_t node)
{
    if (_nodes.erase(node) == 0)
        return;
    for (auto it = _points.begin(); it != _points.end();) {
        if (it->second == node)
            it = _points.erase(it);
        else
            ++it;
    }
}

bool
HashRing::contains(std::uint32_t node) const
{
    return _nodes.count(node) != 0;
}

std::optional<std::uint32_t>
HashRing::owner(std::uint64_t key) const
{
    if (_points.empty())
        return std::nullopt;
    auto it = _points.lower_bound(keyPoint(key));
    if (it == _points.end())
        it = _points.begin(); // wrap around
    return it->second;
}

std::vector<std::uint32_t>
HashRing::preference(std::uint64_t key, std::size_t n) const
{
    std::vector<std::uint32_t> out;
    if (_points.empty() || n == 0)
        return out;
    n = std::min(n, _nodes.size());
    std::set<std::uint32_t> seen;
    auto it = _points.lower_bound(keyPoint(key));
    // At most one full lap: every node appears within one circuit.
    for (std::size_t steps = 0;
         steps < _points.size() && out.size() < n; ++steps) {
        if (it == _points.end())
            it = _points.begin();
        if (seen.insert(it->second).second)
            out.push_back(it->second);
        ++it;
    }
    return out;
}

} // namespace router
} // namespace psi
