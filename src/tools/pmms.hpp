/**
 * @file
 * PMMS - the trace-driven cache memory simulator.
 *
 * Replays a memory-access trace recorded by COLLECT through Cache
 * instances of arbitrary configuration, exactly how the paper swept
 * cache capacity from 8 words to 8K words (Figure 1), compared one
 * 4K-word set against two (the direct-mapping question) and measured
 * store-in against store-through.
 *
 * Execution time under a configuration is reconstructed as
 *     T = steps * 200 ns + stall(config)
 * and the paper's performance improvement ratio is
 *     (T_nocache / T_cache - 1) * 100.
 */

#ifndef PSI_TOOLS_PMMS_HPP
#define PSI_TOOLS_PMMS_HPP

#include <cstdint>
#include <vector>

#include "mem/cache.hpp"
#include "mem/trace.hpp"

namespace psi {
namespace tools {

/** Result of replaying a trace through one cache configuration. */
struct PmmsResult
{
    CacheConfig config;
    CacheStats stats;
    std::uint64_t stallNs = 0;   ///< total memory stall time
    std::uint64_t timeNs = 0;    ///< steps * 200 + stall
    double hitPct = 0.0;

    /** The paper's performance improvement ratio (%). */
    double improvementPct = 0.0;
};

/** Trace-driven cache simulator. */
class Pmms
{
  public:
    /**
     * @param trace memory accesses recorded by COLLECT.
     * @param steps total microinstruction steps of the traced run
     *              (cache-independent part of the execution time).
     */
    Pmms(const std::vector<MemEvent> &trace, std::uint64_t steps);

    /** Replay through one configuration. */
    PmmsResult replay(const CacheConfig &config) const;

    /** Execution time with the cache disabled (every access slow). */
    std::uint64_t noCacheTimeNs() const;

    /**
     * Figure 1: sweep capacity over @p capacities with the other
     * parameters from @p base.
     */
    std::vector<PmmsResult>
    sweepCapacity(const std::vector<std::uint32_t> &capacities,
                  const CacheConfig &base = CacheConfig::psi()) const;

  private:
    const std::vector<MemEvent> *_trace;
    std::uint64_t _steps;
};

} // namespace tools
} // namespace psi

#endif // PSI_TOOLS_PMMS_HPP
