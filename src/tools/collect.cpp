#include "tools/collect.hpp"

#include <cstring>
#include <fstream>

namespace psi {
namespace tools {

void
Collector::attach(interp::Engine &engine)
{
    engine.seq().setTraceSink(&_steps);
    engine.mem().setTraceSink(&_mem);
}

void
Collector::detach(interp::Engine &engine)
{
    engine.seq().setTraceSink(nullptr);
    engine.mem().setTraceSink(nullptr);
}

void
Collector::clear()
{
    _steps.clear();
    _mem.clear();
}

std::size_t
Collector::traceBytes() const
{
    return _steps.size() * sizeof(StepEvent) +
           _mem.size() * sizeof(MemEvent);
}

namespace {

/** File magic: "PSITRC" + format version. */
constexpr char kMagic[8] = {'P', 'S', 'I', 'T', 'R', 'C', '0', '1'};

} // namespace

bool
Collector::saveTo(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out.write(kMagic, sizeof(kMagic));
    std::uint64_t ns = _steps.size();
    std::uint64_t nm = _mem.size();
    out.write(reinterpret_cast<const char *>(&ns), sizeof(ns));
    out.write(reinterpret_cast<const char *>(&nm), sizeof(nm));
    out.write(reinterpret_cast<const char *>(_steps.data()),
              static_cast<std::streamsize>(ns * sizeof(StepEvent)));
    out.write(reinterpret_cast<const char *>(_mem.data()),
              static_cast<std::streamsize>(nm * sizeof(MemEvent)));
    return static_cast<bool>(out);
}

bool
Collector::loadFrom(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(magic)) != 0)
        return false;
    std::uint64_t ns = 0;
    std::uint64_t nm = 0;
    in.read(reinterpret_cast<char *>(&ns), sizeof(ns));
    in.read(reinterpret_cast<char *>(&nm), sizeof(nm));
    if (!in || ns > (1u << 31) || nm > (1u << 31))
        return false;
    _steps.resize(ns);
    _mem.resize(nm);
    in.read(reinterpret_cast<char *>(_steps.data()),
            static_cast<std::streamsize>(ns * sizeof(StepEvent)));
    in.read(reinterpret_cast<char *>(_mem.data()),
            static_cast<std::streamsize>(nm * sizeof(MemEvent)));
    return static_cast<bool>(in);
}

interp::RunResult
collectRun(interp::Engine &engine, Collector &collector,
           const std::string &query, const interp::RunLimits &limits)
{
    collector.clear();
    collector.attach(engine);
    interp::RunResult r = engine.solve(query, limits);
    collector.detach(engine);
    return r;
}

} // namespace tools
} // namespace psi
