/**
 * @file
 * Disassemblers for the two machine representations:
 *
 *  - the PSI instruction code (the machine-resident KL0 expression
 *    in the heap area: clause headers, head descriptors, goal
 *    records, packed arguments, skeletons);
 *  - the baseline engine's compiled WAM-style code.
 *
 * Both produce human-readable listings for debugging, tests and the
 * documentation; the PSI side walks the predicate directory exactly
 * as the firmware does.
 */

#ifndef PSI_TOOLS_DISASM_HPP
#define PSI_TOOLS_DISASM_HPP

#include <string>

#include "baseline/wam_machine.hpp"
#include "interp/engine.hpp"

namespace psi {
namespace tools {

/** Disassembler over one PSI engine's heap image. */
class PsiDisasm
{
  public:
    explicit PsiDisasm(interp::Engine &engine) : _eng(&engine) {}

    /**
     * Listing of one predicate: its clause table and every clause's
     * code, one word per line ("addr: tag operand  ; comment").
     * @return empty string when the predicate is undefined.
     */
    std::string predicate(const std::string &name,
                          std::uint32_t arity);

    /** One clause starting at @p addr. */
    std::string clause(std::uint32_t addr);

    /** A term skeleton starting at @p addr (@p is_cons selects the
     *  cons layout). */
    std::string skeleton(std::uint32_t addr, bool is_cons);

  private:
    TaggedWord at(std::uint32_t addr);
    std::string word(std::uint32_t addr, const TaggedWord &w);
    std::string operandComment(const TaggedWord &w);

    interp::Engine *_eng;
};

/**
 * Listing of one baseline predicate's compiled code, one
 * instruction per line with symbolic operands.
 * @return empty string when the predicate is undefined.
 */
std::string wamListing(baseline::WamEngine &engine,
                       const std::string &name, std::uint32_t arity);

} // namespace tools
} // namespace psi

#endif // PSI_TOOLS_DISASM_HPP
