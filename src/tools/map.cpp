#include "tools/map.hpp"

#include "base/stats.hpp"

namespace psi {
namespace tools {

Map::Map(const std::vector<StepEvent> &trace)
{
    for (const StepEvent &e : trace) {
        ++_total;
        ++_modules[e.module];
        ++_branch[e.branchOp];
        ++_wf[0][e.src1Mode];
        ++_wf[1][e.src2Mode];
        ++_wf[2][e.destMode];
        if (e.hasCacheCmd)
            ++_cache[e.hasCacheCmd - 1];
    }
}

double
Map::modulePct(micro::Module m) const
{
    return stats::pct(moduleSteps(m), _total);
}

double
Map::branchPct(micro::BranchOp op) const
{
    return stats::pct(branchOps(op), _total);
}

double
Map::cachePct(CacheCmd c) const
{
    return stats::pct(cacheSteps(c), _total);
}

std::uint64_t
Map::wfFieldAccesses(micro::WfField f) const
{
    std::uint64_t sum = 0;
    for (int m = 1; m < micro::kNumWfModes; ++m)
        sum += _wf[static_cast<int>(f)][m];
    return sum;
}

} // namespace tools
} // namespace psi
