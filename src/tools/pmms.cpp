#include "tools/pmms.hpp"

#include "micro/sequencer.hpp"

namespace psi {
namespace tools {

Pmms::Pmms(const std::vector<MemEvent> &trace, std::uint64_t steps)
    : _trace(&trace), _steps(steps)
{
}

std::uint64_t
Pmms::noCacheTimeNs() const
{
    CacheConfig off;
    off.enabled = false;
    return _steps * micro::kStepNs +
           static_cast<std::uint64_t>(_trace->size()) * off.noCacheNs;
}

PmmsResult
Pmms::replay(const CacheConfig &config) const
{
    Cache cache(config);
    std::uint64_t stall = 0;
    for (const MemEvent &e : *_trace)
        stall += cache.access(e.cmd, e.area, e.paddr);

    PmmsResult r;
    r.config = config;
    r.stats = cache.stats();
    r.stallNs = stall;
    r.timeNs = _steps * micro::kStepNs + stall;
    r.hitPct = r.stats.totalHitPct();
    double tnc = static_cast<double>(noCacheTimeNs());
    r.improvementPct =
        (tnc / static_cast<double>(r.timeNs) - 1.0) * 100.0;
    return r;
}

std::vector<PmmsResult>
Pmms::sweepCapacity(const std::vector<std::uint32_t> &capacities,
                    const CacheConfig &base) const
{
    std::vector<PmmsResult> out;
    out.reserve(capacities.size());
    for (std::uint32_t cap : capacities) {
        CacheConfig cfg = base;
        cfg.capacityWords = cap;
        out.push_back(replay(cfg));
    }
    return out;
}

} // namespace tools
} // namespace psi
