#include "tools/disasm.hpp"

#include <sstream>

#include "base/strutil.hpp"
#include "kl0/builtin_defs.hpp"
#include "kl0/codegen.hpp"

namespace psi {
namespace tools {

namespace {

std::string
hex(std::uint32_t v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

} // namespace

TaggedWord
PsiDisasm::at(std::uint32_t addr)
{
    return _eng->mem().peek(LogicalAddr(Area::Heap, addr));
}

std::string
PsiDisasm::operandComment(const TaggedWord &w)
{
    kl0::SymbolTable &syms = _eng->symbols();
    switch (w.tag) {
      case Tag::HConst:
      case Tag::AConst:
        return "atom '" + syms.atomName(w.data) + "'";
      case Tag::HInt:
      case Tag::AInt:
        return "int " + std::to_string(
                   static_cast<std::int32_t>(w.data));
      case Tag::HVarF:
      case Tag::HVarS:
      case Tag::AVar: {
        VarSlot vs = VarSlot::decode(w.data);
        return std::string(vs.global ? "global" : "local") +
               " slot " + std::to_string(vs.index);
      }
      case Tag::HList:
      case Tag::HStruct:
      case Tag::AList:
      case Tag::AStruct:
      case Tag::AExpr:
        return "skeleton @" +
               hex(LogicalAddr::unpack(w.data).offset);
      case Tag::HGroundList:
      case Tag::HGroundStruct:
      case Tag::AGroundList:
      case Tag::AGroundStruct:
        return "ground term @" +
               hex(LogicalAddr::unpack(w.data).offset);
      case Tag::Call:
      case Tag::CallLast:
        return syms.functorName(w.data) + "/" +
               std::to_string(syms.functorArity(w.data));
      case Tag::CallBuiltin:
      case Tag::CallIs:
      case Tag::CallCmp:
        return std::string("builtin ") +
               kl0::builtinName(static_cast<kl0::Builtin>(w.data));
      case Tag::IndexRef:
        return "index root @" + hex(w.data);
      case Tag::IndexRoot:
        return "linear table @" + hex(w.data);
      case Tag::IndexHash:
        return "hash block @" + hex(w.data);
      case Tag::PackedArgs: {
        std::string s = "packed:";
        for (int i = 0; i < 4; ++i) {
            std::uint32_t op = (w.data >> (8 * i)) & 0xff;
            if (op == 0)
                break;
            std::uint32_t type = op >> 5;
            std::uint32_t idx = op & 0x1f;
            switch (type) {
              case kl0::kPackLocalVar:
                s += " Y" + std::to_string(idx);
                break;
              case kl0::kPackGlobalVar:
                s += " G" + std::to_string(idx);
                break;
              case kl0::kPackVoid:
                s += " _";
                break;
              case kl0::kPackSmallInt:
                s += " " + std::to_string(idx);
                break;
              default:
                s += " ?";
            }
        }
        return s;
      }
      case Tag::ClauseHeader:
        return "arity=" + std::to_string(w.data & 0xff) +
               " locals=" + std::to_string((w.data >> 8) & 0xff) +
               " globals=" + std::to_string((w.data >> 16) & 0xff);
      case Tag::Functor:
        return syms.functorName(w.data) + "/" +
               std::to_string(syms.functorArity(w.data));
      case Tag::Atom:
        return "atom '" + syms.atomName(w.data) + "'";
      case Tag::Int:
        return "int " + std::to_string(
                   static_cast<std::int32_t>(w.data));
      case Tag::SkelVar:
        if (w.data & kl0::kSkelVoidBit)
            return "void";
        else {
            VarSlot vs = VarSlot::decode(w.data);
            return std::string(vs.global ? "global" : "local") +
                   " slot " + std::to_string(vs.index);
        }
      default:
        return "";
    }
}

std::string
PsiDisasm::word(std::uint32_t addr, const TaggedWord &w)
{
    std::string line = strutil::padLeft(hex(addr), 7) + ":  " +
                       strutil::padRight(tagName(w.tag), 16);
    std::string c = operandComment(w);
    if (!c.empty())
        line += "; " + c;
    return line + "\n";
}

std::string
PsiDisasm::skeleton(std::uint32_t addr, bool is_cons)
{
    std::ostringstream os;
    std::uint32_t n = 2;
    std::uint32_t start = addr;
    if (!is_cons) {
        TaggedWord f = at(addr);
        os << word(addr, f);
        n = _eng->symbols().functorArity(f.data);
        start = addr + 1;
    }
    for (std::uint32_t k = 0; k < n; ++k)
        os << word(start + k, at(start + k));
    return os.str();
}

std::string
PsiDisasm::clause(std::uint32_t addr)
{
    std::ostringstream os;
    TaggedWord hdr = at(addr);
    if (hdr.tag != Tag::ClauseHeader)
        return "";
    os << word(addr, hdr);
    std::uint32_t arity = hdr.data & 0xff;
    std::uint32_t p = addr + 1;
    for (std::uint32_t i = 0; i < arity; ++i, ++p)
        os << word(p, at(p));
    // Body: walk until Proceed.
    for (;;) {
        TaggedWord w = at(p);
        os << word(p, w);
        if (w.tag == Tag::Proceed)
            break;
        ++p;
        bool is_builtin = w.tag == Tag::CallBuiltin ||
                          w.tag == Tag::CallIs || w.tag == Tag::CallCmp;
        if (w.tag == Tag::Call || w.tag == Tag::CallLast ||
            is_builtin) {
            std::uint32_t goal_arity =
                is_builtin
                    ? kl0::builtinArity(
                          static_cast<kl0::Builtin>(w.data))
                    : _eng->symbols().functorArity(w.data);
            if (goal_arity > 0) {
                TaggedWord a0 = at(p);
                if (a0.tag == Tag::PackedArgs) {
                    os << word(p, a0);
                    ++p;
                } else {
                    for (std::uint32_t i = 0; i < goal_arity;
                         ++i, ++p) {
                        os << word(p, at(p));
                    }
                }
            }
        }
    }
    return os.str();
}

std::string
PsiDisasm::predicate(const std::string &name, std::uint32_t arity)
{
    kl0::SymbolTable &syms = _eng->symbols();
    std::uint32_t f = syms.functor(name, arity);
    TaggedWord dir = at(kl0::kDirBase + f);
    std::string idx_note;
    if (dir.tag == Tag::IndexRef) {
        // Indexed predicate: list the clauses of the linear fallback
        // table (root word 0), which holds every clause in source
        // order.
        idx_note = ", first-arg index @" + hex(dir.data);
        dir = {Tag::ClauseRef, at(dir.data).data};
    }
    if (dir.tag != Tag::ClauseRef)
        return "";

    std::ostringstream os;
    os << "% " << name << "/" << arity << " (clause table @"
       << dir.data << idx_note << ")\n";
    std::uint32_t t = dir.data;
    int idx = 0;
    for (;; ++t) {
        TaggedWord w = at(t);
        if (w.tag != Tag::ClauseRef)
            break;
        os << "% clause " << idx++ << " @" << w.data << "\n"
           << clause(w.data);
    }
    return os.str();
}

std::string
wamListing(baseline::WamEngine &engine, const std::string &name,
           std::uint32_t arity)
{
    const baseline::CompiledPred *pred = engine.compiler().predicate(
        engine.symbols().functor(name, arity));
    if (pred == nullptr)
        return "";

    std::ostringstream os;
    os << "% " << name << "/" << arity << ", "
       << pred->clauses.size() << " clause(s)\n";
    const auto &code = engine.compiler().code();
    int idx = 0;
    for (const auto &cl : pred->clauses) {
        os << "% clause " << idx++ << " @" << cl.entry << "\n";
        for (std::size_t i = cl.entry; i < code.size(); ++i) {
            os << strutil::padLeft(std::to_string(i), 7) << ":  "
               << code[i].str() << "\n";
            if (code[i].op == baseline::WOp::Proceed ||
                code[i].op == baseline::WOp::Execute ||
                code[i].op == baseline::WOp::Halt) {
                break;
            }
        }
    }
    return os.str();
}

} // namespace tools
} // namespace psi
