/**
 * @file
 * COLLECT - the trace collection tool.
 *
 * The original COLLECT ran on the PSI's console processor, stepping
 * the CPU and dumping microinstruction addresses, registers and
 * memory onto floppy disks.  This analogue attaches to a running
 * Engine and records two compact streams:
 *
 *  - StepEvents: one record per microinstruction step (module,
 *    branch-field operation, work-file mode per field, cache
 *    command) - the input of the MAP pattern analyzer;
 *  - MemEvents: one record per memory access (command, area,
 *    physical address) - the input of the PMMS cache simulator.
 */

#ifndef PSI_TOOLS_COLLECT_HPP
#define PSI_TOOLS_COLLECT_HPP

#include <string>
#include <vector>

#include "interp/engine.hpp"
#include "mem/trace.hpp"

namespace psi {
namespace tools {

/** Trace recorder for one engine run. */
class Collector
{
  public:
    Collector() = default;

    /** Start recording on @p engine (replaces previous sinks). */
    void attach(interp::Engine &engine);

    /** Stop recording on @p engine. */
    void detach(interp::Engine &engine);

    const std::vector<StepEvent> &steps() const { return _steps; }
    const std::vector<MemEvent> &memAccesses() const { return _mem; }

    void clear();

    /** Rough size of the recorded traces in bytes. */
    std::size_t traceBytes() const;

    /**
     * Persist both trace streams to a binary file (the original
     * COLLECT dumped to flexible disks; PMMS and MAP re-read the
     * dumps offline).
     * @return false on I/O failure.
     */
    bool saveTo(const std::string &path) const;

    /** Load traces written by saveTo(), replacing the current ones. */
    bool loadFrom(const std::string &path);

  private:
    std::vector<StepEvent> _steps;
    std::vector<MemEvent> _mem;
};

/**
 * Convenience: run @p query on @p engine while collecting traces.
 * @return the run result; traces are left in @p collector.
 */
interp::RunResult collectRun(interp::Engine &engine,
                             Collector &collector,
                             const std::string &query,
                             const interp::RunLimits &limits =
                                 interp::RunLimits());

} // namespace tools
} // namespace psi

#endif // PSI_TOOLS_COLLECT_HPP
