/**
 * @file
 * MAP - the microinstruction pattern analyzer.
 *
 * The original MAP counted occurrences of specific patterns in
 * specific microinstruction fields over address traces produced by
 * COLLECT.  This analogue tallies a recorded StepEvent stream into
 * the same dynamic-frequency tables the paper reports: module step
 * shares (Table 2), work-file access modes per field (Table 6) and
 * branch-field operations (Table 7).
 *
 * The tallies are, by construction, equal to the live counters the
 * sequencer keeps; the test suite cross-validates the two paths.
 */

#ifndef PSI_TOOLS_MAP_HPP
#define PSI_TOOLS_MAP_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "mem/trace.hpp"
#include "micro/sequencer.hpp"

namespace psi {
namespace tools {

/** Field-pattern tallies over a step trace. */
class Map
{
  public:
    /** Tally the whole trace. */
    explicit Map(const std::vector<StepEvent> &trace);

    std::uint64_t totalSteps() const { return _total; }

    /** Steps in firmware module @p m. */
    std::uint64_t moduleSteps(micro::Module m) const
    {
        return _modules[static_cast<int>(m)];
    }

    /** Steps whose branch field holds @p op. */
    std::uint64_t branchOps(micro::BranchOp op) const
    {
        return _branch[static_cast<int>(op)];
    }

    /** Steps whose field @p f uses WF mode @p m. */
    std::uint64_t
    wfMode(micro::WfField f, micro::WfMode m) const
    {
        return _wf[static_cast<int>(f)][static_cast<int>(m)];
    }

    /** Steps carrying cache command @p c. */
    std::uint64_t cacheSteps(CacheCmd c) const
    {
        return _cache[static_cast<int>(c)];
    }

    /** Percentage helpers over the total step count. */
    double modulePct(micro::Module m) const;
    double branchPct(micro::BranchOp op) const;
    double cachePct(CacheCmd c) const;

    /** WF accesses through field @p f (any mode). */
    std::uint64_t wfFieldAccesses(micro::WfField f) const;

  private:
    std::uint64_t _total = 0;
    std::array<std::uint64_t, micro::kNumModules> _modules{};
    std::array<std::uint64_t, micro::kNumBranchOps> _branch{};
    std::array<std::array<std::uint64_t, micro::kNumWfModes>,
               micro::kNumWfFields>
        _wf{};
    std::array<std::uint64_t, kNumCacheCmds> _cache{};
};

} // namespace tools
} // namespace psi

#endif // PSI_TOOLS_MAP_HPP
