#include "system.hpp"

#include "base/logging.hpp"
#include "service/engine_pool.hpp"

namespace psi {

PsiRun
runOnPsi(const programs::BenchProgram &program,
         const CacheConfig &cache, const interp::RunLimits &limits)
{
    interp::Engine engine(cache);
    engine.consult(program.source);

    PsiRun run;
    run.result = engine.solve(program.query, limits);
    run.seq = engine.seq().stats();
    run.cache = engine.mem().cache().stats();
    run.stallNs = engine.mem().stallNs();
    return run;
}

PsiRun
runCompiledOnPsi(interp::Engine &engine,
                 const kl0::CompiledProgram &image,
                 const std::string &query, const CacheConfig &cache,
                 const interp::RunLimits &limits)
{
    engine.load(image, cache);

    PsiRun run;
    run.result = engine.solve(query, limits);
    run.seq = engine.seq().stats();
    run.cache = engine.mem().cache().stats();
    run.stallNs = engine.mem().stallNs();
    return run;
}

interp::RunResult
runOnBaseline(const programs::BenchProgram &program,
              const interp::RunLimits &limits)
{
    baseline::WamEngine engine;
    engine.consult(program.source);
    return engine.solve(program.query, limits);
}

std::vector<PsiRun>
runBatchOnPsi(const std::vector<programs::BenchProgram> &programs,
              const CacheConfig &cache, const interp::RunLimits &limits,
              unsigned workers)
{
    service::EnginePool::Config config;
    config.workers = workers;
    config.queueCapacity = programs.empty() ? 1 : programs.size();
    service::EnginePool pool(config);

    std::vector<std::future<service::JobOutcome>> futures;
    futures.reserve(programs.size());
    for (const auto &p : programs) {
        auto fut = pool.submit(
            service::QueryJob{p, cache, limits});
        PSI_ASSERT(fut.has_value(),
                   "blocking submit refused by a live pool");
        futures.push_back(std::move(*fut));
    }

    std::vector<PsiRun> runs;
    runs.reserve(programs.size());
    std::string firstError;
    for (auto &fut : futures) {
        service::JobOutcome out = fut.get();
        if (!out.ok() && firstError.empty())
            firstError = out.id + ": " + out.error;
        runs.push_back(std::move(out.run));
    }
    if (!firstError.empty())
        fatal("batch job failed - ", firstError);
    return runs;
}

} // namespace psi
