#include "system.hpp"

namespace psi {

PsiRun
runOnPsi(const programs::BenchProgram &program,
         const CacheConfig &cache, const interp::RunLimits &limits)
{
    interp::Engine engine(cache);
    engine.consult(program.source);

    PsiRun run;
    run.result = engine.solve(program.query, limits);
    run.seq = engine.seq().stats();
    run.cache = engine.mem().cache().stats();
    run.stallNs = engine.mem().stallNs();
    return run;
}

interp::RunResult
runOnBaseline(const programs::BenchProgram &program,
              const interp::RunLimits &limits)
{
    baseline::WamEngine engine;
    engine.consult(program.source);
    return engine.solve(program.query, limits);
}

} // namespace psi
