/**
 * @file
 * CompiledProgram: the immutable, shareable result of compiling KL0
 * source off the engine hot path.
 *
 * compile() runs the full pipeline - parse (Program::consult),
 * normalize(), CodeGen - against a private scratch machine and
 * captures everything an engine needs to serve queries over the
 * program:
 *
 *  - the heap image as the *ordered* log of code-generator stores.
 *    Order matters: the translation table allocates physical frames
 *    on first touch, so replaying the stores in emission order
 *    reproduces the exact logical-to-physical page assignment (and
 *    with it the cache set mapping and every cache statistic) of an
 *    engine that consulted the source directly;
 *  - the symbol table, so atom/functor indices in the image resolve
 *    identically;
 *  - the code generator snapshot (heap cursor + clause directory),
 *    so queries compiled against the image land at the same
 *    addresses a consulting engine would use.
 *
 * A CompiledProgram never touches engine state and is immutable
 * after construction, so one instance may be shared by any number of
 * threads (the psid ProgramCache hands out shared_ptrs to workers).
 * Engine::load(const CompiledProgram &) installs an image into a
 * fully reset machine in one cheap replay pass.
 */

#ifndef PSI_KL0_COMPILED_PROGRAM_HPP
#define PSI_KL0_COMPILED_PROGRAM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "kl0/codegen.hpp"
#include "kl0/symbols.hpp"
#include "mem/memory_system.hpp"

namespace psi {
namespace kl0 {

/** An immutable compiled KL0 program image. */
class CompiledProgram
{
  public:
    /**
     * Parse, normalize and compile @p source under @p opts - the
     * single compile entry point (Engine::consult and the psid
     * ProgramCache both route through it).  Pure: only scratch state
     * private to this call is touched, so concurrent compiles (even
     * of the same source) are safe.  Throws FatalError on malformed
     * source, like Engine::consult.
     */
    static CompiledProgram compile(const std::string &source,
                                   CompileOptions opts = {});

    /** FNV-1a 64 content hash - the ProgramCache key for @p source. */
    static std::uint64_t hashSource(const std::string &source);

    /** The options the image was compiled with; an engine loading
     *  the image adopts them for its own query compiles. */
    const CompileOptions &options() const { return _options; }

    /** The heap image as stores in emission order. */
    const std::vector<PokeRecord> &image() const { return _image; }

    /** Interned symbols referenced by the image. */
    const SymbolTable &symbols() const { return _syms; }

    /** Code-generator state to restore alongside the image. */
    const CodeGen::Snapshot &codegen() const { return _snapshot; }

    /** hashSource() of the source this was compiled from. */
    std::uint64_t sourceHash() const { return _hash; }

    /** First free heap word after the image. */
    std::uint32_t heapTop() const { return _snapshot.cursor; }

    /** Instruction-code words in the image (for reports). */
    std::uint32_t codeWords() const
    {
        return _snapshot.cursor - kCodeBase;
    }

  private:
    CompiledProgram() = default;

    std::vector<PokeRecord> _image;
    SymbolTable _syms;
    CodeGen::Snapshot _snapshot;
    CompileOptions _options;
    std::uint64_t _hash = 0;
};

} // namespace kl0
} // namespace psi

#endif // PSI_KL0_COMPILED_PROGRAM_HPP
