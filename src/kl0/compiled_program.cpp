#include "kl0/compiled_program.hpp"

#include "kl0/normalize.hpp"
#include "kl0/program.hpp"

namespace psi {
namespace kl0 {

std::uint64_t
CompiledProgram::hashSource(const std::string &source)
{
    // FNV-1a 64.
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : source) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

CompiledProgram
CompiledProgram::compile(const std::string &source,
                         CompileOptions opts)
{
    Program program;
    program.consult(source);

    CompiledProgram out;
    // Scratch machine: the cache model is never engaged (the code
    // generator stores through poke()), so the default configuration
    // is fine regardless of what the eventual engine runs with.
    MemorySystem mem;
    CodeGen codegen(mem, out._syms, opts);
    mem.setPokeLog(&out._image);
    codegen.compile(normalize(program));
    mem.setPokeLog(nullptr);

    out._snapshot = codegen.snapshot();
    out._options = opts;
    out._hash = hashSource(source);
    return out;
}

} // namespace kl0
} // namespace psi
