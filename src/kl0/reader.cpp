#include "kl0/reader.hpp"

#include <map>

#include "base/logging.hpp"

namespace psi {
namespace kl0 {

namespace {

enum class OpType { xfx, xfy, yfx, fy, fx };

struct OpDef
{
    int prec;
    OpType type;
};

const std::map<std::string, OpDef> &
infixOps()
{
    static const std::map<std::string, OpDef> ops = {
        {":-", {1200, OpType::xfx}},
        {"-->", {1200, OpType::xfx}},
        {";", {1100, OpType::xfy}},
        {"->", {1050, OpType::xfy}},
        {",", {1000, OpType::xfy}},
        {"=", {700, OpType::xfx}},
        {"\\=", {700, OpType::xfx}},
        {"==", {700, OpType::xfx}},
        {"\\==", {700, OpType::xfx}},
        {"is", {700, OpType::xfx}},
        {"<", {700, OpType::xfx}},
        {">", {700, OpType::xfx}},
        {"=<", {700, OpType::xfx}},
        {">=", {700, OpType::xfx}},
        {"=:=", {700, OpType::xfx}},
        {"=\\=", {700, OpType::xfx}},
        {"@<", {700, OpType::xfx}},
        {"@>", {700, OpType::xfx}},
        {"@=<", {700, OpType::xfx}},
        {"@>=", {700, OpType::xfx}},
        {"=..", {700, OpType::xfx}},
        {"+", {500, OpType::yfx}},
        {"-", {500, OpType::yfx}},
        {"/\\", {500, OpType::yfx}},
        {"\\/", {500, OpType::yfx}},
        {"xor", {500, OpType::yfx}},
        {"*", {400, OpType::yfx}},
        {"/", {400, OpType::yfx}},
        {"//", {400, OpType::yfx}},
        {"mod", {400, OpType::yfx}},
        {"rem", {400, OpType::yfx}},
        {"<<", {400, OpType::yfx}},
        {">>", {400, OpType::yfx}},
        {"**", {200, OpType::xfx}},
        {"^", {200, OpType::xfy}},
    };
    return ops;
}

const std::map<std::string, OpDef> &
prefixOps()
{
    static const std::map<std::string, OpDef> ops = {
        {":-", {1200, OpType::fx}},
        {"?-", {1200, OpType::fx}},
        {"\\+", {900, OpType::fy}},
        {"-", {200, OpType::fy}},
        {"+", {200, OpType::fy}},
        {"\\", {200, OpType::fy}},
    };
    return ops;
}

} // namespace

Reader::Reader(const std::string &text) : _tokens(tokenize(text)) {}

const Token &
Reader::ahead(std::size_t k) const
{
    std::size_t p = _pos + k;
    if (p >= _tokens.size())
        p = _tokens.size() - 1;
    return _tokens[p];
}

void
Reader::syntaxError(const std::string &what) const
{
    fatal("line ", cur().line, ": syntax error: ", what, " near '",
          cur().text, "'");
}

bool
Reader::startsTerm() const
{
    switch (cur().kind) {
      case TokKind::Atom:
      case TokKind::Var:
      case TokKind::Int:
        return true;
      case TokKind::Punct:
        return cur().text == "(" || cur().text == "[" ||
               cur().text == "{";
      default:
        return false;
    }
}

TermPtr
Reader::parseArgList(const std::string &functor)
{
    // Current token is '('.
    advance();
    std::vector<TermPtr> args;
    args.push_back(parse(999));
    while (cur().isPunct(",")) {
        advance();
        args.push_back(parse(999));
    }
    if (!cur().isPunct(")"))
        syntaxError("expected ')'");
    advance();
    return Term::compound(functor, std::move(args));
}

TermPtr
Reader::parseList()
{
    // Current token is '['.
    advance();
    if (cur().isPunct("]")) {
        advance();
        return Term::nil();
    }
    std::vector<TermPtr> elems;
    elems.push_back(parse(999));
    while (cur().isPunct(",")) {
        advance();
        elems.push_back(parse(999));
    }
    TermPtr tail = nullptr;
    if (cur().isPunct("|")) {
        advance();
        tail = parse(999);
    }
    if (!cur().isPunct("]"))
        syntaxError("expected ']'");
    advance();
    return Term::list(std::move(elems), std::move(tail));
}

TermPtr
Reader::parsePrimary(int max_prec)
{
    const Token &t = cur();
    switch (t.kind) {
      case TokKind::Int: {
        auto v = t.value;
        advance();
        return Term::integer(v);
      }
      case TokKind::Var: {
        std::string name = t.text;
        advance();
        if (name == "_")
            name = "_G" + std::to_string(++_anonCounter);
        return Term::var(name);
      }
      case TokKind::Punct:
        if (t.text == "(") {
            advance();
            TermPtr inner = parse(1200);
            if (!cur().isPunct(")"))
                syntaxError("expected ')'");
            advance();
            return inner;
        }
        if (t.text == "[")
            return parseList();
        if (t.text == "{") {
            advance();
            if (cur().isPunct("}")) {
                advance();
                return Term::atom("{}");
            }
            TermPtr inner = parse(1200);
            if (!cur().isPunct("}"))
                syntaxError("expected '}'");
            advance();
            return Term::compound("{}", {inner});
        }
        syntaxError("unexpected punctuation");
      case TokKind::Atom: {
        std::string name = t.text;
        // Compound term: atom immediately followed by '('.
        if (ahead().isPunct("(")) {
            advance();
            return parseArgList(name);
        }
        // Prefix operator applied to a term.
        auto pre = prefixOps().find(name);
        if (pre != prefixOps().end() && pre->second.prec <= max_prec) {
            advance();
            if (startsTerm()) {
                // Negative numeric literal folding.
                if (name == "-" && cur().kind == TokKind::Int) {
                    auto v = cur().value;
                    advance();
                    return Term::integer(-v);
                }
                int sub = pre->second.prec -
                          (pre->second.type == OpType::fy ? 0 : 1);
                return Term::compound(name, {parse(sub)});
            }
            // Operator used as a plain atom (e.g. f(-)).
            return Term::atom(name);
        }
        advance();
        return Term::atom(name);
      }
      default:
        syntaxError("unexpected token");
    }
}

TermPtr
Reader::parse(int max_prec)
{
    TermPtr left = parsePrimary(max_prec);
    int left_prec = 0;

    for (;;) {
        std::string name;
        if (cur().kind == TokKind::Atom) {
            name = cur().text;
        } else if (cur().isPunct(",")) {
            name = ",";
        } else if (cur().isPunct("|")) {
            // '|' as an infix alternative separator (rare); treat as ';'.
            name = ";";
        } else {
            break;
        }
        auto it = infixOps().find(name);
        if (it == infixOps().end())
            break;
        const OpDef &op = it->second;
        if (op.prec > max_prec)
            break;
        int left_max = op.prec - (op.type == OpType::yfx ? 0 : 1);
        int right_max = op.prec - (op.type == OpType::xfy ? 0 : 1);
        if (left_prec > left_max)
            break;
        advance();
        TermPtr right = parse(right_max);
        left = Term::compound(name, {left, right});
        left_prec = op.prec;
    }
    return left;
}

TermPtr
Reader::readClause()
{
    if (cur().kind == TokKind::Eof)
        return nullptr;
    TermPtr t = parse(1200);
    if (cur().kind != TokKind::End)
        syntaxError("expected '.' at end of clause");
    advance();
    return t;
}

std::vector<TermPtr>
Reader::readAll()
{
    std::vector<TermPtr> out;
    while (TermPtr t = readClause())
        out.push_back(t);
    return out;
}

TermPtr
parseTerm(const std::string &text)
{
    // Appending a full stop lets callers omit the terminator; if the
    // text already ends with one, the extra trailing stop is never
    // reached by the single readClause() call.
    Reader r(text + " .");
    return r.readClause();
}

std::vector<TermPtr>
parseProgram(const std::string &text)
{
    Reader r(text);
    return r.readAll();
}

} // namespace kl0
} // namespace psi
