/**
 * @file
 * Program normalization: control constructs to auxiliary predicates.
 *
 * The PSI instruction code and the baseline WAM-lite instruction set
 * both support only flat bodies of plain goals, cut and built-ins.
 * This pass rewrites disjunction `(A ; B)`, if-then-else
 * `(C -> T ; E)`, bare if-then `(C -> T)` and negation `\+ G` /
 * `not(G)` into fresh auxiliary predicates, the classic
 * source-to-source transformation:
 *
 *     p :- a, (b ; c), d.      =>   p :- a, '$aux1'(Vs), d.
 *                                   '$aux1'(Vs) :- b.
 *                                   '$aux1'(Vs) :- c.
 *
 * where Vs are the variables the construct shares with its
 * environment (we conservatively pass every variable occurring in
 * the construct).
 */

#ifndef PSI_KL0_NORMALIZE_HPP
#define PSI_KL0_NORMALIZE_HPP

#include "kl0/program.hpp"

namespace psi {
namespace kl0 {

/**
 * Return a program whose clause bodies contain only plain goals:
 * user predicate calls, built-ins, `!` and `true`.
 */
Program normalize(const Program &in);

/**
 * Normalize one goal term (used for queries): returns the flat goal
 * list and appends any auxiliary clauses to @p aux.
 */
std::vector<TermPtr> normalizeGoal(const TermPtr &goal, Program &aux);

/** Collect distinct variables of @p t in first-occurrence order. */
std::vector<TermPtr> collectVars(const TermPtr &t);

} // namespace kl0
} // namespace psi

#endif // PSI_KL0_NORMALIZE_HPP
