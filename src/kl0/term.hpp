/**
 * @file
 * Host-side term representation for the KL0 dialect.
 *
 * The reader produces these terms; the code generator and the
 * baseline compiler consume them; both execution engines export query
 * solutions back into them so tests can compare the engines
 * structurally.
 */

#ifndef PSI_KL0_TERM_HPP
#define PSI_KL0_TERM_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace psi {
namespace kl0 {

class Term;
using TermPtr = std::shared_ptr<const Term>;

/** Immutable first-order term: variable, atom, integer or compound. */
class Term
{
  public:
    enum class Kind
    {
        Var,
        Atom,
        Int,
        Compound,
    };

    /** @name Constructors */
    /// @{
    static TermPtr var(std::string name);
    static TermPtr atom(std::string name);
    static TermPtr integer(std::int64_t v);
    static TermPtr compound(std::string functor,
                            std::vector<TermPtr> args);
    /** Build a list [elems... | tail]; tail defaults to []. */
    static TermPtr list(std::vector<TermPtr> elems,
                        TermPtr tail = nullptr);
    static TermPtr nil();
    /// @}

    Kind kind() const { return _kind; }
    bool isVar() const { return _kind == Kind::Var; }
    bool isAtom() const { return _kind == Kind::Atom; }
    bool isInt() const { return _kind == Kind::Int; }
    bool isCompound() const { return _kind == Kind::Compound; }
    bool isNil() const { return isAtom() && _name == "[]"; }
    bool isCons() const
    {
        return isCompound() && _name == "." && _args.size() == 2;
    }
    /** True for atom/compound with the given name and arity. */
    bool isCallable(const std::string &name, std::size_t arity) const;

    /** Variable / atom / functor name. */
    const std::string &name() const { return _name; }
    std::int64_t value() const { return _value; }
    const std::vector<TermPtr> &args() const { return _args; }
    std::size_t arity() const { return _args.size(); }

    /** Structural equality; variables compare by name. */
    bool equals(const Term &o) const;

    /** Standard (non-canonical) textual form. */
    std::string str() const;

    /**
     * Textual form with variables renamed _A, _B, ... in order of
     * first appearance, so terms from different engines compare
     * equal when they are alpha-equivalent.
     */
    std::string canonicalStr() const;

  private:
    Term(Kind k, std::string name, std::int64_t v,
         std::vector<TermPtr> args)
        : _kind(k), _name(std::move(name)), _value(v),
          _args(std::move(args))
    {}

    Kind _kind;
    std::string _name;
    std::int64_t _value = 0;
    std::vector<TermPtr> _args;
};

} // namespace kl0
} // namespace psi

#endif // PSI_KL0_TERM_HPP
