/**
 * @file
 * Clause database grouped by predicate.
 *
 * A Program is the shared front-end output consumed by both the PSI
 * code generator and the baseline WAM-lite compiler.  Clauses keep
 * source order within a predicate; predicates keep first-definition
 * order (the PSI heap image is laid out in that order, which matters
 * for code locality).
 */

#ifndef PSI_KL0_PROGRAM_HPP
#define PSI_KL0_PROGRAM_HPP

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "kl0/term.hpp"

namespace psi {
namespace kl0 {

/** A clause split into head and body goals (body conjunctions flat). */
struct Clause
{
    TermPtr head;
    std::vector<TermPtr> body;  ///< flattened ','-conjunction
};

/** Predicate identifier at the source level. */
struct PredId
{
    std::string name;
    std::uint32_t arity = 0;

    bool operator<(const PredId &o) const
    {
        return name != o.name ? name < o.name : arity < o.arity;
    }
    bool operator==(const PredId &o) const = default;

    std::string
    str() const
    {
        return name + "/" + std::to_string(arity);
    }
};

/** The clause database. */
class Program
{
  public:
    Program() = default;

    /**
     * Add one term as read: either `Head :- Body`, a fact, or a
     * directive (directives are recorded but not executed).
     */
    void add(const TermPtr &term);

    /** Parse @p text and add every clause. */
    void consult(const std::string &text);

    const std::vector<PredId> &predicates() const { return _order; }

    bool defined(const PredId &id) const
    {
        return _clauses.count(id) != 0;
    }

    const std::vector<Clause> &clauses(const PredId &id) const;

    std::size_t
    clauseCount() const
    {
        std::size_t n = 0;
        for (const auto &kv : _clauses)
            n += kv.second.size();
        return n;
    }

    const std::vector<TermPtr> &directives() const
    {
        return _directives;
    }

    /** Flatten a ','-conjunction into a goal list. */
    static std::vector<TermPtr> flattenConjunction(const TermPtr &t);

  private:
    std::map<PredId, std::vector<Clause>> _clauses;
    std::vector<PredId> _order;
    std::vector<TermPtr> _directives;
};

} // namespace kl0
} // namespace psi

#endif // PSI_KL0_PROGRAM_HPP
