#include "kl0/term.hpp"

#include <map>
#include <sstream>

#include "base/strutil.hpp"

namespace psi {
namespace kl0 {

TermPtr
Term::var(std::string name)
{
    return TermPtr(new Term(Kind::Var, std::move(name), 0, {}));
}

TermPtr
Term::atom(std::string name)
{
    return TermPtr(new Term(Kind::Atom, std::move(name), 0, {}));
}

TermPtr
Term::integer(std::int64_t v)
{
    return TermPtr(new Term(Kind::Int, "", v, {}));
}

TermPtr
Term::compound(std::string functor, std::vector<TermPtr> args)
{
    if (args.empty())
        return atom(std::move(functor));
    return TermPtr(
        new Term(Kind::Compound, std::move(functor), 0, std::move(args)));
}

TermPtr
Term::nil()
{
    return atom("[]");
}

TermPtr
Term::list(std::vector<TermPtr> elems, TermPtr tail)
{
    TermPtr t = tail ? std::move(tail) : nil();
    for (auto it = elems.rbegin(); it != elems.rend(); ++it)
        t = compound(".", {*it, t});
    return t;
}

bool
Term::isCallable(const std::string &name, std::size_t arity) const
{
    if (arity == 0)
        return isAtom() && _name == name;
    return isCompound() && _name == name && _args.size() == arity;
}

bool
Term::equals(const Term &o) const
{
    if (_kind != o._kind)
        return false;
    switch (_kind) {
      case Kind::Var:
      case Kind::Atom:
        return _name == o._name;
      case Kind::Int:
        return _value == o._value;
      case Kind::Compound:
        if (_name != o._name || _args.size() != o._args.size())
            return false;
        for (std::size_t i = 0; i < _args.size(); ++i) {
            if (!_args[i]->equals(*o._args[i]))
                return false;
        }
        return true;
    }
    return false;
}

namespace {

void
printTerm(const Term &t, std::ostream &os,
          std::map<std::string, std::string> *rename)
{
    switch (t.kind()) {
      case Term::Kind::Var:
        if (rename) {
            auto it = rename->find(t.name());
            if (it == rename->end()) {
                std::string fresh = "_";
                std::size_t n = rename->size();
                do {
                    fresh.push_back(static_cast<char>('A' + n % 26));
                    n /= 26;
                } while (n > 0);
                it = rename->emplace(t.name(), fresh).first;
            }
            os << it->second;
        } else {
            os << t.name();
        }
        break;
      case Term::Kind::Atom:
        if (strutil::atomNeedsQuotes(t.name()))
            os << '\'' << t.name() << '\'';
        else
            os << t.name();
        break;
      case Term::Kind::Int:
        os << t.value();
        break;
      case Term::Kind::Compound:
        if (t.isCons()) {
            os << '[';
            const Term *cur = &t;
            bool first = true;
            while (cur->isCons()) {
                if (!first)
                    os << ',';
                printTerm(*cur->args()[0], os, rename);
                first = false;
                cur = cur->args()[1].get();
            }
            if (!cur->isNil()) {
                os << '|';
                printTerm(*cur, os, rename);
            }
            os << ']';
        } else {
            if (strutil::atomNeedsQuotes(t.name()))
                os << '\'' << t.name() << '\'';
            else
                os << t.name();
            os << '(';
            for (std::size_t i = 0; i < t.args().size(); ++i) {
                if (i)
                    os << ',';
                printTerm(*t.args()[i], os, rename);
            }
            os << ')';
        }
        break;
    }
}

} // namespace

std::string
Term::str() const
{
    std::ostringstream os;
    printTerm(*this, os, nullptr);
    return os.str();
}

std::string
Term::canonicalStr() const
{
    std::ostringstream os;
    std::map<std::string, std::string> rename;
    printTerm(*this, os, &rename);
    return os.str();
}

} // namespace kl0
} // namespace psi
