#include "kl0/symbols.hpp"

#include "base/logging.hpp"

namespace psi {
namespace kl0 {

SymbolTable::SymbolTable()
{
    _nil = atom("[]");
    _true = atom("true");
}

std::uint32_t
SymbolTable::atom(const std::string &name)
{
    auto it = _atoms.find(name);
    if (it != _atoms.end())
        return it->second;
    auto idx = static_cast<std::uint32_t>(_atomNames.size());
    _atoms.emplace(name, idx);
    _atomNames.push_back(name);
    return idx;
}

std::uint32_t
SymbolTable::functor(const std::string &name, std::uint32_t arity)
{
    auto key = std::make_pair(atom(name), arity);
    auto it = _functorIds.find(key);
    if (it != _functorIds.end())
        return it->second;
    auto idx = static_cast<std::uint32_t>(_functors.size());
    _functorIds.emplace(key, idx);
    _functors.push_back(key);
    return idx;
}

const std::string &
SymbolTable::atomName(std::uint32_t idx) const
{
    PSI_ASSERT(idx < _atomNames.size(), "atom index ", idx);
    return _atomNames[idx];
}

const std::string &
SymbolTable::functorName(std::uint32_t idx) const
{
    PSI_ASSERT(idx < _functors.size(), "functor index ", idx);
    return _atomNames[_functors[idx].first];
}

std::uint32_t
SymbolTable::functorArity(std::uint32_t idx) const
{
    PSI_ASSERT(idx < _functors.size(), "functor index ", idx);
    return _functors[idx].second;
}

} // namespace kl0
} // namespace psi
