#include "kl0/program.hpp"

#include "base/logging.hpp"
#include "kl0/reader.hpp"

namespace psi {
namespace kl0 {

std::vector<TermPtr>
Program::flattenConjunction(const TermPtr &t)
{
    std::vector<TermPtr> out;
    std::vector<TermPtr> stack{t};
    while (!stack.empty()) {
        TermPtr cur = stack.back();
        stack.pop_back();
        if (cur->isCallable(",", 2)) {
            stack.push_back(cur->args()[1]);
            stack.push_back(cur->args()[0]);
        } else {
            out.push_back(cur);
        }
    }
    return out;
}

void
Program::add(const TermPtr &term)
{
    if (term->isCallable(":-", 1)) {
        _directives.push_back(term->args()[0]);
        return;
    }

    Clause clause;
    if (term->isCallable(":-", 2)) {
        clause.head = term->args()[0];
        clause.body = flattenConjunction(term->args()[1]);
    } else {
        clause.head = term;
    }

    if (clause.head->isVar() || clause.head->isInt())
        fatal("invalid clause head: ", clause.head->str());

    PredId id{clause.head->name(),
              static_cast<std::uint32_t>(clause.head->arity())};
    auto it = _clauses.find(id);
    if (it == _clauses.end()) {
        _order.push_back(id);
        it = _clauses.emplace(id, std::vector<Clause>{}).first;
    }
    it->second.push_back(std::move(clause));
}

void
Program::consult(const std::string &text)
{
    for (const auto &t : parseProgram(text))
        add(t);
}

const std::vector<Clause> &
Program::clauses(const PredId &id) const
{
    auto it = _clauses.find(id);
    PSI_ASSERT(it != _clauses.end(), "undefined predicate ", id.str());
    return it->second;
}

} // namespace kl0
} // namespace psi
