#include "kl0/codegen.hpp"

#include "base/logging.hpp"
#include "kl0/builtin_defs.hpp"
#include "kl0/normalize.hpp"

namespace psi {
namespace kl0 {

namespace {

/** Skeleton addresses for the compound arguments of one clause. */
thread_local std::map<const Term *, std::uint32_t> *t_skelAddrs =
    nullptr;

} // namespace

CodeGen::CodeGen(MemorySystem &mem, SymbolTable &syms,
                 CompileOptions opts)
    : _mem(&mem), _syms(&syms), _opts(opts)
{
}

void
CodeGen::emit(const TaggedWord &w)
{
    _mem->poke(LogicalAddr(Area::Heap, _cursor++), w);
}

bool
CodeGen::exprPosition(int builtin, std::size_t i)
{
    if (builtin < 0)
        return false;
    switch (static_cast<Builtin>(builtin)) {
      case Builtin::Is:
        return i == 1;
      case Builtin::Lt:
      case Builtin::Gt:
      case Builtin::Le:
      case Builtin::Ge:
      case Builtin::ArithEq:
      case Builtin::ArithNe:
        return true;
      case Builtin::Tab:
        return i == 0;
      default:
        return false;
    }
}

bool
CodeGen::groundTerm(const TermPtr &t)
{
    if (t->isVar())
        return false;
    for (const auto &a : t->args()) {
        if (!groundTerm(a))
            return false;
    }
    return true;
}

void
CodeGen::analyzeTerm(const TermPtr &t, bool in_skel, bool in_arith,
                     VarMap &vars) const
{
    if (t->isVar()) {
        VarInfo &vi = vars[t->name()];
        ++vi.count;
        vi.inSkel = vi.inSkel || in_skel;
        return;
    }
    // Inside an arithmetic expression skeleton variables are read in
    // place (the expression is never instantiated), so they do not
    // become global.
    for (const auto &a : t->args())
        analyzeTerm(a, !in_arith, in_arith, vars);
}

void
CodeGen::analyze(const Clause &clause, VarMap &vars) const
{
    for (const auto &arg : clause.head->args())
        analyzeTerm(arg, false, false, vars);
    for (const auto &goal : clause.body) {
        int b = builtinIndex(goal->name(),
                             static_cast<std::uint32_t>(goal->arity()));
        for (std::size_t i = 0; i < goal->args().size(); ++i) {
            analyzeTerm(goal->args()[i], false, exprPosition(b, i),
                        vars);
        }
    }
}

void
CodeGen::assignSlots(VarMap &vars, std::uint32_t &nlocals,
                     std::uint32_t &nglobals)
{
    nlocals = 0;
    nglobals = 0;
    for (auto &kv : vars) {
        VarInfo &vi = kv.second;
        vi.global = vi.inSkel;
        vi.isVoid = vi.count == 1 && !vi.pinned;
        if (vi.isVoid)
            continue;
        if (vi.global)
            vi.slot = static_cast<std::uint16_t>(nglobals++);
        else
            vi.slot = static_cast<std::uint16_t>(nlocals++);
    }
}

TaggedWord
CodeGen::skeletonElement(const TermPtr &t, VarMap &vars)
{
    switch (t->kind()) {
      case Term::Kind::Atom:
        if (t->isNil())
            return {Tag::Nil, 0};
        return {Tag::Atom, _syms->atom(t->name())};
      case Term::Kind::Int:
        return TaggedWord::makeInt(static_cast<std::int32_t>(t->value()));
      case Term::Kind::Var: {
        const VarInfo &vi = vars.at(t->name());
        if (vi.isVoid)
            return {Tag::SkelVar, kSkelVoidBit};
        PSI_ASSERT(vi.global || _exprSkel,
                   "skeleton variable must be global");
        return {Tag::SkelVar, VarSlot{vi.global, vi.slot}.encode()};
      }
      case Term::Kind::Compound: {
        std::uint32_t addr = emitSkeleton(t, vars);
        return {t->isCons() ? Tag::List : Tag::Struct,
                LogicalAddr(Area::Heap, addr).pack()};
      }
    }
    panic("unreachable skeleton element");
}

std::uint32_t
CodeGen::emitSkeleton(const TermPtr &t, VarMap &vars)
{
    PSI_ASSERT(t->isCompound(), "skeleton must be compound");
    // Children first (depth-first), so the parent cell can reference
    // them; the parent's own words must be contiguous.
    std::vector<TaggedWord> elems;
    elems.reserve(t->arity() + 1);
    if (!t->isCons()) {
        elems.push_back(
            {Tag::Functor,
             _syms->functor(t->name(),
                            static_cast<std::uint32_t>(t->arity()))});
    }
    for (const auto &a : t->args())
        elems.push_back(skeletonElement(a, vars));

    std::uint32_t addr = here();
    for (const auto &w : elems)
        emit(w);
    return addr;
}

bool
CodeGen::packable(const TermPtr &arg, const VarMap &vars) const
{
    switch (arg->kind()) {
      case Term::Kind::Int:
        return arg->value() >= 0 && arg->value() < 32;
      case Term::Kind::Var: {
        const VarInfo &vi = vars.at(arg->name());
        return vi.isVoid || vi.slot < 32;
      }
      default:
        return false;
    }
}

std::uint32_t
CodeGen::packOperand(const TermPtr &arg, VarMap &vars)
{
    if (arg->isInt())
        return (kPackSmallInt << 5) |
               static_cast<std::uint32_t>(arg->value());
    const VarInfo &vi = vars.at(arg->name());
    if (vi.isVoid)
        return kPackVoid << 5;
    return ((vi.global ? kPackGlobalVar : kPackLocalVar) << 5) | vi.slot;
}

void
CodeGen::emitGoalArgs(const TermPtr &goal, VarMap &vars)
{
    const std::vector<TermPtr> &args = goal->args();
    int b = builtinIndex(goal->name(),
                         static_cast<std::uint32_t>(goal->arity()));
    if (!args.empty() && args.size() <= 4) {
        bool all_packed = true;
        for (const auto &a : args)
            all_packed = all_packed && packable(a, vars);
        if (all_packed) {
            std::uint32_t data = 0;
            for (std::size_t i = 0; i < args.size(); ++i)
                data |= packOperand(args[i], vars) << (8 * i);
            emit({Tag::PackedArgs, data});
            return;
        }
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
        const TermPtr &arg = args[i];
        switch (arg->kind()) {
          case Term::Kind::Atom:
            if (arg->isNil())
                emit({Tag::ANil, 0});
            else
                emit({Tag::AConst, _syms->atom(arg->name())});
            break;
          case Term::Kind::Int:
            emit({Tag::AInt,
                  static_cast<std::uint32_t>(
                      static_cast<std::int32_t>(arg->value()))});
            break;
          case Term::Kind::Var: {
            const VarInfo &vi = vars.at(arg->name());
            if (vi.isVoid)
                emit({Tag::AVoid, 0});
            else
                emit({Tag::AVar, VarSlot{vi.global, vi.slot}.encode()});
            break;
          }
          case Term::Kind::Compound: {
            auto it = t_skelAddrs->find(arg.get());
            PSI_ASSERT(it != t_skelAddrs->end(), "missing skeleton");
            std::uint32_t addr =
                LogicalAddr(Area::Heap, it->second).pack();
            if (exprPosition(b, i) && !arg->isCons()) {
                // Evaluated in place by the arithmetic firmware.
                emit({Tag::AExpr, addr});
            } else if (groundTerm(arg)) {
                // Ground terms are shared directly from the heap
                // image (structure-sharing style): no copy is made.
                emit({arg->isCons() ? Tag::AGroundList
                                    : Tag::AGroundStruct,
                      addr});
            } else {
                emit({arg->isCons() ? Tag::AList : Tag::AStruct,
                      addr});
            }
            break;
          }
        }
    }
}

void
CodeGen::emitHeadArg(const TermPtr &arg, VarMap &vars)
{
    switch (arg->kind()) {
      case Term::Kind::Atom:
        if (arg->isNil())
            emit({Tag::HNil, 0});
        else
            emit({Tag::HConst, _syms->atom(arg->name())});
        break;
      case Term::Kind::Int:
        emit({Tag::HInt,
              static_cast<std::uint32_t>(
                  static_cast<std::int32_t>(arg->value()))});
        break;
      case Term::Kind::Var: {
        VarInfo &vi = vars.at(arg->name());
        if (vi.isVoid) {
            emit({Tag::HVoid, 0});
        } else {
            Tag t = vi.introduced ? Tag::HVarS : Tag::HVarF;
            vi.introduced = true;
            emit({t, VarSlot{vi.global, vi.slot}.encode()});
        }
        break;
      }
      case Term::Kind::Compound: {
        auto it = t_skelAddrs->find(arg.get());
        PSI_ASSERT(it != t_skelAddrs->end(), "missing skeleton");
        std::uint32_t addr =
            LogicalAddr(Area::Heap, it->second).pack();
        if (groundTerm(arg)) {
            emit({arg->isCons() ? Tag::HGroundList
                                : Tag::HGroundStruct,
                  addr});
            break;
        }
        emit({arg->isCons() ? Tag::HList : Tag::HStruct, addr});
        // Variables inside this skeleton may now be bound; later
        // top-level head occurrences must unify, not overwrite.
        for (const auto &v : collectVars(arg)) {
            auto vit = vars.find(v->name());
            if (vit != vars.end())
                vit->second.introduced = true;
        }
        break;
      }
    }
}

std::uint32_t
CodeGen::compileClause(const Clause &clause, VarMap &vars)
{
    std::uint32_t arity =
        static_cast<std::uint32_t>(clause.head->arity());
    if (arity > kMaxArity) {
        fatal("predicate ", clause.head->name(), "/", arity,
              ": arity exceeds the ", kMaxArity,
              " argument registers");
    }

    analyze(clause, vars);
    std::uint32_t nlocals = 0;
    std::uint32_t nglobals = 0;
    assignSlots(vars, nlocals, nglobals);
    if (nlocals > kMaxLocals) {
        fatal("clause of ", clause.head->name(), "/", arity, " needs ",
              nlocals, " local slots; the frame buffer holds ",
              kMaxLocals);
    }
    if (nglobals > 255) {
        fatal("clause of ", clause.head->name(), "/", arity, " needs ",
              nglobals, " global slots; the header field holds 255");
    }

    // Emit skeletons for every compound argument first; clause code
    // itself must be contiguous for sequential instruction fetch.
    std::map<const Term *, std::uint32_t> skels;
    t_skelAddrs = &skels;
    for (const auto &arg : clause.head->args()) {
        if (arg->isCompound())
            skels[arg.get()] = emitSkeleton(arg, vars);
    }
    for (const auto &goal : clause.body) {
        int b = builtinIndex(goal->name(),
                             static_cast<std::uint32_t>(goal->arity()));
        for (std::size_t i = 0; i < goal->args().size(); ++i) {
            const TermPtr &arg = goal->args()[i];
            if (!arg->isCompound())
                continue;
            _exprSkel = exprPosition(b, i);
            skels[arg.get()] = emitSkeleton(arg, vars);
            _exprSkel = false;
        }
    }

    std::uint32_t addr = here();
    emit({Tag::ClauseHeader,
          arity | (nlocals << 8) | (nglobals << 16)});
    for (const auto &arg : clause.head->args())
        emitHeadArg(arg, vars);

    for (std::size_t gi = 0; gi < clause.body.size(); ++gi) {
        const TermPtr &goal = clause.body[gi];
        if (goal->isAtom() && goal->name() == "!") {
            emit({Tag::CutOp, 0});
            continue;
        }
        std::uint32_t goal_arity =
            static_cast<std::uint32_t>(goal->arity());
        if (goal_arity > kMaxArity) {
            fatal("goal ", goal->name(), "/", goal_arity,
                  ": arity exceeds the machine limit");
        }
        int b = builtinIndex(goal->name(), goal_arity);
        if (b >= 0) {
            Tag op = Tag::CallBuiltin;
            if (_opts.specializeBuiltins) {
                switch (static_cast<Builtin>(b)) {
                  case Builtin::Is:
                    op = Tag::CallIs;
                    break;
                  case Builtin::Lt:
                  case Builtin::Gt:
                  case Builtin::Le:
                  case Builtin::Ge:
                  case Builtin::ArithEq:
                  case Builtin::ArithNe:
                    op = Tag::CallCmp;
                    break;
                  default:
                    break;
                }
            }
            emit({op, static_cast<std::uint32_t>(b)});
        } else {
            std::uint32_t f = _syms->functor(goal->name(), goal_arity);
            PSI_ASSERT(f < kDirWords, "predicate directory overflow");
            // The final goal of a body is marked so the interpreter
            // can apply the tail-recursion optimization.
            bool last = gi + 1 == clause.body.size();
            emit({last ? Tag::CallLast : Tag::Call, f});
        }
        emitGoalArgs(goal, vars);
    }
    emit({Tag::Proceed, 0});
    t_skelAddrs = nullptr;
    return addr;
}

int
CodeGen::clauseKeySlot(std::uint32_t clause_addr,
                       std::uint32_t *key) const
{
    // The first head-argument descriptor sits right after the
    // ClauseHeader word, so the key of any already-emitted clause -
    // including clauses from an earlier incremental consult - can be
    // recovered from the image itself.
    TaggedWord d =
        _mem->peek(LogicalAddr(Area::Heap, clause_addr + 1));
    switch (d.tag) {
      case Tag::HConst:
        *key = d.data;
        return static_cast<int>(kIdxSlotAtom);
      case Tag::HInt:
        *key = d.data;
        return static_cast<int>(kIdxSlotInt);
      case Tag::HNil:
        return static_cast<int>(kIdxSlotNil);
      case Tag::HList:
      case Tag::HGroundList:
        return static_cast<int>(kIdxSlotList);
      case Tag::HStruct:
      case Tag::HGroundStruct:
        // The skeleton's first word is its Functor word.
        *key = _mem->peek(LogicalAddr::unpack(d.data)).data;
        return static_cast<int>(kIdxSlotStruct);
      default:
        // HVarF / HVarS / HVoid: matches any first argument.
        return 0;
    }
}

std::uint32_t
CodeGen::emitIndex(const std::vector<std::uint32_t> &addrs,
                   std::uint32_t linear_table)
{
    struct Entry
    {
        std::uint32_t addr;
        int slot;
        std::uint32_t key;
    };
    std::vector<Entry> entries;
    entries.reserve(addrs.size());
    bool any_keyed = false;
    for (auto a : addrs) {
        std::uint32_t key = 0;
        int slot = clauseKeySlot(a, &key);
        entries.push_back({a, slot, key});
        any_keyed = any_keyed || slot != 0;
    }
    if (!any_keyed)
        return 0;

    // Chain of the clauses selected by @p want, merged with the
    // variable-headed clauses, in original source order.
    auto emitChain = [&](auto &&want) {
        std::uint32_t t = here();
        for (const auto &e : entries) {
            if (e.slot == 0 || want(e))
                emit({Tag::ClauseRef, e.addr});
        }
        emit({Tag::EndClauses, 0});
        return t;
    };
    // The var-only chain serves three roles: the dispatch word of a
    // class no clause uses, the hash miss chain (a bound key no
    // clause mentions), and the empty-bucket case.
    std::uint32_t var_chain =
        emitChain([](const Entry &) { return false; });

    // Nil/list classes carry no key: one chain each.
    auto chainFor = [&](int s) {
        bool has = false;
        for (const auto &e : entries)
            has = has || e.slot == s;
        if (!has)
            return TaggedWord{Tag::ClauseRef, var_chain};
        return TaggedWord{
            Tag::ClauseRef,
            emitChain([s](const Entry &e) { return e.slot == s; })};
    };
    // Atom/int/struct classes hash their key to a bucket chain.
    auto hashFor = [&](int s, Tag key_tag) {
        std::vector<std::uint32_t> keys;  // distinct, first-seen
        for (const auto &e : entries) {
            if (e.slot != s)
                continue;
            bool seen = false;
            for (auto k : keys)
                seen = seen || k == e.key;
            if (!seen)
                keys.push_back(e.key);
        }
        if (keys.empty())
            return TaggedWord{Tag::ClauseRef, var_chain};
        std::vector<std::uint32_t> buckets;
        buckets.reserve(keys.size());
        for (auto k : keys) {
            buckets.push_back(emitChain([&](const Entry &e) {
                return e.slot == s && e.key == k;
            }));
        }
        std::uint32_t nslots = 2;
        while (nslots < 2 * keys.size())
            nslots <<= 1;
        std::vector<TaggedWord> tbl(2 * nslots,
                                    TaggedWord{Tag::Undef, 0});
        for (std::size_t i = 0; i < keys.size(); ++i) {
            std::uint32_t h = indexKeyHash(keys[i]) & (nslots - 1);
            while (tbl[2 * h].tag != Tag::Undef)
                h = (h + 1) & (nslots - 1);
            tbl[2 * h] = {key_tag, keys[i]};
            tbl[2 * h + 1] = {Tag::ClauseRef, buckets[i]};
        }
        std::uint32_t block = here();
        emit({Tag::Int, nslots});
        emit({Tag::ClauseRef, var_chain});
        for (const auto &w : tbl)
            emit(w);
        return TaggedWord{Tag::IndexHash, block};
    };

    // Dispatch words must exist before the root referencing them.
    TaggedWord atom_w = hashFor(static_cast<int>(kIdxSlotAtom),
                                Tag::Atom);
    TaggedWord int_w = hashFor(static_cast<int>(kIdxSlotInt),
                               Tag::Int);
    TaggedWord nil_w = chainFor(static_cast<int>(kIdxSlotNil));
    TaggedWord list_w = chainFor(static_cast<int>(kIdxSlotList));
    TaggedWord struct_w = hashFor(static_cast<int>(kIdxSlotStruct),
                                  Tag::Functor);

    std::uint32_t root = here();
    emit({Tag::IndexRoot, linear_table});
    emit(atom_w);
    emit(int_w);
    emit(nil_w);
    emit(list_w);
    emit(struct_w);
    return root;
}

void
CodeGen::compilePredicate(const PredId &id,
                          const std::vector<Clause> &clauses)
{
    std::uint32_t f = _syms->functor(id.name, id.arity);
    PSI_ASSERT(f < kDirWords, "predicate directory overflow");

    // Incremental consulting appends: the new clause table holds the
    // previously compiled clauses followed by the new ones.
    std::vector<std::uint32_t> &addrs = _clauses[f];
    for (const auto &cl : clauses) {
        VarMap vars;
        addrs.push_back(compileClause(cl, vars));
    }

    std::uint32_t table = here();
    for (auto a : addrs)
        emit({Tag::ClauseRef, a});
    emit({Tag::EndClauses, 0});

    TaggedWord dir{Tag::ClauseRef, table};
    if (_opts.firstArgIndexing && addrs.size() > 1 &&
        id.arity > 0) {
        std::uint32_t root = emitIndex(addrs, table);
        if (root != 0)
            dir = {Tag::IndexRef, root};
    }
    _mem->poke(LogicalAddr(Area::Heap, kDirBase + f), dir);
}

void
CodeGen::compile(const Program &program)
{
    for (const auto &id : program.predicates())
        compilePredicate(id, program.clauses(id));
}

QueryCode
CodeGen::compileQuery(const TermPtr &goal)
{
    Program aux;
    std::vector<TermPtr> flat = normalizeGoal(goal, aux);
    compile(normalize(aux));

    Clause clause;
    clause.head =
        Term::atom("$query" + std::to_string(++_queryCounter));
    clause.body = std::move(flat);
    // A trailing `true` built-in keeps the final user goal from being
    // a last call, so the query's own frame and environment survive
    // to solution extraction instead of being tail-call-optimized
    // away.
    clause.body.push_back(Term::atom("true"));

    VarMap vars;
    // Pin every named variable of the whole query so its binding
    // survives to extraction.
    for (const auto &v : collectVars(goal)) {
        if (!v->name().empty() && v->name()[0] != '_')
            vars[v->name()].pinned = true;
    }

    std::uint32_t addr = compileClause(clause, vars);
    std::uint32_t table = here();
    emit({Tag::ClauseRef, addr});
    emit({Tag::EndClauses, 0});

    QueryCode qc;
    qc.functorIdx = _syms->functor(clause.head->name(), 0);
    PSI_ASSERT(qc.functorIdx < kDirWords, "directory overflow");
    _mem->poke(LogicalAddr(Area::Heap, kDirBase + qc.functorIdx),
               {Tag::ClauseRef, table});

    TaggedWord hdr = _mem->peek(LogicalAddr(Area::Heap, addr));
    qc.nlocals = (hdr.data >> 8) & 0xff;
    qc.nglobals = (hdr.data >> 16) & 0xff;
    for (const auto &kv : vars) {
        if (kv.second.isVoid)
            continue;
        if (kv.first.empty() || kv.first[0] == '_' ||
            kv.first[0] == '$')
            continue;
        qc.vars[kv.first] =
            SlotRef{kv.second.global, kv.second.slot};
    }
    return qc;
}

} // namespace kl0
} // namespace psi
