#include "kl0/codegen.hpp"

#include "base/logging.hpp"
#include "kl0/builtin_defs.hpp"
#include "kl0/normalize.hpp"

namespace psi {
namespace kl0 {

namespace {

/** Skeleton addresses for the compound arguments of one clause. */
thread_local std::map<const Term *, std::uint32_t> *t_skelAddrs =
    nullptr;

} // namespace

CodeGen::CodeGen(MemorySystem &mem, SymbolTable &syms)
    : _mem(&mem), _syms(&syms)
{
}

void
CodeGen::emit(const TaggedWord &w)
{
    _mem->poke(LogicalAddr(Area::Heap, _cursor++), w);
}

bool
CodeGen::exprPosition(int builtin, std::size_t i)
{
    if (builtin < 0)
        return false;
    switch (static_cast<Builtin>(builtin)) {
      case Builtin::Is:
        return i == 1;
      case Builtin::Lt:
      case Builtin::Gt:
      case Builtin::Le:
      case Builtin::Ge:
      case Builtin::ArithEq:
      case Builtin::ArithNe:
        return true;
      case Builtin::Tab:
        return i == 0;
      default:
        return false;
    }
}

bool
CodeGen::groundTerm(const TermPtr &t)
{
    if (t->isVar())
        return false;
    for (const auto &a : t->args()) {
        if (!groundTerm(a))
            return false;
    }
    return true;
}

void
CodeGen::analyzeTerm(const TermPtr &t, bool in_skel, bool in_arith,
                     VarMap &vars) const
{
    if (t->isVar()) {
        VarInfo &vi = vars[t->name()];
        ++vi.count;
        vi.inSkel = vi.inSkel || in_skel;
        return;
    }
    // Inside an arithmetic expression skeleton variables are read in
    // place (the expression is never instantiated), so they do not
    // become global.
    for (const auto &a : t->args())
        analyzeTerm(a, !in_arith, in_arith, vars);
}

void
CodeGen::analyze(const Clause &clause, VarMap &vars) const
{
    for (const auto &arg : clause.head->args())
        analyzeTerm(arg, false, false, vars);
    for (const auto &goal : clause.body) {
        int b = builtinIndex(goal->name(),
                             static_cast<std::uint32_t>(goal->arity()));
        for (std::size_t i = 0; i < goal->args().size(); ++i) {
            analyzeTerm(goal->args()[i], false, exprPosition(b, i),
                        vars);
        }
    }
}

void
CodeGen::assignSlots(VarMap &vars, std::uint32_t &nlocals,
                     std::uint32_t &nglobals)
{
    nlocals = 0;
    nglobals = 0;
    for (auto &kv : vars) {
        VarInfo &vi = kv.second;
        vi.global = vi.inSkel;
        vi.isVoid = vi.count == 1 && !vi.pinned;
        if (vi.isVoid)
            continue;
        if (vi.global)
            vi.slot = static_cast<std::uint16_t>(nglobals++);
        else
            vi.slot = static_cast<std::uint16_t>(nlocals++);
    }
}

TaggedWord
CodeGen::skeletonElement(const TermPtr &t, VarMap &vars)
{
    switch (t->kind()) {
      case Term::Kind::Atom:
        if (t->isNil())
            return {Tag::Nil, 0};
        return {Tag::Atom, _syms->atom(t->name())};
      case Term::Kind::Int:
        return TaggedWord::makeInt(static_cast<std::int32_t>(t->value()));
      case Term::Kind::Var: {
        const VarInfo &vi = vars.at(t->name());
        if (vi.isVoid)
            return {Tag::SkelVar, kSkelVoidBit};
        PSI_ASSERT(vi.global || _exprSkel,
                   "skeleton variable must be global");
        return {Tag::SkelVar, VarSlot{vi.global, vi.slot}.encode()};
      }
      case Term::Kind::Compound: {
        std::uint32_t addr = emitSkeleton(t, vars);
        return {t->isCons() ? Tag::List : Tag::Struct,
                LogicalAddr(Area::Heap, addr).pack()};
      }
    }
    panic("unreachable skeleton element");
}

std::uint32_t
CodeGen::emitSkeleton(const TermPtr &t, VarMap &vars)
{
    PSI_ASSERT(t->isCompound(), "skeleton must be compound");
    // Children first (depth-first), so the parent cell can reference
    // them; the parent's own words must be contiguous.
    std::vector<TaggedWord> elems;
    elems.reserve(t->arity() + 1);
    if (!t->isCons()) {
        elems.push_back(
            {Tag::Functor,
             _syms->functor(t->name(),
                            static_cast<std::uint32_t>(t->arity()))});
    }
    for (const auto &a : t->args())
        elems.push_back(skeletonElement(a, vars));

    std::uint32_t addr = here();
    for (const auto &w : elems)
        emit(w);
    return addr;
}

bool
CodeGen::packable(const TermPtr &arg, const VarMap &vars) const
{
    switch (arg->kind()) {
      case Term::Kind::Int:
        return arg->value() >= 0 && arg->value() < 32;
      case Term::Kind::Var: {
        const VarInfo &vi = vars.at(arg->name());
        return vi.isVoid || vi.slot < 32;
      }
      default:
        return false;
    }
}

std::uint32_t
CodeGen::packOperand(const TermPtr &arg, VarMap &vars)
{
    if (arg->isInt())
        return (kPackSmallInt << 5) |
               static_cast<std::uint32_t>(arg->value());
    const VarInfo &vi = vars.at(arg->name());
    if (vi.isVoid)
        return kPackVoid << 5;
    return ((vi.global ? kPackGlobalVar : kPackLocalVar) << 5) | vi.slot;
}

void
CodeGen::emitGoalArgs(const TermPtr &goal, VarMap &vars)
{
    const std::vector<TermPtr> &args = goal->args();
    int b = builtinIndex(goal->name(),
                         static_cast<std::uint32_t>(goal->arity()));
    if (!args.empty() && args.size() <= 4) {
        bool all_packed = true;
        for (const auto &a : args)
            all_packed = all_packed && packable(a, vars);
        if (all_packed) {
            std::uint32_t data = 0;
            for (std::size_t i = 0; i < args.size(); ++i)
                data |= packOperand(args[i], vars) << (8 * i);
            emit({Tag::PackedArgs, data});
            return;
        }
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
        const TermPtr &arg = args[i];
        switch (arg->kind()) {
          case Term::Kind::Atom:
            if (arg->isNil())
                emit({Tag::ANil, 0});
            else
                emit({Tag::AConst, _syms->atom(arg->name())});
            break;
          case Term::Kind::Int:
            emit({Tag::AInt,
                  static_cast<std::uint32_t>(
                      static_cast<std::int32_t>(arg->value()))});
            break;
          case Term::Kind::Var: {
            const VarInfo &vi = vars.at(arg->name());
            if (vi.isVoid)
                emit({Tag::AVoid, 0});
            else
                emit({Tag::AVar, VarSlot{vi.global, vi.slot}.encode()});
            break;
          }
          case Term::Kind::Compound: {
            auto it = t_skelAddrs->find(arg.get());
            PSI_ASSERT(it != t_skelAddrs->end(), "missing skeleton");
            std::uint32_t addr =
                LogicalAddr(Area::Heap, it->second).pack();
            if (exprPosition(b, i) && !arg->isCons()) {
                // Evaluated in place by the arithmetic firmware.
                emit({Tag::AExpr, addr});
            } else if (groundTerm(arg)) {
                // Ground terms are shared directly from the heap
                // image (structure-sharing style): no copy is made.
                emit({arg->isCons() ? Tag::AGroundList
                                    : Tag::AGroundStruct,
                      addr});
            } else {
                emit({arg->isCons() ? Tag::AList : Tag::AStruct,
                      addr});
            }
            break;
          }
        }
    }
}

void
CodeGen::emitHeadArg(const TermPtr &arg, VarMap &vars)
{
    switch (arg->kind()) {
      case Term::Kind::Atom:
        if (arg->isNil())
            emit({Tag::HNil, 0});
        else
            emit({Tag::HConst, _syms->atom(arg->name())});
        break;
      case Term::Kind::Int:
        emit({Tag::HInt,
              static_cast<std::uint32_t>(
                  static_cast<std::int32_t>(arg->value()))});
        break;
      case Term::Kind::Var: {
        VarInfo &vi = vars.at(arg->name());
        if (vi.isVoid) {
            emit({Tag::HVoid, 0});
        } else {
            Tag t = vi.introduced ? Tag::HVarS : Tag::HVarF;
            vi.introduced = true;
            emit({t, VarSlot{vi.global, vi.slot}.encode()});
        }
        break;
      }
      case Term::Kind::Compound: {
        auto it = t_skelAddrs->find(arg.get());
        PSI_ASSERT(it != t_skelAddrs->end(), "missing skeleton");
        std::uint32_t addr =
            LogicalAddr(Area::Heap, it->second).pack();
        if (groundTerm(arg)) {
            emit({arg->isCons() ? Tag::HGroundList
                                : Tag::HGroundStruct,
                  addr});
            break;
        }
        emit({arg->isCons() ? Tag::HList : Tag::HStruct, addr});
        // Variables inside this skeleton may now be bound; later
        // top-level head occurrences must unify, not overwrite.
        for (const auto &v : collectVars(arg)) {
            auto vit = vars.find(v->name());
            if (vit != vars.end())
                vit->second.introduced = true;
        }
        break;
      }
    }
}

std::uint32_t
CodeGen::compileClause(const Clause &clause, VarMap &vars)
{
    std::uint32_t arity =
        static_cast<std::uint32_t>(clause.head->arity());
    if (arity > kMaxArity) {
        fatal("predicate ", clause.head->name(), "/", arity,
              ": arity exceeds the ", kMaxArity,
              " argument registers");
    }

    analyze(clause, vars);
    std::uint32_t nlocals = 0;
    std::uint32_t nglobals = 0;
    assignSlots(vars, nlocals, nglobals);
    if (nlocals > kMaxLocals) {
        fatal("clause of ", clause.head->name(), "/", arity, " needs ",
              nlocals, " local slots; the frame buffer holds ",
              kMaxLocals);
    }
    if (nglobals > 255) {
        fatal("clause of ", clause.head->name(), "/", arity, " needs ",
              nglobals, " global slots; the header field holds 255");
    }

    // Emit skeletons for every compound argument first; clause code
    // itself must be contiguous for sequential instruction fetch.
    std::map<const Term *, std::uint32_t> skels;
    t_skelAddrs = &skels;
    for (const auto &arg : clause.head->args()) {
        if (arg->isCompound())
            skels[arg.get()] = emitSkeleton(arg, vars);
    }
    for (const auto &goal : clause.body) {
        int b = builtinIndex(goal->name(),
                             static_cast<std::uint32_t>(goal->arity()));
        for (std::size_t i = 0; i < goal->args().size(); ++i) {
            const TermPtr &arg = goal->args()[i];
            if (!arg->isCompound())
                continue;
            _exprSkel = exprPosition(b, i);
            skels[arg.get()] = emitSkeleton(arg, vars);
            _exprSkel = false;
        }
    }

    std::uint32_t addr = here();
    emit({Tag::ClauseHeader,
          arity | (nlocals << 8) | (nglobals << 16)});
    for (const auto &arg : clause.head->args())
        emitHeadArg(arg, vars);

    for (std::size_t gi = 0; gi < clause.body.size(); ++gi) {
        const TermPtr &goal = clause.body[gi];
        if (goal->isAtom() && goal->name() == "!") {
            emit({Tag::CutOp, 0});
            continue;
        }
        std::uint32_t goal_arity =
            static_cast<std::uint32_t>(goal->arity());
        if (goal_arity > kMaxArity) {
            fatal("goal ", goal->name(), "/", goal_arity,
                  ": arity exceeds the machine limit");
        }
        int b = builtinIndex(goal->name(), goal_arity);
        if (b >= 0) {
            emit({Tag::CallBuiltin, static_cast<std::uint32_t>(b)});
        } else {
            std::uint32_t f = _syms->functor(goal->name(), goal_arity);
            PSI_ASSERT(f < kDirWords, "predicate directory overflow");
            // The final goal of a body is marked so the interpreter
            // can apply the tail-recursion optimization.
            bool last = gi + 1 == clause.body.size();
            emit({last ? Tag::CallLast : Tag::Call, f});
        }
        emitGoalArgs(goal, vars);
    }
    emit({Tag::Proceed, 0});
    t_skelAddrs = nullptr;
    return addr;
}

void
CodeGen::compilePredicate(const PredId &id,
                          const std::vector<Clause> &clauses)
{
    std::uint32_t f = _syms->functor(id.name, id.arity);
    PSI_ASSERT(f < kDirWords, "predicate directory overflow");

    // Incremental consulting appends: the new clause table holds the
    // previously compiled clauses followed by the new ones.
    std::vector<std::uint32_t> &addrs = _clauses[f];
    for (const auto &cl : clauses) {
        VarMap vars;
        addrs.push_back(compileClause(cl, vars));
    }

    std::uint32_t table = here();
    for (auto a : addrs)
        emit({Tag::ClauseRef, a});
    emit({Tag::EndClauses, 0});

    _mem->poke(LogicalAddr(Area::Heap, kDirBase + f),
               {Tag::ClauseRef, table});
}

void
CodeGen::compile(const Program &program)
{
    for (const auto &id : program.predicates())
        compilePredicate(id, program.clauses(id));
}

QueryCode
CodeGen::compileQuery(const TermPtr &goal)
{
    Program aux;
    std::vector<TermPtr> flat = normalizeGoal(goal, aux);
    compile(normalize(aux));

    Clause clause;
    clause.head =
        Term::atom("$query" + std::to_string(++_queryCounter));
    clause.body = std::move(flat);
    // A trailing `true` built-in keeps the final user goal from being
    // a last call, so the query's own frame and environment survive
    // to solution extraction instead of being tail-call-optimized
    // away.
    clause.body.push_back(Term::atom("true"));

    VarMap vars;
    // Pin every named variable of the whole query so its binding
    // survives to extraction.
    for (const auto &v : collectVars(goal)) {
        if (!v->name().empty() && v->name()[0] != '_')
            vars[v->name()].pinned = true;
    }

    std::uint32_t addr = compileClause(clause, vars);
    std::uint32_t table = here();
    emit({Tag::ClauseRef, addr});
    emit({Tag::EndClauses, 0});

    QueryCode qc;
    qc.functorIdx = _syms->functor(clause.head->name(), 0);
    PSI_ASSERT(qc.functorIdx < kDirWords, "directory overflow");
    _mem->poke(LogicalAddr(Area::Heap, kDirBase + qc.functorIdx),
               {Tag::ClauseRef, table});

    TaggedWord hdr = _mem->peek(LogicalAddr(Area::Heap, addr));
    qc.nlocals = (hdr.data >> 8) & 0xff;
    qc.nglobals = (hdr.data >> 16) & 0xff;
    for (const auto &kv : vars) {
        if (kv.second.isVoid)
            continue;
        if (kv.first.empty() || kv.first[0] == '_' ||
            kv.first[0] == '$')
            continue;
        qc.vars[kv.first] =
            SlotRef{kv.second.global, kv.second.slot};
    }
    return qc;
}

} // namespace kl0
} // namespace psi
