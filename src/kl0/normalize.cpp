#include "kl0/normalize.hpp"

#include <atomic>
#include <set>

#include "base/logging.hpp"

namespace psi {
namespace kl0 {

namespace {

void
collectVarsInto(const TermPtr &t, std::set<std::string> &seen,
                std::vector<TermPtr> &out)
{
    if (t->isVar()) {
        if (seen.insert(t->name()).second)
            out.push_back(t);
        return;
    }
    for (const auto &a : t->args())
        collectVarsInto(a, seen, out);
}

/** Rewrites one program; owns the aux-predicate counter. */
class Normalizer
{
  public:
    explicit Normalizer(Program &out) : _out(&out) {}

    std::vector<TermPtr>
    body(const std::vector<TermPtr> &goals)
    {
        std::vector<TermPtr> flat;
        for (const auto &g : goals)
            goal(g, flat);
        return flat;
    }

  private:
    void
    goal(const TermPtr &g, std::vector<TermPtr> &out)
    {
        if (g->isCallable(",", 2)) {
            goal(g->args()[0], out);
            goal(g->args()[1], out);
            return;
        }
        if (g->isCallable(";", 2)) {
            const TermPtr &lhs = g->args()[0];
            if (lhs->isCallable("->", 2)) {
                // (C -> T ; E)
                out.push_back(iteAux(lhs->args()[0], lhs->args()[1],
                                     g->args()[1], g));
            } else {
                out.push_back(orAux(lhs, g->args()[1], g));
            }
            return;
        }
        if (g->isCallable("->", 2)) {
            // Bare if-then: (C -> T) == (C -> T ; fail).
            out.push_back(iteAux(g->args()[0], g->args()[1],
                                 Term::atom("fail"), g));
            return;
        }
        if (g->isCallable("\\+", 1) || g->isCallable("not", 1)) {
            out.push_back(notAux(g->args()[0], g));
            return;
        }
        if (g->isVar())
            fatal("unbound variable used as a goal");
        if (g->isInt())
            fatal("integer used as a goal");
        out.push_back(g);
    }

    /** Fresh aux head over the variables of @p scope. */
    TermPtr
    auxHead(const TermPtr &scope)
    {
        // The counter is process-global so auxiliary predicates from a
        // program and from later queries against it never collide in
        // the predicate directory.  Atomic because engine-pool workers
        // normalize concurrently.
        static std::atomic<std::uint64_t> counter{0};
        std::string name =
            "$aux" + std::to_string(counter.fetch_add(
                         1, std::memory_order_relaxed) + 1);
        std::vector<TermPtr> vars = collectVars(scope);
        if (vars.size() > 16) {
            fatal("control construct captures ", vars.size(),
                  " variables; the machine supports at most 16 ",
                  "arguments");
        }
        return Term::compound(name, std::move(vars));
    }

    void
    addAux(const TermPtr &head, const TermPtr &bodyTerm)
    {
        // Auxiliary bodies can themselves contain control constructs
        // (nested disjunctions, negations inside conditions), so they
        // are normalized recursively before being added.
        std::vector<TermPtr> flat =
            body(Program::flattenConjunction(bodyTerm));
        if (flat.empty() ||
            (flat.size() == 1 && flat[0]->isAtom() &&
             flat[0]->name() == "true")) {
            _out->add(head);
            return;
        }
        TermPtr rebuilt = flat.back();
        for (auto it = flat.rbegin() + 1; it != flat.rend(); ++it)
            rebuilt = Term::compound(",", {*it, rebuilt});
        _out->add(Term::compound(":-", {head, rebuilt}));
    }

    TermPtr
    orAux(const TermPtr &a, const TermPtr &b, const TermPtr &scope)
    {
        TermPtr head = auxHead(scope);
        addAux(head, a);
        addAux(head, b);
        return head;
    }

    TermPtr
    iteAux(const TermPtr &c, const TermPtr &t, const TermPtr &e,
           const TermPtr &scope)
    {
        TermPtr head = auxHead(scope);
        addAux(head, Term::compound(",", {c,
                       Term::compound(",", {Term::atom("!"), t})}));
        addAux(head, e);
        return head;
    }

    TermPtr
    notAux(const TermPtr &g, const TermPtr &scope)
    {
        TermPtr head = auxHead(scope);
        addAux(head, Term::compound(",", {g,
                       Term::compound(",", {Term::atom("!"),
                                            Term::atom("fail")})}));
        addAux(head, Term::atom("true"));
        return head;
    }

    Program *_out;
};

// One shared normalizer per output program would reuse counters; a
// static counter keeps aux names unique across calls on the same
// output program.

} // namespace

std::vector<TermPtr>
collectVars(const TermPtr &t)
{
    std::set<std::string> seen;
    std::vector<TermPtr> out;
    collectVarsInto(t, seen, out);
    return out;
}

Program
normalize(const Program &in)
{
    Program out;
    Normalizer norm(out);
    for (const auto &id : in.predicates()) {
        for (const auto &cl : in.clauses(id)) {
            std::vector<TermPtr> flat = norm.body(cl.body);
            if (flat.empty()) {
                out.add(cl.head);
            } else {
                TermPtr bodyTerm = flat.back();
                for (auto it = flat.rbegin() + 1; it != flat.rend();
                     ++it) {
                    bodyTerm = Term::compound(",", {*it, bodyTerm});
                }
                out.add(Term::compound(":-", {cl.head, bodyTerm}));
            }
        }
    }
    return out;
}

std::vector<TermPtr>
normalizeGoal(const TermPtr &goal, Program &aux)
{
    Normalizer norm(aux);
    return norm.body(Program::flattenConjunction(goal));
}

} // namespace kl0
} // namespace psi
