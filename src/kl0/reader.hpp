/**
 * @file
 * Operator-precedence reader for the KL0 dialect.
 *
 * Accepts Edinburgh-style clauses with the standard operator table
 * (:-, ;, ->, \+, comparison and arithmetic operators), lists,
 * negative literals and quoted atoms.  Each top-level term is one
 * clause or directive, terminated with a full stop.
 */

#ifndef PSI_KL0_READER_HPP
#define PSI_KL0_READER_HPP

#include <string>
#include <vector>

#include "kl0/term.hpp"
#include "kl0/token.hpp"

namespace psi {
namespace kl0 {

/** Parses program text into clause terms. */
class Reader
{
  public:
    explicit Reader(const std::string &text);

    /** Read all clauses until end of input. */
    std::vector<TermPtr> readAll();

    /** Read the next clause; nullptr at end of input. */
    TermPtr readClause();

  private:
    const Token &cur() const { return _tokens[_pos]; }
    const Token &ahead(std::size_t k = 1) const;
    void advance() { ++_pos; }
    [[noreturn]] void syntaxError(const std::string &what) const;

    TermPtr parse(int max_prec);
    TermPtr parsePrimary(int max_prec);
    TermPtr parseArgList(const std::string &functor);
    TermPtr parseList();

    /** True if the current token could begin a term. */
    bool startsTerm() const;

    std::vector<Token> _tokens;
    std::size_t _pos = 0;
    std::uint64_t _anonCounter = 0;
};

/** Parse a single term (no trailing full stop required). */
TermPtr parseTerm(const std::string &text);

/** Parse program text into clauses (convenience wrapper). */
std::vector<TermPtr> parseProgram(const std::string &text);

} // namespace kl0
} // namespace psi

#endif // PSI_KL0_READER_HPP
