/**
 * @file
 * Translation of KL0 clauses into PSI instruction code.
 *
 * The machine-resident expression of a program lives in the heap
 * area:
 *
 *  - a predicate directory at kDirBase, one word per functor index
 *    (ClauseRef to the predicate's clause table, or Undef);
 *  - per predicate, a clause table: ClauseRef words terminated by
 *    EndClauses;
 *  - per clause: a ClauseHeader word (arity / local count / global
 *    count packed into the data part), the head argument descriptor
 *    words, then the body goal records, terminated with Proceed;
 *  - compound-term skeletons referenced by HList/HStruct/AList/
 *    AStruct descriptors.
 *
 * Small goal arguments are packed four 8-bit operands to a word
 * (PackedArgs), each operand a 3-bit type plus 5-bit index, the
 * paper's packed-argument format and the target of the `case (irn)`
 * multi-way branch.
 *
 * Variables that occur inside compound terms are classified global
 * (their cells are allocated on the global stack at clause entry);
 * the rest are local (frame-buffer slots).  Single-occurrence
 * variables compile to void descriptors.
 */

#ifndef PSI_KL0_CODEGEN_HPP
#define PSI_KL0_CODEGEN_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kl0/program.hpp"
#include "kl0/symbols.hpp"
#include "kl0/term.hpp"
#include "mem/memory_system.hpp"

namespace psi {
namespace kl0 {

/** @name Heap-area layout */
/// @{
constexpr std::uint32_t kHeapNull = 0;        ///< never a valid address
constexpr std::uint32_t kDirBase = 16;        ///< predicate directory
constexpr std::uint32_t kDirWords = 8192;     ///< max functor indices
constexpr std::uint32_t kCodeBase = kDirBase + kDirWords;
constexpr std::uint32_t kVectorBase = 1u << 24;  ///< runtime vectors
/// @}

/** @name Machine limits */
/// @{
constexpr std::uint32_t kMaxArity = 16;   ///< argument registers
constexpr std::uint32_t kMaxLocals = 64;  ///< frame-buffer words
/// @}

/** @name Packed-operand encoding (3-bit type + 5-bit index) */
/// @{
constexpr std::uint32_t kPackNone = 0;      ///< padding
constexpr std::uint32_t kPackLocalVar = 1;
constexpr std::uint32_t kPackGlobalVar = 2;
constexpr std::uint32_t kPackVoid = 3;
constexpr std::uint32_t kPackSmallInt = 4;
/// @}

/** SkelVar data bit: single-occurrence (void) skeleton variable. */
constexpr std::uint32_t kSkelVoidBit = 0x20000;

/** Where a source variable lives at run time. */
struct SlotRef
{
    bool global = false;
    std::uint16_t index = 0;
};

/** Result of compiling a query. */
struct QueryCode
{
    std::uint32_t functorIdx = 0;  ///< the $query/0 predicate
    std::map<std::string, SlotRef> vars;  ///< named query variables
    std::uint32_t nlocals = 0;
    std::uint32_t nglobals = 0;
};

/** Compiles programs and queries into the heap image. */
class CodeGen
{
  public:
    CodeGen(MemorySystem &mem, SymbolTable &syms);

    /**
     * Compile every predicate of @p program (normalize() must have
     * been applied first; bodies may contain only plain goals).
     */
    void compile(const Program &program);

    /**
     * Compile @p goal as the body of a fresh `$queryN/0` predicate.
     * All named variables of the goal are pinned so their bindings
     * can be extracted after a solution.
     */
    QueryCode compileQuery(const TermPtr &goal);

    /** First free heap word after the compiled image. */
    std::uint32_t heapTop() const { return _cursor; }

    /** Total instruction-code words emitted (for reports). */
    std::uint32_t codeWords() const { return _cursor - kCodeBase; }

    /**
     * The generator's whole post-compile state: the heap cursor and
     * the per-functor clause-address table.  Captured once by the
     * program compiler and restored into any engine that installs the
     * matching heap image (CompiledProgram / Engine::load).
     */
    struct Snapshot
    {
        std::uint32_t cursor = kCodeBase;
        std::map<std::uint32_t, std::vector<std::uint32_t>> clauses;
    };

    Snapshot snapshot() const { return Snapshot{_cursor, _clauses}; }

    /**
     * Restore a snapshot.  The query counter restarts at zero so the
     * first query compiled afterwards names its predicate `$query1`,
     * exactly as on a freshly consulted engine - part of the
     * byte-identity contract of the warm-engine path.
     */
    void
    restore(const Snapshot &s)
    {
        _cursor = s.cursor;
        _clauses = s.clauses;
        _queryCounter = 0;
        _exprSkel = false;
    }

  private:
    struct VarInfo
    {
        int count = 0;
        bool inSkel = false;
        bool pinned = false;
        bool global = false;
        bool isVoid = false;
        bool introduced = false;  ///< first occurrence already emitted
        std::uint16_t slot = 0;
    };

    using VarMap = std::map<std::string, VarInfo>;

    void emit(const TaggedWord &w);
    std::uint32_t here() const { return _cursor; }

    void compilePredicate(const PredId &id,
                          const std::vector<Clause> &clauses);
    std::uint32_t compileClause(const Clause &clause, VarMap &vars);

    /** Occurrence analysis over one clause. */
    void analyze(const Clause &clause, VarMap &vars) const;
    void analyzeTerm(const TermPtr &t, bool in_skel, bool in_arith,
                     VarMap &vars) const;
    static void assignSlots(VarMap &vars, std::uint32_t &nlocals,
                            std::uint32_t &nglobals);

    /** True when argument @p i of builtin @p b is an arithmetic
     *  expression position (evaluated, never instantiated). */
    static bool exprPosition(int builtin, std::size_t i);

    /** True when @p t contains no variables. */
    static bool groundTerm(const TermPtr &t);

    /** Emit a skeleton for @p t; @return its heap address. */
    std::uint32_t emitSkeleton(const TermPtr &t, VarMap &vars);
    TaggedWord skeletonElement(const TermPtr &t, VarMap &vars);

    void emitHeadArg(const TermPtr &arg, VarMap &vars);
    void emitGoalArgs(const TermPtr &goal, VarMap &vars);
    bool packable(const TermPtr &arg, const VarMap &vars) const;
    std::uint32_t packOperand(const TermPtr &arg, VarMap &vars);

    MemorySystem *_mem;
    SymbolTable *_syms;
    std::uint32_t _cursor = kCodeBase;
    /** All clause addresses per functor, across compile() calls, so
     *  incremental consulting appends instead of replacing. */
    std::map<std::uint32_t, std::vector<std::uint32_t>> _clauses;
    std::uint64_t _queryCounter = 0;
    /** True while emitting an arithmetic-expression skeleton (local
     *  variable slots are then permitted in SkelVar elements). */
    bool _exprSkel = false;
};

} // namespace kl0
} // namespace psi

#endif // PSI_KL0_CODEGEN_HPP
