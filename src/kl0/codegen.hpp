/**
 * @file
 * Translation of KL0 clauses into PSI instruction code.
 *
 * The machine-resident expression of a program lives in the heap
 * area:
 *
 *  - a predicate directory at kDirBase, one word per functor index
 *    (ClauseRef to the predicate's clause table, or Undef);
 *  - per predicate, a clause table: ClauseRef words terminated by
 *    EndClauses;
 *  - per clause: a ClauseHeader word (arity / local count / global
 *    count packed into the data part), the head argument descriptor
 *    words, then the body goal records, terminated with Proceed;
 *  - compound-term skeletons referenced by HList/HStruct/AList/
 *    AStruct descriptors.
 *
 * Small goal arguments are packed four 8-bit operands to a word
 * (PackedArgs), each operand a 3-bit type plus 5-bit index, the
 * paper's packed-argument format and the target of the `case (irn)`
 * multi-way branch.
 *
 * Variables that occur inside compound terms are classified global
 * (their cells are allocated on the global stack at clause entry);
 * the rest are local (frame-buffer slots).  Single-occurrence
 * variables compile to void descriptors.
 */

#ifndef PSI_KL0_CODEGEN_HPP
#define PSI_KL0_CODEGEN_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kl0/program.hpp"
#include "kl0/symbols.hpp"
#include "kl0/term.hpp"
#include "mem/memory_system.hpp"

namespace psi {
namespace kl0 {

/** @name Heap-area layout */
/// @{
constexpr std::uint32_t kHeapNull = 0;        ///< never a valid address
constexpr std::uint32_t kDirBase = 16;        ///< predicate directory
constexpr std::uint32_t kDirWords = 8192;     ///< max functor indices
constexpr std::uint32_t kCodeBase = kDirBase + kDirWords;
constexpr std::uint32_t kVectorBase = 1u << 24;  ///< runtime vectors
/// @}

/** @name Machine limits */
/// @{
constexpr std::uint32_t kMaxArity = 16;   ///< argument registers
constexpr std::uint32_t kMaxLocals = 64;  ///< frame-buffer words
/// @}

/** @name Packed-operand encoding (3-bit type + 5-bit index) */
/// @{
constexpr std::uint32_t kPackNone = 0;      ///< padding
constexpr std::uint32_t kPackLocalVar = 1;
constexpr std::uint32_t kPackGlobalVar = 2;
constexpr std::uint32_t kPackVoid = 3;
constexpr std::uint32_t kPackSmallInt = 4;
/// @}

/** SkelVar data bit: single-occurrence (void) skeleton variable. */
constexpr std::uint32_t kSkelVoidBit = 0x20000;

/**
 * @name First-argument index layout (psiindex)
 *
 * A predicate with more than one clause and at least one
 * constant-keyed first argument gets, after its linear clause table,
 * an index the directory points at with {IndexRef, root}:
 *
 *  - root + 0: {IndexRoot, linear-table addr} - the fallback both
 *    engines take when the first argument dereferences unbound (or
 *    to a tag the index does not cover);
 *  - root + kIdxSlotAtom .. kIdxSlotStruct: one dispatch word per
 *    first-argument class, each either {ClauseRef, chain} (walk that
 *    chain directly) or {IndexHash, block} (probe the hash block);
 *  - hash block: {Int, nslots} {ClauseRef, miss chain} followed by
 *    nslots key/value pairs - key word ({Atom,i}/{Int,v}/{Functor,f}
 *    or {Undef,0} when empty) then {ClauseRef, bucket chain}.
 *    nslots is a power of two >= 2x the distinct keys (load factor
 *    <= 1/2), probed linearly; an empty key word means "no clause
 *    mentions this key", which routes to the miss chain.
 *
 * Every chain is an ordinary ClauseRef... EndClauses table holding
 * the key's matching clauses merged with the variable-headed clauses
 * in original source order, so choice points and backtracking work
 * on bucket chains exactly as on the linear table.  The index is a
 * filter: a skipped clause is one whose head unification was going
 * to fail on the first argument anyway.
 */
/// @{
constexpr std::uint32_t kIdxSlotAtom = 1;
constexpr std::uint32_t kIdxSlotInt = 2;
constexpr std::uint32_t kIdxSlotNil = 3;
constexpr std::uint32_t kIdxSlotList = 4;
constexpr std::uint32_t kIdxSlotStruct = 5;
constexpr std::uint32_t kIdxRootWords = 6;
/// @}

/**
 * Hash for index keys (atom index, int data, functor index).  The
 * codegen builder and both engines' probes must agree bit-for-bit;
 * multiplicative hashing keeps the high product bits, which scatter
 * far better than the low ones for the small sequential indices the
 * symbol tables hand out.
 */
inline std::uint32_t
indexKeyHash(std::uint32_t data)
{
    return (data * 2654435761u) >> 16;
}

/**
 * Code-generation options.  They ride CompiledProgram so an image
 * records how it was compiled; indexed and unindexed images of the
 * same source are different byte streams and must never alias (the
 * ProgramCache folds these bits into its key).  All-off reproduces
 * the pre-psiindex image bit-for-bit.
 */
struct CompileOptions
{
    /** Emit first-argument indexes (IndexRef directories). */
    bool firstArgIndexing = true;
    /** Emit CallIs/CallCmp for is/2 and the arithmetic compares
     *  instead of the generic CallBuiltin dispatch. */
    bool specializeBuiltins = true;

    bool operator==(const CompileOptions &) const = default;
};

/** Where a source variable lives at run time. */
struct SlotRef
{
    bool global = false;
    std::uint16_t index = 0;
};

/** Result of compiling a query. */
struct QueryCode
{
    std::uint32_t functorIdx = 0;  ///< the $query/0 predicate
    std::map<std::string, SlotRef> vars;  ///< named query variables
    std::uint32_t nlocals = 0;
    std::uint32_t nglobals = 0;
};

/** Compiles programs and queries into the heap image. */
class CodeGen
{
  public:
    CodeGen(MemorySystem &mem, SymbolTable &syms,
            CompileOptions opts = {});

    /** The options this generator compiles with. */
    const CompileOptions &options() const { return _opts; }

    /** Adopt @p opts (an engine loading an image adopts the image's
     *  options so later incremental consults and query compiles stay
     *  consistent with the installed code). */
    void setOptions(const CompileOptions &opts) { _opts = opts; }

    /**
     * Compile every predicate of @p program (normalize() must have
     * been applied first; bodies may contain only plain goals).
     */
    void compile(const Program &program);

    /**
     * Compile @p goal as the body of a fresh `$queryN/0` predicate.
     * All named variables of the goal are pinned so their bindings
     * can be extracted after a solution.
     */
    QueryCode compileQuery(const TermPtr &goal);

    /** First free heap word after the compiled image. */
    std::uint32_t heapTop() const { return _cursor; }

    /** Total instruction-code words emitted (for reports). */
    std::uint32_t codeWords() const { return _cursor - kCodeBase; }

    /**
     * The generator's whole post-compile state: the heap cursor and
     * the per-functor clause-address table.  Captured once by the
     * program compiler and restored into any engine that installs the
     * matching heap image (CompiledProgram / Engine::load).
     */
    struct Snapshot
    {
        std::uint32_t cursor = kCodeBase;
        std::map<std::uint32_t, std::vector<std::uint32_t>> clauses;
    };

    Snapshot snapshot() const { return Snapshot{_cursor, _clauses}; }

    /**
     * Restore a snapshot.  The query counter restarts at zero so the
     * first query compiled afterwards names its predicate `$query1`,
     * exactly as on a freshly consulted engine - part of the
     * byte-identity contract of the warm-engine path.
     */
    void
    restore(const Snapshot &s)
    {
        _cursor = s.cursor;
        _clauses = s.clauses;
        _queryCounter = 0;
        _exprSkel = false;
    }

  private:
    struct VarInfo
    {
        int count = 0;
        bool inSkel = false;
        bool pinned = false;
        bool global = false;
        bool isVoid = false;
        bool introduced = false;  ///< first occurrence already emitted
        std::uint16_t slot = 0;
    };

    using VarMap = std::map<std::string, VarInfo>;

    void emit(const TaggedWord &w);
    std::uint32_t here() const { return _cursor; }

    void compilePredicate(const PredId &id,
                          const std::vector<Clause> &clauses);
    std::uint32_t compileClause(const Clause &clause, VarMap &vars);

    /** First-argument class of the clause at @p clause_addr: one of
     *  the kIdxSlot* constants, or 0 for a variable head argument.
     *  @p key receives the atom/int/functor key for keyed classes. */
    int clauseKeySlot(std::uint32_t clause_addr,
                      std::uint32_t *key) const;

    /** Emit the index blocks for a predicate whose clause addresses
     *  are @p addrs and whose linear table is at @p linear_table.
     *  @return the index root address, or 0 when no clause has a
     *  constant first-argument key (indexing would filter nothing). */
    std::uint32_t emitIndex(const std::vector<std::uint32_t> &addrs,
                            std::uint32_t linear_table);

    /** Occurrence analysis over one clause. */
    void analyze(const Clause &clause, VarMap &vars) const;
    void analyzeTerm(const TermPtr &t, bool in_skel, bool in_arith,
                     VarMap &vars) const;
    static void assignSlots(VarMap &vars, std::uint32_t &nlocals,
                            std::uint32_t &nglobals);

    /** True when argument @p i of builtin @p b is an arithmetic
     *  expression position (evaluated, never instantiated). */
    static bool exprPosition(int builtin, std::size_t i);

    /** True when @p t contains no variables. */
    static bool groundTerm(const TermPtr &t);

    /** Emit a skeleton for @p t; @return its heap address. */
    std::uint32_t emitSkeleton(const TermPtr &t, VarMap &vars);
    TaggedWord skeletonElement(const TermPtr &t, VarMap &vars);

    void emitHeadArg(const TermPtr &arg, VarMap &vars);
    void emitGoalArgs(const TermPtr &goal, VarMap &vars);
    bool packable(const TermPtr &arg, const VarMap &vars) const;
    std::uint32_t packOperand(const TermPtr &arg, VarMap &vars);

    MemorySystem *_mem;
    SymbolTable *_syms;
    CompileOptions _opts;
    std::uint32_t _cursor = kCodeBase;
    /** All clause addresses per functor, across compile() calls, so
     *  incremental consulting appends instead of replacing. */
    std::map<std::uint32_t, std::vector<std::uint32_t>> _clauses;
    std::uint64_t _queryCounter = 0;
    /** True while emitting an arithmetic-expression skeleton (local
     *  variable slots are then permitted in SkelVar elements). */
    bool _exprSkel = false;
};

} // namespace kl0
} // namespace psi

#endif // PSI_KL0_CODEGEN_HPP
