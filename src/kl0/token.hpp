/**
 * @file
 * Tokenizer for the KL0 (Prolog dialect) reader.
 *
 * Token classes follow Edinburgh Prolog: names (atoms), variables,
 * integers, punctuation, and the clause-terminating full stop.  `%`
 * line comments and `C-style` block comments are skipped.
 */

#ifndef PSI_KL0_TOKEN_HPP
#define PSI_KL0_TOKEN_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace psi {
namespace kl0 {

/** Lexical token classes. */
enum class TokKind
{
    Atom,       ///< lowercase name, quoted name, or symbolic name
    Var,        ///< uppercase or '_'-initial name
    Int,        ///< integer literal
    Punct,      ///< ( ) [ ] { } , |
    End,        ///< clause-terminating '.'
    Eof,
};

/** One token with its source position (for error messages). */
struct Token
{
    TokKind kind = TokKind::Eof;
    std::string text;
    std::int64_t value = 0;
    int line = 0;

    bool
    isPunct(const char *p) const
    {
        return kind == TokKind::Punct && text == p;
    }

    bool
    isAtom(const char *a) const
    {
        return kind == TokKind::Atom && text == a;
    }
};

/**
 * Tokenize the whole input.
 * @throws FatalError on lexical errors (unterminated quote, etc.).
 */
std::vector<Token> tokenize(const std::string &input);

} // namespace kl0
} // namespace psi

#endif // PSI_KL0_TOKEN_HPP
