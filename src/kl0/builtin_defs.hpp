/**
 * @file
 * The KL0 built-in predicate surface.
 *
 * This table defines the language-level built-ins; it is shared by
 * the PSI code generator (which emits CallBuiltin words), the PSI
 * firmware (which implements them in interp/builtins*.cpp) and the
 * baseline engine (baseline/wam_builtins.cpp), so both engines expose
 * exactly the same language.
 */

#ifndef PSI_KL0_BUILTIN_DEFS_HPP
#define PSI_KL0_BUILTIN_DEFS_HPP

#include <cstdint>
#include <string>

namespace psi {
namespace kl0 {

/** Identifiers of the built-in predicates. */
enum class Builtin : std::uint8_t
{
    True = 0,   ///< true/0
    Fail,       ///< fail/0 (also false/0)
    Unify,      ///< =/2
    NotUnify,   ///< \=/2
    Eq,         ///< ==/2
    NotEq,      ///< \==/2
    TermLt,     ///< @</2  (standard order)
    TermGt,     ///< @>/2
    TermLe,     ///< @=</2
    TermGe,     ///< @>=/2
    Is,         ///< is/2
    Lt,         ///< </2
    Gt,         ///< >/2
    Le,         ///< =</2
    Ge,         ///< >=/2
    ArithEq,    ///< =:=/2
    ArithNe,    ///< =\=/2
    IsVar,      ///< var/1
    IsNonvar,   ///< nonvar/1
    IsAtom,     ///< atom/1
    IsInteger,  ///< integer/1
    IsAtomic,   ///< atomic/1
    IsCompound, ///< compound/1
    Functor,    ///< functor/3
    Arg,        ///< arg/3
    Univ,       ///< =../2
    Write,      ///< write/1 (to the machine's output sink)
    Nl,         ///< nl/0
    Tab,        ///< tab/1
    VectorNew,  ///< vector_new(+Size, -Vector): heap vector
    VectorGet,  ///< vector_get(+Vector, +Index, -Elem)
    VectorSet,  ///< vector_set(+Vector, +Index, +Elem), destructive
    VectorSize, ///< vector_size(+Vector, -Size)
    GlobalSet,  ///< global_set(+Key, +AtomicOrVector): shared registry
    GlobalGet,  ///< global_get(+Key, -Value)
    ProcessCall,///< process_call(+ProcId, +PredAtom): run an arity-0
                ///< predicate to its first solution in another
                ///< process's stack areas (PSI multi-process support)
    NumBuiltins
};

constexpr int kNumBuiltins = static_cast<int>(Builtin::NumBuiltins);

/**
 * Look up a built-in by name and arity.
 * @return the builtin id, or -1 when (name, arity) is user-level.
 */
int builtinIndex(const std::string &name, std::uint32_t arity);

/** Printable name of a built-in (its source spelling). */
const char *builtinName(Builtin b);

/** Arity of a built-in. */
std::uint32_t builtinArity(Builtin b);

} // namespace kl0
} // namespace psi

#endif // PSI_KL0_BUILTIN_DEFS_HPP
